// Command scalload measures the fleet's own scalability and fits Gunther's
// Universal Scalability Law to it — the repo turning its subject matter on
// itself. It drives sustained traffic through a fleet.Router at a series of
// replica counts (1, 2, 4 by default), records throughput at each size, and
// fits C(N) = N / (1 + α(N−1) + βN(N−1)) to the curve, writing the points
// and the fitted α/β to a JSON report (BENCH_fleet.json).
//
// Two workload modes, because an honest measurement depends on what the
// host can carry:
//
//   - stub: replicas are calibrated-sleep stands-ins (fleet.StartStub) that
//     emulate a replica's service demand without its CPU demand. N sleeping
//     stubs scale the way N machines would, so the measured α and β are the
//     ROUTING TIER's own serialization and crosstalk — the number the fleet
//     design actually controls. This series carries the scaling claim on
//     hosts with fewer cores than replicas.
//
//   - sim: replicas are real in-process scaltoold equivalents
//     (fleet.StartLocal) running real analyses. Honest end-to-end numbers,
//     but all N replicas share this host's cores, so on a small host the
//     curve measures the host's saturation, not the architecture's —
//     which is why the report records host_cpus next to the fit.
//
// The workload is cache-miss-heavy by construction: every request is a
// distinct document (a fresh s0 size), so nothing is served from a warm
// memory tier and every request costs a full service time.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"scaltool/internal/fleet"
	"scaltool/internal/serve"
)

func main() {
	os.Exit(realMain(os.Args[1:], os.Stdout, os.Stderr))
}

func realMain(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("scalload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		mode        = fs.String("mode", "both", "workload mode: stub | sim | both")
		fleetSizes  = fs.String("fleet", "1,2,4", "comma-separated replica counts to measure")
		duration    = fs.Duration("duration", 3*time.Second, "sustained-load window per fleet size")
		service     = fs.Duration("service", 100*time.Millisecond, "stub mode: per-request service time (keep it large next to the host's per-request CPU cost, or the host ceiling masks the routing tier's scaling)")
		stubWorkers = fs.Int("stub-workers", 4, "stub mode: concurrent requests one replica can serve")
		stubClients = fs.Int("stub-clients", 24, "stub mode: concurrent client goroutines")
		simWorkers  = fs.Int("sim-workers", 2, "sim mode: analysis workers per replica")
		simClients  = fs.Int("sim-clients", 4, "sim mode: concurrent client goroutines")
		out         = fs.String("out", "BENCH_fleet.json", "report path")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if err := run(loadConfig{
		mode: *mode, fleetSizes: *fleetSizes, duration: *duration,
		service: *service, stubWorkers: *stubWorkers, stubClients: *stubClients,
		simWorkers: *simWorkers, simClients: *simClients, out: *out,
	}, stdout, stderr); err != nil {
		fmt.Fprintln(stderr, "scalload:", err)
		return 1
	}
	return 0
}

type loadConfig struct {
	mode        string
	fleetSizes  string
	duration    time.Duration
	service     time.Duration
	stubWorkers int
	stubClients int
	simWorkers  int
	simClients  int
	out         string
}

// replicaHandle is the slice of fleet.Handle the harness needs.
type replicaHandle interface {
	URL() string
	Kill()
}

// series is one mode's measured curve and fit, as written to the report.
type series struct {
	Workload    string        `json:"workload"`
	Clients     int           `json:"clients"`
	DurationS   float64       `json:"duration_s"`
	ServiceMS   float64       `json:"service_ms,omitempty"`
	StubWorkers int           `json:"stub_workers,omitempty"`
	SimWorkers  int           `json:"sim_workers,omitempty"`
	Points      []fleet.Point `json:"points"`
	Retries     int64         `json:"retries"`
	Fit         *fleet.Fit    `json:"usl_fit,omitempty"`
	FitError    string        `json:"usl_fit_error,omitempty"`
	Speedup2    float64       `json:"speedup_2_over_1,omitempty"`
}

// report is the whole BENCH_fleet.json document.
type report struct {
	Tool       string            `json:"tool"`
	Generated  string            `json:"generated"`
	HostCPUs   int               `json:"host_cpus"`
	FleetSizes []int             `json:"fleet_sizes"`
	Series     map[string]series `json:"series"`
	Note       string            `json:"note"`
}

func run(cfg loadConfig, stdout, stderr io.Writer) error {
	sizes, err := parseSizes(cfg.fleetSizes)
	if err != nil {
		return err
	}
	if cfg.duration <= 0 {
		return fmt.Errorf("-duration must be positive")
	}
	var modes []string
	switch cfg.mode {
	case "both":
		modes = []string{"stub", "sim"}
	case "stub", "sim":
		modes = []string{cfg.mode}
	default:
		return fmt.Errorf("-mode must be stub, sim, or both; got %q", cfg.mode)
	}

	rep := report{
		Tool:       "scalload",
		Generated:  time.Now().UTC().Format(time.RFC3339),
		HostCPUs:   runtime.NumCPU(),
		FleetSizes: sizes,
		Series:     map[string]series{},
		Note: "stub series isolates the routing tier (sleep-based replicas scale like real machines); " +
			"sim series runs real analyses and is bounded by host_cpus — on a host with fewer cores " +
			"than replicas it measures the host, not the architecture.",
	}

	for _, m := range modes {
		s, err := runSeries(m, cfg, sizes, stderr)
		if err != nil {
			return fmt.Errorf("%s series: %w", m, err)
		}
		rep.Series[m] = s
	}

	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if err := os.WriteFile(cfg.out, blob, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "scalload: wrote %s\n", cfg.out)
	for name, s := range rep.Series {
		for _, p := range s.Points {
			fmt.Fprintf(stdout, "scalload: %s n=%d: %.1f req/s\n", name, p.N, p.Throughput)
		}
		if s.Fit != nil {
			fmt.Fprintf(stdout, "scalload: %s USL fit: alpha=%.4f beta=%.6f x1=%.1f r2=%.3f\n",
				name, s.Fit.Alpha, s.Fit.Beta, s.Fit.X1, s.Fit.R2)
		}
	}
	return nil
}

// runSeries measures one mode's throughput at every fleet size and fits the
// USL to the curve.
func runSeries(mode string, cfg loadConfig, sizes []int, stderr io.Writer) (series, error) {
	s := series{Workload: mode, DurationS: cfg.duration.Seconds()}
	var spawn func() (replicaHandle, error)
	switch mode {
	case "stub":
		s.Clients = cfg.stubClients
		s.ServiceMS = float64(cfg.service) / float64(time.Millisecond)
		s.StubWorkers = cfg.stubWorkers
		spawn = func() (replicaHandle, error) { return fleet.StartStub(cfg.service, cfg.stubWorkers) }
	case "sim":
		s.Clients = cfg.simClients
		s.SimWorkers = cfg.simWorkers
		spawn = func() (replicaHandle, error) {
			return fleet.StartLocal(serve.Options{Workers: cfg.simWorkers}, "")
		}
	}

	for _, n := range sizes {
		p, retries, err := measure(n, spawn, s.Clients, cfg.duration)
		if err != nil {
			return s, fmt.Errorf("n=%d: %w", n, err)
		}
		fmt.Fprintf(stderr, "scalload: %s n=%d: %.1f req/s (%d retries)\n", mode, n, p.Throughput, retries)
		s.Points = append(s.Points, p)
		s.Retries += retries
	}

	if fit, err := fleet.FitUSL(s.Points); err == nil {
		s.Fit = &fit
	} else {
		s.FitError = err.Error()
	}
	var x1, x2 float64
	for _, p := range s.Points {
		switch p.N {
		case 1:
			x1 = p.Throughput
		case 2:
			x2 = p.Throughput
		}
	}
	if x1 > 0 && x2 > 0 {
		s.Speedup2 = x2 / x1
	}
	return s, nil
}

// measure stands up a fresh fleet of n replicas behind a fresh router,
// drives `clients` goroutines of distinct-document traffic for `duration`,
// and returns the completed-request throughput. Every replica starts cold
// and every document is unique, so the number is a service-time measurement,
// not a cache benchmark.
func measure(n int, spawn func() (replicaHandle, error), clients int, duration time.Duration) (fleet.Point, int64, error) {
	var replicas []replicaHandle
	defer func() {
		for _, r := range replicas {
			r.Kill()
		}
	}()
	var members []fleet.Replica
	for i := 0; i < n; i++ {
		r, err := spawn()
		if err != nil {
			return fleet.Point{}, 0, err
		}
		replicas = append(replicas, r)
		members = append(members, fleet.Replica{Name: fleet.SlotName(i), URL: r.URL()})
	}

	rt := fleet.NewRouter(fleet.Options{
		Replicas:      members,
		ProbeInterval: 200 * time.Millisecond,
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rt.StartProber(ctx)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fleet.Point{}, 0, err
	}
	front := &http.Server{Handler: rt.Handler()}
	go front.Serve(ln)
	defer front.Close()
	base := "http://" + ln.Addr().String()

	hc := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        256,
		MaxIdleConnsPerHost: 256,
	}}

	var (
		seq     atomic.Int64
		ok      atomic.Int64
		retries atomic.Int64
		errMu   sync.Mutex
		loadErr error
	)
	start := time.Now()
	deadline := start.Add(duration)
	var wg sync.WaitGroup
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(deadline) {
				doc := docFor(int(seq.Add(1)))
				resp, err := hc.Post(base+"/v1/analyze", "application/json", bytes.NewReader(doc))
				if err != nil {
					retries.Add(1)
					time.Sleep(2 * time.Millisecond)
					continue
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK:
					ok.Add(1)
				case http.StatusTooManyRequests, http.StatusServiceUnavailable:
					retries.Add(1)
					time.Sleep(2 * time.Millisecond)
				default:
					errMu.Lock()
					if loadErr == nil {
						loadErr = fmt.Errorf("non-retryable status %d: %s", resp.StatusCode, body)
					}
					errMu.Unlock()
					return
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	if loadErr != nil {
		return fleet.Point{}, retries.Load(), loadErr
	}
	if ok.Load() == 0 {
		return fleet.Point{}, retries.Load(), fmt.Errorf("no request completed within %s", duration)
	}
	return fleet.Point{N: n, Throughput: float64(ok.Load()) / elapsed.Seconds()}, retries.Load(), nil
}

// docFor generates the i-th workload document: a real analysis request with
// a unique data-set size, so every request has a distinct cache key (a
// guaranteed miss) while costing roughly the same service time. The app
// rotation sticks to workloads whose procs=4 campaign grid supports the
// t2/tm joint fit (matmul's does not — it 500s deterministically).
func docFor(i int) []byte {
	apps := []string{"swim", "hydro2d", "spmv"}
	// ~256 KiB keeps one analysis sub-second on a small host; the 4 KiB
	// stride is enough to make every key distinct.
	s0 := 256<<10 + i*4096
	return []byte(fmt.Sprintf(`{"app":%q,"procs":4,"s0":%d}`, apps[i%len(apps)], s0))
}

func parseSizes(csv string) ([]int, error) {
	var out []int
	seen := map[int]bool{}
	for _, part := range strings.Split(csv, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("-fleet: %q is not a positive replica count", part)
		}
		if seen[n] {
			continue
		}
		seen[n] = true
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-fleet named no replica counts")
	}
	return out, nil
}
