package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestScalloadStubSmoke runs a miniature stub-mode campaign end to end and
// checks the report's shape: one point per fleet size, positive throughput,
// a USL fit, and the host's core count recorded next to it. verify.sh runs
// this as the scalload smoke gate.
func TestScalloadStubSmoke(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	var stdout, stderr bytes.Buffer
	code := realMain([]string{
		"-mode", "stub",
		"-fleet", "1,2",
		"-duration", "400ms",
		"-service", "10ms",
		"-stub-workers", "4",
		"-stub-clients", "8",
		"-out", out,
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d\nstderr:\n%s", code, stderr.String())
	}

	blob, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(blob, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v\n%s", err, blob)
	}
	if rep.HostCPUs < 1 {
		t.Fatalf("host_cpus = %d", rep.HostCPUs)
	}
	s, ok := rep.Series["stub"]
	if !ok {
		t.Fatalf("no stub series in report:\n%s", blob)
	}
	if len(s.Points) != 2 {
		t.Fatalf("points = %+v, want 2 fleet sizes", s.Points)
	}
	for _, p := range s.Points {
		if p.Throughput <= 0 {
			t.Fatalf("n=%d throughput %v, want > 0", p.N, p.Throughput)
		}
	}
	if s.Fit == nil {
		t.Fatalf("no USL fit (error: %s)", s.FitError)
	}
	if s.Fit.X1 <= 0 {
		t.Fatalf("fit X1 = %v, want > 0", s.Fit.X1)
	}
}

// TestScalloadSimSmoke drives one real-analysis point through the full
// router → serve → campaign → sim pipeline. Single fleet size: the point is
// that real analyses flow and are counted, not the shape of the curve (a
// one-point series deliberately yields a fit error, which the report keeps).
func TestScalloadSimSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real analyses")
	}
	out := filepath.Join(t.TempDir(), "bench.json")
	var stdout, stderr bytes.Buffer
	code := realMain([]string{
		"-mode", "sim",
		"-fleet", "1",
		"-duration", "1s",
		"-sim-workers", "2",
		"-sim-clients", "2",
		"-out", out,
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d\nstderr:\n%s", code, stderr.String())
	}
	blob, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(blob, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v\n%s", err, blob)
	}
	s := rep.Series["sim"]
	if len(s.Points) != 1 || s.Points[0].Throughput <= 0 {
		t.Fatalf("sim points = %+v, want one positive-throughput point", s.Points)
	}
	if s.Fit != nil {
		t.Fatal("a one-point series must not produce a fit")
	}
	if s.FitError == "" {
		t.Fatal("fit error should be recorded for a one-point series")
	}
}

// TestScalloadFlagValidation rejects nonsense fleets and modes.
func TestScalloadFlagValidation(t *testing.T) {
	for _, args := range [][]string{
		{"-fleet", "0"},
		{"-fleet", "x"},
		{"-fleet", ""},
		{"-mode", "imaginary"},
		{"-duration", "0s"},
	} {
		var stdout, stderr bytes.Buffer
		if code := realMain(args, &stdout, &stderr); code != 1 {
			t.Fatalf("args %v: exit %d, want 1; stderr:\n%s", args, code, stderr.String())
		}
	}
}
