package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// TestScaltooldServeE2E drives the full daemon lifecycle in-process: bind,
// serve concurrent /v1/analyze requests (identical, so the run cache must
// collapse them), check the cache-hit metrics on /metrics, then SIGTERM and
// verify a clean drain. verify.sh runs this as the serving e2e gate.
func TestScaltooldServeE2E(t *testing.T) {
	ready := make(chan string, 1)
	testOnReady = func(addr string) { ready <- addr }
	defer func() { testOnReady = nil }()

	var stdout, stderrBuf bytes.Buffer
	exit := make(chan int, 1)
	go func() {
		exit <- realMain([]string{
			"-addr", "127.0.0.1:0",
			"-workers", "4",
			"-cache-mb", "64",
			"-shutdown-grace", "30s",
			"-log-level", "warn",
		}, &stdout, &stderrBuf)
	}()
	var addr string
	select {
	case addr = <-ready:
	case <-time.After(10 * time.Second):
		t.Fatalf("server never became ready; stderr:\n%s", stderrBuf.String())
	}
	base := "http://" + addr

	// Live health.
	hz, err := http.Get(base + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hz.Body.Close()
	if hz.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d, want 200", hz.StatusCode)
	}

	// Concurrent identical analyses: all must succeed with one body.
	const n = 4
	req := `{"app":"swim","procs":4}`
	bodies := make([][]byte, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(base+"/v1/analyze", "application/json", strings.NewReader(req))
			if err != nil {
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				bodies[i], _ = io.ReadAll(resp.Body)
			}
		}(i)
	}
	wg.Wait()
	for i, b := range bodies {
		if b == nil {
			t.Fatalf("concurrent request %d failed", i)
		}
		if !bytes.Equal(bodies[0], b) {
			t.Fatalf("request %d body differs", i)
		}
	}

	// One more identical request: a pure cache hit.
	resp, err := http.Post(base+"/v1/analyze", "application/json", strings.NewReader(req))
	if err != nil {
		t.Fatal(err)
	}
	hitBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !bytes.Equal(hitBody, bodies[0]) {
		t.Fatalf("cache-hit request: status %d, identical=%t", resp.StatusCode, bytes.Equal(hitBody, bodies[0]))
	}

	// /metrics must show run-cache activity (hits or shared in-flight joins).
	mresp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	mtext := string(metrics)
	if !strings.Contains(mtext, "scaltool_runcache_hits_total") && !strings.Contains(mtext, "scaltool_runcache_shared_total") {
		t.Fatalf("/metrics records no run-cache hits:\n%s", mtext)
	}
	if !strings.Contains(mtext, "scaltool_serve_requests_total") {
		t.Fatal("/metrics missing scaltool_serve_requests_total")
	}

	// SIGTERM: the daemon must drain and exit 0, and the port must be free.
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-exit:
		if code != 0 {
			t.Fatalf("exit code %d after SIGTERM; stderr:\n%s", code, stderrBuf.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not exit after SIGTERM")
	}
	if !strings.Contains(stdout.String(), "drained and stopped") {
		t.Fatalf("no drain confirmation in stdout:\n%s", stdout.String())
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("address still held after shutdown: %v", err)
	}
	ln.Close()
}

// TestScaltooldTraceFlush: with -trace-out set, a SIGTERM drain leaves a
// complete, parseable trace_event JSON document on disk — never a truncated
// one (the writer replaces the path atomically) — and the trace carries the
// request-scoped spans of the work the daemon served, tagged with the
// request id.
func TestScaltooldTraceFlush(t *testing.T) {
	ready := make(chan string, 1)
	testOnReady = func(addr string) { ready <- addr }
	defer func() { testOnReady = nil }()

	tracePath := filepath.Join(t.TempDir(), "scaltoold-trace.json")
	// Seed the path with garbage: if the flush were a plain truncating write
	// interrupted by exit, a stale or partial document could survive. The
	// atomic rename must replace this wholesale.
	if err := os.WriteFile(tracePath, []byte(`{"traceEvents":[{"trunc`), 0o644); err != nil {
		t.Fatal(err)
	}

	var stdout, stderrBuf bytes.Buffer
	exit := make(chan int, 1)
	go func() {
		exit <- realMain([]string{
			"-addr", "127.0.0.1:0",
			"-workers", "2",
			"-cache-mb", "64",
			"-trace-out", tracePath,
			"-log-level", "warn",
		}, &stdout, &stderrBuf)
	}()
	var addr string
	select {
	case addr = <-ready:
	case <-time.After(10 * time.Second):
		t.Fatalf("server never became ready; stderr:\n%s", stderrBuf.String())
	}
	base := "http://" + addr

	req, _ := http.NewRequest(http.MethodPost, base+"/v1/analyze", strings.NewReader(`{"app":"swim","procs":4}`))
	req.Header.Set("X-Request-Id", "trace-flush-test")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("analyze: %d", resp.StatusCode)
	}

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-exit:
		if code != 0 {
			t.Fatalf("exit code %d after SIGTERM; stderr:\n%s", code, stderrBuf.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not exit after SIGTERM")
	}

	raw, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatalf("trace not flushed: %v", err)
	}
	var trace struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &trace); err != nil {
		t.Fatalf("flushed trace is not complete JSON: %v\n%.200s", err, raw)
	}
	var sawCampaign, sawReqID bool
	for _, ev := range trace.TraceEvents {
		if ev.Name == "campaign" {
			sawCampaign = true
		}
		if id, ok := ev.Args["req_id"]; ok && id == "trace-flush-test" {
			sawReqID = true
		}
	}
	if !sawCampaign {
		t.Errorf("trace has no campaign span among %d events", len(trace.TraceEvents))
	}
	if !sawReqID {
		t.Errorf("no span carries the request id; tracing is not end-to-end (%d events)", len(trace.TraceEvents))
	}
}

// TestScaltooldFailFast covers startup validation: a taken address and bad
// flag combinations must fail synchronously with exit code 1.
func TestScaltooldFailFast(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	cases := []struct {
		name string
		args []string
	}{
		{"taken address", []string{"-addr", ln.Addr().String()}},
		{"bad grace", []string{"-addr", "127.0.0.1:0", "-shutdown-grace", "-1s"}},
		{"spill without cache", []string{"-addr", "127.0.0.1:0", "-cache-mb", "0", "-cache-dir", t.TempDir()}},
		{"bad log level", []string{"-addr", "127.0.0.1:0", "-log-level", "loud"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			done := make(chan int, 1)
			go func() { done <- realMain(tc.args, &stdout, &stderr) }()
			select {
			case code := <-done:
				if code != 1 {
					t.Fatalf("exit code %d, want 1; stderr:\n%s", code, stderr.String())
				}
			case <-time.After(5 * time.Second):
				t.Fatal("startup validation did not fail fast")
			}
		})
	}
}

// TestScaltooldBudgetFlags checks the admission-budget and transport flags
// reach the server: a dataset over -max-s0-mb draws a machine-readable 413,
// an affordable request still serves, and the daemon drains cleanly.
func TestScaltooldBudgetFlags(t *testing.T) {
	ready := make(chan string, 1)
	testOnReady = func(addr string) { ready <- addr }
	defer func() { testOnReady = nil }()

	var stdout, stderrBuf bytes.Buffer
	exit := make(chan int, 1)
	go func() {
		exit <- realMain([]string{
			"-addr", "127.0.0.1:0",
			"-workers", "2",
			"-cache-mb", "0",
			"-max-s0-mb", "1",
			"-read-header-timeout", "2s",
			"-log-level", "warn",
		}, &stdout, &stderrBuf)
	}()
	var addr string
	select {
	case addr = <-ready:
	case <-time.After(10 * time.Second):
		t.Fatalf("server never became ready; stderr:\n%s", stderrBuf.String())
	}
	base := "http://" + addr

	// 2 MiB dataset against a 1 MiB budget: refused before any work.
	resp, err := http.Post(base+"/v1/analyze", "application/json",
		strings.NewReader(`{"app":"swim","procs":4,"s0":2097152}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge || !strings.Contains(string(body), `"s0_budget"`) {
		t.Fatalf("over-budget request: %d %s, want 413 s0_budget", resp.StatusCode, body)
	}

	// An in-budget request still serves.
	resp, err = http.Post(base+"/v1/analyze", "application/json",
		strings.NewReader(`{"app":"swim","procs":4,"s0":524288}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("in-budget request: %d %s", resp.StatusCode, body)
	}

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-exit:
		if code != 0 {
			t.Fatalf("exit code %d after SIGTERM; stderr:\n%s", code, stderrBuf.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not exit after SIGTERM")
	}
}
