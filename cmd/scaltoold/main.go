// Command scaltoold serves Scal-Tool analyses over HTTP — the serving path
// of the ROADMAP's production north star, built on internal/serve and the
// content-addressed run cache (internal/runcache).
//
//	scaltoold -addr :8080 -cache-mb 256 -cache-dir /var/cache/scaltool
//
// Endpoints:
//
//	POST /v1/analyze   {"app":"swim","procs":32}  → model + speedups + breakdown
//	GET  /v1/healthz   200 while serving, 503 while draining
//	GET  /metrics      Prometheus text format (scaltool_serve_*, scaltool_runcache_*, …)
//
// The simulator is deterministic, so identical requests are pure: the run
// cache serves repeats without re-simulating, and concurrent identical
// requests share one simulation (singleflight). Overload is shed at
// admission with 429 + Retry-After rather than queued. SIGINT/SIGTERM
// starts a graceful drain: health flips to 503, in-flight analyses finish
// (bounded by -shutdown-grace), then the listener closes.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"scaltool/internal/admission"
	"scaltool/internal/obs"
	"scaltool/internal/runcache"
	"scaltool/internal/serve"
)

func main() {
	os.Exit(realMain(os.Args[1:], os.Stdout, os.Stderr))
}

// testOnReady, when set by tests, observes the bound listen address after
// the server is accepting connections.
var testOnReady func(addr string)

// realMain is main with its environment injected, so tests drive the full
// binary lifecycle — bind, serve, drain — in-process.
func realMain(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("scaltoold", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr       = fs.String("addr", ":8080", "listen address")
		workers    = fs.Int("workers", 0, "concurrent analyses (0 = GOMAXPROCS)")
		queueDepth = fs.Int("queue-depth", 0, "admitted analyses waiting for a worker before shedding (0 = 2×workers)")
		reqTimeout = fs.Duration("request-timeout", serve.DefaultRequestTimeout, "per-request analysis deadline")
		maxProcs   = fs.Int("max-procs", 64, "largest processor count a request may analyze")
		simWorkers = fs.Int("sim-workers", 0, "concurrent simulated runs within one analysis (0 = GOMAXPROCS)")
		cacheMB    = fs.Int("cache-mb", 256, "run-cache byte budget in MiB (0 disables caching)")
		cacheDir   = fs.String("cache-dir", "", "spill evicted run-cache entries to this directory")
		maxS0MB    = fs.Int("max-s0-mb", 0, "largest dataset a request may declare, in MiB (0 = 256)")
		reqGCycles = fs.Float64("max-request-gcycles", 0, "predicted simulated cycles one request may cost, in billions (0 = 4000)")
		reqMB      = fs.Int("max-request-mb", 0, "predicted allocation footprint one request may cost, in MiB (0 = 512)")
		srvGCycles = fs.Float64("max-server-gcycles", 0, "aggregate predicted cycles admitted at once, in billions (0 = 16000)")
		srvMB      = fs.Int("max-server-mb", 0, "aggregate predicted allocation admitted at once, in MiB (0 = 2048)")
		hdrTimeout = fs.Duration("read-header-timeout", 5*time.Second, "how long a client may take to send request headers (slow-loris guard)")
		rdTimeout  = fs.Duration("read-timeout", 30*time.Second, "how long a client may take to send a whole request (0 disables)")
		grace      = fs.Duration("shutdown-grace", 30*time.Second, "how long a SIGTERM drain may take before the process force-exits")
		logLevel   = fs.String("log-level", "info", "structured log level: debug | info | warn | error")
		logJSON    = fs.Bool("log-json", false, "emit the structured log as JSON lines")
		traceOut   = fs.String("trace-out", "", "write a Chrome trace_event timeline of served requests here on exit (flushed atomically during drain)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if err := run(*addr, *grace, serveOptions{
		workers: *workers, queueDepth: *queueDepth, reqTimeout: *reqTimeout,
		maxProcs: *maxProcs, simWorkers: *simWorkers,
		cacheMB: *cacheMB, cacheDir: *cacheDir,
		budget: admission.Budget{
			MaxS0Bytes:       uint64(*maxS0MB) << 20,
			MaxRequestCycles: *reqGCycles * 1e9,
			MaxRequestBytes:  int64(*reqMB) << 20,
			MaxServerCycles:  *srvGCycles * 1e9,
			MaxServerBytes:   int64(*srvMB) << 20,
		},
		readHeaderTimeout: *hdrTimeout, readTimeout: *rdTimeout,
		logLevel: *logLevel, logJSON: *logJSON, traceOut: *traceOut,
	}, stdout, stderr); err != nil {
		fmt.Fprintln(stderr, "scaltoold:", err)
		return 1
	}
	return 0
}

type serveOptions struct {
	workers, queueDepth            int
	reqTimeout                     time.Duration
	maxProcs, simWorkers           int
	cacheMB                        int
	cacheDir                       string
	budget                         admission.Budget
	readHeaderTimeout, readTimeout time.Duration
	logLevel                       string
	logJSON                        bool
	traceOut                       string
}

func run(addr string, grace time.Duration, so serveOptions, stdout, stderr io.Writer) error {
	if grace <= 0 {
		return fmt.Errorf("-shutdown-grace must be positive, got %s", grace)
	}
	if so.cacheDir != "" && so.cacheMB <= 0 {
		return fmt.Errorf("-cache-dir needs -cache-mb (spill without a cache has nothing to spill)")
	}
	level, err := obs.ParseLevel(so.logLevel)
	if err != nil {
		return err
	}
	o := &obs.Observer{
		Metrics: obs.NewMetrics(),
		Logger:  obs.NewLogger(stderr, level, so.logJSON),
	}
	if so.traceOut != "" {
		o.Trace = obs.NewTracer()
		// The flush rides a defer so every exit path — clean drain, drain
		// timeout, listener failure — leaves a complete JSON document at
		// -trace-out. WriteFileAtomic renames a synced temp file into place,
		// so a reader racing the shutdown sees the whole trace or nothing,
		// never a truncated one.
		defer func() {
			if err := o.Trace.WriteFileAtomic(so.traceOut); err != nil {
				fmt.Fprintln(stderr, "scaltoold: writing trace:", err)
				return
			}
			fmt.Fprintf(stderr, "scaltoold: trace (%d events) → %s\n", o.Trace.Len(), so.traceOut)
		}()
	}
	var cache *runcache.Cache
	if so.cacheMB > 0 {
		cache = runcache.New(runcache.Options{
			MaxBytes: int64(so.cacheMB) << 20,
			SpillDir: so.cacheDir,
		})
	}
	srv := serve.New(serve.Options{
		Workers:        so.workers,
		QueueDepth:     so.queueDepth,
		RequestTimeout: so.reqTimeout,
		MaxProcs:       so.maxProcs,
		SimWorkers:     so.simWorkers,
		Budget:         so.budget,
		Cache:          cache,
		Obs:            o,
	})

	// Bind synchronously so a bad or taken address fails startup here —
	// the same fail-fast contract as scaltool's -pprof-addr.
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("listen: %w", err)
	}
	fmt.Fprintf(stdout, "scaltoold: listening on %s\n", ln.Addr())
	if testOnReady != nil {
		testOnReady(ln.Addr().String())
	}

	// Transport hardening: a client gets bounded time to present headers
	// (the slow-loris guard) and the whole request; body size is bounded by
	// the handler (internal/serve maxBodyBytes).
	httpSrv := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: so.readHeaderTimeout,
		ReadTimeout:       so.readTimeout,
	}
	errCh := make(chan error, 1)
	go func() {
		if err := httpSrv.Serve(ln); err != nil && err != http.ErrServerClosed {
			errCh <- err
			return
		}
		errCh <- nil
	}()

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigs)

	select {
	case err := <-errCh:
		return err // the listener died on its own; nothing to drain
	case sig := <-sigs:
		fmt.Fprintf(stderr, "scaltoold: %v: draining (grace %s)\n", sig, grace)
	}

	// Graceful drain, in order: stop routing (healthz 503, new analyses
	// refused), wait for in-flight analyses, then close the listener and
	// idle connections. The grace bounds the whole sequence.
	dctx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	if err := srv.Drain(dctx); err != nil {
		fmt.Fprintln(stderr, "scaltoold: drain incomplete; closing anyway:", err)
		_ = httpSrv.Close()
		<-errCh
		return err
	}
	if err := httpSrv.Shutdown(dctx); err != nil {
		_ = httpSrv.Close()
		<-errCh
		return fmt.Errorf("shutdown: %w", err)
	}
	<-errCh
	fmt.Fprintln(stdout, "scaltoold: drained and stopped")
	return nil
}
