// Command scalrouter is the fleet front tier: one address in front of N
// scaltoold replicas, with consistent-hash routing, health probing,
// per-replica circuit breakers, automatic failover, and optional hedging
// (internal/fleet).
//
// Two ways to name the fleet:
//
//	scalrouter -addr :8080 -replica http://10.0.0.1:8081 -replica http://10.0.0.2:8081
//
// routes across already-running replicas, and
//
//	scalrouter -addr :8080 -spawn 3 -scaltoold ./scaltoold \
//	    -spawn-arg -cache-mb=64 -spawn-arg -cache-dir=/var/cache/scaltool
//
// supervises 3 scaltoold child processes itself (each on an ephemeral
// port), restarting any that die or hang — pass a shared -cache-dir so a
// replacement inherits the spilled analyses of the instance it replaces.
//
// Requests are placed by rendezvous hashing on the content-addressed cache
// key of the analysis document, so identical documents always land on the
// replica whose cache is warm. The simulator is deterministic, which makes
// failover safe: a replayed request cannot change its answer, only get it
// from somewhere else.
//
// SIGINT/SIGTERM drains: healthz flips to 503, new requests are refused
// with a retryable 429, in-flight forwards finish (bounded by
// -shutdown-grace), then supervised children are stopped via SIGTERM.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"scaltool/internal/fleet"
	"scaltool/internal/obs"
)

func main() {
	os.Exit(realMain(os.Args[1:], os.Stdout, os.Stderr))
}

// testOnReady, when set by tests, observes the bound listen address after
// the router is accepting connections.
var testOnReady func(addr string)

// stringList is a repeatable flag.
type stringList []string

func (s *stringList) String() string     { return strings.Join(*s, ",") }
func (s *stringList) Set(v string) error { *s = append(*s, v); return nil }

func realMain(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("scalrouter", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var replicas, spawnArgs stringList
	var (
		addr       = fs.String("addr", ":8080", "listen address")
		spawn      = fs.Int("spawn", 0, "supervise this many scaltoold child processes instead of -replica URLs")
		scaltoold  = fs.String("scaltoold", "scaltoold", "scaltoold binary for -spawn")
		probeEvery = fs.Duration("probe-interval", 500*time.Millisecond, "replica health-probe period")
		failThresh = fs.Int("failure-threshold", 3, "consecutive hard failures that open a replica's circuit breaker")
		cooldown   = fs.Duration("breaker-cooldown", 5*time.Second, "open-breaker wait before the half-open probe")
		fwdTimeout = fs.Duration("forward-timeout", 90*time.Second, "per-attempt forward deadline")
		hedgeAfter = fs.Duration("hedge-after", 0, "race a second replica if the first is silent this long (0 disables)")
		heartbeat  = fs.Duration("heartbeat-interval", 250*time.Millisecond, "supervised-child liveness probe period")
		misses     = fs.Int("heartbeat-misses", 4, "consecutive missed heartbeats before a supervised child is killed")
		backoff    = fs.Duration("restart-backoff", 100*time.Millisecond, "pause before respawning a dead child")
		grace      = fs.Duration("shutdown-grace", 30*time.Second, "how long a SIGTERM drain may take before the process force-exits")
		logLevel   = fs.String("log-level", "info", "structured log level: debug | info | warn | error")
		logJSON    = fs.Bool("log-json", false, "emit the structured log as JSON lines")
	)
	fs.Var(&replicas, "replica", "replica base URL (repeatable), e.g. http://host:8081")
	fs.Var(&spawnArgs, "spawn-arg", "extra scaltoold flag for -spawn children (repeatable)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if err := run(routerConfig{
		addr: *addr, replicas: replicas,
		spawn: *spawn, scaltoold: *scaltoold, spawnArgs: spawnArgs,
		probeEvery: *probeEvery, failThresh: *failThresh, cooldown: *cooldown,
		fwdTimeout: *fwdTimeout, hedgeAfter: *hedgeAfter,
		heartbeat: *heartbeat, misses: *misses, backoff: *backoff,
		grace: *grace, logLevel: *logLevel, logJSON: *logJSON,
	}, stdout, stderr); err != nil {
		fmt.Fprintln(stderr, "scalrouter:", err)
		return 1
	}
	return 0
}

type routerConfig struct {
	addr      string
	replicas  []string
	spawn     int
	scaltoold string
	spawnArgs []string

	probeEvery time.Duration
	failThresh int
	cooldown   time.Duration
	fwdTimeout time.Duration
	hedgeAfter time.Duration

	heartbeat time.Duration
	misses    int
	backoff   time.Duration

	grace    time.Duration
	logLevel string
	logJSON  bool
}

// syncWriter serializes the structured log, drain notices, and supervised
// children's stderr when they all share one non-file sink (tests pass a
// bytes.Buffer; a real file needs no help).
type syncWriter struct {
	mu sync.Mutex
	w  io.Writer
}

func (sw *syncWriter) Write(p []byte) (int, error) {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	return sw.w.Write(p)
}

func run(cfg routerConfig, stdout, stderr io.Writer) error {
	if _, ok := stderr.(*os.File); !ok {
		stderr = &syncWriter{w: stderr}
	}
	if cfg.grace <= 0 {
		return fmt.Errorf("-shutdown-grace must be positive, got %s", cfg.grace)
	}
	if (len(cfg.replicas) == 0) == (cfg.spawn == 0) {
		return fmt.Errorf("name the fleet exactly one way: -replica URLs, or -spawn N")
	}
	level, err := obs.ParseLevel(cfg.logLevel)
	if err != nil {
		return err
	}
	o := &obs.Observer{
		Metrics: obs.NewMetrics(),
		Logger:  obs.NewLogger(stderr, level, cfg.logJSON),
	}

	var members []fleet.Replica
	slots := cfg.spawn
	if slots == 0 {
		for i, u := range cfg.replicas {
			members = append(members, fleet.Replica{Name: fleet.SlotName(i), URL: strings.TrimRight(u, "/")})
		}
	} else {
		for i := 0; i < slots; i++ {
			members = append(members, fleet.Replica{Name: fleet.SlotName(i)})
		}
	}
	rt := fleet.NewRouter(fleet.Options{
		Replicas:         members,
		ProbeInterval:    cfg.probeEvery,
		FailureThreshold: cfg.failThresh,
		Cooldown:         cfg.cooldown,
		ForwardTimeout:   cfg.fwdTimeout,
		HedgeAfter:       cfg.hedgeAfter,
		Obs:              o,
	})

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rt.StartProber(ctx)

	svDone := make(chan error, 1)
	if slots > 0 {
		sv := &fleet.Supervisor{
			Spawn: func(slot int) (fleet.Handle, error) {
				o.Logger.Info("spawning replica", "slot", slot, "path", cfg.scaltoold)
				return fleet.StartExec(fleet.ExecConfig{
					Path:   cfg.scaltoold,
					Args:   append([]string{"-addr", "127.0.0.1:0"}, cfg.spawnArgs...),
					Stderr: stderr,
				})
			},
			Notify: func(slot int, url string) {
				o.Logger.Info("replica slot rebound", "slot", slot, "url", url)
				rt.SetReplicaURL(fleet.SlotName(slot), url)
			},
			HeartbeatInterval: cfg.heartbeat,
			HeartbeatMisses:   cfg.misses,
			RestartBackoff:    cfg.backoff,
			Obs:               o,
		}
		go func() { svDone <- sv.Run(ctx, slots) }()
	} else {
		svDone <- nil
	}

	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return fmt.Errorf("listen: %w", err)
	}
	fmt.Fprintf(stdout, "scalrouter: listening on %s\n", ln.Addr())
	if testOnReady != nil {
		testOnReady(ln.Addr().String())
	}

	httpSrv := &http.Server{
		Handler:           rt.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	errCh := make(chan error, 1)
	go func() {
		if err := httpSrv.Serve(ln); err != nil && err != http.ErrServerClosed {
			errCh <- err
			return
		}
		errCh <- nil
	}()

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigs)

	select {
	case err := <-errCh:
		cancel()
		<-svDone
		return err
	case sig := <-sigs:
		fmt.Fprintf(stderr, "scalrouter: %v: draining (grace %s)\n", sig, cfg.grace)
	}

	// Drain order mirrors scaltoold: stop routing (healthz 503, new work
	// 429), let in-flight forwards finish, close the front listener, THEN
	// stop the children — a child killed first would fail the forwards the
	// drain is protecting.
	dctx, dcancel := context.WithTimeout(context.Background(), cfg.grace)
	defer dcancel()
	if err := rt.Drain(dctx); err != nil {
		fmt.Fprintln(stderr, "scalrouter: drain incomplete; closing anyway:", err)
		_ = httpSrv.Close()
		<-errCh
		cancel()
		<-svDone
		return err
	}
	if err := httpSrv.Shutdown(dctx); err != nil {
		_ = httpSrv.Close()
		<-errCh
		cancel()
		<-svDone
		return fmt.Errorf("shutdown: %w", err)
	}
	<-errCh
	cancel()
	if err := <-svDone; err != nil {
		return err
	}
	fmt.Fprintln(stdout, "scalrouter: drained and stopped")
	return nil
}
