package main

import (
	"bytes"
	"io"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"scaltool/internal/fleet"
)

// startRouter launches realMain in-process and returns the bound address
// plus channels/buffers to observe its exit.
func startRouter(t *testing.T, args []string) (addr string, exit chan int, stdout, stderr *bytes.Buffer) {
	t.Helper()
	ready := make(chan string, 1)
	testOnReady = func(a string) { ready <- a }
	t.Cleanup(func() { testOnReady = nil })

	stdout, stderr = &bytes.Buffer{}, &bytes.Buffer{}
	exit = make(chan int, 1)
	go func() { exit <- realMain(args, stdout, stderr) }()
	select {
	case addr = <-ready:
	case <-time.After(20 * time.Second):
		t.Fatalf("router never became ready; stderr:\n%s", stderr.String())
	}
	return addr, exit, stdout, stderr
}

// sigtermAndWait sends the process SIGTERM (realMain's signal handler owns
// it) and asserts a clean exit with the drain confirmation line.
func sigtermAndWait(t *testing.T, exit chan int, stdout, stderr *bytes.Buffer) {
	t.Helper()
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-exit:
		if code != 0 {
			t.Fatalf("exit code %d after SIGTERM; stderr:\n%s", code, stderr.String())
		}
	case <-time.After(60 * time.Second):
		t.Fatal("router did not exit after SIGTERM")
	}
	if !strings.Contains(stdout.String(), "drained and stopped") {
		t.Fatalf("no drain confirmation in stdout:\n%s", stdout.String())
	}
}

func post(t *testing.T, base string, doc string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(base+"/v1/analyze", "application/json", strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

// TestScalrouterStaticFleetE2E runs the daemon over a static -replica list
// (stub backends), checks affinity, failover after a backend dies, the
// fleet metrics, and the SIGTERM drain. verify.sh runs this as the router
// e2e gate.
func TestScalrouterStaticFleetE2E(t *testing.T) {
	s1, err := fleet.StartStub(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer s1.Kill()
	s2, err := fleet.StartStub(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Kill()

	addr, exit, stdout, stderr := startRouter(t, []string{
		"-addr", "127.0.0.1:0",
		"-replica", s1.URL(),
		"-replica", s2.URL(),
		"-probe-interval", "100ms",
		"-breaker-cooldown", "300ms",
		"-log-level", "warn",
	})
	base := "http://" + addr

	hz, err := http.Get(base + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hz.Body.Close()
	if hz.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d, want 200", hz.StatusCode)
	}

	// Affinity: the same document lands on the same replica with the same
	// bytes, every time.
	const doc = `{"app":"swim","procs":4}`
	resp1, body1 := post(t, base, doc)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("analyze = %d: %s", resp1.StatusCode, body1)
	}
	owner := resp1.Header.Get("X-Fleet-Replica")
	if owner == "" {
		t.Fatal("response missing X-Fleet-Replica")
	}
	resp2, body2 := post(t, base, doc)
	if got := resp2.Header.Get("X-Fleet-Replica"); got != owner {
		t.Fatalf("affinity broken: replica %q then %q", owner, got)
	}
	if !bytes.Equal(body1, body2) {
		t.Fatal("same document, different bytes")
	}

	// Failover: kill both stubs' ambiguity away by killing the owner; the
	// next request must still succeed via the survivor.
	if owner == "replica-0" {
		s1.Kill()
	} else {
		s2.Kill()
	}
	resp3, body3 := post(t, base, doc)
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("post-kill analyze = %d: %s", resp3.StatusCode, body3)
	}
	if got := resp3.Header.Get("X-Fleet-Replica"); got == owner {
		t.Fatalf("answer still attributed to the dead replica %q", got)
	}
	if !bytes.Equal(body1, body3) {
		t.Fatal("failover changed the response bytes")
	}

	mresp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, want := range []string{"scaltool_fleet_requests_total", "scaltool_fleet_attempts_total"} {
		if !strings.Contains(string(metrics), want) {
			t.Fatalf("/metrics missing %s:\n%s", want, metrics)
		}
	}

	sigtermAndWait(t, exit, stdout, stderr)
}

// TestScalrouterSpawnSupervisedE2E is the production shape end to end: the
// router builds nothing in-process — it spawns real scaltoold child
// processes, discovers their ephemeral ports from their startup lines,
// routes real analyses to them, and SIGTERMs them on its own drain.
func TestScalrouterSpawnSupervisedE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and spawns scaltoold processes")
	}
	bin := filepath.Join(t.TempDir(), "scaltoold")
	build := exec.Command("go", "build", "-o", bin, "scaltool/cmd/scaltoold")
	build.Dir = "../.."
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build scaltoold: %v\n%s", err, out)
	}

	cacheDir := t.TempDir()
	addr, exit, stdout, stderr := startRouter(t, []string{
		"-addr", "127.0.0.1:0",
		"-spawn", "2",
		"-scaltoold", bin,
		"-spawn-arg", "-workers=2",
		"-spawn-arg", "-cache-mb=32",
		"-spawn-arg", "-cache-dir=" + cacheDir,
		"-spawn-arg", "-log-level=warn",
		"-probe-interval", "100ms",
		"-log-level", "warn",
	})
	base := "http://" + addr

	// The router binds its listener before the supervised children have
	// announced their ports, so early requests see a retryable no_replica
	// 503 — exactly what a client's retry policy absorbs. Do the same here.
	const doc = `{"app":"swim","procs":4}`
	var resp1 *http.Response
	var body1 []byte
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp1, body1 = post(t, base, doc)
		if resp1.StatusCode == http.StatusOK {
			break
		}
		if resp1.StatusCode != http.StatusServiceUnavailable && resp1.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("analyze via spawned fleet = %d: %s", resp1.StatusCode, body1)
		}
		if time.Now().After(deadline) {
			t.Fatalf("fleet never formed: last status %d: %s\nstderr:\n%s", resp1.StatusCode, body1, stderr.String())
		}
		time.Sleep(100 * time.Millisecond)
	}
	resp2, body2 := post(t, base, doc)
	if resp2.StatusCode != http.StatusOK || !bytes.Equal(body1, body2) {
		t.Fatalf("repeat analyze: status %d, identical=%t", resp2.StatusCode, bytes.Equal(body1, body2))
	}

	sigtermAndWait(t, exit, stdout, stderr)
}

// TestScalrouterFlagValidation: the fleet must be named exactly one way.
func TestScalrouterFlagValidation(t *testing.T) {
	for _, args := range [][]string{
		{},
		{"-replica", "http://x", "-spawn", "2"},
	} {
		var stdout, stderr bytes.Buffer
		if code := realMain(args, &stdout, &stderr); code != 1 {
			t.Fatalf("args %v: exit %d, want 1; stderr:\n%s", args, code, stderr.String())
		}
		if !strings.Contains(stderr.String(), "exactly one way") {
			t.Fatalf("args %v: missing usage error, got:\n%s", args, stderr.String())
		}
	}
}
