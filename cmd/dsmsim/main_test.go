package main

import (
	"path/filepath"
	"testing"
)

func TestRunHappyPath(t *testing.T) {
	json := filepath.Join(t.TempDir(), "report.json")
	if err := run("swim", 2, 0, "scaled", json, false, filepath.Join(t.TempDir(), "trace.csv")); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunMux(t *testing.T) {
	if err := run("hydro2d", 2, 0, "scaled", "", true, ""); err != nil {
		t.Fatalf("run with mux: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("nope", 2, 0, "scaled", "", false, ""); err == nil {
		t.Error("unknown app accepted")
	}
	if err := run("swim", 2, 0, "vax", "", false, ""); err == nil {
		t.Error("unknown machine accepted")
	}
	if err := run("swim", 1, 64, "scaled", "", false, ""); err == nil {
		t.Error("absurd size accepted")
	}
}
