// Command dsmsim runs one application once on the simulated DSM machine and
// prints what the hardware would let you measure (the event-counter report,
// perfex-style) plus the simulator's ground truth and the SGI-tool
// analogues (speedshop, ssusage, time).
//
//	dsmsim -app t3dheat -procs 8
//	dsmsim -app swim -procs 32 -size 262144 -json report.json -mux
package main

import (
	"flag"
	"fmt"
	"os"

	"scaltool/internal/apps"
	"scaltool/internal/counters"
	"scaltool/internal/machine"
	"scaltool/internal/perftools"
	"scaltool/internal/sim"
	"scaltool/internal/table"
)

func main() {
	appName := flag.String("app", "swim", "application (t3dheat, hydro2d, swim, matmul, spmv)")
	procs := flag.Int("procs", 4, "processor count")
	size := flag.Uint64("size", 0, "data-set bytes (0 = application default)")
	mach := flag.String("machine", "scaled", "machine: scaled | origin")
	jsonPath := flag.String("json", "", "also write the counter report (the per-run output file) here")
	mux := flag.Bool("mux", false, "emulate 2-counter multiplexed measurement (perfex -a -mp)")
	tracePath := flag.String("trace", "", "write the per-region timing trace (CSV) here")
	flag.Parse()

	if err := run(*appName, *procs, *size, *mach, *jsonPath, *mux, *tracePath); err != nil {
		fmt.Fprintln(os.Stderr, "dsmsim:", err)
		os.Exit(1)
	}
}

func run(appName string, procs int, size uint64, mach, jsonPath string, mux bool, tracePath string) error {
	var cfg machine.Config
	switch mach {
	case "scaled":
		cfg = machine.ScaledOrigin()
	case "origin":
		cfg = machine.Origin2000()
	default:
		return fmt.Errorf("unknown machine %q", mach)
	}
	app, err := apps.ByName(appName)
	if err != nil {
		return err
	}
	if size == 0 {
		size = app.DefaultBytes(cfg)
	}
	prog, err := app.Build(cfg, procs, size)
	if err != nil {
		return err
	}
	res, err := sim.Run(cfg, prog)
	if err != nil {
		return err
	}
	report := res.Report
	if mux {
		report = *counters.MultiplexReport(&report, counters.DefaultMux(uint64(size)^uint64(procs)))
	}

	fmt.Printf("%s on %s, %d processors, %d bytes (requested %d)\n\n",
		appName, cfg.Name, procs, res.DataBytes, size)

	tot := report.Total()
	tb := table.New("Hardware event counters (perfex analogue, summed over processors)",
		"event", "#count")
	for e := 0; e < counters.NumEvents; e++ {
		tb.Row(counters.Event(e).String(), tot[counters.Event(e)])
	}
	tb.Row("barriers (instrumented)", report.Barriers)
	tb.Row("locks (instrumented)", report.Locks)
	fmt.Println(tb.String())

	td := table.New("Derived ratios", "quantity", "#value")
	td.Row("cpi", tot.CPI())
	td.Row("h2 (L1 miss, L2 hit / instr)", tot.H2())
	td.Row("hm (L2 miss / instr)", tot.Hm())
	td.Row("L1 hit rate", tot.L1HitRate())
	td.Row("L2 local hit rate", tot.L2LocalHitRate())
	td.Row("memory instr fraction m", tot.MemFrac())
	fmt.Println(td.String())

	g := res.Ground
	tg := table.New("Simulator ground truth (not visible to Scal-Tool)", "quantity", "#value")
	tg.Row("busy cycles", g.BusyCycles)
	tg.Row("sync cycles", g.SyncCycles)
	tg.Row("imbalance cycles", g.ImbCycles)
	tg.Row("compulsory L2 misses", int(g.Compulsory))
	tg.Row("coherence L2 misses", int(g.Coherence))
	tg.Row("conflict L2 misses", int(g.Conflict))
	tg.Row("invalidations", int(g.Invalidations))
	tg.Row("sharing line events", int(g.SharingLines))
	fmt.Println(tg.String())

	prof := perftools.Speedshop(res)
	usage := perftools.Ssusage(res)
	fmt.Printf("speedshop MP cycles: %.0f (sync %.0f + wait %.0f)\n", prof.MPCycles(), prof.BarrierCycles, prof.WaitCycles)
	fmt.Printf("ssusage: %d pages (%d bytes)\n", usage.Pages, usage.Bytes())
	fmt.Printf("time: %.6f s at %d MHz (%.0f cycles)\n", perftools.Time(res, cfg.ClockMHz), cfg.ClockMHz, res.WallCycles)

	if jsonPath != "" {
		f, err := os.Create(jsonPath)
		if err != nil {
			return err
		}
		if err := report.WriteJSON(f); err != nil {
			_ = f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("\ncounter report written to %s\n", jsonPath)
	}
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return err
		}
		if err := res.WriteRegionTrace(f); err != nil {
			_ = f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("region trace written to %s\n", tracePath)
	}
	return nil
}
