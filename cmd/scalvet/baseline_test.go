package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// hotSrc is a sim entry point with one hot-loop allocation — the debt the
// baseline will record.
const hotSrc = `package sim

type Config struct{ N int }

var sink [][]uint64

func Run(cfg Config) {
	for i := 0; i < cfg.N; i++ {
		row := make([]uint64, cfg.N)
		sink = append(sink, row)
	}
}
`

// hotSrcRegressed adds a second fresh allocation to the same function: one
// finding over the baselined budget.
const hotSrcRegressed = `package sim

type Config struct{ N int }

var sink [][]uint64

func Run(cfg Config) {
	for i := 0; i < cfg.N; i++ {
		row := make([]uint64, cfg.N)
		sink = append(sink, row)
		extra := make([]uint64, cfg.N)
		sink = append(sink, extra)
	}
}
`

// hotSrcFixed removes the allocation entirely, leaving the baseline stale.
const hotSrcFixed = `package sim

type Config struct{ N int }

var sink [][]uint64

func Run(cfg Config) {
	row := make([]uint64, 1)
	sink = append(sink, row)
}
`

func runScalvet(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestBaselineWriteCheckCycle(t *testing.T) {
	writeModule(t, map[string]string{
		"go.mod":              "module throwaway\n\ngo 1.22\n",
		"internal/sim/run.go": hotSrc,
	})

	// Debt exists: the plain run fails.
	if code, out, _ := runScalvet(t, "./..."); code != 1 || !strings.Contains(out, "hotalloc") {
		t.Fatalf("plain run = %d, want 1 with a hotalloc finding:\n%s", code, out)
	}

	// Record it.
	if code, _, errb := runScalvet(t, "-baseline", "write", "./..."); code != 0 {
		t.Fatalf("-baseline write = %d, want 0 (stderr: %s)", code, errb)
	}
	data, err := os.ReadFile("scalvet.baseline.json")
	if err != nil {
		t.Fatalf("baseline file not written: %v", err)
	}
	for _, want := range []string{`"analyzer": "hotalloc"`, `"file": "internal/sim/run.go"`, `"symbol": "Run"`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("baseline missing %s:\n%s", want, data)
		}
	}

	// Same code under -baseline check: clean.
	if code, out, errb := runScalvet(t, "-baseline", "check", "./..."); code != 0 {
		t.Fatalf("-baseline check on unchanged code = %d, want 0\nstdout: %s\nstderr: %s", code, out, errb)
	}
}

// TestBaselineGateCatchesFreshAllocation is the gate-prover: a NEW hot-path
// allocation in an already-baselined function must still fail -baseline
// check — the per-key count budget, not the key alone, decides.
func TestBaselineGateCatchesFreshAllocation(t *testing.T) {
	writeModule(t, map[string]string{
		"go.mod":              "module throwaway\n\ngo 1.22\n",
		"internal/sim/run.go": hotSrc,
	})
	if code, _, errb := runScalvet(t, "-baseline", "write", "./..."); code != 0 {
		t.Fatalf("-baseline write = %d (stderr: %s)", code, errb)
	}

	if err := os.WriteFile(filepath.Join("internal", "sim", "run.go"), []byte(hotSrcRegressed), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, _ := runScalvet(t, "-baseline", "check", "./...")
	if code != 1 {
		t.Fatalf("-baseline check on regressed code = %d, want 1\nstdout: %s", code, out)
	}
	if n := strings.Count(out, "hotalloc"); n != 1 {
		t.Errorf("exactly the finding beyond the budget must surface, got %d:\n%s", n, out)
	}
}

func TestBaselineReportsStaleEntries(t *testing.T) {
	writeModule(t, map[string]string{
		"go.mod":              "module throwaway\n\ngo 1.22\n",
		"internal/sim/run.go": hotSrc,
	})
	if code, _, errb := runScalvet(t, "-baseline", "write", "./..."); code != 0 {
		t.Fatalf("-baseline write = %d (stderr: %s)", code, errb)
	}

	if err := os.WriteFile(filepath.Join("internal", "sim", "run.go"), []byte(hotSrcFixed), 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, errb := runScalvet(t, "-baseline", "check", "./...")
	if code != 0 {
		t.Fatalf("fixing debt must keep the gate green, got %d (stderr: %s)", code, errb)
	}
	if !strings.Contains(errb, "stale baseline entry") {
		t.Errorf("paid-down debt must be reported as stale:\n%s", errb)
	}
}

func TestBaselineRejectsBadMode(t *testing.T) {
	writeModule(t, map[string]string{"go.mod": "module throwaway\n\ngo 1.22\n", "p/p.go": "package p\n"})
	code, _, errb := runScalvet(t, "-baseline", "prune", "./...")
	if code != 2 || !strings.Contains(errb, `"write" or "check"`) {
		t.Fatalf("bad -baseline mode = %d, want 2 with usage hint (stderr: %s)", code, errb)
	}
}

func TestHelpDocumentsExitCodes(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-help"}, &out, &errb); code != 0 {
		t.Fatalf("-help = %d, want 0", code)
	}
	help := errb.String()
	for _, want := range []string{"Exit codes:", "0  clean", "1  findings", "2  usage error", "-baseline"} {
		if !strings.Contains(help, want) {
			t.Errorf("help text missing %q:\n%s", want, help)
		}
	}
}
