package main

import (
	"bytes"
	"testing"
)

// Two findings in two files, written in reverse-alphabetical order on
// disk: the golden output proves -json is sorted by file/line/col/analyzer
// and byte-stable across runs regardless of load parallelism.
const goldenA = `package model

func Close(a, b float64) bool {
	if a == b {
		return true
	}
	return a != b
}
`

const goldenB = `package model

func Same(x, y float64) bool {
	return x == y
}
`

const goldenWant = `[
  {
    "analyzer": "floatcmp",
    "file": "internal/model/a.go",
    "line": 4,
    "col": 7,
    "symbol": "Close",
    "message": "exact floating-point == comparison; use a tolerance or restructure the test"
  },
  {
    "analyzer": "floatcmp",
    "file": "internal/model/a.go",
    "line": 7,
    "col": 11,
    "symbol": "Close",
    "message": "exact floating-point != comparison; use a tolerance or restructure the test"
  },
  {
    "analyzer": "floatcmp",
    "file": "internal/model/b.go",
    "line": 4,
    "col": 11,
    "symbol": "Same",
    "message": "exact floating-point == comparison; use a tolerance or restructure the test"
  }
]
`

func TestJSONGolden(t *testing.T) {
	writeModule(t, map[string]string{
		"go.mod":              "module throwaway\n\ngo 1.22\n",
		"internal/model/b.go": goldenB,
		"internal/model/a.go": goldenA,
	})

	for round := 0; round < 2; round++ {
		var out, errb bytes.Buffer
		if code := run([]string{"-json", "./..."}, &out, &errb); code != 1 {
			t.Fatalf("round %d: run -json = %d, want 1 (stderr: %s)", round, code, errb.String())
		}
		if got := out.String(); got != goldenWant {
			t.Fatalf("round %d: -json output is not the golden form:\n--- got ---\n%s--- want ---\n%s", round, got, goldenWant)
		}
	}
}
