package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule lays out a throwaway module and chdirs into it; the test
// restores the working directory on cleanup.
func writeModule(t *testing.T, files map[string]string) {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	old, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.Chdir(old) })
}

const badSrc = `package model

func Equal(a, b float64) bool {
	return a == b
}
`

const goodSrc = `package model

func Equal(a, b float64) bool {
	return a > b || b > a
}
`

func TestRunFindsAndFixes(t *testing.T) {
	writeModule(t, map[string]string{
		"go.mod":                "module throwaway\n\ngo 1.22\n",
		"internal/model/bad.go": badSrc,
	})

	var out, errb bytes.Buffer
	if code := run([]string{"./..."}, &out, &errb); code != 1 {
		t.Fatalf("run on violating module = %d, want 1 (stderr: %s)", code, errb.String())
	}
	got := out.String()
	if !strings.Contains(got, "bad.go:4:") || !strings.Contains(got, "floatcmp") {
		t.Fatalf("diagnostic missing file:line or analyzer name:\n%s", got)
	}

	if err := os.WriteFile(filepath.Join("internal", "model", "bad.go"), []byte(goodSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	errb.Reset()
	if code := run([]string{"./..."}, &out, &errb); code != 0 {
		t.Fatalf("run on fixed module = %d, want 0\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
}

func TestRunJSON(t *testing.T) {
	writeModule(t, map[string]string{
		"go.mod":                "module throwaway\n\ngo 1.22\n",
		"internal/model/bad.go": badSrc,
	})

	var out, errb bytes.Buffer
	if code := run([]string{"-json", "./..."}, &out, &errb); code != 1 {
		t.Fatalf("run -json = %d, want 1 (stderr: %s)", code, errb.String())
	}
	got := out.String()
	for _, want := range []string{`"analyzer": "floatcmp"`, `"line": 4`} {
		if !strings.Contains(got, want) {
			t.Errorf("JSON output missing %s:\n%s", want, got)
		}
	}
}

func TestRunEnableFilter(t *testing.T) {
	writeModule(t, map[string]string{
		"go.mod":                "module throwaway\n\ngo 1.22\n",
		"internal/model/bad.go": badSrc,
	})

	var out, errb bytes.Buffer
	// Only panicmsg enabled: the float comparison must not be reported.
	if code := run([]string{"-enable", "panicmsg", "./..."}, &out, &errb); code != 0 {
		t.Fatalf("run -enable panicmsg = %d, want 0\nstdout: %s", code, out.String())
	}

	if code := run([]string{"-enable", "nosuch"}, &out, &errb); code != 2 {
		t.Fatalf("run -enable nosuch = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "unknown analyzer") {
		t.Errorf("stderr missing unknown-analyzer error: %s", errb.String())
	}
}

func TestRunList(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("run -list = %d, want 0", code)
	}
	for _, name := range []string{
		"floatcmp", "counterconv", "loopcapture", "sharedmut", "panicmsg", "exhauststate",
		"hotalloc", "deferloop", "atomicmix", "mutexcopy", "ctxhttp",
	} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %s", name)
		}
	}
}
