// Command scalvet is the repo-specific static-analysis gate for the
// Scal-Tool model core. It loads every package of the module (standard
// library only: go/ast + go/types with a source importer; no external
// dependencies) and reports file:line diagnostics from the analyzers in
// internal/analysis, exiting non-zero on findings.
//
// Usage:
//
//	scalvet [-enable hotalloc,floatcmp,...] [-json] [-baseline write|check] [packages]
//
// Packages default to ./... and are interpreted relative to the module
// root (found by walking up from the working directory). Suppress a
// diagnostic with a trailing "//scalvet:ignore reason" comment; the
// reason is mandatory. Track pre-existing debt instead of suppressing it:
// "-baseline write" records current findings in scalvet.baseline.json
// (keyed by analyzer+file+symbol, so line churn does not invalidate it),
// and "-baseline check" fails only on findings beyond the recorded ones.
//
// Exit codes: 0 clean, 1 findings, 2 usage or load error.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"scaltool/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("scalvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	enable := fs.String("enable", "", "comma-separated analyzers to run (default: all)")
	jsonOut := fs.Bool("json", false, "emit diagnostics as a JSON array, sorted by file/line/col/analyzer")
	list := fs.Bool("list", false, "list the analyzers and exit")
	baselineMode := fs.String("baseline", "", `baseline mode: "write" records current findings in the baseline file; "check" suppresses baselined findings and fails on new ones`)
	baselineFile := fs.String("baseline-file", "scalvet.baseline.json", "baseline path, relative to the module root")
	serial := fs.Bool("serial", false, "load packages on a single goroutine (debugging; output is identical)")
	fs.Usage = func() {
		fmt.Fprintf(stderr, `usage: scalvet [flags] [packages]

scalvet is the repo's static-analysis gate. Packages default to ./...,
relative to the module root. Suppress one finding with a trailing
"//scalvet:ignore reason" comment (the reason is mandatory); track
pre-existing debt with -baseline write / -baseline check.

Exit codes:
  0  clean: no findings (after //scalvet:ignore and baseline filtering)
  1  findings were reported
  2  usage error, or the module failed to load or type-check

Flags:
`)
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0 // -help prints the contract above, it is not an error
		}
		return 2
	}

	if *list {
		for _, a := range analysis.All() {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	switch *baselineMode {
	case "", "write", "check":
	default:
		fmt.Fprintf(stderr, "scalvet: -baseline must be \"write\" or \"check\", got %q\n", *baselineMode)
		return 2
	}
	analyzers, err := selectAnalyzers(*enable)
	if err != nil {
		fmt.Fprintln(stderr, "scalvet:", err)
		return 2
	}

	root, err := findModuleRoot()
	if err != nil {
		fmt.Fprintln(stderr, "scalvet:", err)
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	load := analysis.LoadModule
	if *serial {
		load = analysis.LoadModuleSerial
	}
	ms, err := load(root, patterns)
	if err != nil {
		fmt.Fprintln(stderr, "scalvet:", err)
		return 2
	}

	diags := analysis.Run(ms, analyzers)
	bpath := *baselineFile
	if !filepath.IsAbs(bpath) {
		bpath = filepath.Join(root, bpath)
	}
	switch *baselineMode {
	case "write":
		if err := analysis.NewBaseline(root, diags).WriteFile(bpath); err != nil {
			fmt.Fprintln(stderr, "scalvet:", err)
			return 2
		}
		fmt.Fprintf(stderr, "scalvet: wrote %d finding(s) to %s\n", len(diags), bpath)
		return 0
	case "check":
		base, err := analysis.LoadBaseline(bpath)
		if err != nil {
			fmt.Fprintln(stderr, "scalvet:", err)
			return 2
		}
		var stale []analysis.BaselineEntry
		diags, stale = base.Apply(root, diags)
		for _, e := range stale {
			fmt.Fprintf(stderr, "scalvet: stale baseline entry: %s %s %s (%d unmatched); prune with -baseline write\n",
				e.Analyzer, e.File, e.Symbol, e.Count)
		}
	}

	relativize(diags)
	sortRelativized(diags)
	if *jsonOut {
		if diags == nil {
			diags = []analysis.Diagnostic{} // encode a clean tree as [], not null
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(stderr, "scalvet:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "scalvet: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// selectAnalyzers resolves the -enable list against the registry.
func selectAnalyzers(enable string) ([]*analysis.Analyzer, error) {
	all := analysis.All()
	if enable == "" {
		return all, nil
	}
	byName := map[string]*analysis.Analyzer{}
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(enable, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q (see scalvet -list)", name)
		}
		out = append(out, a)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-enable %q selects no analyzers", enable)
	}
	return out, nil
}

// findModuleRoot walks up from the working directory to go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}

// relativize rewrites absolute file positions relative to the working
// directory for readable, clickable output.
func relativize(diags []analysis.Diagnostic) {
	cwd, err := os.Getwd()
	if err != nil {
		return
	}
	for i := range diags {
		if rel, err := filepath.Rel(cwd, diags[i].File); err == nil && !strings.HasPrefix(rel, "..") {
			diags[i].File = rel
		}
	}
}

// sortRelativized restores the file/line/col/analyzer order after
// relativize rewrote the file names — the output contract (and the -json
// golden test) promise deterministic, sorted diagnostics regardless of the
// working directory or load parallelism.
func sortRelativized(diags []analysis.Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
}
