// Command scalvet is the repo-specific static-analysis gate for the
// Scal-Tool model core. It loads every package of the module (standard
// library only: go/ast + go/types with a source importer; no external
// dependencies) and reports file:line diagnostics from the analyzers in
// internal/analysis, exiting non-zero on findings.
//
// Usage:
//
//	scalvet [-enable floatcmp,panicmsg,...] [-json] [packages]
//
// Packages default to ./... and are interpreted relative to the module
// root (found by walking up from the working directory). Suppress a
// diagnostic with a trailing "//scalvet:ignore reason" comment; the
// reason is mandatory.
//
// Exit codes: 0 clean, 1 findings, 2 usage or load error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"scaltool/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("scalvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	enable := fs.String("enable", "", "comma-separated analyzers to run (default: all)")
	jsonOut := fs.Bool("json", false, "emit diagnostics as a JSON array")
	list := fs.Bool("list", false, "list the analyzers and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range analysis.All() {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	analyzers, err := selectAnalyzers(*enable)
	if err != nil {
		fmt.Fprintln(stderr, "scalvet:", err)
		return 2
	}

	root, err := findModuleRoot()
	if err != nil {
		fmt.Fprintln(stderr, "scalvet:", err)
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.LoadModule(root, patterns)
	if err != nil {
		fmt.Fprintln(stderr, "scalvet:", err)
		return 2
	}

	diags := analysis.Run(pkgs, analyzers)
	relativize(diags)
	if *jsonOut {
		if diags == nil {
			diags = []analysis.Diagnostic{} // encode a clean tree as [], not null
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(stderr, "scalvet:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "scalvet: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// selectAnalyzers resolves the -enable list against the registry.
func selectAnalyzers(enable string) ([]*analysis.Analyzer, error) {
	all := analysis.All()
	if enable == "" {
		return all, nil
	}
	byName := map[string]*analysis.Analyzer{}
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(enable, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q (see scalvet -list)", name)
		}
		out = append(out, a)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-enable %q selects no analyzers", enable)
	}
	return out, nil
}

// findModuleRoot walks up from the working directory to go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}

// relativize rewrites absolute file positions relative to the working
// directory for readable, clickable output.
func relativize(diags []analysis.Diagnostic) {
	cwd, err := os.Getwd()
	if err != nil {
		return
	}
	for i := range diags {
		if rel, err := filepath.Rel(cwd, diags[i].File); err == nil && !strings.HasPrefix(rel, "..") {
			diags[i].File = rel
		}
	}
}
