// Command experiments regenerates every table and figure of the paper's
// evaluation section on the simulated machine. Its output is the data
// recorded in EXPERIMENTS.md.
//
// Usage:
//
//	experiments [-procs 32] [-only fig6] [-list]
package main

import (
	"flag"
	"fmt"
	"os"

	"scaltool/internal/experiments"
	"scaltool/internal/machine"
)

func main() {
	procs := flag.Int("procs", 32, "largest processor count (power of two)")
	only := flag.String("only", "", "run a single experiment by id (e.g. table1, fig6)")
	list := flag.Bool("list", false, "list experiment ids and exit")
	full := flag.Bool("fullsize", false, "use the full-size Origin 2000 configuration (slow)")
	flag.Parse()

	cfg := machine.ScaledOrigin()
	if *full {
		cfg = machine.Origin2000()
	}
	suite := experiments.NewSuite(cfg, *procs)

	if *list {
		for _, e := range suite.Experiments() {
			fmt.Printf("%-8s %s\n", e.ID, e.Name)
		}
		return
	}
	if *only != "" {
		e, err := suite.ByID(*only)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		out, err := e.Run()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("## %s\n\n%s\n", e.Name, out)
		return
	}
	fmt.Printf("Scal-Tool reproduction — machine %q, up to %d processors\n\n", cfg.Name, *procs)
	if err := suite.RunAll(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
