package main

import (
	"encoding/json"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestCmdApps(t *testing.T) {
	if err := cmdApps(); err != nil {
		t.Fatal(err)
	}
}

func TestCmdPlan(t *testing.T) {
	if err := cmdPlan([]string{"-app", "t3dheat", "-procs", "8"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdPlan([]string{"-app", "nope"}); err == nil {
		t.Error("unknown app accepted")
	}
	if err := cmdPlan([]string{"-machine", "vax"}); err == nil {
		t.Error("unknown machine accepted")
	}
}

func TestCmdAnalyze(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a campaign")
	}
	if err := cmdAnalyze([]string{"-app", "swim", "-procs", "4"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdAnalyze([]string{"-app", "swim", "-procs", "4", "-csv", "-raw-tm"}); err != nil {
		t.Fatal(err)
	}
}

func TestCmdWhatif(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a campaign")
	}
	if err := cmdWhatif([]string{"-app", "swim", "-procs", "4", "-l2x", "2", "-tsx", "0.5"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdWhatif([]string{"-app", "swim", "-procs", "4", "-tmx", "-3"}); err == nil {
		t.Error("negative scale accepted")
	}
}

// TestObsEndToEnd runs a tiny campaign with -trace-out and -metrics-out and
// validates both artifacts round-trip: the trace is chrome://tracing JSON
// with campaign→run→attempt nesting plus per-processor sim timelines, and
// the metrics snapshot is Prometheus text format with ≥ 10 distinct series.
func TestObsEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a campaign")
	}
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "trace.json")
	metricsPath := filepath.Join(dir, "metrics.prom")
	err := cmdAnalyze([]string{"-app", "swim", "-procs", "4",
		"-trace-out", tracePath, "-metrics-out", metricsPath, "-log-level", "error"})
	if err != nil {
		t.Fatal(err)
	}

	// --- Trace file ---
	data, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			TS   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			PID  int64          `json:"pid"`
			TID  int64          `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &trace); err != nil {
		t.Fatalf("trace is not trace_event JSON: %v", err)
	}
	type span struct {
		ts, end float64
		tid     int64
	}
	var campaigns, runs, attempts []span
	names := map[string]int{}
	simProcs := 0
	for _, e := range trace.TraceEvents {
		names[e.Name]++
		s := span{ts: e.TS, end: e.TS + e.Dur, tid: e.TID}
		switch e.Name {
		case "campaign":
			campaigns = append(campaigns, s)
		case "run":
			runs = append(runs, s)
		case "attempt":
			attempts = append(attempts, s)
		}
		if e.Ph == "M" && e.Name == "thread_name" {
			if n, _ := e.Args["name"].(string); strings.HasPrefix(n, "cpu ") {
				simProcs++
			}
		}
	}
	if len(campaigns) != 1 {
		t.Fatalf("campaign spans = %d, want 1", len(campaigns))
	}
	// A -procs 4 plan has 3 base + 3 ksync + uni runs + 1 kspin jobs.
	if len(runs) < 8 {
		t.Fatalf("run spans = %d, want ≥ 8", len(runs))
	}
	if len(attempts) < len(runs) {
		t.Fatalf("attempt spans = %d for %d runs", len(attempts), len(runs))
	}
	if names["sim.run"] < len(runs) {
		t.Errorf("sim.run spans = %d for %d runs", names["sim.run"], len(runs))
	}
	if names["model.fit"] != 1 {
		t.Errorf("model.fit spans = %d, want 1", names["model.fit"])
	}
	// Nesting: every run sits inside the campaign span; every attempt sits
	// inside a run span on the same lane.
	const slack = 1e3 // µs; span timestamps are captured a hair apart
	c := campaigns[0]
	for _, r := range runs {
		if r.ts < c.ts-slack || r.end > c.end+slack {
			t.Errorf("run [%g,%g] outside campaign [%g,%g]", r.ts, r.end, c.ts, c.end)
		}
	}
	for _, a := range attempts {
		ok := false
		for _, r := range runs {
			if a.tid == r.tid && a.ts >= r.ts-slack && a.end <= r.end+slack {
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("attempt [%g,%g] tid %d not nested in any run span", a.ts, a.end, a.tid)
		}
	}
	// The base runs' simulated per-processor timelines: the 1-, 2-, and
	// 4-proc base runs contribute 7 cpu threads and busy slices.
	if simProcs < 7 {
		t.Errorf("sim timeline cpu threads = %d, want ≥ 7", simProcs)
	}
	if names["busy"] == 0 {
		t.Error("no busy slices in the sim timelines")
	}

	// --- Metrics file ---
	mdata, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	series := map[string]bool{}
	for _, line := range strings.Split(string(mdata), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("malformed series line %q", line)
		}
		series[fields[0]] = true
	}
	if len(series) < 10 {
		t.Fatalf("metrics snapshot has %d distinct series, want ≥ 10:\n%s", len(series), mdata)
	}
	for _, want := range []string{
		"scaltool_campaign_runs_started_total",
		"scaltool_sim_runs_total",
		"scaltool_model_fits_total",
	} {
		if !series[want] {
			t.Errorf("metrics snapshot missing %s", want)
		}
	}
}

func TestCmdMeasureAndFit(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a campaign")
	}
	dir := t.TempDir()
	if err := cmdMeasure([]string{"-app", "swim", "-procs", "4", "-out", dir}); err != nil {
		t.Fatal(err)
	}
	if err := cmdFit([]string{"-dir", dir}); err != nil {
		t.Fatal(err)
	}
	if err := cmdFit([]string{"-dir", t.TempDir()}); err == nil {
		t.Error("empty dir accepted")
	}
}

// TestCLIFlagValidation drives every bad flag combination the run-based
// subcommands must reject before any simulation starts. Each case must fail
// fast with a message naming the offending flag.
func TestCLIFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		cmd  func([]string) error
		args []string
		want string
	}{
		{"resume without journal-dir", cmdAnalyze,
			[]string{"-resume"}, "-resume needs -journal-dir"},
		{"resume without journal-dir (measure)", cmdMeasure,
			[]string{"-resume", "-out", t.TempDir()}, "-resume needs -journal-dir"},
		{"zero shutdown grace", cmdAnalyze,
			[]string{"-shutdown-grace", "0s"}, "-shutdown-grace must be positive"},
		{"negative shutdown grace", cmdAnalyze,
			[]string{"-shutdown-grace", "-5s"}, "-shutdown-grace must be positive"},
		{"negative restart budget", cmdAnalyze,
			[]string{"-max-worker-restarts", "-1"}, "-max-worker-restarts must be non-negative"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cmd(tc.args)
			if err == nil {
				t.Fatalf("args %v accepted", tc.args)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("args %v: error %q does not mention %q", tc.args, err, tc.want)
			}
		})
	}
}

// TestCLIResumeRejectsSpentFault prepares a completed journal, then asks for
// a resume with a -fault-spec that targets a run the journal already records
// as finished. The fault could never fire, so the CLI must refuse up front
// rather than run a campaign whose injected failure silently never happens.
func TestCLIResumeRejectsSpentFault(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a campaign")
	}
	dir := t.TempDir()
	if err := cmdAnalyze([]string{"-app", "swim", "-procs", "4", "-journal-dir", dir}); err != nil {
		t.Fatal(err)
	}
	err := cmdAnalyze([]string{"-resume", "-journal-dir", dir, "-fault-spec", "failrun=ksync_p01_s0"})
	if err == nil {
		t.Fatal("resume with a spent fault target accepted")
	}
	if !strings.Contains(err.Error(), "never fire") {
		t.Fatalf("error %q does not explain the fault can never fire", err)
	}
	// Without the spent fault the same resume succeeds: everything is
	// replayed from the journal and the fit reruns.
	if err := cmdAnalyze([]string{"-resume", "-journal-dir", dir}); err != nil {
		t.Fatalf("plain resume of a completed journal: %v", err)
	}
}

// TestPprofAddrFailFast is the regression test for the async-bind bug: a
// -pprof-addr that cannot be bound must fail the command synchronously from
// observe(), before any simulation starts — not asynchronously from a
// server goroutine after main has proceeded.
func TestPprofAddrFailFast(t *testing.T) {
	// Occupy a port so the observer's bind must fail.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	c := commonFlags("test")
	if err := c.fs.Parse([]string{"-pprof-addr", ln.Addr().String()}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.observe(); err == nil {
		t.Fatal("observe() bound an already-taken -pprof-addr without error")
	} else if !strings.Contains(err.Error(), "pprof") {
		t.Fatalf("error %v does not identify the pprof server", err)
	}
}

// TestPprofServerDrain checks the debug server is shut down by flush (the
// command's drain path) instead of leaking: after flush the address is
// bindable again and requests are refused.
func TestPprofServerDrain(t *testing.T) {
	c := commonFlags("test")
	// Reserve a free port, release it, and hand it to the observer. (A
	// short race window, but the test binds it back immediately.)
	probe, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := probe.Addr().String()
	probe.Close()
	if err := c.fs.Parse([]string{"-pprof-addr", addr}); err != nil {
		t.Fatal(err)
	}
	_, flush, err := c.observe()
	if err != nil {
		t.Fatalf("observe() failed to bind %s: %v", addr, err)
	}
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatalf("live debug server refused /metrics: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics = %d, want 200", resp.StatusCode)
	}
	if err := flush(); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("address still held after flush (leaked server): %v", err)
	}
	ln.Close()
}
