package main

import "testing"

func TestCmdApps(t *testing.T) {
	if err := cmdApps(); err != nil {
		t.Fatal(err)
	}
}

func TestCmdPlan(t *testing.T) {
	if err := cmdPlan([]string{"-app", "t3dheat", "-procs", "8"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdPlan([]string{"-app", "nope"}); err == nil {
		t.Error("unknown app accepted")
	}
	if err := cmdPlan([]string{"-machine", "vax"}); err == nil {
		t.Error("unknown machine accepted")
	}
}

func TestCmdAnalyze(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a campaign")
	}
	if err := cmdAnalyze([]string{"-app", "swim", "-procs", "4"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdAnalyze([]string{"-app", "swim", "-procs", "4", "-csv", "-raw-tm"}); err != nil {
		t.Fatal(err)
	}
}

func TestCmdWhatif(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a campaign")
	}
	if err := cmdWhatif([]string{"-app", "swim", "-procs", "4", "-l2x", "2", "-tsx", "0.5"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdWhatif([]string{"-app", "swim", "-procs", "4", "-tmx", "-3"}); err == nil {
		t.Error("negative scale accepted")
	}
}

func TestCmdMeasureAndFit(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a campaign")
	}
	dir := t.TempDir()
	if err := cmdMeasure([]string{"-app", "swim", "-procs", "4", "-out", dir}); err != nil {
		t.Fatal(err)
	}
	if err := cmdFit([]string{"-dir", dir}); err != nil {
		t.Fatal(err)
	}
	if err := cmdFit([]string{"-dir", t.TempDir()}); err == nil {
		t.Error("empty dir accepted")
	}
}
