// Command scaltool is the reproduction's CLI — the workflow a programmer
// would use on a real machine:
//
//	scaltool apps                      list the available applications
//	scaltool plan    -app swim         show the Table 3 run matrix + cost
//	scaltool analyze -app swim         run the campaign, fit the model,
//	                                   print speedups, breakdown, validation
//	scaltool whatif  -app swim -l2x 2  §2.6 parameter studies (no re-run)
//
// Common flags: -procs (power of two, default 32), -machine scaled|origin,
// -s0 (base data-set bytes, 0 = the app default), -raw-tm (paper-faithful
// single-pass tm(n)), -csv (machine-readable tables).
//
// Robustness flags (see README's Robustness section): -max-retries and
// -run-timeout set the retry budget and per-attempt deadline of every run,
// -fault-spec injects deterministic faults for chaos drills, -health-json
// writes the machine-readable health report. -journal-dir makes the
// campaign crash-safe (every run outcome goes through a write-ahead journal
// before it counts) and -resume continues an interrupted campaign from that
// journal; -heartbeat-timeout/-max-worker-restarts arm the worker watchdog,
// and -shutdown-grace bounds how long a SIGINT/SIGTERM graceful stop may
// take before the process force-exits.
//
// Observability flags (see README's Observability section): -trace-out
// writes a Chrome trace_event file (campaign/run/attempt/fit spans plus the
// base runs' simulated per-processor timelines) for chrome://tracing or
// Perfetto, -metrics-out writes a Prometheus text-format snapshot,
// -log-level/-log-json control the structured stderr log, and -pprof-addr
// serves net/http/pprof with /metrics and /debug/vars on the side.
package main

import (
	"context"
	"encoding/json"
	"expvar"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"scaltool/internal/apps"
	"scaltool/internal/campaign"
	"scaltool/internal/diagnose"
	"scaltool/internal/faultinject"
	"scaltool/internal/health"
	"scaltool/internal/machine"
	"scaltool/internal/model"
	"scaltool/internal/obs"
	"scaltool/internal/perftools"
	"scaltool/internal/runcache"
	"scaltool/internal/table"
	"scaltool/internal/whatif"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "apps":
		err = cmdApps()
	case "plan":
		err = cmdPlan(args)
	case "analyze":
		err = cmdAnalyze(args)
	case "whatif":
		err = cmdWhatif(args)
	case "measure":
		err = cmdMeasure(args)
	case "fit":
		err = cmdFit(args)
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "scaltool: unknown command %q\n\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "scaltool:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage: scaltool <command> [flags]

commands:
  apps      list the available applications
  plan      show the Table 3 measurement plan and its Table 1 cost
  analyze   run the measurement campaign and print the model's breakdown
  whatif    evaluate machine-parameter changes on a fitted model (§2.6)
  measure   run the campaign and write one counter-report file per run
  fit       fit the model from a directory of counter-report files

run 'scaltool <command> -h' for flags.
`)
}

// common flags shared by the run-based subcommands.
type common struct {
	fs         *flag.FlagSet
	app        *string
	procs      *int
	s0         *uint64
	mach       *string
	rawTm      *bool
	csv        *bool
	workers    *int
	faultSpec  *string
	maxRetries *int
	runTimeout *time.Duration
	healthJSON *string

	journalDir    *string
	resume        *bool
	shutdownGrace *time.Duration
	heartbeat     *time.Duration
	maxRestarts   *int

	cacheMB  *int
	cacheDir *string

	traceOut   *string
	metricsOut *string
	logLevel   *string
	logJSON    *bool
	pprofAddr  *string
}

func commonFlags(name string) *common {
	fs := flag.NewFlagSet(name, flag.ExitOnError)
	return &common{
		fs:         fs,
		app:        fs.String("app", "swim", "application (see 'scaltool apps')"),
		procs:      fs.Int("procs", 32, "largest processor count (power of two)"),
		s0:         fs.Uint64("s0", 0, "base data-set bytes (0 = application default)"),
		mach:       fs.String("machine", "scaled", "machine: scaled | origin"),
		rawTm:      fs.Bool("raw-tm", false, "paper-faithful single-pass tm(n) (no MP decontamination)"),
		csv:        fs.Bool("csv", false, "emit CSV instead of aligned tables"),
		workers:    fs.Int("workers", 0, "concurrent simulated runs (0 = GOMAXPROCS)"),
		faultSpec:  fs.String("fault-spec", "", "fault-injection spec, e.g. seed=42,noise=0.02,transient=0.1 (chaos drills)"),
		maxRetries: fs.Int("max-retries", 2, "retries per run after a transient failure or blown deadline"),
		runTimeout: fs.Duration("run-timeout", 0, "per-attempt run deadline (0 = none)"),
		healthJSON: fs.String("health-json", "", "write the machine-readable health report to this file"),

		journalDir:    fs.String("journal-dir", "", "write-ahead journal directory: makes the campaign crash-safe and resumable"),
		resume:        fs.Bool("resume", false, "resume the interrupted campaign recorded in -journal-dir"),
		shutdownGrace: fs.Duration("shutdown-grace", 10*time.Second, "grace period for a SIGINT/SIGTERM stop before the process force-exits"),
		heartbeat:     fs.Duration("heartbeat-timeout", 0, "worker watchdog: restart a run making no progress for this long (0 = off)"),
		maxRestarts:   fs.Int("max-worker-restarts", 2, "watchdog restarts one run gets before it is quarantined"),

		cacheMB:    fs.Int("run-cache-mb", 0, "content-addressed run cache budget in MiB (0 = off): repeated (machine, program) runs skip re-simulation"),
		cacheDir:   fs.String("run-cache-dir", "", "spill evicted run-cache entries to this directory (needs -run-cache-mb)"),
		traceOut:   fs.String("trace-out", "", "write a Chrome trace_event JSON file (chrome://tracing, Perfetto)"),
		metricsOut: fs.String("metrics-out", "", "write a Prometheus text-format metrics snapshot to this file"),
		logLevel:   fs.String("log-level", "warn", "structured log level: debug | info | warn | error"),
		logJSON:    fs.Bool("log-json", false, "emit the structured log as JSON lines"),
		pprofAddr:  fs.String("pprof-addr", "", "serve net/http/pprof, /metrics, and /debug/vars on this address"),
	}
}

// observe builds the command's observer from the flags and installs it in a
// context. The returned flush writes the -trace-out and -metrics-out files;
// call it once the command's work is done.
func (c *common) observe() (context.Context, func() error, error) {
	level, err := obs.ParseLevel(*c.logLevel)
	if err != nil {
		return nil, nil, err
	}
	o := &obs.Observer{
		Metrics: obs.NewMetrics(),
		Logger:  obs.NewLogger(os.Stderr, level, *c.logJSON),
	}
	if *c.traceOut != "" {
		o.Trace = obs.NewTracer()
	}
	var pprofSrv *http.Server
	if *c.pprofAddr != "" {
		// Bind synchronously so a bad or taken address fails the command
		// here — before any simulation starts — instead of surfacing
		// asynchronously from a server goroutine after main has moved on.
		ln, err := net.Listen("tcp", *c.pprofAddr)
		if err != nil {
			return nil, nil, fmt.Errorf("pprof server: %w", err)
		}
		o.Metrics.PublishExpvar("scaltool") // /debug/vars
		pprofSrv = &http.Server{Handler: pprofMux(o.Metrics)}
		go func() {
			if err := pprofSrv.Serve(ln); err != nil && err != http.ErrServerClosed {
				fmt.Fprintln(os.Stderr, "scaltool: pprof server:", err)
			}
		}()
	}
	flush := func() error {
		if pprofSrv != nil {
			// Drain the debug server with the command's work: a short
			// grace for in-flight scrapes, then close, so the listener
			// never outlives the campaign it observed.
			sctx, cancel := context.WithTimeout(context.Background(), time.Second)
			defer cancel()
			if err := pprofSrv.Shutdown(sctx); err != nil {
				_ = pprofSrv.Close()
			}
		}
		if *c.traceOut != "" {
			if err := o.Trace.WriteFileAtomic(*c.traceOut); err != nil {
				return fmt.Errorf("trace: %w", err)
			}
		}
		if *c.metricsOut != "" {
			f, err := os.Create(*c.metricsOut)
			if err != nil {
				return fmt.Errorf("metrics: %w", err)
			}
			if err := o.Metrics.WritePrometheus(f); err != nil {
				_ = f.Close()
				return fmt.Errorf("metrics: %w", err)
			}
			if err := f.Close(); err != nil {
				return fmt.Errorf("metrics: %w", err)
			}
		}
		return nil
	}
	return obs.NewContext(context.Background(), o), flush, nil
}

// pprofMux builds the debug server's handler on a dedicated mux — pprof,
// /metrics, and /debug/vars — so nothing registers on the process-global
// DefaultServeMux (which panics on re-registration if a command constructs
// two observers in one process, as tests do).
func pprofMux(mt *obs.Metrics) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := mt.WritePrometheus(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	return mux
}

// validate cross-checks flag combinations that individual flag parsing
// cannot: mistakes here must fail before any simulation starts, not after a
// multi-hour campaign.
func (c *common) validate() error {
	if *c.resume && *c.journalDir == "" {
		return fmt.Errorf("-resume needs -journal-dir (the journal to resume from)")
	}
	if *c.shutdownGrace <= 0 {
		return fmt.Errorf("-shutdown-grace must be positive, got %s", *c.shutdownGrace)
	}
	if *c.maxRestarts < 0 {
		return fmt.Errorf("-max-worker-restarts must be non-negative, got %d", *c.maxRestarts)
	}
	if *c.cacheDir != "" && *c.cacheMB <= 0 {
		return fmt.Errorf("-run-cache-dir needs -run-cache-mb (spill without a cache has nothing to spill)")
	}
	return nil
}

// withShutdown installs the graceful-stop handler: the first SIGINT/SIGTERM
// cancels the campaign context, which drains the worker pool and flushes the
// journal on the normal unwind path; if that takes longer than
// -shutdown-grace the process force-exits. The returned release func
// uninstalls the handler.
func (c *common) withShutdown(ctx context.Context) (context.Context, func()) {
	ctx, cancel := context.WithCancel(ctx)
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	done := make(chan struct{})
	grace := *c.shutdownGrace
	go func() {
		select {
		case sig := <-sigs:
			fmt.Fprintf(os.Stderr, "scaltool: %v: stopping campaign, flushing journal (grace %s)\n", sig, grace)
			cancel()
			t := time.NewTimer(grace)
			defer t.Stop()
			select {
			case <-t.C:
				fmt.Fprintln(os.Stderr, "scaltool: shutdown grace expired; exiting")
				os.Exit(1)
			case <-done:
			}
		case <-done:
		}
	}()
	return ctx, func() {
		signal.Stop(sigs)
		close(done)
		cancel()
	}
}

// execute runs the campaign the flags describe: plain, durable
// (-journal-dir), or resumed (-resume), under the graceful-shutdown handler.
// On a durable result the journal stays open for Result.RecordFit; callers
// must CloseJournal.
func (c *common) execute(ctx context.Context, rn *campaign.Runner, app apps.App, plan campaign.Plan) (*campaign.Result, error) {
	ctx, release := c.withShutdown(ctx)
	defer release()
	if *c.journalDir == "" {
		return rn.Execute(ctx, app, plan)
	}
	opts := campaign.DurableOptions{Dir: *c.journalDir}
	if *c.resume {
		// The journal carries the campaign's app and plan; the command-line
		// -app/-procs/-s0 are ignored in favor of what was interrupted.
		return rn.Resume(ctx, opts)
	}
	return rn.ExecuteDurable(ctx, app, plan, opts)
}

// runner builds the fault-tolerant campaign runner the flags describe.
func (c *common) runner(cfg machine.Config) (*campaign.Runner, error) {
	rn := &campaign.Runner{
		Cfg: cfg, Workers: *c.workers,
		MaxRetries:        *c.maxRetries,
		RetryBase:         100 * time.Millisecond,
		RunTimeout:        *c.runTimeout,
		HeartbeatTimeout:  *c.heartbeat,
		MaxWorkerRestarts: *c.maxRestarts,
	}
	if *c.cacheMB > 0 {
		rn.Cache = runcache.New(runcache.Options{
			MaxBytes: int64(*c.cacheMB) << 20,
			SpillDir: *c.cacheDir,
		})
	}
	spec, err := faultinject.ParseSpec(*c.faultSpec)
	if err != nil {
		return nil, err
	}
	if spec.Active() {
		rn.Inject = faultinject.New(spec)
		// A hang fault with no deadline would be degraded to a transient
		// failure; give injected hangs a real deadline to be reaped by.
		if rn.RunTimeout == 0 && (spec.Hang > 0 || len(spec.StallRuns) > 0) {
			rn.RunTimeout = 30 * time.Second
		}
	}
	return rn, nil
}

// reportHealth prints the campaign health summary and, with -health-json,
// writes the full machine-readable report.
func (c *common) reportHealth(hr *health.Report) error {
	if hr == nil {
		return nil
	}
	if !hr.Clean() {
		fmt.Println(hr.Summary())
	}
	if *c.healthJSON == "" {
		return nil
	}
	f, err := os.Create(*c.healthJSON)
	if err != nil {
		return fmt.Errorf("health report: %w", err)
	}
	if err := hr.WriteJSON(f); err != nil {
		_ = f.Close()
		return fmt.Errorf("health report: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("health report: %w", err)
	}
	return nil
}

func (c *common) machine() (machine.Config, error) {
	switch *c.mach {
	case "scaled":
		return machine.ScaledOrigin(), nil
	case "origin":
		return machine.Origin2000(), nil
	}
	return machine.Config{}, fmt.Errorf("unknown machine %q (want scaled or origin)", *c.mach)
}

func (c *common) emit(t *table.Table) error {
	if *c.csv {
		return t.WriteCSV(os.Stdout)
	}
	fmt.Println(t.String())
	return nil
}

func cmdApps() error {
	tb := table.New("Applications", "name", "parallel model", "description")
	for _, name := range apps.Names() {
		a, err := apps.ByName(name)
		if err != nil {
			return err
		}
		tb.Row(name, a.ParallelModel(), a.Description())
	}
	fmt.Println(tb.String())
	return nil
}

func planFor(c *common) (apps.App, campaign.Plan, machine.Config, error) {
	cfg, err := c.machine()
	if err != nil {
		return nil, campaign.Plan{}, cfg, err
	}
	app, err := apps.ByName(*c.app)
	if err != nil {
		return nil, campaign.Plan{}, cfg, err
	}
	plan, err := campaign.NewPlan(app, cfg, *c.procs, *c.s0)
	return app, plan, cfg, err
}

func cmdPlan(args []string) error {
	c := commonFlags("plan")
	if err := c.fs.Parse(args); err != nil {
		return err
	}
	_, plan, _, err := planFor(c)
	if err != nil {
		return err
	}
	tb := table.New(fmt.Sprintf("Table 3 plan — %s (s0 = %d bytes)", plan.App, plan.S0),
		"run", "#procs", "#data-set bytes")
	for _, n := range plan.ProcCounts {
		tb.Row("base", n, int(plan.S0))
	}
	for _, s := range plan.UniSizes {
		tb.Row("uniprocessor", 1, int(s))
	}
	if err := c.emit(tb); err != nil {
		return err
	}
	cost := plan.Cost()
	ex := perftools.ExistingToolsCost(plan.N())
	tb2 := table.New("Resource cost (Table 1)", "method", "#runs", "#processors", "#files")
	tb2.Row("Scal-Tool", cost.Runs, cost.Processors, cost.Files)
	tb2.Row("time+speedshop", ex.Runs, ex.Processors, ex.Files)
	return c.emit(tb2)
}

// fitFor runs the campaign and fit. post, if non-nil, runs after the fit
// under the same observed context (so its spans and metrics land in the
// -trace-out/-metrics-out files) — the -diagnose-json hook.
func fitFor(c *common, post func(context.Context, *campaign.Result) error) (*campaign.Result, *model.Model, error) {
	if err := c.validate(); err != nil {
		return nil, nil, err
	}
	app, plan, cfg, err := planFor(c)
	if err != nil {
		return nil, nil, err
	}
	rn, err := c.runner(cfg)
	if err != nil {
		return nil, nil, err
	}
	ctx, flush, err := c.observe()
	if err != nil {
		return nil, nil, err
	}
	res, err := c.execute(ctx, rn, app, plan)
	if err != nil {
		return nil, nil, err
	}
	defer res.CloseJournal()
	opts := model.DefaultOptions(cfg.L2.SizeBytes)
	opts.RawTmN = *c.rawTm
	m, err := res.FitContext(ctx, opts)
	if err != nil {
		return nil, nil, err
	}
	if err := res.RecordFit(ctx, m); err != nil {
		return nil, nil, err
	}
	if err := res.CloseJournal(); err != nil {
		return nil, nil, fmt.Errorf("closing campaign journal: %w", err)
	}
	if post != nil {
		if err := post(ctx, res); err != nil {
			return nil, nil, err
		}
	}
	if err := flush(); err != nil {
		return nil, nil, err
	}
	return res, m, c.reportHealth(res.Health)
}

// writeDiagnosis runs the region-graph root-cause analysis on a finished
// campaign (internal/diagnose) and writes the self-verified ranked culprit
// report as JSON.
func writeDiagnosis(ctx context.Context, res *campaign.Result, path string) error {
	fam, err := diagnose.FromCampaign(res)
	if err != nil {
		return fmt.Errorf("diagnose: %w", err)
	}
	app, err := apps.ByName(res.Plan.App)
	if err != nil {
		return fmt.Errorf("diagnose: %w", err)
	}
	nmax := res.Plan.ProcCounts[len(res.Plan.ProcCounts)-1]
	prog, err := app.Build(res.Machine, nmax, res.Plan.S0)
	if err != nil {
		return fmt.Errorf("diagnose: building structure graph: %w", err)
	}
	rep, err := diagnose.Run(ctx, diagnose.BuildGraph(prog), fam, diagnose.Options{})
	if err != nil {
		return err
	}
	if err := rep.Verify(); err != nil {
		return fmt.Errorf("diagnose: report failed self-verification: %w", err)
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("diagnose: %w", err)
	}
	if err := json.NewEncoder(f).Encode(rep); err != nil {
		_ = f.Close()
		return fmt.Errorf("diagnose: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("diagnose: %w", err)
	}
	if len(rep.Culprits) > 0 {
		top := rep.Culprits[0]
		fmt.Printf("diagnosis: scaling loss %.4g cycles at %d procs; top culprit %q (%s, %.4g cycles recoverable) → %s\n",
			rep.ScalingLoss, rep.Procs[len(rep.Procs)-1], top.Region, top.Verdict, top.Recoverable, path)
	}
	return nil
}

func cmdAnalyze(args []string) error {
	c := commonFlags("analyze")
	diagOut := c.fs.String("diagnose-json", "",
		"write the region-graph scaling-loss diagnosis (ranked culprit report) to this file")
	if err := c.fs.Parse(args); err != nil {
		return err
	}
	var post func(context.Context, *campaign.Result) error
	if *diagOut != "" {
		post = func(ctx context.Context, res *campaign.Result) error {
			return writeDiagnosis(ctx, res, *diagOut)
		}
	}
	res, m, err := fitFor(c, post)
	if err != nil {
		return err
	}
	if m.Degradation.Degraded {
		fmt.Println(m.Degradation.Summary())
	}
	fmt.Printf("model: cpi0=%.3f (initial %.3f)  t2=%.1f  tm(1)=%.1f  compulsory=%.4f  cpi_imb=%.2f\n",
		m.CPI0, m.CPI0Initial, m.T2, m.Tm1, m.Compulsory, m.CpiImb)
	fmt.Printf("fit quality: RMSE=%.4f  R2=%.4f over %d L2-overflowing sizes\n\n", m.FitRMSE, m.FitR2, m.FitSizes)

	sp := table.New("Speedup", "#procs", "#wall cycles", "#speedup")
	for _, s := range m.Speedups() {
		sp.Row(s.Procs, s.Wall, s.Speedup)
	}
	if err := c.emit(sp); err != nil {
		return err
	}

	tb := table.New("Scalability bottlenecks (cycles accumulated over processors)",
		"#procs", "#Base", "#L2Lim", "#Sync", "#Imb", "#MP", "#L2Lim%", "#Sync%", "#Imb%")
	for _, bp := range m.Breakdown() {
		base := bp.Base
		tb.Row(bp.Procs, bp.Base, bp.L2Lim(), bp.Sync, bp.Imb, bp.MP(),
			100*bp.L2Lim()/base, 100*bp.Sync/base, 100*bp.Imb/base)
	}
	if err := c.emit(tb); err != nil {
		return err
	}

	meas := res.MeasuredMP()
	tv := table.New("Validation vs speedshop analogue", "#procs", "#model MP", "#measured MP", "#diff % of Base")
	for _, bp := range m.Breakdown() {
		tv.Row(bp.Procs, bp.MP(), meas[bp.Procs], 100*(bp.MP()-meas[bp.Procs])/bp.Base)
	}
	return c.emit(tv)
}

// cmdMeasure runs the campaign and writes the per-run report files — the
// measurement half of the paper's workflow (Table 1's "files" column).
func cmdMeasure(args []string) error {
	c := commonFlags("measure")
	out := c.fs.String("out", "scaltool-reports", "output directory for the report files")
	if err := c.fs.Parse(args); err != nil {
		return err
	}
	if err := c.validate(); err != nil {
		return err
	}
	app, plan, cfg, err := planFor(c)
	if err != nil {
		return err
	}
	rn, err := c.runner(cfg)
	if err != nil {
		return err
	}
	ctx, flush, err := c.observe()
	if err != nil {
		return err
	}
	res, err := c.execute(ctx, rn, app, plan)
	if err != nil {
		return err
	}
	if err := res.CloseJournal(); err != nil {
		return fmt.Errorf("closing campaign journal: %w", err)
	}
	nFiles, err := res.SaveReports(*out)
	if err != nil {
		return err
	}
	fmt.Printf("%d report files written to %s (plan: %d runs; kernels shared per machine)\n",
		nFiles, *out, plan.Cost().Runs)
	if err := flush(); err != nil {
		return err
	}
	return c.reportHealth(res.Health)
}

// cmdFit fits the model from report files alone — the analysis half, which
// needs no simulator and no application.
func cmdFit(args []string) error {
	c := commonFlags("fit")
	dir := c.fs.String("dir", "scaltool-reports", "directory of counter-report files")
	if err := c.fs.Parse(args); err != nil {
		return err
	}
	cfg, err := c.machine()
	if err != nil {
		return err
	}
	opts := model.DefaultOptions(cfg.L2.SizeBytes)
	opts.RawTmN = *c.rawTm
	ctx, flush, err := c.observe()
	if err != nil {
		return err
	}
	m, hr, err := campaign.FitDirTolerantContext(ctx, *dir, opts)
	if err != nil {
		return err
	}
	if err := flush(); err != nil {
		return err
	}
	if err := c.reportHealth(hr); err != nil {
		return err
	}
	if m.Degradation.Degraded {
		fmt.Println(m.Degradation.Summary())
	}
	fmt.Printf("model: cpi0=%.3f  t2=%.1f  tm(1)=%.1f  compulsory=%.4f\n\n", m.CPI0, m.T2, m.Tm1, m.Compulsory)
	tb := table.New("Scalability bottlenecks (cycles accumulated over processors)",
		"#procs", "#Base", "#L2Lim", "#Sync", "#Imb")
	for _, bp := range m.Breakdown() {
		tb.Row(bp.Procs, bp.Base, bp.L2Lim(), bp.Sync, bp.Imb)
	}
	return c.emit(tb)
}

func cmdWhatif(args []string) error {
	c := commonFlags("whatif")
	l2x := c.fs.Float64("l2x", 1, "L2 size factor k")
	tmx := c.fs.Float64("tmx", 1, "memory/interconnect latency scale")
	t2x := c.fs.Float64("t2x", 1, "L2 latency scale")
	tsx := c.fs.Float64("tsx", 1, "synchronization latency scale")
	cpix := c.fs.Float64("cpi0x", 1, "compute CPI scale (issue width)")
	if err := c.fs.Parse(args); err != nil {
		return err
	}
	_, m, err := fitFor(c, nil)
	if err != nil {
		return err
	}
	sc := whatif.Scenario{
		Name: "custom", L2SizeFactor: *l2x, TmScale: *tmx,
		T2Scale: *t2x, TSyncScale: *tsx, CPI0Scale: *cpix,
	}
	preds, err := whatif.Evaluate(m, sc)
	if err != nil {
		return err
	}
	tb := table.New(fmt.Sprintf("what-if: l2x=%g tmx=%g t2x=%g tsx=%g cpi0x=%g", *l2x, *tmx, *t2x, *tsx, *cpix),
		"#procs", "#baseline cycles", "#predicted cycles", "#speedup", "#new L2 miss rate")
	for _, p := range preds {
		tb.Row(p.Procs, p.BaselineCycles, p.NewCycles, p.SpeedupVsBaseline(), p.NewL2MissRate)
	}
	return c.emit(tb)
}
