// Package scaltool is a Go reproduction of Scal-Tool — "Scal-Tool:
// Pinpointing and Quantifying Scalability Bottlenecks in DSM
// Multiprocessors" (Solihin, Lam, Torrellas; SC 1999) — together with the
// complete substrate the paper ran on: an execution-driven simulator of a
// cache-coherent DSM multiprocessor in the style of the SGI Origin 2000
// (private L1/L2 caches, bit-vector directory coherence, bristled-hypercube
// interconnect, first-touch NUMA memory, R10000-style event counters), plus
// analogues of the three applications the paper evaluates and of the SGI
// tools it compares against.
//
// The workflow mirrors the paper:
//
//	cfg := scaltool.ScaledOrigin()
//	app, _ := scaltool.AppByName("swim")
//	a, err := scaltool.Analyze(cfg, app, 32)       // Table 3 campaign + model fit
//	for _, bp := range a.Breakdown() { ... }       // Figures 6/9/12
//	preds, _ := a.WhatIf(scaltool.DoubleL2())      // §2.6, no re-run
//
// Analyze executes the 2n−1 measurement runs of Table 3 (the application at
// the base data-set size for each processor count, plus uniprocessor runs at
// fractional sizes), runs the §2.4.2 estimation kernels, and fits the
// empirical model: cpi0 (with the unbiased compulsory-miss adjustment), t2
// and tm(n), the compulsory and coherence miss rates, the synchronization
// and load-imbalance instruction fractions, and finally the cycle breakdown
// into Base, L2Lim (insufficient caching space), Sync and Imb.
package scaltool

import (
	"context"
	"fmt"
	"time"

	"scaltool/internal/apps"
	"scaltool/internal/campaign"
	"scaltool/internal/counters"
	"scaltool/internal/health"
	"scaltool/internal/machine"
	"scaltool/internal/model"
	"scaltool/internal/perftools"
	"scaltool/internal/sim"
	"scaltool/internal/whatif"
)

// Machine configuration.
type (
	// MachineConfig describes the simulated DSM machine.
	MachineConfig = machine.Config
	// CacheConfig describes one cache level.
	CacheConfig = machine.CacheConfig
)

// Origin2000 returns the paper's platform at full size.
func Origin2000() MachineConfig { return machine.Origin2000() }

// ScaledOrigin returns the default experiment machine — a ratio-preserving
// scale-down of the Origin 2000 that runs full campaigns in seconds.
func ScaledOrigin() MachineConfig { return machine.ScaledOrigin() }

// Applications.
type (
	// App generates simulated programs for one application.
	App = apps.App
)

// Apps lists the registered application names (the paper's three plus the
// demo apps).
func Apps() []string { return apps.Names() }

// AppByName looks up a registered application.
func AppByName(name string) (App, error) { return apps.ByName(name) }

// Programs and direct simulation (for custom applications).
type (
	// Program is a simulated parallel application: barrier-delimited
	// regions of per-processor operation streams.
	Program = sim.Program
	// Stream is one processor's work within a region.
	Stream = sim.Stream
	// RunResult is the outcome of one simulated run: the event-counter
	// report (all Scal-Tool sees) plus simulator ground truth (for
	// validation only).
	RunResult = sim.Result
	// CounterReport is the per-run hardware-event-counter file.
	CounterReport = counters.RunReport
)

// NewProgram starts building a custom program; see the examples/customapp
// example.
func NewProgram(name string, procs int, dataBytes uint64, pageBytes int) (*Program, error) {
	return sim.NewProgram(name, procs, dataBytes, pageBytes)
}

// Simulate runs a program on a machine.
func Simulate(cfg MachineConfig, prog *Program) (*RunResult, error) { return sim.Run(cfg, prog) }

// Campaign planning and the fitted model.
type (
	// Plan is the Table 3 run matrix.
	Plan = campaign.Plan
	// CampaignResult holds every run of a campaign.
	CampaignResult = campaign.Result
	// Model is the fitted empirical scalability model.
	Model = model.Model
	// ModelOptions configures the fit.
	ModelOptions = model.Options
	// BreakdownPoint is one processor count of the Figure 6/9/12 charts.
	BreakdownPoint = model.BreakdownPoint
	// ResourceCost is the Table 1 accounting (runs/processors/files).
	ResourceCost = perftools.ResourceCost
	// Scenario is a §2.6 what-if machine change.
	Scenario = whatif.Scenario
	// Prediction is a what-if outcome for one processor count.
	Prediction = whatif.Prediction
	// HealthReport records every repair, retry, quarantine, and permanent
	// failure of a campaign's fault-tolerance layer.
	HealthReport = health.Report
	// Degradation states how far a fit ran below its full input set.
	Degradation = model.Degradation
)

// Standard what-if scenarios.
var (
	// DoubleL2 doubles the L2 capacity (Eq. 11 estimate).
	DoubleL2 = whatif.DoubleL2
	// FasterMemory halves tm.
	FasterMemory = whatif.FasterMemory
	// FasterSync quarters tsync.
	FasterSync = whatif.FasterSync
	// WiderIssue scales cpi0 by 1/1.5.
	WiderIssue = whatif.WiderIssue
)

// Analysis bundles a finished campaign with its fitted model.
type Analysis struct {
	Plan     Plan
	Campaign *CampaignResult
	// Health is the campaign's fault-tolerance record (never nil). A clean
	// campaign has Health.Clean() == true; after faults, Model.Degradation
	// states what the fit had to do without.
	Health *HealthReport
	Model  *Model
}

// Options tunes Analyze.
type Options struct {
	// S0 overrides the application's default base data-set size.
	S0 uint64
	// Workers bounds concurrent simulated runs (0 = GOMAXPROCS).
	Workers int
	// MaxRetries bounds re-attempts per run after a transient failure or a
	// blown per-attempt deadline (0 = one attempt per run).
	MaxRetries int
	// RunTimeout is the per-attempt deadline (0 = none).
	RunTimeout time.Duration
	// Model overrides the model options (zero value = defaults for the
	// machine's L2).
	Model ModelOptions
}

// Analyze runs the full Scal-Tool workflow: plan the Table 3 campaign,
// execute it on the simulated machine, and fit the model. maxProcs must be
// a power of two.
func Analyze(cfg MachineConfig, app App, maxProcs int) (*Analysis, error) {
	return AnalyzeOpts(cfg, app, maxProcs, Options{})
}

// AnalyzeOpts is Analyze with explicit options.
func AnalyzeOpts(cfg MachineConfig, app App, maxProcs int, opts Options) (*Analysis, error) {
	return AnalyzeContext(context.Background(), cfg, app, maxProcs, opts)
}

// AnalyzeContext is AnalyzeOpts under a context: cancellation stops the
// campaign at the next run boundary, and an observer installed in ctx
// (internal/obs) sees the whole workflow — campaign/run/attempt/fit spans,
// run and fit metrics, and structured logs carrying each run's identity.
func AnalyzeContext(ctx context.Context, cfg MachineConfig, app App, maxProcs int, opts Options) (*Analysis, error) {
	plan, err := campaign.NewPlan(app, cfg, maxProcs, opts.S0)
	if err != nil {
		return nil, err
	}
	rn := &campaign.Runner{
		Cfg: cfg, Workers: opts.Workers,
		MaxRetries: opts.MaxRetries,
		RetryBase:  100 * time.Millisecond,
		RunTimeout: opts.RunTimeout,
	}
	res, err := rn.Execute(ctx, app, plan)
	if err != nil {
		return nil, fmt.Errorf("scaltool: campaign for %s: %w", app.Name(), err)
	}
	mopts := opts.Model
	if mopts.L2Bytes == 0 {
		mopts = model.DefaultOptions(cfg.L2.SizeBytes)
		mopts.Refit = opts.Model.Refit
		mopts.RawTmN = opts.Model.RawTmN
	}
	m, err := res.FitContext(ctx, mopts)
	if err != nil {
		return nil, fmt.Errorf("scaltool: fitting %s: %w", app.Name(), err)
	}
	return &Analysis{Plan: plan, Campaign: res, Health: res.Health, Model: m}, nil
}

// Breakdown returns the Figure 6/9/12 curves: per processor count, the
// measured cycles (Base) and the estimated L2Lim/Sync/Imb effects.
func (a *Analysis) Breakdown() []BreakdownPoint { return a.Model.Breakdown() }

// Speedups returns the measured speedup curve (Figures 5/8/11).
func (a *Analysis) Speedups() []model.SpeedupPoint { return a.Model.Speedups() }

// MeasuredMP returns the speedshop-analogue multiprocessor-overhead
// measurement per processor count — the validation series of Figures
// 7/10/13.
func (a *Analysis) MeasuredMP() map[int]float64 { return a.Campaign.MeasuredMP() }

// Cost returns the campaign's Table 1 resource cost.
func (a *Analysis) Cost() ResourceCost { return a.Plan.Cost() }

// ExistingToolsCost returns the Table 1 cost of the time+speedshop
// methodology for n processor-count points.
func ExistingToolsCost(n int) ResourceCost { return perftools.ExistingToolsCost(n) }

// WhatIf evaluates a §2.6 scenario against the fitted model, without
// re-running the application.
func (a *Analysis) WhatIf(sc Scenario) ([]Prediction, error) {
	return whatif.Evaluate(a.Model, sc)
}

// SegmentModel fits the scalability model for one application segment —
// the regions whose names contain substr (the paper's per-segment analysis,
// §2.1). The campaign's runs are reused; nothing is re-executed.
func (a *Analysis) SegmentModel(substr string) (*Model, error) {
	opts := model.DefaultOptions(a.Campaign.Machine.L2.SizeBytes)
	return a.Campaign.FitSegment(substr, opts)
}

// Segments lists the distinct region (routine) names of the application's
// base run.
func (a *Analysis) Segments() []string {
	return a.Campaign.BaseRuns[a.Plan.ProcCounts[0]].Segments()
}
