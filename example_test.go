package scaltool_test

import (
	"fmt"
	"log"
	"sort"

	"scaltool"
)

// The full Scal-Tool workflow: campaign, fit, breakdown. (A 4-processor
// campaign keeps the example fast; the paper's scale is 32.)
func Example() {
	cfg := scaltool.ScaledOrigin()
	app, err := scaltool.AppByName("hydro2d")
	if err != nil {
		log.Fatal(err)
	}
	a, err := scaltool.Analyze(cfg, app, 4)
	if err != nil {
		log.Fatal(err)
	}
	for _, bp := range a.Breakdown() {
		fmt.Printf("n=%d dominant=%s\n", bp.Procs, dominant(bp))
	}
	// Output:
	// n=1 dominant=L2Lim
	// n=2 dominant=Imb
	// n=4 dominant=Imb
}

func dominant(bp scaltool.BreakdownPoint) string {
	type bar struct {
		name string
		v    float64
	}
	bars := []bar{{"L2Lim", bp.L2Lim()}, {"Sync", bp.Sync}, {"Imb", bp.Imb}}
	sort.SliceStable(bars, func(i, j int) bool { return bars[i].v > bars[j].v })
	return bars[0].name
}

// Building and simulating a custom program directly.
func ExampleSimulate() {
	cfg := scaltool.ScaledOrigin()
	prog, err := scaltool.NewProgram("demo", 2, 8192, cfg.PageBytes)
	if err != nil {
		log.Fatal(err)
	}
	arr, err := prog.Alloc("a", 8192)
	if err != nil {
		log.Fatal(err)
	}
	reg := prog.AddRegion("sweep")
	reg.Proc(0).Read(arr.Base, 512, 8, 2)
	reg.Proc(1).Read(arr.Base+4096, 512, 8, 2)
	res, err := scaltool.Simulate(cfg, prog)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("procs=%d barriers=%d deterministic=%v\n",
		res.Report.Procs, res.Report.Barriers, res.WallCycles > 0)
	// Output:
	// procs=2 barriers=1 deterministic=true
}

// What-if studies never re-run the application.
func ExampleAnalysis_WhatIf() {
	cfg := scaltool.ScaledOrigin()
	app, err := scaltool.AppByName("swim")
	if err != nil {
		log.Fatal(err)
	}
	a, err := scaltool.Analyze(cfg, app, 4)
	if err != nil {
		log.Fatal(err)
	}
	preds, err := a.WhatIf(scaltool.FasterMemory())
	if err != nil {
		log.Fatal(err)
	}
	improved := 0
	for _, p := range preds {
		if p.NewCycles < p.BaselineCycles {
			improved++
		}
	}
	fmt.Printf("faster memory helps at %d of %d processor counts\n", improved, len(preds))
	// Output:
	// faster memory helps at 3 of 3 processor counts
}
