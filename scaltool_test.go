package scaltool

import (
	"math"
	"testing"
)

func TestAppsRegistry(t *testing.T) {
	names := Apps()
	if len(names) < 5 {
		t.Fatalf("Apps = %v", names)
	}
	for _, want := range []string{"t3dheat", "hydro2d", "swim"} {
		if _, err := AppByName(want); err != nil {
			t.Errorf("AppByName(%q): %v", want, err)
		}
	}
}

func TestConfigsValidate(t *testing.T) {
	for _, c := range []MachineConfig{Origin2000(), ScaledOrigin()} {
		if err := c.Validate(); err != nil {
			t.Errorf("%s: %v", c.Name, err)
		}
	}
}

func TestAnalyzeEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign")
	}
	cfg := ScaledOrigin()
	app, err := AppByName("hydro2d")
	if err != nil {
		t.Fatal(err)
	}
	a, err := Analyze(cfg, app, 8)
	if err != nil {
		t.Fatal(err)
	}
	bps := a.Breakdown()
	if len(bps) != 4 {
		t.Fatalf("breakdown points = %d", len(bps))
	}
	// Validation: model MP vs speedshop MP within the small-campaign band.
	measured := a.MeasuredMP()
	for _, bp := range bps {
		if diff := math.Abs(bp.MP()-measured[bp.Procs]) / bp.Base; diff > 0.2 {
			t.Errorf("n=%d: MP diff %.0f%% of base", bp.Procs, 100*diff)
		}
	}
	// Speedups ascend for this modestly-scaling app up to 8.
	sps := a.Speedups()
	if sps[0].Speedup != 1 {
		t.Errorf("speedup(1) = %g", sps[0].Speedup)
	}
	if sps[len(sps)-1].Speedup <= sps[0].Speedup {
		t.Error("no speedup at all")
	}
	// Cost matches the plan.
	cost := a.Cost()
	if cost.Runs < 2*4-1 {
		t.Errorf("cost = %+v", cost)
	}
	// What-if machinery reachable from the facade.
	preds, err := a.WhatIf(FasterMemory())
	if err != nil {
		t.Fatal(err)
	}
	if len(preds) != 4 {
		t.Fatalf("predictions = %d", len(preds))
	}
	for _, p := range preds {
		if p.NewCycles > p.BaselineCycles {
			t.Errorf("n=%d: faster memory slowed things down", p.Procs)
		}
	}
}

func TestAnalyzeRejectsBadInputs(t *testing.T) {
	cfg := ScaledOrigin()
	app, _ := AppByName("swim")
	if _, err := Analyze(cfg, app, 3); err == nil {
		t.Error("non-power-of-two maxProcs accepted")
	}
	if _, err := Analyze(MachineConfig{}, app, 2); err == nil {
		t.Error("invalid machine accepted")
	}
}

func TestCustomProgramThroughFacade(t *testing.T) {
	cfg := ScaledOrigin()
	prog, err := NewProgram("custom", 2, 4096, cfg.PageBytes)
	if err != nil {
		t.Fatal(err)
	}
	arr, err := prog.Alloc("a", 4096)
	if err != nil {
		t.Fatal(err)
	}
	reg := prog.AddRegion("work")
	reg.Proc(0).Read(arr.Base, 256, 8, 2)
	reg.Proc(1).Read(arr.Base+2048, 256, 8, 2)
	res, err := Simulate(cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	if res.WallCycles <= 0 || res.Report.Procs != 2 {
		t.Fatalf("result = %+v", res)
	}
}

func TestExistingToolsCost(t *testing.T) {
	c := ExistingToolsCost(6)
	if c.Runs != 12 || c.Processors != 126 {
		t.Fatalf("existing cost = %+v", c)
	}
}

func TestSegmentModelThroughFacade(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign")
	}
	cfg := ScaledOrigin()
	app, _ := AppByName("t3dheat")
	a, err := Analyze(cfg, app, 4)
	if err != nil {
		t.Fatal(err)
	}
	segs := a.Segments()
	if len(segs) < 5 {
		t.Fatalf("segments = %v", segs)
	}
	m, err := a.SegmentModel("matvec")
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Breakdown()) != 3 {
		t.Fatalf("segment breakdown points = %d", len(m.Breakdown()))
	}
	if _, err := a.SegmentModel("nope"); err == nil {
		t.Error("unknown segment accepted")
	}
}
