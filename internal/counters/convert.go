package counters

import "scaltool/internal/assert"

// MaxExact is the largest counter value float64 represents exactly (2^53).
// Event counters beyond it would silently lose precision in the model's
// least-squares fits — exactly the class of bug the scalvet counterconv
// analyzer exists to catch.
const MaxExact = uint64(1) << 53

// ToFloat converts a counter value to float64, panicking if the value is
// too large to represent exactly. It is the allowlisted conversion helper
// the counterconv analyzer steers counter arithmetic through.
func ToFloat(v uint64) float64 {
	if v > MaxExact {
		assert.Failf("counters: value %d exceeds float64's exact integer range (2^53)", v)
	}
	return float64(v)
}
