package counters

// The R10000 has only two physical counters. Counting more than two events
// in one run requires multiplexing: perfex -a -mp rotates the event set
// across time slices and extrapolates each event's count from the fraction
// of time it was actually counted. The extrapolation is unbiased but noisy.
//
// Multiplex models that: given the true counter values, it returns what a
// two-counter multiplexed measurement would report, with a deterministic
// per-event relative perturbation derived from a seed (so runs are
// reproducible). Cycles and graduated instructions are reported exactly —
// perfex always keeps one rotation slot for the pair it needs for timing —
// which matches observed perfex behaviour where cycle counts are stable and
// cache-miss counts jitter.

// MuxOptions configures the multiplexed-measurement emulation.
type MuxOptions struct {
	// RelError is the worst-case relative error injected into multiplexed
	// events (default 0.02 ≈ what perfex multiplexing typically shows on
	// steady workloads).
	RelError float64
	// Seed makes the perturbation deterministic per run.
	Seed uint64
}

// DefaultMux returns the default emulation settings.
func DefaultMux(seed uint64) MuxOptions { return MuxOptions{RelError: 0.02, Seed: seed} }

// Multiplex returns the counter values a 2-counter multiplexed run would
// report for the given true values.
func Multiplex(truth Set, opt MuxOptions) Set {
	if opt.RelError < 0 {
		opt.RelError = 0
	}
	out := truth
	for e := 0; e < NumEvents; e++ {
		switch Event(e) {
		case Cycles, GradInstr:
			continue // exact
		}
		v := truth[e]
		if v == 0 {
			continue
		}
		// Deterministic perturbation in [-RelError, +RelError].
		h := splitmix64(opt.Seed ^ (uint64(e)+1)*0x9e3779b97f4a7c15)
		frac := float64(h%2_000_001)/1_000_000 - 1 // [-1, 1]
		scaled := float64(v) * (1 + frac*opt.RelError)
		if scaled < 0 {
			scaled = 0
		}
		out[e] = uint64(scaled + 0.5)
	}
	return out
}

// MultiplexReport applies Multiplex to every processor of a report,
// returning a new report. The seed is mixed with the processor index so
// different processors jitter independently.
func MultiplexReport(r *RunReport, opt MuxOptions) *RunReport {
	out := *r
	out.PerProc = make([]Set, len(r.PerProc))
	for p, s := range r.PerProc {
		po := opt
		po.Seed = splitmix64(opt.Seed ^ uint64(p) + 0xabcdef)
		out.PerProc[p] = Multiplex(s, po)
	}
	return &out
}

// splitmix64 is the standard 64-bit mixing function — deterministic,
// seedable, and good enough for perturbation generation.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
