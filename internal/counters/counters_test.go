package counters

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func sampleSet() Set {
	var s Set
	s.Add(Cycles, 1_000_000)
	s.Add(GradInstr, 800_000)
	s.Add(GradLoads, 200_000)
	s.Add(GradStores, 100_000)
	s.Add(L1DMisses, 30_000)
	s.Add(L2Misses, 10_000)
	s.Add(StoreShared, 50)
	return s
}

func TestDerivedRatios(t *testing.T) {
	s := sampleSet()
	if got, want := s.CPI(), 1.25; got != want {
		t.Errorf("CPI = %g, want %g", got, want)
	}
	if got, want := s.Hm(), 10_000.0/800_000; got != want {
		t.Errorf("Hm = %g, want %g", got, want)
	}
	if got, want := s.H2(), 20_000.0/800_000; got != want {
		t.Errorf("H2 = %g, want %g", got, want)
	}
	if got, want := s.MemFrac(), 300_000.0/800_000; got != want {
		t.Errorf("MemFrac = %g, want %g", got, want)
	}
	if got, want := s.L1HitRate(), 1-30_000.0/300_000; got != want {
		t.Errorf("L1HitRate = %g, want %g", got, want)
	}
	if got, want := s.L2LocalHitRate(), 1-10_000.0/30_000; math.Abs(got-want) > 1e-15 {
		t.Errorf("L2LocalHitRate = %g, want %g", got, want)
	}
}

func TestDerivedRatiosZeroGuards(t *testing.T) {
	var s Set
	if s.CPI() != 0 || s.Hm() != 0 || s.H2() != 0 || s.MemFrac() != 0 {
		t.Error("zero set ratios should be 0")
	}
	if s.L1HitRate() != 0 {
		t.Error("L1HitRate on zero ops should be 0")
	}
	if s.L2LocalHitRate() != 1 {
		t.Error("L2LocalHitRate with no L1 misses should be 1 (nothing missed)")
	}
	// H2 guards against L1 < L2 (possible under multiplex jitter).
	s.Add(GradInstr, 100)
	s.Add(L1DMisses, 5)
	s.Add(L2Misses, 9)
	if s.H2() != 0 {
		t.Error("H2 with L2>L1 should clamp to 0")
	}
}

func TestMerge(t *testing.T) {
	a, b := sampleSet(), sampleSet()
	a.Merge(b)
	if a[Cycles] != 2_000_000 || a[StoreShared] != 100 {
		t.Fatalf("Merge wrong: %v", a)
	}
}

func TestEventString(t *testing.T) {
	if Cycles.String() != "cycles" || StoreShared.String() != "store_shared" {
		t.Error("event names wrong")
	}
	if Event(200).String() == "" {
		t.Error("out-of-range event name empty")
	}
}

func sampleReport() *RunReport {
	return &RunReport{
		Machine: "tiny", App: "demo", Procs: 2, DataBytes: 4096,
		PerProc:    []Set{sampleSet(), sampleSet()},
		WallCycles: 1_000_000,
		Barriers:   40, Locks: 3,
		TouchedPages: 7, PageBytes: 1024,
	}
}

func TestReportTotalsAndValidate(t *testing.T) {
	r := sampleReport()
	if err := r.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if r.TotalCycles() != 2_000_000 {
		t.Fatalf("TotalCycles = %d", r.TotalCycles())
	}
	tot := r.Total()
	if tot[GradInstr] != 1_600_000 {
		t.Fatalf("Total instr = %d", tot[GradInstr])
	}
}

func TestReportValidateRejects(t *testing.T) {
	bad1 := sampleReport()
	bad1.Procs = 3 // mismatch with PerProc
	bad2 := sampleReport()
	bad2.DataBytes = 0
	bad3 := sampleReport()
	bad3.PerProc[1][L2Misses] = bad3.PerProc[1][L1DMisses] + 1
	bad4 := sampleReport()
	bad4.PerProc[0][GradInstr] = 0
	bad5 := sampleReport()
	bad5.Procs = 0
	bad5.PerProc = nil
	for i, r := range []*RunReport{bad1, bad2, bad3, bad4, bad5} {
		if err := r.Validate(); err == nil {
			t.Errorf("case %d: want validation error", i)
		}
	}
}

func TestReportJSONRoundTrip(t *testing.T) {
	r := sampleReport()
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.App != r.App || got.Procs != r.Procs || got.Total() != r.Total() || got.Barriers != r.Barriers {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, r)
	}
}

func TestReadJSONRejectsGarbage(t *testing.T) {
	if _, err := ReadJSON(bytes.NewBufferString("{")); err == nil {
		t.Error("truncated JSON accepted")
	}
	if _, err := ReadJSON(bytes.NewBufferString(`{"procs":0}`)); err == nil {
		t.Error("invalid report accepted")
	}
}

func TestMultiplexExactForTimingPair(t *testing.T) {
	s := sampleSet()
	m := Multiplex(s, DefaultMux(7))
	if m[Cycles] != s[Cycles] || m[GradInstr] != s[GradInstr] {
		t.Fatal("multiplex perturbed the timing pair")
	}
}

func TestMultiplexDeterministic(t *testing.T) {
	s := sampleSet()
	a := Multiplex(s, DefaultMux(42))
	b := Multiplex(s, DefaultMux(42))
	if a != b {
		t.Fatal("multiplex not deterministic for same seed")
	}
	c := Multiplex(s, DefaultMux(43))
	if a == c {
		t.Fatal("different seeds produced identical jitter (suspicious)")
	}
}

func TestMultiplexBounds(t *testing.T) {
	f := func(seed uint64) bool {
		s := sampleSet()
		opt := MuxOptions{RelError: 0.05, Seed: seed}
		m := Multiplex(s, opt)
		for e := 0; e < NumEvents; e++ {
			truth, got := float64(s[e]), float64(m[e])
			if truth == 0 {
				if got != 0 {
					return false
				}
				continue
			}
			if math.Abs(got-truth)/truth > opt.RelError+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMultiplexNegativeErrorClamped(t *testing.T) {
	s := sampleSet()
	m := Multiplex(s, MuxOptions{RelError: -1, Seed: 1})
	if m != s {
		t.Fatal("negative RelError should mean exact")
	}
}

func TestMultiplexReportIndependentPerProc(t *testing.T) {
	r := sampleReport()
	m := MultiplexReport(r, DefaultMux(9))
	if len(m.PerProc) != 2 {
		t.Fatal("per-proc count changed")
	}
	if m.PerProc[0] == m.PerProc[1] {
		t.Fatal("identical jitter across processors")
	}
	// Original untouched.
	if r.PerProc[0] != sampleSet() {
		t.Fatal("MultiplexReport mutated input")
	}
}

func TestGetAndMemOps(t *testing.T) {
	s := sampleSet()
	if s.Get(Cycles) != 1_000_000 {
		t.Fatal("Get wrong")
	}
	if s.MemOps() != 300_000 {
		t.Fatal("MemOps wrong")
	}
}
