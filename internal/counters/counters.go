// Package counters models the hardware event counters of the MIPS R10000,
// which are the *only* inputs Scal-Tool consumes ("It uses as inputs the
// measurements from hardware event counters in the processor", §1). The
// R10000 exposes 32 countable events through two physical counters; SGI's
// perfex tool reads them. This package provides:
//
//   - the event set the model needs (cycles, graduated instructions,
//     graduated loads/stores, L1 data misses, L2 misses, and the
//     store-to-shared-block event behind ntsync),
//   - per-processor counter sets and whole-run reports — the "single output
//     file" each Scal-Tool run generates (Table 1),
//   - the derived ratios of the model (cpi, h2, hm, hit rates, m),
//   - an optional two-counter multiplexed sampling mode that injects the
//     deterministic estimation error real perfex multiplexing has.
package counters

import (
	"encoding/json"
	"fmt"
	"io"
)

// Event identifies one hardware event.
type Event uint8

// The events Scal-Tool reads. The comments give the closest R10000 event.
const (
	Cycles      Event = iota // event 0: cycles
	GradInstr                // event 17: graduated instructions (excludes wrong-path work)
	GradLoads                // event 18: graduated loads
	GradStores               // event 19: graduated stores
	L1DMisses                // event 25: primary data cache misses
	L2Misses                 // event 26: secondary cache misses
	StoreShared              // event 31: store/prefetch exclusive to shared block (ntsync source)
	TLBMisses                // event 23: TLB misses (reported by perfex; deliberately unused by the model, as in the paper)
	numEvents
)

// NumEvents is the number of distinct events.
const NumEvents = int(numEvents)

var eventNames = [NumEvents]string{
	"cycles", "grad_instr", "grad_loads", "grad_stores",
	"l1d_misses", "l2_misses", "store_shared", "tlb_misses",
}

func (e Event) String() string {
	if int(e) < NumEvents {
		return eventNames[e]
	}
	return fmt.Sprintf("Event(%d)", uint8(e))
}

// Set is one processor's counter values.
type Set [NumEvents]uint64

// Add increments an event.
func (s *Set) Add(e Event, v uint64) { s[e] += v }

// Get reads an event.
func (s *Set) Get(e Event) uint64 { return s[e] }

// Merge accumulates another set into this one.
func (s *Set) Merge(o Set) {
	for i := range s {
		s[i] += o[i]
	}
}

// MemOps returns graduated loads + stores.
func (s *Set) MemOps() uint64 { return s[GradLoads] + s[GradStores] }

// Derived ratios. All guard against zero denominators by returning 0 — the
// model layers validate inputs before use.

// CPI returns cycles per graduated instruction.
func (s *Set) CPI() float64 { return ratio(s[Cycles], s[GradInstr]) }

// Hm returns L2 misses per instruction (the model's hm).
func (s *Set) Hm() float64 { return ratio(s[L2Misses], s[GradInstr]) }

// H2 returns (L1 misses − L2 misses) per instruction (the model's h2): the
// frequency of accesses that miss L1 but hit L2.
func (s *Set) H2() float64 {
	if s[L1DMisses] < s[L2Misses] {
		return 0
	}
	return ratio(s[L1DMisses]-s[L2Misses], s[GradInstr])
}

// MemFrac returns m = (loads+stores)/instructions.
func (s *Set) MemFrac() float64 { return ratio(s.MemOps(), s[GradInstr]) }

// L1HitRate returns 1 − L1misses/(loads+stores).
func (s *Set) L1HitRate() float64 {
	ops := s.MemOps()
	if ops == 0 {
		return 0
	}
	return 1 - ratio(s[L1DMisses], ops)
}

// L2LocalHitRate returns the fraction of L1 misses that hit in L2 — the
// paper's L2hitr, a *local* hit rate.
func (s *Set) L2LocalHitRate() float64 {
	if s[L1DMisses] == 0 {
		return 1
	}
	return 1 - ratio(s[L2Misses], s[L1DMisses])
}

func ratio(num, den uint64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// RunReport is the single per-run "output file" Scal-Tool needs: the raw
// counter values of one application execution at one (processor count,
// data-set size) point, plus the run-time instrumentation counts the paper's
// §2.4.2 barrier-counting method uses.
type RunReport struct {
	Machine   string `json:"machine"`
	App       string `json:"app"`
	Procs     int    `json:"procs"`
	DataBytes uint64 `json:"data_bytes"`

	PerProc []Set `json:"per_proc"`

	// WallCycles is the run's elapsed cycles (all processors run for the
	// whole execution, spinning when idle, so each processor's Cycles
	// counter equals this; the figures accumulate Cycles over processors).
	WallCycles uint64 `json:"wall_cycles"`

	// Barriers and Locks are run-time instrumentation counts (explicit +
	// implicit barriers; lock acquire/release pairs), per the paper's first
	// frac_sync method.
	Barriers uint64 `json:"barriers"`
	Locks    uint64 `json:"locks"`

	// TouchedPages is what the ssusage analogue reports (resident size).
	TouchedPages int `json:"touched_pages"`
	PageBytes    int `json:"page_bytes"`
}

// Total returns the sum of all processors' counters.
func (r *RunReport) Total() Set {
	var t Set
	for _, s := range r.PerProc {
		t.Merge(s)
	}
	return t
}

// TotalCycles returns cycles accumulated over all processors (the y-axis of
// the paper's Figures 6/9/12).
func (r *RunReport) TotalCycles() uint64 { return r.Total()[Cycles] }

// Ident names the report in error messages: which app on which machine at
// which (processor count, size) point — enough to find the offending run.
func (r *RunReport) Ident() string {
	return fmt.Sprintf("%s/%s p%d s%d", r.Machine, r.App, r.Procs, r.DataBytes)
}

// Validate checks internal consistency.
func (r *RunReport) Validate() error {
	if r.Procs <= 0 {
		return fmt.Errorf("counters: report %s: bad processor count %d", r.Ident(), r.Procs)
	}
	if len(r.PerProc) != r.Procs {
		return fmt.Errorf("counters: report %s: %d per-proc sets for %d processors", r.Ident(), len(r.PerProc), r.Procs)
	}
	if r.DataBytes == 0 {
		return fmt.Errorf("counters: report %s: zero data size", r.Ident())
	}
	for p, s := range r.PerProc {
		if s[L2Misses] > s[L1DMisses] {
			return fmt.Errorf("counters: report %s: proc %d has more L2 misses (%d) than L1 misses (%d)", r.Ident(), p, s[L2Misses], s[L1DMisses])
		}
		if s[GradInstr] == 0 {
			return fmt.Errorf("counters: report %s: proc %d graduated no instructions", r.Ident(), p)
		}
	}
	return nil
}

// WriteJSON serializes the report — one file per run, as Table 1 counts.
func (r *RunReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadJSON parses a report written by WriteJSON.
func ReadJSON(rd io.Reader) (*RunReport, error) {
	var r RunReport
	if err := json.NewDecoder(rd).Decode(&r); err != nil {
		return nil, fmt.Errorf("counters: decoding report: %w", err)
	}
	if err := r.Validate(); err != nil {
		return nil, fmt.Errorf("counters: parsed report is inconsistent: %w", err)
	}
	return &r, nil
}
