package counters

import (
	"bytes"
	"testing"
)

// FuzzReadJSON checks the report parser never panics and that anything it
// accepts passes validation and round-trips.
func FuzzReadJSON(f *testing.F) {
	var buf bytes.Buffer
	r := &RunReport{
		Machine: "m", App: "a", Procs: 1, DataBytes: 64,
		PerProc: make([]Set, 1), WallCycles: 10,
	}
	r.PerProc[0].Add(Cycles, 10)
	r.PerProc[0].Add(GradInstr, 8)
	if err := r.WriteJSON(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"procs":-1}`))
	f.Add([]byte(`not json at all`))
	f.Fuzz(func(t *testing.T, data []byte) {
		rep, err := ReadJSON(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := rep.Validate(); err != nil {
			t.Fatalf("accepted report fails validation: %v", err)
		}
		var out bytes.Buffer
		if err := rep.WriteJSON(&out); err != nil {
			t.Fatalf("accepted report cannot serialize: %v", err)
		}
		rep2, err := ReadJSON(&out)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if rep2.Total() != rep.Total() {
			t.Fatal("round trip changed the counters")
		}
	})
}
