package counters

import (
	"bytes"
	"testing"
)

// FuzzReadJSON checks the report parser never panics and that anything it
// accepts passes validation and round-trips.
func FuzzReadJSON(f *testing.F) {
	var buf bytes.Buffer
	r := &RunReport{
		Machine: "m", App: "a", Procs: 1, DataBytes: 64,
		PerProc: make([]Set, 1), WallCycles: 10,
	}
	r.PerProc[0].Add(Cycles, 10)
	r.PerProc[0].Add(GradInstr, 8)
	if err := r.WriteJSON(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"procs":-1}`))
	f.Add([]byte(`not json at all`))
	// Truncated mid-write, as a crashed measurement node leaves it.
	f.Add(buf.Bytes()[:buf.Len()/2])
	f.Add(buf.Bytes()[:1])
	// A single byte corrupted to a value never valid in JSON.
	corrupt := bytes.Replace(buf.Bytes(), []byte("procs"), []byte("pro\xffs"), 1)
	f.Add(corrupt)
	// Duplicated fields: the decoder keeps the last value; the report must
	// still parse-or-error, never panic.
	f.Add([]byte(`{"procs":1,"procs":2,"data_bytes":64,"data_bytes":0,"per_proc":[[10,8,0,0,0,0,0,0]],"per_proc":[[10,8,0,0,0,0,0,0],[10,8,0,0,0,0,0,0]],"wall_cycles":10}`))
	// A wrapped 32-bit counter: cycles far below wall_cycles by a whole
	// number of 2^32 wraps. Structurally valid — the parser accepts it and
	// health.Sanitize (not this package) is responsible for the repair.
	wrapped := &RunReport{
		Machine: "m", App: "a", Procs: 1, DataBytes: 64,
		PerProc: make([]Set, 1), WallCycles: (uint64(3) << 32) + 12345,
	}
	wrapped.PerProc[0].Add(Cycles, 12345)
	wrapped.PerProc[0].Add(GradInstr, 8)
	var wbuf bytes.Buffer
	if err := wrapped.WriteJSON(&wbuf); err != nil {
		f.Fatal(err)
	}
	f.Add(wbuf.Bytes())
	f.Fuzz(func(t *testing.T, data []byte) {
		rep, err := ReadJSON(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := rep.Validate(); err != nil {
			t.Fatalf("accepted report fails validation: %v", err)
		}
		var out bytes.Buffer
		if err := rep.WriteJSON(&out); err != nil {
			t.Fatalf("accepted report cannot serialize: %v", err)
		}
		rep2, err := ReadJSON(&out)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if rep2.Total() != rep.Total() {
			t.Fatal("round trip changed the counters")
		}
	})
}
