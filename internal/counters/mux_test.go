package counters

// Complements the Multiplex tests in counters_test.go with the edge cases
// those leave open: exact behaviour at the 2^53 float64 precision boundary,
// the RelError=0 identity, and cross-call reproducibility of whole-report
// multiplexing.

import (
	"math"
	"testing"
)

func TestMultiplexZeroRelErrorIsIdentity(t *testing.T) {
	truth := sampleSet()
	if got := Multiplex(truth, MuxOptions{RelError: 0, Seed: 7}); got != truth {
		t.Errorf("RelError 0 perturbed the set:\n%v\n%v", got, truth)
	}
}

// TestMultiplexNearMaxExact checks behaviour at the 2^53 boundary the rest
// of the repo guards with counters.ToFloat: the perturbation math goes
// through float64, so values near MaxExact must stay within the
// relative-error bound instead of collapsing or going negative, and the
// exact timing pair must survive even past the boundary.
func TestMultiplexNearMaxExact(t *testing.T) {
	var truth Set
	truth[Cycles] = MaxExact + 12345 // exact path: never converted
	truth[L2Misses] = MaxExact - 1
	const relErr = 0.02
	got := Multiplex(truth, MuxOptions{RelError: relErr, Seed: 99})
	if got[Cycles] != truth[Cycles] {
		t.Errorf("Cycles past 2^53 not exact: %d vs %d", got[Cycles], truth[Cycles])
	}
	rel := math.Abs(float64(got[L2Misses])-float64(truth[L2Misses])) / float64(truth[L2Misses])
	if rel > relErr+1e-9 {
		t.Errorf("L2Misses near 2^53: rel error %g exceeds %g", rel, relErr)
	}
}

func TestMultiplexReportReproducible(t *testing.T) {
	r := sampleReport()
	a := MultiplexReport(r, DefaultMux(5))
	b := MultiplexReport(r, DefaultMux(5))
	for p := range a.PerProc {
		if a.PerProc[p] != b.PerProc[p] {
			t.Errorf("PerProc[%d] not deterministic across calls", p)
		}
	}
	if c := MultiplexReport(r, DefaultMux(6)); c.PerProc[0] == a.PerProc[0] {
		t.Error("different report seeds produced identical jitter")
	}
}
