package counters

import "testing"

func TestToFloatExactRange(t *testing.T) {
	cases := []uint64{0, 1, 1 << 20, MaxExact - 1, MaxExact}
	for _, v := range cases {
		if got := ToFloat(v); got != float64(v) {
			t.Errorf("ToFloat(%d) = %g", v, got)
		}
	}
}

func TestToFloatOverflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ToFloat(2^53+1) did not panic")
		}
	}()
	ToFloat(MaxExact + 1)
}
