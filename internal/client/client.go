// Package client is the Go client for scaltoold's analysis API, built for
// the server's hostile-traffic contract (internal/serve): every refusal is a
// typed status + machine-readable code, 429s carry a Retry-After derived
// from the observed drain rate, and transient conditions are worth retrying
// while semantic rejections never are.
//
// The client layers two protections over plain HTTP:
//
//   - Retries with capped exponential backoff and full jitter. Only
//     transient failures retry — transport errors, 429 (overloaded or
//     draining) and 503 (no worker freed up). A server-provided Retry-After
//     always wins over the computed backoff when it is longer. Semantic
//     refusals (400/413/422) and deterministic failures (500, 504) surface
//     immediately: the simulator is deterministic, so repeating them buys
//     nothing.
//
//   - A circuit breaker. Consecutive hard failures (transport errors and
//     5xx) open the circuit; while open, calls fail fast with
//     ErrCircuitOpen instead of piling onto a struggling server. After a
//     cooldown one probe request is allowed through (half-open): success
//     closes the circuit, failure re-opens it. 4xx refusals never trip the
//     breaker — they mean the server is healthy and rejecting *this*
//     document. The breaker is exported (Breaker) so other tiers — the
//     fleet router keeps one per replica — share the same state machine.
//
// Every call carries an X-Request-Id: the caller's (WithRequestID) or a
// fresh one, held constant across retries so a request that fails over to
// a second replica stitches into one trace on both ends.
package client

import (
	"bytes"
	"context"
	crand "crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"scaltool/internal/serve"
)

// Options configures a Client. The zero value of every field selects a
// sensible default.
type Options struct {
	// HTTP is the underlying transport (nil = http.DefaultClient).
	HTTP *http.Client
	// MaxAttempts bounds tries per call, first attempt included (0 = 4).
	MaxAttempts int
	// BaseDelay seeds the exponential backoff (0 = 100ms).
	BaseDelay time.Duration
	// MaxDelay caps a single backoff sleep (0 = 10s).
	MaxDelay time.Duration
	// FailureThreshold is how many consecutive hard failures open the
	// circuit (0 = 5).
	FailureThreshold int
	// Cooldown is how long an open circuit waits before the half-open
	// probe (0 = 15s).
	Cooldown time.Duration
}

// Client calls a scaltoold server. Create with New; safe for concurrent use.
type Client struct {
	base string
	opts Options

	breaker *Breaker

	// Test seams: fake time and deterministic jitter.
	sleep func(ctx context.Context, d time.Duration) error
	now   func() time.Time
	mu    sync.Mutex
	rng   *rand.Rand
}

// New builds a Client for a server base URL like "http://host:8080".
func New(baseURL string, opts Options) *Client {
	if opts.HTTP == nil {
		opts.HTTP = http.DefaultClient
	}
	if opts.MaxAttempts <= 0 {
		opts.MaxAttempts = 4
	}
	if opts.BaseDelay <= 0 {
		opts.BaseDelay = 100 * time.Millisecond
	}
	if opts.MaxDelay <= 0 {
		opts.MaxDelay = 10 * time.Second
	}
	if opts.FailureThreshold <= 0 {
		opts.FailureThreshold = 5
	}
	if opts.Cooldown <= 0 {
		opts.Cooldown = 15 * time.Second
	}
	c := &Client{
		base: strings.TrimRight(baseURL, "/"),
		opts: opts,
		now:  time.Now,
		rng:  rand.New(rand.NewSource(time.Now().UnixNano())),
	}
	c.breaker = NewBreaker(opts.FailureThreshold, opts.Cooldown)
	c.sleep = func(ctx context.Context, d time.Duration) error {
		t := time.NewTimer(d)
		defer t.Stop()
		select {
		case <-t.C:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return c
}

// APIError is a non-2xx response from the server, carrying its
// machine-readable code (the serve package's status contract).
type APIError struct {
	Status     int
	Code       string
	Message    string
	RetryAfter time.Duration // from the Retry-After header, 0 if absent
}

func (e *APIError) Error() string {
	return fmt.Sprintf("scaltoold: %d %s: %s", e.Status, e.Code, e.Message)
}

// Temporary reports whether the condition is worth retrying: the server is
// overloaded or draining (429) or could not free a worker in time (503).
func (e *APIError) Temporary() bool {
	return e.Status == http.StatusTooManyRequests || e.Status == http.StatusServiceUnavailable
}

// ErrCircuitOpen is returned while the circuit breaker is open: the server
// has failed hard repeatedly and the client is in cooldown, failing fast.
var ErrCircuitOpen = errors.New("client: circuit open: scaltoold failing, cooling down")

// ridKey carries an explicit request id in a context.
type ridKey struct{}

// WithRequestID returns a context whose calls carry id as their
// X-Request-Id instead of a generated one — how a front tier threads one
// trace identity through every hop it makes on a request's behalf.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, ridKey{}, id)
}

// NewRequestID returns a fresh random request id in the same alphabet the
// server accepts (see serve's X-Request-Id contract).
func NewRequestID() string {
	var b [8]byte
	if _, err := crand.Read(b[:]); err != nil {
		return "c0000000000000000"
	}
	return "c" + hex.EncodeToString(b[:])
}

// requestID resolves the trace identity for one Analyze call: the
// context's explicit id, or a fresh one. Resolved once per call — every
// retry attempt reuses it, so a failover to a second replica is visibly
// the same request in both replicas' traces.
func requestID(ctx context.Context) string {
	if id, ok := ctx.Value(ridKey{}).(string); ok && id != "" {
		return id
	}
	return NewRequestID()
}

// Analyze posts one analysis request, retrying transient refusals with
// backoff + jitter and honoring the server's Retry-After hints.
func (c *Client) Analyze(ctx context.Context, req *serve.Request) (*serve.Response, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("client: encoding request: %w", err)
	}
	rid := requestID(ctx)
	var last error
	for attempt := 0; attempt < c.opts.MaxAttempts; attempt++ {
		if err := c.breaker.Allow(c.now()); err != nil {
			return nil, err
		}
		resp, err := c.once(ctx, body, rid)
		if err == nil {
			c.breaker.OnSuccess()
			return resp, nil
		}
		last = err
		var apiErr *APIError
		isAPI := errors.As(err, &apiErr)
		// Hard failures — transport errors and 5xx — feed the breaker;
		// 4xx means the server is healthy and judging the document.
		if !isAPI || apiErr.Status >= 500 {
			c.breaker.OnFailure(c.now())
		} else {
			c.breaker.OnSuccess()
		}
		if !retryable(err) || attempt+1 >= c.opts.MaxAttempts {
			return nil, err
		}
		delay := c.backoff(attempt)
		if isAPI && apiErr.RetryAfter > delay {
			delay = apiErr.RetryAfter
		}
		if err := c.sleep(ctx, delay); err != nil {
			return nil, err
		}
	}
	return nil, last
}

// Healthz reports whether the server is serving (it answers 503 while
// draining). No retries: health checks are themselves the retry loop.
func (c *Client) Healthz(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := c.opts.HTTP.Do(req)
	if err != nil {
		return fmt.Errorf("client: healthz: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return &APIError{Status: resp.StatusCode, Code: "unhealthy", Message: "server not serving"}
	}
	return nil
}

// once performs a single HTTP exchange.
func (c *Client) once(ctx context.Context, body []byte, rid string) (*serve.Response, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/analyze", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	hreq.Header.Set("X-Request-Id", rid)
	hresp, err := c.opts.HTTP.Do(hreq)
	if err != nil {
		return nil, fmt.Errorf("client: %w", err)
	}
	defer hresp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(hresp.Body, 64<<20))
	if err != nil {
		return nil, fmt.Errorf("client: reading response: %w", err)
	}
	if hresp.StatusCode != http.StatusOK {
		apiErr := &APIError{Status: hresp.StatusCode, RetryAfter: parseRetryAfter(hresp.Header.Get("Retry-After"))}
		var e struct {
			Error string `json:"error"`
			Code  string `json:"code"`
		}
		if json.Unmarshal(data, &e) == nil && e.Error != "" {
			apiErr.Code, apiErr.Message = e.Code, e.Error
		} else {
			apiErr.Code = "opaque"
			apiErr.Message = strings.TrimSpace(string(data))
		}
		return nil, apiErr
	}
	var out serve.Response
	if err := json.Unmarshal(data, &out); err != nil {
		return nil, fmt.Errorf("client: decoding response: %w", err)
	}
	return &out, nil
}

// retryable classifies an attempt error: transport failures and temporary
// API refusals retry, everything else is final.
func retryable(err error) bool {
	var apiErr *APIError
	if errors.As(err, &apiErr) {
		return apiErr.Temporary()
	}
	// A transport-level failure (connection refused/reset, torn response):
	// the request may never have been processed.
	return !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded)
}

// backoff computes the attempt's sleep: full jitter over an exponentially
// growing window, capped at MaxDelay.
func (c *Client) backoff(attempt int) time.Duration {
	window := c.opts.BaseDelay << uint(attempt)
	if window > c.opts.MaxDelay || window <= 0 {
		window = c.opts.MaxDelay
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return time.Duration(c.rng.Int63n(int64(window) + 1))
}

// parseRetryAfter reads the delay-seconds form of Retry-After (the only form
// scaltoold emits).
func parseRetryAfter(v string) time.Duration {
	if v == "" {
		return 0
	}
	secs, err := strconv.Atoi(v)
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// Breaker is a consecutive-failure circuit breaker: the state machine the
// Client wraps around one server, exported so a routing tier can keep one
// per replica. Every Allow that returns nil must be matched by exactly one
// OnSuccess or OnFailure for the attempt it admitted — the half-open probe
// slot is reserved by Allow and released only by that report.
type Breaker struct {
	threshold int
	cooldown  time.Duration

	mu       sync.Mutex
	failures int
	open     bool
	openedAt time.Time
	probing  bool
}

// NewBreaker builds a breaker that opens after threshold consecutive hard
// failures and half-opens after cooldown (non-positive arguments select the
// Client defaults: 5 failures, 15s).
func NewBreaker(threshold int, cooldown time.Duration) *Breaker {
	if threshold <= 0 {
		threshold = 5
	}
	if cooldown <= 0 {
		cooldown = 15 * time.Second
	}
	return &Breaker{threshold: threshold, cooldown: cooldown}
}

// Allow admits a call, fails fast with ErrCircuitOpen while open, and
// admits exactly one probe per cooldown window once it has elapsed — under
// concurrency, one caller wins the probe slot and the rest fail fast.
func (b *Breaker) Allow(now time.Time) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.open {
		return nil
	}
	if now.Sub(b.openedAt) < b.cooldown || b.probing {
		return ErrCircuitOpen
	}
	b.probing = true // half-open: this caller is the probe
	return nil
}

// OnSuccess reports a successful attempt: the circuit closes and the
// failure count resets.
func (b *Breaker) OnSuccess() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures = 0
	b.open = false
	b.probing = false
}

// OnFailure reports a hard failure. A failed half-open probe re-opens the
// circuit for a fresh cooldown; threshold consecutive failures open it.
func (b *Breaker) OnFailure(now time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.probing {
		// The half-open probe failed: re-open for a fresh cooldown.
		b.probing = false
		b.openedAt = now
		return
	}
	b.failures++
	if b.failures >= b.threshold && !b.open {
		b.open = true
		b.openedAt = now
	}
}
