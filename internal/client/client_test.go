package client

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"scaltool/internal/serve"
)

// scripted builds a test server answering each /v1/analyze call from a fixed
// sequence of (status, headers, body) steps, repeating the last forever.
type step struct {
	status     int
	retryAfter string
	body       string
}

func scripted(t *testing.T, steps ...step) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		i := int(calls.Add(1)) - 1
		if i >= len(steps) {
			i = len(steps) - 1
		}
		st := steps[i]
		if st.retryAfter != "" {
			w.Header().Set("Retry-After", st.retryAfter)
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(st.status)
		fmt.Fprint(w, st.body)
	}))
	t.Cleanup(ts.Close)
	return ts, &calls
}

// fastClient is a client with a recorded (not slept) backoff.
func fastClient(ts *httptest.Server, opts Options) (*Client, *[]time.Duration) {
	c := New(ts.URL, opts)
	var slept []time.Duration
	c.sleep = func(ctx context.Context, d time.Duration) error {
		slept = append(slept, d)
		return nil
	}
	return c, &slept
}

const okBody = `{"app":"swim","machine":"scaled","procs":4,"s0":1,"model":{},"speedups":[{"procs":4,"wall_cycles":1,"speedup":2}],"breakdown":[]}`

func analyzeReq() *serve.Request { return &serve.Request{App: "swim", Procs: 4} }

// TestRetriesTransientThenSucceeds: 429 then 503 then 200 — two retries,
// then the decoded response.
func TestRetriesTransientThenSucceeds(t *testing.T) {
	ts, calls := scripted(t,
		step{status: 429, body: `{"error":"overloaded","code":"overloaded"}`},
		step{status: 503, body: `{"error":"no worker","code":"no_worker"}`},
		step{status: 200, body: okBody},
	)
	c, slept := fastClient(ts, Options{})
	resp, err := c.Analyze(context.Background(), analyzeReq())
	if err != nil {
		t.Fatal(err)
	}
	if resp.App != "swim" || len(resp.Speedups) != 1 {
		t.Fatalf("decoded response wrong: %+v", resp)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d calls, want 3", got)
	}
	if len(*slept) != 2 {
		t.Fatalf("slept %d times, want 2", len(*slept))
	}
}

// TestHonorsRetryAfter: the server's hint outranks the computed backoff.
func TestHonorsRetryAfter(t *testing.T) {
	ts, _ := scripted(t,
		step{status: 429, retryAfter: "7", body: `{"error":"overloaded","code":"overloaded"}`},
		step{status: 200, body: okBody},
	)
	// Backoff window well under the hint, so the hint must win.
	c, slept := fastClient(ts, Options{BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond})
	if _, err := c.Analyze(context.Background(), analyzeReq()); err != nil {
		t.Fatal(err)
	}
	if len(*slept) != 1 || (*slept)[0] != 7*time.Second {
		t.Fatalf("slept %v, want exactly the 7s Retry-After", *slept)
	}
}

// TestSemanticRejectionIsFinal: a 422 surfaces immediately as a typed
// APIError — no retries, no breaker damage.
func TestSemanticRejectionIsFinal(t *testing.T) {
	ts, calls := scripted(t,
		step{status: 422, body: `{"error":"unknown app \"nope\"","code":"unknown_app"}`},
	)
	c, slept := fastClient(ts, Options{})
	_, err := c.Analyze(context.Background(), analyzeReq())
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("error not an *APIError: %v", err)
	}
	if apiErr.Status != 422 || apiErr.Code != "unknown_app" || apiErr.Temporary() {
		t.Fatalf("wrong APIError: %+v", apiErr)
	}
	if calls.Load() != 1 || len(*slept) != 0 {
		t.Fatalf("semantic rejection retried: calls=%d sleeps=%d", calls.Load(), len(*slept))
	}
	if err := c.breaker.Allow(c.now()); err != nil {
		t.Fatalf("422 tripped the breaker: %v", err)
	}
}

// TestRetriesExhausted: persistent 429s return the last typed error after
// MaxAttempts tries.
func TestRetriesExhausted(t *testing.T) {
	ts, calls := scripted(t, step{status: 429, body: `{"error":"overloaded","code":"overloaded"}`})
	c, _ := fastClient(ts, Options{MaxAttempts: 3})
	_, err := c.Analyze(context.Background(), analyzeReq())
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != 429 {
		t.Fatalf("want final 429, got %v", err)
	}
	if calls.Load() != 3 {
		t.Fatalf("server saw %d calls, want 3", calls.Load())
	}
}

// TestBackoffJitterBounds: each recorded delay stays within the exponential
// window for its attempt and never exceeds MaxDelay.
func TestBackoffJitterBounds(t *testing.T) {
	ts, _ := scripted(t, step{status: 429, body: `{"error":"x","code":"overloaded"}`})
	base, cap := 100*time.Millisecond, 350*time.Millisecond
	c, slept := fastClient(ts, Options{MaxAttempts: 6, BaseDelay: base, MaxDelay: cap})
	_, _ = c.Analyze(context.Background(), analyzeReq())
	if len(*slept) != 5 {
		t.Fatalf("slept %d times, want 5", len(*slept))
	}
	for i, d := range *slept {
		window := base << uint(i)
		if window > cap {
			window = cap
		}
		if d < 0 || d > window {
			t.Fatalf("attempt %d slept %v, outside [0, %v]", i, d, window)
		}
	}
}

// TestCircuitBreaker: consecutive hard failures open the circuit (fail-fast,
// no HTTP traffic), the cooldown admits exactly one probe, and a probe
// success closes it again.
func TestCircuitBreaker(t *testing.T) {
	ts, calls := scripted(t,
		step{status: 500, body: `{"error":"boom","code":"failed"}`},
		step{status: 500, body: `{"error":"boom","code":"failed"}`},
		step{status: 500, body: `{"error":"boom","code":"failed"}`},
		step{status: 200, body: okBody},
	)
	c, _ := fastClient(ts, Options{MaxAttempts: 1, FailureThreshold: 3, Cooldown: 10 * time.Second})
	clock := time.Unix(1000, 0)
	c.now = func() time.Time { return clock }

	// Three hard failures → open. (500 is not retryable, so each call is
	// one attempt.)
	for i := 0; i < 3; i++ {
		if _, err := c.Analyze(context.Background(), analyzeReq()); err == nil {
			t.Fatalf("call %d unexpectedly succeeded", i)
		}
	}
	before := calls.Load()
	if _, err := c.Analyze(context.Background(), analyzeReq()); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("open circuit let a call through: %v", err)
	}
	if calls.Load() != before {
		t.Fatal("fail-fast call still reached the server")
	}

	// Cooldown elapses: exactly one probe goes through and closes the
	// circuit on success.
	clock = clock.Add(11 * time.Second)
	if _, err := c.Analyze(context.Background(), analyzeReq()); err != nil {
		t.Fatalf("half-open probe failed: %v", err)
	}
	if _, err := c.Analyze(context.Background(), analyzeReq()); err != nil {
		t.Fatalf("closed circuit refused a call: %v", err)
	}
}

// TestProbeFailureReopens: a failing half-open probe re-opens the circuit
// for a fresh cooldown.
func TestProbeFailureReopens(t *testing.T) {
	ts, _ := scripted(t, step{status: 500, body: `{"error":"boom","code":"failed"}`})
	c, _ := fastClient(ts, Options{MaxAttempts: 1, FailureThreshold: 2, Cooldown: 10 * time.Second})
	clock := time.Unix(1000, 0)
	c.now = func() time.Time { return clock }

	for i := 0; i < 2; i++ {
		_, _ = c.Analyze(context.Background(), analyzeReq())
	}
	clock = clock.Add(11 * time.Second)
	if _, err := c.Analyze(context.Background(), analyzeReq()); errors.Is(err, ErrCircuitOpen) {
		t.Fatal("probe was not admitted after cooldown")
	}
	// Probe failed → open again, immediately and after half the cooldown.
	if _, err := c.Analyze(context.Background(), analyzeReq()); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("circuit not re-opened after failed probe: %v", err)
	}
	clock = clock.Add(5 * time.Second)
	if _, err := c.Analyze(context.Background(), analyzeReq()); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("circuit opened by failed probe did not hold its cooldown: %v", err)
	}
}

// TestTransportErrorRetries: connection-refused retries, then surfaces the
// transport error once attempts are exhausted.
func TestTransportErrorRetries(t *testing.T) {
	ts := httptest.NewServer(http.NotFoundHandler())
	ts.Close() // nothing listens: every dial fails
	c := New(ts.URL, Options{MaxAttempts: 2})
	var sleeps int
	c.sleep = func(ctx context.Context, d time.Duration) error { sleeps++; return nil }
	_, err := c.Analyze(context.Background(), analyzeReq())
	if err == nil {
		t.Fatal("dial to a closed listener succeeded")
	}
	var apiErr *APIError
	if errors.As(err, &apiErr) {
		t.Fatalf("transport error surfaced as APIError: %v", err)
	}
	if sleeps != 1 {
		t.Fatalf("slept %d times, want 1", sleeps)
	}
}

// TestEndToEndAgainstServe closes the loop against the real server: a
// client pointed at a draining scaltoold retries past the 429 and succeeds
// once the drain flag clears (simulated by a restartable handler), and its
// typed errors match the serve contract.
func TestEndToEndAgainstServe(t *testing.T) {
	srv := serve.New(serve.Options{Workers: 2})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	c := New(ts.URL, Options{})

	resp, err := c.Analyze(context.Background(), &serve.Request{App: "swim", Procs: 4})
	if err != nil {
		t.Fatal(err)
	}
	if resp.App != "swim" || len(resp.Speedups) == 0 {
		t.Fatalf("bad response: %+v", resp)
	}
	if err := c.Healthz(context.Background()); err != nil {
		t.Fatalf("healthz on a serving server: %v", err)
	}

	_, err = c.Analyze(context.Background(), &serve.Request{App: "not-an-app"})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != 422 || apiErr.Code != "unknown_app" {
		t.Fatalf("want 422 unknown_app, got %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if err := c.Healthz(context.Background()); err == nil {
		t.Fatal("healthz on a draining server succeeded")
	}
	c.sleep = func(ctx context.Context, d time.Duration) error { return nil }
	_, err = c.Analyze(context.Background(), &serve.Request{App: "swim", Procs: 4})
	if !errors.As(err, &apiErr) || apiErr.Status != 429 || apiErr.Code != "draining" {
		t.Fatalf("want 429 draining from a draining server, got %v", err)
	}
	if apiErr.RetryAfter <= 0 {
		t.Fatalf("draining 429 carried no Retry-After: %+v", apiErr)
	}
}

// TestHalfOpenProbeRace: with the circuit open and the cooldown elapsed,
// concurrent callers race for the half-open slot — exactly one escapes as
// the probe, every loser fails fast with ErrCircuitOpen. Run under -race:
// the breaker's mutex is the only thing standing between "one probe" and a
// thundering herd onto a server that just fell over.
func TestHalfOpenProbeRace(t *testing.T) {
	b := NewBreaker(1, 10*time.Second)
	now := time.Unix(1000, 0)
	b.OnFailure(now) // threshold 1: open immediately
	if err := b.Allow(now.Add(time.Second)); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("open circuit admitted a call inside the cooldown: %v", err)
	}

	after := now.Add(11 * time.Second)
	const callers = 64
	var admitted atomic.Int64
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			if err := b.Allow(after); err == nil {
				admitted.Add(1)
			} else if !errors.Is(err, ErrCircuitOpen) {
				t.Errorf("loser got %v, want ErrCircuitOpen", err)
			}
		}()
	}
	close(start)
	wg.Wait()
	if got := admitted.Load(); got != 1 {
		t.Fatalf("%d probes escaped the half-open circuit, want exactly 1", got)
	}

	// The probe's failure re-opens; its success closes for everyone.
	b.OnFailure(after)
	if err := b.Allow(after.Add(time.Second)); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("failed probe did not re-open the circuit: %v", err)
	}
	if err := b.Allow(after.Add(12 * time.Second)); err != nil {
		t.Fatalf("second cooldown refused its probe: %v", err)
	}
	b.OnSuccess()
	for i := 0; i < 4; i++ {
		if err := b.Allow(after.Add(13 * time.Second)); err != nil {
			t.Fatalf("closed circuit refused call %d: %v", i, err)
		}
	}
}

// TestRequestIDPropagation: every attempt of one Analyze call carries the
// same generated X-Request-Id (so a retry — or a failover hop to a second
// replica — stitches into one trace), and WithRequestID overrides it.
func TestRequestIDPropagation(t *testing.T) {
	var mu sync.Mutex
	var seen []string
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		seen = append(seen, r.Header.Get("X-Request-Id"))
		mu.Unlock()
		if calls.Add(1) == 1 {
			w.WriteHeader(429)
			fmt.Fprint(w, `{"error":"overloaded","code":"overloaded"}`)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, okBody)
	}))
	t.Cleanup(ts.Close)
	c, _ := fastClient(ts, Options{})
	if _, err := c.Analyze(context.Background(), analyzeReq()); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != 2 {
		t.Fatalf("server saw %d attempts, want 2", len(seen))
	}
	if seen[0] == "" || seen[0] != seen[1] {
		t.Fatalf("request id did not survive the retry: %q then %q", seen[0], seen[1])
	}

	calls.Store(0)
	seen = seen[:0]
	mu.Unlock()
	ctx := WithRequestID(context.Background(), "trace-abc-123")
	_, err := c.Analyze(ctx, analyzeReq())
	mu.Lock()
	if err != nil {
		t.Fatal(err)
	}
	for i, id := range seen {
		if id != "trace-abc-123" {
			t.Fatalf("attempt %d carried %q, want the explicit id", i, id)
		}
	}
}
