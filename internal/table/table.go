// Package table renders the harness's tables and figure series as aligned
// text and CSV. Every reproduced table/figure of the paper is ultimately
// printed through this package, so the output of `go test -bench` and
// cmd/experiments matches row-for-row.
package table

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	Title   string
	Header  []string
	rows    [][]string
	aligned []bool // per column: true = right-align (numeric)
}

// New creates a table with a title and column headers. Columns render
// right-aligned when their header starts with '#' (stripped) or when every
// cell parses as a number; call AlignRight to force.
func New(title string, header ...string) *Table {
	t := &Table{Title: title, Header: header, aligned: make([]bool, len(header))}
	for i, h := range header {
		if strings.HasPrefix(h, "#") {
			t.Header[i] = strings.TrimPrefix(h, "#")
			t.aligned[i] = true
		}
	}
	return t
}

// AlignRight marks a column as numeric (right-aligned).
func (t *Table) AlignRight(col int) *Table {
	t.aligned[col] = true
	return t
}

// Row appends a row; values are formatted with %v, float64 with %.4g, and
// integers plainly.
func (t *Table) Row(cells ...any) *Table {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = formatCell(c)
	}
	if len(row) != len(t.Header) {
		panic(fmt.Sprintf("table: row has %d cells for %d columns", len(row), len(t.Header)))
	}
	t.rows = append(t.rows, row)
	return t
}

func formatCell(c any) string {
	switch v := c.(type) {
	case float64:
		return formatFloat(v)
	case float32:
		return formatFloat(float64(v))
	case string:
		return v
	default:
		return fmt.Sprintf("%v", v)
	}
}

func formatFloat(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 1000:
		return fmt.Sprintf("%.4g", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// Len returns the number of data rows.
func (t *Table) Len() int { return len(t.rows) }

// Write renders the table as aligned text.
func (t *Table) Write(w io.Writer) error {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			if t.aligned[i] {
				fmt.Fprintf(&b, "%*s", widths[i], c)
			} else {
				fmt.Fprintf(&b, "%-*s", widths[i], c)
			}
		}
		b.WriteString("\n")
	}
	line(t.Header)
	total := len(widths)*2 - 2
	for _, wd := range widths {
		total += wd
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteString("\n")
	for _, r := range t.rows {
		line(r)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders to a string.
func (t *Table) String() string {
	var b strings.Builder
	if err := t.Write(&b); err != nil {
		return fmt.Sprintf("table error: %v", err)
	}
	return b.String()
}

// WriteCSV renders the table as CSV (comma-separated, quoted when needed).
func (t *Table) WriteCSV(w io.Writer) error {
	writeRow := func(cells []string) error {
		for i, c := range cells {
			if i > 0 {
				if _, err := io.WriteString(w, ","); err != nil {
					return err
				}
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
			}
			if _, err := io.WriteString(w, c); err != nil {
				return err
			}
		}
		_, err := io.WriteString(w, "\n")
		return err
	}
	if err := writeRow(t.Header); err != nil {
		return err
	}
	for _, r := range t.rows {
		if err := writeRow(r); err != nil {
			return err
		}
	}
	return nil
}

// Series renders a labelled numeric series as a compact text block with
// proportional bars — the closest text analogue of the paper's figures.
type Series struct {
	Title  string
	XLabel string
	YLabel string
	points []seriesPoint
}

type seriesPoint struct {
	label string
	value float64
}

// NewSeries creates an empty series block.
func NewSeries(title, xlabel, ylabel string) *Series {
	return &Series{Title: title, XLabel: xlabel, YLabel: ylabel}
}

// Point appends one (label, value) pair.
func (s *Series) Point(label string, value float64) *Series {
	s.points = append(s.points, seriesPoint{label, value})
	return s
}

// Write renders the series: one row per point with a bar scaled to the
// maximum value (40 columns).
func (s *Series) Write(w io.Writer) error {
	const barWidth = 40
	maxV := 0.0
	labW := len(s.XLabel)
	for _, p := range s.points {
		if p.value > maxV {
			maxV = p.value
		}
		if len(p.label) > labW {
			labW = len(p.label)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s  (%s vs %s)\n", s.Title, s.YLabel, s.XLabel)
	for _, p := range s.points {
		n := 0
		if maxV > 0 && p.value > 0 {
			n = int(p.value / maxV * barWidth)
		}
		fmt.Fprintf(&b, "%-*s  %12s  |%s\n", labW, p.label, formatFloat(p.value), strings.Repeat("#", n))
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders the series to a string.
func (s *Series) String() string {
	var b strings.Builder
	if err := s.Write(&b); err != nil {
		return fmt.Sprintf("series error: %v", err)
	}
	return b.String()
}
