package table

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := New("Demo", "name", "#value")
	tb.Row("alpha", 3.14159)
	tb.Row("b", 12)
	out := tb.String()
	if !strings.Contains(out, "Demo") {
		t.Error("missing title")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.Contains(out, "3.142") {
		t.Errorf("float formatting wrong:\n%s", out)
	}
	// Right-aligned numeric column: the value ends each row.
	if !strings.HasSuffix(strings.TrimRight(lines[3], " "), "3.142") {
		t.Errorf("numeric column not right-aligned: %q", lines[3])
	}
	if tb.Len() != 2 {
		t.Errorf("Len = %d", tb.Len())
	}
}

func TestTableRowWidthMismatchPanics(t *testing.T) {
	tb := New("x", "a", "b")
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	tb.Row("only-one")
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		3.0:      "3",
		3.14159:  "3.142",
		12345.67: "1.235e+04",
		0.001:    "0.001",
	}
	for v, want := range cases {
		if got := formatFloat(v); got != want {
			t.Errorf("formatFloat(%v) = %q, want %q", v, got, want)
		}
	}
	if formatFloat(math.NaN()) != "NaN" {
		t.Error("NaN formatting")
	}
}

func TestCSV(t *testing.T) {
	tb := New("t", "name", "#v")
	tb.Row(`has,comma`, 1.5)
	tb.Row(`has"quote`, 2)
	var buf bytes.Buffer
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	want := "name,v\n\"has,comma\",1.500\n\"has\"\"quote\",2\n"
	if got != want {
		t.Fatalf("CSV = %q, want %q", got, want)
	}
}

func TestSeries(t *testing.T) {
	s := NewSeries("Speedup", "procs", "x")
	s.Point("1", 1).Point("2", 2).Point("4", 4)
	out := s.String()
	if !strings.Contains(out, "Speedup") || !strings.Contains(out, "(x vs procs)") {
		t.Errorf("header missing:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d", len(lines))
	}
	// Bars proportional: the last line has the longest bar (40 #).
	if !strings.Contains(lines[3], strings.Repeat("#", 40)) {
		t.Errorf("max bar wrong: %q", lines[3])
	}
	if strings.Count(lines[1], "#") != 10 {
		t.Errorf("quarter bar wrong: %q", lines[1])
	}
}

func TestSeriesEmptyAndZero(t *testing.T) {
	s := NewSeries("z", "x", "y")
	if out := s.String(); !strings.Contains(out, "z") {
		t.Error("empty series should still render the title")
	}
	s.Point("a", 0)
	if out := s.String(); strings.Contains(out, "#") {
		t.Error("zero value drew a bar")
	}
}
