package diagnose

import (
	"context"
	"fmt"
	"math"
	"sort"

	"scaltool/internal/campaign"
	"scaltool/internal/obs"
	"scaltool/internal/sim"
)

// TileTolerance is the relative slack of every provenance check: each
// run's summed region cycles against processors × wall cycles, and the
// attributed loss against the measured scaling loss — 1 part in 2^20.
// The simulator's attribution tiles exactly; the slack only absorbs
// float64 summation order.
const TileTolerance = 1.0 / (1 << 20)

// Verdict values a culprit can carry, by which phase of the region's
// attribution grows fastest with the processor count.
const (
	// VerdictImbalance: the loss is straggler spin — one processor's work
	// skew makes the others wait at the region's closing barrier.
	VerdictImbalance = "imbalance"
	// VerdictSerialization: the loss is lock contention — the region's
	// critical sections serialize on the global lock.
	VerdictSerialization = "serialization"
	// VerdictSynchronization: the loss is barrier cost itself — entry/exit
	// work and the release hot spot growing with the processor count.
	VerdictSynchronization = "synchronization"
	// VerdictCommunication: the loss is busy-cycle inflation — coherence
	// misses and L2 occupancy growth, not waiting.
	VerdictCommunication = "communication"
	// VerdictScales: the region recovers nothing (no loss at the largest
	// processor count).
	VerdictScales = "scales"
)

// Family is the input set of one diagnosis: the per-region attribution of
// every base run in a campaign, one run per processor count at the same
// data-set size.
type Family struct {
	App     string
	Machine string
	S0      uint64
	Runs    []campaign.AttributionRun
}

// FromCampaign assembles the diagnosis family from a finished campaign.
// The campaign's uniprocessor base run is the scaling baseline, so it must
// be present (every NewPlan campaign starts its processor sweep at 1).
func FromCampaign(res *campaign.Result) (Family, error) {
	runs, err := res.AttributionFamily()
	if err != nil {
		return Family{}, err
	}
	if len(runs) < 2 {
		return Family{}, fmt.Errorf("diagnose: campaign has %d base runs; need the uniprocessor baseline plus at least one multiprocessor run", len(runs))
	}
	if runs[0].Procs != 1 {
		return Family{}, fmt.Errorf("diagnose: campaign's smallest base run uses %d processors; the uniprocessor run is the scaling baseline", runs[0].Procs)
	}
	f := Family{App: res.Plan.App, S0: res.Plan.S0, Runs: runs}
	if br := res.BaseRuns[1]; br != nil {
		f.Machine = br.MachineName
	}
	return f, nil
}

// Options tunes a diagnosis.
type Options struct {
	// MaxCulprits truncates the ranked list (0 keeps every region). The
	// loss of truncated regions is reported in Report.TruncatedLoss, so
	// the tiling identity Σ recoverable + truncated = scaling loss holds
	// either way.
	MaxCulprits int
}

// CurvePoint is one processor count's evidence for a region: the run it
// came from and the region's Busy/Sync/Imb cycle split there. Loss is the
// region's total against its uniprocessor baseline.
type CurvePoint struct {
	Procs int     `json:"procs"`
	RunID string  `json:"run_id"`
	Busy  float64 `json:"busy_cycles"`
	Sync  float64 `json:"sync_cycles"`
	Imb   float64 `json:"imb_cycles"`
	Loss  float64 `json:"loss_cycles"`
}

// Culprit is one region's diagnosis: its scaling-loss curve, the verdict
// backtracked from the dominant growing phase, the sync object the loss
// routes through, and the recoverable cycles (its loss at the largest
// processor count — what a perfectly scaling version of the region would
// give back).
type Culprit struct {
	Rank        int     `json:"rank"`
	Region      string  `json:"region"`
	Recoverable float64 `json:"recoverable_cycles"`

	// Growth of each phase from the baseline to the largest count; the
	// dominant one decides the verdict.
	BusyGrowth float64 `json:"busy_growth_cycles"`
	SyncGrowth float64 `json:"sync_growth_cycles"`
	ImbGrowth  float64 `json:"imb_growth_cycles"`

	Verdict    string `json:"verdict"`
	SyncObject string `json:"sync_object,omitempty"`

	// FirstLossProcs is the smallest processor count with positive loss
	// (0 if the region never loses).
	FirstLossProcs int `json:"first_loss_procs,omitempty"`
	// StragglerProc is the processor with the most busy cycles at the
	// largest count — the straggler the others spin on. -1 unless the
	// verdict is imbalance.
	StragglerProc int `json:"straggler_proc"`

	Curve []CurvePoint `json:"curve"`
}

// RunProvenance links a diagnosis back to the runs that support it: the
// run's campaign identity, its timeline lane in the Chrome trace
// (sim.AppendTimeline labels lanes "sim <run id>"), and its tiling totals.
type RunProvenance struct {
	Procs      int     `json:"procs"`
	RunID      string  `json:"run_id"`
	TraceLane  string  `json:"trace_lane"`
	WallCycles float64 `json:"wall_cycles"`
	// RegionCycles is the run's summed region attribution over every
	// processor; it must tile Procs × WallCycles.
	RegionCycles float64 `json:"region_cycles"`
}

// Report is one diagnosis: the ranked culprit list plus everything needed
// to re-check it. All fields are value types in fixed order — the JSON
// encoding is byte-stable for identical inputs.
type Report struct {
	App     string `json:"app"`
	Machine string `json:"machine"`
	S0      uint64 `json:"s0"`
	Procs   []int  `json:"procs"`

	// BaselineWall is the uniprocessor run's wall cycles. ScalingLoss is
	// the campaign's measured loss at the largest count nmax:
	// nmax × Wall(nmax) − Wall(1) — the cycles the machine spends beyond
	// perfect scaling. AttributedLoss is the same quantity rebuilt from
	// the per-region curves; Verify checks they agree to TileTolerance.
	BaselineWall   float64 `json:"baseline_wall_cycles"`
	ScalingLoss    float64 `json:"scaling_loss_cycles"`
	AttributedLoss float64 `json:"attributed_loss_cycles"`
	// TruncatedLoss is the loss of regions dropped by Options.MaxCulprits
	// (0 when the list is complete).
	TruncatedLoss float64 `json:"truncated_loss_cycles"`

	Culprits []Culprit       `json:"culprits"`
	Graph    *Graph          `json:"graph,omitempty"`
	Runs     []RunProvenance `json:"runs"`
}

// Run overlays the family's attribution on the program structure graph and
// backtracks each region's scaling loss to a verdict. The report covers
// every region (ranked by recoverable cycles, name as tie-break), so the
// per-region losses tile the campaign's measured scaling loss exactly.
func Run(ctx context.Context, g *Graph, fam Family, opts Options) (*Report, error) {
	if len(fam.Runs) < 2 {
		return nil, fmt.Errorf("diagnose: need at least two runs, got %d", len(fam.Runs))
	}
	if fam.Runs[0].Procs != 1 {
		return nil, fmt.Errorf("diagnose: first run must be the uniprocessor baseline, got %d processors", fam.Runs[0].Procs)
	}
	for i := 1; i < len(fam.Runs); i++ {
		if fam.Runs[i].Procs <= fam.Runs[i-1].Procs {
			return nil, fmt.Errorf("diagnose: runs must have strictly ascending processor counts (%d after %d)",
				fam.Runs[i].Procs, fam.Runs[i-1].Procs)
		}
	}

	_, span := obs.StartSpan(ctx, "diagnose",
		obs.A("app", fam.App), obs.A("runs", len(fam.Runs)))
	defer span.End()

	// Region-name universe: the largest run's first-appearance order, then
	// names only earlier runs saw (a region can exist only at some counts —
	// tree reductions emit log2(p) levels). Deterministic by construction.
	type overlay struct {
		name  string
		curve []CurvePoint
	}
	byRun := make([]map[string]*sim.RegionAttribution, len(fam.Runs))
	for i := range fam.Runs {
		m := make(map[string]*sim.RegionAttribution, len(fam.Runs[i].Regions)) //scalvet:ignore one index per run, log2(nmax) runs total; all live until ranking completes
		for j := range fam.Runs[i].Regions {
			m[fam.Runs[i].Regions[j].Name] = &fam.Runs[i].Regions[j]
		}
		byRun[i] = m
	}
	nameIdx := map[string]int{}
	overlays := make([]*overlay, 0, len(fam.Runs[len(fam.Runs)-1].Regions))
	addNames := func(regs []sim.RegionAttribution) {
		for j := range regs {
			if _, ok := nameIdx[regs[j].Name]; !ok {
				nameIdx[regs[j].Name] = len(overlays)
				overlays = append(overlays, &overlay{name: regs[j].Name})
			}
		}
	}
	addNames(fam.Runs[len(fam.Runs)-1].Regions)
	for i := 0; i < len(fam.Runs)-1; i++ {
		addNames(fam.Runs[i].Regions)
	}

	for _, ov := range overlays {
		ov.curve = make([]CurvePoint, 0, len(fam.Runs)) //scalvet:ignore retained result: each region's curve ships in the report
		var base float64
		if att := byRun[0][ov.name]; att != nil {
			base = att.Busy + att.Sync + att.Imb
		}
		for i := range fam.Runs {
			pt := CurvePoint{Procs: fam.Runs[i].Procs, RunID: fam.Runs[i].ID}
			if att := byRun[i][ov.name]; att != nil {
				pt.Busy, pt.Sync, pt.Imb = att.Busy, att.Sync, att.Imb
			}
			pt.Loss = (pt.Busy + pt.Sync + pt.Imb) - base
			ov.curve = append(ov.curve, pt)
		}
	}

	last := len(fam.Runs) - 1
	culprits := make([]Culprit, 0, len(overlays))
	for _, ov := range overlays {
		first, end := ov.curve[0], ov.curve[last]
		c := Culprit{
			Region:        ov.name,
			Recoverable:   end.Loss,
			BusyGrowth:    end.Busy - first.Busy,
			SyncGrowth:    end.Sync - first.Sync,
			ImbGrowth:     end.Imb - first.Imb,
			StragglerProc: -1,
			Curve:         ov.curve,
		}
		for _, pt := range ov.curve {
			if pt.Loss > 0 {
				c.FirstLossProcs = pt.Procs
				break
			}
		}
		backtrack(&c, g, byRun[last][ov.name])
		culprits = append(culprits, c)
	}
	sort.SliceStable(culprits, func(i, j int) bool {
		if culprits[i].Recoverable != culprits[j].Recoverable { //scalvet:ignore exact float sort key, not a tolerance test
			return culprits[i].Recoverable > culprits[j].Recoverable
		}
		return culprits[i].Region < culprits[j].Region
	})

	rep := &Report{
		App:          fam.App,
		Machine:      fam.Machine,
		S0:           fam.S0,
		Procs:        make([]int, 0, len(fam.Runs)),
		BaselineWall: fam.Runs[0].WallCycles,
		Graph:        g,
		Runs:         make([]RunProvenance, 0, len(fam.Runs)),
	}
	for i := range fam.Runs {
		r := &fam.Runs[i]
		rep.Procs = append(rep.Procs, r.Procs)
		var regionCycles float64
		for j := range r.Regions {
			regionCycles += r.Regions[j].Busy + r.Regions[j].Sync + r.Regions[j].Imb
		}
		rep.Runs = append(rep.Runs, RunProvenance{
			Procs:        r.Procs,
			RunID:        r.ID,
			TraceLane:    "sim " + r.ID,
			WallCycles:   r.WallCycles,
			RegionCycles: regionCycles,
		})
	}
	rep.ScalingLoss = float64(fam.Runs[last].Procs)*fam.Runs[last].WallCycles - rep.BaselineWall
	for i := range culprits {
		culprits[i].Rank = i + 1
		rep.AttributedLoss += culprits[i].Recoverable
	}
	if opts.MaxCulprits > 0 && len(culprits) > opts.MaxCulprits {
		for _, c := range culprits[opts.MaxCulprits:] {
			rep.TruncatedLoss += c.Recoverable
		}
		culprits = culprits[:opts.MaxCulprits]
	}
	rep.Culprits = culprits

	span.SetAttr("culprits", len(rep.Culprits))
	span.SetAttr("scaling_loss_cycles", rep.ScalingLoss)
	mt := obs.Meter(ctx)
	mt.DiagnoseReports().Inc()
	mt.DiagnoseLossCycles().Observe(rep.ScalingLoss)
	return rep, nil
}

// backtrack assigns a culprit's verdict and sync object from its dominant
// growing phase and the structure graph (DESIGN.md §14): sync growth in a
// critical region routes through the lock, sync growth elsewhere through
// the region's closing barrier, imbalance through the same barrier with
// the straggler processor named, and busy growth is communication —
// coherence and L2-occupancy inflation with no sync object at all.
func backtrack(c *Culprit, g *Graph, att *sim.RegionAttribution) {
	if !(c.Recoverable > 0) {
		c.Verdict = VerdictScales
		return
	}
	critical := false
	if g != nil {
		if n := g.Node(c.Region); n != nil {
			critical = n.Critical
		}
	}
	switch {
	case c.SyncGrowth >= c.ImbGrowth && c.SyncGrowth >= c.BusyGrowth:
		if critical {
			c.Verdict = VerdictSerialization
			c.SyncObject = LockNode
		} else {
			c.Verdict = VerdictSynchronization
			c.SyncObject = BarrierNode(c.Region)
		}
	case c.ImbGrowth >= c.BusyGrowth:
		c.Verdict = VerdictImbalance
		c.SyncObject = BarrierNode(c.Region)
		if att != nil {
			for p := range att.PerProc {
				if c.StragglerProc < 0 || att.PerProc[p].Busy > att.PerProc[c.StragglerProc].Busy {
					c.StragglerProc = p
				}
			}
		}
	default:
		c.Verdict = VerdictCommunication
	}
}

// Verify re-checks the report's provenance chain: every run's region
// attribution tiles processors × wall cycles, every culprit's curve is
// internally consistent, and the attributed loss (plus any truncated
// remainder) matches the measured scaling loss — all to TileTolerance.
func (r *Report) Verify() error {
	if len(r.Runs) < 2 {
		return fmt.Errorf("diagnose: report has %d runs; need ≥ 2", len(r.Runs))
	}
	for _, run := range r.Runs {
		want := float64(run.Procs) * run.WallCycles
		if !within(run.RegionCycles, want) {
			return fmt.Errorf("diagnose: run %s region cycles %.6g do not tile procs×wall %.6g",
				run.RunID, run.RegionCycles, want)
		}
	}
	last := r.Runs[len(r.Runs)-1]
	measured := float64(last.Procs)*last.WallCycles - r.BaselineWall
	if !within(r.ScalingLoss, measured) {
		return fmt.Errorf("diagnose: reported scaling loss %.6g does not match runs' %.6g",
			r.ScalingLoss, measured)
	}
	var sum float64
	for i := range r.Culprits {
		c := &r.Culprits[i]
		if c.Rank != i+1 {
			return fmt.Errorf("diagnose: culprit %q has rank %d at position %d", c.Region, c.Rank, i+1)
		}
		if len(c.Curve) != len(r.Runs) {
			return fmt.Errorf("diagnose: culprit %q has %d curve points for %d runs",
				c.Region, len(c.Curve), len(r.Runs))
		}
		end := c.Curve[len(c.Curve)-1]
		if !within(c.Recoverable, end.Loss) {
			return fmt.Errorf("diagnose: culprit %q recoverable %.6g does not match its curve's final loss %.6g",
				c.Region, c.Recoverable, end.Loss)
		}
		base := c.Curve[0].Busy + c.Curve[0].Sync + c.Curve[0].Imb
		for _, pt := range c.Curve {
			if !within(pt.Loss, pt.Busy+pt.Sync+pt.Imb-base) {
				return fmt.Errorf("diagnose: culprit %q curve point p=%d loss %.6g inconsistent with its phases",
					c.Region, pt.Procs, pt.Loss)
			}
		}
		sum += c.Recoverable
	}
	sum += r.TruncatedLoss
	if !within(sum, r.ScalingLoss) {
		return fmt.Errorf("diagnose: attributed loss %.6g does not tile measured scaling loss %.6g within 2^-20",
			sum, r.ScalingLoss)
	}
	if !within(r.AttributedLoss, sum) {
		return fmt.Errorf("diagnose: attributed-loss field %.6g does not match culprit sum %.6g",
			r.AttributedLoss, sum)
	}
	return nil
}

// within reports |got−want| ≤ TileTolerance, relative to max(|want|, 1) so
// near-zero quantities are judged absolutely.
func within(got, want float64) bool {
	scale := math.Abs(want)
	if scale < 1 {
		scale = 1
	}
	return math.Abs(got-want) <= TileTolerance*scale
}
