// Package diagnose pinpoints which program regions cause a campaign's
// scaling loss — the root-cause layer on top of Scal-Tool's Busy/Sync/Imb
// cycle decomposition (ROADMAP item 4, after ScalAna's graph-backtracking
// idea).
//
// The inputs are (a) a program structure graph built from a sim.Program's
// regions and synchronization topology and (b) the per-region,
// per-processor attribution of every base run in a campaign family — one
// run per processor count at a fixed data-set size. Run overlays (b) on
// (a), computes each region's scaling-loss curve across processor counts,
// backtracks every loss to its originating region and sync object, and
// emits a ranked culprit report whose recoverable-cycle estimates exactly
// tile the campaign's measured scaling loss. Report.Verify re-checks the
// whole provenance chain to TileTolerance (1 part in 2^20).
package diagnose

import "scaltool/internal/sim"

// Node kinds of the program structure graph.
const (
	KindRegion  = "region"
	KindBarrier = "barrier"
	KindLock    = "lock"
)

// Edge kinds of the program structure graph.
const (
	// EdgeSeq is program order: a region's closing barrier releases into
	// the next distinct region.
	EdgeSeq = "seq"
	// EdgeBarrier joins a region to the closing barrier it drains into.
	EdgeBarrier = "barrier"
	// EdgeLock joins a region holding critical sections to the global lock
	// its sections serialize on.
	EdgeLock = "lock"
)

// Node is one vertex of the program structure graph: a named region, a
// region's closing barrier, or the global lock.
type Node struct {
	Name string `json:"name"`
	Kind string `json:"kind"`
	// Instances counts how many times a region node's name occurs in the
	// program (apps repeat region names across time steps).
	Instances int `json:"instances,omitempty"`
	// Critical marks a region node containing critical sections.
	Critical bool `json:"critical,omitempty"`
}

// Edge is one directed edge of the program structure graph.
type Edge struct {
	From string `json:"from"`
	To   string `json:"to"`
	Kind string `json:"kind"`
}

// Graph is the program structure graph: regions connected through the sync
// objects that order them. Construction order is deterministic (program
// order with first-appearance dedup), so its JSON encoding is byte-stable.
type Graph struct {
	Nodes []Node `json:"nodes"`
	Edges []Edge `json:"edges"`
}

// BarrierNode names the closing-barrier node of a region.
func BarrierNode(region string) string { return "barrier:" + region }

// LockNode is the single global-lock node (sim programs share one lock).
const LockNode = "lock"

// Node returns the named node, or nil.
func (g *Graph) Node(name string) *Node {
	for i := range g.Nodes {
		if g.Nodes[i].Name == name {
			return &g.Nodes[i]
		}
	}
	return nil
}

// BuildGraph constructs the program structure graph of a built program:
// one region node per distinct region name in first-appearance order, each
// with its closing-barrier node (every sim region ends in a barrier), a
// single lock node if any region takes the global lock, barrier edges
// region→barrier, lock edges region→lock for critical regions, and seq
// edges barrier→region following program order between adjacent instances.
func BuildGraph(prog *sim.Program) *Graph {
	regions := prog.Regions()

	type rinfo struct {
		instances int
		critical  bool
	}
	idx := make(map[string]*rinfo, len(regions))
	order := make([]string, 0, len(regions))
	for ri := range regions {
		name := regions[ri].Name
		info := idx[name]
		if info == nil {
			info = &rinfo{}
			idx[name] = info
			order = append(order, name)
		}
		info.instances++
		if !info.critical {
		scan:
			for pi := range regions[ri].Streams {
				for _, op := range regions[ri].Streams[pi].Ops {
					if op.Kind == sim.OpCritical {
						info.critical = true
						break scan
					}
				}
			}
		}
	}

	g := &Graph{
		Nodes: make([]Node, 0, 2*len(order)+1),
		Edges: make([]Edge, 0, 3*len(order)),
	}
	anyLock := false
	for _, name := range order {
		info := idx[name]
		g.Nodes = append(g.Nodes,
			Node{Name: name, Kind: KindRegion, Instances: info.instances, Critical: info.critical},
			Node{Name: BarrierNode(name), Kind: KindBarrier})
		anyLock = anyLock || info.critical
	}
	if anyLock {
		g.Nodes = append(g.Nodes, Node{Name: LockNode, Kind: KindLock})
	}

	for _, name := range order {
		g.Edges = append(g.Edges, Edge{From: name, To: BarrierNode(name), Kind: EdgeBarrier})
		if idx[name].critical {
			g.Edges = append(g.Edges, Edge{From: name, To: LockNode, Kind: EdgeLock})
		}
	}
	seen := make(map[[2]string]bool, len(regions))
	for ri := 1; ri < len(regions); ri++ {
		pair := [2]string{regions[ri-1].Name, regions[ri].Name}
		if seen[pair] {
			continue
		}
		seen[pair] = true
		g.Edges = append(g.Edges, Edge{From: BarrierNode(pair[0]), To: pair[1], Kind: EdgeSeq})
	}
	return g
}
