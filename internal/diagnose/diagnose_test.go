package diagnose

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"

	"scaltool/internal/apps"
	"scaltool/internal/campaign"
	"scaltool/internal/machine"
	"scaltool/internal/sim"
)

func runCampaign(t testing.TB, appName string, maxProcs int) (*campaign.Result, apps.App, machine.Config) {
	t.Helper()
	cfg := machine.TinyTest()
	app, err := apps.ByName(appName)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := campaign.NewPlan(app, cfg, maxProcs, 0)
	if err != nil {
		t.Fatal(err)
	}
	rn := &campaign.Runner{Cfg: cfg, Workers: 4}
	res, err := rn.Execute(context.Background(), app, plan)
	if err != nil {
		t.Fatal(err)
	}
	return res, app, cfg
}

func familyFor(t testing.TB, appName string, maxProcs int) (Family, *Graph) {
	t.Helper()
	res, app, cfg := runCampaign(t, appName, maxProcs)
	fam, err := FromCampaign(res)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := app.Build(cfg, maxProcs, res.Plan.S0)
	if err != nil {
		t.Fatal(err)
	}
	return fam, BuildGraph(prog)
}

// The acceptance property: on a real 1/2/4/8 campaign the per-region
// recoverable-cycle estimates tile the measured scaling loss to 2^-20, and
// every run's region attribution tiles procs × wall. t3dheat exercises the
// name-varying case — its tree reductions emit log2(p) "reduce_*" regions,
// zero at the uniprocessor baseline.
func TestDiagnoseTilesScalingLoss(t *testing.T) {
	for _, appName := range []string{"swim", "t3dheat"} {
		t.Run(appName, func(t *testing.T) {
			fam, g := familyFor(t, appName, 8)
			rep, err := Run(context.Background(), g, fam, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if err := rep.Verify(); err != nil {
				t.Fatal(err)
			}

			// Re-derive the identities from the raw family, independent of
			// Verify's bookkeeping.
			for _, run := range fam.Runs {
				var tot float64
				for _, reg := range run.Regions {
					tot += reg.Busy + reg.Sync + reg.Imb
				}
				want := float64(run.Procs) * run.WallCycles
				if !within(tot, want) {
					t.Errorf("run %s: region cycles %.6g vs procs×wall %.6g", run.ID, tot, want)
				}
				// The per-processor split must tile each region's totals.
				for _, reg := range run.Regions {
					var b, s, im float64
					for _, ph := range reg.PerProc {
						b += ph.Busy
						s += ph.Sync
						im += ph.Imb
					}
					if !within(b, reg.Busy) || !within(s, reg.Sync) || !within(im, reg.Imb) {
						t.Errorf("run %s region %s: per-proc split does not tile totals", run.ID, reg.Name)
					}
				}
			}
			last := fam.Runs[len(fam.Runs)-1]
			wantLoss := float64(last.Procs)*last.WallCycles - fam.Runs[0].WallCycles
			var sum float64
			for _, c := range rep.Culprits {
				sum += c.Recoverable
			}
			if !within(sum, wantLoss) {
				t.Errorf("culprit sum %.6g vs measured scaling loss %.6g", sum, wantLoss)
			}
			if len(rep.Culprits) > 0 && rep.Culprits[0].Verdict == VerdictScales {
				t.Errorf("top culprit %q carries no verdict despite loss %.6g", rep.Culprits[0].Region, wantLoss)
			}
			for i := 1; i < len(rep.Culprits); i++ {
				if rep.Culprits[i].Recoverable > rep.Culprits[i-1].Recoverable {
					t.Errorf("culprits not ranked: %q (%.6g) after %q (%.6g)",
						rep.Culprits[i].Region, rep.Culprits[i].Recoverable,
						rep.Culprits[i-1].Region, rep.Culprits[i-1].Recoverable)
				}
			}
		})
	}
}

func TestDiagnoseDeterministic(t *testing.T) {
	fam, g := familyFor(t, "swim", 4)
	var prev []byte
	for i := 0; i < 3; i++ {
		rep, err := Run(context.Background(), g, fam, Options{})
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		if prev != nil && !bytes.Equal(prev, b) {
			t.Fatalf("run %d: report bytes differ from previous run", i)
		}
		prev = b
	}
}

// att builds a single-instance attribution with a uniform per-proc split
// except where overridden.
func att(name string, procs int, busy, sync, imb float64, perProc []sim.ProcPhases) sim.RegionAttribution {
	if perProc == nil {
		perProc = make([]sim.ProcPhases, procs)
		for p := range perProc {
			perProc[p] = sim.ProcPhases{Busy: busy / float64(procs), Sync: sync / float64(procs), Imb: imb / float64(procs)}
		}
	}
	return sim.RegionAttribution{Name: name, Busy: busy, Sync: sync, Imb: imb, PerProc: perProc}
}

// handFamily: baseline A=100 busy, B=50 busy (wall 150); at p=4 A gains 60
// imbalance (straggler proc 2), B gains 200 sync, and C appears with 10
// busy (absent at baseline — a tree-reduce-style region). Region cycles
// 420 = 4 × wall 105; scaling loss 4×105−150 = 270 = 200+60+10.
func handFamily() Family {
	return Family{
		App: "hand", Machine: "tiny-test", S0: 4096,
		Runs: []campaign.AttributionRun{
			{ID: "base_p01_s4096", Procs: 1, WallCycles: 150, Regions: []sim.RegionAttribution{
				att("A", 1, 100, 0, 0, nil),
				att("B", 1, 50, 0, 0, nil),
			}},
			{ID: "base_p04_s4096", Procs: 4, WallCycles: 105, Regions: []sim.RegionAttribution{
				att("A", 4, 100, 0, 60, []sim.ProcPhases{
					{Busy: 20, Imb: 20}, {Busy: 20, Imb: 20}, {Busy: 40}, {Busy: 20, Imb: 20},
				}),
				att("B", 4, 50, 200, 0, nil),
				att("C", 4, 10, 0, 0, nil),
			}},
		},
	}
}

func handGraph() *Graph {
	return &Graph{
		Nodes: []Node{
			{Name: "A", Kind: KindRegion, Instances: 1},
			{Name: BarrierNode("A"), Kind: KindBarrier},
			{Name: "B", Kind: KindRegion, Instances: 1},
			{Name: BarrierNode("B"), Kind: KindBarrier},
		},
	}
}

func TestDiagnoseBacktracking(t *testing.T) {
	rep, err := Run(context.Background(), handGraph(), handFamily(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Verify(); err != nil {
		t.Fatal(err)
	}
	if got := len(rep.Culprits); got != 3 {
		t.Fatalf("culprits = %d, want 3", got)
	}
	checks := []struct {
		region, verdict, object string
		recoverable             float64
		straggler               int
		firstLoss               int
	}{
		{"B", VerdictSynchronization, BarrierNode("B"), 200, -1, 4},
		{"A", VerdictImbalance, BarrierNode("A"), 60, 2, 4},
		{"C", VerdictCommunication, "", 10, -1, 4},
	}
	for i, want := range checks {
		c := rep.Culprits[i]
		if c.Region != want.region || c.Verdict != want.verdict || c.SyncObject != want.object {
			t.Errorf("rank %d: got (%s, %s, %s), want (%s, %s, %s)",
				i+1, c.Region, c.Verdict, c.SyncObject, want.region, want.verdict, want.object)
		}
		if !within(c.Recoverable, want.recoverable) {
			t.Errorf("rank %d (%s): recoverable %.6g, want %.6g", i+1, c.Region, c.Recoverable, want.recoverable)
		}
		if c.StragglerProc != want.straggler {
			t.Errorf("rank %d (%s): straggler %d, want %d", i+1, c.Region, c.StragglerProc, want.straggler)
		}
		if c.FirstLossProcs != want.firstLoss {
			t.Errorf("rank %d (%s): first loss at %d procs, want %d", i+1, c.Region, c.FirstLossProcs, want.firstLoss)
		}
	}
	if rep.ScalingLoss != 270 { //scalvet:ignore exact hand-built arithmetic
		t.Errorf("scaling loss %.6g, want 270", rep.ScalingLoss)
	}
}

func TestDiagnoseSerializationVerdict(t *testing.T) {
	fam := handFamily()
	g := handGraph()
	g.Nodes[2].Critical = true // B holds critical sections
	g.Nodes = append(g.Nodes, Node{Name: LockNode, Kind: KindLock})
	rep, err := Run(context.Background(), g, fam, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if c := rep.Culprits[0]; c.Region != "B" || c.Verdict != VerdictSerialization || c.SyncObject != LockNode {
		t.Fatalf("critical region B: got (%s, %s, %s), want serialization on the lock", c.Region, c.Verdict, c.SyncObject)
	}
}

func TestDiagnoseTruncation(t *testing.T) {
	rep, err := Run(context.Background(), handGraph(), handFamily(), Options{MaxCulprits: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Culprits) != 1 {
		t.Fatalf("culprits = %d, want 1", len(rep.Culprits))
	}
	if !within(rep.TruncatedLoss, 70) {
		t.Errorf("truncated loss %.6g, want 70", rep.TruncatedLoss)
	}
	if err := rep.Verify(); err != nil {
		t.Fatalf("truncated report must still verify: %v", err)
	}
}

func TestDiagnoseRejectsBadFamilies(t *testing.T) {
	fam := handFamily()
	if _, err := Run(context.Background(), nil, Family{Runs: fam.Runs[1:]}, Options{}); err == nil {
		t.Error("family without uniprocessor baseline accepted")
	}
	rev := Family{Runs: []campaign.AttributionRun{fam.Runs[0]}}
	if _, err := Run(context.Background(), nil, rev, Options{}); err == nil {
		t.Error("single-run family accepted")
	}
}

func TestVerifyCatchesCorruption(t *testing.T) {
	mk := func() *Report {
		rep, err := Run(context.Background(), handGraph(), handFamily(), Options{})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	cases := []struct {
		name   string
		mangle func(*Report)
	}{
		{"inflated culprit", func(r *Report) { r.Culprits[0].Recoverable *= 2 }},
		{"wrong scaling loss", func(r *Report) { r.ScalingLoss += 1 }},
		{"broken run tiling", func(r *Report) { r.Runs[1].RegionCycles += 1 }},
		{"reordered ranks", func(r *Report) { r.Culprits[0].Rank = 7 }},
		{"curve tamper", func(r *Report) { r.Culprits[0].Curve[1].Loss += 1 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rep := mk()
			if err := rep.Verify(); err != nil {
				t.Fatalf("clean report fails: %v", err)
			}
			tc.mangle(rep)
			if err := rep.Verify(); err == nil {
				t.Error("mangled report verified")
			}
		})
	}
}

func TestBuildGraph(t *testing.T) {
	prog, err := sim.NewProgram("g", 2, 4096, 1024)
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 2; step++ {
		r1 := prog.AddRegion("work")
		for p := 0; p < 2; p++ {
			r1.Proc(p).Compute(10)
		}
		r2 := prog.AddRegion("update")
		for p := 0; p < 2; p++ {
			r2.Proc(p).Critical(5)
		}
	}
	g := BuildGraph(prog)

	work, update := g.Node("work"), g.Node("update")
	if work == nil || update == nil {
		t.Fatal("region nodes missing")
	}
	if work.Instances != 2 || update.Instances != 2 {
		t.Errorf("instances work=%d update=%d, want 2,2", work.Instances, update.Instances)
	}
	if work.Critical || !update.Critical {
		t.Errorf("critical flags: work=%v update=%v", work.Critical, update.Critical)
	}
	if g.Node(LockNode) == nil {
		t.Error("lock node missing despite critical sections")
	}
	if g.Node(BarrierNode("work")) == nil || g.Node(BarrierNode("update")) == nil {
		t.Error("barrier nodes missing")
	}
	wantEdges := []Edge{
		{From: "work", To: BarrierNode("work"), Kind: EdgeBarrier},
		{From: "update", To: BarrierNode("update"), Kind: EdgeBarrier},
		{From: "update", To: LockNode, Kind: EdgeLock},
		{From: BarrierNode("work"), To: "update", Kind: EdgeSeq},
		{From: BarrierNode("update"), To: "work", Kind: EdgeSeq},
	}
	for _, want := range wantEdges {
		found := false
		for _, e := range g.Edges {
			if e == want {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("edge %+v missing", want)
		}
	}
	// Repeated instances must not duplicate edges.
	seen := map[Edge]int{}
	for _, e := range g.Edges {
		seen[e]++
		if seen[e] > 1 {
			t.Errorf("duplicate edge %+v", e)
		}
	}
}

func TestGraphJSONDeterministic(t *testing.T) {
	app, err := apps.ByName("hydro2d")
	if err != nil {
		t.Fatal(err)
	}
	cfg := machine.TinyTest()
	var prev []byte
	for i := 0; i < 3; i++ {
		prog, err := app.Build(cfg, 4, 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(BuildGraph(prog))
		if err != nil {
			t.Fatal(err)
		}
		if prev != nil && !bytes.Equal(prev, b) {
			t.Fatal("graph JSON differs across identical builds")
		}
		prev = b
	}
	if !strings.Contains(string(prev), `"kind":"region"`) {
		t.Error("graph JSON missing region nodes")
	}
}
