package diagnose

import (
	"context"
	"testing"
)

// BenchmarkDiagnose measures what the diagnosis layer adds on top of the
// campaign it explains — the pair recorded in BENCH_diagnose.json:
//
//	campaign — executing the 1/2/4/8-processor base-run sweep the family
//	           is read from (the work /v1/analyze already does)
//	overlay  — the diagnosis itself on a finished campaign: attribution
//	           family extraction, graph construction, curve building,
//	           backtracking, ranking, and the report's self-verification
//
// The acceptance bar is overlay ≤ 5% of campaign: diagnosis must be a
// free rider on simulation work, never a second pipeline.
func BenchmarkDiagnose(b *testing.B) {
	b.Run("campaign", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			runCampaign(b, "swim", 8)
		}
	})
	b.Run("overlay", func(b *testing.B) {
		res, app, cfg := runCampaign(b, "swim", 8)
		prog, err := app.Build(cfg, 8, res.Plan.S0)
		if err != nil {
			b.Fatal(err)
		}
		ctx := context.Background()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			fam, err := FromCampaign(res)
			if err != nil {
				b.Fatal(err)
			}
			rep, err := Run(ctx, BuildGraph(prog), fam, Options{})
			if err != nil {
				b.Fatal(err)
			}
			if err := rep.Verify(); err != nil {
				b.Fatal(err)
			}
		}
	})
}
