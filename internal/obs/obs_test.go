package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func TestNilSafety(t *testing.T) {
	// Everything must be inert with no observer installed.
	ctx := context.Background()
	ctx2, span := StartSpan(ctx, "x", A("k", 1))
	if span != nil {
		t.Fatal("StartSpan without an observer returned a live span")
	}
	if ctx2 != ctx {
		t.Fatal("StartSpan without an observer rewrote the context")
	}
	span.SetAttr("a", 2)
	span.NameLane("lane")
	span.End()
	span.End() // idempotent
	if got := span.TID(); got != 0 {
		t.Fatalf("nil span TID = %d", got)
	}
	if Meter(ctx) != nil {
		t.Fatal("Meter on empty context not nil")
	}
	Meter(ctx).Counter("c", "h").Inc()
	Meter(ctx).Gauge("g", "h").Set(1)
	Meter(ctx).Histogram("h", "h", CycleBuckets).Observe(1)
	if Log(ctx) == nil {
		t.Fatal("Log returned nil")
	}
	Log(ctx).Info("discarded")
	var tr *Tracer
	tr.Emit(1, 1, "c", "n", 0, 1, nil)
	tr.NameThread(1, 1, "x")
	if tr.Len() != 0 {
		t.Fatal("nil tracer held events")
	}
	var m *Metrics
	if err := m.WritePrometheus(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
}

func TestSpanNestingAndLanes(t *testing.T) {
	o := &Observer{Trace: NewTracer()}
	ctx := NewContext(context.Background(), o)

	ctx1, root := StartSpan(ctx, "campaign", A("app", "swim"))
	ctx2, child := StartSpan(ctx1, "run")
	if root.TID() != child.TID() {
		t.Fatalf("child lane %d != parent lane %d", child.TID(), root.TID())
	}
	if SpanFromContext(ctx2) != child {
		t.Fatal("context does not carry the child span")
	}
	// Detached work starts a fresh lane.
	dctx := Detach(ctx1)
	_, other := StartSpan(dctx, "run")
	if other.TID() == root.TID() {
		t.Fatal("detached span reused the parent lane")
	}
	child.End()
	root.End()
	other.End()

	var buf bytes.Buffer
	if err := o.Trace.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var got struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			TS   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			PID  int64          `json:"pid"`
			TID  int64          `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	byName := map[string]int{}
	for _, e := range got.TraceEvents {
		byName[e.Name]++
		if e.Ph == "X" && e.PID != TracePID {
			t.Fatalf("span event on pid %d", e.PID)
		}
	}
	if byName["campaign"] != 1 || byName["run"] != 2 {
		t.Fatalf("span events = %v", byName)
	}
	for _, e := range got.TraceEvents {
		if e.Name == "campaign" {
			if e.Args["app"] != "swim" {
				t.Fatalf("campaign args = %v", e.Args)
			}
		}
	}
}

func TestSpanEndIdempotent(t *testing.T) {
	o := &Observer{Trace: NewTracer()}
	ctx := NewContext(context.Background(), o)
	_, span := StartSpan(ctx, "once")
	span.End()
	span.End()
	n := 0
	var buf bytes.Buffer
	if err := o.Trace.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	for _, line := range []string{"once"} {
		n += strings.Count(buf.String(), `"name":"`+line+`"`)
	}
	if n != 1 {
		t.Fatalf("span emitted %d times", n)
	}
}

func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			lane := tr.Lane()
			for k := 0; k < 100; k++ {
				tr.Emit(TracePID, lane, "c", "e", float64(k), 1, nil)
			}
		}(i)
	}
	wg.Wait()
	// 8 lanes × 100 events + the tracer's own process_name record.
	if got := tr.Len(); got != 801 {
		t.Fatalf("events = %d, want 801", got)
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatal("concurrent trace is not valid JSON")
	}
}

func TestWriteFileAtomic(t *testing.T) {
	tr := NewTracer()
	tr.Emit(TracePID, tr.Lane(), "test", "span", 0, 5, nil)
	path := filepath.Join(t.TempDir(), "trace.json")
	// A stale partial document must be replaced wholesale, never appended
	// to or left half-overwritten.
	if err := os.WriteFile(path, []byte(`{"traceEvents":[{"trunc`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteFileAtomic(path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !json.Valid(raw) {
		t.Fatalf("atomic write left invalid JSON: %.100s", raw)
	}
	// No temp files may linger next to the target.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("leftover files in target dir: %v", entries)
	}
}

func TestLoggerContext(t *testing.T) {
	var buf bytes.Buffer
	base := NewLogger(&buf, slog.LevelInfo, false)
	o := &Observer{Logger: base}
	ctx := NewContext(context.Background(), o)
	Log(ctx).Info("from observer")
	runCtx := WithLogger(ctx, Log(ctx).With("run", "base_p01_s64"))
	Log(runCtx).Warn("retrying")
	out := buf.String()
	if !strings.Contains(out, "from observer") {
		t.Fatalf("observer logger unused: %q", out)
	}
	if !strings.Contains(out, "run=base_p01_s64") || !strings.Contains(out, "retrying") {
		t.Fatalf("run identity not threaded: %q", out)
	}
	if Log(context.Background()) != nopLogger {
		t.Fatal("empty context did not yield the nop logger")
	}
}

func TestLoggerJSONAndLevels(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, slog.LevelWarn, true)
	l.Info("dropped")
	l.Warn("kept", "k", 7)
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1 {
		t.Fatalf("lines = %v", lines)
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("log line is not JSON: %v", err)
	}
	if rec["msg"] != "kept" || rec["k"] != float64(7) {
		t.Fatalf("record = %v", rec)
	}
	if _, err := ParseLevel("verbose"); err == nil {
		t.Fatal("bad level accepted")
	}
	for s, want := range map[string]slog.Level{"debug": slog.LevelDebug, "info": slog.LevelInfo, "warn": slog.LevelWarn, "error": slog.LevelError} {
		got, err := ParseLevel(s)
		if err != nil || got != want {
			t.Fatalf("ParseLevel(%q) = %v, %v", s, got, err)
		}
	}
}
