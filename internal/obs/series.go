package obs

// Hardening metric series (DESIGN.md §13). The serving path's hostile-traffic
// counters are read both by the handlers that increment them and by the chaos
// and fuzz suites that assert on them, so their (name, help) pairs live here
// once — the registry keys a family by name and the help text must agree at
// every call site.

// ServePanics counts analyses that panicked and were converted to a 500
// instead of killing the daemon.
func (m *Metrics) ServePanics() *Counter {
	return m.Counter("scaltool_serve_panics_total",
		"analyses that panicked; each was isolated to a 500 and quarantined")
}

// ServeShed counts requests refused before execution, by reason: "queue"
// (admission queue full), "ledger" (per-server cost budget exhausted),
// "drain" (server shutting down).
func (m *Metrics) ServeShed(reason string) *Counter {
	return m.Counter("scaltool_serve_shed_total",
		"analyses shed before execution, by reason", "reason", reason)
}

// ServeRejected counts requests refused by admission control, by HTTP status
// class: "400" malformed, "413" over budget, "422" semantically invalid.
func (m *Metrics) ServeRejected(code string) *Counter {
	return m.Counter("scaltool_serve_rejected_total",
		"requests refused by validation or admission control, by status", "code", code)
}

// ServeQuarantined counts requests refused because their shape previously
// panicked the analysis pipeline.
func (m *Metrics) ServeQuarantined() *Counter {
	return m.Counter("scaltool_serve_quarantined_total",
		"requests refused because an identical request previously panicked")
}

// RuncacheCorrupt counts spill entries whose integrity check failed on load,
// by damage class: "crc" (checksum mismatch), "torn" (short frame), "header"
// (bad magic/version), "decode" (payload undecodable).
func (m *Metrics) RuncacheCorrupt(class string) *Counter {
	return m.Counter("scaltool_runcache_corrupt_total",
		"spill entries quarantined after failing their integrity check, by damage class", "class", class)
}

// RequestSeconds is the end-to-end request latency histogram of the serving
// path, by route — every endpoint records into it, so /metrics exposes p99
// per route (Histogram.Quantile reads the same buckets in-process).
func (m *Metrics) RequestSeconds(route string) *Histogram {
	return m.Histogram("scaltool_serve_request_seconds",
		"end-to-end request latency in seconds, by route", LatencyBuckets, "route", route)
}

// DiagnoseReports counts culprit reports produced by internal/diagnose.
func (m *Metrics) DiagnoseReports() *Counter {
	return m.Counter("scaltool_diagnose_reports_total",
		"scaling-loss diagnosis reports produced")
}

// DiagnoseLossCycles observes the measured scaling loss of each diagnosis.
func (m *Metrics) DiagnoseLossCycles() *Histogram {
	return m.Histogram("scaltool_diagnose_loss_cycles",
		"measured scaling loss per diagnosis, in cycles", CycleBuckets)
}

// DiagnoseCache counts /v1/diagnose response-cache lookups, by outcome
// ("hit" or "miss").
func (m *Metrics) DiagnoseCache(outcome string) *Counter {
	return m.Counter("scaltool_serve_diagnose_cache_total",
		"diagnose response-cache lookups, by outcome", "outcome", outcome)
}

// AdmittedCycles gauges the predicted simulated cycles of work currently
// admitted and executing (the server ledger's cycle occupancy).
func (m *Metrics) AdmittedCycles() *Gauge {
	return m.Gauge("scaltool_admission_inflight_cycles",
		"predicted simulated cycles of admitted in-flight analyses")
}

// AdmittedBytes gauges the predicted allocation footprint of work currently
// admitted and executing (the server ledger's byte occupancy).
func (m *Metrics) AdmittedBytes() *Gauge {
	return m.Gauge("scaltool_admission_inflight_bytes",
		"predicted allocation footprint of admitted in-flight analyses")
}
