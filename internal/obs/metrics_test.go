package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"regexp"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeHistogram(t *testing.T) {
	m := NewMetrics()
	c := m.Counter("scaltool_test_total", "a counter")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d", c.Value())
	}
	if m.Counter("scaltool_test_total", "a counter") != c {
		t.Fatal("re-registration returned a new counter")
	}
	g := m.Gauge("scaltool_test_rmse", "a gauge")
	g.Set(0.25)
	if g.Value() != 0.25 {
		t.Fatalf("gauge = %g", g.Value())
	}
	h := m.Histogram("scaltool_test_seconds", "a histogram", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 1000} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("hist count = %d", h.Count())
	}
	if h.Sum() != 1006.5 {
		t.Fatalf("hist sum = %g", h.Sum())
	}
}

func TestHistogramQuantile(t *testing.T) {
	m := NewMetrics()
	h := m.Histogram("scaltool_test_q_seconds", "quantile test", []float64{1, 10, 100})
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Fatal("empty histogram quantile should be NaN")
	}
	for i := 0; i < 4; i++ {
		h.Observe(2) // all four observations land in the (1, 10] bucket
	}
	if got := h.Quantile(0.5); got != 5.5 {
		t.Fatalf("p50 = %g, want 5.5 (midpoint interpolation in (1,10])", got)
	}
	if got := h.Quantile(1); got != 10 {
		t.Fatalf("p100 = %g, want the bucket's upper bound", got)
	}
	h.Observe(1e6) // overflow bucket: quantiles clamp to the last finite bound
	if got := h.Quantile(0.99); got != 100 {
		t.Fatalf("p99 with overflow = %g, want clamp to 100", got)
	}
	if !math.IsNaN(h.Quantile(1.5)) || !math.IsNaN(h.Quantile(-0.1)) {
		t.Fatal("out-of-range quantiles should be NaN")
	}
	var nilH *Histogram
	if !math.IsNaN(nilH.Quantile(0.5)) {
		t.Fatal("nil histogram quantile should be NaN")
	}
}

func TestLabeledSeries(t *testing.T) {
	m := NewMetrics()
	a := m.Counter("scaltool_findings_total", "findings", "severity", "repair")
	b := m.Counter("scaltool_findings_total", "findings", "severity", "quarantine")
	if a == b {
		t.Fatal("distinct label sets shared a series")
	}
	a.Inc()
	b.Add(2)
	var buf bytes.Buffer
	if err := m.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`scaltool_findings_total{severity="repair"} 1`,
		`scaltool_findings_total{severity="quarantine"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	if strings.Count(out, "# TYPE scaltool_findings_total counter") != 1 {
		t.Fatalf("TYPE emitted per-series:\n%s", out)
	}
}

// promSeriesRE matches one sample line of the text exposition format.
var promSeriesRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? [-+0-9.eE]+(Inf)?$`)

func TestPrometheusFormat(t *testing.T) {
	m := NewMetrics()
	m.Counter("scaltool_runs_total", "runs").Add(3)
	m.Gauge("scaltool_fit_rmse", "rmse").Set(0.031)
	h := m.Histogram("scaltool_attempt_seconds", "latency", []float64{0.01, 0.1, 1})
	h.Observe(0.05)
	h.Observe(5)
	var buf bytes.Buffer
	if err := m.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	var series int
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		series++
		if !promSeriesRE.MatchString(line) {
			t.Fatalf("malformed series line %q", line)
		}
	}
	// 1 counter + 1 gauge + (3 buckets + Inf + sum + count) = 8.
	if series != 8 {
		t.Fatalf("series = %d, want 8", series)
	}
	// Histogram buckets are cumulative and ordered.
	out := buf.String()
	for _, want := range []string{
		`scaltool_attempt_seconds_bucket{le="0.01"} 0`,
		`scaltool_attempt_seconds_bucket{le="0.1"} 1`,
		`scaltool_attempt_seconds_bucket{le="1"} 1`,
		`scaltool_attempt_seconds_bucket{le="+Inf"} 2`,
		`scaltool_attempt_seconds_count 2`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestExpvarFunc(t *testing.T) {
	m := NewMetrics()
	m.Counter("scaltool_runs_total", "runs").Add(2)
	m.Histogram("scaltool_run_cycles", "cycles", CycleBuckets).Observe(5e6)
	f := m.ExpvarFunc()
	data, err := json.Marshal(f())
	if err != nil {
		t.Fatalf("expvar snapshot not marshalable: %v", err)
	}
	var got map[string]any
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got["scaltool_runs_total"] != float64(2) {
		t.Fatalf("snapshot = %v", got)
	}
	hist, ok := got["scaltool_run_cycles"].(map[string]any)
	if !ok || hist["count"] != float64(1) {
		t.Fatalf("histogram snapshot = %v", got["scaltool_run_cycles"])
	}
	// Publishing twice under one name must not panic.
	m.PublishExpvar("scaltool_test_metrics")
	m.PublishExpvar("scaltool_test_metrics")
}

func TestMetricsConcurrent(t *testing.T) {
	m := NewMetrics()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 1000; k++ {
				m.Counter("scaltool_c_total", "c").Inc()
				m.Histogram("scaltool_h_cycles", "h", CycleBuckets).Observe(float64(k))
			}
		}()
	}
	wg.Wait()
	if got := m.Counter("scaltool_c_total", "c").Value(); got != 8000 {
		t.Fatalf("counter = %d", got)
	}
	if got := m.Histogram("scaltool_h_cycles", "h", CycleBuckets).Count(); got != 8000 {
		t.Fatalf("hist count = %d", got)
	}
}

func TestTypeConflictPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	m := NewMetrics()
	m.Counter("scaltool_x", "x")
	m.Gauge("scaltool_x", "x")
}
