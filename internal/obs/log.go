package obs

import (
	"context"
	"fmt"
	"io"
	"log/slog"
)

// nopLogger swallows everything — what Log returns when no observer (or
// logger) is installed, so instrumented code never branches on logging
// being enabled.
var nopLogger = slog.New(discardHandler{})

type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (discardHandler) WithAttrs([]slog.Attr) slog.Handler        { return discardHandler{} }
func (discardHandler) WithGroup(string) slog.Handler             { return discardHandler{} }

// NopLogger returns the shared no-op logger.
func NopLogger() *slog.Logger { return nopLogger }

// ParseLevel maps a -log-level flag value to a slog level.
func ParseLevel(s string) (slog.Level, error) {
	switch s {
	case "debug":
		return slog.LevelDebug, nil
	case "info", "":
		return slog.LevelInfo, nil
	case "warn":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("obs: unknown log level %q (want debug|info|warn|error)", s)
}

// NewLogger builds a text or JSON-lines logger at the given level.
func NewLogger(w io.Writer, level slog.Level, jsonOut bool) *slog.Logger {
	opts := &slog.HandlerOptions{Level: level}
	if jsonOut {
		return slog.New(slog.NewJSONHandler(w, opts))
	}
	return slog.New(slog.NewTextHandler(w, opts))
}
