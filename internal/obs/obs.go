// Package obs is the repo's observability layer: spans, metrics, and
// structured logging for the campaign → sim → model pipeline, built only on
// the standard library.
//
// Scal-Tool's whole point is attributing lost cycles, and its own pipeline
// deserves the same treatment. An Observer bundles three independent
// facilities, any of which may be nil:
//
//   - Trace — a span tracer exporting Chrome trace_event JSON, loadable in
//     chrome://tracing and Perfetto. Campaign → run → attempt → fit form
//     nested spans; internal/sim additionally exports per-processor
//     busy/sync/imb region timelines into the same file.
//   - Metrics — a registry of counters, gauges, and fixed-bucket histograms,
//     serializable as Prometheus text format and publishable via expvar.
//   - Logger — a log/slog logger; run identity is threaded via context so a
//     retry or quarantine is attributable while the campaign is still
//     running.
//
// The Observer travels in a context.Context (NewContext/FromContext) and
// every entry point is nil-safe: code instrumented with StartSpan, Meter,
// and Log runs unchanged — and with negligible overhead — when no observer
// is installed. Instrumentation sits at run/region/fit granularity, never
// inside the simulator's per-access hot loop (see the Obs benchmark and
// BENCH_obs.json for the measured overhead).
package obs

import (
	"context"
	"log/slog"
	"time"
)

// Observer bundles the three observability facilities. Any field may be nil;
// all consumers are nil-safe.
type Observer struct {
	Trace   *Tracer
	Metrics *Metrics
	Logger  *slog.Logger
}

type ctxKey int

const (
	observerKey ctxKey = iota
	spanKey
	loggerKey
	requestIDKey
)

// NewContext installs an observer in a context.
func NewContext(ctx context.Context, o *Observer) context.Context {
	return context.WithValue(ctx, observerKey, o)
}

// FromContext returns the context's observer, or nil.
func FromContext(ctx context.Context) *Observer {
	o, _ := ctx.Value(observerKey).(*Observer)
	return o
}

// Meter returns the context's metrics registry, or nil (whose methods are
// all no-ops).
func Meter(ctx context.Context) *Metrics {
	if o := FromContext(ctx); o != nil {
		return o.Metrics
	}
	return nil
}

// Log returns the logger for a context: a logger installed with WithLogger
// wins, then the observer's, then a no-op logger. Never nil.
func Log(ctx context.Context) *slog.Logger {
	if l, ok := ctx.Value(loggerKey).(*slog.Logger); ok && l != nil {
		return l
	}
	if o := FromContext(ctx); o != nil && o.Logger != nil {
		return o.Logger
	}
	return nopLogger
}

// WithLogger overrides the context's logger — the campaign uses it to thread
// run identity (logger.With("run", id)) into everything a run touches.
func WithLogger(ctx context.Context, l *slog.Logger) context.Context {
	return context.WithValue(ctx, loggerKey, l)
}

// WithRequestID threads an end-to-end request identity through a context:
// every span opened under it (including on detached worker lanes — Detach
// keeps context values) carries a "req_id" attribute, so one serve request
// links to the campaign, sim, and diagnose spans it caused. The serving
// layer pairs this with WithLogger so log lines carry the same field.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDKey, id)
}

// RequestIDFrom returns the context's request identity, or "".
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey).(string)
	return id
}

// Attr is one span attribute.
type Attr struct {
	Key   string
	Value any
}

// A builds an attribute.
func A(key string, value any) Attr { return Attr{Key: key, Value: value} }

// Span is one live span. A nil *Span is valid and inert, so callers never
// branch on whether tracing is enabled.
type Span struct {
	tr    *Tracer
	name  string
	tid   int64
	start time.Time
	attrs []Attr
	ended bool
}

// StartSpan opens a span named name. The span nests under the context's
// current span (same trace lane); a context with no span starts a new lane.
// The returned context carries the new span; End emits the trace event.
// With no tracer in the context it returns (ctx, nil).
func StartSpan(ctx context.Context, name string, attrs ...Attr) (context.Context, *Span) {
	o := FromContext(ctx)
	if o == nil || o.Trace == nil {
		return ctx, nil
	}
	if id := RequestIDFrom(ctx); id != "" {
		// Build a fresh slice: appending to the caller's variadic slice
		// could share a backing array across sibling spans.
		withID := make([]Attr, 0, len(attrs)+1)
		withID = append(withID, attrs...)
		attrs = append(withID, Attr{Key: "req_id", Value: id})
	}
	s := &Span{tr: o.Trace, name: name, start: time.Now(), attrs: attrs}
	if parent, ok := ctx.Value(spanKey).(*Span); ok && parent != nil {
		s.tid = parent.tid
	} else {
		s.tid = o.Trace.Lane()
	}
	return context.WithValue(ctx, spanKey, s), s
}

// SpanFromContext returns the context's current span, or nil.
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey).(*Span)
	return s
}

// Detach drops the current span from the context while keeping the
// observer. Work handed to another goroutine detaches first, so its spans
// open a fresh trace lane instead of interleaving with the parent's.
func Detach(ctx context.Context) context.Context {
	if SpanFromContext(ctx) == nil {
		return ctx
	}
	return context.WithValue(ctx, spanKey, (*Span)(nil))
}

// SetAttr adds an attribute to the span. Safe on nil.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
}

// TID returns the span's trace lane (0 for nil spans).
func (s *Span) TID() int64 {
	if s == nil {
		return 0
	}
	return s.tid
}

// NameLane labels the span's trace lane in the exported trace — e.g. with a
// run identity, so every lane in Perfetto reads as its run. Safe on nil.
func (s *Span) NameLane(label string) {
	if s == nil {
		return
	}
	s.tr.NameThread(TracePID, s.tid, label)
}

// End closes the span and emits its trace event. Safe on nil; idempotent.
func (s *Span) End() {
	if s == nil || s.ended {
		return
	}
	s.ended = true
	var args map[string]any
	if len(s.attrs) > 0 {
		args = make(map[string]any, len(s.attrs))
		for _, a := range s.attrs {
			args[a.Key] = a.Value
		}
	}
	s.tr.Emit(TracePID, s.tid, "span", s.name, s.tr.since(s.start), durMicros(time.Since(s.start)), args)
}

// durMicros converts a duration to trace microseconds.
func durMicros(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }
