package obs

import (
	"expvar"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Metric naming convention (DESIGN.md §9): scaltool_<subsystem>_<what>_<unit>,
// counters suffixed _total, histograms named for their unit (…_seconds,
// …_cycles). Labels are constant per series and registered up front; there is
// no dynamic label cardinality.

// CycleBuckets are the fixed histogram bounds for simulated-cycle
// distributions (1e4 … 3e9 cycles, log-spaced ×~3).
var CycleBuckets = []float64{1e4, 3e4, 1e5, 3e5, 1e6, 3e6, 1e7, 3e7, 1e8, 3e8, 1e9, 3e9}

// LatencyBuckets are the fixed histogram bounds for wall-clock latencies in
// seconds (1 ms … 60 s).
var LatencyBuckets = []float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60}

// Metrics is a registry of counters, gauges, and histograms. Registration
// takes a lock; the instruments themselves are lock-free atomics. A nil
// *Metrics is valid: every method is a no-op returning nil instruments,
// whose methods are in turn no-ops.
type Metrics struct {
	mu       sync.Mutex
	families map[string]*family
}

// family is every series sharing one metric name (they differ by labels).
type family struct {
	name, help, typ string
	series          map[string]any // label rendering → *Counter | *Gauge | *Histogram
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{families: map[string]*family{}}
}

// Counter registers (or returns the existing) counter. labels are key, value
// pairs rendered into the series as name{k="v",…}.
func (m *Metrics) Counter(name, help string, labels ...string) *Counter {
	if m == nil {
		return nil
	}
	v := m.lookup("counter", name, help, labels, func() any { return &Counter{} })
	return v.(*Counter)
}

// Gauge registers (or returns the existing) gauge.
func (m *Metrics) Gauge(name, help string, labels ...string) *Gauge {
	if m == nil {
		return nil
	}
	v := m.lookup("gauge", name, help, labels, func() any { return &Gauge{} })
	return v.(*Gauge)
}

// Histogram registers (or returns the existing) histogram with fixed bucket
// upper bounds (ascending; +Inf is implicit).
func (m *Metrics) Histogram(name, help string, buckets []float64, labels ...string) *Histogram {
	if m == nil {
		return nil
	}
	v := m.lookup("histogram", name, help, labels, func() any { return newHistogram(buckets) })
	return v.(*Histogram)
}

func (m *Metrics) lookup(typ, name, help string, labels []string, mk func() any) any {
	key := renderLabels(labels)
	m.mu.Lock()
	defer m.mu.Unlock()
	fam, ok := m.families[name]
	if !ok {
		fam = &family{name: name, help: help, typ: typ, series: map[string]any{}}
		m.families[name] = fam
	}
	if fam.typ != typ {
		panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)", name, typ, fam.typ))
	}
	s, ok := fam.series[key]
	if !ok {
		s = mk()
		fam.series[key] = s
	}
	return s
}

// renderLabels turns key,value pairs into a deterministic {k="v",…} suffix.
func renderLabels(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	if len(labels)%2 != 0 {
		panic("obs: labels must be key, value pairs")
	}
	type kv struct{ k, v string }
	kvs := make([]kv, 0, len(labels)/2)
	for i := 0; i < len(labels); i += 2 {
		kvs = append(kvs, kv{labels[i], labels[i+1]})
	}
	sort.Slice(kvs, func(i, j int) bool { return kvs[i].k < kvs[j].k })
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range kvs {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", p.k, p.v)
	}
	b.WriteByte('}')
	return b.String()
}

// Counter is a monotonically increasing uint64.
type Counter struct{ v atomic.Uint64 }

// Inc adds one. Safe on nil.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n. Safe on nil.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable float64.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v. Safe on nil.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add moves the gauge by d (negative to decrease) — the up/down counter use
// (in-flight requests, pool occupancy). Lock-free via CAS. Safe on nil.
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		v := math.Float64frombits(old) + d
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed buckets (Prometheus semantics:
// bounds are inclusive upper edges; +Inf is implicit).
type Histogram struct {
	bounds  []float64
	counts  []atomic.Uint64 // len(bounds)+1; last = +Inf
	sumBits atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one value. Safe on nil.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound ≥ v
	h.counts[i].Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Quantile estimates the q-th quantile (0 ≤ q ≤ 1) of the observed
// distribution by linear interpolation inside the containing bucket —
// Prometheus histogram_quantile semantics, so /metrics consumers and
// in-process callers agree. Observations above the last finite bound clamp
// to it. Returns NaN on a nil or empty histogram or q outside [0, 1].
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil || q < 0 || q > 1 || len(h.bounds) == 0 {
		return math.NaN()
	}
	total := h.Count()
	if total == 0 {
		return math.NaN()
	}
	rank := q * float64(total)
	var cum float64
	for i, bound := range h.bounds {
		c := float64(h.counts[i].Load())
		if c > 0 && cum+c >= rank {
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			return lo + (bound-lo)*((rank-cum)/c)
		}
		cum += c
	}
	return h.bounds[len(h.bounds)-1]
}

// Sum returns the sum of observations (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// WritePrometheus serializes the registry in Prometheus text exposition
// format (version 0.0.4), families sorted by name, series by label set.
func (m *Metrics) WritePrometheus(w io.Writer) error {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	fams := make([]*family, 0, len(m.families))
	for _, f := range m.families {
		fams = append(fams, f)
	}
	m.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	for _, f := range fams {
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ); err != nil {
			return err
		}
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			if err := writeSeries(w, f, k); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSeries(w io.Writer, f *family, labels string) error {
	switch s := f.series[labels].(type) {
	case *Counter:
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.name, labels, s.Value())
		return err
	case *Gauge:
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.name, labels, formatFloat(s.Value()))
		return err
	case *Histogram:
		var cum uint64
		for i, bound := range s.bounds {
			cum += s.counts[i].Load()
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, mergeLabels(labels, "le", formatFloat(bound)), cum); err != nil {
				return err
			}
		}
		cum += s.counts[len(s.bounds)].Load()
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, mergeLabels(labels, "le", "+Inf"), cum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name, labels, formatFloat(s.Sum())); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, labels, cum)
		return err
	}
	return fmt.Errorf("obs: unknown series type for %s%s", f.name, labels)
}

// mergeLabels appends one extra label pair to an already-rendered label set.
func mergeLabels(labels, k, v string) string {
	extra := fmt.Sprintf("%s=%q", k, v)
	if labels == "" {
		return "{" + extra + "}"
	}
	return strings.TrimSuffix(labels, "}") + "," + extra + "}"
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// ExpvarFunc adapts the registry for expvar.Publish: the returned func
// renders every series into a JSON-friendly map (histograms as
// {count, sum}).
func (m *Metrics) ExpvarFunc() expvar.Func {
	return func() any {
		out := map[string]any{}
		if m == nil {
			return out
		}
		m.mu.Lock()
		defer m.mu.Unlock()
		for name, f := range m.families {
			for labels, s := range f.series {
				key := name + labels
				switch s := s.(type) {
				case *Counter:
					out[key] = s.Value()
				case *Gauge:
					out[key] = s.Value()
				case *Histogram:
					out[key] = map[string]any{"count": s.Count(), "sum": s.Sum()}
				}
			}
		}
		return out
	}
}

// PublishExpvar publishes the registry under an expvar name, once; repeat
// calls (or a name already taken) are no-ops.
func (m *Metrics) PublishExpvar(name string) {
	if m == nil || expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, m.ExpvarFunc())
}
