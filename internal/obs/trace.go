package obs

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"
)

// TracePID is the trace_event process id of the real-time span timeline
// (campaign → run → attempt → fit). Simulated-time timelines (per-processor
// sim region attribution) get their own process ids via NewProcess, so wall
// clocks and cycle clocks never share an axis.
const TracePID = 1

// traceEvent is one Chrome trace_event record. Timestamps and durations are
// microseconds; for simulated timelines the convention is 1 cycle = 1 µs.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int64          `json:"pid"`
	TID  int64          `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// traceFile is the exported JSON object — the format chrome://tracing and
// ui.perfetto.dev load directly.
type traceFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// Tracer collects trace events. All methods are safe for concurrent use.
type Tracer struct {
	start time.Time
	lanes atomic.Int64
	pids  atomic.Int64

	mu     sync.Mutex
	events []traceEvent
}

// NewTracer returns a tracer whose clock starts now.
func NewTracer() *Tracer {
	t := &Tracer{start: time.Now()}
	t.pids.Store(TracePID)
	t.NameProcess(TracePID, "scaltool")
	return t
}

// Lane allocates a fresh thread id on the span process.
func (t *Tracer) Lane() int64 { return t.lanes.Add(1) }

// NewProcess allocates a trace process id and names it — one per simulated
// run timeline.
func (t *Tracer) NewProcess(name string) int64 {
	pid := t.pids.Add(1)
	t.NameProcess(pid, name)
	return pid
}

// since returns the trace timestamp (µs from tracer start) of a wall time.
func (t *Tracer) since(tm time.Time) float64 { return durMicros(tm.Sub(t.start)) }

// Emit appends one complete ("X") event. Safe on nil.
func (t *Tracer) Emit(pid, tid int64, cat, name string, ts, dur float64, args map[string]any) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.events = append(t.events, traceEvent{
		Name: name, Cat: cat, Ph: "X", TS: ts, Dur: dur, PID: pid, TID: tid, Args: args,
	})
	t.mu.Unlock()
}

// NameProcess emits the process_name metadata record. Safe on nil.
func (t *Tracer) NameProcess(pid int64, name string) {
	t.meta("process_name", pid, 0, name)
}

// NameThread emits the thread_name metadata record. Safe on nil.
func (t *Tracer) NameThread(pid, tid int64, name string) {
	t.meta("thread_name", pid, tid, name)
}

func (t *Tracer) meta(kind string, pid, tid int64, name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.events = append(t.events, traceEvent{
		Name: kind, Ph: "M", PID: pid, TID: tid, Args: map[string]any{"name": name},
	})
	t.mu.Unlock()
}

// Len returns the number of collected events (metadata included).
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// WriteJSON emits the trace_event file.
func (t *Tracer) WriteJSON(w io.Writer) error {
	t.mu.Lock()
	out := traceFile{TraceEvents: append([]traceEvent{}, t.events...), DisplayTimeUnit: "ms"}
	t.mu.Unlock()
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// WriteFile writes the trace to a file path.
func (t *Tracer) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.WriteJSON(f); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

// WriteFileAtomic writes the trace via a temporary file in the target's
// directory, fsyncs it, and renames it into place. A reader never observes
// a truncated or half-written JSON document at path — either the previous
// complete trace or the new one. This is the flush the daemon's signal
// handlers use: a SIGTERM arriving mid-write must not destroy the trace a
// crash investigation depends on.
func (t *Tracer) WriteFileAtomic(path string) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, ".trace-*.json.tmp")
	if err != nil {
		return err
	}
	tmp := f.Name()
	defer os.Remove(tmp) //scalvet:ignore best-effort cleanup; no-op after the rename succeeds
	if err := t.WriteJSON(f); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}
