// Package perftools provides analogues of the SGI performance tools the
// paper compares against and validates with:
//
//   - Speedshop — PC-sampling profile. The paper validates Scal-Tool's MP
//     estimate against the cycles speedshop attributes to barrier-related
//     functions (mp_barrier(), nthreads(), mp_lock_try()) and load-imbalance
//     functions (mp_slave_wait_for_work(), mp_master_wait_for_slaves())
//     (§4.1). Here the profile is computed from the simulator's ground-truth
//     attribution — exactly the quantity PC sampling estimates.
//   - Ssusage — the maximum resident size of the application, used to
//     sanity-check when the L2Lim effect should vanish (§4.1: "40 Mbytes /
//     4 Mbytes" → enough caching space at 10 processors).
//   - Time — wall-clock execution time.
//
// It also provides the resource-cost accounting of the *existing-tools*
// methodology from Table 1 (the paper's motivating example: measuring
// synchronization + spinning across processor counts with time+speedshop).
package perftools

import (
	"sort"

	"scaltool/internal/sim"
)

// RoutineCycles is one row of a speedshop profile.
type RoutineCycles struct {
	Name   string
	Cycles float64
}

// SpeedshopProfile is the PC-sampling view of a run: cycles accumulated
// over all processors, split between application routines (the program's
// regions), the barrier-related functions, and the idle-wait functions.
type SpeedshopProfile struct {
	App   string
	Procs int

	// BarrierCycles is time in mp_barrier()/nthreads()/mp_lock_try() —
	// synchronization proper.
	BarrierCycles float64
	// WaitCycles is time in mp_slave_wait_for_work() and
	// mp_master_wait_for_slaves() — load-imbalance spinning.
	WaitCycles float64
	// Routines is busy time per application routine, descending by cycles.
	Routines []RoutineCycles
}

// MPCycles returns the total multiprocessor overhead speedshop sees —
// the measured curve of the paper's validation Figures 7, 10 and 13.
func (p *SpeedshopProfile) MPCycles() float64 { return p.BarrierCycles + p.WaitCycles }

// Speedshop profiles a finished run.
func Speedshop(res *sim.Result) SpeedshopProfile {
	prof := SpeedshopProfile{
		App:           res.Report.App,
		Procs:         res.Procs,
		BarrierCycles: res.Ground.SyncCycles,
		WaitCycles:    res.Ground.ImbCycles,
	}
	perRoutine := map[string]float64{}
	var names []string
	for _, r := range res.Ground.Regions {
		if _, seen := perRoutine[r.Name]; !seen {
			names = append(names, r.Name)
		}
		perRoutine[r.Name] += r.Busy
	}
	sort.Strings(names)
	for _, n := range names {
		prof.Routines = append(prof.Routines, RoutineCycles{Name: n, Cycles: perRoutine[n]})
	}
	sort.SliceStable(prof.Routines, func(i, j int) bool {
		return prof.Routines[i].Cycles > prof.Routines[j].Cycles
	})
	return prof
}

// SsusageReport is the memory-usage view of a run.
type SsusageReport struct {
	Pages     int
	PageBytes int
}

// Bytes returns the resident size in bytes.
func (s SsusageReport) Bytes() uint64 { return uint64(s.Pages) * uint64(s.PageBytes) }

// Ssusage reports the maximum resident pages of a run.
func Ssusage(res *sim.Result) SsusageReport {
	return SsusageReport{Pages: res.Report.TouchedPages, PageBytes: res.Report.PageBytes}
}

// Time returns the execution time in seconds at the given clock rate.
func Time(res *sim.Result, clockMHz int) float64 {
	return res.WallCycles / (float64(clockMHz) * 1e6)
}

// ResourceCost counts what a measurement methodology consumes — the three
// columns of Table 1.
type ResourceCost struct {
	Runs       int // application executions
	Processors int // processor allocations summed over runs
	Files      int // output files to manage/analyze
}

// Add sums two costs.
func (c ResourceCost) Add(o ResourceCost) ResourceCost {
	return ResourceCost{c.Runs + o.Runs, c.Processors + o.Processors, c.Files + o.Files}
}

// TimeToolCost returns the cost of measuring execution time with `time` at
// processor counts 1, 2, 4, …, 2^(n−1): one run per count, one output file
// per run.
func TimeToolCost(n int) ResourceCost {
	return ResourceCost{Runs: n, Processors: pow2Sum(n), Files: n}
}

// SpeedshopCost returns the cost of measuring the synchronization/spinning
// cycle fraction with speedshop at the same processor counts. Speedshop's
// default emits one experiment file per process, so a run at 2^i processors
// produces 2^i files (the paper notes the count "could be reduced by
// generating a single file in every speedshop run"; Table 1 charges the
// default).
func SpeedshopCost(n int) ResourceCost {
	return ResourceCost{Runs: n, Processors: pow2Sum(n), Files: pow2Sum(n)}
}

// ExistingToolsCost is the Table 1 "Total with Existing Tools" row:
// time + speedshop.
func ExistingToolsCost(n int) ResourceCost {
	return TimeToolCost(n).Add(SpeedshopCost(n))
}

// pow2Sum returns 1 + 2 + 4 + … + 2^(n−1) = 2^n − 1.
func pow2Sum(n int) int {
	if n <= 0 {
		return 0
	}
	return 1<<uint(n) - 1
}
