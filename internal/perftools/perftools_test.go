package perftools

import (
	"math"
	"testing"

	"scaltool/internal/machine"
	"scaltool/internal/sim"
)

func sampleRun(t *testing.T) *sim.Result {
	t.Helper()
	cfg := machine.TinyTest()
	p, err := sim.NewProgram("demo", 2, 2048, cfg.PageBytes)
	if err != nil {
		t.Fatal(err)
	}
	arr := p.MustAlloc("a", 2048)
	for r := 0; r < 2; r++ {
		reg := p.AddRegion("stencil")
		reg.Proc(0).Read(arr.Base, 64, 8, 2)
		reg.Proc(1).Read(arr.Base+1024, 64, 8, 2)
	}
	serial := p.AddRegion("reduce")
	serial.Proc(0).Compute(50_000)
	res, err := sim.Run(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestSpeedshopProfile(t *testing.T) {
	res := sampleRun(t)
	prof := Speedshop(res)
	if prof.App != "demo" || prof.Procs != 2 {
		t.Fatalf("header = %+v", prof)
	}
	if prof.BarrierCycles != res.Ground.SyncCycles || prof.WaitCycles != res.Ground.ImbCycles {
		t.Fatal("bucket cycles do not match ground truth")
	}
	if prof.MPCycles() != res.Ground.MPCycles() {
		t.Fatal("MPCycles mismatch")
	}
	// Two distinct routines, aggregated; descending order.
	if len(prof.Routines) != 2 {
		t.Fatalf("routines = %+v", prof.Routines)
	}
	if prof.Routines[0].Cycles < prof.Routines[1].Cycles {
		t.Fatal("routines not sorted descending")
	}
	var sum float64
	for _, r := range prof.Routines {
		sum += r.Cycles
	}
	if math.Abs(sum-res.Ground.BusyCycles) > 1e-9*sum {
		t.Fatalf("routine cycles %g != busy %g", sum, res.Ground.BusyCycles)
	}
	// The serial reduce region must show heavy wait time overall.
	if prof.WaitCycles == 0 {
		t.Fatal("serial section produced no wait cycles")
	}
}

func TestSsusage(t *testing.T) {
	res := sampleRun(t)
	u := Ssusage(res)
	if u.Pages == 0 || u.PageBytes != machine.TinyTest().PageBytes {
		t.Fatalf("ssusage = %+v", u)
	}
	if u.Bytes() != uint64(u.Pages)*uint64(u.PageBytes) {
		t.Fatal("Bytes math wrong")
	}
	// Each processor sweeps 512 B, plus the sync page: ≥ 1024+64 bytes.
	if u.Bytes() < 1024+64 {
		t.Fatalf("resident %d B < touched footprint", u.Bytes())
	}
}

func TestTime(t *testing.T) {
	res := sampleRun(t)
	sec := Time(res, 250)
	want := res.WallCycles / 250e6
	if sec != want {
		t.Fatalf("Time = %g, want %g", sec, want)
	}
}

func TestResourceCostsTable1(t *testing.T) {
	// The paper's n=6 example (up to 32 processors): existing tools need
	// 2n = 12 runs and 2(2^6−1) = 126 processors; Scal-Tool (checked in
	// campaign tests) needs 2^6+6−2 = 68 ≈ 54% of the processors.
	n := 6
	tt := TimeToolCost(n)
	if tt.Runs != 6 || tt.Processors != 63 || tt.Files != 6 {
		t.Fatalf("time cost = %+v", tt)
	}
	ss := SpeedshopCost(n)
	if ss.Runs != 6 || ss.Processors != 63 || ss.Files != 63 {
		t.Fatalf("speedshop cost = %+v", ss)
	}
	tot := ExistingToolsCost(n)
	if tot.Runs != 12 || tot.Processors != 126 || tot.Files != 69 {
		t.Fatalf("existing total = %+v", tot)
	}
}

func TestResourceCostDegenerate(t *testing.T) {
	if c := ExistingToolsCost(0); c.Runs != 0 || c.Processors != 0 || c.Files != 0 {
		t.Fatalf("n=0 cost = %+v", c)
	}
	if c := TimeToolCost(1); c.Processors != 1 {
		t.Fatalf("n=1 processors = %d", c.Processors)
	}
}
