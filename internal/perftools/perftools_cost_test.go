// External test package: these tests exercise perftools against
// campaign.Plan (campaign imports perftools, so an internal test package
// would cycle).
package perftools_test

import (
	"fmt"
	"math"
	"testing"

	"scaltool/internal/campaign"
	"scaltool/internal/machine"
	"scaltool/internal/perftools"
	"scaltool/internal/sim"
)

// planFor builds the Table 3 plan shape by hand for n processor-count
// points: base runs at 1, 2, …, 2^(n−1) and n−1 uniprocessor fractions.
func planFor(n int) campaign.Plan {
	p := campaign.Plan{App: "ident", S0: 1 << 20}
	for i := 0; i < n; i++ {
		p.ProcCounts = append(p.ProcCounts, 1<<i)
	}
	for i := 1; i < n; i++ {
		p.UniSizes = append(p.UniSizes, p.S0>>i)
	}
	return p
}

// TestScalToolCostIdentities checks the Table 1 Scal-Tool row symbolically
// at n = 1, 2, 3: 2n−1 runs, 2^n+n−2 processors, 2n−1 files — and that the
// plan's processor bill stays below the existing-tools methodology for
// every n with more than one point.
func TestScalToolCostIdentities(t *testing.T) {
	for n := 1; n <= 3; n++ {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			plan := planFor(n)
			if plan.N() != n {
				t.Fatalf("plan.N() = %d, want %d", plan.N(), n)
			}
			c := plan.Cost()
			if want := 2*n - 1; c.Runs != want {
				t.Errorf("runs = %d, want 2n−1 = %d", c.Runs, want)
			}
			if want := 1<<n + n - 2; c.Processors != want {
				t.Errorf("processors = %d, want 2^n+n−2 = %d", c.Processors, want)
			}
			if want := 2*n - 1; c.Files != want {
				t.Errorf("files = %d, want 2n−1 = %d", c.Files, want)
			}
			if n > 1 {
				ex := perftools.ExistingToolsCost(n)
				if c.Processors >= ex.Processors {
					t.Errorf("Scal-Tool bills %d processors, existing tools %d — Table 1's saving is gone",
						c.Processors, ex.Processors)
				}
			}
		})
	}
}

// runAt simulates a small two-region program (a parallel sweep plus a
// processor-0-only serial section that manufactures imbalance) at the given
// processor count.
func runAt(t *testing.T, procs int) *sim.Result {
	t.Helper()
	cfg := machine.TinyTest()
	p, err := sim.NewProgram("split", procs, 4096, cfg.PageBytes)
	if err != nil {
		t.Fatal(err)
	}
	arr := p.MustAlloc("a", 4096)
	per := uint64(4096 / procs)
	sweep := p.AddRegion("sweep")
	for pr := 0; pr < procs; pr++ {
		sweep.Proc(pr).Read(arr.Base+uint64(pr)*per, per/8, 8, 2)
	}
	p.AddRegion("serial").Proc(0).Compute(20_000)
	res, err := sim.Run(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestSpeedshopSplitVsGroundTruth validates the speedshop analogue's
// barrier/imbalance split against the simulator's ground truth at 1, 2, and
// 4 processors: the profile's buckets equal the summed per-region
// attribution, MP = Sync + Imb holds, and a uniprocessor run shows no
// imbalance at all.
func TestSpeedshopSplitVsGroundTruth(t *testing.T) {
	for _, procs := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("procs=%d", procs), func(t *testing.T) {
			res := runAt(t, procs)
			prof := perftools.Speedshop(res)

			var sync, imb, busy float64
			for _, reg := range res.Ground.Regions {
				sync += reg.Sync
				imb += reg.Imb
				busy += reg.Busy
			}
			approx := func(got, want float64, what string) {
				if math.Abs(got-want) > 1e-9*(want+1) {
					t.Errorf("%s = %g, want %g", what, got, want)
				}
			}
			approx(prof.BarrierCycles, sync, "barrier bucket")
			approx(prof.WaitCycles, imb, "wait bucket")
			approx(prof.MPCycles(), res.Ground.MPCycles(), "MP")
			approx(prof.BarrierCycles+prof.WaitCycles, res.Ground.SyncCycles+res.Ground.ImbCycles, "MP identity")

			var routine float64
			for _, r := range prof.Routines {
				routine += r.Cycles
			}
			approx(routine, busy, "routine busy cycles")

			if procs == 1 {
				if prof.WaitCycles != 0 {
					t.Errorf("uniprocessor run shows %g imbalance cycles", prof.WaitCycles)
				}
			} else if prof.WaitCycles == 0 {
				t.Error("serial section produced no imbalance on a multiprocessor run")
			}
		})
	}
}
