// Package network models the Origin 2000's interconnect: routers arranged in
// a hypercube, with ProcsPerRouter processors attached to each router
// ("bristled" hypercube). The package answers one question for the
// simulator: how many cycles does a message between two nodes cost?
//
// The key property the paper depends on is that the average memory access
// latency tm grows with the processor count, because a larger machine has
// more router hops between a processor and the average home node ("with more
// processors, the physical dimensions of the machine are larger and,
// therefore, accesses to main memory take longer", §2.3).
package network

import (
	"fmt"
	"math/bits"

	"scaltool/internal/assert"
)

// hopTableMaxRouters bounds the precomputed router-pair hop table: beyond
// this the table would outweigh the caches being simulated, so Hops falls
// back to computing the Hamming distance on demand (identical values).
const hopTableMaxRouters = 1024

// Topology is an immutable description of a bristled hypercube connecting a
// fixed number of processors. Construction precomputes the processor→router
// map and the router-pair hop table, so the per-miss latency questions the
// simulator asks (OneWayCycles, RoundTripCycles) are two table loads and a
// multiply — no divisions or popcounts on the hot path.
type Topology struct {
	procs          int
	procsPerRouter int
	routers        int // power of two ≥ ceil(procs/procsPerRouter)
	dim            int // log2(routers)
	routerHop      int // cycles per hop

	routerOf []int32 // proc → router
	hopTab   []uint8 // routers×routers Hamming distances; nil above hopTableMaxRouters
}

// New builds the topology for the given processor count. procsPerRouter is
// the bristling factor (2 on the Origin). routerHop is the per-hop cost in
// cycles.
func New(procs, procsPerRouter, routerHop int) (*Topology, error) {
	if procs <= 0 {
		return nil, fmt.Errorf("network: procs must be positive, got %d", procs)
	}
	if procsPerRouter <= 0 {
		return nil, fmt.Errorf("network: procsPerRouter must be positive, got %d", procsPerRouter)
	}
	if routerHop < 0 {
		return nil, fmt.Errorf("network: routerHop must be non-negative, got %d", routerHop)
	}
	need := (procs + procsPerRouter - 1) / procsPerRouter
	routers := 1
	dim := 0
	for routers < need {
		routers <<= 1
		dim++
	}
	t := &Topology{
		procs:          procs,
		procsPerRouter: procsPerRouter,
		routers:        routers,
		dim:            dim,
		routerHop:      routerHop,
	}
	t.routerOf = make([]int32, procs)
	for p := 0; p < procs; p++ {
		t.routerOf[p] = int32(p / procsPerRouter)
	}
	if routers <= hopTableMaxRouters {
		t.hopTab = make([]uint8, routers*routers)
		for a := 0; a < routers; a++ {
			for b := 0; b < routers; b++ {
				t.hopTab[a*routers+b] = uint8(bits.OnesCount(uint(a ^ b)))
			}
		}
	}
	return t, nil
}

// Procs returns the number of processors.
func (t *Topology) Procs() int { return t.procs }

// Routers returns the number of routers in the hypercube.
func (t *Topology) Routers() int { return t.routers }

// Dim returns the hypercube dimension (log2 of the router count).
func (t *Topology) Dim() int { return t.dim }

// Router returns the router a processor is attached to. Processors are
// assigned to routers round-robin-free, in contiguous blocks, matching how
// Origin nodes hold two processors each.
func (t *Topology) Router(proc int) int {
	t.check(proc)
	return int(t.routerOf[proc])
}

// Hops returns the number of router-to-router hops on the minimal path
// between two processors: the Hamming distance of their router IDs (0 when
// they share a router).
func (t *Topology) Hops(from, to int) int {
	t.check(from)
	t.check(to)
	a, b := t.routerOf[from], t.routerOf[to]
	if t.hopTab != nil {
		return int(t.hopTab[int(a)*t.routers+int(b)])
	}
	return bits.OnesCount(uint(a ^ b))
}

// OneWayCycles returns the network cost in cycles of a one-way message from
// one processor to another. Same-router messages are free at this level of
// abstraction (the node-level costs live in the latency parameters).
func (t *Topology) OneWayCycles(from, to int) int {
	return t.Hops(from, to) * t.routerHop
}

// RoundTripCycles returns the cost of a request/response pair.
func (t *Topology) RoundTripCycles(from, to int) int {
	return 2 * t.OneWayCycles(from, to)
}

// MeanHops returns the average hop count from a fixed processor to a home
// node chosen uniformly among all processors' routers. For a hypercube of
// dimension d, the average Hamming distance to a uniform router is d/2;
// bristling makes same-router pairs slightly more likely. This is the
// quantity behind the model's tm(n) growth.
func (t *Topology) MeanHops() float64 {
	total := 0
	for p := 0; p < t.procs; p++ {
		total += t.Hops(0, p)
	}
	return float64(total) / float64(t.procs)
}

func (t *Topology) check(proc int) {
	if proc < 0 || proc >= t.procs {
		assert.Failf("network: processor %d out of range [0,%d)", proc, t.procs)
	}
}
