package network

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func mustNew(t *testing.T, procs, ppr, hop int) *Topology {
	t.Helper()
	top, err := New(procs, ppr, hop)
	if err != nil {
		t.Fatalf("New(%d,%d,%d): %v", procs, ppr, hop, err)
	}
	return top
}

func TestNewValidation(t *testing.T) {
	for _, c := range []struct{ procs, ppr, hop int }{
		{0, 2, 1}, {-1, 2, 1}, {4, 0, 1}, {4, 2, -1},
	} {
		if _, err := New(c.procs, c.ppr, c.hop); err == nil {
			t.Errorf("New(%d,%d,%d): want error", c.procs, c.ppr, c.hop)
		}
	}
}

func TestRouterAssignment(t *testing.T) {
	top := mustNew(t, 8, 2, 10)
	if top.Routers() != 4 || top.Dim() != 2 {
		t.Fatalf("routers=%d dim=%d, want 4/2", top.Routers(), top.Dim())
	}
	for p := 0; p < 8; p++ {
		if got, want := top.Router(p), p/2; got != want {
			t.Errorf("Router(%d) = %d, want %d", p, got, want)
		}
	}
}

func TestHopsSameRouterZero(t *testing.T) {
	top := mustNew(t, 8, 2, 10)
	if h := top.Hops(0, 1); h != 0 {
		t.Fatalf("Hops(0,1) = %d, want 0 (bristled pair)", h)
	}
	if c := top.OneWayCycles(0, 1); c != 0 {
		t.Fatalf("OneWayCycles(0,1) = %d, want 0", c)
	}
}

func TestHopsHammingDistance(t *testing.T) {
	top := mustNew(t, 16, 2, 10)
	// Routers 0..7, dim 3. Proc 0 on router 0, proc 14 on router 7: 3 hops.
	if h := top.Hops(0, 14); h != 3 {
		t.Fatalf("Hops(0,14) = %d, want 3", h)
	}
	if c := top.RoundTripCycles(0, 14); c != 60 {
		t.Fatalf("RoundTripCycles = %d, want 60", c)
	}
}

func TestUniprocessorDegenerate(t *testing.T) {
	top := mustNew(t, 1, 2, 10)
	if top.Routers() != 1 || top.Dim() != 0 {
		t.Fatalf("routers=%d dim=%d, want 1/0", top.Routers(), top.Dim())
	}
	if top.Hops(0, 0) != 0 {
		t.Fatal("self-hops must be zero")
	}
	if top.MeanHops() != 0 {
		t.Fatal("uniprocessor mean hops must be zero")
	}
}

func TestMeanHopsGrowsWithProcs(t *testing.T) {
	// The property behind tm(n): average distance rises with machine size.
	prev := -1.0
	for _, n := range []int{1, 2, 4, 8, 16, 32, 64} {
		top := mustNew(t, n, 2, 10)
		m := top.MeanHops()
		if m < prev {
			t.Fatalf("MeanHops(%d)=%g decreased from %g", n, m, prev)
		}
		prev = m
	}
	big := mustNew(t, 64, 2, 10)
	small := mustNew(t, 4, 2, 10)
	if big.MeanHops() <= small.MeanHops() {
		t.Fatal("MeanHops must strictly grow from 4 to 64 processors")
	}
}

func TestHopsProperties(t *testing.T) {
	// Symmetry, identity, and triangle inequality — Hamming distance is a
	// metric, so the topology must inherit that.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		procs := 1 + rng.Intn(64)
		ppr := 1 + rng.Intn(4)
		top, err := New(procs, ppr, 5)
		if err != nil {
			return false
		}
		a, b, c := rng.Intn(procs), rng.Intn(procs), rng.Intn(procs)
		if top.Hops(a, a) != 0 {
			return false
		}
		if top.Hops(a, b) != top.Hops(b, a) {
			return false
		}
		if top.Hops(a, c) > top.Hops(a, b)+top.Hops(b, c) {
			return false
		}
		return top.Hops(a, b) <= top.Dim()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestOutOfRangePanics(t *testing.T) {
	top := mustNew(t, 4, 2, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for out-of-range processor")
		}
	}()
	top.Hops(0, 4)
}

func TestRoundTripIsTwiceOneWay(t *testing.T) {
	top := mustNew(t, 32, 2, 7)
	for a := 0; a < 32; a += 5 {
		for b := 0; b < 32; b += 3 {
			if top.RoundTripCycles(a, b) != 2*top.OneWayCycles(a, b) {
				t.Fatalf("RT(%d,%d) != 2*OneWay", a, b)
			}
		}
	}
}
