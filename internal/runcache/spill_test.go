package runcache

import (
	"bytes"
	"context"
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"

	"scaltool/internal/faultinject"
	"scaltool/internal/journal"
	"scaltool/internal/machine"
	"scaltool/internal/obs"
	"scaltool/internal/sim"
)

// TestSpillFrameRoundTrip pins the frame layout: magic, little-endian payload
// length, CRC-32C, then the payload — and a decode that inverts it exactly.
func TestSpillFrameRoundTrip(t *testing.T) {
	cfg := machine.TinyTest()
	prog := testProg(t, cfg, "app", 2, 2)
	res, err := sim.Run(cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	framed, err := encodeSpillFrame(res)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(framed[:8], spillMagic[:]) {
		t.Fatalf("frame magic = %q", framed[:8])
	}
	if plen := binary.LittleEndian.Uint64(framed[8:16]); plen != uint64(len(framed)-spillHeaderBytes) {
		t.Fatalf("declared payload %d bytes, frame carries %d", plen, len(framed)-spillHeaderBytes)
	}
	got, damage, err := decodeSpillFrame(framed)
	if err != nil {
		t.Fatalf("round-trip decode failed (%s): %v", damage, err)
	}
	if !bytes.Equal(encode(t, got), encode(t, res)) {
		t.Fatal("round-tripped result differs from the original")
	}
}

// TestSpillFrameDamageClasses mutates a valid frame one way per damage class
// and checks each is detected, classified, and never decoded into a Result.
func TestSpillFrameDamageClasses(t *testing.T) {
	cfg := machine.TinyTest()
	res, err := sim.Run(cfg, testProg(t, cfg, "app", 2, 2))
	if err != nil {
		t.Fatal(err)
	}
	valid, err := encodeSpillFrame(res)
	if err != nil {
		t.Fatal(err)
	}
	// A frame whose CRC is honest about a payload the decoder rejects: the
	// integrity layer passes, the codec layer must still classify it.
	badPayload := []byte(`{"version":9999}`)
	undecodable := make([]byte, spillHeaderBytes+len(badPayload))
	copy(undecodable[:8], spillMagic[:])
	binary.LittleEndian.PutUint64(undecodable[8:16], uint64(len(badPayload)))
	binary.LittleEndian.PutUint32(undecodable[16:20], journal.Checksum(badPayload))
	copy(undecodable[spillHeaderBytes:], badPayload)

	cases := []struct {
		name   string
		mutate func([]byte) []byte
		class  string
	}{
		{"empty file", func(b []byte) []byte { return nil }, "header"},
		{"short header", func(b []byte) []byte { return b[:spillHeaderBytes-1] }, "header"},
		{"wrong magic", func(b []byte) []byte { b[0] ^= 0xFF; return b }, "header"},
		{"truncated payload", func(b []byte) []byte { return b[:len(b)-7] }, "torn"},
		{"appended garbage", func(b []byte) []byte { return append(b, 0xAA) }, "torn"},
		{"flipped payload byte", func(b []byte) []byte { b[len(b)-2] ^= 0x01; return b }, "crc"},
		{"flipped stored crc", func(b []byte) []byte { b[17] ^= 0x01; return b }, "crc"},
		{"undecodable payload", func(b []byte) []byte { return undecodable }, "decode"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			data := tc.mutate(append([]byte(nil), valid...))
			got, class, err := decodeSpillFrame(data)
			if err == nil || got != nil {
				t.Fatalf("damaged frame decoded: res=%v err=%v", got, err)
			}
			if class != tc.class {
				t.Fatalf("damage classified %q, want %q (%v)", class, tc.class, err)
			}
		})
	}
}

// TestSpillLoadQuarantines drives loadSpill over an on-disk entry damaged in
// place: the load must miss, count the damage class, and move the file into
// the quarantine directory so it is never re-read as a cache entry.
func TestSpillLoadQuarantines(t *testing.T) {
	cfg := machine.TinyTest()
	prog := testProg(t, cfg, "app", 2, 2)
	res, err := sim.Run(cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	c := New(Options{MaxBytes: 1 << 20, SpillDir: dir})
	key := KeyFor(cfg, prog)
	if !c.writeSpill(key, res) {
		t.Fatal("writeSpill failed")
	}
	mt := obs.NewMetrics()

	// Undamaged: loads cleanly, nothing counted, nothing quarantined.
	if got, ok := c.loadSpill(key, mt); !ok || got == nil {
		t.Fatal("clean spill entry did not load")
	}
	if n := mt.RuncacheCorrupt("crc").Value(); n != 0 {
		t.Fatalf("clean load counted %d corruptions", n)
	}

	// Flip one payload byte on disk.
	path := c.spillPath(key)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-2] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	if got, ok := c.loadSpill(key, mt); ok || got != nil {
		t.Fatal("corrupt spill entry loaded")
	}
	if n := mt.RuncacheCorrupt("crc").Value(); n != 1 {
		t.Fatalf("crc corruption count = %d, want 1", n)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("damaged file still at its spill path (err=%v)", err)
	}
	q := filepath.Join(dir, quarantineDirName, filepath.Base(path))
	if _, err := os.Stat(q); err != nil {
		t.Fatalf("damaged file not quarantined at %s: %v", q, err)
	}
	// The next load is a plain miss — quarantine is terminal, counted once.
	if _, ok := c.loadSpill(key, mt); ok {
		t.Fatal("quarantined entry loaded")
	}
	if n := mt.RuncacheCorrupt("crc").Value(); n != 1 {
		t.Fatalf("quarantined entry re-counted: %d", n)
	}
}

// TestSpillFaultInjection closes the loop with the chaos hook: an injector
// that mangles every spill write (torn or bit-rotted frames) must never
// produce a wrong answer — reloads detect the damage, quarantine the file,
// and re-simulate to a byte-identical result.
func TestSpillFaultInjection(t *testing.T) {
	cfg := machine.TinyTest()
	for _, tc := range []struct {
		name  string
		spec  faultinject.Spec
		class string
	}{
		{"torn write", faultinject.Spec{Seed: 7, Truncate: 1}, "torn"},
		{"bit rot", faultinject.Spec{Seed: 7, Corrupt: 1}, "crc"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			prog := testProg(t, cfg, "app", 2, 2)
			res, err := sim.Run(cfg, prog)
			if err != nil {
				t.Fatal(err)
			}
			want := encode(t, res)
			c := New(Options{MaxBytes: 1 << 20, SpillDir: dir, Inject: faultinject.New(tc.spec)})
			key := KeyFor(cfg, prog)
			if !c.writeSpill(key, res) {
				t.Fatal("writeSpill failed")
			}

			mt := obs.NewMetrics()
			if got, ok := c.loadSpill(key, mt); ok || got != nil {
				t.Fatal("mangled spill entry loaded as valid")
			}
			classes := []string{"header", "torn", "crc", "decode"}
			var total uint64
			for _, cl := range classes {
				total += mt.RuncacheCorrupt(cl).Value()
			}
			if total != 1 || mt.RuncacheCorrupt(tc.class).Value() != 1 {
				t.Fatalf("damage not classified %q exactly once (total %d)", tc.class, total)
			}

			// The full miss path re-simulates and the answer is unchanged.
			got, hit, err := c.GetOrRun(context.Background(), cfg, prog, func(ctx context.Context) (*sim.Result, error) {
				return sim.RunContext(ctx, cfg, prog)
			})
			if err != nil {
				t.Fatal(err)
			}
			if hit {
				t.Fatal("mangled entry reported as a cache hit")
			}
			if !bytes.Equal(encode(t, got), want) {
				t.Fatal("re-simulated result differs from the original")
			}
		})
	}
}
