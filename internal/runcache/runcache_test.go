package runcache

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"scaltool/internal/machine"
	"scaltool/internal/sim"
)

func testProg(t testing.TB, cfg machine.Config, name string, procs int, regions int) *sim.Program {
	t.Helper()
	prog, err := sim.NewProgram(name, procs, 1<<14, cfg.PageBytes)
	if err != nil {
		t.Fatal(err)
	}
	arr := prog.MustAlloc("a", 1<<14)
	for r := 0; r < regions; r++ {
		reg := prog.AddRegion(fmt.Sprintf("r%d", r))
		for p := 0; p < procs; p++ {
			st := reg.Proc(p)
			st.Compute(200)
			st.Read(arr.Base+uint64(p)*1024, 32, 32, 1)
		}
	}
	return prog
}

func encode(t testing.TB, r *sim.Result) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := sim.EncodeResult(&buf, r); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestKeyCoversConfig pins the field census of machine.Config (and its
// sub-structs) so a newly added field cannot silently escape KeyFor's
// canonicalization: whoever adds a field must update KeyFor AND this count.
func TestKeyCoversConfig(t *testing.T) {
	counts := map[string]int{
		"Config":      11,
		"CacheConfig": 3,
		"Latencies":   8,
		"CostModel":   2,
		"SyncCosts":   4,
	}
	for name, want := range counts {
		var typ reflect.Type
		switch name {
		case "Config":
			typ = reflect.TypeOf(machine.Config{})
		case "CacheConfig":
			typ = reflect.TypeOf(machine.CacheConfig{})
		case "Latencies":
			typ = reflect.TypeOf(machine.Latencies{})
		case "CostModel":
			typ = reflect.TypeOf(machine.CostModel{})
		case "SyncCosts":
			typ = reflect.TypeOf(machine.SyncCosts{})
		}
		if got := typ.NumField(); got != want {
			t.Errorf("machine.%s has %d fields, canonicalization was written for %d — update runcache.KeyFor and this census together",
				name, got, want)
		}
	}
}

// TestKeySensitivity checks the content address moves with every input that
// changes a simulation, and stays put for a byte-identical rebuild.
func TestKeySensitivity(t *testing.T) {
	cfg := machine.TinyTest()
	base := KeyFor(cfg, testProg(t, cfg, "app", 2, 2))

	if k := KeyFor(cfg, testProg(t, cfg, "app", 2, 2)); k != base {
		t.Error("identical rebuild changed the key")
	}
	if k := KeyFor(cfg, testProg(t, cfg, "app", 4, 2)); k == base {
		t.Error("processor count not in the key")
	}
	if k := KeyFor(cfg, testProg(t, cfg, "app", 2, 3)); k == base {
		t.Error("region structure not in the key")
	}
	if k := KeyFor(cfg, testProg(t, cfg, "other", 2, 2)); k == base {
		t.Error("program name not in the key")
	}
	cfg2 := cfg
	cfg2.Lat.MemLocal++
	if k := KeyFor(cfg2, testProg(t, cfg2, "app", 2, 2)); k == base {
		t.Error("machine latency not in the key")
	}
	cfg3 := cfg
	cfg3.Cost.ComputeCPI *= 1.5
	if k := KeyFor(cfg3, testProg(t, cfg3, "app", 2, 2)); k == base {
		t.Error("cost model not in the key")
	}
}

// TestSingleflightRace hammers one cache with N identical and M distinct
// concurrent requests (run under -race by verify.sh): exactly one simulation
// must execute per distinct key, every response must be byte-identical to a
// fresh uncached run, and every caller must get a private Result clone.
func TestSingleflightRace(t *testing.T) {
	cfg := machine.TinyTest()
	const identical = 24
	const distinct = 6

	c := New(Options{MaxBytes: 64 << 20})
	var runs atomic.Int64
	runFor := func(prog *sim.Program) RunFunc {
		return func(ctx context.Context) (*sim.Result, error) {
			runs.Add(1)
			return sim.RunContext(ctx, cfg, prog)
		}
	}

	// Fresh ground truth per distinct program, simulated outside the cache.
	want := make([][]byte, distinct)
	for i := range want {
		res, err := sim.Run(cfg, testProg(t, cfg, fmt.Sprintf("app%d", i), 2, 2))
		if err != nil {
			t.Fatal(err)
		}
		want[i] = encode(t, res)
	}

	var wg sync.WaitGroup
	errs := make(chan error, identical*distinct)
	for i := 0; i < distinct; i++ {
		for j := 0; j < identical; j++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				prog := testProg(t, cfg, fmt.Sprintf("app%d", i), 2, 2)
				res, _, err := c.GetOrRun(context.Background(), cfg, prog, runFor(prog))
				if err != nil {
					errs <- err
					return
				}
				// Mutate the private clone; the cached copy must not see it.
				res.Report.App = "scribbled"
				if len(res.Report.PerProc) > 0 {
					res.Report.PerProc[0][0] += 12345
				}
			}(i)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	if got := runs.Load(); got != distinct {
		t.Fatalf("%d simulations for %d distinct keys (singleflight broken)", got, distinct)
	}
	// Cached results, fetched after the scribbling above, must still be
	// byte-identical to fresh uncached runs.
	for i := 0; i < distinct; i++ {
		prog := testProg(t, cfg, fmt.Sprintf("app%d", i), 2, 2)
		res, hit, err := c.GetOrRun(context.Background(), cfg, prog, runFor(prog))
		if err != nil {
			t.Fatal(err)
		}
		if !hit {
			t.Fatalf("key %d: expected a cache hit", i)
		}
		if !bytes.Equal(encode(t, res), want[i]) {
			t.Fatalf("key %d: cached result differs from a fresh run (or a caller's scribble leaked in)", i)
		}
	}
	if got := runs.Load(); got != distinct {
		t.Fatalf("verification pass re-simulated: %d runs", got)
	}
}

// TestSingleflightErrorNotCached checks a failed run is reported to its
// waiters but not cached: the next request re-attempts.
func TestSingleflightErrorNotCached(t *testing.T) {
	cfg := machine.TinyTest()
	prog := testProg(t, cfg, "app", 2, 2)
	c := New(Options{})
	boom := errors.New("boom")
	calls := 0
	fail := func(ctx context.Context) (*sim.Result, error) { calls++; return nil, boom }
	if _, _, err := c.GetOrRun(context.Background(), cfg, prog, fail); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	res, hit, err := c.GetOrRun(context.Background(), cfg, prog, func(ctx context.Context) (*sim.Result, error) {
		calls++
		return sim.RunContext(ctx, cfg, prog)
	})
	if err != nil || hit || res == nil {
		t.Fatalf("retry after error: res=%v hit=%v err=%v", res != nil, hit, err)
	}
	if calls != 2 {
		t.Fatalf("calls = %d, want 2 (error must not be cached)", calls)
	}
}

// TestLRUEvictionProperty inserts a stream of distinct entries through a
// cache with a tiny byte budget and checks the LRU properties throughout:
// resident bytes never exceed the budget, the most recently used entries
// survive, and a touched (re-read) entry outlives untouched older ones.
func TestLRUEvictionProperty(t *testing.T) {
	cfg := machine.TinyTest()
	mk := func(i int) *sim.Program { return testProg(t, cfg, fmt.Sprintf("app%d", i), 2, 2) }
	one, err := sim.Run(cfg, mk(0))
	if err != nil {
		t.Fatal(err)
	}
	per := one.SizeEstimate()
	const keep = 3
	c := New(Options{MaxBytes: per*keep + per/2}) // room for exactly `keep`

	const total = 12
	runs := 0
	get := func(i int) bool {
		prog := mk(i)
		_, hit, err := c.GetOrRun(context.Background(), cfg, prog, func(ctx context.Context) (*sim.Result, error) {
			runs++
			return sim.RunContext(ctx, cfg, prog)
		})
		if err != nil {
			t.Fatal(err)
		}
		if st := c.Stats(); st.Bytes > per*keep+per/2 {
			t.Fatalf("after get(%d): resident %d bytes exceeds budget", i, st.Bytes)
		}
		return hit
	}

	for i := 0; i < total; i++ {
		get(i)
		// Keep entry 0 hot: it must survive every eviction wave.
		if i > 0 && i < total-1 {
			if !get(0) {
				t.Fatalf("hot entry 0 was evicted at step %d despite being most-recently used", i)
			}
		}
	}
	if st := c.Stats(); st.Entries > keep {
		t.Fatalf("resident entries = %d, budget allows %d", st.Entries, keep)
	}
	// The last-inserted entry and the hot entry are resident; the cold
	// middle entries are not.
	if !get(total - 1) {
		t.Error("most recent entry was evicted")
	}
	if !get(0) {
		t.Error("hot entry evicted before cold ones")
	}
	if get(1) {
		t.Error("cold entry 1 still resident past the byte budget")
	}
	if runs > total+2 {
		t.Errorf("%d simulations for %d distinct programs (+2 allowed evicted re-runs), cache ineffective", runs, total)
	}
}

// TestDiskSpill checks evicted entries land on disk and are reloaded —
// byte-identical, segments included — instead of re-simulated.
func TestDiskSpill(t *testing.T) {
	cfg := machine.TinyTest()
	dir := t.TempDir()
	mk := func(i int) *sim.Program { return testProg(t, cfg, fmt.Sprintf("app%d", i), 2, 2) }
	one, err := sim.Run(cfg, mk(0))
	if err != nil {
		t.Fatal(err)
	}
	want := encode(t, one)
	c := New(Options{MaxBytes: one.SizeEstimate() + 16, SpillDir: dir}) // one resident entry

	runs := 0
	get := func(i int) (*sim.Result, bool) {
		prog := mk(i)
		res, hit, err := c.GetOrRun(context.Background(), cfg, prog, func(ctx context.Context) (*sim.Result, error) {
			runs++
			return sim.RunContext(ctx, cfg, prog)
		})
		if err != nil {
			t.Fatal(err)
		}
		return res, hit
	}
	get(0)
	get(1) // evicts 0 → spill
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) == 0 {
		t.Fatal("eviction wrote no spill file")
	}
	res, hit, runsBefore := (*sim.Result)(nil), false, runs
	res, hit = get(0) // must come from disk
	if !hit {
		t.Fatal("spilled entry not reported as a hit")
	}
	if runs != runsBefore {
		t.Fatalf("spilled entry re-simulated (%d runs)", runs)
	}
	if !bytes.Equal(encode(t, res), want) {
		t.Fatal("disk-spilled result differs from the original")
	}
	// SegmentReport must work on a decoded result.
	if _, err := res.SegmentReport("r0"); err != nil {
		t.Fatalf("segment report on spilled result: %v", err)
	}
}

// TestNilCacheRunsThrough checks a nil *Cache degrades to a plain run.
func TestNilCacheRunsThrough(t *testing.T) {
	cfg := machine.TinyTest()
	prog := testProg(t, cfg, "app", 2, 1)
	var c *Cache
	res, hit, err := c.GetOrRun(context.Background(), cfg, prog, func(ctx context.Context) (*sim.Result, error) {
		return sim.RunContext(ctx, cfg, prog)
	})
	if err != nil || hit || res == nil {
		t.Fatalf("nil cache: res=%v hit=%v err=%v", res != nil, hit, err)
	}
}

// TestSingleflightCanceledLeadDoesNotPoisonFollower: a leader that dies of
// its OWN context's cancellation must not hand that error to a follower
// whose context is live. Flights are shared across independent requests
// (two analyses on one replica overlap in run keys), so before this
// contract a single canceled client turned a healthy peer's request into a
// non-retryable 500.
func TestSingleflightCanceledLeadDoesNotPoisonFollower(t *testing.T) {
	cfg := machine.TinyTest()
	prog := testProg(t, cfg, "app", 2, 2)
	c := New(Options{})

	leadCtx, cancelLead := context.WithCancel(context.Background())
	leadStarted := make(chan struct{})
	leadDone := make(chan error, 1)
	go func() {
		_, _, err := c.GetOrRun(leadCtx, cfg, prog, func(ctx context.Context) (*sim.Result, error) {
			close(leadStarted)
			<-ctx.Done() // simulate a run aborted by the caller vanishing
			return nil, fmt.Errorf("sim: run stopped: %w", ctx.Err())
		})
		leadDone <- err
	}()
	<-leadStarted

	// The follower joins the in-flight run, then the leader is canceled.
	followDone := make(chan error, 1)
	var followRan atomic.Bool
	go func() {
		_, _, err := c.GetOrRun(context.Background(), cfg, prog, func(ctx context.Context) (*sim.Result, error) {
			followRan.Store(true)
			return sim.RunContext(ctx, cfg, prog)
		})
		followDone <- err
	}()
	// Give the follower a moment to join the flight, then kill the leader.
	waitForInflight(t, c)
	cancelLead()

	if err := <-leadDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("leader error = %v, want its own cancellation", err)
	}
	if err := <-followDone; err != nil {
		t.Fatalf("follower inherited the leader's cancellation: %v", err)
	}
	if !followRan.Load() {
		t.Fatal("follower never re-ran the work itself")
	}

	// A follower whose OWN context is dead still reports its cancellation.
	deadCtx, cancelDead := context.WithCancel(context.Background())
	cancelDead()
	_, _, err := c.GetOrRun(deadCtx, cfg, prog, func(ctx context.Context) (*sim.Result, error) {
		return nil, fmt.Errorf("stub: %w", ctx.Err())
	})
	if err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("dead-context caller got %v", err)
	}

	// Deterministic failures still propagate to followers un-retried
	// (TestSingleflightErrorNotCached covers the sequential variant).
	boom := errors.New("boom")
	prog2 := testProg(t, cfg, "app2", 2, 2)
	if _, _, err := c.GetOrRun(context.Background(), cfg, prog2, func(ctx context.Context) (*sim.Result, error) {
		return nil, boom
	}); !errors.Is(err, boom) {
		t.Fatalf("hard failure = %v, want boom", err)
	}
}

// waitForInflight spins until the cache has an in-flight entry with a
// waiter attached — close enough for the race being staged.
func waitForInflight(t *testing.T, c *Cache) {
	t.Helper()
	// The follower's join is not externally observable, so settle for the
	// flight existing plus a scheduling yield.
	for i := 0; i < 1000; i++ {
		c.mu.Lock()
		n := len(c.inflight)
		c.mu.Unlock()
		if n > 0 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(10 * time.Millisecond)
}
