package runcache

import (
	"context"
	"fmt"
	"testing"

	"scaltool/internal/machine"
	"scaltool/internal/sim"
)

// BenchmarkRuncacheHit measures the cache against the simulation it elides:
// "miss" is the cost of one real simulated run (what every request paid
// before this cache existed), "hit" is the same request answered from the
// warm memory tier (key + lookup + clone). The measured pair is recorded in
// BENCH_serve.json; the serving acceptance bar is a ≥ 10× hit speedup.
func BenchmarkRuncacheHit(b *testing.B) {
	cfg := machine.ScaledOrigin()
	prog := benchProg(b, cfg)
	run := func(ctx context.Context) (*sim.Result, error) {
		return sim.RunContext(ctx, cfg, prog)
	}

	b.Run("miss", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := run(context.Background()); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("hit", func(b *testing.B) {
		c := New(Options{})
		if _, _, err := c.GetOrRun(context.Background(), cfg, prog, run); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, hit, err := c.GetOrRun(context.Background(), cfg, prog, run)
			if err != nil {
				b.Fatal(err)
			}
			if !hit || res == nil {
				b.Fatal("warm cache missed")
			}
		}
	})
}

// benchProg builds a mid-sized synthetic program (8 procs, 4 regions,
// strided sharing) whose simulation cost is in the range of one campaign
// run, so the hit/miss ratio is representative.
func benchProg(b *testing.B, cfg machine.Config) *sim.Program {
	b.Helper()
	const procs = 8
	prog, err := sim.NewProgram("bench", procs, 1<<22, cfg.PageBytes)
	if err != nil {
		b.Fatal(err)
	}
	arr := prog.MustAlloc("a", 1<<22)
	slice := uint64(1<<22) / procs
	for r := 0; r < 4; r++ {
		reg := prog.AddRegion(fmt.Sprintf("r%d", r))
		for p := 0; p < procs; p++ {
			st := reg.Proc(p)
			st.Compute(20_000)
			st.Read(arr.Base+uint64(p)*slice, slice/64, 64, 1)
			st.Write(arr.Base+uint64(p)*slice, slice/256, 256, 1)
		}
	}
	return prog
}
