// Package runcache is the content-addressed result cache of the serving
// path. The simulator is deterministic: the same (machine.Config, Program)
// pair always produces an identical sim.Result, regardless of scheduling,
// worker count, or GOMAXPROCS (the repo's race and property tests hold it to
// that). A run's identity is therefore *content*: a digest over the
// canonicalized machine configuration and the program's full region/stream
// structure. Two requests with the same digest may share one simulation —
// and a cached result may be served forever, because nothing but the inputs
// can change the output.
//
// The cache is an in-memory LRU with a byte budget, fronted by singleflight
// deduplication (concurrent identical requests share one simulation), with
// optional disk spill: evicted entries are written under a directory and
// reloaded on the next miss instead of re-simulating.
package runcache

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"
	"math"

	"scaltool/internal/machine"
	"scaltool/internal/sim"
)

// Key is the content address of one (machine, program) pair: a SHA-256
// digest over the canonical encoding of both.
type Key [sha256.Size]byte

// String returns the hex form of the key (the spill file's base name).
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// keyVersion is bumped whenever the canonical encoding changes, so stale
// spill directories from an older encoding never alias a new key.
const keyVersion = 1

// KeyFor computes the content address of running prog on cfg.
//
// Canonicalization writes every semantic field of both inputs, each prefixed
// by its byte width, in a fixed order — no maps, no pointers, no layout
// dependence. Config names (cfg.Name, prog.Name) ARE part of the identity:
// they never change the simulation, but excluding them would let two
// differently-labeled runs alias, which is confusing for operators at zero
// savings. TestKeyCoversConfig pins the machine.Config field census so a new
// config field cannot be forgotten here silently.
func KeyFor(cfg machine.Config, prog *sim.Program) Key {
	h := sha256.New()
	w := keyWriter{h: h}
	w.u64(keyVersion)

	// machine.Config, field by field.
	w.str(cfg.Name)
	w.u64(uint64(cfg.ClockMHz))
	w.u64(uint64(cfg.Protocol))
	w.cache(cfg.L1)
	w.cache(cfg.L2)
	w.u64(uint64(cfg.PageBytes))
	w.u64(uint64(cfg.ProcsPerRouter))
	w.u64(uint64(cfg.TLBEntries))
	w.i64(int64(cfg.Lat.L2Hit))
	w.i64(int64(cfg.Lat.MemLocal))
	w.i64(int64(cfg.Lat.Directory))
	w.i64(int64(cfg.Lat.RouterHop))
	w.i64(int64(cfg.Lat.DirtyFwd))
	w.i64(int64(cfg.Lat.SyncAcquire))
	w.i64(int64(cfg.Lat.SyncService))
	w.i64(int64(cfg.Lat.TLBMiss))
	w.f64(cfg.Cost.ComputeCPI)
	w.f64(cfg.Cost.L1HitCPI)
	w.i64(int64(cfg.Sync.BarrierInstr))
	w.i64(int64(cfg.Sync.SpinLoopInstr))
	w.f64(cfg.Sync.SpinLoopCPI)
	w.i64(int64(cfg.Sync.LockInstr))

	// Program identity and address-space anchors.
	w.str(prog.Name)
	w.u64(uint64(prog.Procs))
	w.u64(prog.DataBytes)
	w.u64(uint64(prog.Placement))
	w.u64(prog.SpaceBytes())
	w.u64(prog.BarrierAddr())
	w.u64(prog.LockAddr())

	// The full region/stream/op structure — the program's content.
	regions := prog.Regions()
	w.u64(uint64(len(regions)))
	for i := range regions {
		r := &regions[i]
		w.str(r.Name)
		w.u64(uint64(len(r.Streams)))
		for s := range r.Streams {
			ops := r.Streams[s].Ops
			w.u64(uint64(len(ops)))
			for _, op := range ops {
				w.u64(uint64(op.Kind))
				w.u64(op.Instr)
				w.u64(op.Base)
				w.u64(op.Count)
				w.i64(op.Stride)
				if op.Write {
					w.u64(1)
				} else {
					w.u64(0)
				}
				w.u64(op.InstrPer)
				w.u64(uint64(len(op.Addrs)))
				for _, a := range op.Addrs {
					w.u64(a)
				}
			}
		}
	}

	var k Key
	h.Sum(k[:0])
	return k
}

// keyWriter streams canonical primitives into the digest.
type keyWriter struct {
	h   hash.Hash
	buf [8]byte
}

func (w *keyWriter) u64(v uint64) {
	binary.LittleEndian.PutUint64(w.buf[:], v)
	w.h.Write(w.buf[:])
}

func (w *keyWriter) i64(v int64) { w.u64(uint64(v)) }

func (w *keyWriter) f64(v float64) { w.u64(math.Float64bits(v)) }

func (w *keyWriter) str(s string) {
	w.u64(uint64(len(s)))
	w.h.Write([]byte(s))
}

func (w *keyWriter) cache(c machine.CacheConfig) {
	w.u64(uint64(c.SizeBytes))
	w.u64(uint64(c.LineBytes))
	w.u64(uint64(c.Assoc))
}
