package runcache

// The fleet's shared cache tier: N replica processes pointing -cache-dir at
// one directory. These tests hold the contract documented in spill.go — no
// cross-process locks, yet concurrent writers of the same key, writers
// racing readers, and temp-file naming are all collision-free.

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"testing"

	"scaltool/internal/machine"
	"scaltool/internal/obs"
	"scaltool/internal/sim"
)

// spillHelperEnv, when set, turns the test binary into the second process
// of TestSpillTwoProcessContention: a loop hammering the shared spill
// directory it names.
const spillHelperEnv = "RUNCACHE_SPILL_HELPER_DIR"

func TestMain(m *testing.M) {
	if dir := os.Getenv(spillHelperEnv); dir != "" {
		os.Exit(spillHelperMain(dir))
	}
	os.Exit(m.Run())
}

// contentionKeys is the shared workload of both contention tests: a small
// key set both sides write and read continuously, with the expected bytes
// for each. Built deterministically so two processes agree without talking.
func contentionKeys(cfg machine.Config) (keys []Key, progs []*sim.Program, want [][]byte, err error) {
	for i := 0; i < 4; i++ {
		prog, perr := sim.NewProgram(fmt.Sprintf("shared%d", i), 2, 1<<14, cfg.PageBytes)
		if perr != nil {
			return nil, nil, nil, perr
		}
		arr := prog.MustAlloc("a", 1<<14)
		reg := prog.AddRegion("r0")
		for p := 0; p < 2; p++ {
			st := reg.Proc(p)
			st.Compute(100 + uint64(i)*10)
			st.Read(arr.Base+uint64(p)*1024, 32, 32, 1)
		}
		res, rerr := sim.Run(cfg, prog)
		if rerr != nil {
			return nil, nil, nil, rerr
		}
		var buf bytes.Buffer
		if eerr := sim.EncodeResult(&buf, res); eerr != nil {
			return nil, nil, nil, eerr
		}
		keys = append(keys, KeyFor(cfg, prog))
		progs = append(progs, prog)
		want = append(want, buf.Bytes())
	}
	return keys, progs, want, nil
}

// hammerSpill runs iters rounds of write-then-read over every shared key
// against one Cache, verifying each successful load byte-for-byte. Returns
// an error on the first wrong answer; corruption is checked by the caller
// via the metrics it passed in.
func hammerSpill(c *Cache, cfg machine.Config, iters int, mt *obs.Metrics) error {
	keys, progs, want, err := contentionKeys(cfg)
	if err != nil {
		return err
	}
	for it := 0; it < iters; it++ {
		for i, key := range keys {
			res, err := sim.Run(cfg, progs[i])
			if err != nil {
				return err
			}
			if !c.writeSpill(key, res) {
				return fmt.Errorf("writeSpill(%s) failed on iter %d", key, it)
			}
			got, ok := c.loadSpill(key, mt)
			if !ok {
				// A miss is only legal before the first write lands; we just
				// wrote it, and renames never un-publish a key.
				return fmt.Errorf("loadSpill(%s) missed after a write on iter %d", key, it)
			}
			var buf bytes.Buffer
			if err := sim.EncodeResult(&buf, got); err != nil {
				return err
			}
			if !bytes.Equal(buf.Bytes(), want[i]) {
				return fmt.Errorf("key %s loaded wrong bytes on iter %d", key, it)
			}
		}
	}
	return nil
}

// corruptionCount sums every damage class the metrics saw.
func corruptionCount(mt *obs.Metrics) uint64 {
	var total uint64
	for _, class := range []string{"header", "torn", "crc", "decode"} {
		total += mt.RuncacheCorrupt(class).Value()
	}
	return total
}

// spillHelperMain is the second process: hammer the shared directory, exit
// 0 only if every load was byte-correct and nothing looked corrupt.
func spillHelperMain(dir string) int {
	cfg := machine.TinyTest()
	c := New(Options{MaxBytes: 1 << 20, SpillDir: dir})
	mt := obs.NewMetrics()
	if err := hammerSpill(c, cfg, 40, mt); err != nil {
		fmt.Fprintln(os.Stderr, "spill helper:", err)
		return 1
	}
	if n := corruptionCount(mt); n != 0 {
		fmt.Fprintln(os.Stderr, "spill helper: saw", n, "corrupt frames")
		return 1
	}
	return 0
}

// TestSpillTwoProcessContention is the fleet's shared-cache-tier gate: two
// OS processes (this one and a re-exec of the test binary) hammer the same
// spill directory — same keys, interleaved writes and reads — and neither
// may ever observe a torn, corrupt, or wrong-bytes entry. This is exactly
// the traffic pattern of N replicas sharing one -cache-dir.
func TestSpillTwoProcessContention(t *testing.T) {
	if testing.Short() {
		t.Skip("re-execs the test binary")
	}
	dir := t.TempDir()
	helper := exec.Command(os.Args[0], "-test.run=^$")
	helper.Env = append(os.Environ(), spillHelperEnv+"="+dir)
	var helperOut bytes.Buffer
	helper.Stdout, helper.Stderr = &helperOut, &helperOut
	if err := helper.Start(); err != nil {
		t.Fatal(err)
	}

	cfg := machine.TinyTest()
	c := New(Options{MaxBytes: 1 << 20, SpillDir: dir})
	mt := obs.NewMetrics()
	if err := hammerSpill(c, cfg, 40, mt); err != nil {
		_ = helper.Process.Kill()
		_, _ = helper.Process.Wait()
		t.Fatal(err)
	}
	if err := helper.Wait(); err != nil {
		t.Fatalf("helper process failed: %v\n%s", err, helperOut.String())
	}
	if n := corruptionCount(mt); n != 0 {
		t.Fatalf("parent saw %d corrupt frames under two-process contention", n)
	}
	// The directory holds only published entries: no stranded temp files,
	// no quarantined frames.
	if tmps, _ := filepath.Glob(filepath.Join(dir, "spill-*.tmp")); len(tmps) != 0 {
		t.Fatalf("stranded temp files after contention: %v", tmps)
	}
	if _, err := os.Stat(filepath.Join(dir, quarantineDirName)); !os.IsNotExist(err) {
		t.Fatalf("quarantine directory appeared under healthy contention (err=%v)", err)
	}
	// And every published entry still decodes to the right bytes.
	keys, _, want, err := contentionKeys(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, key := range keys {
		got, ok := c.loadSpill(key, mt)
		if !ok {
			t.Fatalf("key %s missing after contention", key)
		}
		var buf bytes.Buffer
		if err := sim.EncodeResult(&buf, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), want[i]) {
			t.Fatalf("key %s holds wrong bytes after contention", key)
		}
	}
}

// TestSpillSharedDirConcurrentCaches models the same contention inside one
// process, where the race detector can see it: two Cache instances (two
// replicas) share a spill directory, each hammered by concurrent goroutines
// through the full GetOrRun path with a byte budget tiny enough to force
// continuous eviction and spill.
func TestSpillSharedDirConcurrentCaches(t *testing.T) {
	dir := t.TempDir()
	cfg := machine.TinyTest()
	_, progs, want, err := contentionKeys(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Budget ≈ one entry: every insert evicts (and spills) a predecessor.
	caches := []*Cache{
		New(Options{MaxBytes: 8 << 10, SpillDir: dir}),
		New(Options{MaxBytes: 8 << 10, SpillDir: dir}),
	}
	mt := obs.NewMetrics()
	ctx := obs.NewContext(context.Background(), &obs.Observer{Metrics: mt})

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for _, c := range caches {
		for g := 0; g < 2; g++ {
			wg.Add(1)
			go func(c *Cache) {
				defer wg.Done()
				for it := 0; it < 15; it++ {
					for i, prog := range progs {
						got, _, err := c.GetOrRun(ctx, cfg, prog, func(ctx context.Context) (*sim.Result, error) {
							return sim.RunContext(ctx, cfg, prog)
						})
						if err != nil {
							errs <- err
							return
						}
						var buf bytes.Buffer
						if err := sim.EncodeResult(&buf, got); err != nil {
							errs <- err
							return
						}
						if !bytes.Equal(buf.Bytes(), want[i]) {
							errs <- fmt.Errorf("cache returned wrong bytes for key %d", i)
							return
						}
					}
				}
			}(c)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if n := corruptionCount(mt); n != 0 {
		t.Fatalf("saw %d corrupt frames under shared-dir contention", n)
	}
	if _, err := os.Stat(filepath.Join(dir, quarantineDirName)); !os.IsNotExist(err) {
		t.Fatalf("quarantine directory appeared under healthy contention (err=%v)", err)
	}
}
