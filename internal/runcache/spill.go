package runcache

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"

	"scaltool/internal/journal"
	"scaltool/internal/obs"
	"scaltool/internal/sim"
)

// Spill integrity. A spilled entry is written through a temp file + rename,
// which protects against a torn write of the *final* name — but says nothing
// about bit rot, a filesystem that lied about durability, or an operator
// truncating files. A corrupt spill entry must never be decoded into a
// half-real Result and served as if it were a simulation: the simulator is
// deterministic, so the safe conversion for any damage is a cache miss and a
// re-simulation.
//
// Every spill file is therefore framed, reusing the journal's CRC-32C
// (Castagnoli) machinery:
//
//	[8-byte magic "SCSPILL1"][8-byte LE payload length][4-byte LE CRC-32C][payload]
//
// On load the frame is verified before the payload is decoded. Damage is
// classified (header, torn, crc, decode), counted in
// scaltool_runcache_corrupt_total, and the file is moved into a quarantine
// subdirectory for forensics rather than silently deleted.
//
// Sharing one SpillDir across PROCESSES is supported — it is the fleet's
// shared cache tier: N scaltoold replicas point -cache-dir at one
// directory, so an entry spilled by any replica is a disk hit for all of
// them. The protocol needs no cross-process locks because every operation
// is already safe under concurrency from other processes:
//
//   - Temp names never collide: os.CreateTemp opens with O_CREATE|O_EXCL
//     and a random suffix, so two replicas spilling the same key write
//     disjoint temp files.
//   - Publication is a single atomic rename. Concurrent writers of one key
//     race benignly: the simulator is deterministic, so both temp files
//     hold byte-identical frames and either rename winning leaves the same
//     content. A reader racing the rename sees the complete old file or
//     the complete new one, never a splice.
//   - Quarantine races are benign the same way: the losing rename fails
//     (the source is gone) and falls back to a no-op remove.
//
// TestSpillTwoProcessContention drives two real OS processes at one
// directory to hold all of this; TestSpillSharedDirConcurrentCaches does
// the same for two Cache instances in one process under the race detector.

// spillMagic identifies (and versions) the spill frame format.
var spillMagic = [8]byte{'S', 'C', 'S', 'P', 'I', 'L', 'L', '1'}

const spillHeaderBytes = 8 + 8 + 4

// quarantineDirName is the subdirectory of SpillDir that holds entries that
// failed their integrity check.
const quarantineDirName = "quarantine"

// encodeSpillFrame frames an encoded Result for disk.
func encodeSpillFrame(res *sim.Result) ([]byte, error) {
	var payload bytes.Buffer
	if err := sim.EncodeResult(&payload, res); err != nil {
		return nil, err
	}
	out := make([]byte, spillHeaderBytes+payload.Len())
	copy(out[:8], spillMagic[:])
	binary.LittleEndian.PutUint64(out[8:16], uint64(payload.Len()))
	binary.LittleEndian.PutUint32(out[16:20], journal.Checksum(payload.Bytes()))
	copy(out[spillHeaderBytes:], payload.Bytes())
	return out, nil
}

// decodeSpillFrame verifies a frame and decodes its payload. On failure it
// reports the damage class ("header", "torn", "crc", "decode") alongside the
// error.
func decodeSpillFrame(data []byte) (*sim.Result, string, error) {
	if len(data) < spillHeaderBytes || !bytes.Equal(data[:8], spillMagic[:]) {
		return nil, "header", fmt.Errorf("runcache: spill frame header invalid (%d bytes)", len(data))
	}
	plen := binary.LittleEndian.Uint64(data[8:16])
	body := data[spillHeaderBytes:]
	if uint64(len(body)) != plen {
		return nil, "torn", fmt.Errorf("runcache: spill frame declares %d payload bytes, has %d", plen, len(body))
	}
	if got, want := journal.Checksum(body), binary.LittleEndian.Uint32(data[16:20]); got != want {
		return nil, "crc", fmt.Errorf("runcache: spill frame CRC %08x, want %08x", got, want)
	}
	res, err := sim.DecodeResult(bytes.NewReader(body))
	if err != nil {
		return nil, "decode", err
	}
	return res, "", nil
}

// quarantineSpill moves a damaged spill file aside (falling back to deletion
// if the move fails) so it is never re-read as a cache entry but remains
// available for forensics.
func (c *Cache) quarantineSpill(path string) {
	qdir := filepath.Join(c.spillDir, quarantineDirName)
	if err := os.MkdirAll(qdir, 0o755); err == nil {
		if os.Rename(path, filepath.Join(qdir, filepath.Base(path))) == nil {
			return
		}
	}
	_ = os.Remove(path)
}

// writeSpill persists an evicted entry; failures only lose the spill copy.
// The write goes through a temp file + rename so a torn write never leaves a
// half-entry under the final name, and the frame's CRC catches everything
// rename cannot. The injector hook (Options.Inject) mangles the framed bytes
// before they reach disk — the chaos tests' torn-write and bit-rot point.
func (c *Cache) writeSpill(key Key, res *sim.Result) bool {
	path := c.spillPath(key)
	if path == "" {
		return false
	}
	framed, err := encodeSpillFrame(res)
	if err != nil {
		return false
	}
	if c.inject != nil {
		framed, _ = c.inject.MangleFile(filepath.Base(path), framed)
	}
	if err := os.MkdirAll(c.spillDir, 0o755); err != nil {
		return false
	}
	tmp, err := os.CreateTemp(c.spillDir, "spill-*.tmp")
	if err != nil {
		return false
	}
	if _, err := tmp.Write(framed); err != nil {
		_ = tmp.Close()
		_ = os.Remove(tmp.Name())
		return false
	}
	if err := tmp.Close(); err != nil {
		_ = os.Remove(tmp.Name())
		return false
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		_ = os.Remove(tmp.Name())
		return false
	}
	return true
}

// loadSpill reads a spilled entry back, or nil. An entry that fails its
// integrity check — torn frame, checksum mismatch, undecodable payload — is
// quarantined, counted, and treated as a miss: the run is deterministic, so
// it is simply regenerated.
func (c *Cache) loadSpill(key Key, mt *obs.Metrics) (*sim.Result, bool) {
	path := c.spillPath(key)
	if path == "" {
		return nil, false
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, false
	}
	res, damage, err := decodeSpillFrame(data)
	if err != nil {
		c.quarantineSpill(path)
		if mt != nil {
			mt.RuncacheCorrupt(damage).Inc()
		}
		return nil, false
	}
	return res, true
}
