package runcache

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"strconv"
	"sync"

	"scaltool/internal/faultinject"
	"scaltool/internal/machine"
	"scaltool/internal/obs"
	"scaltool/internal/sim"
)

// RunFunc produces the result for a cache miss — normally sim.RunContext or
// the campaign's fault-tolerant attempt wrapper.
type RunFunc func(ctx context.Context) (*sim.Result, error)

// Options configures a Cache.
type Options struct {
	// MaxBytes is the in-memory byte budget (Result.SizeEstimate units).
	// <= 0 selects DefaultMaxBytes. A single entry larger than the budget
	// is returned to the caller but not retained.
	MaxBytes int64
	// SpillDir, when non-empty, enables disk spill: entries evicted from
	// memory are written there (one file per key) and reloaded on the next
	// miss instead of re-simulating. The directory is created on first use;
	// campaigns typically point it under the journal directory. Every spill
	// file carries a CRC-32C frame (see spill.go); entries that fail the
	// check on load are quarantined under SpillDir/quarantine and treated as
	// misses.
	SpillDir string
	// Inject, when non-nil, mangles spill frames on their way to disk
	// (truncation, byte corruption) — the deterministic torn-write chaos
	// hook. Production caches leave it nil.
	Inject *faultinject.Injector
}

// DefaultMaxBytes is the in-memory budget when Options.MaxBytes is unset.
const DefaultMaxBytes = 256 << 20

// Cache is a content-addressed result cache: LRU over Key with a byte
// budget, singleflight deduplication of concurrent identical requests, and
// optional disk spill. Safe for concurrent use.
type Cache struct {
	maxBytes int64
	spillDir string
	inject   *faultinject.Injector

	mu       sync.Mutex
	ll       *list.List // front = most recent
	items    map[Key]*list.Element
	bytes    int64
	inflight map[Key]*flight
}

// entry is one cached result with its accounting size.
type entry struct {
	key  Key
	res  *sim.Result
	size int64
}

// flight is one in-progress simulation that identical requests share.
type flight struct {
	done chan struct{}
	res  *sim.Result
	err  error
}

// New builds a cache.
func New(opts Options) *Cache {
	if opts.MaxBytes <= 0 {
		opts.MaxBytes = DefaultMaxBytes
	}
	return &Cache{
		maxBytes: opts.MaxBytes,
		spillDir: opts.SpillDir,
		inject:   opts.Inject,
		ll:       list.New(),
		items:    map[Key]*list.Element{},
		inflight: map[Key]*flight{},
	}
}

// Stats is a point-in-time snapshot of the cache's occupancy.
type Stats struct {
	Entries int
	Bytes   int64
}

// Stats returns the current occupancy.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{Entries: c.ll.Len(), Bytes: c.bytes}
}

// GetOrRun returns the result for (cfg, prog), executing run at most once
// per content key no matter how many callers ask concurrently. The returned
// Result is a mutation-safe clone (Result.Clone): callers may rewrite its
// counter report freely without corrupting the cached copy. hit reports
// whether a simulation was avoided — by the memory tier, the disk tier, or
// by joining another caller's in-flight run.
//
// Errors are never cached: a failed or canceled run is re-attempted by the
// next request for the same key. A nil *Cache runs every request directly.
func (c *Cache) GetOrRun(ctx context.Context, cfg machine.Config, prog *sim.Program, run RunFunc) (res *sim.Result, hit bool, err error) {
	if c == nil {
		out, err := run(ctx)
		return out, false, err
	}
	key := KeyFor(cfg, prog)
	mt := obs.Meter(ctx)

	// One flight allocation serves every lap of the loop below: a lap that
	// hits the memory tier or joins another flight returns without touching
	// it, and a lap that becomes leader consumes it exactly once.
	fresh := &flight{done: make(chan struct{})}
	for {
		c.mu.Lock()
		// Memory tier.
		if el, ok := c.items[key]; ok {
			c.ll.MoveToFront(el)
			out := el.Value.(*entry).res
			c.mu.Unlock()
			if mt != nil {
				mt.Counter("scaltool_runcache_hits_total", "run-cache hits by tier", "tier", "mem").Inc()
			}
			return out.Clone(), true, nil
		}
		// Join an in-flight identical request.
		if fl, ok := c.inflight[key]; ok {
			c.mu.Unlock()
			select {
			case <-fl.done:
			case <-ctx.Done():
				return nil, false, ctx.Err()
			}
			if fl.err != nil {
				// The leader failed; its error is not cached. A
				// deterministic failure is reported rather than retried
				// (repeating it would spin) — but a leader that died of
				// ITS OWN context must not poison a follower whose
				// context is still live. Flights are shared across
				// independent requests (concurrent analyses on one
				// replica overlap in run keys), so "the leader was
				// canceled" says nothing about this caller: take another
				// lap and become — or join — a fresh flight.
				if errors.Is(fl.err, context.Canceled) || errors.Is(fl.err, context.DeadlineExceeded) {
					if ctx.Err() != nil {
						return nil, false, ctx.Err()
					}
					if mt != nil {
						mt.Counter("scaltool_runcache_lead_retries_total", "flights retaken after a leader died of its own cancellation").Inc()
					}
					continue
				}
				return nil, false, fl.err
			}
			if mt != nil {
				mt.Counter("scaltool_runcache_shared_total", "requests served by joining another request's in-flight simulation").Inc()
			}
			return fl.res.Clone(), true, nil
		}
		// Become the leader for this key.
		fl := fresh
		c.inflight[key] = fl
		c.mu.Unlock()

		return c.lead(ctx, key, fl, run, mt)
	}
}

// lead executes the miss path as the key's singleflight leader: disk tier,
// then a real simulation, then publication to waiters and the LRU.
func (c *Cache) lead(ctx context.Context, key Key, fl *flight, run RunFunc, mt *obs.Metrics) (*sim.Result, bool, error) {
	// A panicking leader must still publish to its waiters: without this,
	// every request joined on the flight would block forever on fl.done and
	// the key would stay "in flight" until process restart. The panic itself
	// propagates to the caller (the campaign's worker recovery isolates it).
	published := false
	defer func() {
		if r := recover(); r != nil {
			if !published {
				c.mu.Lock()
				delete(c.inflight, key)
				c.mu.Unlock()
				fl.err = fmt.Errorf("runcache: singleflight leader panicked: %v", r)
				close(fl.done)
			}
			panic(r)
		}
	}()

	out, diskHit := c.loadSpill(key, mt)
	var err error
	if out == nil {
		out, err = run(ctx)
	}

	fl.res, fl.err = out, err
	c.mu.Lock()
	delete(c.inflight, key)
	var evicted []*entry
	if err == nil && out != nil {
		evicted = c.insert(key, out)
	}
	c.mu.Unlock()
	close(fl.done)
	published = true

	// Spill evictions outside the lock: disk I/O must not stall readers.
	for _, ev := range evicted {
		spilled := c.writeSpill(ev.key, ev.res)
		if mt != nil {
			mt.Counter("scaltool_runcache_evictions_total", "run-cache LRU evictions",
				"spilled", strconv.FormatBool(spilled)).Inc()
		}
	}

	if err != nil {
		return nil, false, err
	}
	if mt != nil {
		if diskHit {
			mt.Counter("scaltool_runcache_hits_total", "run-cache hits by tier", "tier", "disk").Inc()
		} else {
			mt.Counter("scaltool_runcache_misses_total", "run-cache misses (a real simulation ran)").Inc()
		}
		st := c.Stats()
		mt.Gauge("scaltool_runcache_bytes", "run-cache resident bytes (estimate)").Set(float64(st.Bytes))
		mt.Gauge("scaltool_runcache_entries", "run-cache resident entries").Set(float64(st.Entries))
	}
	return out.Clone(), diskHit, nil
}

// insert adds a result under c.mu, evicting past the byte budget; the
// caller spills the returned evictions after releasing the lock.
func (c *Cache) insert(key Key, res *sim.Result) (evicted []*entry) {
	if _, dup := c.items[key]; dup {
		return nil
	}
	size := res.SizeEstimate()
	if size > c.maxBytes {
		return nil // would evict everything and still not fit
	}
	c.items[key] = c.ll.PushFront(&entry{key: key, res: res, size: size})
	c.bytes += size
	for c.bytes > c.maxBytes {
		el := c.ll.Back()
		if el == nil {
			break
		}
		ev := el.Value.(*entry)
		c.ll.Remove(el)
		delete(c.items, ev.key)
		c.bytes -= ev.size
		evicted = append(evicted, ev)
	}
	return evicted
}

// spillPath returns the on-disk location of a key, or "" without spill.
func (c *Cache) spillPath(key Key) string {
	if c.spillDir == "" {
		return ""
	}
	return filepath.Join(c.spillDir, key.String()+".json")
}
