package fleet

import (
	"math"
	"testing"
)

// uslPoints generates exact law-following measurements.
func uslPoints(x1, alpha, beta float64, ns []int) []Point {
	pts := make([]Point, 0, len(ns))
	for _, n := range ns {
		f := Fit{Alpha: alpha, Beta: beta, X1: x1}
		pts = append(pts, Point{N: n, Throughput: f.Predict(n)})
	}
	return pts
}

// TestFitUSLRecoversParameters: points generated from a known law must fit
// back to the same α and β.
func TestFitUSLRecoversParameters(t *testing.T) {
	const x1, alpha, beta = 120.0, 0.05, 0.001
	fit, err := FitUSL(uslPoints(x1, alpha, beta, []int{1, 2, 4, 8, 16, 32}))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Alpha-alpha) > 1e-9 || math.Abs(fit.Beta-beta) > 1e-9 {
		t.Fatalf("fit (α=%g, β=%g), want (α=%g, β=%g)", fit.Alpha, fit.Beta, alpha, beta)
	}
	if fit.X1 != x1 {
		t.Fatalf("X1 = %g, want %g", fit.X1, x1)
	}
	if fit.R2 < 0.999999 {
		t.Fatalf("R² = %g on exact data", fit.R2)
	}
	// Peak at √((1−α)/β) = √950 ≈ 30.8 → 30.
	if fit.PeakN != 30 {
		t.Fatalf("PeakN = %d, want 30", fit.PeakN)
	}
}

// TestFitUSLIdealLinear: perfectly linear scaling must fit α=β=0 with no
// interior peak.
func TestFitUSLIdealLinear(t *testing.T) {
	fit, err := FitUSL(uslPoints(50, 0, 0, []int{1, 2, 4}))
	if err != nil {
		t.Fatal(err)
	}
	if fit.Alpha != 0 || fit.Beta != 0 || fit.PeakN != 0 {
		t.Fatalf("linear data fit α=%g β=%g peak=%d", fit.Alpha, fit.Beta, fit.PeakN)
	}
	if got := fit.Predict(8); math.Abs(got-400) > 1e-9 {
		t.Fatalf("Predict(8) = %g, want 400", got)
	}
}

// TestFitUSLSuperlinearClamped: superlinear measurements (noise, cache
// effects) must not produce negative coefficients.
func TestFitUSLSuperlinearClamped(t *testing.T) {
	fit, err := FitUSL([]Point{{N: 1, Throughput: 100}, {N: 2, Throughput: 230}, {N: 4, Throughput: 470}})
	if err != nil {
		t.Fatal(err)
	}
	if fit.Alpha < 0 || fit.Beta < 0 {
		t.Fatalf("negative coefficients: α=%g β=%g", fit.Alpha, fit.Beta)
	}
}

// TestFitUSLTwoPoints: the minimum viable input (N=1 plus one more) fits
// without a singular-matrix failure.
func TestFitUSLTwoPoints(t *testing.T) {
	fit, err := FitUSL([]Point{{N: 1, Throughput: 100}, {N: 2, Throughput: 150}})
	if err != nil {
		t.Fatal(err)
	}
	// The fit must pass through the measured N=2 capacity.
	if got := fit.Capacity(2); math.Abs(got-1.5) > 1e-6 {
		t.Fatalf("Capacity(2) = %g, want 1.5", got)
	}
}

// TestFitUSLErrors pins the input contract.
func TestFitUSLErrors(t *testing.T) {
	cases := [][]Point{
		nil,
		{{N: 2, Throughput: 100}}, // no N=1
		{{N: 1, Throughput: 100}}, // no N>1
		{{N: 1, Throughput: 0}, {N: 2, Throughput: 100}},  // X1 = 0
		{{N: 1, Throughput: 100}, {N: 0, Throughput: 10}}, // invalid N
		{{N: 1, Throughput: 100}, {N: 2, Throughput: -1}}, // negative rate
	}
	for i, pts := range cases {
		if _, err := FitUSL(pts); err == nil {
			t.Fatalf("case %d: no error for %v", i, pts)
		}
	}
}
