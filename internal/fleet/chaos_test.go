package fleet

// The headline fault-tolerance gate: a supervised fleet under sustained
// client load while a killer SIGKILLs replicas at random. The fleet as a
// whole must behave like one reliable, deterministic server — every client
// request eventually succeeds through ordinary retries (zero non-retryable
// failures), and every response body is byte-identical to a single
// stable replica's answer for the same document. Kills are abrupt
// (http.Server.Close severs in-flight connections, the in-process analog
// of SIGKILL), restarts go through the real supervisor → SetReplicaURL
// path, and the replicas share one spill directory exactly as a production
// fleet shares -run-cache-dir.

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"scaltool/internal/client"
	"scaltool/internal/runcache"
	"scaltool/internal/serve"
)

// chaosDocs are the workload documents: small campaigns (procs=4) so an
// individual analysis is fast enough to run hundreds of times under -race,
// while still exercising the full campaign → sim → fit pipeline.
func chaosDocs() [][]byte {
	return [][]byte{
		[]byte(`{"app":"swim","procs":4}`),
		[]byte(`{"app":"hydro2d","procs":4}`),
		[]byte(`{"app":"swim","procs":4,"raw_tm":true}`),
	}
}

// fetchOnce posts a document and returns status and body.
func fetchOnce(hc *http.Client, url string, doc []byte) (int, []byte, error) {
	resp, err := hc.Post(url+"/v1/analyze", "application/json", bytes.NewReader(doc))
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, body, nil
}

// fetchRetry applies the client package's retry policy at the raw-bytes
// level (the typed client decodes responses, and this test must compare
// exact bytes): transport errors, 429 and 503 retry; everything else is a
// non-retryable client-visible failure — the thing this gate forbids.
func fetchRetry(ctx context.Context, hc *http.Client, url string, doc []byte) ([]byte, error) {
	var last error
	for attempt := 0; ctx.Err() == nil; attempt++ {
		status, body, err := fetchOnce(hc, url, doc)
		switch {
		case err != nil:
			last = err
		case status == http.StatusOK:
			return body, nil
		case status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable:
			last = fmt.Errorf("status %d: %s", status, body)
		default:
			return nil, fmt.Errorf("non-retryable status %d: %s", status, body)
		}
		select {
		case <-ctx.Done():
		case <-time.After(time.Duration(5+attempt) * time.Millisecond):
		}
	}
	return nil, fmt.Errorf("gave up: %w (last: %v)", ctx.Err(), last)
}

// TestFleetChaosKillRestartByteIdentical is the acceptance gate described
// above. Bounded for a 1-core -race runner: 3 replica slots, 4 client
// goroutines, ~60 requests total, kills every ~150ms for the duration.
func TestFleetChaosKillRestartByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos run takes seconds")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	// Baseline truth: one stable replica (its own cache) answers each
	// document once; every fleet answer must match these bytes.
	docs := chaosDocs()
	stable, err := StartLocal(serve.Options{Workers: 2}, "")
	if err != nil {
		t.Fatal(err)
	}
	defer stable.Kill()
	baseline := make([][]byte, len(docs))
	hc := &http.Client{}
	for i, doc := range docs {
		status, body, err := fetchOnce(hc, stable.URL(), doc)
		if err != nil || status != http.StatusOK {
			t.Fatalf("baseline doc %d: status %d err %v: %s", i, status, err, body)
		}
		baseline[i] = body
	}

	// The fleet: three supervised slots sharing one spill directory, each
	// restart getting a cold memory tier over the shared disk tier.
	spillDir := t.TempDir()
	var handleMu sync.Mutex
	live := map[int]Handle{}
	rt := NewRouter(Options{
		Replicas: []Replica{
			{Name: SlotName(0)}, {Name: SlotName(1)}, {Name: SlotName(2)},
		},
		ProbeInterval:    100 * time.Millisecond,
		FailureThreshold: 2,
		Cooldown:         150 * time.Millisecond,
		ForwardTimeout:   120 * time.Second,
	})
	sv := &Supervisor{
		Spawn: func(slot int) (Handle, error) {
			// A generous request deadline: on a 1-core -race runner the kill
			// storm makes individual analyses arbitrarily slow, and a 504 is
			// a FINAL status — deadline pressure must not read as a
			// fault-tolerance failure.
			h, err := StartLocal(serve.Options{
				Workers:        2,
				RequestTimeout: 90 * time.Second,
				Cache:          runcache.New(runcache.Options{MaxBytes: 1 << 20, SpillDir: spillDir}),
			}, "")
			if err != nil {
				return nil, err
			}
			handleMu.Lock()
			live[slot] = h
			handleMu.Unlock()
			return h, nil
		},
		Notify: func(slot int, url string) { rt.SetReplicaURL(SlotName(slot), url) },
		// Generous liveness tolerances: a saturated 1-core -race runner can
		// starve a busy replica's healthz handler for hundreds of ms, and a
		// heartbeat watchdog tuned tighter than the scheduler jitter would
		// add its own self-inflicted kills to the storm.
		HeartbeatInterval: 500 * time.Millisecond,
		HeartbeatMisses:   6,
		RestartBackoff:    50 * time.Millisecond,
	}
	svCtx, svCancel := context.WithCancel(ctx)
	svDone := make(chan error, 1)
	go func() { svDone <- sv.Run(svCtx, 3) }()
	rt.StartProber(svCtx)
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	// Wait for all three slots to come up, then warm the shared spill
	// tier through the router before opening fire: on a 1-core -race
	// runner a cold analysis takes long enough that a kill storm during
	// the very first simulations starves every client at once. The storm
	// still exercises the cold paths — each kill wipes that replica's
	// memory tier, so post-restart requests go through the disk tier and
	// failover machinery.
	waitFor(t, func() bool {
		handleMu.Lock()
		defer handleMu.Unlock()
		return len(live) == 3
	})
	for i, doc := range docs {
		body, err := fetchRetry(ctx, hc, front.URL, doc)
		if err != nil {
			t.Fatalf("warmup doc %d: %v", i, err)
		}
		if !bytes.Equal(body, baseline[i]) {
			t.Fatalf("warmup doc %d differs from single-replica baseline", i)
		}
	}

	// The killer: SIGKILL a random replica every ~250ms, maxKills times,
	// then signal the storm over. Bounding the storm keeps the test
	// deterministic on a saturated 1-core -race runner: after the last
	// kill the fleet settles (restarts land, the shared spill dir is warm)
	// and the remaining load completes — the zero-failure assertion covers
	// the storm AND the recovery. The clients keep firing until the storm
	// ends, so every kill lands under live load.
	const maxKills = 8
	stormDone := make(chan struct{})
	rng := rand.New(rand.NewSource(42))
	go func() {
		defer close(stormDone)
		for kills := 0; kills < maxKills; {
			select {
			case <-ctx.Done():
				return
			case <-time.After(250 * time.Millisecond):
			}
			slot := rng.Intn(3)
			handleMu.Lock()
			h := live[slot]
			handleMu.Unlock()
			if h != nil {
				h.Kill()
				kills++
			}
		}
	}()
	stormOver := func() bool {
		select {
		case <-stormDone:
			return true
		default:
			return false
		}
	}

	// The load: four client goroutines, each walking the documents in a
	// different order. Raw-byte fetchers assert byte-identity; a typed
	// internal/client caller rides along asserting the package's own
	// retry/breaker stack also sees zero non-retryable failures.
	const perClient = 8
	var wg sync.WaitGroup
	var served atomic.Int64
	errCh := make(chan error, 8)
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			hc := &http.Client{}
			for i := 0; i < perClient || !stormOver(); i++ {
				d := (g + i) % len(docs)
				body, err := fetchRetry(ctx, hc, front.URL, docs[d])
				if err != nil {
					errCh <- fmt.Errorf("client %d req %d: %w", g, i, err)
					return
				}
				if !bytes.Equal(body, baseline[d]) {
					errCh <- fmt.Errorf("client %d req %d: body differs from single-replica baseline", g, i)
					return
				}
				served.Add(1)
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		tc := client.New(front.URL, client.Options{
			MaxAttempts:      60,
			BaseDelay:        5 * time.Millisecond,
			MaxDelay:         100 * time.Millisecond,
			FailureThreshold: 1000, // the router already breakers per replica
		})
		for i := 0; i < perClient || !stormOver(); i++ {
			req := serve.Request{App: "swim", Procs: 4}
			if _, err := tc.Analyze(ctx, &req); err != nil {
				errCh <- fmt.Errorf("typed client req %d: %w", i, err)
				return
			}
			served.Add(1)
		}
	}()
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	select {
	case <-stormDone:
	default:
		t.Fatal("clients finished before the storm completed — the loop above is wrong")
	}
	t.Logf("chaos run: %d kills survived, %d requests byte-identical", maxKills, served.Load())

	// Orderly teardown: supervisor stops its instances, router drains.
	svCancel()
	if err := <-svDone; err != nil {
		t.Fatal(err)
	}
	dctx, dcancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer dcancel()
	if err := rt.Drain(dctx); err != nil {
		t.Fatal(err)
	}
}
