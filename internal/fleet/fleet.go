// Package fleet turns N scaltoold replicas into one fault-tolerant analysis
// service — the scale-out tier of the ROADMAP's "millions of users" north
// star, and the system the repo then measures with its own scalability law
// (usl.go).
//
// The pieces, bottom up:
//
//   - Router: an HTTP front tier for /v1/analyze and /v1/diagnose. Requests
//     are placed by rendezvous hashing on the content-addressed runcache
//     key (serve.RoutingKey), so an identical document always lands on the
//     replica whose memory tier is warm for it. Each replica carries a
//     health verdict (prober.go) and a circuit breaker (the client
//     package's Breaker, one per replica); a refused, unreachable, or
//     breaker-open replica fails over to the next in hash order, and an
//     optional hedge races a second replica when the first is slow. The
//     simulator is deterministic, so every forwarded request is idempotent
//     and byte-identical across replicas — failover and hedging can never
//     change an answer, only deliver it.
//
//   - Supervisor: keeps N replica slots alive. Each slot watches its
//     instance's exit and probes its health on a heartbeat (the same
//     watchdog shape as campaign's worker supervisor); a dead or hung
//     replica is killed and respawned with backoff, and the router learns
//     the replacement's URL through SetReplicaURL.
//
//   - Handles: LocalReplica runs a real serve.Server in-process (the load
//     harness's and chaos tests' replica; Kill severs in-flight
//     connections exactly like a SIGKILL), ExecReplica supervises a real
//     scaltoold child process, and StartStub emulates a replica's service
//     demand without burning CPU (how the routing tier is measured on a
//     host that cannot give every replica its own cores).
//
// The router mirrors internal/serve's shutdown contract: Drain flips
// /v1/healthz to 503, refuses new work with a retryable 429, and waits for
// in-flight forwards to finish.
package fleet

import (
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"scaltool/internal/client"
	"scaltool/internal/obs"
)

// Replica names one backend of the fleet. Name is the stable rendezvous
// identity — it must survive restarts (the replacement instance inherits
// the dead one's cache-key ownership); URL is where the current instance
// listens, and changes on every restart.
type Replica struct {
	Name string
	URL  string
}

// Options configures a Router. The zero value of every field selects a
// sensible default.
type Options struct {
	// Replicas is the initial fleet membership. More can join later via
	// SetReplicaURL (the supervisor's restart path).
	Replicas []Replica
	// HTTP is the transport used for forwards and probes (nil = a client
	// with sane connection pooling).
	HTTP *http.Client
	// ProbeInterval is the health-probe period (0 = 500ms).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one health probe (0 = ProbeInterval, capped at 2s).
	ProbeTimeout time.Duration
	// FailureThreshold is how many consecutive hard failures open a
	// replica's circuit breaker (0 = 3).
	FailureThreshold int
	// Cooldown is the open breaker's wait before its half-open probe
	// (0 = 5s — shorter than the client default: the router sits in front
	// of a supervisor that restarts replicas in well under 15s).
	Cooldown time.Duration
	// ForwardTimeout bounds one forwarded attempt (0 = 90s: a shade over
	// the replica's own 60s request deadline, so the replica's 504 wins).
	ForwardTimeout time.Duration
	// HedgeAfter, when positive, races a second replica if the first has
	// not answered within this long — tail-latency insurance that is safe
	// because analyses are deterministic and idempotent.
	HedgeAfter time.Duration
	// Obs instruments the router (scaltool_fleet_* metrics). May be nil.
	Obs *obs.Observer
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.HTTP == nil {
		// The default transport keeps only 2 idle conns per host — under a
		// load burst every extra concurrent forward would pay a fresh TCP
		// handshake to the same replica. Pool generously; replicas are few.
		out.HTTP = &http.Client{Transport: &http.Transport{
			MaxIdleConns:        256,
			MaxIdleConnsPerHost: 64,
			IdleConnTimeout:     90 * time.Second,
		}}
	}
	if out.ProbeInterval <= 0 {
		out.ProbeInterval = 500 * time.Millisecond
	}
	if out.ProbeTimeout <= 0 {
		out.ProbeTimeout = out.ProbeInterval
		if out.ProbeTimeout > 2*time.Second {
			out.ProbeTimeout = 2 * time.Second
		}
	}
	if out.FailureThreshold <= 0 {
		out.FailureThreshold = 3
	}
	if out.Cooldown <= 0 {
		out.Cooldown = 5 * time.Second
	}
	if out.ForwardTimeout <= 0 {
		out.ForwardTimeout = 90 * time.Second
	}
	return out
}

// member is one replica's live state inside the router.
type member struct {
	name    string
	url     atomic.Value // string; "" while the slot has no instance
	up      atomic.Bool  // last health-probe verdict
	breaker *client.Breaker
}

func (m *member) currentURL() string {
	if u, ok := m.url.Load().(string); ok {
		return u
	}
	return ""
}

// Router is the fleet's front tier. Create with NewRouter; safe for
// concurrent use.
type Router struct {
	opts Options

	mu      sync.RWMutex
	members []*member

	draining atomic.Bool
	inflight sync.WaitGroup
	mux      *http.ServeMux
}

// NewRouter builds a Router over the given replicas. Call StartProber to
// begin health probing; without it every replica is assumed healthy and
// failover still works through the breakers.
func NewRouter(opts Options) *Router {
	rt := &Router{opts: opts.withDefaults()}
	for _, r := range rt.opts.Replicas {
		rt.addMember(r.Name, r.URL)
	}
	rt.mux = http.NewServeMux()
	rt.mux.HandleFunc("/v1/analyze", rt.handleProxy)
	rt.mux.HandleFunc("/v1/diagnose", rt.handleProxy)
	rt.mux.HandleFunc("/v1/healthz", rt.handleHealthz)
	rt.mux.HandleFunc("/metrics", rt.handleMetrics)
	return rt
}

// Handler returns the router's HTTP handler.
func (rt *Router) Handler() http.Handler { return rt.mux }

func (rt *Router) addMember(name, url string) *member {
	m := &member{name: name, breaker: client.NewBreaker(rt.opts.FailureThreshold, rt.opts.Cooldown)}
	m.url.Store(url)
	m.up.Store(true)
	rt.mu.Lock()
	rt.members = append(rt.members, m)
	rt.mu.Unlock()
	return m
}

// SetReplicaURL rebinds a replica name to a new instance URL — the
// supervisor calls this after every restart. An empty URL marks the slot
// instanceless (requests skip it until the replacement arrives). A fresh
// URL resets the breaker and health verdict: the new instance has not
// earned the old one's failures.
func (rt *Router) SetReplicaURL(name, url string) {
	rt.mu.RLock()
	var m *member
	for _, cand := range rt.members {
		if cand.name == name {
			m = cand
			break
		}
	}
	rt.mu.RUnlock()
	if m == nil {
		if url == "" {
			return
		}
		rt.addMember(name, url)
		return
	}
	m.url.Store(url)
	if url == "" {
		m.up.Store(false)
		return
	}
	m.up.Store(true)
	m.breaker.OnSuccess()
	if mt := rt.meter(); mt != nil {
		mt.Gauge("scaltool_fleet_replica_up", "1 while the replica answers health probes", "replica", name).Set(1)
	}
}

// snapshot returns the current membership.
func (rt *Router) snapshot() []*member {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	out := make([]*member, len(rt.members))
	copy(out, rt.members)
	return out
}

func (rt *Router) meter() *obs.Metrics {
	if rt.opts.Obs == nil {
		return nil
	}
	return rt.opts.Obs.Metrics
}
