package fleet

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
)

// Rendezvous (highest-random-weight) hashing decides which replica owns a
// routing key. Each (replica name, key) pair gets a pseudo-random score;
// the replicas ranked by score form the key's preference order — attempt 1
// goes to the top, failover walks down the list. The properties the fleet
// needs all fall out:
//
//   - Affinity: the same key always prefers the same replica, so its warm
//     runcache entry (memory tier, not just the shared spill dir) is hit.
//   - Minimal disruption: when a replica dies, only ITS keys move — every
//     other key's top choice is unchanged, unlike modulo hashing where one
//     departure reshuffles nearly everything.
//   - Deterministic failover: a key's second choice is as stable as its
//     first, so retries during an outage pile onto one designated backup
//     (which then warms up) rather than spraying the fleet.
//
// Scores come from the first 8 bytes of sha256(name, key) — overkill
// strength-wise, but the simulator already paid for SHA-256 everywhere
// else (runcache keys, quarantine identities) and a routing decision is
// ~100ns against a multi-millisecond analysis.

// rendezvousScore ranks one replica for one key.
func rendezvousScore(name, key string) uint64 {
	h := sha256.New()
	h.Write([]byte(name))
	h.Write([]byte{0})
	h.Write([]byte(key))
	var sum [sha256.Size]byte
	h.Sum(sum[:0])
	return binary.BigEndian.Uint64(sum[:8])
}

// rank orders members for a key: healthy replicas by descending rendezvous
// score, then unhealthy ones in the same score order. Down replicas stay in
// the list — when the whole fleet looks down (a probe blackout, or the
// supervisor mid-restart-storm) the router still tries them rather than
// refusing outright; the breakers bound the cost of guessing wrong.
func rank(members []*member, key string) []*member {
	type scored struct {
		m     *member
		score uint64
	}
	up := make([]scored, 0, len(members))
	down := make([]scored, 0, len(members))
	for _, m := range members {
		s := scored{m: m, score: rendezvousScore(m.name, key)}
		if m.up.Load() {
			up = append(up, s)
		} else {
			down = append(down, s)
		}
	}
	byScore := func(s []scored) {
		sort.Slice(s, func(i, j int) bool {
			if s[i].score != s[j].score {
				return s[i].score > s[j].score
			}
			return s[i].m.name < s[j].m.name
		})
	}
	byScore(up)
	byScore(down)
	out := make([]*member, 0, len(members))
	for _, s := range up {
		out = append(out, s.m)
	}
	for _, s := range down {
		out = append(out, s.m)
	}
	return out
}
