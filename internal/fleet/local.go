package fleet

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"net"
	"net/http"
	"time"

	"scaltool/internal/serve"
)

// Replica handles for tests and the load harness. A LocalReplica is a real
// serve.Server on a real TCP listener — the full scaltoold data path minus
// the process boundary — with the two process-level fates a supervisor
// must handle exposed as methods: Kill is the SIGKILL analog (the listener
// and every in-flight connection are severed mid-byte), Shutdown is the
// SIGTERM analog (drain, then graceful close). The chaos tests run the
// whole fleet stack against these, which keeps the kill/restart loop fast
// enough to run hundreds of cycles under the race detector.

// LocalReplica is an in-process scaltoold-equivalent instance.
type LocalReplica struct {
	url  string
	srv  *http.Server
	app  *serve.Server
	done chan struct{}
}

// StartLocal starts a replica on addr ("" = an ephemeral localhost port).
func StartLocal(opts serve.Options, addr string) (*LocalReplica, error) {
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	app := serve.New(opts)
	r := &LocalReplica{
		url:  "http://" + ln.Addr().String(),
		srv:  &http.Server{Handler: app.Handler()},
		app:  app,
		done: make(chan struct{}),
	}
	go func() {
		defer close(r.done)
		_ = r.srv.Serve(ln)
	}()
	return r, nil
}

// URL returns the instance's base URL.
func (r *LocalReplica) URL() string { return r.url }

// Done is closed once the instance has stopped serving.
func (r *LocalReplica) Done() <-chan struct{} { return r.done }

// Kill is the SIGKILL analog: the listener and all live connections are
// closed immediately; in-flight requests see a reset.
func (r *LocalReplica) Kill() { _ = r.srv.Close() }

// Shutdown is the SIGTERM analog: drain the service (healthz 503, new work
// refused retryably, in-flight analyses finish), then close the listener
// gracefully — the ordering scaltoold itself performs on SIGTERM.
func (r *LocalReplica) Shutdown(ctx context.Context) error {
	derr := r.app.Drain(ctx)
	serr := r.srv.Shutdown(ctx)
	if derr != nil {
		return derr
	}
	return serr
}

// StubReplica is a replica-shaped stand-in whose only cost is a calibrated
// sleep: it emulates a replica's SERVICE DEMAND without its CPU demand.
// This is how the routing tier is load-tested honestly on a host whose
// core count cannot carry N real simulators — a sleeping stub consumes no
// CPU, so N stubs scale the way N machines would, and the measured curve
// isolates the router's own serialization (its α and β, not the host's).
// Responses are deterministic functions of the request body, preserving
// the byte-identity contract the router relies on.
type StubReplica struct {
	url  string
	srv  *http.Server
	done chan struct{}
}

// StartStub starts a stub replica whose analyze/diagnose handlers sleep
// delay then answer with a small document digest. workers > 0 bounds the
// number of concurrently "analyzing" requests — the stand-in for a real
// replica's worker pool, and what makes a stub saturate (and a fleet of
// them scale) the way real replicas do; excess requests queue. workers <= 0
// is unlimited.
func StartStub(delay time.Duration, workers int) (*StubReplica, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	var slots chan struct{}
	if workers > 0 {
		slots = make(chan struct{}, workers)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(w, `{"status":"ok"}`)
	})
	handle := func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
		if err != nil {
			w.WriteHeader(http.StatusBadRequest)
			return
		}
		if slots != nil {
			select {
			case slots <- struct{}{}:
				defer func() { <-slots }()
			case <-r.Context().Done():
				return
			}
		}
		select {
		case <-time.After(delay):
		case <-r.Context().Done():
			return
		}
		sum := sha256.Sum256(body)
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, "{\"stub\":true,\"digest\":%q}\n", hex.EncodeToString(sum[:8]))
	}
	mux.HandleFunc("/v1/analyze", handle)
	mux.HandleFunc("/v1/diagnose", handle)
	s := &StubReplica{
		url:  "http://" + ln.Addr().String(),
		srv:  &http.Server{Handler: mux},
		done: make(chan struct{}),
	}
	go func() {
		defer close(s.done)
		_ = s.srv.Serve(ln)
	}()
	return s, nil
}

// URL returns the stub's base URL.
func (s *StubReplica) URL() string { return s.url }

// Done is closed once the stub has stopped serving.
func (s *StubReplica) Done() <-chan struct{} { return s.done }

// Kill closes the stub immediately.
func (s *StubReplica) Kill() { _ = s.srv.Close() }
