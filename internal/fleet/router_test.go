package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"scaltool/internal/serve"
)

func analyzeDoc(app string, procs int) []byte {
	return []byte(fmt.Sprintf(`{"app":%q,"procs":%d}`, app, procs))
}

// postRouter posts a document at a router handler and returns the response.
func postRouter(t *testing.T, h http.Handler, path string, body []byte, hdr map[string]string) (*http.Response, []byte) {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	resp := rec.Result()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

// TestRankStability pins the rendezvous properties routing depends on:
// determinism, and minimal disruption when a replica leaves.
func TestRankStability(t *testing.T) {
	mk := func(names ...string) []*member {
		ms := make([]*member, 0, len(names))
		for _, n := range names {
			m := &member{name: n}
			m.url.Store("http://x")
			m.up.Store(true)
			ms = append(ms, m)
		}
		return ms
	}
	members := mk("replica-0", "replica-1", "replica-2")
	keys := []string{"k1", "k2", "k3", "k4", "k5", "k6", "k7", "k8"}

	// Deterministic: the same key always ranks the same order.
	for _, k := range keys {
		a, b := rank(members, k), rank(members, k)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("rank(%q) not deterministic", k)
			}
		}
	}
	// Spread: with 8 keys and 3 replicas, at least two replicas get a top
	// choice (an all-on-one hash would defeat the point).
	tops := map[string]bool{}
	for _, k := range keys {
		tops[rank(members, k)[0].name] = true
	}
	if len(tops) < 2 {
		t.Fatalf("all keys ranked the same replica first: %v", tops)
	}
	// Minimal disruption: dropping replica-2 must not change the top
	// choice of any key replica-2 did not own.
	survivors := members[:2]
	for _, k := range keys {
		before := rank(members, k)[0]
		after := rank(survivors, k)[0]
		if before.name != "replica-2" && after != before {
			t.Fatalf("key %q moved from %s to %s when an unrelated replica left", k, before.name, after.name)
		}
	}
	// A down replica ranks behind every up replica but stays in the list.
	members[0].up.Store(false)
	for _, k := range keys {
		order := rank(members, k)
		if order[len(order)-1].name != "replica-0" {
			t.Fatalf("down replica not ranked last for %q", k)
		}
	}
}

// TestRouterAffinityAndByteIdentity runs two real replicas behind the
// router: every repetition of one document must land on the same replica
// and return byte-identical bodies.
func TestRouterAffinityAndByteIdentity(t *testing.T) {
	var reps []*LocalReplica
	var replicas []Replica
	for i := 0; i < 2; i++ {
		rep, err := StartLocal(serve.Options{Workers: 2}, "")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(rep.Kill)
		reps = append(reps, rep)
		replicas = append(replicas, Replica{Name: SlotName(i), URL: rep.URL()})
	}
	rt := NewRouter(Options{Replicas: replicas})

	doc := analyzeDoc("swim", 4)
	var firstBody []byte
	var firstReplica string
	for i := 0; i < 3; i++ {
		resp, body := postRouter(t, rt.Handler(), "/v1/analyze", doc, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: %d: %s", i, resp.StatusCode, body)
		}
		rep := resp.Header.Get("X-Fleet-Replica")
		if i == 0 {
			firstBody, firstReplica = body, rep
			if rep == "" {
				t.Fatal("no X-Fleet-Replica header")
			}
			continue
		}
		if rep != firstReplica {
			t.Fatalf("request %d routed to %s, first went to %s", i, rep, firstReplica)
		}
		if !bytes.Equal(body, firstBody) {
			t.Fatalf("request %d body differs from first", i)
		}
	}

	// The replica's own error contract passes through verbatim: an unknown
	// app is a deterministic 422, never retried into a different answer.
	resp, body := postRouter(t, rt.Handler(), "/v1/analyze", analyzeDoc("nosuchapp", 2), nil)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("unknown app: %d: %s", resp.StatusCode, body)
	}
	var e map[string]string
	if err := json.Unmarshal(body, &e); err != nil || e["code"] == "" {
		t.Fatalf("error body not the uniform shape: %s", body)
	}
}

// stubBackend is a scriptable replica for failover tests.
type stubBackend struct {
	ts   *httptest.Server
	hits atomic.Int64
	rids chan string
}

func newStubBackend(t *testing.T, status int, body string) *stubBackend {
	sb := &stubBackend{rids: make(chan string, 64)}
	sb.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasSuffix(r.URL.Path, "healthz") {
			fmt.Fprintln(w, `{"status":"ok"}`)
			return
		}
		sb.hits.Add(1)
		select {
		case sb.rids <- r.Header.Get("X-Request-Id"):
		default:
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		fmt.Fprintln(w, body)
	}))
	t.Cleanup(sb.ts.Close)
	return sb
}

// TestRouterFailoverPreservesRequestID kills the preferred replica and
// asserts (a) the request succeeds on the backup, (b) the client-supplied
// X-Request-Id reached the SECOND replica — the trace identity survives
// failover end to end.
func TestRouterFailoverPreservesRequestID(t *testing.T) {
	good := newStubBackend(t, http.StatusOK, `{"ok":true}`)
	dead := newStubBackend(t, http.StatusOK, `{"ok":true}`)
	dead.ts.Close() // connection refused from the first byte

	doc := analyzeDoc("swim", 2)
	// Name the replicas so the DEAD one is the rendezvous first choice for
	// this document: try both assignments and keep the one where the dead
	// backend wins the hash.
	key := routingKeyFor(doc)
	names := []string{SlotName(0), SlotName(1)}
	deadName, goodName := names[0], names[1]
	if rendezvousScore(names[1], key) > rendezvousScore(names[0], key) {
		deadName, goodName = names[1], names[0]
	}
	rt := NewRouter(Options{
		Replicas:         []Replica{{Name: deadName, URL: dead.ts.URL}, {Name: goodName, URL: good.ts.URL}},
		FailureThreshold: 3,
	})

	resp, body := postRouter(t, rt.Handler(), "/v1/analyze", doc, map[string]string{"X-Request-Id": "trace-fleet-42"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("failover request: %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Fleet-Replica"); got != goodName {
		t.Fatalf("served by %q, want the backup %q", got, goodName)
	}
	if got := resp.Header.Get("X-Request-Id"); got != "trace-fleet-42" {
		t.Fatalf("response X-Request-Id = %q", got)
	}
	select {
	case rid := <-good.rids:
		if rid != "trace-fleet-42" {
			t.Fatalf("backup replica saw X-Request-Id %q, want trace-fleet-42", rid)
		}
	default:
		t.Fatal("backup replica never saw the request")
	}
}

// TestRouterRefusalFallsOverThenSurfaces: a 429 from the preferred replica
// fails over; if EVERY replica refuses, the client sees the retryable
// refusal (with its Retry-After), never a synthetic hard error.
func TestRouterRefusalFallsOverThenSurfaces(t *testing.T) {
	busy1 := newStubBackend(t, http.StatusTooManyRequests, `{"error":"overloaded","code":"overloaded"}`)
	busy2 := newStubBackend(t, http.StatusTooManyRequests, `{"error":"overloaded","code":"overloaded"}`)
	rt := NewRouter(Options{Replicas: []Replica{
		{Name: SlotName(0), URL: busy1.ts.URL},
		{Name: SlotName(1), URL: busy2.ts.URL},
	}})
	resp, body := postRouter(t, rt.Handler(), "/v1/analyze", analyzeDoc("swim", 2), nil)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("all-refusing fleet returned %d, want 429: %s", resp.StatusCode, body)
	}
	if busy1.hits.Load() != 1 || busy2.hits.Load() != 1 {
		t.Fatalf("attempts = (%d, %d), want one per replica", busy1.hits.Load(), busy2.hits.Load())
	}

	// Mixed fleet: refusal from the first, success from the second.
	ok := newStubBackend(t, http.StatusOK, `{"ok":true}`)
	doc := analyzeDoc("swim", 2)
	key := routingKeyFor(doc)
	busyName, okName := SlotName(0), SlotName(1)
	if rendezvousScore(okName, key) > rendezvousScore(busyName, key) {
		busyName, okName = okName, busyName
	}
	rt2 := NewRouter(Options{Replicas: []Replica{
		{Name: busyName, URL: busy1.ts.URL},
		{Name: okName, URL: ok.ts.URL},
	}})
	resp, body = postRouter(t, rt2.Handler(), "/v1/analyze", doc, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mixed fleet returned %d, want 200: %s", resp.StatusCode, body)
	}
}

// TestRouterHedging: when the preferred replica sits on a request past
// HedgeAfter, a hedge races the backup and the client gets the fast answer.
func TestRouterHedging(t *testing.T) {
	release := make(chan struct{})
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasSuffix(r.URL.Path, "healthz") {
			fmt.Fprintln(w, `{"status":"ok"}`)
			return
		}
		select {
		case <-release:
		case <-r.Context().Done():
			return
		}
		fmt.Fprintln(w, `{"slow":true}`)
	}))
	defer slow.Close()
	defer close(release)
	fast := newStubBackend(t, http.StatusOK, `{"fast":true}`)

	doc := analyzeDoc("swim", 2)
	key := routingKeyFor(doc)
	slowName, fastName := SlotName(0), SlotName(1)
	if rendezvousScore(fastName, key) > rendezvousScore(slowName, key) {
		slowName, fastName = fastName, slowName
	}
	rt := NewRouter(Options{
		Replicas: []Replica{
			{Name: slowName, URL: slow.URL},
			{Name: fastName, URL: fast.ts.URL},
		},
		HedgeAfter: 30 * time.Millisecond,
	})
	start := time.Now()
	resp, body := postRouter(t, rt.Handler(), "/v1/analyze", doc, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("hedged request: %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Fleet-Replica"); got != fastName {
		t.Fatalf("served by %q, want the hedge target %q", got, fastName)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("hedged request took %v — hedge never fired", elapsed)
	}
}

// TestRouterDrainAndGates pins the router's own edge contract: drain 429,
// method 405, oversized body 413, and the no-replica 503.
func TestRouterDrainAndGates(t *testing.T) {
	rep := newStubBackend(t, http.StatusOK, `{"ok":true}`)
	rt := NewRouter(Options{Replicas: []Replica{{Name: SlotName(0), URL: rep.ts.URL}}})

	req := httptest.NewRequest(http.MethodGet, "/v1/analyze", nil)
	rec := httptest.NewRecorder()
	rt.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET returned %d, want 405", rec.Code)
	}

	resp, body := postRouter(t, rt.Handler(), "/v1/analyze", bytes.Repeat([]byte("x"), 1<<20+1), nil)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body returned %d: %s", resp.StatusCode, body)
	}

	// Drain: healthz flips, new work refused retryably, Drain returns.
	ctx, cancel := testContext(t)
	defer cancel()
	if err := rt.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	resp, body = postRouter(t, rt.Handler(), "/v1/analyze", analyzeDoc("swim", 2), nil)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("draining router returned %d: %s", resp.StatusCode, body)
	}
	var e map[string]string
	if err := json.Unmarshal(body, &e); err != nil || e["code"] != "draining" {
		t.Fatalf("drain error body: %s", body)
	}
	hreq := httptest.NewRequest(http.MethodGet, "/v1/healthz", nil)
	hrec := httptest.NewRecorder()
	rt.Handler().ServeHTTP(hrec, hreq)
	if hrec.Code != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz = %d, want 503", hrec.Code)
	}

	// No replicas at all → a retryable 503.
	empty := NewRouter(Options{})
	resp, body = postRouter(t, empty.Handler(), "/v1/analyze", analyzeDoc("swim", 2), nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("empty fleet returned %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &e); err != nil || e["code"] != "no_replica" {
		t.Fatalf("no-replica body: %s", body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("no-replica response missing Retry-After")
	}
}
