package fleet

import (
	"fmt"
	"math"
)

// The fleet measured with the paper's own discipline. Scal-Tool quantifies
// why a DSM machine stops scaling; Gunther's Universal Scalability Law is
// the same question asked of a service tier:
//
//	C(N) = N / (1 + α(N−1) + βN(N−1))
//
// where C(N) is throughput at N replicas relative to one replica, α is the
// contention share (the serial fraction — queueing at the router, the
// shared spill directory) and β the coherency share (pairwise
// synchronization, which grows as N²; it is the same O(N·h) invalidation
// story the paper tells about directories, at fleet scale). β > 0 implies
// a throughput PEAK at N* = √((1−α)/β) beyond which adding replicas makes
// the fleet slower — the number scalload reports so capacity planning has
// an answer, not a shrug.
//
// The fit linearizes the law: with X1 = throughput at N=1,
//
//	y(N) = N·X1/X(N) − 1 = α(N−1) + βN(N−1)
//
// which is linear in (α, β) and solved by ordinary least squares on the
// two regressors u = N−1, v = N(N−1) — the standard USL fitting recipe.
// Negative parameter estimates (possible with superlinear points or noise)
// are handled by refitting the constrained variants and keeping the best.

// Point is one measured operating point.
type Point struct {
	// N is the replica count.
	N int `json:"n"`
	// Throughput is requests per second at N replicas.
	Throughput float64 `json:"throughput_rps"`
}

// Fit is a fitted Universal Scalability Law.
type Fit struct {
	// Alpha is the contention (serial-fraction) coefficient.
	Alpha float64 `json:"alpha"`
	// Beta is the coherency (crosstalk) coefficient.
	Beta float64 `json:"beta"`
	// X1 is the measured single-replica throughput the law is scaled by.
	X1 float64 `json:"x1_rps"`
	// R2 is the coefficient of determination of predicted vs measured
	// relative capacity.
	R2 float64 `json:"r2"`
	// PeakN is the replica count of maximum throughput (0 = no interior
	// peak; throughput is monotone over any N when β = 0).
	PeakN int `json:"peak_n,omitempty"`
}

// Capacity evaluates the fitted law's relative capacity C(N).
func (f Fit) Capacity(n int) float64 {
	nn := float64(n)
	return nn / (1 + f.Alpha*(nn-1) + f.Beta*nn*(nn-1))
}

// Predict evaluates the fitted law as absolute throughput at N replicas.
func (f Fit) Predict(n int) float64 { return f.X1 * f.Capacity(n) }

// FitUSL fits the law to measured points. It requires an N=1 point (the
// normalization X1) and at least one point with N > 1.
func FitUSL(points []Point) (Fit, error) {
	var x1 float64
	multi := make([]Point, 0, len(points))
	for _, p := range points {
		switch {
		case p.N == 1:
			x1 = p.Throughput
		case p.N > 1:
			multi = append(multi, p)
		default:
			return Fit{}, fmt.Errorf("fleet: usl: invalid replica count %d", p.N)
		}
	}
	if x1 <= 0 {
		return Fit{}, fmt.Errorf("fleet: usl: need a positive-throughput N=1 point")
	}
	if len(multi) == 0 {
		return Fit{}, fmt.Errorf("fleet: usl: need at least one point with N > 1")
	}
	for _, p := range multi {
		if p.Throughput <= 0 {
			return Fit{}, fmt.Errorf("fleet: usl: non-positive throughput at N=%d", p.N)
		}
	}

	// y = α·u + β·v with u = N−1, v = N(N−1); normal equations for the
	// 2×2 no-intercept least squares.
	var suu, suv, svv, suy, svy float64
	for _, p := range multi {
		n := float64(p.N)
		u, v := n-1, n*(n-1)
		y := n*x1/p.Throughput - 1
		suu += u * u
		suv += u * v
		svv += v * v
		suy += u * y
		svy += v * y
	}

	candidates := make([]Fit, 0, 4)
	if det := suu*svv - suv*suv; math.Abs(det) > 1e-12 {
		a := (suy*svv - svy*suv) / det
		b := (svy*suu - suy*suv) / det
		if a >= 0 && b >= 0 {
			candidates = append(candidates, Fit{Alpha: a, Beta: b, X1: x1})
		}
	}
	// Constrained variants: β=0 (pure contention), α=0 (pure coherency),
	// both zero (ideal linear). With a near-singular design (a single
	// multi-replica point) or a negative unconstrained estimate, the best
	// of these is the answer.
	if suu > 0 {
		if a := suy / suu; a >= 0 {
			candidates = append(candidates, Fit{Alpha: a, X1: x1})
		}
	}
	if svv > 0 {
		if b := svy / svv; b >= 0 {
			candidates = append(candidates, Fit{Beta: b, X1: x1})
		}
	}
	candidates = append(candidates, Fit{X1: x1})

	best, bestSSE := Fit{}, math.Inf(1)
	for _, f := range candidates {
		var sse float64
		for _, p := range multi {
			d := p.Throughput/x1 - f.Capacity(p.N)
			sse += d * d
		}
		if sse < bestSSE {
			best, bestSSE = f, sse
		}
	}

	// R² of predicted vs measured relative capacity, over all points
	// (including N=1, which every candidate fits exactly).
	var mean float64
	for _, p := range points {
		mean += p.Throughput / x1
	}
	mean /= float64(len(points))
	var ssTot, ssRes float64
	for _, p := range points {
		c := p.Throughput / x1
		ssTot += (c - mean) * (c - mean)
		d := c - best.Capacity(p.N)
		ssRes += d * d
	}
	if ssTot > 0 {
		best.R2 = 1 - ssRes/ssTot
	} else {
		best.R2 = 1
	}

	if best.Beta > 0 {
		if peak := math.Sqrt((1 - best.Alpha) / best.Beta); peak >= 1 {
			best.PeakN = int(math.Floor(peak))
		} else {
			best.PeakN = 1
		}
	}
	return best, nil
}
