package fleet

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// testContext returns a context bounded well under the test deadline.
func testContext(t *testing.T) (context.Context, context.CancelFunc) {
	t.Helper()
	return context.WithTimeout(context.Background(), 30*time.Second)
}

// fakeHandle is a scriptable Handle for supervisor tests.
type fakeHandle struct {
	url     string
	done    chan struct{}
	once    sync.Once
	healthy atomic.Bool
	ts      *httptest.Server
}

func newFakeHandle() *fakeHandle {
	h := &fakeHandle{done: make(chan struct{})}
	h.healthy.Store(true)
	h.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if h.healthy.Load() {
			fmt.Fprintln(w, `{"status":"ok"}`)
			return
		}
		// A hung replica: the probe times out rather than erroring.
		select {
		case <-h.done:
		case <-r.Context().Done():
		}
	}))
	h.url = h.ts.URL
	return h
}

func (h *fakeHandle) URL() string           { return h.url }
func (h *fakeHandle) Done() <-chan struct{} { return h.done }
func (h *fakeHandle) Kill() {
	h.once.Do(func() {
		close(h.done)
		go h.ts.Close()
	})
}

// TestSupervisorRestartsDeadReplica: killing an instance must produce a
// respawn, with the router notified of down-then-up.
func TestSupervisorRestartsDeadReplica(t *testing.T) {
	ctx, cancel := testContext(t)
	defer cancel()

	var mu sync.Mutex
	var spawned []*fakeHandle
	var notifications []string
	sv := &Supervisor{
		Spawn: func(slot int) (Handle, error) {
			h := newFakeHandle()
			mu.Lock()
			spawned = append(spawned, h)
			mu.Unlock()
			return h, nil
		},
		Notify: func(slot int, url string) {
			mu.Lock()
			notifications = append(notifications, fmt.Sprintf("%d:%s", slot, url))
			mu.Unlock()
		},
		HeartbeatInterval: 20 * time.Millisecond,
		RestartBackoff:    10 * time.Millisecond,
	}
	runDone := make(chan error, 1)
	go func() { runDone <- sv.Run(ctx, 1) }()

	waitFor(t, func() bool { mu.Lock(); defer mu.Unlock(); return len(spawned) >= 1 })
	mu.Lock()
	first := spawned[0]
	mu.Unlock()
	first.Kill()
	waitFor(t, func() bool { mu.Lock(); defer mu.Unlock(); return len(spawned) >= 2 })

	cancel()
	if err := <-runDone; err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	// Notifications: up(first), down, up(second), [down on shutdown].
	if len(notifications) < 3 {
		t.Fatalf("notifications = %v", notifications)
	}
	if notifications[0] != "0:"+first.url || notifications[1] != "0:" {
		t.Fatalf("restart notifications wrong: %v", notifications)
	}
	if notifications[2] != "0:"+spawned[1].url {
		t.Fatalf("replacement URL not announced: %v", notifications)
	}
}

// TestSupervisorKillsHungReplica: an instance that stops answering health
// probes without exiting must be killed and replaced — the watchdog's whole
// reason to exist.
func TestSupervisorKillsHungReplica(t *testing.T) {
	ctx, cancel := testContext(t)
	defer cancel()

	var mu sync.Mutex
	var spawned []*fakeHandle
	sv := &Supervisor{
		Spawn: func(slot int) (Handle, error) {
			h := newFakeHandle()
			mu.Lock()
			spawned = append(spawned, h)
			mu.Unlock()
			return h, nil
		},
		HeartbeatInterval: 15 * time.Millisecond,
		HeartbeatMisses:   2,
		RestartBackoff:    10 * time.Millisecond,
	}
	runDone := make(chan error, 1)
	go func() { runDone <- sv.Run(ctx, 1) }()

	waitFor(t, func() bool { mu.Lock(); defer mu.Unlock(); return len(spawned) >= 1 })
	mu.Lock()
	first := spawned[0]
	mu.Unlock()
	// Wedge the instance: alive as a process, dead to probes.
	first.healthy.Store(false)

	waitFor(t, func() bool { mu.Lock(); defer mu.Unlock(); return len(spawned) >= 2 })
	select {
	case <-first.Done():
	default:
		t.Fatal("hung instance was replaced but never killed")
	}
	cancel()
	if err := <-runDone; err != nil {
		t.Fatal(err)
	}
}

// TestSupervisorFirstSpawnFailureIsFatal: a slot that cannot start once is
// a configuration error, reported rather than retried forever.
func TestSupervisorFirstSpawnFailureIsFatal(t *testing.T) {
	ctx, cancel := testContext(t)
	defer cancel()
	sv := &Supervisor{Spawn: func(slot int) (Handle, error) {
		return nil, fmt.Errorf("no such binary")
	}}
	if err := sv.Run(ctx, 1); err == nil {
		t.Fatal("first-spawn failure not reported")
	}
}

// TestExecReplicaAddressDiscovery drives StartExec against a shell script
// that fakes scaltoold's startup line, covering wildcard-address rewriting
// and the ready-timeout path.
func TestExecReplicaAddressDiscovery(t *testing.T) {
	if _, err := os.Stat("/bin/sh"); err != nil {
		t.Skip("no /bin/sh")
	}
	dir := t.TempDir()
	script := dir + "/fake-scaltoold"
	if err := os.WriteFile(script, []byte("#!/bin/sh\necho 'scaltoold: listening on [::]:18080'\nsleep 30\n"), 0o755); err != nil {
		t.Fatal(err)
	}
	r, err := StartExec(ExecConfig{Path: script})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Kill()
	if r.URL() != "http://127.0.0.1:18080" {
		t.Fatalf("URL = %q, want the wildcard rewritten to localhost", r.URL())
	}
	r.Kill()
	select {
	case <-r.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("killed child never reaped")
	}

	// A child that never announces must be killed at the ready timeout.
	silent := dir + "/silent"
	if err := os.WriteFile(silent, []byte("#!/bin/sh\nsleep 30\n"), 0o755); err != nil {
		t.Fatal(err)
	}
	if _, err := StartExec(ExecConfig{Path: silent, ReadyTimeout: 100 * time.Millisecond}); err == nil {
		t.Fatal("silent child did not fail readiness")
	}
}

// waitFor polls cond until it holds or the test deadline approaches.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never held")
		}
		time.Sleep(2 * time.Millisecond)
	}
}
