package fleet

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"scaltool/internal/client"
	"scaltool/internal/serve"
)

// The forward path. One client request becomes a sequence (or, with
// hedging, a small race) of attempts against the key's rendezvous order.
// Every attempt's outcome is classified into exactly one of:
//
//	final    — the replica answered with a verdict the client should see:
//	           200, any 4xx, a replica-side 500 or 504. These are
//	           deterministic (the same document gets the same verdict on
//	           every replica), so failing over would only burn a second
//	           replica's time to learn the same thing.
//	refusal  — the replica declined retryably: 429 (draining/overloaded)
//	           or 503 (no worker). Another replica may well accept; fail
//	           over, but keep the refusal as the answer of last resort so
//	           the client sees a retryable status, not a synthetic error.
//	failure  — the replica is unreachable, hung past ForwardTimeout, or
//	           reset the connection (a SIGKILL mid-request). Feed the
//	           breaker, mark it down, fail over.
//
// Only failures count against a replica's breaker. A refusal is the
// replica protecting itself while healthy — punishing it would open
// breakers during load spikes, exactly when capacity matters most. And an
// attempt canceled because a hedge sibling already won is neutral by
// construction: the replica did nothing wrong, so it must not inherit the
// cancellation as a failure (that would let a slow-but-healthy replica's
// breaker open purely because a faster peer exists).

// maxResponseBytes bounds a replica response body. Analysis responses are
// tens of kilobytes; even a full 32-proc diagnose report is far under a
// megabyte. 64 MiB is pure insurance against a confused replica.
const maxResponseBytes = 64 << 20

// attemptResult is one replica attempt's classified outcome.
type attemptResult struct {
	final   bool // verdict for the client (includes deterministic errors)
	refusal bool // retryable refusal (429/503) — fallback answer only
	status  int
	header  http.Header
	body    []byte
	replica string
	err     error // set iff transport-level failure
}

func (rt *Router) handleProxy(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	route := r.URL.Path
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeJSONError(w, http.StatusMethodNotAllowed, "method", "use POST")
		rt.countRequest(route, http.StatusMethodNotAllowed, start)
		return
	}
	rid := requestID(r)
	w.Header().Set("X-Request-Id", rid)
	if rt.draining.Load() {
		w.Header().Set("Retry-After", "2")
		writeJSONError(w, http.StatusTooManyRequests, "draining", "router is draining")
		rt.countRequest(route, http.StatusTooManyRequests, start)
		return
	}
	rt.inflight.Add(1)
	defer rt.inflight.Done()

	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeJSONError(w, http.StatusRequestEntityTooLarge, "body_too_large",
				"request body exceeds "+strconv.FormatInt(tooBig.Limit, 10)+" bytes")
			rt.countRequest(route, http.StatusRequestEntityTooLarge, start)
			return
		}
		writeJSONError(w, http.StatusBadRequest, "malformed", "reading request body")
		rt.countRequest(route, http.StatusBadRequest, start)
		return
	}

	key := routingKeyFor(body)
	res := rt.forward(r.Context(), route, key, rid, body)
	for _, h := range []string{"Content-Type", "Retry-After"} {
		if v := res.header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	if res.replica != "" {
		w.Header().Set("X-Fleet-Replica", res.replica)
	}
	w.WriteHeader(res.status)
	_, _ = w.Write(res.body)
	rt.countRequest(route, res.status, start)
}

// routingKeyFor computes a request's placement key. The document is decoded
// leniently (unknown fields and schema violations are the REPLICA's call to
// refuse — the router only needs a stable identity), and resolvable
// documents map to the runcache content address via serve.RoutingKey. A
// document that does not even parse hashes as raw bytes: still
// deterministic, and the replica's 400 comes back cached-hot on repeats.
func routingKeyFor(body []byte) string {
	var req serve.Request
	if err := json.Unmarshal(body, &req); err == nil {
		return serve.RoutingKey(&req)
	}
	sum := sha256.Sum256(body)
	return "raw:" + hex.EncodeToString(sum[:8])
}

// requestID mirrors the replica's X-Request-Id contract: honor a
// well-formed client ID, otherwise mint one. The same ID is forwarded on
// every attempt, so a failover or hedge shows up in replica logs as one
// request identity hopping replicas — exactly what an incident needs.
func requestID(r *http.Request) string {
	id := r.Header.Get("X-Request-Id")
	if id != "" && len(id) <= 64 {
		ok := true
		for i := 0; i < len(id); i++ {
			c := id[i]
			if !('0' <= c && c <= '9' || 'a' <= c && c <= 'z' || 'A' <= c && c <= 'Z' || c == '-' || c == '_') {
				ok = false
				break
			}
		}
		if ok {
			return id
		}
	}
	return client.NewRequestID()
}

// forward drives the attempt sequence for one request and returns the
// response to relay. It never returns a zero attemptResult.
func (rt *Router) forward(ctx context.Context, route, key, rid string, body []byte) attemptResult {
	order := rank(rt.snapshot(), key)
	if len(order) == 0 {
		return noReplicaResult()
	}

	attemptCtx, cancelAll := context.WithCancel(ctx)
	results := make(chan attemptResult, len(order))
	var wg sync.WaitGroup
	// LIFO: cancelAll fires first, so losing attempts abort promptly and
	// wg.Wait only reaps them — never rides out their full timeouts.
	defer wg.Wait()
	defer cancelAll()

	next := 0    // index of the next candidate to try
	pending := 0 // attempts in flight
	// launch starts the next eligible candidate, skipping instanceless
	// slots and open breakers (both are known-useless without a network
	// round trip). Reports whether an attempt was started.
	launch := func() bool {
		for next < len(order) {
			m := order[next]
			next++
			url := m.currentURL()
			if url == "" {
				continue
			}
			if err := m.breaker.Allow(time.Now()); err != nil {
				continue
			}
			pending++
			wg.Add(1)
			go func() {
				defer wg.Done()
				res := rt.attempt(attemptCtx, m, url, route, rid, body)
				select {
				case results <- res:
				case <-attemptCtx.Done():
				}
			}()
			return true
		}
		return false
	}

	if !launch() {
		return noReplicaResult()
	}

	var hedgeTimer *time.Timer
	var hedgeCh <-chan time.Time
	if rt.opts.HedgeAfter > 0 {
		hedgeTimer = time.NewTimer(rt.opts.HedgeAfter)
		defer hedgeTimer.Stop()
		hedgeCh = hedgeTimer.C
	}

	var lastRefusal *attemptResult
	for pending > 0 {
		select {
		case <-ctx.Done():
			return attemptResult{
				final:  true,
				status: http.StatusServiceUnavailable,
				header: errHeader(""),
				body:   errBody("client canceled or router shutting down", "canceled"),
			}
		case <-hedgeCh:
			// One hedge per request: after HedgeAfter with no verdict, race
			// the next candidate against the slow one.
			hedgeCh = nil
			if launch() {
				rt.count("scaltool_fleet_hedges_total", "hedged attempts launched")
			}
		case res := <-results:
			pending--
			if res.final {
				return res
			}
			if res.refusal {
				lastRefusal = &res
			}
			if pending == 0 && !launch() {
				// Candidates exhausted.
				if lastRefusal != nil {
					return *lastRefusal
				}
				return noReplicaResult()
			}
			if res.err != nil {
				rt.count("scaltool_fleet_failovers_total", "attempts failed over to the next replica")
			}
		}
	}
	if lastRefusal != nil {
		return *lastRefusal
	}
	return noReplicaResult()
}

// attempt forwards the request to one replica and classifies the outcome.
func (rt *Router) attempt(ctx context.Context, m *member, url, route, rid string, body []byte) attemptResult {
	actx, cancel := context.WithTimeout(ctx, rt.opts.ForwardTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(actx, http.MethodPost, url+route, bytes.NewReader(body))
	if err != nil {
		return rt.attemptFailed(m, err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Request-Id", rid)
	resp, err := rt.opts.HTTP.Do(req)
	if err != nil {
		// A cancellation from the parent (hedge sibling won, or the client
		// hung up) is not the replica's fault: report neutral so the
		// breaker's half-open probe flag is not stranded and no failure is
		// charged. A blown ForwardTimeout — actx expired while ctx is
		// still live — IS the replica's fault (hung or wedged).
		if ctx.Err() != nil {
			m.breaker.OnSuccess()
			return attemptResult{replica: m.name, err: err}
		}
		return rt.attemptFailed(m, err)
	}
	defer resp.Body.Close()
	rbody, err := io.ReadAll(io.LimitReader(resp.Body, maxResponseBytes))
	if err != nil {
		if ctx.Err() != nil {
			m.breaker.OnSuccess()
			return attemptResult{replica: m.name, err: err}
		}
		return rt.attemptFailed(m, err)
	}

	res := attemptResult{status: resp.StatusCode, header: resp.Header, body: rbody, replica: m.name}
	switch {
	case resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable:
		// The replica is healthy but refusing work — retryable elsewhere.
		m.breaker.OnSuccess()
		res.refusal = true
		rt.countAttempt(m.name, "refused")
	default:
		// Everything else — 200, 4xx, 500, 504 — is a deterministic
		// verdict; retrying on a peer would reproduce it.
		m.breaker.OnSuccess()
		res.final = true
		rt.countAttempt(m.name, "ok")
	}
	return res
}

// attemptFailed records a hard replica failure: breaker fed, health verdict
// dropped (the prober or a restart will restore it).
func (rt *Router) attemptFailed(m *member, err error) attemptResult {
	m.breaker.OnFailure(time.Now())
	m.up.Store(false)
	rt.countAttempt(m.name, "failed")
	return attemptResult{replica: m.name, err: err}
}

func noReplicaResult() attemptResult {
	h := errHeader("3")
	return attemptResult{
		final:  true,
		status: http.StatusServiceUnavailable,
		header: h,
		body:   errBody("no replica available", "no_replica"),
	}
}

func errHeader(retryAfter string) http.Header {
	h := http.Header{}
	h.Set("Content-Type", "application/json")
	if retryAfter != "" {
		h.Set("Retry-After", retryAfter)
	}
	return h
}

// errBody renders the service's uniform {"error","code"} JSON error shape.
func errBody(msg, code string) []byte {
	b, _ := json.Marshal(map[string]string{"error": msg, "code": code})
	return append(b, '\n')
}

func writeJSONError(w http.ResponseWriter, status int, code, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(errBody(msg, code))
}

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if rt.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, `{"status":"draining"}`)
		return
	}
	fmt.Fprintln(w, `{"status":"ok"}`)
}

func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	mt := rt.meter()
	if mt == nil {
		http.Error(w, "metrics disabled", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := mt.WritePrometheus(w); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// Drain mirrors the replica shutdown contract at the router tier: healthz
// flips to 503, new requests get a retryable 429, and Drain blocks until
// every in-flight forward completes or ctx expires. Safe to call twice.
func (rt *Router) Drain(ctx context.Context) error {
	rt.draining.Store(true)
	if mt := rt.meter(); mt != nil {
		mt.Gauge("scaltool_fleet_draining", "1 while the router is draining for shutdown").Set(1)
	}
	done := make(chan struct{})
	go func() {
		rt.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("fleet: drain: %w", ctx.Err())
	}
}

func (rt *Router) countRequest(route string, code int, start time.Time) {
	mt := rt.meter()
	if mt == nil {
		return
	}
	mt.Counter("scaltool_fleet_requests_total", "router requests by route and status code",
		"route", route, "code", strconv.Itoa(code)).Inc()
	mt.RequestSeconds("fleet" + route).Observe(time.Since(start).Seconds())
}

func (rt *Router) countAttempt(replica, outcome string) {
	if mt := rt.meter(); mt != nil {
		mt.Counter("scaltool_fleet_attempts_total", "replica attempts by outcome",
			"replica", replica, "outcome", outcome).Inc()
	}
}

func (rt *Router) count(name, help string) {
	if mt := rt.meter(); mt != nil {
		mt.Counter(name, help).Inc()
	}
}
