package fleet

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"strings"
	"sync"
	"syscall"
	"time"
)

// ExecReplica supervises a real scaltoold child process — the production
// shape of a slot, where Kill really is SIGKILL. Readiness is discovered
// from the daemon's own startup line ("scaltoold: listening on ADDR"),
// which is printed only after the listener is bound, so the URL handed to
// the router is connectable by construction.

// ExecConfig describes how to launch a replica process.
type ExecConfig struct {
	// Path is the scaltoold binary.
	Path string
	// Args are the daemon's flags. Pass "-addr", "127.0.0.1:0" (or leave
	// the default) so each instance binds its own ephemeral port.
	Args []string
	// Stderr receives the child's stderr (nil = discarded).
	Stderr io.Writer
	// ReadyTimeout bounds the wait for the startup line (0 = 10s).
	ReadyTimeout time.Duration
}

// ExecReplica is a supervised scaltoold OS process.
type ExecReplica struct {
	url  string
	cmd  *exec.Cmd
	done chan struct{}
}

// StartExec launches a scaltoold child and waits until it announces its
// listen address.
func StartExec(cfg ExecConfig) (*ExecReplica, error) {
	timeout := cfg.ReadyTimeout
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	cmd := exec.Command(cfg.Path, cfg.Args...)
	cmd.Stderr = lockWriter(cfg.Stderr)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}

	r := &ExecReplica{cmd: cmd, done: make(chan struct{})}
	// The reaper goroutine owns Wait; everything else watches done.
	exited := make(chan struct{})
	go func() {
		defer close(r.done)
		defer close(exited)
		_ = cmd.Wait()
	}()

	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			if rest, ok := strings.CutPrefix(line, "scaltoold: listening on "); ok {
				addrCh <- strings.TrimSpace(rest)
				break
			}
		}
		// Keep draining so the child never blocks on a full stdout pipe.
		_, _ = io.Copy(io.Discard, stdout)
	}()

	select {
	case addr := <-addrCh:
		r.url = "http://" + normalizeHostPort(addr)
		return r, nil
	case <-exited:
		return nil, fmt.Errorf("fleet: %s exited before announcing its address", cfg.Path)
	case <-time.After(timeout):
		_ = cmd.Process.Kill()
		return nil, fmt.Errorf("fleet: %s did not announce its address within %s", cfg.Path, timeout)
	}
}

// lockWriter serializes writes to a shared child-stderr sink. exec.Cmd
// copies a non-*os.File stderr in a per-child goroutine, so a fleet of
// children funneling into one buffer would race; a real file is passed
// through untouched (the kernel handles fd sharing). The mutex is package
// level because the same underlying writer typically backs every child.
var childStderrMu sync.Mutex

func lockWriter(w io.Writer) io.Writer {
	if w == nil {
		return nil
	}
	if f, ok := w.(*os.File); ok {
		return f
	}
	return &lockedWriter{w: w}
}

type lockedWriter struct{ w io.Writer }

func (lw *lockedWriter) Write(p []byte) (int, error) {
	childStderrMu.Lock()
	defer childStderrMu.Unlock()
	return lw.w.Write(p)
}

// normalizeHostPort rewrites wildcard listen addresses (":8080", "[::]:..")
// to a dialable localhost form.
func normalizeHostPort(addr string) string {
	host, port, err := net.SplitHostPort(addr)
	if err != nil {
		return addr
	}
	switch host {
	case "", "::", "0.0.0.0":
		host = "127.0.0.1"
	}
	return net.JoinHostPort(host, port)
}

// URL returns the child's base URL.
func (r *ExecReplica) URL() string { return r.url }

// Done is closed once the child has exited.
func (r *ExecReplica) Done() <-chan struct{} { return r.done }

// Kill sends SIGKILL.
func (r *ExecReplica) Kill() { _ = r.cmd.Process.Kill() }

// Shutdown sends SIGTERM (the daemon drains and exits on it) and waits for
// the child to go away or ctx to expire, in which case it is killed.
func (r *ExecReplica) Shutdown(ctx context.Context) error {
	if err := r.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		if err == os.ErrProcessDone {
			return nil
		}
		return err
	}
	select {
	case <-r.done:
		return nil
	case <-ctx.Done():
		_ = r.cmd.Process.Kill()
		return fmt.Errorf("fleet: shutdown: %w", ctx.Err())
	}
}
