package fleet

import (
	"context"
	"net/http"
	"time"
)

// Health probing. The breakers learn about a dead replica reactively — a
// request has to fail first. The prober learns proactively: a background
// GET /v1/healthz per replica per ProbeInterval keeps each member's up bit
// current, so rank() can demote a draining or dead replica BEFORE any
// client request pays the discovery cost. The two mechanisms deliberately
// overlap: probes bound how stale the health view can get, breakers bound
// how many requests a freshly-dead replica can eat inside one probe
// interval.

// StartProber begins background health probing; it returns immediately and
// stops when ctx is canceled. All members are probed concurrently — one
// hung replica must not delay the verdict on the others.
func (rt *Router) StartProber(ctx context.Context) {
	go func() {
		rt.probeAll(ctx)
		t := time.NewTicker(rt.opts.ProbeInterval)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				rt.probeAll(ctx)
			}
		}
	}()
}

func (rt *Router) probeAll(ctx context.Context) {
	members := rt.snapshot()
	done := make(chan struct{}, len(members))
	for _, m := range members {
		go func(m *member) {
			defer func() { done <- struct{}{} }()
			rt.probe(ctx, m)
		}(m)
	}
	for range members {
		<-done
	}
}

// probe runs one health check and updates the member's verdict. A replica
// that answers anything but 200 — including the drain contract's 503 — is
// down for routing purposes; its slot URL staying bound means it may still
// be tried as a last resort.
func (rt *Router) probe(ctx context.Context, m *member) {
	url := m.currentURL()
	if url == "" {
		m.up.Store(false)
		rt.publishUp(m)
		return
	}
	pctx, cancel := context.WithTimeout(ctx, rt.opts.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, http.MethodGet, url+"/v1/healthz", nil)
	if err != nil {
		m.up.Store(false)
		rt.publishUp(m)
		return
	}
	resp, err := rt.opts.HTTP.Do(req)
	if err != nil {
		m.up.Store(false)
		rt.publishUp(m)
		return
	}
	resp.Body.Close()
	m.up.Store(resp.StatusCode == http.StatusOK)
	rt.publishUp(m)
}

func (rt *Router) publishUp(m *member) {
	mt := rt.meter()
	if mt == nil {
		return
	}
	v := 0.0
	if m.up.Load() {
		v = 1
	}
	mt.Gauge("scaltool_fleet_replica_up", "1 while the replica answers health probes", "replica", m.name).Set(v)
}
