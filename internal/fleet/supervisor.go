package fleet

import (
	"context"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"scaltool/internal/obs"
)

// The supervisor keeps N replica slots populated — the same watchdog shape
// as the campaign's worker supervisor, lifted to processes: watch for
// death, probe for hangs, kill what is wedged, respawn with backoff, and
// tell the router where the replacement lives. A slot's NAME is stable
// across restarts (slot 0 is always "replica-0"), so the rendezvous hash
// keeps routing a key to the same slot and the replacement inherits the
// dead instance's share of the keyspace — whose spilled cache entries it
// finds already on disk when the fleet shares a -run-cache-dir.

// Handle is one live replica instance under supervision. LocalReplica,
// StubReplica, and ExecReplica all implement it.
type Handle interface {
	// URL is the instance's base URL.
	URL() string
	// Done is closed when the instance stops serving, however it died.
	Done() <-chan struct{}
	// Kill terminates the instance immediately (SIGKILL semantics).
	Kill()
}

// shutdowner is optionally implemented by handles that support a graceful
// stop; the supervisor prefers it to Kill on a clean context cancel.
type shutdowner interface {
	Shutdown(ctx context.Context) error
}

// SlotName names a supervised slot — the replica's stable rendezvous
// identity.
func SlotName(slot int) string { return "replica-" + strconv.Itoa(slot) }

// Supervisor restarts dead or hung replica instances.
type Supervisor struct {
	// Spawn starts a new instance for a slot. Required.
	Spawn func(slot int) (Handle, error)
	// Notify reports a slot's current URL ("" = instance down) — wire this
	// to Router.SetReplicaURL. May be nil.
	Notify func(slot int, url string)
	// HeartbeatInterval is the liveness-probe period (0 = 250ms).
	HeartbeatInterval time.Duration
	// HeartbeatMisses is how many consecutive failed probes declare an
	// instance hung and kill it (0 = 4).
	HeartbeatMisses int
	// RestartBackoff is the pause before respawning a dead instance
	// (0 = 100ms) — enough to keep a crash loop from burning a core,
	// short enough that the breaker cooldown outlives it.
	RestartBackoff time.Duration
	// HTTP issues heartbeat probes (nil = http.DefaultClient).
	HTTP *http.Client
	// Obs counts restarts. May be nil.
	Obs *obs.Observer
}

func (sv *Supervisor) withDefaults() Supervisor {
	out := *sv
	if out.HeartbeatInterval <= 0 {
		out.HeartbeatInterval = 250 * time.Millisecond
	}
	if out.HeartbeatMisses <= 0 {
		out.HeartbeatMisses = 4
	}
	if out.RestartBackoff <= 0 {
		out.RestartBackoff = 100 * time.Millisecond
	}
	if out.HTTP == nil {
		out.HTTP = http.DefaultClient
	}
	return out
}

// Run supervises `slots` replica slots until ctx is canceled, then stops
// every live instance (gracefully where the handle supports it) and
// returns. An error is returned only if a slot could never be started.
func (sv *Supervisor) Run(ctx context.Context, slots int) error {
	cfg := sv.withDefaults()
	if cfg.Spawn == nil {
		return fmt.Errorf("fleet: Supervisor.Spawn is required")
	}
	errs := make(chan error, slots)
	for slot := 0; slot < slots; slot++ {
		go cfg.runSlot(ctx, slot, errs)
	}
	var firstErr error
	for i := 0; i < slots; i++ {
		if err := <-errs; err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// runSlot is one slot's lifecycle loop: spawn → announce → watch → mourn →
// backoff → respawn, until the context ends.
func (sv *Supervisor) runSlot(ctx context.Context, slot int, done chan<- error) {
	first := true
	for {
		if ctx.Err() != nil {
			done <- nil
			return
		}
		h, err := sv.Spawn(slot)
		if err != nil {
			if first {
				// A slot that cannot start even once is a configuration
				// error, not a fault to ride through.
				done <- fmt.Errorf("fleet: slot %d: %w", slot, err)
				return
			}
			sv.sleep(ctx, sv.RestartBackoff)
			continue
		}
		first = false
		if sv.Notify != nil {
			sv.Notify(slot, h.URL())
		}

		died := sv.watch(ctx, slot, h)
		if sv.Notify != nil {
			sv.Notify(slot, "")
		}
		if !died {
			// Context over: stop the healthy instance and exit the loop.
			sv.stop(h)
			done <- nil
			return
		}
		if mt := sv.meter(); mt != nil {
			mt.Counter("scaltool_fleet_restarts_total", "replica instances restarted by the supervisor",
				"slot", strconv.Itoa(slot)).Inc()
		}
		sv.sleep(ctx, sv.RestartBackoff)
	}
}

// watch blocks until the instance dies (true) or the context ends (false).
// Death is either the instance exiting on its own (Done closes) or failing
// HeartbeatMisses consecutive health probes — a hung process looks exactly
// like this, and the only cure is a kill.
func (sv *Supervisor) watch(ctx context.Context, slot int, h Handle) bool {
	t := time.NewTicker(sv.HeartbeatInterval)
	defer t.Stop()
	misses := 0
	for {
		select {
		case <-ctx.Done():
			return false
		case <-h.Done():
			return true
		case <-t.C:
			if sv.heartbeat(ctx, h.URL()) {
				misses = 0
				continue
			}
			misses++
			if misses >= sv.HeartbeatMisses {
				h.Kill()
				<-h.Done()
				return true
			}
		}
	}
}

// heartbeat reports whether one health probe succeeded. A draining 503
// counts as alive — the instance is shutting down deliberately; Done will
// close when it actually exits.
func (sv *Supervisor) heartbeat(ctx context.Context, url string) bool {
	pctx, cancel := context.WithTimeout(ctx, sv.HeartbeatInterval)
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, http.MethodGet, url+"/v1/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := sv.HTTP.Do(req)
	if err != nil {
		return false
	}
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusServiceUnavailable
}

// stop ends a live instance at context teardown, draining if it can.
func (sv *Supervisor) stop(h Handle) {
	if s, ok := h.(shutdowner); ok {
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if s.Shutdown(sctx) == nil {
			return
		}
	}
	h.Kill()
	<-h.Done()
}

func (sv *Supervisor) sleep(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}

func (sv *Supervisor) meter() *obs.Metrics {
	if sv.Obs == nil {
		return nil
	}
	return sv.Obs.Metrics
}
