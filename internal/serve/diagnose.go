package serve

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime/debug"
	"sync"
	"time"

	"scaltool/internal/admission"
	"scaltool/internal/campaign"
	"scaltool/internal/diagnose"
	"scaltool/internal/obs"
)

// POST /v1/diagnose: the root-cause endpoint. It takes the same request
// document as /v1/analyze (raw_tm is ignored — diagnosis reads the
// simulator's ground truth, not the fitted model), runs the campaign's
// base-run sweep through the shared run cache, overlays the per-region
// attribution on the program structure graph, and returns the ranked
// culprit report (diagnose.Report). Identical requests get byte-identical
// bodies, served from a bounded response cache keyed by the normalized
// document — a hit costs no admission slot and no simulation.

// diagCacheCapacity bounds the remembered diagnose response bodies. A
// report for a 32-processor campaign is a few tens of kilobytes, so the
// cache tops out around a few megabytes.
const diagCacheCapacity = 256

// responseCache is a bounded FIFO map of encoded response bodies, keyed by
// the content address of the normalized request document.
type responseCache struct {
	mu    sync.Mutex
	items map[string][]byte
	order []string
}

func (c *responseCache) get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	b, ok := c.items[key]
	return b, ok
}

func (c *responseCache) put(key string, body []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.items == nil {
		c.items = make(map[string][]byte, diagCacheCapacity)
	}
	if _, ok := c.items[key]; ok {
		return
	}
	if len(c.order) >= diagCacheCapacity {
		delete(c.items, c.order[0])
		c.order = c.order[1:]
	}
	c.items[key] = body
	c.order = append(c.order, key)
}

// diagnoseCacheKey is the response-cache identity of a normalized
// (post-validate, defaults applied) request document, version-prefixed so
// a report-format change never serves stale bodies across an upgrade.
func diagnoseCacheKey(req *Request) string {
	doc, _ := json.Marshal(req)
	h := sha256.New()
	h.Write([]byte("scaltool-diagnose-v1\x00"))
	h.Write(doc)
	return hex.EncodeToString(h.Sum(nil)[:16])
}

func (s *Server) handleDiagnose(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	rid := requestID(r)
	w.Header().Set("X-Request-Id", rid)
	code, ecode, err := s.serveDiagnose(w, r, rid, start)
	if err != nil {
		writeError(w, code, ecode, "%s", err)
	}
	s.countRequest("/v1/diagnose", code, start)
}

// serveDiagnose handles one diagnosis request, mirroring serveAnalyze's
// gate order; the response cache sits after validation (the key is the
// normalized document) and before admission (a hit must not burn a queue
// slot or ledger budget).
func (s *Server) serveDiagnose(w http.ResponseWriter, r *http.Request, rid string, start time.Time) (int, string, error) {
	var req Request
	if code, ecode, err := s.decodeRequest(w, r, &req); err != nil {
		return code, ecode, err
	}
	rv, rej := s.validate(&req)
	if rej != nil {
		s.countRejection(rej.Status)
		return rej.Status, rej.Code, rej
	}
	if req.Procs < 2 {
		s.countRejection(http.StatusUnprocessableEntity)
		return http.StatusUnprocessableEntity, "bad_procs",
			fmt.Errorf("diagnosis needs a multiprocessor sweep; \"procs\" must be ≥ 2")
	}
	qkey := "diag:" + requestKey(&req)
	if reason, ok := s.quarantine.Lookup(qkey); ok {
		if mt := s.meter(); mt != nil {
			mt.ServeQuarantined().Inc()
		}
		s.countRejection(http.StatusUnprocessableEntity)
		return http.StatusUnprocessableEntity, "quarantined",
			fmt.Errorf("an identical request previously crashed the diagnosis pipeline (%s); refusing to repeat it", reason)
	}
	cost, rej := s.estimateDiagnose(rv)
	if rej != nil {
		s.countRejection(rej.Status)
		return rej.Status, rej.Code, rej
	}

	ckey := diagnoseCacheKey(&req)
	if body, ok := s.diagCache.get(ckey); ok {
		if mt := s.meter(); mt != nil {
			mt.DiagnoseCache("hit").Inc()
		}
		writeBody(w, body)
		return http.StatusOK, "", nil
	}
	if mt := s.meter(); mt != nil {
		mt.DiagnoseCache("miss").Inc()
	}

	ctx, release, code, ecode, err := s.admit(w, r, cost, rid)
	if err != nil {
		return code, ecode, err
	}
	defer release()

	rep, err := s.diagnoseIsolated(ctx, &req, rv, qkey)
	if err != nil {
		return s.triageExecError(ctx, &req, err)
	}
	body, err := encodeReport(rep)
	if err != nil {
		return http.StatusInternalServerError, "failed", fmt.Errorf("encoding report: %v", err)
	}
	s.diagCache.put(ckey, body)
	writeBody(w, body)
	obs.Log(ctx).Info("diagnosis served", "app", req.Ident(), "procs", req.Procs,
		"culprits", len(rep.Culprits), "elapsed", time.Since(start))
	return http.StatusOK, "", nil
}

// estimateDiagnose prices the resolved request against the per-request
// budget, with the diagnosis surcharge on top of the plain campaign.
func (s *Server) estimateDiagnose(rv *resolved) (admission.Cost, *admission.Rejection) {
	budget := s.Budget()
	cost, rej := budget.EstimateDiagnose(rv.cfg, rv.app, rv.plan, s.opts.SimWorkers)
	if rej != nil {
		return admission.Cost{}, rej
	}
	if rej := budget.CheckRequest(cost); rej != nil {
		return admission.Cost{}, rej
	}
	return cost, nil
}

// diagnoseIsolated runs the diagnosis with the same panic isolation as
// analyzeIsolated: a panic is converted to *panicFault and the request
// shape quarantined instead of killing the daemon.
func (s *Server) diagnoseIsolated(ctx context.Context, req *Request, rv *resolved, qkey string) (rep *diagnose.Report, err error) {
	defer func() {
		if r := recover(); r != nil {
			s.quarantinePanic(ctx, qkey, r, debug.Stack())
			rep, err = nil, &panicFault{value: r, stack: debug.Stack()}
		}
	}()
	if s.testHookRun != nil {
		s.testHookRun()
	}
	rep, err = s.diagnose(ctx, req, rv)
	var pe interface{ PanicValue() (any, []byte) }
	if errors.As(err, &pe) {
		v, stack := pe.PanicValue()
		s.quarantinePanic(ctx, qkey, v, stack)
		return nil, &panicFault{value: v, stack: stack}
	}
	return rep, err
}

// diagnose runs the full pipeline for one resolved request: campaign
// (through the shared run cache) → attribution family → structure graph →
// ranked report, self-verified before anything is sent.
func (s *Server) diagnose(ctx context.Context, req *Request, rv *resolved) (*diagnose.Report, error) {
	rn := &campaign.Runner{
		Cfg:     rv.cfg,
		Workers: s.opts.SimWorkers,
		Cache:   s.opts.Cache,
	}
	res, err := rn.Execute(ctx, rv.app, rv.plan)
	if err != nil {
		return nil, err
	}
	fam, err := diagnose.FromCampaign(res)
	if err != nil {
		return nil, err
	}
	nmax := rv.plan.ProcCounts[len(rv.plan.ProcCounts)-1]
	prog, err := rv.app.Build(rv.cfg, nmax, rv.plan.S0)
	if err != nil {
		return nil, fmt.Errorf("building structure graph: %w", err)
	}
	rep, err := diagnose.Run(ctx, diagnose.BuildGraph(prog), fam, diagnose.Options{})
	if err != nil {
		return nil, err
	}
	// Name the workload as the request named it (a user program diagnoses
	// as "user:<name>", matching /v1/analyze responses).
	rep.App = req.Ident()
	rep.Machine = req.Machine
	if err := rep.Verify(); err != nil {
		return nil, fmt.Errorf("report failed self-verification: %w", err)
	}
	return rep, nil
}

// encodeReport serializes a report; like encodeResponse it relies on
// encoding/json's deterministic struct encoding for byte-identical bodies.
func encodeReport(rep *diagnose.Report) ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	if err := enc.Encode(rep); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
