package serve

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"scaltool/internal/obs"
	"scaltool/internal/runcache"
)

// BenchmarkServeAnalyze measures the /v1/analyze endpoint end to end over
// HTTP — the serving-path baseline recorded in BENCH_serve.json:
//
//	uncached — every request simulates its full campaign (no cache wired)
//	hit      — a warm run cache answers without any simulation
//
// The acceptance bar is a ≥ 10× hit speedup over uncached.
func BenchmarkServeAnalyze(b *testing.B) {
	req := []byte(`{"app":"swim","procs":8}`)
	post := func(b *testing.B, url string) {
		b.Helper()
		resp, err := http.Post(url+"/v1/analyze", "application/json", bytes.NewReader(req))
		if err != nil {
			b.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d: %s", resp.StatusCode, body)
		}
	}

	b.Run("uncached", func(b *testing.B) {
		s := New(Options{Workers: 1, Obs: &obs.Observer{Metrics: obs.NewMetrics()}})
		ts := httptest.NewServer(s.Handler())
		defer ts.Close()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			post(b, ts.URL)
		}
	})
	b.Run("hit", func(b *testing.B) {
		s := New(Options{
			Workers: 1,
			Cache:   runcache.New(runcache.Options{}),
			Obs:     &obs.Observer{Metrics: obs.NewMetrics()},
		})
		ts := httptest.NewServer(s.Handler())
		defer ts.Close()
		post(b, ts.URL) // warm the cache
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			post(b, ts.URL)
		}
	})
}
