// Package serve is the scaltoold analysis service: Scal-Tool's model as an
// HTTP endpoint, built on the content-addressed run cache.
//
// The simulator is deterministic, so every (machine, program) pair is a pure
// function — which makes analyses cacheable and the service horizontally
// boring: POST /v1/analyze runs the Table 3 campaign for the requested
// application through internal/runcache (repeated or concurrent identical
// requests share one set of simulations), fits the model, and returns the
// speedup curve and cycle breakdown as JSON. Identical requests produce
// byte-identical response bodies whether they were simulated or served from
// cache.
//
// Overload policy, in order:
//
//  1. Admission: at most Workers analyses execute concurrently; at most
//     QueueDepth more may wait for a worker. A request beyond that is shed
//     immediately with 429 and a Retry-After hint — queueing it would only
//     convert overload into latency.
//  2. Deadline: every admitted request runs under RequestTimeout; a request
//     that cannot finish in time returns 503 (waiting) or 504 (running).
//  3. Drain: Drain flips /v1/healthz to 503 and sheds new analyses with 503
//     while in-flight ones finish — the SIGTERM half of scaltoold's
//     graceful shutdown (the other half is http.Server.Shutdown).
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"scaltool/internal/obs"
	"scaltool/internal/runcache"
)

// DefaultRequestTimeout bounds one analysis when Options.RequestTimeout is
// unset.
const DefaultRequestTimeout = 60 * time.Second

// Options configures a Server.
type Options struct {
	// Workers bounds concurrently executing analyses (0 = GOMAXPROCS).
	Workers int
	// QueueDepth bounds analyses admitted beyond the executing ones, waiting
	// for a worker (0 = 2×Workers). A request past Workers+QueueDepth is
	// shed with 429.
	QueueDepth int
	// RequestTimeout is the per-request deadline (0 = DefaultRequestTimeout).
	RequestTimeout time.Duration
	// MaxProcs caps the processor count a request may analyze (0 = 64): the
	// plan's cost grows as 2^n, so an unbounded request is a DoS.
	MaxProcs int
	// SimWorkers bounds the concurrent simulated runs inside one analysis
	// (0 = GOMAXPROCS). With several analysis workers a smaller value keeps
	// one big campaign from starving the rest.
	SimWorkers int
	// Cache is the shared run cache; nil disables caching (every request
	// simulates from scratch).
	Cache *runcache.Cache
	// Obs instruments the service: scaltool_serve_* metrics, request logs,
	// and the /metrics endpoint. May be nil.
	Obs *obs.Observer
}

// Server serves the analysis API. Create with New.
type Server struct {
	opts Options

	workers  chan struct{} // executing-analysis slots
	admitted chan struct{} // admission slots: Workers + QueueDepth
	draining atomic.Bool
	inflight sync.WaitGroup

	mux *http.ServeMux

	// testHookRun, when set, runs while the worker slot is held, before the
	// analysis — tests block here to hold the pool at a known occupancy.
	testHookRun func()
}

// New builds a Server.
func New(opts Options) *Server {
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 2 * opts.Workers
	}
	if opts.RequestTimeout <= 0 {
		opts.RequestTimeout = DefaultRequestTimeout
	}
	if opts.MaxProcs <= 0 {
		opts.MaxProcs = 64
	}
	s := &Server{
		opts:     opts,
		workers:  make(chan struct{}, opts.Workers),
		admitted: make(chan struct{}, opts.Workers+opts.QueueDepth),
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/v1/analyze", s.handleAnalyze)
	s.mux.HandleFunc("/v1/healthz", s.handleHealthz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	return s
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Drain puts the server into shutdown: /v1/healthz reports 503 (so a load
// balancer stops routing here), new analyses are refused with 503, and Drain
// blocks until every in-flight analysis finishes or ctx expires. It is safe
// to call more than once.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	if mt := s.meter(); mt != nil {
		mt.Gauge("scaltool_serve_draining", "1 while the server is draining for shutdown").Set(1)
	}
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("serve: drain: %w", ctx.Err())
	}
}

func (s *Server) meter() *obs.Metrics {
	if s.opts.Obs == nil {
		return nil
	}
	return s.opts.Obs.Metrics
}

// obsContext installs the server's observer in a request context.
func (s *Server) obsContext(ctx context.Context) context.Context {
	if s.opts.Obs == nil {
		return ctx
	}
	return obs.NewContext(ctx, s.opts.Obs)
}

// countRequest records one finished request in the metrics.
func (s *Server) countRequest(route string, code int, start time.Time) {
	mt := s.meter()
	if mt == nil {
		return
	}
	mt.Counter("scaltool_serve_requests_total", "API requests by route and status code",
		"route", route, "code", strconv.Itoa(code)).Inc()
	if route == "/v1/analyze" {
		mt.Histogram("scaltool_serve_request_seconds", "end-to-end /v1/analyze latency",
			obs.LatencyBuckets).Observe(time.Since(start).Seconds())
	}
}

// writeError emits the service's uniform JSON error shape.
func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)}) //scalvet:ignore error responses run once per failed request, off the steady-state path
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	w.Header().Set("Content-Type", "application/json")
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, `{"status":"draining"}`)
		s.countRequest("/v1/healthz", http.StatusServiceUnavailable, start)
		return
	}
	fmt.Fprintln(w, `{"status":"ok"}`)
	s.countRequest("/v1/healthz", http.StatusOK, start)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	mt := s.meter()
	if mt == nil {
		http.Error(w, "metrics disabled", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := mt.WritePrometheus(w); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// maxBodyBytes bounds a request document; a plan request is a few hundred
// bytes, so anything near a megabyte is garbage.
const maxBodyBytes = 1 << 20

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	code, err := s.serveAnalyze(w, r, start)
	if err != nil {
		writeError(w, code, "%s", err)
	}
	s.countRequest("/v1/analyze", code, start)
}

// serveAnalyze handles one analysis request; it reports the response code
// and, for non-2xx, the error to send (nil when the response was written).
func (s *Server) serveAnalyze(w http.ResponseWriter, r *http.Request, start time.Time) (int, error) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		return http.StatusMethodNotAllowed, fmt.Errorf("use POST")
	}
	if s.draining.Load() {
		w.Header().Set("Retry-After", "5")
		return http.StatusServiceUnavailable, fmt.Errorf("server is draining")
	}
	var req Request
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return http.StatusBadRequest, fmt.Errorf("decoding request: %v", err)
	}
	if err := s.validate(&req); err != nil {
		return http.StatusBadRequest, err
	}

	// Admission: a slot in the bounded queue, or immediate shedding. The
	// queue is not worth waiting for — a client retry later IS the queue.
	select {
	case s.admitted <- struct{}{}:
	default:
		if mt := s.meter(); mt != nil {
			mt.Counter("scaltool_serve_shed_total", "analyses shed because the admission queue was full").Inc()
		}
		w.Header().Set("Retry-After", retryAfter(s.opts.RequestTimeout))
		return http.StatusTooManyRequests, fmt.Errorf("overloaded: %d analyses executing or queued", cap(s.admitted))
	}
	defer func() { <-s.admitted }()
	s.inflight.Add(1)
	defer s.inflight.Done()

	ctx, cancel := context.WithTimeout(r.Context(), s.opts.RequestTimeout)
	defer cancel()
	ctx = s.obsContext(ctx)

	// A worker slot: the analysis itself is CPU-bound, so only Workers of
	// them may execute at once. Waiting burns the request's own deadline.
	select {
	case s.workers <- struct{}{}:
	case <-ctx.Done():
		return http.StatusServiceUnavailable, fmt.Errorf("timed out waiting for a worker: %v", ctx.Err())
	}
	defer func() { <-s.workers }()

	if mt := s.meter(); mt != nil {
		g := mt.Gauge("scaltool_serve_inflight", "analyses currently executing")
		g.Add(1)
		defer g.Add(-1)
	}
	if s.testHookRun != nil {
		s.testHookRun()
	}

	resp, err := s.analyze(ctx, &req)
	if err != nil {
		if ctx.Err() != nil {
			return http.StatusGatewayTimeout, fmt.Errorf("analysis exceeded its %s deadline", s.opts.RequestTimeout)
		}
		obs.Log(ctx).Error("analysis failed", "app", req.App, "err", err)
		return http.StatusInternalServerError, fmt.Errorf("analysis failed: %v", err)
	}
	body, err := encodeResponse(resp)
	if err != nil {
		return http.StatusInternalServerError, fmt.Errorf("encoding response: %v", err)
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(body)
	obs.Log(ctx).Info("analysis served", "app", req.App, "procs", req.Procs, "elapsed", time.Since(start))
	return http.StatusOK, nil
}

// retryAfter suggests a client back-off: half the request deadline, at least
// one second — by then at least some of the queue has drained.
func retryAfter(timeout time.Duration) string {
	secs := int(timeout.Seconds() / 2)
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}
