// Package serve is the scaltoold analysis service: Scal-Tool's model as an
// HTTP endpoint, built on the content-addressed run cache.
//
// The simulator is deterministic, so every (machine, program) pair is a pure
// function — which makes analyses cacheable and the service horizontally
// boring: POST /v1/analyze runs the Table 3 campaign for the requested
// application (or a user-submitted program spec) through internal/runcache,
// fits the model, and returns the speedup curve and cycle breakdown as JSON.
// Identical requests produce byte-identical response bodies whether they
// were simulated or served from cache.
//
// The service assumes hostile clients (DESIGN.md §13). Its status-code
// contract, in the order a request meets each gate:
//
//	405 — method other than POST.
//	429 — the server is draining, the admission queue is full, or the
//	      cost ledger is at its budget; Retry-After is derived from the
//	      observed drain rate.
//	400 — the document is not well-formed JSON for the request schema.
//	413 — the document, its dataset, or its predicted cost is over this
//	      server's per-request budget (internal/admission).
//	422 — the document is well-formed but semantically invalid: unknown
//	      app, bad processor count, an over-cap program spec — or a shape
//	      that previously panicked the pipeline and is quarantined.
//	503 — admitted, but no worker freed up within the request deadline.
//	504 — executing, but the analysis exceeded the request deadline.
//	500 — the analysis failed or panicked; a panic is isolated to the
//	      request, counted, and its request shape quarantined.
//
// Every error response is machine-readable: {"error": ..., "code": ...}.
package serve

import (
	"context"
	"crypto/rand"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"runtime"
	"runtime/debug"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"scaltool/internal/admission"
	"scaltool/internal/health"
	"scaltool/internal/obs"
	"scaltool/internal/runcache"
)

// DefaultRequestTimeout bounds one analysis when Options.RequestTimeout is
// unset.
const DefaultRequestTimeout = 60 * time.Second

// Options configures a Server.
type Options struct {
	// Workers bounds concurrently executing analyses (0 = GOMAXPROCS).
	Workers int
	// QueueDepth bounds analyses admitted beyond the executing ones, waiting
	// for a worker (0 = 2×Workers). A request past Workers+QueueDepth is
	// shed with 429.
	QueueDepth int
	// RequestTimeout is the per-request deadline (0 = DefaultRequestTimeout).
	RequestTimeout time.Duration
	// MaxProcs caps the processor count a request may analyze (0 = the
	// admission default): the plan's cost grows as 2^n, so an unbounded
	// request is a DoS. Overrides Budget.MaxProcs when set.
	MaxProcs int
	// SimWorkers bounds the concurrent simulated runs inside one analysis
	// (0 = GOMAXPROCS). With several analysis workers a smaller value keeps
	// one big campaign from starving the rest.
	SimWorkers int
	// Budget bounds what a request, and the server in aggregate, may cost
	// (zero fields take the admission defaults).
	Budget admission.Budget
	// Cache is the shared run cache; nil disables caching (every request
	// simulates from scratch).
	Cache *runcache.Cache
	// Obs instruments the service: scaltool_serve_* metrics, request logs,
	// and the /metrics endpoint. May be nil.
	Obs *obs.Observer
}

// quarantineCapacity bounds the remembered panicking request shapes.
const quarantineCapacity = 256

// Server serves the analysis API. Create with New.
type Server struct {
	opts Options

	workers    chan struct{} // executing-analysis slots
	admitted   chan struct{} // admission slots: Workers + QueueDepth
	ledger     *admission.Ledger
	quarantine *health.QuarantineSet
	drain      drainEstimator
	draining   atomic.Bool
	inflight   sync.WaitGroup
	diagCache  responseCache

	mux *http.ServeMux

	// testHookRun, when set, runs while the worker slot is held, before the
	// analysis — tests block here to hold the pool at a known occupancy.
	testHookRun func()
}

// New builds a Server.
func New(opts Options) *Server {
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 2 * opts.Workers
	}
	if opts.RequestTimeout <= 0 {
		opts.RequestTimeout = DefaultRequestTimeout
	}
	if opts.MaxProcs > 0 {
		opts.Budget.MaxProcs = opts.MaxProcs
	}
	s := &Server{
		opts:       opts,
		workers:    make(chan struct{}, opts.Workers),
		admitted:   make(chan struct{}, opts.Workers+opts.QueueDepth),
		ledger:     admission.NewLedger(opts.Budget),
		quarantine: health.NewQuarantineSet(quarantineCapacity),
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/v1/analyze", s.handleAnalyze)
	s.mux.HandleFunc("/v1/diagnose", s.handleDiagnose)
	s.mux.HandleFunc("/v1/healthz", s.handleHealthz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	return s
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Budget returns the server's effective admission budget.
func (s *Server) Budget() admission.Budget { return s.ledger.Budget() }

// Drain puts the server into shutdown: /v1/healthz reports 503 (so a load
// balancer stops routing here), new analyses are refused with 429 (the
// condition is retryable — against a peer, or here after a restart), and
// Drain blocks until every in-flight analysis finishes or ctx expires. It is
// safe to call more than once.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	if mt := s.meter(); mt != nil {
		mt.Gauge("scaltool_serve_draining", "1 while the server is draining for shutdown").Set(1)
	}
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("serve: drain: %w", ctx.Err())
	}
}

func (s *Server) meter() *obs.Metrics {
	if s.opts.Obs == nil {
		return nil
	}
	return s.opts.Obs.Metrics
}

// obsContext installs the server's observer in a request context.
func (s *Server) obsContext(ctx context.Context) context.Context {
	if s.opts.Obs == nil {
		return ctx
	}
	return obs.NewContext(ctx, s.opts.Obs)
}

// countRequest records one finished request in the metrics.
func (s *Server) countRequest(route string, code int, start time.Time) {
	mt := s.meter()
	if mt == nil {
		return
	}
	mt.Counter("scaltool_serve_requests_total", "API requests by route and status code",
		"route", route, "code", strconv.Itoa(code)).Inc()
	mt.RequestSeconds(route).Observe(time.Since(start).Seconds())
}

// countRejection records a 4xx admission refusal in the rejected-by-status
// family.
func (s *Server) countRejection(code int) {
	if mt := s.meter(); mt != nil {
		mt.ServeRejected(strconv.Itoa(code)).Inc()
	}
}

// apiError is the uniform JSON error body. Code is a stable machine-readable
// cause; Error is for humans.
type apiError struct {
	Error string `json:"error"`
	Code  string `json:"code,omitempty"`
}

// writeError emits the service's uniform JSON error shape.
func writeError(w http.ResponseWriter, status int, code string, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(apiError{Error: fmt.Sprintf(format, args...), Code: code}) //scalvet:ignore error responses run once per failed request, off the steady-state path
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	w.Header().Set("Content-Type", "application/json")
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, `{"status":"draining"}`)
		s.countRequest("/v1/healthz", http.StatusServiceUnavailable, start)
		return
	}
	fmt.Fprintln(w, `{"status":"ok"}`)
	s.countRequest("/v1/healthz", http.StatusOK, start)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	mt := s.meter()
	if mt == nil {
		http.Error(w, "metrics disabled", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := mt.WritePrometheus(w); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		s.countRequest("/metrics", http.StatusInternalServerError, start)
		return
	}
	s.countRequest("/metrics", http.StatusOK, start)
}

// maxBodyBytes bounds a request document. A plan request is a few hundred
// bytes and a full program spec a few tens of kilobytes; anything near a
// megabyte is garbage.
const maxBodyBytes = 1 << 20

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	rid := requestID(r)
	w.Header().Set("X-Request-Id", rid)
	code, ecode, err := s.serveAnalyze(w, r, rid, start)
	if err != nil {
		writeError(w, code, ecode, "%s", err)
	}
	s.countRequest("/v1/analyze", code, start)
}

// requestID resolves the request's end-to-end trace identity: a
// well-formed client-supplied X-Request-Id is honored (so a caller can
// correlate across services), anything else gets a fresh random one. The
// ID travels as a response header, an obs span attribute on every span the
// request produces (serve → campaign → sim → diagnose), and a slog field —
// never in a response body, which must stay byte-identical for identical
// documents.
func requestID(r *http.Request) string {
	id := r.Header.Get("X-Request-Id")
	if id != "" && len(id) <= 64 {
		ok := true
		for i := 0; i < len(id); i++ {
			c := id[i]
			if !('0' <= c && c <= '9' || 'a' <= c && c <= 'z' || 'A' <= c && c <= 'Z' || c == '-' || c == '_') {
				ok = false
				break
			}
		}
		if ok {
			return id
		}
	}
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "r0000000000000000"
	}
	return "r" + hex.EncodeToString(b[:])
}

// decodeRequest decodes and gates one request document, with the shared
// pre-admission refusals: method, draining, body size, malformed JSON.
func (s *Server) decodeRequest(w http.ResponseWriter, r *http.Request, req *Request) (int, string, error) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		return http.StatusMethodNotAllowed, "method", fmt.Errorf("use POST")
	}
	if s.draining.Load() {
		if mt := s.meter(); mt != nil {
			mt.ServeShed("drain").Inc()
		}
		w.Header().Set("Retry-After", s.retryAfter())
		return http.StatusTooManyRequests, "draining", fmt.Errorf("server is draining")
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.countRejection(http.StatusRequestEntityTooLarge)
			return http.StatusRequestEntityTooLarge, "body_too_large",
				fmt.Errorf("request body exceeds %d bytes", tooBig.Limit)
		}
		s.countRejection(http.StatusBadRequest)
		return http.StatusBadRequest, "malformed", fmt.Errorf("decoding request: %v", err)
	}
	return 0, "", nil
}

// admit walks an estimated request through the server's admission gates —
// queue slot, cost ledger, in-flight accounting, request deadline, worker
// slot, in-flight gauge — and returns the execution context plus a release
// function undoing all of it in LIFO order (exactly the defer order the
// gates would have as inline defers). On refusal the partial state is
// already undone and release is nil. rid is the request's trace identity,
// installed on the context for every span and log line downstream.
func (s *Server) admit(w http.ResponseWriter, r *http.Request, cost admission.Cost, rid string) (context.Context, func(), int, string, error) {
	// Admission: a slot in the bounded queue, or immediate shedding. The
	// queue is not worth waiting for — a client retry later IS the queue.
	select {
	case s.admitted <- struct{}{}:
	default:
		if mt := s.meter(); mt != nil {
			mt.ServeShed("queue").Inc()
		}
		w.Header().Set("Retry-After", s.retryAfter())
		return nil, nil, http.StatusTooManyRequests, "overloaded",
			fmt.Errorf("overloaded: %d analyses executing or queued", cap(s.admitted))
	}
	undo := make([]func(), 0, 8)
	undo = append(undo, func() { <-s.admitted })
	release := func() {
		for i := len(undo) - 1; i >= 0; i-- {
			undo[i]()
		}
	}

	// The cost ledger: this request fits its own budget, but does the server
	// have room for it on top of everything else admitted?
	if rej := s.ledger.TryAdmit(cost); rej != nil {
		if mt := s.meter(); mt != nil {
			mt.ServeShed("ledger").Inc()
		}
		w.Header().Set("Retry-After", s.retryAfter())
		release()
		return nil, nil, rej.Status, rej.Code, rej
	}
	undo = append(undo, func() { s.ledger.Release(cost) })
	s.publishLedger()
	undo = append(undo, s.publishLedger)

	s.inflight.Add(1)
	undo = append(undo, s.inflight.Done)
	undo = append(undo, func() { s.drain.observe(time.Now()) })

	ctx, cancel := context.WithTimeout(r.Context(), s.opts.RequestTimeout)
	undo = append(undo, cancel)
	ctx = s.obsContext(ctx)
	if rid != "" {
		ctx = obs.WithRequestID(ctx, rid)
		ctx = obs.WithLogger(ctx, obs.Log(ctx).With("req_id", rid))
	}

	// A worker slot: the analysis itself is CPU-bound, so only Workers of
	// them may execute at once. Waiting burns the request's own deadline.
	select {
	case s.workers <- struct{}{}:
	case <-ctx.Done():
		release()
		return nil, nil, http.StatusServiceUnavailable, "no_worker",
			fmt.Errorf("timed out waiting for a worker: %v", ctx.Err())
	}
	undo = append(undo, func() { <-s.workers })

	if mt := s.meter(); mt != nil {
		g := mt.Gauge("scaltool_serve_inflight", "analyses currently executing")
		g.Add(1)
		undo = append(undo, func() { g.Add(-1) })
	}
	return ctx, release, 0, "", nil
}

// serveAnalyze handles one analysis request; it reports the response status
// and, for non-2xx, the machine-readable code and error to send (nil error
// when the response was already written).
func (s *Server) serveAnalyze(w http.ResponseWriter, r *http.Request, rid string, start time.Time) (int, string, error) {
	var req Request
	if code, ecode, err := s.decodeRequest(w, r, &req); err != nil {
		return code, ecode, err
	}

	// Validation and admission: semantic checks (422), then predicted cost
	// against the per-request budget (413) — all before the request may
	// occupy a queue slot.
	rv, rej := s.validate(&req)
	if rej != nil {
		s.countRejection(rej.Status)
		return rej.Status, rej.Code, rej
	}
	qkey := requestKey(&req)
	if reason, ok := s.quarantine.Lookup(qkey); ok {
		if mt := s.meter(); mt != nil {
			mt.ServeQuarantined().Inc()
		}
		s.countRejection(http.StatusUnprocessableEntity)
		return http.StatusUnprocessableEntity, "quarantined",
			fmt.Errorf("an identical request previously crashed the analysis pipeline (%s); refusing to repeat it", reason)
	}
	cost, rej := s.estimate(rv)
	if rej != nil {
		s.countRejection(rej.Status)
		return rej.Status, rej.Code, rej
	}

	ctx, release, code, ecode, err := s.admit(w, r, cost, rid)
	if err != nil {
		return code, ecode, err
	}
	defer release()

	resp, err := s.analyzeIsolated(ctx, &req, rv, qkey)
	if err != nil {
		return s.triageExecError(ctx, &req, err)
	}
	body, err := encodeResponse(resp)
	if err != nil {
		return http.StatusInternalServerError, "failed", fmt.Errorf("encoding response: %v", err)
	}
	writeBody(w, body)
	obs.Log(ctx).Info("analysis served", "app", req.Ident(), "procs", req.Procs, "elapsed", time.Since(start))
	return http.StatusOK, "", nil
}

// triageExecError maps an execution failure to the status contract: an
// isolated panic is a 500 "panic" (the shape is already quarantined), a
// blown deadline a 504, anything else a 500 "failed".
func (s *Server) triageExecError(ctx context.Context, req *Request, err error) (int, string, error) {
	var pf *panicFault
	if errors.As(err, &pf) {
		obs.Log(ctx).Error("analysis panicked", "app", req.Ident(), "panic", pf.value)
		return http.StatusInternalServerError, "panic",
			fmt.Errorf("analysis panicked; this request shape is now quarantined")
	}
	if ctx.Err() != nil {
		return http.StatusGatewayTimeout, "deadline",
			fmt.Errorf("analysis exceeded its %s deadline", s.opts.RequestTimeout)
	}
	obs.Log(ctx).Error("analysis failed", "app", req.Ident(), "err", err)
	return http.StatusInternalServerError, "failed", fmt.Errorf("analysis failed: %v", err)
}

// writeBody sends a fully-built 200 response body.
func writeBody(w http.ResponseWriter, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(body)
}

// panicFault wraps a recovered analysis panic as an error.
type panicFault struct {
	value any
	stack []byte
}

func (p *panicFault) Error() string { return fmt.Sprintf("analysis panicked: %v", p.value) }

// analyzeIsolated runs the analysis with panic isolation: a panic anywhere
// in the handler's half of the pipeline (campaign worker panics are already
// recovered by the campaign and surface as errors) is converted to a
// *panicFault instead of killing the daemon, counted, and its request shape
// quarantined so a repeat is refused cheaply with 422.
func (s *Server) analyzeIsolated(ctx context.Context, req *Request, rv *resolved, qkey string) (resp *Response, err error) {
	defer func() {
		if r := recover(); r != nil {
			s.quarantinePanic(ctx, qkey, r, debug.Stack())
			resp, err = nil, &panicFault{value: r, stack: debug.Stack()}
		}
	}()
	// The test hook runs inside the isolation scope: tests use it both to
	// hold a worker slot at a known occupancy and to simulate an analysis
	// panic.
	if s.testHookRun != nil {
		s.testHookRun()
	}
	resp, err = s.analyze(ctx, req, rv)
	// A campaign worker goroutine's panic is recovered off-handler and
	// surfaces here as a *campaign.PanicError; treat it exactly like a
	// same-goroutine panic.
	var pe interface{ PanicValue() (any, []byte) }
	if errors.As(err, &pe) {
		v, stack := pe.PanicValue()
		s.quarantinePanic(ctx, qkey, v, stack)
		return nil, &panicFault{value: v, stack: stack}
	}
	return resp, err
}

// quarantinePanic counts an isolated panic and quarantines its request
// shape so a repeat is refused cheaply with 422.
func (s *Server) quarantinePanic(ctx context.Context, qkey string, value any, stack []byte) {
	if mt := s.meter(); mt != nil {
		mt.ServePanics().Inc()
	}
	s.quarantine.Add(qkey, fmt.Sprintf("panic: %v", value)) //scalvet:ignore runs once per panicking request, off the steady-state path
	obs.Log(ctx).Error("quarantined panicking request shape", "key", qkey, "panic", value, "stack", string(stack))
}

// requestKey is the quarantine identity of a request: a digest of its
// normalized (defaults applied) document, so the same hostile shape is
// recognized however it arrives.
func requestKey(req *Request) string {
	doc, _ := json.Marshal(req)
	sum := sha256.Sum256(doc)
	return hex.EncodeToString(sum[:8])
}

// publishLedger exports the ledger occupancy gauges.
func (s *Server) publishLedger() {
	mt := s.meter()
	if mt == nil {
		return
	}
	cycles, bytes, _ := s.ledger.InFlight()
	mt.AdmittedCycles().Set(cycles)
	mt.AdmittedBytes().Set(float64(bytes))
}

// drainEstimator tracks the observed inter-completion gap of analyses (an
// EWMA) so 429s can tell clients when a slot will plausibly be free instead
// of quoting a constant.
type drainEstimator struct {
	mu          sync.Mutex
	lastDone    time.Time
	avgInterval float64 // seconds between completions
}

// observe records one request completion.
func (d *drainEstimator) observe(now time.Time) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.lastDone.IsZero() {
		gap := now.Sub(d.lastDone).Seconds()
		if d.avgInterval == 0 {
			d.avgInterval = gap
		} else {
			d.avgInterval = 0.7*d.avgInterval + 0.3*gap
		}
	}
	d.lastDone = now
}

// interval returns the estimated seconds between completions, or 0 before
// any completion pair has been observed.
func (d *drainEstimator) interval() float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.avgInterval
}

// coldStartRetrySecs is the Retry-After quoted while the drain estimator
// has no data (fewer than two completions since startup). The EWMA needs a
// completion *pair* before it can predict anything; quoting half the
// request deadline there — up to 30s under the defaults — told the very
// first burst of shed clients to go away for ages when the realistic wait
// was one analysis. A short optimistic floor is the right cold-start bias:
// a too-early retry costs one cheap 429, a too-late one idles the server.
const coldStartRetrySecs = 2

// retryAfterSecs converts queue occupancy and the observed drain rate into a
// Retry-After hint: the predicted time for the queue's head room to open up,
// clamped to [1, fallback/2]. With no observations yet (cold start) it
// returns coldStartRetrySecs, still clamped to the same ceiling.
func retryAfterSecs(occupancy int, interval float64, fallback time.Duration) int {
	max := int(fallback.Seconds() / 2)
	if max < 1 {
		max = 1
	}
	if interval <= 0 {
		if coldStartRetrySecs < max {
			return coldStartRetrySecs
		}
		return max
	}
	secs := int(math.Ceil(interval * float64(occupancy+1)))
	if secs < 1 {
		secs = 1
	}
	if secs > max {
		secs = max
	}
	return secs
}

// retryAfter renders the derived Retry-After header value for a 429.
func (s *Server) retryAfter() string {
	return strconv.Itoa(retryAfterSecs(len(s.admitted), s.drain.interval(), s.opts.RequestTimeout))
}
