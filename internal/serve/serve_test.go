package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"scaltool/internal/obs"
	"scaltool/internal/runcache"
)

// newTestServer builds a Server plus its observer so tests can read the
// scaltool_* metric series directly.
func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server, *obs.Metrics) {
	t.Helper()
	mt := obs.NewMetrics()
	opts.Obs = &obs.Observer{Metrics: mt}
	s := New(opts)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts, mt
}

func analyzeBody(app string, procs int) *bytes.Reader {
	return bytes.NewReader([]byte(fmt.Sprintf(`{"app":%q,"procs":%d}`, app, procs)))
}

func postAnalyze(t *testing.T, url string, body io.Reader) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/v1/analyze", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

func simRuns(mt *obs.Metrics) uint64 {
	return mt.Counter("scaltool_sim_runs_total", "simulated runs completed").Value()
}

// TestAnalyzeEndToEnd drives one full analysis over HTTP and sanity-checks
// the response document.
func TestAnalyzeEndToEnd(t *testing.T) {
	_, ts, _ := newTestServer(t, Options{Workers: 2})
	resp, body := postAnalyze(t, ts.URL, analyzeBody("swim", 4))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out Response
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("undecodable response: %v\n%s", err, body)
	}
	if out.App != "swim" || out.Procs != 4 || out.S0 == 0 {
		t.Fatalf("response header wrong: %+v", out)
	}
	if len(out.Speedups) != 3 || len(out.Breakdown) != 3 { // procs 1, 2, 4
		t.Fatalf("speedups=%d breakdown=%d, want 3 each", len(out.Speedups), len(out.Breakdown))
	}
	if out.Model.CPI0 <= 0 || out.Model.Tm1 <= 0 {
		t.Fatalf("model params not fitted: %+v", out.Model)
	}
	last := out.Speedups[len(out.Speedups)-1]
	if last.Procs != 4 || last.Speedup <= 1 {
		t.Fatalf("4-processor speedup %v, want > 1", last)
	}
}

// TestAnalyzeCacheHitByteIdentical is the acceptance test for the serving
// path: the second identical request must be served entirely from the run
// cache — zero scaltool_sim_runs_total increments — with a response body
// byte-identical to the uncached one.
func TestAnalyzeCacheHitByteIdentical(t *testing.T) {
	_, ts, mt := newTestServer(t, Options{Workers: 2, Cache: runcache.New(runcache.Options{})})

	resp1, body1 := postAnalyze(t, ts.URL, analyzeBody("swim", 4))
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("first request: %d: %s", resp1.StatusCode, body1)
	}
	cold := simRuns(mt)
	if cold == 0 {
		t.Fatal("first analysis simulated nothing")
	}

	resp2, body2 := postAnalyze(t, ts.URL, analyzeBody("swim", 4))
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("second request: %d: %s", resp2.StatusCode, body2)
	}
	if got := simRuns(mt); got != cold {
		t.Fatalf("cache hit ran %d simulations, want 0", got-cold)
	}
	if !bytes.Equal(body1, body2) {
		t.Fatalf("cached response differs from fresh:\n%s\nvs\n%s", body1, body2)
	}
	if hits := mt.Counter("scaltool_runcache_hits_total", "run-cache hits by tier", "tier", "mem").Value(); hits == 0 {
		t.Fatal("no run-cache memory hits recorded")
	}
}

// TestConcurrentIdenticalRequestsShareSimulations checks the singleflight
// path end to end: N identical concurrent requests cost one campaign's worth
// of simulations, and all bodies are byte-identical.
func TestConcurrentIdenticalRequestsShareSimulations(t *testing.T) {
	const n = 6
	_, ts, mt := newTestServer(t, Options{
		Workers: n, QueueDepth: n, Cache: runcache.New(runcache.Options{}),
	})

	bodies := make([][]byte, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, b := postAnalyze(t, ts.URL, analyzeBody("swim", 4))
			if resp.StatusCode == http.StatusOK {
				bodies[i] = b
			}
		}(i)
	}
	wg.Wait()
	var ok int
	for _, b := range bodies {
		if b != nil {
			ok++
		}
	}
	if ok != n {
		t.Fatalf("%d of %d concurrent requests succeeded", ok, n)
	}
	for i := 1; i < n; i++ {
		if !bytes.Equal(bodies[0], bodies[i]) {
			t.Fatalf("request %d body differs from request 0", i)
		}
	}
	// One campaign at swim/4 runs a fixed job count; concurrent identical
	// campaigns share those simulations through the cache's singleflight.
	// (An exact equality would race with the first campaign completing
	// before the others start — the bound is what matters: far below n×.)
	cold := simRuns(mt)
	resp, _ := postAnalyze(t, ts.URL, analyzeBody("hydro2d", 4))
	if resp.StatusCode != http.StatusOK {
		t.Fatal("reference campaign failed")
	}
	perCampaign := simRuns(mt) - cold
	if cold > 2*perCampaign {
		t.Fatalf("%d concurrent identical requests cost %d simulations (one campaign = %d); singleflight sharing broken",
			n, cold, perCampaign)
	}
}

// TestLoadShedding fills the worker pool and the admission queue, then
// checks the next request is shed with 429 + Retry-After instead of queued.
func TestLoadShedding(t *testing.T) {
	release := make(chan struct{})
	var once sync.Once
	s, ts, mt := newTestServer(t, Options{Workers: 1, QueueDepth: 1, RequestTimeout: 30 * time.Second})
	defer once.Do(func() { close(release) })
	s.testHookRun = func() { <-release }

	// Request 1 occupies the worker (blocked in the hook); request 2 takes
	// the one queue slot.
	errs := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() {
			resp, err := http.Post(ts.URL+"/v1/analyze", "application/json", analyzeBody("swim", 2))
			if err == nil {
				resp.Body.Close()
			}
			errs <- err
		}()
	}
	// Wait until both are admitted (1 executing + 1 queued).
	deadline := time.Now().Add(5 * time.Second)
	for len(s.admitted) != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("admission never filled: %d of 2", len(s.admitted))
		}
		time.Sleep(time.Millisecond)
	}

	resp, body := postAnalyze(t, ts.URL, analyzeBody("swim", 2))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overloaded server returned %d, want 429: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if shed := mt.ServeShed("queue").Value(); shed != 1 {
		t.Fatalf("shed counter = %d, want 1", shed)
	}

	once.Do(func() { close(release) })
	for i := 0; i < 2; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

// TestDrain checks the shutdown sequence: draining flips healthz to 503,
// new analyses are shed with 429 (retryable elsewhere), in-flight ones
// finish with a complete response, and Drain returns only once they have.
func TestDrain(t *testing.T) {
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	var once sync.Once
	defer once.Do(func() { close(release) })
	s, ts, mt := newTestServer(t, Options{Workers: 1})
	s.testHookRun = func() { started <- struct{}{}; <-release }

	done := make(chan []byte, 1)
	go func() {
		resp, b := postAnalyze(t, ts.URL, analyzeBody("swim", 4))
		if resp.StatusCode != http.StatusOK {
			b = nil
		}
		done <- b
	}()
	<-started

	// Drain with the request still running: must time out.
	dctx, dcancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer dcancel()
	if err := s.Drain(dctx); err == nil {
		t.Fatal("Drain returned while an analysis was in flight")
	}

	// Draining: healthz 503 (stop routing here), new analyses shed with 429
	// and a Retry-After — the work is retryable against a peer or after the
	// restart.
	hz, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hz.Body.Close()
	if hz.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz = %d, want 503", hz.StatusCode)
	}
	resp, body := postAnalyze(t, ts.URL, analyzeBody("swim", 2))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("draining analyze = %d, want 429: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("draining 429 without Retry-After")
	}
	if shed := mt.ServeShed("drain").Value(); shed != 1 {
		t.Fatalf("drain shed counter = %d, want 1", shed)
	}

	// Release the in-flight analysis: it must complete normally — a full,
	// decodable response, never a partial one — and Drain must now succeed.
	once.Do(func() { close(release) })
	b := <-done
	if b == nil {
		t.Fatal("in-flight analysis was not allowed to finish during drain")
	}
	var out Response
	if err := json.Unmarshal(b, &out); err != nil || len(out.Speedups) == 0 {
		t.Fatalf("drained in-flight response incomplete: %v\n%s", err, b)
	}
	dctx2, dcancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer dcancel2()
	if err := s.Drain(dctx2); err != nil {
		t.Fatal(err)
	}
}

// TestRequestValidation pins the 4xx contract: 400 for documents that are
// not the request schema, 413 for documents or datasets over this server's
// budgets, 422 for well-formed but semantically invalid requests — each with
// a stable machine-readable code in the body.
func TestRequestValidation(t *testing.T) {
	_, ts, _ := newTestServer(t, Options{Workers: 1, MaxProcs: 8})
	hugeBody := `{"app":"swim","procs":"` + strings.Repeat("x", maxBodyBytes+1) + `"}`
	cases := []struct {
		name string
		body string
		want int
		code string
	}{
		{"garbage body", `{"app":`, http.StatusBadRequest, "malformed"},
		{"unknown field", `{"app":"swim","frobnicate":1}`, http.StatusBadRequest, "malformed"},
		{"wrong type", `{"app":"swim","procs":"four"}`, http.StatusBadRequest, "malformed"},
		{"body over limit", hugeBody, http.StatusRequestEntityTooLarge, "body_too_large"},
		{"s0 over budget", `{"app":"swim","procs":4,"s0":18446744073709551615}`, http.StatusRequestEntityTooLarge, "s0_budget"},
		{"missing app", `{}`, http.StatusUnprocessableEntity, "missing_app"},
		{"unknown app", `{"app":"nope"}`, http.StatusUnprocessableEntity, "unknown_app"},
		{"app and program", `{"app":"swim","program":{"name":"x","arrays":[{"name":"a","elems":64}],"regions":[{"name":"r","ops":[{"kind":"read","array":"a"}]}]}}`,
			http.StatusUnprocessableEntity, "ambiguous_app"},
		{"bad procs", `{"app":"swim","procs":3}`, http.StatusUnprocessableEntity, "bad_procs"},
		{"procs over limit", `{"app":"swim","procs":16}`, http.StatusUnprocessableEntity, "procs_cap"},
		{"bad machine", `{"app":"swim","machine":"cray"}`, http.StatusUnprocessableEntity, "bad_machine"},
		{"bad spec", `{"program":{"name":"x","arrays":[],"regions":[]}}`, http.StatusUnprocessableEntity, "spec_arrays"},
		{"spec bad op", `{"program":{"name":"x","arrays":[{"name":"a","elems":64}],"regions":[{"name":"r","ops":[{"kind":"warp","array":"a"}]}]}}`,
			http.StatusUnprocessableEntity, "spec_op_kind"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := postAnalyze(t, ts.URL, strings.NewReader(tc.body))
			if resp.StatusCode != tc.want {
				t.Fatalf("status %d, want %d: %s", resp.StatusCode, tc.want, body)
			}
			var e map[string]string
			if err := json.Unmarshal(body, &e); err != nil || e["error"] == "" {
				t.Fatalf("error body not the uniform shape: %s", body)
			}
			if e["code"] != tc.code {
				t.Fatalf("code %q, want %q (%s)", e["code"], tc.code, body)
			}
		})
	}
	resp, err := http.Get(ts.URL + "/v1/analyze")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/analyze = %d, want 405", resp.StatusCode)
	}
}

// TestMetricsEndpoint checks /metrics serves the serve_* series in
// Prometheus text format.
func TestMetricsEndpoint(t *testing.T) {
	_, ts, _ := newTestServer(t, Options{Workers: 1})
	if resp, _ := postAnalyze(t, ts.URL, analyzeBody("swim", 2)); resp.StatusCode != http.StatusBadRequest {
		// swim at 2 procs yields too few uniprocessor sizes; any terminal
		// status is fine — the request only has to be counted.
		_ = resp
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics = %d", resp.StatusCode)
	}
	for _, want := range []string{"scaltool_serve_requests_total", "scaltool_serve_request_seconds"} {
		if !strings.Contains(string(b), want) {
			t.Fatalf("/metrics missing %s:\n%s", want, b)
		}
	}
}
