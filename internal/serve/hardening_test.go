package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"scaltool/internal/runcache"
)

// TestPanicIsolationAndQuarantine is the tentpole's panic contract: a
// panicking analysis becomes one 500 — the daemon, its listener, and every
// other request survive — and the panicking request *shape* is quarantined,
// so repeating it is refused cheaply with 422 instead of crashing twice.
func TestPanicIsolationAndQuarantine(t *testing.T) {
	s, ts, mt := newTestServer(t, Options{Workers: 2})
	var explode bool
	s.testHookRun = func() {
		if explode {
			panic("simulated analysis fault")
		}
	}

	explode = true
	resp, body := postAnalyze(t, ts.URL, analyzeBody("swim", 4))
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicking analysis returned %d, want 500: %s", resp.StatusCode, body)
	}
	var e map[string]string
	if err := json.Unmarshal(body, &e); err != nil || e["code"] != "panic" {
		t.Fatalf("panic error body: %s", body)
	}
	if got := mt.ServePanics().Value(); got != 1 {
		t.Fatalf("panic counter = %d, want 1", got)
	}

	// The identical shape is now quarantined: refused before any work, even
	// though the hook would no longer panic.
	explode = false
	resp, body = postAnalyze(t, ts.URL, analyzeBody("swim", 4))
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("quarantined request returned %d, want 422: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &e); err != nil || e["code"] != "quarantined" {
		t.Fatalf("quarantine error body: %s", body)
	}
	if got := mt.ServeQuarantined().Value(); got != 1 {
		t.Fatalf("quarantined counter = %d, want 1", got)
	}

	// A different shape is unaffected — the daemon is still serving.
	resp, body = postAnalyze(t, ts.URL, analyzeBody("hydro2d", 4))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-panic different request returned %d: %s", resp.StatusCode, body)
	}
}

// TestRetryAfterDerivation pins the drain-rate → Retry-After conversion:
// the hint shrinks as the queue empties, speeds up as observed completions
// speed up, and quotes the documented cold-start floor with no data.
func TestRetryAfterDerivation(t *testing.T) {
	const fallback = 60 * time.Second // → max 30s

	if got := retryAfterSecs(10, 0, fallback); got != coldStartRetrySecs {
		t.Fatalf("no-data hint = %d, want the cold-start floor %d", got, coldStartRetrySecs)
	}
	// Shrinks monotonically as the queue empties at a fixed drain rate.
	prev := retryAfterSecs(8, 2.0, fallback)
	for occ := 7; occ >= 0; occ-- {
		got := retryAfterSecs(occ, 2.0, fallback)
		if got > prev {
			t.Fatalf("retry-after grew as queue emptied: occ=%d %d -> %d", occ, prev, got)
		}
		prev = got
	}
	if got := retryAfterSecs(0, 2.0, fallback); got != 2 {
		t.Fatalf("empty-queue retry-after = %d, want 2", got)
	}
	// A faster drain rate means a shorter wait at the same occupancy.
	if slow, fast := retryAfterSecs(5, 3.0, fallback), retryAfterSecs(5, 0.25, fallback); fast >= slow {
		t.Fatalf("faster drain produced a longer hint: %d vs %d", fast, slow)
	}
	// Clamped to [1, fallback/2].
	if got := retryAfterSecs(1000, 10, fallback); got != 30 {
		t.Fatalf("clamp high = %d, want 30", got)
	}
	if got := retryAfterSecs(0, 0.001, fallback); got != 1 {
		t.Fatalf("clamp low = %d, want 1", got)
	}

	// The estimator converges on the observed inter-completion gap.
	var d drainEstimator
	base := time.Now()
	for i := 0; i <= 10; i++ {
		d.observe(base.Add(time.Duration(i) * 500 * time.Millisecond))
	}
	if iv := d.interval(); iv < 0.4 || iv > 0.6 {
		t.Fatalf("estimator interval = %v, want ≈0.5s", iv)
	}
}

// TestRetryAfterUsesObservedRate drives the server end to end: once real
// completions have been observed, a shed request's Retry-After must quote
// the (fast) observed drain rate, not the constant fallback.
func TestRetryAfterUsesObservedRate(t *testing.T) {
	release := make(chan struct{})
	blocking := false
	s, ts, _ := newTestServer(t, Options{Workers: 1, QueueDepth: 1, RequestTimeout: 50 * time.Second})
	defer func() {
		select {
		case <-release:
		default:
			close(release)
		}
	}()
	s.testHookRun = func() {
		if blocking {
			<-release
		}
	}

	// Two quick completions teach the estimator the drain rate.
	for i := 0; i < 2; i++ {
		if resp, body := postAnalyze(t, ts.URL, analyzeBody("swim", 4)); resp.StatusCode != http.StatusOK {
			t.Fatalf("warmup %d: %d %s", i, resp.StatusCode, body)
		}
	}

	// Fill the pool, then shed one.
	blocking = true
	errs := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() {
			resp, err := http.Post(ts.URL+"/v1/analyze", "application/json", analyzeBody("swim", 4))
			if err == nil {
				resp.Body.Close()
			}
			errs <- err
		}()
	}
	deadline := time.Now().Add(5 * time.Second)
	for len(s.admitted) != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("admission never filled: %d of 2", len(s.admitted))
		}
		time.Sleep(time.Millisecond)
	}
	resp, body := postAnalyze(t, ts.URL, analyzeBody("swim", 4))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429: %s", resp.StatusCode, body)
	}
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil {
		t.Fatalf("Retry-After %q not an integer", resp.Header.Get("Retry-After"))
	}
	// The fallback policy would say 25s (half the deadline); sub-second
	// observed completions must pull the hint far under that.
	if ra >= 25 {
		t.Fatalf("Retry-After = %ds; observed drain rate not used (fallback is 25)", ra)
	}
	close(release)
	for i := 0; i < 2; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

// TestCorruptSpillResimulatedByteIdentical is the integrity acceptance test:
// deliberately corrupt every disk-spilled cache entry, then re-request — the
// damaged entries must be quarantined (never decoded into a response) and
// the analysis re-simulated, with a response byte-identical to the original.
func TestCorruptSpillResimulatedByteIdentical(t *testing.T) {
	spillDir := t.TempDir()
	// A cache too small to retain a campaign in memory: entries are evicted
	// — and therefore spilled — as the campaign runs.
	cache1 := runcache.New(runcache.Options{MaxBytes: 8 << 10, SpillDir: spillDir})
	_, ts1, _ := newTestServer(t, Options{Workers: 2, Cache: cache1})
	resp1, body1 := postAnalyze(t, ts1.URL, analyzeBody("swim", 4))
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("first request: %d: %s", resp1.StatusCode, body1)
	}
	spills, err := filepath.Glob(filepath.Join(spillDir, "*.json"))
	if err != nil || len(spills) == 0 {
		t.Fatalf("no spill files produced (err=%v) — cannot exercise integrity path", err)
	}

	// Corrupt every spilled entry: flip a payload byte (CRC damage) in even
	// files, truncate odd ones (torn frame).
	for i, path := range spills {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if i%2 == 0 && len(data) > 24 {
			data[len(data)-3] ^= 0x41
		} else {
			data = data[:len(data)/2]
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	// A fresh server on the same spill directory (a restart): its memory
	// tier is empty, so the poisoned disk tier is the first stop.
	cache2 := runcache.New(runcache.Options{MaxBytes: 8 << 10, SpillDir: spillDir})
	_, ts2, mt := newTestServer(t, Options{Workers: 2, Cache: cache2})
	resp2, body2 := postAnalyze(t, ts2.URL, analyzeBody("swim", 4))
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("post-corruption request: %d: %s", resp2.StatusCode, body2)
	}
	if !bytes.Equal(body1, body2) {
		t.Fatalf("re-simulated response differs from original:\n%s\nvs\n%s", body1, body2)
	}

	// Every damaged entry the reload touched was quarantined and counted.
	var corrupt uint64
	for _, class := range []string{"crc", "torn", "header", "decode"} {
		corrupt += mt.RuncacheCorrupt(class).Value()
	}
	if corrupt == 0 {
		t.Fatal("no corrupt-spill detections recorded")
	}
	quarantined, _ := filepath.Glob(filepath.Join(spillDir, "quarantine", "*"))
	if len(quarantined) == 0 {
		t.Fatal("no spill files quarantined")
	}
	// And nothing half-decoded ever reached a response: the bodies matched,
	// and the quarantine directory holds the evidence.
	if strings.Contains(string(body2), "NaN") {
		t.Fatalf("response contains NaN: %s", body2)
	}
}

// TestRetryAfterColdStart pins the cold-start contract: before the drain
// estimator has seen a completion pair, a shed request's hint is the short
// documented floor — never the degenerate "half the request deadline" that
// would park the first burst of clients for up to 30s — and the floor still
// respects the fallback ceiling when the deadline is tiny.
func TestRetryAfterColdStart(t *testing.T) {
	var d drainEstimator
	if iv := d.interval(); iv != 0 {
		t.Fatalf("fresh estimator interval = %v, want 0", iv)
	}
	// One completion is not a pair: still cold.
	d.observe(time.Now())
	if iv := d.interval(); iv != 0 {
		t.Fatalf("single completion produced an interval: %v", iv)
	}
	for _, occ := range []int{0, 1, 100} {
		if got := retryAfterSecs(occ, d.interval(), DefaultRequestTimeout); got != coldStartRetrySecs {
			t.Fatalf("cold start at occupancy %d quoted %ds, want %d", occ, got, coldStartRetrySecs)
		}
	}
	// A deadline shorter than the floor clamps the floor, never below 1s.
	if got := retryAfterSecs(5, 0, 2*time.Second); got != 1 {
		t.Fatalf("tiny-deadline cold start quoted %ds, want 1", got)
	}
}
