package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"scaltool/internal/admission"
)

// fuzzServer is one shared Server for the whole fuzz run, configured so no
// request can reach a real simulation: the per-request cycle budget is one
// cycle, so any document that survives parsing and validation is priced and
// refused with 413. That keeps every exec on the hostile surface under test —
// decode, validation, admission — at fuzz throughput. (FuzzProgramAdmission
// in internal/admission fuzzes the program-spec pipeline beyond admission.)
var (
	fuzzSrv  *Server
	fuzzOnce sync.Once
)

func fuzzHandler() http.Handler {
	fuzzOnce.Do(func() {
		fuzzSrv = New(Options{
			Workers:        2,
			RequestTimeout: 5 * time.Second,
			Budget:         admission.Budget{MaxRequestCycles: 1},
		})
	})
	return fuzzSrv.Handler()
}

// fuzzPost runs one request document through the full handler in-process.
func fuzzPost(body []byte) *httptest.ResponseRecorder {
	req := httptest.NewRequest(http.MethodPost, "/v1/analyze", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	w := httptest.NewRecorder()
	fuzzHandler().ServeHTTP(w, req)
	return w
}

// FuzzAnalyzeRequest fuzzes the full /v1/analyze request surface — transport
// body through decode, validation, and admission. Invariants: the handler
// never panics (the fuzzer's own check), answers only documented status
// codes, always produces a machine-readable error body on refusal, and
// refuses deterministically.
func FuzzAnalyzeRequest(f *testing.F) {
	f.Add([]byte(`{"app":"swim","procs":4}`))
	f.Add([]byte(`{"app":"hydro2d","procs":8,"s0":1048576,"machine":"origin","raw_tm":true}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"app":"nope"}`))
	f.Add([]byte(`{"app":"swim","procs":3}`))
	f.Add([]byte(`{"app":"swim","s0":18446744073709551615}`))
	f.Add([]byte(`{"app":"swim","program":{}}`))
	f.Add([]byte(`{"program":{"name":"p","arrays":[{"name":"a","elems":4096}],"regions":[{"name":"r","ops":[{"kind":"read","array":"a"},{"kind":"compute","instr":100}]}]}}`))
	f.Add([]byte(`{"program":{"name":"p","arrays":[{"name":"a","elems":0}],"regions":[]}}`))
	f.Add([]byte(`[`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte("\x00\xff\xfe"))

	f.Fuzz(func(t *testing.T, body []byte) {
		w := fuzzPost(body)
		if !documentedStatus[w.Code] {
			t.Fatalf("undocumented status %d for %q", w.Code, body)
		}
		// With a one-cycle request budget nothing can be admitted, so the
		// success and post-admission codes are unreachable.
		switch w.Code {
		case http.StatusOK, http.StatusTooManyRequests, http.StatusServiceUnavailable,
			http.StatusGatewayTimeout, http.StatusInternalServerError:
			t.Fatalf("status %d reached despite a 1-cycle budget: %q → %s", w.Code, body, w.Body.Bytes())
		}
		var e apiError
		if err := json.Unmarshal(w.Body.Bytes(), &e); err != nil || e.Error == "" || e.Code == "" {
			t.Fatalf("refusal body not machine-readable (%v): %s", err, w.Body.Bytes())
		}
		// Refusals are pure: the identical document draws the identical
		// verdict.
		w2 := fuzzPost(body)
		if w2.Code != w.Code {
			t.Fatalf("nondeterministic status for %q: %d then %d", body, w.Code, w2.Code)
		}
		var e2 apiError
		if err := json.Unmarshal(w2.Body.Bytes(), &e2); err != nil || e2.Code != e.Code {
			t.Fatalf("nondeterministic code for %q: %q then %q", body, e.Code, e2.Code)
		}
	})
}
