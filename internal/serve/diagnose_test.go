package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"testing"

	"scaltool/internal/diagnose"
	"scaltool/internal/obs"
	"scaltool/internal/runcache"
)

func postDiagnose(t *testing.T, url string, body io.Reader) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/v1/diagnose", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

func diagnoseBody(app string, procs int, s0 uint64) *bytes.Reader {
	return bytes.NewReader([]byte(fmt.Sprintf(`{"app":%q,"procs":%d,"s0":%d}`, app, procs, s0)))
}

func diagCacheHits(mt *obs.Metrics) uint64 { return mt.DiagnoseCache("hit").Value() }

// TestDiagnoseEndToEnd is the acceptance test: a 1/2/4/8-processor campaign
// of a seeded app returns a deterministic ranked culprit list whose
// per-region recoverable-cycle estimates sum to the measured scaling loss
// within 1 part in 2^20 — and the report self-verifies client-side.
func TestDiagnoseEndToEnd(t *testing.T) {
	_, ts, _ := newTestServer(t, Options{Workers: 2, Cache: runcache.New(runcache.Options{})})
	resp, body := postDiagnose(t, ts.URL, diagnoseBody("swim", 8, 2<<20))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("X-Request-Id") == "" {
		t.Error("response missing X-Request-Id")
	}
	var rep diagnose.Report
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatalf("undecodable report: %v\n%s", err, body)
	}
	if rep.App != "swim" || rep.Machine != "scaled" {
		t.Fatalf("report identity wrong: app=%q machine=%q", rep.App, rep.Machine)
	}
	if len(rep.Procs) != 4 { // 1, 2, 4, 8
		t.Fatalf("procs = %v, want the 1/2/4/8 sweep", rep.Procs)
	}
	if len(rep.Culprits) == 0 || rep.Graph == nil || len(rep.Runs) != 4 {
		t.Fatalf("report incomplete: %d culprits, graph=%v, %d runs", len(rep.Culprits), rep.Graph != nil, len(rep.Runs))
	}
	// The decoded report must pass the same verification the server ran —
	// the provenance chain is machine-checkable on the client side.
	if err := rep.Verify(); err != nil {
		t.Fatalf("served report fails verification: %v", err)
	}
	for i := 1; i < len(rep.Culprits); i++ {
		if rep.Culprits[i].Recoverable > rep.Culprits[i-1].Recoverable {
			t.Fatalf("culprits not ranked at %d", i)
		}
	}
	if rep.Culprits[0].Verdict == diagnose.VerdictScales || rep.Culprits[0].SyncObject == "" && rep.Culprits[0].Verdict != diagnose.VerdictCommunication {
		t.Fatalf("top culprit has no actionable verdict: %+v", rep.Culprits[0])
	}
	// Every culprit's provenance run IDs must resolve to reported runs.
	lanes := map[string]bool{}
	for _, r := range rep.Runs {
		lanes[r.RunID] = true
	}
	for _, c := range rep.Culprits {
		for _, pt := range c.Curve {
			if !lanes[pt.RunID] {
				t.Fatalf("culprit %q cites unknown run %q", c.Region, pt.RunID)
			}
		}
	}
}

// TestDiagnoseByteIdenticalAndCached: repeated identical requests are
// byte-identical, and the second is served from the response cache — no
// admission, no simulation.
func TestDiagnoseByteIdenticalAndCached(t *testing.T) {
	_, ts, mt := newTestServer(t, Options{Workers: 2, Cache: runcache.New(runcache.Options{})})

	resp1, body1 := postDiagnose(t, ts.URL, diagnoseBody("swim", 4, 2<<20))
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("first request: %d: %s", resp1.StatusCode, body1)
	}
	cold := simRuns(mt)
	if cold == 0 {
		t.Fatal("first diagnosis simulated nothing")
	}
	if diagCacheHits(mt) != 0 {
		t.Fatal("first request hit the response cache")
	}

	resp2, body2 := postDiagnose(t, ts.URL, diagnoseBody("swim", 4, 2<<20))
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("second request: %d: %s", resp2.StatusCode, body2)
	}
	if !bytes.Equal(body1, body2) {
		t.Fatalf("repeated diagnosis differs:\n%s\nvs\n%s", body1, body2)
	}
	if got := simRuns(mt); got != cold {
		t.Fatalf("response-cache hit ran %d simulations, want 0", got-cold)
	}
	if diagCacheHits(mt) != 1 {
		t.Fatalf("diagnose cache hits = %d, want 1", diagCacheHits(mt))
	}
}

// TestDiagnoseSharesRunCacheWithAnalyze: a diagnosis after an analysis of
// the same request re-simulates nothing — both endpoints address the same
// content-addressed run cache.
func TestDiagnoseSharesRunCacheWithAnalyze(t *testing.T) {
	_, ts, mt := newTestServer(t, Options{Workers: 2, Cache: runcache.New(runcache.Options{})})
	resp, body := postAnalyze(t, ts.URL, bytes.NewReader([]byte(`{"app":"swim","procs":4,"s0":2097152}`)))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("analyze: %d: %s", resp.StatusCode, body)
	}
	cold := simRuns(mt)
	resp, body = postDiagnose(t, ts.URL, diagnoseBody("swim", 4, 2<<20))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("diagnose: %d: %s", resp.StatusCode, body)
	}
	if got := simRuns(mt); got != cold {
		t.Fatalf("diagnosis after analysis re-simulated %d runs, want 0", got-cold)
	}
}

// TestDiagnoseRejections covers the endpoint's own refusals on top of the
// shared contract.
func TestDiagnoseRejections(t *testing.T) {
	_, ts, _ := newTestServer(t, Options{Workers: 1})
	cases := []struct {
		name, body string
		status     int
		code       string
	}{
		{"uniprocessor", `{"app":"swim","procs":1}`, http.StatusUnprocessableEntity, "bad_procs"},
		{"unknown app", `{"app":"nope","procs":4}`, http.StatusUnprocessableEntity, "unknown_app"},
		{"malformed", `{"app":`, http.StatusBadRequest, "malformed"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := postDiagnose(t, ts.URL, bytes.NewReader([]byte(tc.body)))
			if resp.StatusCode != tc.status {
				t.Fatalf("status %d, want %d: %s", resp.StatusCode, tc.status, body)
			}
			var e apiError
			if err := json.Unmarshal(body, &e); err != nil || e.Code != tc.code {
				t.Fatalf("error code %q (err %v), want %q", e.Code, err, tc.code)
			}
		})
	}
	resp, err := http.Get(ts.URL + "/v1/diagnose")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET: %d, want 405", resp.StatusCode)
	}
}

// TestRequestIDPropagation: a client-supplied well-formed X-Request-Id is
// echoed; a garbage one is replaced, never reflected.
func TestRequestIDPropagation(t *testing.T) {
	_, ts, _ := newTestServer(t, Options{Workers: 1})
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/diagnose", bytes.NewReader([]byte(`{"app":"swim","procs":1}`)))
	req.Header.Set("X-Request-Id", "client-abc_123")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); got != "client-abc_123" {
		t.Fatalf("X-Request-Id = %q, want the client's own", got)
	}

	req, _ = http.NewRequest(http.MethodPost, ts.URL+"/v1/analyze", bytes.NewReader([]byte(`{"app":"swim","procs":1}`)))
	req.Header.Set("X-Request-Id", "bad id with{garbage}")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	got := resp.Header.Get("X-Request-Id")
	if got == "" || got == "bad id with{garbage}" {
		t.Fatalf("X-Request-Id = %q, want a fresh server-generated id", got)
	}
}

// TestPerRouteLatencyHistograms: every endpoint records into the
// route-labeled scaltool_serve_request_seconds family, and the in-process
// quantile view works.
func TestPerRouteLatencyHistograms(t *testing.T) {
	_, ts, mt := newTestServer(t, Options{Workers: 1})
	if resp, _ := postAnalyze(t, ts.URL, analyzeBody("swim", 4)); resp.StatusCode != http.StatusOK {
		t.Fatalf("analyze failed: %d", resp.StatusCode)
	}
	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metricsText, _ := io.ReadAll(resp.Body)
	resp.Body.Close()

	for _, route := range []string{"/v1/analyze", "/v1/healthz"} {
		h := mt.RequestSeconds(route)
		if h.Count() == 0 {
			t.Errorf("route %s: no latency observations", route)
		}
		if q := h.Quantile(0.99); q <= 0 || math.IsNaN(q) {
			t.Errorf("route %s: p99 = %v", route, q)
		}
	}
	want := `scaltool_serve_request_seconds_bucket{route="/v1/analyze",le="+Inf"}`
	if !bytes.Contains(metricsText, []byte(want)) {
		t.Errorf("/metrics missing per-route latency series %q", want)
	}
}
