package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"

	"scaltool/internal/admission"
	"scaltool/internal/apps"
	"scaltool/internal/campaign"
	"scaltool/internal/machine"
	"scaltool/internal/model"
)

// Request is the /v1/analyze request document.
type Request struct {
	// App names a built-in application (see 'scaltool apps'). Exactly one
	// of App and Program must be set.
	App string `json:"app,omitempty"`
	// Program submits a user-defined program spec in place of a built-in
	// application; it runs through the same campaign and model pipeline.
	Program *admission.ProgramSpec `json:"program,omitempty"`
	// Procs is the largest processor count to analyze — a power of two;
	// 0 selects 32, the paper's machine size.
	Procs int `json:"procs,omitempty"`
	// S0 is the base data-set size in bytes (0 = the app's default).
	S0 uint64 `json:"s0,omitempty"`
	// Machine selects the configuration: "scaled" (default) or "origin".
	Machine string `json:"machine,omitempty"`
	// RawTm selects the paper-faithful single-pass tm(n) estimator.
	RawTm bool `json:"raw_tm,omitempty"`
}

// Ident names the request's workload for logs.
func (r *Request) Ident() string {
	if r.Program != nil {
		return "user:" + r.Program.Name
	}
	return r.App
}

// resolved is a validated request, ready to estimate and execute.
type resolved struct {
	cfg  machine.Config
	app  apps.App
	plan campaign.Plan
}

// invalid builds a 422 rejection for a semantically broken document.
func invalid(code, format string, args ...any) *admission.Rejection {
	return admission.Reject(http.StatusUnprocessableEntity, code, format, args...)
}

// validate resolves a request before it takes an admission slot: defaults
// applied, workload resolved, plan built, shape caps checked. Every failure
// is a typed rejection — 422 for semantic problems, 413 for documents whose
// dataset is over this server's size budget.
func (s *Server) validate(req *Request) (*resolved, *admission.Rejection) {
	switch {
	case req.App == "" && req.Program == nil:
		return nil, invalid("missing_app", "set \"app\" or \"program\"")
	case req.App != "" && req.Program != nil:
		return nil, invalid("ambiguous_app", "\"app\" and \"program\" are mutually exclusive")
	}
	var app apps.App
	if req.Program != nil {
		if rej := req.Program.Validate(); rej != nil {
			return nil, rej
		}
		app = req.Program.App()
	} else {
		var err error
		if app, err = apps.ByName(req.App); err != nil {
			return nil, invalid("unknown_app", "unknown app %q (known: %v)", req.App, apps.Names())
		}
	}
	if req.Procs == 0 {
		req.Procs = 32
	}
	if req.Procs < 1 || req.Procs&(req.Procs-1) != 0 {
		return nil, invalid("bad_procs", "\"procs\" must be a power of two ≥ 1, got %d", req.Procs)
	}
	switch req.Machine {
	case "":
		req.Machine = "scaled"
	case "scaled", "origin":
	default:
		return nil, invalid("bad_machine", "unknown machine %q (want scaled or origin)", req.Machine)
	}
	cfg := configFor(req.Machine)

	budget := s.Budget()
	if rej := budget.CheckShape(req.Procs, req.S0); rej != nil {
		return nil, rej
	}
	plan, err := campaign.NewPlan(app, cfg, req.Procs, req.S0)
	if err != nil {
		return nil, invalid("bad_plan", "%v", err)
	}
	// The resolved default size is subject to the same cap as an explicit
	// one (a user program can declare an enormous default).
	if rej := budget.CheckShape(req.Procs, plan.S0); rej != nil {
		return nil, rej
	}
	return &resolved{cfg: cfg, app: app, plan: plan}, nil
}

// estimate prices the resolved request and gates it against the per-request
// budget (the ledger gates the per-server one at admission).
func (s *Server) estimate(rv *resolved) (admission.Cost, *admission.Rejection) {
	budget := s.Budget()
	cost, rej := budget.EstimatePlan(rv.cfg, rv.app, rv.plan, s.opts.SimWorkers)
	if rej != nil {
		return admission.Cost{}, rej
	}
	if rej := budget.CheckRequest(cost); rej != nil {
		return admission.Cost{}, rej
	}
	return cost, nil
}

// configFor maps the request's machine name to its configuration.
func configFor(name string) machine.Config {
	if name == "origin" {
		return machine.Origin2000()
	}
	return machine.ScaledOrigin()
}

// Response is the /v1/analyze response document. Identical requests get
// byte-identical bodies — everything here derives deterministically from the
// request, never from serving state (no timestamps, cache verdicts, or
// request IDs; those belong in headers and /metrics).
type Response struct {
	App     string `json:"app"`
	Machine string `json:"machine"`
	Procs   int    `json:"procs"`
	S0      uint64 `json:"s0"`

	Model ModelParams `json:"model"`
	// Degraded summarizes what the fit had to do without; empty for a
	// complete input set.
	Degraded string `json:"degraded,omitempty"`

	Speedups  []SpeedupPoint `json:"speedups"`
	Breakdown []BreakdownRow `json:"breakdown"`
}

// ModelParams are the fitted scalars of the paper's model (§2.2–2.4).
type ModelParams struct {
	CPI0       float64 `json:"cpi0"`
	T2         float64 `json:"t2"`
	Tm1        float64 `json:"tm1"`
	Compulsory float64 `json:"compulsory"`
	CpiImb     float64 `json:"cpi_imb"`
	FitRMSE    float64 `json:"fit_rmse"`
	FitR2      float64 `json:"fit_r2"`
	FitSizes   int     `json:"fit_sizes"`
}

// SpeedupPoint is one point of the measured speedup curve (Figures 5/8/11).
type SpeedupPoint struct {
	Procs   int     `json:"procs"`
	Wall    float64 `json:"wall_cycles"`
	Speedup float64 `json:"speedup"`
}

// BreakdownRow is one processor count of the cycle-breakdown chart (Figures
// 6/9/12): cycles accumulated over all processors, split by bottleneck.
type BreakdownRow struct {
	Procs        int     `json:"procs"`
	Base         float64 `json:"base"`
	L2Lim        float64 `json:"l2lim"`
	Sync         float64 `json:"sync"`
	Imb          float64 `json:"imb"`
	MP           float64 `json:"mp"`
	Interpolated bool    `json:"interpolated,omitempty"`
}

// analyze runs the full pipeline for one resolved request: campaign
// (through the shared run cache) → fit → response.
func (s *Server) analyze(ctx context.Context, req *Request, rv *resolved) (*Response, error) {
	rn := &campaign.Runner{
		Cfg:     rv.cfg,
		Workers: s.opts.SimWorkers,
		Cache:   s.opts.Cache,
	}
	res, err := rn.Execute(ctx, rv.app, rv.plan)
	if err != nil {
		return nil, err
	}
	opts := model.DefaultOptions(rv.cfg.L2.SizeBytes)
	opts.RawTmN = req.RawTm
	m, err := res.FitContext(ctx, opts)
	if err != nil {
		return nil, err
	}
	resp := &Response{
		App:     req.Ident(),
		Machine: req.Machine,
		Procs:   req.Procs,
		S0:      rv.plan.S0,
		Model: ModelParams{
			CPI0:       m.CPI0,
			T2:         m.T2,
			Tm1:        m.Tm1,
			Compulsory: m.Compulsory,
			CpiImb:     m.CpiImb,
			FitRMSE:    m.FitRMSE,
			FitR2:      m.FitR2,
			FitSizes:   m.FitSizes,
		},
	}
	if m.Degradation.Degraded {
		resp.Degraded = m.Degradation.Summary()
	}
	for _, sp := range m.Speedups() {
		resp.Speedups = append(resp.Speedups, SpeedupPoint{Procs: sp.Procs, Wall: sp.Wall, Speedup: sp.Speedup})
	}
	for _, bp := range m.Breakdown() {
		resp.Breakdown = append(resp.Breakdown, BreakdownRow{
			Procs:        bp.Procs,
			Base:         bp.Base,
			L2Lim:        bp.L2Lim(),
			Sync:         bp.Sync,
			Imb:          bp.Imb,
			MP:           bp.MP(),
			Interpolated: bp.Interpolated,
		})
	}
	return resp, nil
}

// encodeResponse serializes a Response. Go's encoding/json is deterministic
// over struct fields (fixed order, shortest-round-trip floats), which is what
// makes "cached and fresh responses are byte-identical" testable.
func encodeResponse(resp *Response) ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	if err := enc.Encode(resp); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
