package serve

import (
	"strings"
	"testing"

	"scaltool/internal/admission"
)

// TestRoutingKey pins the placement contract: documents that normalize to
// the same analysis share a key (cache affinity survives omitted defaults),
// different analyses get different keys, and program specs / unresolvable
// documents fall back to a stable document digest without ever building the
// program.
func TestRoutingKey(t *testing.T) {
	base := RoutingKey(&Request{App: "swim", Procs: 4})

	// Omitted defaults normalize: machine "" is "scaled".
	if got := RoutingKey(&Request{App: "swim", Procs: 4, Machine: "scaled"}); got != base {
		t.Fatalf("explicit default machine changed the key: %q vs %q", got, base)
	}
	// Different workload, procs, or machine → different key.
	for name, req := range map[string]*Request{
		"app":     {App: "hydro2d", Procs: 4},
		"procs":   {App: "swim", Procs: 8},
		"machine": {App: "swim", Procs: 4, Machine: "origin"},
		"s0":      {App: "swim", Procs: 4, S0: 1 << 24},
	} {
		if got := RoutingKey(req); got == base {
			t.Fatalf("%s change did not change the routing key", name)
		}
	}
	// The builtin-app key is the raw runcache content address (64 hex), not
	// the document-digest fallback.
	if strings.HasPrefix(base, "doc:") || len(base) != 64 {
		t.Fatalf("builtin app routed by document digest, want content address: %q", base)
	}

	// Omitted procs defaults to 32 — the same key as an explicit 32.
	if RoutingKey(&Request{App: "swim"}) != RoutingKey(&Request{App: "swim", Procs: 32}) {
		t.Fatal("omitted procs and explicit 32 routed differently")
	}

	// Unknown apps and bad shapes fall back to the document digest, totally.
	for _, req := range []*Request{
		{App: "not-an-app", Procs: 4},
		{App: "swim", Procs: 3},
		{App: "swim", Procs: 4, Machine: "cray"},
		{},
	} {
		got := RoutingKey(req)
		if !strings.HasPrefix(got, "doc:") {
			t.Fatalf("unresolvable doc %+v got a content key: %q", req, got)
		}
		if again := RoutingKey(req); again != got {
			t.Fatalf("fallback key unstable: %q vs %q", got, again)
		}
	}

	// A user program spec routes by digest — the router must not build it.
	spec := &admission.ProgramSpec{Name: "user-prog"}
	k1 := RoutingKey(&Request{Program: spec, Procs: 4})
	if !strings.HasPrefix(k1, "doc:") {
		t.Fatalf("program spec got a content key: %q", k1)
	}
	if k2 := RoutingKey(&Request{Program: spec, Procs: 8}); k2 == k1 {
		t.Fatal("different program-spec procs shared a routing key")
	}

	// RoutingKey never mutates the caller's document.
	req := &Request{App: "swim"}
	_ = RoutingKey(req)
	if req.Procs != 0 || req.Machine != "" {
		t.Fatalf("RoutingKey mutated its argument: %+v", req)
	}
}
