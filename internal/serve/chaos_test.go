package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"scaltool/internal/obs"
)

// The HTTP chaos harness: hostile clients at the transport and document
// layers. Every scenario's invariant is the same — the daemon never crashes,
// never leaks a slot, and keeps answering well-formed requests with the
// documented status codes (see the package comment's contract). verify.sh
// runs this file under -race.

// documentedStatus is the service's complete status-code contract; anything
// else escaping the handler is a bug.
var documentedStatus = map[int]bool{
	http.StatusOK:                    true,
	http.StatusBadRequest:            true,
	http.StatusMethodNotAllowed:      true,
	http.StatusRequestEntityTooLarge: true,
	http.StatusUnprocessableEntity:   true,
	http.StatusTooManyRequests:       true,
	http.StatusInternalServerError:   true,
	http.StatusServiceUnavailable:    true,
	http.StatusGatewayTimeout:        true,
}

// chaosServer is newTestServer with the transport hardening scaltoold ships
// with (tight header/body read deadlines), so slow-loris scenarios terminate.
func chaosServer(t *testing.T, opts Options) (*Server, *httptest.Server, *obs.Metrics) {
	t.Helper()
	mt := obs.NewMetrics()
	opts.Obs = &obs.Observer{Metrics: mt}
	s := New(opts)
	ts := httptest.NewUnstartedServer(s.Handler())
	ts.Config.ReadHeaderTimeout = 500 * time.Millisecond
	ts.Config.ReadTimeout = 2 * time.Second
	ts.Start()
	t.Cleanup(ts.Close)
	return s, ts, mt
}

// assertAlive checks the daemon still completes a full analysis after a
// chaos scenario.
func assertAlive(t *testing.T, url string) {
	t.Helper()
	resp, body := postAnalyze(t, url, analyzeBody("swim", 4))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("server unhealthy after chaos: %d %s", resp.StatusCode, body)
	}
}

// TestChaosAdversarialDocuments throws a gauntlet of malformed and
// adversarial JSON at /v1/analyze: every response must be a documented 4xx
// with a machine-readable JSON body, and the daemon must still serve a real
// analysis afterwards.
func TestChaosAdversarialDocuments(t *testing.T) {
	_, ts, _ := chaosServer(t, Options{Workers: 2})

	payloads := []string{
		``,
		`garbage`,
		`{"app":"swim"`,                  // truncated document
		`[]`,                             // wrong top-level type
		`{"app":123}`,                    // wrong field type
		`{"app":"swim","bogus_field":1}`, // unknown field
		`{}`,                             // no workload
		`{"app":"nope"}`,                 // unknown app
		`{"app":"swim","procs":3}`,       // non-power-of-two
		`{"app":"swim","procs":-1}`,      // negative
		`{"app":"swim","procs":1e308}`,   // float overflow into an int
		`{"app":"swim","s0":99999999999999999999999999}`, // number overflow
		`{"app":"swim","s0":18446744073709551615}`,       // max uint64 dataset
		"{\"app\":\"\u0000\"}",                           // NUL in a name
		`{"app":"swim","program":{}}`,                    // both workloads at once
		`{"program":{}}`,                                 // empty program spec
		`{"program":{"name":"p","arrays":null,"regions":null}}`,
		strings.Repeat(`[`, 1<<16),                     // deep nesting
		`{"app":"` + strings.Repeat("A", 1<<18) + `"}`, // huge string value
		"\x00\x01\x02\xff",                             // binary garbage
		`{"app":"swim","machine":"../../etc"}`,         // path-shaped machine name
	}
	seen := map[int]string{}
	for i, p := range payloads {
		resp, body := postAnalyze(t, ts.URL, strings.NewReader(p))
		if !documentedStatus[resp.StatusCode] || resp.StatusCode == http.StatusOK {
			t.Fatalf("payload %d: undocumented status %d: %s", i, resp.StatusCode, body)
		}
		var e apiError
		if err := json.Unmarshal(body, &e); err != nil || e.Error == "" || e.Code == "" {
			t.Fatalf("payload %d: error body not machine-readable (%v): %s", i, err, body)
		}
		seen[resp.StatusCode] = e.Code
	}
	// The gauntlet exercised both rejection layers, not just the JSON parser.
	if _, ok := seen[http.StatusBadRequest]; !ok {
		t.Fatalf("no payload drew 400: %v", seen)
	}
	if _, ok := seen[http.StatusUnprocessableEntity]; !ok {
		t.Fatalf("no payload drew 422: %v", seen)
	}
	if _, ok := seen[http.StatusRequestEntityTooLarge]; !ok {
		t.Fatalf("no payload drew 413: %v", seen)
	}
	assertAlive(t, ts.URL)
}

// TestChaosTruncatedBody opens raw connections that promise a body and
// deliver only part of it before closing — the decode must fail cleanly and
// the daemon keep serving.
func TestChaosTruncatedBody(t *testing.T) {
	_, ts, _ := chaosServer(t, Options{Workers: 2})
	for i := 0; i < 8; i++ {
		conn, err := net.Dial("tcp", ts.Listener.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(conn, "POST /v1/analyze HTTP/1.1\r\nHost: chaos\r\nContent-Type: application/json\r\nContent-Length: 4096\r\n\r\n")
		io.WriteString(conn, `{"app":"swim","pr`) // 4079 bytes short
		conn.Close()
	}
	assertAlive(t, ts.URL)
}

// TestChaosSlowLoris dribbles header bytes on several parked connections.
// The transport's ReadHeaderTimeout must shed each one — the accept loop and
// worker pool stay free for honest clients throughout.
func TestChaosSlowLoris(t *testing.T) {
	_, ts, _ := chaosServer(t, Options{Workers: 2})
	const loris = 4
	conns := make([]net.Conn, 0, loris)
	for i := 0; i < loris; i++ {
		conn, err := net.Dial("tcp", ts.Listener.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		conns = append(conns, conn)
		io.WriteString(conn, "POST /v1/analyze HTTP/1.1\r\nHost: ch")
	}
	// While the loris connections are parked, an honest request sails through.
	assertAlive(t, ts.URL)

	// Each parked connection is forcibly closed by the read deadline.
	deadline := time.Now().Add(10 * time.Second)
	for i, conn := range conns {
		conn.SetReadDeadline(deadline)
		if _, err := conn.Read(make([]byte, 1)); err == nil {
			// A response (431/408) before close also counts as shedding.
			continue
		} else if ne, ok := err.(net.Error); ok && ne.Timeout() {
			t.Fatalf("loris conn %d still open after ReadHeaderTimeout", i)
		}
		conn.Close()
	}
	assertAlive(t, ts.URL)
}

// TestChaosMidRequestDisconnect drops connections while their analyses are
// executing: the context cancels, the slot is reclaimed, nothing is
// published, and a later Drain completes promptly (no leaked inflight work).
func TestChaosMidRequestDisconnect(t *testing.T) {
	s, ts, _ := chaosServer(t, Options{Workers: 1, QueueDepth: 1, RequestTimeout: 30 * time.Second})
	started := make(chan struct{}, 8)
	s.testHookRun = func() { started <- struct{}{} }

	for i := 0; i < 3; i++ {
		conn, err := net.Dial("tcp", ts.Listener.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		body := `{"app":"swim","procs":4}`
		fmt.Fprintf(conn, "POST /v1/analyze HTTP/1.1\r\nHost: chaos\r\nContent-Type: application/json\r\nContent-Length: %d\r\n\r\n%s", len(body), body)
		// Wait until the analysis holds the worker slot, then vanish.
		select {
		case <-started:
		case <-time.After(10 * time.Second):
			t.Fatal("analysis never started")
		}
		conn.Close()
	}

	s.testHookRun = nil
	assertAlive(t, ts.URL)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain after disconnects: %v", err)
	}
}

// TestChaosGarbageProtocol speaks raw non-HTTP bytes and half-pipelined
// requests at the listener; the server must shed them without disturbing
// service.
func TestChaosGarbageProtocol(t *testing.T) {
	_, ts, _ := chaosServer(t, Options{Workers: 2})
	for _, garbage := range []string{
		"\x16\x03\x01\x02\x00",             // a TLS ClientHello at a plain port
		"GET /v1/analyze HTTP/9.9\r\n\r\n", // absurd protocol version
		strings.Repeat("A", 1<<16),         // an unbounded request line
		"POST /v1/analyze HTTP/1.1\r\nContent-Length: nope\r\n\r\n",
	} {
		conn, err := net.Dial("tcp", ts.Listener.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		io.WriteString(conn, garbage)
		// Drain whatever the server says (400 or a slam) and move on.
		conn.SetReadDeadline(time.Now().Add(5 * time.Second))
		_, _ = bufio.NewReader(conn).ReadString('\n')
		conn.Close()
	}
	assertAlive(t, ts.URL)
}
