package serve

import (
	"scaltool/internal/apps"
	"scaltool/internal/campaign"
	"scaltool/internal/runcache"
)

// RoutingKey returns the content-based placement identity of a request —
// what the fleet router feeds its rendezvous hash so a warm cache key
// always lands on the replica that owns it.
//
// For a built-in application the key IS the runcache content address
// (runcache.KeyFor) of the request's top run: the same digest the replica's
// cache files the simulation under, so two documents that normalize to the
// same analysis (procs omitted vs 32, s0 omitted vs the app default) route
// to the same replica and hit the same warm entry. User-submitted program
// specs and documents that fail to resolve fall back to a digest of the
// normalized document — still deterministic, still evenly spread, but
// deliberately computed WITHOUT building the program: a hostile spec is
// priced by admission on the replica, never constructed by the router
// (DESIGN.md §13).
//
// The function never mutates its argument and never fails; routing must
// stay total even for documents a replica will refuse.
func RoutingKey(req *Request) string {
	r := *req // defaults are applied to a copy
	if r.Procs == 0 {
		r.Procs = 32
	}
	if r.Machine == "" {
		r.Machine = "scaled"
	}
	if r.App != "" && r.Program == nil && r.Procs >= 1 && r.Procs&(r.Procs-1) == 0 {
		switch r.Machine {
		case "scaled", "origin":
			if app, err := apps.ByName(r.App); err == nil {
				cfg := configFor(r.Machine)
				if plan, err := campaign.NewPlan(app, cfg, r.Procs, r.S0); err == nil {
					if prog, err := app.Build(cfg, r.Procs, plan.S0); err == nil {
						return runcache.KeyFor(cfg, prog).String()
					}
				}
			}
		}
	}
	return "doc:" + requestKey(&r)
}
