// Package machine defines the parameters of the simulated DSM
// multiprocessor. The reference point is the paper's evaluation platform, an
// SGI Origin 2000: 250 MHz MIPS R10000 processors, 32 KB L1 data cache,
// 4 MB unified L2, directory-based (bit-vector) hardware cache coherence over
// a bristled hypercube, and fetchop-based synchronization.
//
// Because the empirical model only cares about *ratios* (data set vs. L2
// capacity, L1 vs. L2, relative latencies), the default experiment
// configuration is a ratio-preserving scale-down of the Origin so that a full
// measurement campaign runs in seconds. A full-size Origin2000 configuration
// is provided for completeness.
package machine

import (
	"errors"
	"fmt"
)

// CacheConfig describes one cache level.
type CacheConfig struct {
	SizeBytes int // total capacity
	LineBytes int // line (block) size; must divide SizeBytes
	Assoc     int // associativity (ways); must divide SizeBytes/LineBytes
}

// Sets returns the number of sets.
func (c CacheConfig) Sets() int { return c.SizeBytes / (c.LineBytes * c.Assoc) }

// Lines returns the number of lines the cache can hold.
func (c CacheConfig) Lines() int { return c.SizeBytes / c.LineBytes }

// Validate checks the geometry for internal consistency.
func (c CacheConfig) Validate() error {
	switch {
	case c.SizeBytes <= 0 || c.LineBytes <= 0 || c.Assoc <= 0:
		return errors.New("machine: cache sizes must be positive")
	case c.LineBytes&(c.LineBytes-1) != 0:
		return fmt.Errorf("machine: line size %d not a power of two", c.LineBytes)
	case c.SizeBytes%c.LineBytes != 0:
		return fmt.Errorf("machine: size %d not a multiple of line size %d", c.SizeBytes, c.LineBytes)
	case (c.SizeBytes/c.LineBytes)%c.Assoc != 0:
		return fmt.Errorf("machine: %d lines not divisible by associativity %d", c.SizeBytes/c.LineBytes, c.Assoc)
	case c.Sets()&(c.Sets()-1) != 0:
		return fmt.Errorf("machine: set count %d not a power of two", c.Sets())
	}
	return nil
}

// Latencies holds the microarchitectural cost parameters, all in processor
// cycles. The simulator charges these directly; the model *estimates* its
// t2/tm/tsync from counter readings and never reads these fields.
type Latencies struct {
	L2Hit int // extra cycles for an L1 miss that hits in L2 (the "true" t2)

	MemLocal  int // DRAM access at the home node (row access + transfer)
	Directory int // directory lookup/update at the home node
	RouterHop int // per-hop router traversal on the interconnect
	DirtyFwd  int // extra cycles when the line must be forwarded from a dirty remote cache

	SyncAcquire int // uncached fetchop service time at the sync variable's home (unloaded; arrivals pipeline)
	SyncService int // serialized per-waiter service of the barrier release flag at its home (the hot-spot term that grows barrier cost with the processor count)

	TLBMiss int // software TLB reload cost (R10000 TLBs are software-reloaded)
}

// CostModel groups the instruction-level cost parameters of the processor
// core. ComputeCPI is the average cycles per non-memory instruction; memory
// instructions that hit in L1 cost L1HitCPI.
type CostModel struct {
	ComputeCPI float64 // CPI of non-memory instructions (superscalar core <1 is fine)
	L1HitCPI   float64 // CPI of a load/store that hits in the L1
}

// SyncCosts describes the instruction footprint of the synchronization
// library, mirroring the Origin's fetchop-based barriers and locks.
type SyncCosts struct {
	BarrierInstr  int // instructions executed per barrier entry/exit (excluding spin)
	SpinLoopInstr int // instructions per spin-loop iteration while waiting
	SpinLoopCPI   float64
	LockInstr     int // instructions per lock acquire+release pair
}

// Protocol selects the cache-coherence protocol. The ntsync method of
// §2.4.2 depends on the Illinois protocol's Exclusive state: a processor
// that reads data nobody else caches gets it in E and later writes it with
// a silent E→M transition, so the store-to-shared event fires (almost) only
// for genuine sharing and synchronization. Under plain MSI every read is
// granted Shared and every first write raises the event — the ablation that
// shows why the paper's sentence "Since the Origin 2000 uses the Illinois
// cache coherence protocol, such operations largely imply sharing
// transactions" matters.
type Protocol uint8

// Coherence protocols.
const (
	// Illinois is MESI with the E state (the Origin 2000's protocol).
	Illinois Protocol = iota
	// MSI grants Shared on every read fill (no Exclusive state).
	MSI
)

func (p Protocol) String() string {
	switch p {
	case Illinois:
		return "illinois"
	case MSI:
		return "msi"
	}
	return fmt.Sprintf("Protocol(%d)", uint8(p))
}

// Config is the full machine description.
type Config struct {
	Name     string
	ClockMHz int
	Protocol Protocol // coherence protocol (default Illinois)

	L1 CacheConfig // private L1 data cache (the model neglects instruction misses, as the paper does)
	L2 CacheConfig // private unified L2

	PageBytes      int // memory pages for first-touch placement
	ProcsPerRouter int // "bristled" hypercube: processors sharing one router (Origin: 2)
	TLBEntries     int // per-processor TLB entries (0 disables TLB modelling)

	Lat  Latencies
	Cost CostModel
	Sync SyncCosts
}

// Validate checks the whole configuration.
func (c Config) Validate() error {
	if err := c.L1.Validate(); err != nil {
		return fmt.Errorf("L1: %w", err)
	}
	if err := c.L2.Validate(); err != nil {
		return fmt.Errorf("L2: %w", err)
	}
	switch {
	case c.L1.LineBytes > c.L2.LineBytes:
		return errors.New("machine: L1 line larger than L2 line")
	case c.L2.LineBytes%c.L1.LineBytes != 0:
		return errors.New("machine: L2 line not a multiple of L1 line")
	case c.L1.SizeBytes >= c.L2.SizeBytes:
		return errors.New("machine: L1 must be smaller than L2")
	case c.PageBytes <= 0 || c.PageBytes%c.L2.LineBytes != 0:
		return errors.New("machine: page size must be a positive multiple of the L2 line size")
	case c.ProcsPerRouter <= 0:
		return errors.New("machine: ProcsPerRouter must be positive")
	case c.TLBEntries < 0 || c.Lat.TLBMiss < 0:
		return errors.New("machine: TLB parameters must be non-negative")
	case c.Protocol != Illinois && c.Protocol != MSI:
		return fmt.Errorf("machine: unknown protocol %d", c.Protocol)
	case c.Lat.L2Hit <= 0 || c.Lat.MemLocal <= 0 || c.Lat.Directory < 0 || c.Lat.RouterHop < 0 || c.Lat.DirtyFwd < 0 || c.Lat.SyncAcquire < 0 || c.Lat.SyncService < 0:
		return errors.New("machine: latencies must be positive (L2Hit, MemLocal) / non-negative")
	case c.Cost.ComputeCPI <= 0 || c.Cost.L1HitCPI <= 0:
		return errors.New("machine: CPIs must be positive")
	case c.Sync.BarrierInstr <= 0 || c.Sync.SpinLoopInstr <= 0 || c.Sync.SpinLoopCPI <= 0 || c.Sync.LockInstr <= 0:
		return errors.New("machine: sync costs must be positive")
	}
	return nil
}

// Origin2000 returns a configuration mirroring the paper's platform at full
// size. Running campaigns on it is possible but slow: prefer ScaledOrigin for
// experiments.
func Origin2000() Config {
	return Config{
		Name:           "origin2000",
		ClockMHz:       250,
		L1:             CacheConfig{SizeBytes: 32 << 10, LineBytes: 32, Assoc: 2},
		L2:             CacheConfig{SizeBytes: 4 << 20, LineBytes: 128, Assoc: 2},
		PageBytes:      16 << 10,
		ProcsPerRouter: 2,
		TLBEntries:     64,
		Lat: Latencies{
			L2Hit:       10,
			MemLocal:    80,
			Directory:   20,
			RouterHop:   12,
			DirtyFwd:    60,
			SyncAcquire: 60,
			SyncService: 30,
			TLBMiss:     12,
		},
		Cost: CostModel{ComputeCPI: 0.6, L1HitCPI: 0.7},
		// The spin loop (load, test, branch) suffers the exit mispredict and
		// the synchronizing load's latency; its CPI sits well above the
		// compute CPI, which keeps Eq. 9 well conditioned.
		Sync: SyncCosts{BarrierInstr: 40, SpinLoopInstr: 4, SpinLoopCPI: 3.0, LockInstr: 30},
	}
}

// ScaledOrigin returns the default experiment machine: a 1/64 capacity
// scale-down of the Origin 2000 that preserves the dataset/L2, L1/L2 and
// latency ratios, so the model sees the same shapes at a fraction of the
// simulation cost.
func ScaledOrigin() Config {
	c := Origin2000()
	c.Name = "origin2000-scaled64"
	c.L1 = CacheConfig{SizeBytes: 512, LineBytes: 32, Assoc: 2}
	c.L2 = CacheConfig{SizeBytes: 64 << 10, LineBytes: 64, Assoc: 2}
	c.PageBytes = 1 << 10
	return c
}

// TinyTest returns a deliberately small machine for unit tests: every
// structure (sets, pages, directory) is exercised with tiny footprints.
func TinyTest() Config {
	c := Origin2000()
	c.Name = "tiny-test"
	c.L1 = CacheConfig{SizeBytes: 256, LineBytes: 16, Assoc: 2}
	c.L2 = CacheConfig{SizeBytes: 1 << 10, LineBytes: 16, Assoc: 2}
	c.PageBytes = 64
	return c
}

// WithL2Size returns a copy of the configuration with the L2 capacity set to
// sizeBytes (associativity and line size preserved). Used by the what-if
// machinery's "double the L2" experiments when cross-checking the model's
// no-rerun estimate against an actual re-simulation.
func (c Config) WithL2Size(sizeBytes int) Config {
	c.L2.SizeBytes = sizeBytes
	return c
}
