package machine

import "testing"

func TestBuiltinConfigsValidate(t *testing.T) {
	for _, c := range []Config{Origin2000(), ScaledOrigin(), TinyTest()} {
		if err := c.Validate(); err != nil {
			t.Errorf("%s: %v", c.Name, err)
		}
	}
}

func TestCacheGeometry(t *testing.T) {
	c := CacheConfig{SizeBytes: 4 << 20, LineBytes: 128, Assoc: 2}
	if got := c.Lines(); got != 32768 {
		t.Errorf("Lines = %d, want 32768", got)
	}
	if got := c.Sets(); got != 16384 {
		t.Errorf("Sets = %d, want 16384", got)
	}
}

func TestCacheConfigValidate(t *testing.T) {
	bad := []CacheConfig{
		{SizeBytes: 0, LineBytes: 32, Assoc: 1},
		{SizeBytes: 1024, LineBytes: 0, Assoc: 1},
		{SizeBytes: 1024, LineBytes: 32, Assoc: 0},
		{SizeBytes: 1024, LineBytes: 48, Assoc: 1},    // non-power-of-two line
		{SizeBytes: 1000, LineBytes: 32, Assoc: 1},    // size not multiple of line
		{SizeBytes: 1024, LineBytes: 32, Assoc: 5},    // lines % assoc != 0
		{SizeBytes: 96 * 32, LineBytes: 32, Assoc: 1}, // 96 sets: not power of two
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d (%+v): want error, got nil", i, c)
		}
	}
	good := CacheConfig{SizeBytes: 1024, LineBytes: 32, Assoc: 2}
	if err := good.Validate(); err != nil {
		t.Errorf("good config rejected: %v", err)
	}
}

func TestConfigValidateCrossChecks(t *testing.T) {
	base := TinyTest()

	l1BiggerThanL2 := base
	l1BiggerThanL2.L1.SizeBytes = base.L2.SizeBytes * 2
	l1BiggerThanL2.L1.LineBytes = base.L2.LineBytes

	l1LineTooBig := base
	l1LineTooBig.L1 = CacheConfig{SizeBytes: 256, LineBytes: 32, Assoc: 2}
	l1LineTooBig.L2 = CacheConfig{SizeBytes: 1 << 10, LineBytes: 16, Assoc: 2}

	badPage := base
	badPage.PageBytes = base.L2.LineBytes + 1

	badSync := base
	badSync.Sync.BarrierInstr = 0

	badCPI := base
	badCPI.Cost.ComputeCPI = 0

	badLat := base
	badLat.Lat.L2Hit = 0

	cases := map[string]Config{
		"l1 >= l2":          l1BiggerThanL2,
		"l1 line > l2 line": l1LineTooBig,
		"bad page":          badPage,
		"bad sync":          badSync,
		"bad cpi":           badCPI,
		"bad latency":       badLat,
	}
	for name, c := range cases {
		if err := c.Validate(); err == nil {
			t.Errorf("%s: want error, got nil", name)
		}
	}
}

func TestWithL2Size(t *testing.T) {
	c := ScaledOrigin()
	c2 := c.WithL2Size(c.L2.SizeBytes * 2)
	if c2.L2.SizeBytes != 2*c.L2.SizeBytes {
		t.Fatalf("WithL2Size did not double: %d", c2.L2.SizeBytes)
	}
	if c.L2.SizeBytes == c2.L2.SizeBytes {
		t.Fatal("WithL2Size mutated the receiver")
	}
	if err := c2.Validate(); err != nil {
		t.Fatalf("doubled config invalid: %v", err)
	}
}

func TestScaledOriginPreservesRatios(t *testing.T) {
	full, scaled := Origin2000(), ScaledOrigin()
	// The experiment configs must keep the L1 much smaller than L2, and
	// latency parameters identical — the model sees the same time shapes.
	if full.Lat != scaled.Lat {
		t.Error("scaled config changed latencies; shapes would differ")
	}
	if full.Cost != scaled.Cost || full.Sync != scaled.Sync {
		t.Error("scaled config changed cost models")
	}
	if scaled.L1.SizeBytes*16 > scaled.L2.SizeBytes {
		t.Error("scaled L1 too close to L2 capacity")
	}
}

func TestProtocolString(t *testing.T) {
	if Illinois.String() != "illinois" || MSI.String() != "msi" {
		t.Fatal("protocol names wrong")
	}
	if Protocol(9).String() == "" {
		t.Fatal("unknown protocol name empty")
	}
}

func TestValidateRejectsBadProtocolAndTLB(t *testing.T) {
	c := TinyTest()
	c.Protocol = Protocol(9)
	if err := c.Validate(); err == nil {
		t.Error("bad protocol accepted")
	}
	c = TinyTest()
	c.TLBEntries = -1
	if err := c.Validate(); err == nil {
		t.Error("negative TLB entries accepted")
	}
	c = TinyTest()
	c.Lat.TLBMiss = -1
	if err := c.Validate(); err == nil {
		t.Error("negative TLB latency accepted")
	}
}
