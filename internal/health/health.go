// Package health validates the measurement data Scal-Tool's model consumes.
// The model is only as trustworthy as its counter inputs, and real counters
// are noisy, multiplexed, saturating, and occasionally missing — so before a
// RunReport reaches model.Fit it passes through Sanitize, which checks the
// physical invariants a plausible report must satisfy:
//
//   - L1 data misses ≤ graduated loads + stores (a miss needs an access);
//   - L2 misses ≤ L1 misses (the hierarchy is inclusive on the miss path);
//   - cycles ≥ instructions · minCPI (the core cannot beat its issue width);
//   - every processor graduated instructions and the report's shape matches
//     its processor count.
//
// Small violations with a known physical cause are repaired in place and
// recorded (a clamped counter from multiplexing noise, a 32-bit wraparound
// un-wrapped against the wall clock); implausible reports are quarantined.
// Everything — repairs, retries, quarantines, permanent failures — lands in
// a machine-readable Report so a campaign's operator can audit exactly what
// the fault-tolerance layer did.
package health

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"scaltool/internal/counters"
)

// Severity classifies a finding.
type Severity string

// Finding severities, from benign to fatal-for-the-run.
const (
	// Info findings note structural oddities that need no action.
	Info Severity = "info"
	// Repair findings record a counter value the validator corrected.
	Repair Severity = "repair"
	// Quarantine findings make the run's report unusable.
	Quarantine Severity = "quarantine"
)

// Finding is one validator observation about one run.
type Finding struct {
	Run      string   `json:"run"`
	Check    string   `json:"check"`
	Severity Severity `json:"severity"`
	Detail   string   `json:"detail"`
}

func (f Finding) String() string {
	return fmt.Sprintf("[%s] %s: %s: %s", f.Severity, f.Run, f.Check, f.Detail)
}

// RetryEvent records one failed attempt that the campaign retried.
type RetryEvent struct {
	Run     string        `json:"run"`
	Attempt int           `json:"attempt"` // the attempt that failed (0-based)
	Backoff time.Duration `json:"backoff_ns"`
	Reason  string        `json:"reason"`
}

// FailureEvent records a run that failed permanently (attempts exhausted or
// a non-retryable error).
type FailureEvent struct {
	Run    string `json:"run"`
	Reason string `json:"reason"`
}

// Report is the machine-readable health record of one campaign. All methods
// are safe for concurrent use; Finalize sorts every list into a
// deterministic order.
type Report struct {
	mu          sync.Mutex
	Findings    []Finding      `json:"findings"`
	Retries     []RetryEvent   `json:"retries"`
	Quarantined []string       `json:"quarantined"`
	Failed      []FailureEvent `json:"failed"`
}

// NewReport returns an empty report.
func NewReport() *Report { return &Report{} }

// Add appends findings.
func (r *Report) Add(fs ...Finding) {
	if len(fs) == 0 {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.Findings = append(r.Findings, fs...)
}

// AddRetry records a retried attempt.
func (r *Report) AddRetry(run string, attempt int, backoff time.Duration, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.Retries = append(r.Retries, RetryEvent{Run: run, Attempt: attempt, Backoff: backoff, Reason: errString(err)})
}

// AddQuarantine records that a run's report was discarded.
func (r *Report) AddQuarantine(run string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.Quarantined = append(r.Quarantined, run)
}

// AddFailure records a permanently failed run.
func (r *Report) AddFailure(run string, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.Failed = append(r.Failed, FailureEvent{Run: run, Reason: errString(err)})
}

func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// Finalize sorts every list into a deterministic order (run identity, then
// attempt). Call it once the campaign's workers have stopped.
func (r *Report) Finalize() {
	r.mu.Lock()
	defer r.mu.Unlock()
	sort.Slice(r.Findings, func(i, j int) bool {
		a, b := r.Findings[i], r.Findings[j]
		if a.Run != b.Run {
			return a.Run < b.Run
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		return a.Detail < b.Detail
	})
	sort.Slice(r.Retries, func(i, j int) bool {
		a, b := r.Retries[i], r.Retries[j]
		if a.Run != b.Run {
			return a.Run < b.Run
		}
		return a.Attempt < b.Attempt
	})
	sort.Strings(r.Quarantined)
	sort.Slice(r.Failed, func(i, j int) bool { return r.Failed[i].Run < r.Failed[j].Run })
}

// Counts returns how many findings of each severity the report holds.
func (r *Report) Counts() (info, repairs, quarantines int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, f := range r.Findings {
		switch f.Severity {
		case Repair:
			repairs++
		case Quarantine:
			quarantines++
		default:
			info++
		}
	}
	return info, repairs, quarantines
}

// Clean reports whether the campaign ran with no repairs, retries,
// quarantines, or failures (info findings are allowed).
func (r *Report) Clean() bool {
	_, repairs, quarantines := r.Counts()
	r.mu.Lock()
	defer r.mu.Unlock()
	return repairs == 0 && quarantines == 0 && len(r.Retries) == 0 && len(r.Failed) == 0
}

// DroppedRuns lists the run identities whose measurements never made it
// into the model's inputs (quarantined or permanently failed).
func (r *Report) DroppedRuns() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := append([]string(nil), r.Quarantined...)
	for _, f := range r.Failed {
		out = append(out, f.Run)
	}
	sort.Strings(out)
	return out
}

// Summary renders a one-paragraph human summary.
func (r *Report) Summary() string {
	info, repairs, quarantines := r.Counts()
	r.mu.Lock()
	defer r.mu.Unlock()
	return fmt.Sprintf("health: %d repair(s), %d retried attempt(s), %d quarantined run(s), %d permanent failure(s), %d note(s) [%d quarantine finding(s)]",
		repairs, len(r.Retries), len(r.Quarantined), len(r.Failed), info, quarantines)
}

// WriteJSON emits the machine-readable report. Slices are never null so
// downstream tooling can index unconditionally.
func (r *Report) WriteJSON(w io.Writer) error {
	r.mu.Lock()
	shadow := struct {
		Findings    []Finding      `json:"findings"`
		Retries     []RetryEvent   `json:"retries"`
		Quarantined []string       `json:"quarantined"`
		Failed      []FailureEvent `json:"failed"`
	}{
		Findings:    emptyNotNil(r.Findings),
		Retries:     emptyNotNil(r.Retries),
		Quarantined: emptyNotNil(r.Quarantined),
		Failed:      emptyNotNil(r.Failed),
	}
	r.mu.Unlock()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(shadow)
}

func emptyNotNil[T any](s []T) []T {
	if s == nil {
		return []T{}
	}
	return s
}

// ShouldQuarantine reports whether any finding is quarantine-severity.
func ShouldQuarantine(fs []Finding) bool {
	for _, f := range fs {
		if f.Severity == Quarantine {
			return true
		}
	}
	return false
}

// QuarantineSet is a bounded, concurrency-safe set of quarantined
// identities. The serving path uses one to remember request shapes that
// panicked the analysis pipeline: the first occurrence is isolated and
// recorded here, and identical requests are then refused up front instead of
// re-triggering the crash. Insertion order is retained so the oldest entry
// is evicted when the bound is reached — the set can never grow without
// limit no matter how many distinct hostile shapes arrive.
type QuarantineSet struct {
	mu    sync.Mutex
	cap   int
	order []string
	items map[string]string // id → reason
}

// NewQuarantineSet returns a set bounded to capacity entries (min 1).
func NewQuarantineSet(capacity int) *QuarantineSet {
	if capacity < 1 {
		capacity = 1
	}
	return &QuarantineSet{cap: capacity, items: map[string]string{}}
}

// Add records an identity with the reason it was quarantined, evicting the
// oldest entry past the bound. Re-adding an existing identity refreshes its
// reason without consuming capacity.
func (q *QuarantineSet) Add(id, reason string) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if _, ok := q.items[id]; ok {
		q.items[id] = reason
		return
	}
	if len(q.order) >= q.cap {
		oldest := q.order[0]
		q.order = q.order[1:]
		delete(q.items, oldest)
	}
	q.order = append(q.order, id)
	q.items[id] = reason
}

// Lookup reports whether id is quarantined and why.
func (q *QuarantineSet) Lookup(id string) (reason string, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	reason, ok = q.items[id]
	return reason, ok
}

// Len returns the number of quarantined identities.
func (q *QuarantineSet) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.order)
}

// repairBand is how far past an invariant a counter may sit and still be
// attributed to multiplexing estimation noise (and clamped) rather than a
// broken measurement (and quarantined).
const repairBand = 1.15

// counterWidth is the wraparound modulus of the hardware counters.
const counterWidth = uint64(1) << 32

// Sanitize checks one run's counter report against the physical invariants,
// repairing what has a known benign cause and flagging the rest for
// quarantine. It never modifies rep; the returned report carries the
// repairs. minCPI is the lowest cycles-per-instruction the machine's core
// can sustain (0 disables the bound, for callers that don't know the
// machine).
func Sanitize(run string, rep *counters.RunReport, minCPI float64) (*counters.RunReport, []Finding) {
	var fs []Finding
	add := func(check string, sev Severity, format string, args ...any) {
		fs = append(fs, Finding{Run: run, Check: check, Severity: sev, Detail: fmt.Sprintf(format, args...)})
	}

	if rep.Procs <= 0 || len(rep.PerProc) != rep.Procs {
		add("shape", Quarantine, "report has %d per-proc sets for %d processors", len(rep.PerProc), rep.Procs)
		return rep, fs
	}
	if rep.DataBytes == 0 {
		add("shape", Quarantine, "report has zero data size")
		return rep, fs
	}
	if rep.WallCycles > counters.MaxExact {
		add("range", Quarantine, "wall cycles %d exceed float64's exact range (2^53)", rep.WallCycles)
		return rep, fs
	}

	out := *rep
	out.PerProc = append([]counters.Set(nil), rep.PerProc...)
perProc:
	for p := range out.PerProc {
		s := &out.PerProc[p]

		// Untrusted inputs (tolerant file loading) can hold arbitrary
		// values; anything past float64's exact integer range would poison
		// the least-squares fits silently, so it quarantines the run.
		for e := 0; e < counters.NumEvents; e++ {
			if v := s.Get(counters.Event(e)); v > counters.MaxExact {
				add("range", Quarantine, "proc %d %s = %d exceeds float64's exact range (2^53)", p, counters.Event(e), v)
				continue perProc
			}
		}

		// 32-bit wraparound. In this machine every processor runs for the
		// whole execution (spinning when idle), so its cycles counter must
		// equal the wall clock; a value sitting 2^32-periodically below it
		// is a wrapped counter, and adding back whole wraps restores it.
		if wall := rep.WallCycles; wall > 0 && s.Get(counters.Cycles) < wall {
			orig := s.Get(counters.Cycles)
			v := orig
			for v+counterWidth <= wall {
				v += counterWidth
			}
			if v != orig && v == wall {
				s[counters.Cycles] = v
				add("wraparound", Repair, "proc %d cycles %d un-wrapped to %d (+%d wraps of 2^32)",
					p, orig, v, (v-orig)/counterWidth)
			}
		}

		if s.Get(counters.GradInstr) == 0 {
			add("instructions", Quarantine, "proc %d graduated no instructions", p)
			continue
		}
		if minCPI > 0 {
			cyc, instr := counters.ToFloat(s.Get(counters.Cycles)), counters.ToFloat(s.Get(counters.GradInstr))
			if cyc < minCPI*instr {
				add("min-cpi", Quarantine, "proc %d has %.0f cycles for %.0f instructions (CPI %.3f < machine floor %.3f)",
					p, cyc, instr, cyc/instr, minCPI)
				continue
			}
		}

		// L1 misses cannot exceed the memory accesses that caused them.
		if ops, l1 := s.MemOps(), s.Get(counters.L1DMisses); l1 > ops {
			if ops > 0 && float64(l1) <= repairBand*float64(ops) {
				s[counters.L1DMisses] = ops
				add("l1-misses", Repair, "proc %d l1d_misses %d clamped to %d loads+stores (multiplexing noise)", p, l1, ops)
			} else {
				add("l1-misses", Quarantine, "proc %d has %d L1 misses for %d loads+stores", p, l1, ops)
				continue
			}
		}
		// L2 misses are a subset of L1 misses.
		if l1, l2 := s.Get(counters.L1DMisses), s.Get(counters.L2Misses); l2 > l1 {
			if l1 > 0 && float64(l2) <= repairBand*float64(l1) {
				s[counters.L2Misses] = l1
				add("l2-misses", Repair, "proc %d l2_misses %d clamped to %d l1d_misses (multiplexing noise)", p, l2, l1)
			} else {
				add("l2-misses", Quarantine, "proc %d has %d L2 misses for %d L1 misses", p, l2, l1)
			}
		}
	}
	return &out, fs
}

// CheckStructure audits the campaign-level Table 3 shape: the base runs
// should cover a doubling chain of processor counts starting at 1, and the
// uniprocessor scan should span enough dynamic range to anchor both the
// compulsory-miss peak and the L2-overflow fit. Violations are Info
// findings — the model can often still fit, degraded.
func CheckStructure(baseProcs []int, uniSizes []uint64) []Finding {
	var fs []Finding
	add := func(check, format string, args ...any) {
		fs = append(fs, Finding{Run: "campaign", Check: check, Severity: Info, Detail: fmt.Sprintf(format, args...)})
	}
	procs := append([]int(nil), baseProcs...)
	sort.Ints(procs)
	if len(procs) == 0 || procs[0] != 1 {
		add("table3-base", "base runs lack the uniprocessor point (have %v)", procs)
	}
	for i := 1; i < len(procs); i++ {
		if procs[i] != 2*procs[i-1] {
			add("table3-base", "base processor counts %v break the doubling chain at %d", procs, procs[i])
		}
	}
	sizes := append([]uint64(nil), uniSizes...)
	sort.Slice(sizes, func(i, j int) bool { return sizes[i] < sizes[j] })
	for i := 1; i < len(sizes); i++ {
		if sizes[i] == sizes[i-1] {
			add("table3-uni", "duplicate uniprocessor size %d", sizes[i])
		}
	}
	if len(sizes) >= 2 {
		if span := float64(sizes[len(sizes)-1]) / float64(sizes[0]); span < 4 {
			add("table3-uni", "uniprocessor sizes span only %.1f× (%d … %d); the hit-rate scan needs ≥ 4× to see the L2 knee",
				span, sizes[0], sizes[len(sizes)-1])
		}
	}
	return fs
}
