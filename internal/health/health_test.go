package health

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"scaltool/internal/counters"
)

// goodReport builds a report that satisfies every invariant.
func goodReport(procs int) *counters.RunReport {
	r := &counters.RunReport{
		Machine: "m", App: "a", Procs: procs, DataBytes: 1 << 20,
		PerProc: make([]counters.Set, procs), WallCycles: 1_000_000,
		Barriers: 10,
	}
	for p := range r.PerProc {
		s := &r.PerProc[p]
		s.Add(counters.Cycles, 1_000_000)
		s.Add(counters.GradInstr, 800_000)
		s.Add(counters.GradLoads, 200_000)
		s.Add(counters.GradStores, 50_000)
		s.Add(counters.L1DMisses, 20_000)
		s.Add(counters.L2Misses, 5_000)
	}
	return r
}

func findChecks(fs []Finding, check string, sev Severity) int {
	n := 0
	for _, f := range fs {
		if f.Check == check && f.Severity == sev {
			n++
		}
	}
	return n
}

func TestSanitizeCleanReportUntouched(t *testing.T) {
	rep := goodReport(2)
	out, fs := Sanitize("r", rep, 0.3)
	if len(fs) != 0 {
		t.Fatalf("clean report produced findings: %v", fs)
	}
	if ShouldQuarantine(fs) {
		t.Fatal("clean report quarantined")
	}
	if out.Total() != rep.Total() {
		t.Fatal("clean report was modified")
	}
}

func TestSanitizeUnwrapsWrappedCycles(t *testing.T) {
	rep := goodReport(2)
	wall := uint64(3)<<32 + 12345
	rep.WallCycles = wall
	for p := range rep.PerProc {
		rep.PerProc[p][counters.Cycles] = wall
	}
	rep.PerProc[1][counters.Cycles] = wall % (1 << 32) // wrapped 3 times
	out, fs := Sanitize("r", rep, 0)
	if got := out.PerProc[1][counters.Cycles]; got != wall {
		t.Fatalf("cycles = %d after repair, want %d", got, wall)
	}
	if findChecks(fs, "wraparound", Repair) != 1 {
		t.Fatalf("findings = %v, want one wraparound repair", fs)
	}
	if ShouldQuarantine(fs) {
		t.Fatal("repairable wrap quarantined")
	}
	// The input must not have been touched.
	if rep.PerProc[1][counters.Cycles] == wall {
		t.Fatal("Sanitize mutated its input")
	}
}

func TestSanitizeClampsNoiseSkews(t *testing.T) {
	rep := goodReport(1)
	s := &rep.PerProc[0]
	s[counters.L2Misses] = s[counters.L1DMisses] + s[counters.L1DMisses]/20 // 5% over: noise
	out, fs := Sanitize("r", rep, 0)
	if got, want := out.PerProc[0][counters.L2Misses], out.PerProc[0][counters.L1DMisses]; got != want {
		t.Fatalf("l2 misses %d not clamped to l1 misses %d", got, want)
	}
	if findChecks(fs, "l2-misses", Repair) != 1 || ShouldQuarantine(fs) {
		t.Fatalf("findings = %v", fs)
	}

	rep = goodReport(1)
	s = &rep.PerProc[0]
	ops := s.MemOps()
	s[counters.L1DMisses] = ops + ops/30 // just over the accesses: noise
	out, fs = Sanitize("r", rep, 0)
	if out.PerProc[0][counters.L1DMisses] != ops {
		t.Fatalf("l1 misses not clamped to %d", ops)
	}
	if findChecks(fs, "l1-misses", Repair) != 1 || ShouldQuarantine(fs) {
		t.Fatalf("findings = %v", fs)
	}
}

func TestSanitizeQuarantinesImplausibleReports(t *testing.T) {
	cases := []struct {
		name  string
		check string
		mod   func(r *counters.RunReport)
	}{
		{"zero instructions", "instructions", func(r *counters.RunReport) {
			r.PerProc[0][counters.GradInstr] = 0
		}},
		{"l2 far above l1", "l2-misses", func(r *counters.RunReport) {
			r.PerProc[0][counters.L2Misses] = 10 * r.PerProc[0][counters.L1DMisses]
		}},
		{"l1 far above accesses", "l1-misses", func(r *counters.RunReport) {
			r.PerProc[0][counters.L1DMisses] = 10 * r.PerProc[0].MemOps()
		}},
		{"impossible CPI", "min-cpi", func(r *counters.RunReport) {
			r.WallCycles = 0 // disable the wrap repair; the cycles are just wrong
			r.PerProc[0][counters.Cycles] = 1000
		}},
		{"shape mismatch", "shape", func(r *counters.RunReport) { r.Procs = 5 }},
		{"zero data", "shape", func(r *counters.RunReport) { r.DataBytes = 0 }},
		{"counter out of range", "range", func(r *counters.RunReport) {
			r.PerProc[0][counters.L2Misses] = counters.MaxExact + 1
		}},
	}
	for _, tc := range cases {
		rep := goodReport(2)
		tc.mod(rep)
		_, fs := Sanitize("r", rep, 0.3)
		if !ShouldQuarantine(fs) {
			t.Errorf("%s: not quarantined (findings %v)", tc.name, fs)
			continue
		}
		if findChecks(fs, tc.check, Quarantine) == 0 {
			t.Errorf("%s: no %q quarantine finding in %v", tc.name, tc.check, fs)
		}
	}
}

func TestCheckStructure(t *testing.T) {
	fs := CheckStructure([]int{1, 2, 4, 8}, []uint64{1 << 14, 1 << 15, 1 << 16, 1 << 17})
	if len(fs) != 0 {
		t.Fatalf("clean Table 3 structure flagged: %v", fs)
	}
	fs = CheckStructure([]int{2, 4, 16}, []uint64{1 << 14, 1 << 14, 1 << 15})
	var checks []string
	for _, f := range fs {
		if f.Severity != Info {
			t.Errorf("structure finding %v must be info-severity", f)
		}
		checks = append(checks, f.Check+":"+f.Detail)
	}
	joined := strings.Join(checks, "\n")
	for _, want := range []string{"uniprocessor point", "doubling chain", "duplicate", "span only"} {
		if !strings.Contains(joined, want) {
			t.Errorf("structure findings missing %q:\n%s", want, joined)
		}
	}
}

func TestReportLifecycleAndJSON(t *testing.T) {
	r := NewReport()
	if !r.Clean() {
		t.Fatal("empty report not clean")
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r.Add(Finding{Run: "b", Check: "c", Severity: Repair, Detail: "d"})
			r.AddRetry("a", i, time.Millisecond, errors.New("boom"))
		}(i)
	}
	wg.Wait()
	r.AddQuarantine("z")
	r.AddQuarantine("a")
	r.AddFailure("q", errors.New("dead"))
	r.Finalize()

	if r.Clean() {
		t.Fatal("report with repairs/quarantines reported clean")
	}
	if _, repairs, _ := r.Counts(); repairs != 8 {
		t.Fatalf("repairs = %d", repairs)
	}
	if got := r.DroppedRuns(); len(got) != 3 || got[0] != "a" || got[1] != "q" || got[2] != "z" {
		t.Fatalf("DroppedRuns = %v", got)
	}
	for i := 1; i < len(r.Retries); i++ {
		if r.Retries[i-1].Attempt > r.Retries[i].Attempt {
			t.Fatal("Finalize did not sort retries by attempt")
		}
	}
	if s := r.Summary(); !strings.Contains(s, "8 repair(s)") || !strings.Contains(s, "2 quarantined") {
		t.Fatalf("summary %q", s)
	}

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Findings    []Finding      `json:"findings"`
		Retries     []RetryEvent   `json:"retries"`
		Quarantined []string       `json:"quarantined"`
		Failed      []FailureEvent `json:"failed"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("health report JSON does not parse: %v", err)
	}
	if len(decoded.Findings) != 8 || len(decoded.Retries) != 8 || len(decoded.Quarantined) != 2 || len(decoded.Failed) != 1 {
		t.Fatalf("decoded report %+v", decoded)
	}

	// Empty reports must encode [] not null for every list.
	var empty bytes.Buffer
	if err := NewReport().WriteJSON(&empty); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(empty.String(), "null") {
		t.Fatalf("empty report encodes null: %s", empty.String())
	}
}
