package directory

import "math/bits"

// Bitset is a fixed-capacity bit vector over processor IDs — the literal
// "bit vector" of the Origin 2000's directory scheme the paper describes
// ("fully cache coherent in hardware, supported by a directory-based scheme
// using bit vectors", §3).
type Bitset struct {
	words []uint64
	n     int
}

// NewBitset returns an empty bitset over n processors.
func NewBitset(n int) Bitset {
	return Bitset{words: make([]uint64, (n+63)/64), n: n}
}

// Set marks processor p.
func (b *Bitset) Set(p int) { b.words[p>>6] |= 1 << (uint(p) & 63) }

// Clear unmarks processor p.
func (b *Bitset) Clear(p int) { b.words[p>>6] &^= 1 << (uint(p) & 63) }

// Has reports whether processor p is marked.
func (b *Bitset) Has(p int) bool { return b.words[p>>6]&(1<<(uint(p)&63)) != 0 }

// Count returns the number of marked processors.
func (b *Bitset) Count() int {
	c := 0
	for _, w := range b.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Reset clears all bits.
func (b *Bitset) Reset() {
	for i := range b.words {
		b.words[i] = 0
	}
}

// ForEach calls fn for every marked processor, in ascending order.
func (b *Bitset) ForEach(fn func(p int)) {
	for wi, w := range b.words {
		for w != 0 {
			p := wi<<6 + bits.TrailingZeros64(w)
			fn(p)
			w &= w - 1
		}
	}
}

// Clone returns an independent copy.
func (b *Bitset) Clone() Bitset {
	w := make([]uint64, len(b.words))
	copy(w, b.words)
	return Bitset{words: w, n: b.n}
}
