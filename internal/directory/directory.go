// Package directory implements the bit-vector cache-coherence directory of
// the simulated DSM machine, at region granularity.
//
// The simulator executes barrier-delimited parallel regions. Within a
// region every processor runs against an *immutable* directory snapshot
// (deterministic and embarrassingly parallel); each processor buffers the
// set of lines it read-filled and wrote. At the region's closing barrier the
// buffers are merged, in processor order, into the directory:
//
//   - a written line's previous cached copies elsewhere are invalidated
//     (they become coherence misses on their owners' next access),
//   - read lines gain sharers,
//   - lines touched by several processors with at least one writer in the
//     same region are counted as true/false-sharing events (the effect the
//     paper's model deliberately neglects and lists as future work).
//
// Like the real Origin directory, sharer bits are conservative: caches evict
// silently, so an invalidation may target a processor that no longer holds
// the line — the cache model treats that as a no-op, exactly as hardware
// does.
package directory

import "fmt"

// LineInfo is the immutable answer to a snapshot probe.
type LineInfo struct {
	Cached  bool // some processor may hold the line
	Owner   int  // exclusive owner, -1 if none
	Dirty   bool // owner's copy is Modified
	Sharers int  // number of sharers (including a clean owner)
}

type entry struct {
	owner   int16 // -1 when the line is shared or uncached
	dirty   bool
	sharers Bitset
}

// Directory tracks the global coherence state of every line that has ever
// been cached.
type Directory struct {
	procs int
	lines map[uint64]*entry

	invalidationsSent uint64
	sharingLines      uint64 // region-sharing events (≥2 procs, ≥1 writer)
}

// New creates an empty directory for a machine with procs processors.
func New(procs int) *Directory {
	if procs <= 0 {
		panic(fmt.Sprintf("directory: bad processor count %d", procs))
	}
	return &Directory{procs: procs, lines: make(map[uint64]*entry)}
}

// Probe returns the current (snapshot) state of a line. During a region the
// directory is only probed, never mutated, so concurrent probes from the
// per-processor simulation goroutines are safe.
func (d *Directory) Probe(line uint64) LineInfo {
	e, ok := d.lines[line]
	if !ok {
		return LineInfo{Owner: -1}
	}
	info := LineInfo{Cached: true, Owner: int(e.owner), Dirty: e.dirty, Sharers: e.sharers.Count()}
	return info
}

// RegionAccess is one processor's buffered coherence activity for a region.
// ReadFills lists lines the processor filled (L2 misses serviced) for
// reading; Writes lists lines it wrote (write misses and S→M upgrades).
// Slices must not contain duplicates; order is irrelevant.
type RegionAccess struct {
	Proc      int
	ReadFills []uint64
	Writes    []uint64
}

// Invalidation directs the simulator to remove a line from a processor's
// caches.
type Invalidation struct {
	Line uint64
	Proc int
}

// MergeResult reports the cache maintenance the simulator must apply and
// the sharing statistics of the region.
type MergeResult struct {
	// Invalidations lists (line, processor) pairs whose cached copies are
	// stale after the region's writes. Deterministic order: by merge
	// sequence, then processor.
	Invalidations []Invalidation
	// Downgrades lists dirty/exclusive copies that must fall to Shared
	// because a remote processor read the line this region.
	Downgrades []Invalidation
	// SharingLines counts lines accessed by ≥2 processors with ≥1 writer
	// within this region (true or false sharing at line granularity).
	SharingLines int
}

// Merge folds a region's buffered accesses into the directory, in processor
// order, and returns the invalidations/downgrades to apply to the caches.
func (d *Directory) Merge(accesses []RegionAccess) MergeResult {
	var res MergeResult

	// Pass 0: detect intra-region sharing (≥2 distinct procs touching a
	// line, at least one writing it).
	type touch struct {
		readers, writers Bitset
	}
	touched := make(map[uint64]*touch)
	record := func(line uint64, proc int, write bool) {
		t, ok := touched[line]
		if !ok {
			t = &touch{readers: NewBitset(d.procs), writers: NewBitset(d.procs)}
			touched[line] = t
		}
		if write {
			t.writers.Set(proc)
		} else {
			t.readers.Set(proc)
		}
	}
	for _, a := range accesses {
		d.checkProc(a.Proc)
		for _, l := range a.ReadFills {
			record(l, a.Proc, false)
		}
		for _, l := range a.Writes {
			record(l, a.Proc, true)
		}
	}
	for _, t := range touched {
		if t.writers.Count() >= 1 && t.writers.Count()+t.readers.Count() >= 2 {
			// Distinct processors? A proc may both read-fill and write.
			distinct := t.readers.Clone()
			t.writers.ForEach(func(p int) { distinct.Set(p) })
			if distinct.Count() >= 2 {
				res.SharingLines++
				d.sharingLines++
			}
		}
	}

	// Pass 1: writes, in processor order. The last writer in processor
	// order becomes the owner; every other holder is invalidated.
	for _, a := range accesses {
		for _, line := range a.Writes {
			e := d.ensure(line)
			// Invalidate all current holders except the writer.
			e.sharers.ForEach(func(p int) {
				if p != a.Proc {
					res.Invalidations = append(res.Invalidations, Invalidation{Line: line, Proc: p})
					d.invalidationsSent++
				}
			})
			if e.owner >= 0 && int(e.owner) != a.Proc && !e.sharers.Has(int(e.owner)) {
				res.Invalidations = append(res.Invalidations, Invalidation{Line: line, Proc: int(e.owner)})
				d.invalidationsSent++
			}
			e.sharers.Reset()
			e.sharers.Set(a.Proc)
			e.owner = int16(a.Proc)
			e.dirty = true
		}
	}

	// Pass 2: read fills. Readers join the sharer set; a dirty owner other
	// than the reader is downgraded to Shared.
	for _, a := range accesses {
		for _, line := range a.ReadFills {
			e := d.ensure(line)
			if e.owner >= 0 && int(e.owner) != a.Proc {
				if e.dirty {
					res.Downgrades = append(res.Downgrades, Invalidation{Line: line, Proc: int(e.owner)})
				}
				e.dirty = false
				e.owner = -1
			}
			if e.sharers.Count() == 0 && e.owner < 0 {
				// First and only holder: becomes clean exclusive owner.
				e.owner = int16(a.Proc)
				e.dirty = false
			}
			e.sharers.Set(a.Proc)
			if e.sharers.Count() > 1 {
				e.owner = -1
				e.dirty = false
			}
		}
	}
	return res
}

// Evicted tells the directory a processor silently dropped a line (capacity
// replacement). Real hardware does not do this — the Origin directory is
// conservative — but tests use it to verify conservativeness is harmless,
// and what-if studies can model precise directories with it.
func (d *Directory) Evicted(line uint64, proc int) {
	d.checkProc(proc)
	e, ok := d.lines[line]
	if !ok {
		return
	}
	e.sharers.Clear(proc)
	if int(e.owner) == proc {
		e.owner = -1
		e.dirty = false
	}
}

// InvalidationsSent returns the total invalidation messages generated.
func (d *Directory) InvalidationsSent() uint64 { return d.invalidationsSent }

// SharingLineEvents returns the cumulative region-sharing events observed.
func (d *Directory) SharingLineEvents() uint64 { return d.sharingLines }

// TrackedLines returns the number of lines with directory state.
func (d *Directory) TrackedLines() int { return len(d.lines) }

func (d *Directory) ensure(line uint64) *entry {
	e, ok := d.lines[line]
	if !ok {
		e = &entry{owner: -1, sharers: NewBitset(d.procs)}
		d.lines[line] = e
	}
	return e
}

func (d *Directory) checkProc(p int) {
	if p < 0 || p >= d.procs {
		panic(fmt.Sprintf("directory: processor %d out of range [0,%d)", p, d.procs))
	}
}
