// Package directory implements the bit-vector cache-coherence directory of
// the simulated DSM machine, at region granularity.
//
// The simulator executes barrier-delimited parallel regions. Within a
// region every processor runs against an *immutable* directory snapshot
// (deterministic and embarrassingly parallel); each processor buffers the
// set of lines it read-filled and wrote. At the region's closing barrier the
// buffers are merged, in processor order, into the directory:
//
//   - a written line's previous cached copies elsewhere are invalidated
//     (they become coherence misses on their owners' next access),
//   - read lines gain sharers,
//   - lines touched by several processors with at least one writer in the
//     same region are counted as true/false-sharing events (the effect the
//     paper's model deliberately neglects and lists as future work).
//
// Like the real Origin directory, sharer bits are conservative: caches evict
// silently, so an invalidation may target a processor that no longer holds
// the line — the cache model treats that as a no-op, exactly as hardware
// does.
//
// Directory state is laid out flat: an open-addressed table maps a line
// number to an index into dense struct-of-arrays entry storage, and every
// entry's sharer bit-vector lives in one shared word arena (sharerWords
// words per entry). Nothing on the probe path chases a pointer, and the
// merge works entirely out of scratch buffers that are reused from region
// to region — after warm-up a Merge allocates only when the region's
// footprint outgrows every previous region's.
package directory

import (
	"math/bits"
	"slices"
	"strconv"
)

// LineInfo is the immutable answer to a snapshot probe.
type LineInfo struct {
	Cached  bool // some processor may hold the line
	Owner   int  // exclusive owner, -1 if none
	Dirty   bool // owner's copy is Modified
	Sharers int  // number of sharers (including a clean owner)
}

// lineIndex is an open-addressed hash table from line number to a dense
// entry index. Entries are only ever added (directory state persists for
// the whole run), so there are no tombstones; a slot is free iff its value
// is -1.
type lineIndex struct {
	keys []uint64
	vals []int32
	mask uint64
	n    int
}

const lineIndexMinCap = 1024

func newLineIndex(capHint int) lineIndex {
	c := lineIndexMinCap
	for c < capHint {
		c <<= 1
	}
	ix := lineIndex{keys: make([]uint64, c), vals: make([]int32, c), mask: uint64(c - 1)}
	for i := range ix.vals {
		ix.vals[i] = -1
	}
	return ix
}

// hashLine is a splitmix64-style finalizer.
func hashLine(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// slotOf maps a line to its preferred table slot. A pure function —
// concurrent get calls from the in-region simulation goroutines share no
// state.
func (ix *lineIndex) slotOf(line uint64) uint64 {
	return hashLine(line) & ix.mask
}

// get returns the dense index of line, or -1.
func (ix *lineIndex) get(line uint64) int32 {
	i := ix.slotOf(line)
	for {
		v := ix.vals[i]
		if v < 0 || ix.keys[i] == line {
			return v
		}
		i = (i + 1) & ix.mask
	}
}

// put inserts line→idx (line must not be present).
func (ix *lineIndex) put(line uint64, idx int32) {
	if ix.n+1 >= len(ix.keys)-len(ix.keys)/4 {
		ix.grow()
	}
	i := ix.slotOf(line)
	for ix.vals[i] >= 0 {
		i = (i + 1) & ix.mask
	}
	ix.keys[i] = line
	ix.vals[i] = idx
	ix.n++
}

func (ix *lineIndex) grow() { ix.growTo(len(ix.keys) * 2) }

// reserve grows the table in one step until n entries fit within the load
// bound — Merge sizes the scratch table from its input so the per-region
// insert storm rehashes zero times instead of log(n) times.
func (ix *lineIndex) reserve(n int) {
	c := len(ix.keys)
	if n+1 < c-c/4 {
		return
	}
	for n+1 >= c-c/4 {
		c <<= 1
	}
	ix.growTo(c)
}

func (ix *lineIndex) growTo(c int) {
	oldKeys, oldVals := ix.keys, ix.vals
	ix.keys = make([]uint64, c)
	ix.vals = make([]int32, c)
	ix.mask = uint64(c - 1)
	for i := range ix.vals {
		ix.vals[i] = -1
	}
	for i, v := range oldVals {
		if v < 0 {
			continue
		}
		k := oldKeys[i]
		j := ix.slotOf(k)
		for ix.vals[j] >= 0 {
			j = (j + 1) & ix.mask
		}
		ix.keys[j] = k
		ix.vals[j] = v
	}
}

// reset empties the table, keeping capacity.
func (ix *lineIndex) reset() {
	for i := range ix.vals {
		ix.vals[i] = -1
	}
	ix.n = 0
}

// Directory tracks the global coherence state of every line that has ever
// been cached.
type Directory struct {
	procs int
	words int // sharer bit-vector words per entry

	idx     lineIndex
	lines   []uint64 // dense: entry index → line number
	owner   []int16  // -1 when the line is shared or uncached
	dirty   []bool
	sharers []uint64 // word arena: entry i's vector at [i*words, (i+1)*words)

	invalidationsSent uint64
	sharingLines      uint64 // region-sharing events (≥2 procs, ≥1 writer)

	// ensure's run memo: the merge passes walk each processor's sorted line
	// sets, and the dense entry arrays were filled by those same sorted
	// walks, so line k+1 usually lives at entry e+1. The guess is verified
	// against lines[] before use (a sequential read), replacing a scattered
	// hash probe for the common case. Only Merge — single-threaded — calls
	// ensure, so the memo never races with concurrent Probes.
	lastLine  uint64
	lastEntry int32

	// Progress, when non-nil, is invoked by Merge every mergeBeatInterval
	// processed line records. The simulator wires the run's heartbeat here so
	// the watchdog keeps seeing progress through the merge of an enormous
	// region — the merge of a multi-hundred-thousand-line region otherwise
	// runs silent for longer than a tight watchdog deadline. Merge is
	// single-threaded, so the callback never runs concurrently with itself.
	Progress func()

	scratch mergeScratch
}

// mergeBeatInterval is how many line records Merge processes between
// Progress callbacks — same order of magnitude as the lanes'
// heartbeatAccessInterval, far too seldom to measure.
const mergeBeatInterval = 1 << 16

// mergeScratch holds the per-Merge working state, reused across regions.
type mergeScratch struct {
	idx        lineIndex
	touchLines []uint64 // dense: touch index → line (unused values, kept for growth symmetry)
	readers    []uint64 // word arena parallel to touchLines
	writers    []uint64
	inv        []Invalidation
	down       []Invalidation
}

// New creates an empty directory for a machine with procs processors.
func New(procs int) *Directory {
	if procs <= 0 {
		panic("directory: bad processor count " + strconv.Itoa(procs))
	}
	d := &Directory{}
	d.init(procs)
	return d
}

func (d *Directory) init(procs int) {
	d.procs = procs
	d.words = (procs + 63) / 64
	d.idx = newLineIndex(lineIndexMinCap)
	d.scratch.idx = newLineIndex(lineIndexMinCap)
	d.lastEntry = -1
}

// Reset returns the directory to its just-built state for a machine with
// procs processors, reusing the backing arrays. The pooled run arena calls
// this between runs.
func (d *Directory) Reset(procs int) {
	if procs <= 0 {
		panic("directory: bad processor count " + strconv.Itoa(procs))
	}
	d.procs = procs
	d.words = (procs + 63) / 64
	d.idx.reset()
	d.lines = d.lines[:0]
	d.owner = d.owner[:0]
	d.dirty = d.dirty[:0]
	d.sharers = d.sharers[:0]
	d.invalidationsSent = 0
	d.sharingLines = 0
	d.lastLine = 0
	d.lastEntry = -1
}

// Probe returns the current (snapshot) state of a line. During a region the
// directory is only probed, never mutated, so concurrent probes from the
// per-processor simulation goroutines are safe.
func (d *Directory) Probe(line uint64) LineInfo {
	e := d.idx.get(line)
	if e < 0 {
		return LineInfo{Owner: -1}
	}
	return LineInfo{
		Cached:  true,
		Owner:   int(d.owner[e]),
		Dirty:   d.dirty[e],
		Sharers: d.countSharers(int(e)),
	}
}

func (d *Directory) countSharers(e int) int {
	if d.words == 1 {
		return bits.OnesCount64(d.sharers[e])
	}
	c := 0
	for _, w := range d.sharers[e*d.words : (e+1)*d.words] {
		c += bits.OnesCount64(w)
	}
	return c
}

// RegionAccess is one processor's buffered coherence activity for a region.
// ReadFills lists lines the processor filled (L2 misses serviced) for
// reading; Writes lists lines it wrote (write misses and S→M upgrades).
// Slices must not contain duplicates; order is irrelevant.
type RegionAccess struct {
	Proc      int
	ReadFills []uint64
	Writes    []uint64
}

// Invalidation directs the simulator to remove a line from a processor's
// caches.
type Invalidation struct {
	Line uint64
	Proc int
}

// MergeResult reports the cache maintenance the simulator must apply and
// the sharing statistics of the region. The Invalidations and Downgrades
// slices are owned by the directory and valid only until the next Merge;
// callers that need them longer must copy.
type MergeResult struct {
	// Invalidations lists (line, processor) pairs whose cached copies are
	// stale after the region's writes. Deterministic order: by merge
	// sequence, then processor.
	Invalidations []Invalidation
	// Downgrades lists dirty/exclusive copies that must fall to Shared
	// because a remote processor read the line this region.
	Downgrades []Invalidation
	// SharingLines counts lines accessed by ≥2 processors with ≥1 writer
	// within this region (true or false sharing at line granularity).
	SharingLines int
}

// Merge folds a region's buffered accesses into the directory, in processor
// order, and returns the invalidations/downgrades to apply to the caches.
func (d *Directory) Merge(accesses []RegionAccess) MergeResult {
	var res MergeResult
	s := &d.scratch
	s.inv = s.inv[:0]
	s.down = s.down[:0]
	W := d.words

	total := 0
	for _, a := range accesses {
		total += len(a.ReadFills) + len(a.Writes)
	}
	// Presize the directory for the worst case (every record a new line)
	// before the passes run: the index rehashes once while still small and
	// the dense arrays stop doubling mid-merge — no multi-megabyte memmove
	// or rehash storm can open a silent gap between Progress beats.
	d.idx.reserve(d.idx.n + total)
	d.lines = slices.Grow(d.lines, total)
	d.owner = slices.Grow(d.owner, total)
	d.dirty = slices.Grow(d.dirty, total)
	d.sharers = slices.Grow(d.sharers, total*W)
	// Heartbeat counter: step() is called once per processed line record in
	// every pass, so Progress fires at a bounded interval however large the
	// region was.
	wk := 0
	step := func() {
		if wk++; wk >= mergeBeatInterval {
			wk = 0
			if d.Progress != nil {
				d.Progress()
			}
		}
	}

	// Pass 0: detect intra-region sharing (≥2 distinct procs touching a
	// line, at least one writing it). With a single access list ≥2 distinct
	// processors is impossible, so the whole pass — scratch table and all —
	// degenerates to computing zero; uniprocessor runs skip it.
	if len(accesses) > 1 {
		s.idx.reset()
		s.idx.reserve(total)
		s.touchLines = growCap(s.touchLines, total)
		s.readers = growCap(s.readers, total*W)
		s.writers = growCap(s.writers, total*W)
		// The same sorted-run memo ensure uses: each processor's line set is
		// sorted, so repeat touches of consecutive lines resolve by guessing
		// the next dense slot and verifying, instead of re-probing the hash.
		lastL, lastT := ^uint64(0), int32(-1)
		record := func(line uint64, proc int, write bool) {
			t := lastT + 1
			if line != lastL+1 || int(t) >= len(s.touchLines) || s.touchLines[t] != line {
				t = s.idx.get(line)
				if t < 0 {
					t = int32(len(s.touchLines))
					s.idx.put(line, t)
					s.touchLines = append(s.touchLines, line)
					for i := 0; i < W; i++ {
						s.readers = append(s.readers, 0)
						s.writers = append(s.writers, 0)
					}
				}
			}
			lastL, lastT = line, t
			if write {
				s.writers[int(t)*W+proc>>6] |= 1 << (uint(proc) & 63)
			} else {
				s.readers[int(t)*W+proc>>6] |= 1 << (uint(proc) & 63)
			}
			step()
		}
		for _, a := range accesses {
			d.checkProc(a.Proc)
			for _, l := range a.ReadFills {
				record(l, a.Proc, false)
			}
			for _, l := range a.Writes {
				record(l, a.Proc, true)
			}
		}
		if W == 1 {
			// ≤64 processors: one vector word per line, no inner loop.
			for t := range s.touchLines {
				wv, rv := s.writers[t], s.readers[t]
				if wv != 0 && bits.OnesCount64(wv|rv) >= 2 {
					res.SharingLines++
					d.sharingLines++
				}
				step()
			}
		} else {
			for t := range s.touchLines {
				writers, distinct := 0, 0
				for w := 0; w < W; w++ {
					writers += bits.OnesCount64(s.writers[t*W+w])
					distinct += bits.OnesCount64(s.writers[t*W+w] | s.readers[t*W+w])
				}
				if writers >= 1 && distinct >= 2 {
					res.SharingLines++
					d.sharingLines++
				}
				step()
			}
		}
	} else {
		for _, a := range accesses {
			d.checkProc(a.Proc)
		}
	}

	// Pass 1: writes, in processor order. The last writer in processor
	// order becomes the owner; every other holder is invalidated. The
	// W == 1 body (≤64 processors, every current machine) works on the
	// single vector word directly — same invalidation order (ascending
	// processor), same final state, no slice loop per line.
	if W == 1 {
		for _, a := range accesses {
			bit := uint64(1) << (uint(a.Proc) & 63)
			for _, line := range a.Writes {
				e := d.ensure(line)
				w := d.sharers[e]
				for v := w; v != 0; v &= v - 1 {
					p := bits.TrailingZeros64(v)
					if p != a.Proc {
						s.inv = append(s.inv, Invalidation{Line: line, Proc: p})
						d.invalidationsSent++
					}
				}
				if own := d.owner[e]; own >= 0 && int(own) != a.Proc && w&(1<<(uint(own)&63)) == 0 {
					s.inv = append(s.inv, Invalidation{Line: line, Proc: int(own)})
					d.invalidationsSent++
				}
				d.sharers[e] = bit
				d.owner[e] = int16(a.Proc)
				d.dirty[e] = true
				step()
			}
		}
	} else {
		for _, a := range accesses {
			for _, line := range a.Writes {
				e := d.ensure(line)
				// Invalidate all current holders except the writer.
				vec := d.sharers[e*W : (e+1)*W]
				for wi, w := range vec {
					for w != 0 {
						p := wi<<6 + bits.TrailingZeros64(w)
						w &= w - 1
						if p != a.Proc {
							s.inv = append(s.inv, Invalidation{Line: line, Proc: p})
							d.invalidationsSent++
						}
					}
				}
				if own := d.owner[e]; own >= 0 && int(own) != a.Proc && !d.hasSharer(e, int(own)) {
					s.inv = append(s.inv, Invalidation{Line: line, Proc: int(own)})
					d.invalidationsSent++
				}
				clearWords(vec)
				d.setSharer(e, a.Proc)
				d.owner[e] = int16(a.Proc)
				d.dirty[e] = true
				step()
			}
		}
	}

	// Pass 2: read fills. Readers join the sharer set; a dirty owner other
	// than the reader is downgraded to Shared. W == 1 specialized like
	// pass 1.
	if W == 1 {
		for _, a := range accesses {
			bit := uint64(1) << (uint(a.Proc) & 63)
			for _, line := range a.ReadFills {
				e := d.ensure(line)
				if own := d.owner[e]; own >= 0 && int(own) != a.Proc {
					if d.dirty[e] {
						s.down = append(s.down, Invalidation{Line: line, Proc: int(own)})
					}
					d.dirty[e] = false
					d.owner[e] = -1
				}
				sh := d.sharers[e]
				if sh == 0 && d.owner[e] < 0 {
					// First and only holder: becomes clean exclusive owner.
					d.owner[e] = int16(a.Proc)
					d.dirty[e] = false
				}
				sh |= bit
				d.sharers[e] = sh
				if bits.OnesCount64(sh) > 1 {
					d.owner[e] = -1
					d.dirty[e] = false
				}
				step()
			}
		}
	} else {
		for _, a := range accesses {
			for _, line := range a.ReadFills {
				e := d.ensure(line)
				if own := d.owner[e]; own >= 0 && int(own) != a.Proc {
					if d.dirty[e] {
						s.down = append(s.down, Invalidation{Line: line, Proc: int(own)})
					}
					d.dirty[e] = false
					d.owner[e] = -1
				}
				if d.countSharers(e) == 0 && d.owner[e] < 0 {
					// First and only holder: becomes clean exclusive owner.
					d.owner[e] = int16(a.Proc)
					d.dirty[e] = false
				}
				d.setSharer(e, a.Proc)
				if d.countSharers(e) > 1 {
					d.owner[e] = -1
					d.dirty[e] = false
				}
				step()
			}
		}
	}
	res.Invalidations = s.inv
	res.Downgrades = s.down
	return res
}

// growCap truncates b to length 0, reallocating when its capacity is below
// n — one allocation up front instead of a doubling cascade of memmoves
// during the merge's append storm.
func growCap(b []uint64, n int) []uint64 {
	if cap(b) < n {
		return make([]uint64, 0, n)
	}
	return b[:0]
}

func (d *Directory) setSharer(e, p int) {
	d.sharers[e*d.words+p>>6] |= 1 << (uint(p) & 63)
}

func (d *Directory) hasSharer(e, p int) bool {
	return d.sharers[e*d.words+p>>6]&(1<<(uint(p)&63)) != 0
}

func clearWords(w []uint64) {
	for i := range w {
		w[i] = 0
	}
}

// Evicted tells the directory a processor silently dropped a line (capacity
// replacement). Real hardware does not do this — the Origin directory is
// conservative — but tests use it to verify conservativeness is harmless,
// and what-if studies can model precise directories with it.
func (d *Directory) Evicted(line uint64, proc int) {
	d.checkProc(proc)
	e := d.idx.get(line)
	if e < 0 {
		return
	}
	d.sharers[int(e)*d.words+proc>>6] &^= 1 << (uint(proc) & 63)
	if int(d.owner[e]) == proc {
		d.owner[e] = -1
		d.dirty[e] = false
	}
}

// InvalidationsSent returns the total invalidation messages generated.
func (d *Directory) InvalidationsSent() uint64 { return d.invalidationsSent }

// SharingLineEvents returns the cumulative region-sharing events observed.
func (d *Directory) SharingLineEvents() uint64 { return d.sharingLines }

// TrackedLines returns the number of lines with directory state.
func (d *Directory) TrackedLines() int { return len(d.lines) }

// ensure returns the dense entry index of line, creating the entry if new.
func (d *Directory) ensure(line uint64) int {
	if g := d.lastEntry + 1; line == d.lastLine+1 && int(g) < len(d.lines) && d.lines[g] == line {
		d.lastLine, d.lastEntry = line, g
		return int(g)
	}
	if e := d.idx.get(line); e >= 0 {
		d.lastLine, d.lastEntry = line, e
		return int(e)
	}
	e := len(d.lines)
	d.idx.put(line, int32(e))
	d.lines = append(d.lines, line)
	d.owner = append(d.owner, -1)
	d.dirty = append(d.dirty, false)
	for i := 0; i < d.words; i++ {
		d.sharers = append(d.sharers, 0)
	}
	d.lastLine, d.lastEntry = line, int32(e)
	return e
}

func (d *Directory) checkProc(p int) {
	if p < 0 || p >= d.procs {
		panic("directory: processor " + strconv.Itoa(p) + " out of range [0," + strconv.Itoa(d.procs) + ")")
	}
}
