package directory

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBitsetBasics(t *testing.T) {
	b := NewBitset(130)
	for _, p := range []int{0, 63, 64, 129} {
		b.Set(p)
	}
	if b.Count() != 4 {
		t.Fatalf("Count = %d, want 4", b.Count())
	}
	if !b.Has(64) || b.Has(65) {
		t.Fatal("Has wrong")
	}
	b.Clear(64)
	if b.Has(64) || b.Count() != 3 {
		t.Fatal("Clear failed")
	}
	var got []int
	b.ForEach(func(p int) { got = append(got, p) })
	want := []int{0, 63, 129}
	if len(got) != len(want) {
		t.Fatalf("ForEach = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ForEach = %v, want %v", got, want)
		}
	}
	cl := b.Clone()
	cl.Set(5)
	if b.Has(5) {
		t.Fatal("Clone aliases original")
	}
	b.Reset()
	if b.Count() != 0 {
		t.Fatal("Reset failed")
	}
}

func TestProbeUncached(t *testing.T) {
	d := New(4)
	info := d.Probe(42)
	if info.Cached || info.Owner != -1 || info.Sharers != 0 {
		t.Fatalf("uncached probe = %+v", info)
	}
}

func TestFirstReaderBecomesCleanOwner(t *testing.T) {
	d := New(4)
	d.Merge([]RegionAccess{{Proc: 1, ReadFills: []uint64{7}}})
	info := d.Probe(7)
	if !info.Cached || info.Owner != 1 || info.Dirty || info.Sharers != 1 {
		t.Fatalf("probe = %+v, want clean exclusive owner 1", info)
	}
}

func TestSecondReaderSharesAndDowngrades(t *testing.T) {
	d := New(4)
	d.Merge([]RegionAccess{{Proc: 0, Writes: []uint64{7}}})
	res := d.Merge([]RegionAccess{{Proc: 2, ReadFills: []uint64{7}}})
	if len(res.Downgrades) != 1 || res.Downgrades[0] != (Invalidation{Line: 7, Proc: 0}) {
		t.Fatalf("downgrades = %v", res.Downgrades)
	}
	info := d.Probe(7)
	if info.Owner != -1 || info.Dirty || info.Sharers != 2 {
		t.Fatalf("probe = %+v, want shared by 2", info)
	}
}

func TestWriteInvalidatesSharers(t *testing.T) {
	d := New(4)
	d.Merge([]RegionAccess{
		{Proc: 0, ReadFills: []uint64{9}},
		{Proc: 1, ReadFills: []uint64{9}},
		{Proc: 2, ReadFills: []uint64{9}},
	})
	res := d.Merge([]RegionAccess{{Proc: 1, Writes: []uint64{9}}})
	if len(res.Invalidations) != 2 {
		t.Fatalf("invalidations = %v, want procs 0 and 2", res.Invalidations)
	}
	seen := map[int]bool{}
	for _, inv := range res.Invalidations {
		if inv.Line != 9 {
			t.Fatalf("bad line in %v", inv)
		}
		seen[inv.Proc] = true
	}
	if !seen[0] || !seen[2] || seen[1] {
		t.Fatalf("invalidation targets = %v", seen)
	}
	info := d.Probe(9)
	if info.Owner != 1 || !info.Dirty || info.Sharers != 1 {
		t.Fatalf("probe = %+v, want dirty owner 1", info)
	}
	if d.InvalidationsSent() != 2 {
		t.Fatalf("InvalidationsSent = %d", d.InvalidationsSent())
	}
}

func TestWriteInvalidatesDirtyOwner(t *testing.T) {
	d := New(4)
	d.Merge([]RegionAccess{{Proc: 0, Writes: []uint64{5}}})
	res := d.Merge([]RegionAccess{{Proc: 3, Writes: []uint64{5}}})
	if len(res.Invalidations) != 1 || res.Invalidations[0].Proc != 0 {
		t.Fatalf("invalidations = %v, want owner 0", res.Invalidations)
	}
	info := d.Probe(5)
	if info.Owner != 3 || !info.Dirty {
		t.Fatalf("probe = %+v", info)
	}
}

func TestIntraRegionSharingDetected(t *testing.T) {
	d := New(4)
	// Two writers to one line in the same region: a sharing event, last
	// writer (processor order) owns.
	res := d.Merge([]RegionAccess{
		{Proc: 0, Writes: []uint64{11}},
		{Proc: 2, Writes: []uint64{11}},
	})
	if res.SharingLines != 1 {
		t.Fatalf("SharingLines = %d, want 1", res.SharingLines)
	}
	info := d.Probe(11)
	if info.Owner != 2 || !info.Dirty || info.Sharers != 1 {
		t.Fatalf("probe = %+v, want owner 2", info)
	}
	if d.SharingLineEvents() != 1 {
		t.Fatal("cumulative sharing count wrong")
	}
	// Reader+writer in the same region also counts.
	res = d.Merge([]RegionAccess{
		{Proc: 1, ReadFills: []uint64{12}},
		{Proc: 3, Writes: []uint64{12}},
	})
	if res.SharingLines != 1 {
		t.Fatalf("reader+writer SharingLines = %d, want 1", res.SharingLines)
	}
	// Same processor reading and writing its own line is NOT sharing.
	res = d.Merge([]RegionAccess{{Proc: 1, ReadFills: []uint64{13}, Writes: []uint64{13}}})
	if res.SharingLines != 0 {
		t.Fatalf("self access counted as sharing")
	}
	// Multiple pure readers are not sharing either.
	res = d.Merge([]RegionAccess{
		{Proc: 0, ReadFills: []uint64{14}},
		{Proc: 1, ReadFills: []uint64{14}},
	})
	if res.SharingLines != 0 {
		t.Fatal("read-read counted as sharing")
	}
}

func TestEvictedClearsState(t *testing.T) {
	d := New(4)
	d.Merge([]RegionAccess{{Proc: 0, Writes: []uint64{21}}})
	d.Evicted(21, 0)
	// A subsequent writer should generate no invalidations.
	res := d.Merge([]RegionAccess{{Proc: 1, Writes: []uint64{21}}})
	if len(res.Invalidations) != 0 {
		t.Fatalf("invalidations after eviction = %v", res.Invalidations)
	}
	d.Evicted(999, 2) // unknown line: no-op
}

func TestMergeBadProcPanics(t *testing.T) {
	d := New(2)
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	d.Merge([]RegionAccess{{Proc: 2, Writes: []uint64{1}}})
}

func TestNewValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for procs=0")
		}
	}()
	New(0)
}

// Property: after any random sequence of merges, every line's directory
// state is well-formed — a dirty line has exactly one sharer (its owner),
// and owner (when set) is always within range and a member of the sharer
// set.
func TestDirectoryWellFormedProperty(t *testing.T) {
	const procs = 8
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := New(procs)
		for round := 0; round < 30; round++ {
			var accesses []RegionAccess
			for p := 0; p < procs; p++ {
				a := RegionAccess{Proc: p}
				seen := map[uint64]bool{}
				for k := 0; k < rng.Intn(6); k++ {
					line := uint64(rng.Intn(20))
					if seen[line] {
						continue
					}
					seen[line] = true
					if rng.Intn(2) == 0 {
						a.Writes = append(a.Writes, line)
					} else {
						a.ReadFills = append(a.ReadFills, line)
					}
				}
				accesses = append(accesses, a)
			}
			d.Merge(accesses)
			for line := uint64(0); line < 20; line++ {
				info := d.Probe(line)
				if !info.Cached {
					continue
				}
				if info.Dirty && (info.Owner < 0 || info.Sharers != 1) {
					return false
				}
				if info.Owner >= procs {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
