package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"scaltool/internal/machine"
)

// modelCache is an oracle implementation of Cache semantics: per-set slices
// of (line, state) kept explicitly MRU-first. It exists to cross-check the
// packed flat-slot implementation under install/invalidate storms — the
// class of bug where a vacated way keeps a stale slot value (the Invalidate
// tail bug) shows up here as a ForEach or Lookup divergence.
type modelCache struct {
	sets  [][]modelWay
	assoc int
	c     *Cache // for the line→set mapping, which is shared machinery
}

type modelWay struct {
	line uint64
	st   State
}

func newModel(c *Cache, cfg machine.CacheConfig) *modelCache {
	return &modelCache{sets: make([][]modelWay, cfg.Sets()), assoc: cfg.Assoc, c: c}
}

func (m *modelCache) set(line uint64) *[]modelWay { return &m.sets[m.c.SetOf(line)] }

func (m *modelCache) findIn(s []modelWay, line uint64) int {
	for i, w := range s {
		if w.line == line {
			return i
		}
	}
	return -1
}

func (m *modelCache) insert(line uint64, st State) (Eviction, bool) {
	s := m.set(line)
	if i := m.findIn(*s, line); i >= 0 {
		w := (*s)[i]
		w.st = st
		*s = append((*s)[:i], (*s)[i+1:]...)
		*s = append([]modelWay{w}, *s...)
		return Eviction{}, false
	}
	if len(*s) == m.assoc {
		victim := (*s)[len(*s)-1]
		*s = append([]modelWay{{line, st}}, (*s)[:len(*s)-1]...)
		return Eviction{Line: victim.line, State: victim.st}, true
	}
	*s = append([]modelWay{{line, st}}, *s...)
	return Eviction{}, false
}

func (m *modelCache) touch(line uint64) (State, bool) {
	s := m.set(line)
	i := m.findIn(*s, line)
	if i < 0 {
		return Invalid, false
	}
	w := (*s)[i]
	*s = append((*s)[:i], (*s)[i+1:]...)
	*s = append([]modelWay{w}, *s...)
	return w.st, true
}

func (m *modelCache) invalidate(line uint64) (State, bool) {
	s := m.set(line)
	i := m.findIn(*s, line)
	if i < 0 {
		return Invalid, false
	}
	prev := (*s)[i].st
	*s = append((*s)[:i], (*s)[i+1:]...)
	return prev, true
}

func (m *modelCache) downgrade(line uint64) (State, bool) {
	s := m.set(line)
	i := m.findIn(*s, line)
	if i < 0 {
		return Invalid, false
	}
	prev := (*s)[i].st
	if prev == Modified || prev == Exclusive {
		(*s)[i].st = Shared
	}
	return prev, true
}

func (m *modelCache) flush() int {
	dirty := 0
	for i := range m.sets {
		for _, w := range m.sets[i] {
			if w.st == Modified {
				dirty++
			}
		}
		m.sets[i] = m.sets[i][:0]
	}
	return dirty
}

func (m *modelCache) resident() int {
	n := 0
	for _, s := range m.sets {
		n += len(s)
	}
	return n
}

// dump flattens the model in the same deterministic order ForEach promises:
// set-major, MRU-first.
func (m *modelCache) dump() []modelWay {
	var out []modelWay
	for _, s := range m.sets {
		out = append(out, s...)
	}
	return out
}

// TestCacheMatchesModelProperty drives the packed implementation and the
// oracle through the same random storm of inserts, touches, invalidations,
// downgrades, lookups and flushes, comparing every return value and — after
// every step — the complete observable state (Resident plus the exact
// ForEach enumeration). Regression coverage for the Invalidate stale-tail
// bug: leaving a vacated way's old slot value behind makes the enumerations
// diverge on the next aliasing install.
func TestCacheMatchesModelProperty(t *testing.T) {
	cfg := machine.CacheConfig{SizeBytes: 512, LineBytes: 16, Assoc: 2}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := New(cfg, 64)
		m := newModel(c, cfg)
		for i := 0; i < 2000; i++ {
			line := uint64(rng.Intn(96)) // ~6 lines per set: constant aliasing pressure
			switch rng.Intn(6) {
			case 0, 1:
				st := State(1 + rng.Intn(3))
				ev, ok := c.Insert(line, st)
				wantEv, wantOK := m.insert(line, st)
				if ev != wantEv || ok != wantOK {
					t.Logf("seed %d step %d: Insert(%d,%v) = %+v,%v; model %+v,%v",
						seed, i, line, st, ev, ok, wantEv, wantOK)
					return false
				}
			case 2:
				st, ok := c.Touch(line)
				wantSt, wantOK := m.touch(line)
				if st != wantSt || ok != wantOK {
					t.Logf("seed %d step %d: Touch(%d) mismatch", seed, i, line)
					return false
				}
			case 3:
				st, ok := c.Invalidate(line)
				wantSt, wantOK := m.invalidate(line)
				if st != wantSt || ok != wantOK {
					t.Logf("seed %d step %d: Invalidate(%d) mismatch", seed, i, line)
					return false
				}
			case 4:
				st, ok := c.Downgrade(line)
				wantSt, wantOK := m.downgrade(line)
				if st != wantSt || ok != wantOK {
					t.Logf("seed %d step %d: Downgrade(%d) mismatch", seed, i, line)
					return false
				}
			case 5:
				if rng.Intn(50) == 0 { // rare full flush
					if got, want := c.Flush(), m.flush(); got != want {
						t.Logf("seed %d step %d: Flush = %d, model %d", seed, i, got, want)
						return false
					}
				} else {
					st, ok := c.Lookup(line)
					wantSt := Invalid
					wantOK := false
					if j := m.findIn(*m.set(line), line); j >= 0 {
						wantSt, wantOK = (*m.set(line))[j].st, true
					}
					if st != wantSt || ok != wantOK {
						t.Logf("seed %d step %d: Lookup(%d) mismatch", seed, i, line)
						return false
					}
				}
			}
			if c.Resident() != m.resident() {
				t.Logf("seed %d step %d: Resident = %d, model %d", seed, i, c.Resident(), m.resident())
				return false
			}
			want := m.dump()
			var got []modelWay
			c.ForEach(func(l uint64, st State) { got = append(got, modelWay{l, st}) })
			if len(got) != len(want) {
				t.Logf("seed %d step %d: ForEach yielded %d lines, model %d", seed, i, len(got), len(want))
				return false
			}
			for j := range got {
				if got[j] != want[j] {
					t.Logf("seed %d step %d: ForEach[%d] = %+v, model %+v", seed, i, j, got[j], want[j])
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
