package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"scaltool/internal/machine"
)

func tinyCache() *Cache {
	// 4 sets × 2 ways, 16-byte lines.
	return New(machine.CacheConfig{SizeBytes: 128, LineBytes: 16, Assoc: 2}, 64)
}

func TestInsertLookup(t *testing.T) {
	c := tinyCache()
	if _, ok := c.Lookup(1); ok {
		t.Fatal("empty cache claims residency")
	}
	if _, ev := c.Insert(1, Exclusive); ev {
		t.Fatal("insert into empty set evicted")
	}
	st, ok := c.Lookup(1)
	if !ok || st != Exclusive {
		t.Fatalf("Lookup(1) = %v,%v; want E,true", st, ok)
	}
	if c.Resident() != 1 {
		t.Fatalf("Resident = %d, want 1", c.Resident())
	}
}

// aliasingLines returns k distinct lines that all map to the same set of c.
func aliasingLines(c *Cache, k int) []uint64 {
	want := c.SetOf(0)
	out := []uint64{0}
	for l := uint64(1); len(out) < k; l++ {
		if c.SetOf(l) == want {
			out = append(out, l)
		}
	}
	return out
}

func TestLRUEviction(t *testing.T) {
	c := tinyCache()
	ls := aliasingLines(c, 3) // assoc 2: inserting the third evicts the first
	c.Insert(ls[0], Shared)
	c.Insert(ls[1], Shared)
	ev, ok := c.Insert(ls[2], Shared)
	if !ok || ev.Line != ls[0] {
		t.Fatalf("evicted %+v,%v; want line %d", ev, ok, ls[0])
	}
	if _, ok := c.Lookup(ls[0]); ok {
		t.Fatal("LRU line still resident after eviction")
	}
}

func TestTouchRefreshesLRU(t *testing.T) {
	c := tinyCache()
	ls := aliasingLines(c, 3)
	c.Insert(ls[0], Shared)
	c.Insert(ls[1], Shared)
	c.Touch(ls[0]) // now ls[1] is LRU
	ev, ok := c.Insert(ls[2], Shared)
	if !ok || ev.Line != ls[1] {
		t.Fatalf("evicted %+v,%v; want line %d after Touch", ev, ok, ls[1])
	}
}

func TestInsertExistingRefreshes(t *testing.T) {
	c := tinyCache()
	ls := aliasingLines(c, 3)
	c.Insert(ls[0], Shared)
	c.Insert(ls[1], Shared)
	if _, ev := c.Insert(ls[0], Modified); ev {
		t.Fatal("re-insert evicted")
	}
	if st, _ := c.Lookup(ls[0]); st != Modified {
		t.Fatalf("state = %v, want M", st)
	}
	if c.Resident() != 2 {
		t.Fatalf("Resident = %d, want 2", c.Resident())
	}
	// ls[0] is now MRU, so ls[1] gets evicted next.
	if ev, ok := c.Insert(ls[2], Shared); !ok || ev.Line != ls[1] {
		t.Fatalf("evicted %+v, want %d", ev, ls[1])
	}
}

func TestInvalidate(t *testing.T) {
	c := tinyCache()
	c.Insert(7, Modified)
	st, ok := c.Invalidate(7)
	if !ok || st != Modified {
		t.Fatalf("Invalidate = %v,%v; want M,true", st, ok)
	}
	if c.Resident() != 0 {
		t.Fatal("resident after invalidate")
	}
	if _, ok := c.Invalidate(7); ok {
		t.Fatal("double invalidate reported residency")
	}
}

func TestDowngrade(t *testing.T) {
	c := tinyCache()
	c.Insert(3, Modified)
	prev, ok := c.Downgrade(3)
	if !ok || prev != Modified {
		t.Fatalf("Downgrade = %v,%v", prev, ok)
	}
	if st, _ := c.Lookup(3); st != Shared {
		t.Fatalf("state after downgrade = %v, want S", st)
	}
	// Downgrading a Shared line is a no-op.
	prev, _ = c.Downgrade(3)
	if prev != Shared {
		t.Fatalf("second downgrade prev = %v, want S", prev)
	}
}

func TestSetStatePanicsWhenAbsent(t *testing.T) {
	c := tinyCache()
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	c.SetState(99, Modified)
}

func TestInsertInvalidPanics(t *testing.T) {
	c := tinyCache()
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	c.Insert(1, Invalid)
}

func TestFlush(t *testing.T) {
	c := tinyCache()
	c.Insert(0, Modified)
	c.Insert(1, Shared)
	c.Insert(2, Modified)
	if dirty := c.Flush(); dirty != 2 {
		t.Fatalf("Flush dirty = %d, want 2", dirty)
	}
	if c.Resident() != 0 {
		t.Fatal("resident after flush")
	}
}

func TestForEachDeterministic(t *testing.T) {
	c := tinyCache()
	c.Insert(0, Shared)
	c.Insert(5, Exclusive)
	c.Insert(2, Modified)
	var got1, got2 []uint64
	c.ForEach(func(l uint64, _ State) { got1 = append(got1, l) })
	c.ForEach(func(l uint64, _ State) { got2 = append(got2, l) })
	if len(got1) != 3 {
		t.Fatalf("ForEach visited %d lines, want 3", len(got1))
	}
	for i := range got1 {
		if got1[i] != got2[i] {
			t.Fatal("ForEach order not deterministic")
		}
	}
}

func TestStateString(t *testing.T) {
	for st, want := range map[State]string{Invalid: "I", Shared: "S", Exclusive: "E", Modified: "M"} {
		if st.String() != want {
			t.Errorf("%d.String() = %q, want %q", st, st.String(), want)
		}
	}
	if MissCompulsory.String() != "compulsory" || MissCoherence.String() != "coherence" || MissConflict.String() != "conflict" {
		t.Error("MissKind strings wrong")
	}
}

// Property: resident count never exceeds capacity, and Lookup always agrees
// with what was inserted and not since evicted/invalidated.
func TestCacheCapacityProperty(t *testing.T) {
	cfg := machine.CacheConfig{SizeBytes: 256, LineBytes: 16, Assoc: 2}
	capacity := cfg.Lines()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := New(cfg, 64)
		shadow := map[uint64]State{} // possibly stale superset tracking
		for i := 0; i < 500; i++ {
			line := uint64(rng.Intn(64))
			switch rng.Intn(3) {
			case 0:
				st := State(1 + rng.Intn(3))
				if ev, ok := c.Insert(line, st); ok {
					delete(shadow, ev.Line)
				}
				shadow[line] = st
			case 1:
				c.Touch(line)
			case 2:
				c.Invalidate(line)
				delete(shadow, line)
			}
			if c.Resident() > capacity {
				return false
			}
			// Everything the cache reports resident must be in shadow with
			// a matching-or-upgraded state.
			bad := false
			c.ForEach(func(l uint64, st State) {
				if _, ok := shadow[l]; !ok {
					bad = true
				}
			})
			if bad {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
