// Package cache implements the private cache hierarchy of one simulated
// processor: a set-associative L1 data cache and a larger set-associative
// unified L2, both write-back with LRU replacement, holding lines in the
// Illinois-protocol states (Modified / Exclusive / Shared / Invalid) that the
// Origin 2000's coherence scheme uses.
//
// Beyond plain hit/miss simulation, the hierarchy classifies every L2 miss
// into the three categories the paper reasons about:
//
//   - compulsory — the processor has never cached the line before;
//   - coherence  — the line was removed by a remote write's invalidation;
//   - conflict   — everything else (the paper folds capacity and conflict
//     misses together under "conflict misses", §2.1).
//
// This classification is the simulator's ground truth. Scal-Tool never sees
// it; the model must *estimate* the same quantities from event-counter
// aggregates, and the tests compare the two.
package cache

import (
	"fmt"
	"math/bits"

	"scaltool/internal/assert"
	"scaltool/internal/machine"
)

// State is an Illinois/MESI cache-line state.
type State uint8

// Cache line states. The zero value is Invalid.
const (
	Invalid State = iota
	Shared
	Exclusive
	Modified
)

// String returns the conventional one-letter name.
func (s State) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	case Modified:
		return "M"
	}
	return fmt.Sprintf("State(%d)", uint8(s))
}

// MissKind classifies an L2 miss.
type MissKind uint8

// L2 miss classes (ground truth, per §2.1 / Table 2 of the paper).
const (
	MissCompulsory MissKind = iota
	MissCoherence
	MissConflict // capacity + conflict, the paper's combined "conflict misses"
)

func (k MissKind) String() string {
	switch k {
	case MissCompulsory:
		return "compulsory"
	case MissCoherence:
		return "coherence"
	case MissConflict:
		return "conflict"
	}
	return fmt.Sprintf("MissKind(%d)", uint8(k))
}

// Cache is one set-associative, LRU, write-back cache. Lines are identified
// by line number (byte address >> log2(lineBytes)); the cache itself never
// sees byte addresses.
//
// The ways of all sets live in one flat slice indexed by set*assoc+way, each
// slot packing the line number and its state into a single word
// (line<<2 | state). Within a set the occupied ways come first, ordered MRU
// first, and the remaining slots hold 0 (state Invalid). A set probe
// therefore reads exactly one densely-packed word per way — the L2's way
// metadata is megabytes, so every probe is a *host* cache access, and one
// array instead of parallel line/state arrays halves that traffic.
type Cache struct {
	slots    []uint64 // flat ways: slots[set*assoc+way] = line<<2 | state
	assoc    int
	setMask  uint64
	pageBits uint // log2(lines per page) for physical-index emulation; 0 = plain modulo
	resident int

	// Frame-scramble memo: mix64 is a pure function of the page number, and
	// sequential sweeps stay on one page for hundreds of lines, so the
	// invariant memoFrame == mix64(memoPage) (established in New, maintained
	// on every update) lets set() skip the hash for repeat pages. Purely an
	// evaluation cache — no validity bit, no reset, no observable effect.
	memoPage  uint64
	memoFrame uint64
}

// stateBits is the slot width reserved for the packed State.
const stateBits = 2

func packSlot(line uint64, st State) uint64 { return line<<stateBits | uint64(st) }

func slotLine(s uint64) uint64 { return s >> stateBits }
func slotState(s uint64) State { return State(s & (1<<stateBits - 1)) }
func slotEmpty(s uint64) bool  { return s&(1<<stateBits-1) == uint64(Invalid) }
func (c *Cache) setSlotState(i int, st State) {
	c.slots[i] = c.slots[i]&^uint64(1<<stateBits-1) | uint64(st)
}

// New builds an empty cache with the given geometry. pageBytes, when
// positive, enables physical-index emulation: real machines index large
// caches with *physical* addresses, and the OS scatters physical page
// frames, so equal-offset blocks of different arrays land in uncorrelated
// sets. A simulator with virtual==physical and modulo indexing aliases such
// blocks pathologically (every array's block k maps onto the same sets).
// The emulation keeps the within-page index bits and deterministically
// scrambles the page-number bits — contiguous within a page, pseudo-random
// across pages, exactly like random frame allocation.
func New(cfg machine.CacheConfig, pageBytes int) *Cache {
	err := cfg.Validate()
	assert.True(err == nil, "cache: invalid config: %v", err)
	n := cfg.Sets() * cfg.Assoc
	c := &Cache{
		slots:   make([]uint64, n),
		assoc:   cfg.Assoc,
		setMask: uint64(cfg.Sets() - 1),
	}
	if pageBytes > cfg.LineBytes {
		c.pageBits = uint(bits.TrailingZeros(uint(pageBytes / cfg.LineBytes)))
		c.memoFrame = mix64(c.memoPage)
	}
	return c
}

// set maps a line to its set index (see New for the indexing scheme).
func (c *Cache) set(line uint64) int {
	if c.pageBits == 0 {
		return int(line & c.setMask)
	}
	offset := line & (1<<c.pageBits - 1)
	if page := line >> c.pageBits; page != c.memoPage {
		c.memoPage = page
		c.memoFrame = mix64(page)
	}
	return int((offset | c.memoFrame<<c.pageBits) & c.setMask)
}

// mix64 is a splitmix64-style finalizer: a fixed, deterministic bijection
// standing in for the OS's physical frame assignment.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// SetOf exposes the line→set mapping (useful for constructing aliasing
// access patterns in tests and conflict studies).
func (c *Cache) SetOf(line uint64) int { return c.set(line) }

// find returns the slot index of line within its set, or -1. b is the set's
// base slot. Scanning stops at the first Invalid slot: occupied ways are
// always compacted to the front of the set.
func (c *Cache) find(line uint64, b int) int {
	want := packSlot(line, 0)
	for i := b; i < b+c.assoc; i++ {
		s := c.slots[i]
		if slotEmpty(s) {
			return -1
		}
		if s&^uint64(1<<stateBits-1) == want {
			return i
		}
	}
	return -1
}

// used returns the number of occupied ways of the set at base slot b.
func (c *Cache) used(b int) int {
	n := 0
	for n < c.assoc && !slotEmpty(c.slots[b+n]) {
		n++
	}
	return n
}

// toFront moves slot i of the set at base b to the MRU position, shifting
// the ways before it down by one. The shift is a scalar loop, not copy():
// the windows are at most assoc-1 elements, far below where memmove wins.
func (c *Cache) toFront(b, i int) {
	s := c.slots[i]
	for j := i; j > b; j-- {
		c.slots[j] = c.slots[j-1]
	}
	c.slots[b] = s
}

// base returns the first slot of line's set — the b every probe helper
// takes. The hierarchy's access path computes it once per line and reuses it
// across the probe, install and state-change steps of one access, instead of
// re-deriving the set (and its mix64 frame scramble) in every call.
func (c *Cache) base(line uint64) int { return c.set(line) * c.assoc }

// Lookup reports the state of a line without touching LRU order.
func (c *Cache) Lookup(line uint64) (State, bool) {
	if i := c.find(line, c.base(line)); i >= 0 {
		return slotState(c.slots[i]), true
	}
	return Invalid, false
}

// Touch moves a resident line to MRU position and returns its state. The
// second result is false if the line is not resident.
func (c *Cache) Touch(line uint64) (State, bool) {
	return c.touchAt(c.base(line), line)
}

// touchAt is Touch with a precomputed set base, with the probe and the MRU
// reorder fused into one pass. The first way is checked separately: an MRU
// hit — the dominant case — needs no reorder at all.
func (c *Cache) touchAt(b int, line uint64) (State, bool) {
	s := c.slots[b]
	if slotEmpty(s) {
		return Invalid, false
	}
	want := packSlot(line, 0)
	if s&^uint64(1<<stateBits-1) == want {
		return slotState(s), true
	}
	for i := b + 1; i < b+c.assoc; i++ {
		s = c.slots[i]
		if slotEmpty(s) {
			return Invalid, false
		}
		if s&^uint64(1<<stateBits-1) == want {
			c.toFront(b, i)
			return slotState(s), true
		}
	}
	return Invalid, false
}

// probeAt is touchAt for miss-install paths: on a miss it additionally
// reports the first free slot of the set (b+assoc when the set is full), so
// a following installAt need not rescan. On a hit it behaves exactly like
// touchAt and the slot result is meaningless.
func (c *Cache) probeAt(b int, line uint64) (State, bool, int) {
	s := c.slots[b]
	if slotEmpty(s) {
		return Invalid, false, b
	}
	want := packSlot(line, 0)
	if s&^uint64(1<<stateBits-1) == want {
		return slotState(s), true, 0
	}
	for i := b + 1; i < b+c.assoc; i++ {
		s = c.slots[i]
		if slotEmpty(s) {
			return Invalid, false, i
		}
		if s&^uint64(1<<stateBits-1) == want {
			c.toFront(b, i)
			return slotState(s), true, 0
		}
	}
	return Invalid, false, b + c.assoc
}

// installAt installs a known-non-resident line at MRU, given the set's first
// free slot as reported by probeAt with no intervening mutation of the set.
// free == b+assoc means the set is full; the LRU way is dropped silently
// (callers use this only for L1, whose evictions are silent under
// inclusion — the data lives on in L2).
func (c *Cache) installAt(b, free int, line uint64, st State) {
	if free == b+c.assoc {
		free--
	} else {
		c.resident++
	}
	for j := free; j > b; j-- {
		c.slots[j] = c.slots[j-1]
	}
	c.slots[b] = packSlot(line, st)
}

// SetState changes the state of a resident line (e.g. S→M on a write
// upgrade). It panics if the line is not resident: callers must have just
// observed it via Lookup/Touch.
func (c *Cache) SetState(line uint64, st State) {
	if i := c.find(line, c.base(line)); i >= 0 {
		c.setSlotState(i, st)
		return
	}
	assert.Failf("cache: SetState on non-resident line %#x", line)
}

// setStateIfResident changes a line's state if resident, reporting whether
// it was — one probe where a Lookup-then-SetState pair would take two.
func (c *Cache) setStateIfResident(line uint64, st State) bool {
	if i := c.find(line, c.base(line)); i >= 0 {
		c.setSlotState(i, st)
		return true
	}
	return false
}

// Eviction describes a line displaced by Insert.
type Eviction struct {
	Line  uint64
	State State
}

// Insert places a line at MRU in the given state, evicting the LRU way of
// the set if it is full. The evicted line, if any, is returned (callers use
// it to maintain L2→L1 inclusion and to count writebacks of Modified lines).
// Inserting an already-resident line just refreshes state and LRU order.
func (c *Cache) Insert(line uint64, st State) (ev Eviction, evicted bool) {
	return c.insertAt(c.base(line), line, st)
}

// insertAt is Insert with a precomputed set base. The residency probe and
// the free-slot count are one scan (occupied ways are compacted to the
// front, so the first Invalid slot ends both questions at once).
func (c *Cache) insertAt(b int, line uint64, st State) (ev Eviction, evicted bool) {
	if st == Invalid {
		assert.Failf("cache: Insert with Invalid state")
	}
	want := packSlot(line, 0)
	packed := packSlot(line, st)
	end := b + c.assoc
	i := b
	for ; i < end; i++ {
		s := c.slots[i]
		if slotEmpty(s) {
			break // not resident; i is the first free slot
		}
		if s&^uint64(1<<stateBits-1) == want {
			// Already resident: refresh state and LRU order.
			c.toFront(b, i)
			c.slots[b] = packed
			return Eviction{}, false
		}
	}
	if i < end {
		// Shift the occupied ways down one slot and install at MRU.
		for j := i; j > b; j-- {
			c.slots[j] = c.slots[j-1]
		}
		c.slots[b] = packed
		c.resident++
		return Eviction{}, false
	}
	last := end - 1
	victim := Eviction{Line: slotLine(c.slots[last]), State: slotState(c.slots[last])}
	for j := last; j > b; j-- {
		c.slots[j] = c.slots[j-1]
	}
	c.slots[b] = packed
	return victim, true
}

// Invalidate removes a line if resident, returning its prior state. This is
// the path the directory's remote-write invalidations take. The remaining
// ways compact toward the front (preserving LRU order) and the vacated tail
// slot is cleared — no stale way value survives in the set.
func (c *Cache) Invalidate(line uint64) (State, bool) {
	b := c.base(line)
	i := c.find(line, b)
	if i < 0 {
		return Invalid, false
	}
	prev := slotState(c.slots[i])
	n := c.used(b)
	last := b + n - 1
	for j := i; j < last; j++ {
		c.slots[j] = c.slots[j+1]
	}
	c.slots[last] = 0
	c.resident--
	return prev, true
}

// Downgrade moves a resident Modified/Exclusive line to Shared (a remote
// read hitting a dirty or exclusive line). Returns the prior state.
func (c *Cache) Downgrade(line uint64) (State, bool) {
	i := c.find(line, c.base(line))
	if i < 0 {
		return Invalid, false
	}
	prev := slotState(c.slots[i])
	if prev == Modified || prev == Exclusive {
		c.setSlotState(i, Shared)
	}
	return prev, true
}

// Resident returns the number of lines currently cached.
func (c *Cache) Resident() int { return c.resident }

// ForEach calls fn for every resident line in unspecified (but
// deterministic: set-major, MRU-first) order.
func (c *Cache) ForEach(fn func(line uint64, st State)) {
	for b := 0; b < len(c.slots); b += c.assoc {
		for i := b; i < b+c.assoc; i++ {
			s := c.slots[i]
			if slotEmpty(s) {
				break
			}
			fn(slotLine(s), slotState(s))
		}
	}
}

// Flush empties the cache, returning the number of Modified lines dropped
// (writebacks).
func (c *Cache) Flush() int {
	dirty := 0
	for i, s := range c.slots {
		if slotState(s) == Modified {
			dirty++
		}
		c.slots[i] = 0
	}
	c.resident = 0
	return dirty
}

// Reset empties the cache without counting writebacks — the pooled run
// arena's path back to a provably fresh cache. Equivalent to New for every
// observable behavior.
func (c *Cache) Reset() {
	clear(c.slots)
	c.resident = 0
}

// lineShift returns log2(lineBytes).
func lineShift(lineBytes int) uint {
	return uint(bits.TrailingZeros(uint(lineBytes)))
}
