// Package cache implements the private cache hierarchy of one simulated
// processor: a set-associative L1 data cache and a larger set-associative
// unified L2, both write-back with LRU replacement, holding lines in the
// Illinois-protocol states (Modified / Exclusive / Shared / Invalid) that the
// Origin 2000's coherence scheme uses.
//
// Beyond plain hit/miss simulation, the hierarchy classifies every L2 miss
// into the three categories the paper reasons about:
//
//   - compulsory — the processor has never cached the line before;
//   - coherence  — the line was removed by a remote write's invalidation;
//   - conflict   — everything else (the paper folds capacity and conflict
//     misses together under "conflict misses", §2.1).
//
// This classification is the simulator's ground truth. Scal-Tool never sees
// it; the model must *estimate* the same quantities from event-counter
// aggregates, and the tests compare the two.
package cache

import (
	"fmt"
	"math/bits"

	"scaltool/internal/assert"
	"scaltool/internal/machine"
)

// State is an Illinois/MESI cache-line state.
type State uint8

// Cache line states. The zero value is Invalid.
const (
	Invalid State = iota
	Shared
	Exclusive
	Modified
)

// String returns the conventional one-letter name.
func (s State) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	case Modified:
		return "M"
	}
	return fmt.Sprintf("State(%d)", uint8(s))
}

// MissKind classifies an L2 miss.
type MissKind uint8

// L2 miss classes (ground truth, per §2.1 / Table 2 of the paper).
const (
	MissCompulsory MissKind = iota
	MissCoherence
	MissConflict // capacity + conflict, the paper's combined "conflict misses"
)

func (k MissKind) String() string {
	switch k {
	case MissCompulsory:
		return "compulsory"
	case MissCoherence:
		return "coherence"
	case MissConflict:
		return "conflict"
	}
	return fmt.Sprintf("MissKind(%d)", uint8(k))
}

type way struct {
	line  uint64
	state State
}

// Cache is one set-associative, LRU, write-back cache. Lines are identified
// by line number (byte address >> log2(lineBytes)); the cache itself never
// sees byte addresses.
type Cache struct {
	sets     [][]way // sets[i] ordered MRU first; len ≤ assoc
	assoc    int
	setMask  uint64
	pageBits uint // log2(lines per page) for physical-index emulation; 0 = plain modulo
	resident int
}

// New builds an empty cache with the given geometry. pageBytes, when
// positive, enables physical-index emulation: real machines index large
// caches with *physical* addresses, and the OS scatters physical page
// frames, so equal-offset blocks of different arrays land in uncorrelated
// sets. A simulator with virtual==physical and modulo indexing aliases such
// blocks pathologically (every array's block k maps onto the same sets).
// The emulation keeps the within-page index bits and deterministically
// scrambles the page-number bits — contiguous within a page, pseudo-random
// across pages, exactly like random frame allocation.
func New(cfg machine.CacheConfig, pageBytes int) *Cache {
	err := cfg.Validate()
	assert.True(err == nil, "cache: invalid config: %v", err)
	c := &Cache{
		sets:    make([][]way, cfg.Sets()), // per-set slices allocate lazily; most sets stay cold in small runs
		assoc:   cfg.Assoc,
		setMask: uint64(cfg.Sets() - 1),
	}
	if pageBytes > cfg.LineBytes {
		c.pageBits = uint(bits.TrailingZeros(uint(pageBytes / cfg.LineBytes)))
	}
	return c
}

// set maps a line to its set index (see New for the indexing scheme).
func (c *Cache) set(line uint64) int {
	if c.pageBits == 0 {
		return int(line & c.setMask)
	}
	offset := line & (1<<c.pageBits - 1)
	frame := mix64(line >> c.pageBits)
	return int((offset | frame<<c.pageBits) & c.setMask)
}

// mix64 is a splitmix64-style finalizer: a fixed, deterministic bijection
// standing in for the OS's physical frame assignment.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// SetOf exposes the line→set mapping (useful for constructing aliasing
// access patterns in tests and conflict studies).
func (c *Cache) SetOf(line uint64) int { return c.set(line) }

// Lookup reports the state of a line without touching LRU order.
func (c *Cache) Lookup(line uint64) (State, bool) {
	s := c.sets[c.set(line)]
	for _, w := range s {
		if w.line == line {
			return w.state, true
		}
	}
	return Invalid, false
}

// Touch moves a resident line to MRU position and returns its state. The
// second result is false if the line is not resident.
func (c *Cache) Touch(line uint64) (State, bool) {
	s := c.sets[c.set(line)]
	for i, w := range s {
		if w.line == line {
			copy(s[1:i+1], s[:i])
			s[0] = w
			return w.state, true
		}
	}
	return Invalid, false
}

// SetState changes the state of a resident line (e.g. S→M on a write
// upgrade). It panics if the line is not resident: callers must have just
// observed it via Lookup/Touch.
func (c *Cache) SetState(line uint64, st State) {
	s := c.sets[c.set(line)]
	for i := range s {
		if s[i].line == line {
			s[i].state = st
			return
		}
	}
	assert.Failf("cache: SetState on non-resident line %#x", line)
}

// Eviction describes a line displaced by Insert.
type Eviction struct {
	Line  uint64
	State State
}

// Insert places a line at MRU in the given state, evicting the LRU way of
// the set if it is full. The evicted line, if any, is returned (callers use
// it to maintain L2→L1 inclusion and to count writebacks of Modified lines).
// Inserting an already-resident line just refreshes state and LRU order.
func (c *Cache) Insert(line uint64, st State) (ev Eviction, evicted bool) {
	if st == Invalid {
		assert.Failf("cache: Insert with Invalid state")
	}
	idx := c.set(line)
	s := c.sets[idx]
	for i, w := range s {
		if w.line == line {
			copy(s[1:i+1], s[:i])
			s[0] = way{line: line, state: st}
			return Eviction{}, false
		}
	}
	if len(s) < c.assoc {
		s = append(s, way{})
		copy(s[1:], s[:len(s)-1])
		s[0] = way{line: line, state: st}
		c.sets[idx] = s
		c.resident++
		return Eviction{}, false
	}
	victim := s[len(s)-1]
	copy(s[1:], s[:len(s)-1])
	s[0] = way{line: line, state: st}
	return Eviction{Line: victim.line, State: victim.state}, true
}

// Invalidate removes a line if resident, returning its prior state. This is
// the path the directory's remote-write invalidations take.
func (c *Cache) Invalidate(line uint64) (State, bool) {
	idx := c.set(line)
	s := c.sets[idx]
	for i, w := range s {
		if w.line == line {
			c.sets[idx] = append(s[:i], s[i+1:]...)
			c.resident--
			return w.state, true
		}
	}
	return Invalid, false
}

// Downgrade moves a resident Modified/Exclusive line to Shared (a remote
// read hitting a dirty or exclusive line). Returns the prior state.
func (c *Cache) Downgrade(line uint64) (State, bool) {
	s := c.sets[c.set(line)]
	for i := range s {
		if s[i].line == line {
			prev := s[i].state
			if prev == Modified || prev == Exclusive {
				s[i].state = Shared
			}
			return prev, true
		}
	}
	return Invalid, false
}

// Resident returns the number of lines currently cached.
func (c *Cache) Resident() int { return c.resident }

// ForEach calls fn for every resident line in unspecified (but
// deterministic: set-major, MRU-first) order.
func (c *Cache) ForEach(fn func(line uint64, st State)) {
	for _, s := range c.sets {
		for _, w := range s {
			fn(w.line, w.state)
		}
	}
}

// Flush empties the cache, returning the number of Modified lines dropped
// (writebacks).
func (c *Cache) Flush() int {
	dirty := 0
	for i, s := range c.sets {
		for _, w := range s {
			if w.state == Modified {
				dirty++
			}
		}
		c.sets[i] = s[:0]
	}
	c.resident = 0
	return dirty
}

// lineShift returns log2(lineBytes).
func lineShift(lineBytes int) uint {
	return uint(bits.TrailingZeros(uint(lineBytes)))
}
