package cache

import (
	"fmt"

	"scaltool/internal/assert"
	"scaltool/internal/machine"
)

// Level says where in the hierarchy an access was satisfied.
type Level uint8

// Access service levels.
const (
	HitL1 Level = iota
	HitL2
	MissAll // missed both levels; memory/directory involved
)

func (l Level) String() string {
	switch l {
	case HitL1:
		return "L1"
	case HitL2:
		return "L2"
	case MissAll:
		return "mem"
	}
	return fmt.Sprintf("Level(%d)", uint8(l))
}

// Outcome reports everything the simulator needs to cost one access.
type Outcome struct {
	Level  Level
	L2Line uint64   // line number at L2 granularity
	Kind   MissKind // valid only when Level == MissAll

	// StoreToShared is set when a store found the line in state Shared.
	// This mirrors the R10000 event the paper uses to derive ntsync
	// ("a hardware event counter that is incremented when the processor
	// stores on a location that it already has in state shared", §2.4.2).
	StoreToShared bool

	// UpgradeFromShared is set when the store required an ownership
	// upgrade (S→M), which the simulator must charge as a directory
	// transaction and record in its write set.
	UpgradeFromShared bool

	// WritebackL2 is set when the access displaced a Modified L2 line.
	WritebackL2 bool
}

// FillFunc resolves an L2 miss: the simulator consults the directory
// snapshot and returns the state the line is granted in (Exclusive or Shared
// for reads, Modified for writes).
type FillFunc func(l2Line uint64, write bool) State

// Stats aggregates ground-truth counts maintained by the hierarchy itself.
type Stats struct {
	Accesses    uint64
	L1Misses    uint64 // accesses that missed L1 (regardless of L2 outcome)
	L2Misses    uint64
	Compulsory  uint64
	Coherence   uint64
	Conflict    uint64
	Writebacks  uint64
	StoreShared uint64
}

// Hierarchy is one processor's private L1+L2 pair with inclusion
// maintenance, ground-truth miss classification and the store-to-shared
// event counter source.
type Hierarchy struct {
	l1, l2   *Cache
	l1Shift  uint
	l2Shift  uint
	subLines uint64 // L1 lines per L2 line

	everCached  map[uint64]struct{} // L2 lines this processor has ever cached
	invalidated map[uint64]struct{} // L2 lines removed by remote-write invalidation while resident

	stats Stats
}

// NewHierarchy builds the private hierarchy for one processor.
func NewHierarchy(cfg machine.Config) *Hierarchy {
	err := cfg.Validate()
	assert.True(err == nil, "cache: invalid machine config: %v", err)
	return &Hierarchy{
		l1:          New(cfg.L1, cfg.PageBytes),
		l2:          New(cfg.L2, cfg.PageBytes),
		l1Shift:     lineShift(cfg.L1.LineBytes),
		l2Shift:     lineShift(cfg.L2.LineBytes),
		subLines:    uint64(cfg.L2.LineBytes / cfg.L1.LineBytes),
		everCached:  make(map[uint64]struct{}),
		invalidated: make(map[uint64]struct{}),
	}
}

// L2LineOf maps a byte address to its L2 line number.
func (h *Hierarchy) L2LineOf(addr uint64) uint64 { return addr >> h.l2Shift }

// Access runs one load (write=false) or store (write=true) through the
// hierarchy. fill is invoked exactly when the access misses in L2.
func (h *Hierarchy) Access(addr uint64, write bool, fill FillFunc) Outcome {
	h.stats.Accesses++
	l1Line := addr >> h.l1Shift
	l2Line := addr >> h.l2Shift
	out := Outcome{L2Line: l2Line}

	if st, ok := h.l1.Touch(l1Line); ok {
		out.Level = HitL1
		if write {
			h.storeTo(st, l1Line, l2Line, &out)
		}
		return out
	}
	h.stats.L1Misses++

	if st, ok := h.l2.Touch(l2Line); ok {
		out.Level = HitL2
		if write {
			h.storeTo(st, l1Line, l2Line, &out)
			st, _ = h.l2.Lookup(l2Line) // pick up the upgraded state
		}
		h.fillL1(l1Line, st, &out)
		return out
	}

	// Full miss: classify against this processor's history.
	h.stats.L2Misses++
	out.Level = MissAll
	if _, seen := h.everCached[l2Line]; !seen {
		out.Kind = MissCompulsory
		h.stats.Compulsory++
	} else if _, inv := h.invalidated[l2Line]; inv {
		out.Kind = MissCoherence
		h.stats.Coherence++
		delete(h.invalidated, l2Line)
	} else {
		out.Kind = MissConflict
		h.stats.Conflict++
	}
	h.everCached[l2Line] = struct{}{}

	st := fill(l2Line, write)
	if write && st != Modified {
		assert.Failf("cache: fill granted a write in non-Modified state %s", st)
	}
	if st == Invalid {
		assert.Failf("cache: fill granted Invalid state")
	}
	if ev, ok := h.l2.Insert(l2Line, st); ok {
		h.evictL2(ev, &out)
	}
	h.fillL1(l1Line, st, &out)
	return out
}

// storeTo handles the state transition of a store that hit (at either
// level), updating both cache levels to keep their states coherent.
func (h *Hierarchy) storeTo(st State, l1Line, l2Line uint64, out *Outcome) {
	switch st {
	case Shared:
		out.StoreToShared = true
		out.UpgradeFromShared = true
		h.stats.StoreShared++
	case Exclusive, Modified:
		// Silent E→M / already M.
	case Invalid:
		assert.Failf("cache: store hit reported on Invalid line")
	}
	if _, ok := h.l2.Lookup(l2Line); ok {
		h.l2.SetState(l2Line, Modified)
	}
	if _, ok := h.l1.Lookup(l1Line); ok {
		h.l1.SetState(l1Line, Modified)
	}
}

// fillL1 installs the accessed L1 sub-line; L1 evictions are silent (the L2
// retains the data; dirty L1 lines write back into L2, which is already
// tracked as Modified).
func (h *Hierarchy) fillL1(l1Line uint64, st State, out *Outcome) {
	h.l1.Insert(l1Line, st)
	_ = out
}

// evictL2 handles inclusion and writeback accounting for a displaced L2
// line.
func (h *Hierarchy) evictL2(ev Eviction, out *Outcome) {
	if ev.State == Modified {
		h.stats.Writebacks++
		if out != nil {
			out.WritebackL2 = true
		}
	}
	base := ev.Line * h.subLines
	for i := uint64(0); i < h.subLines; i++ {
		h.l1.Invalidate(base + i)
	}
}

// InvalidateRemote applies a directory invalidation (a remote processor
// wrote the line). It reports whether the line was resident in L2, in which
// case the next miss on it is a coherence miss. The caller counts
// invalidation traffic.
func (h *Hierarchy) InvalidateRemote(l2Line uint64) bool {
	_, ok := h.l2.Invalidate(l2Line)
	if ok {
		h.invalidated[l2Line] = struct{}{}
	}
	base := l2Line * h.subLines
	for i := uint64(0); i < h.subLines; i++ {
		h.l1.Invalidate(base + i)
	}
	return ok
}

// DowngradeRemote applies a directory downgrade (a remote processor read a
// line this processor holds in M or E). Returns the prior L2 state.
func (h *Hierarchy) DowngradeRemote(l2Line uint64) (State, bool) {
	prev, ok := h.l2.Downgrade(l2Line)
	if !ok {
		return Invalid, false
	}
	base := l2Line * h.subLines
	for i := uint64(0); i < h.subLines; i++ {
		if _, resident := h.l1.Lookup(base + i); resident {
			h.l1.Downgrade(base + i)
		}
	}
	return prev, ok
}

// HasLine reports whether the L2 currently holds the line, and its state.
func (h *Hierarchy) HasLine(l2Line uint64) (State, bool) { return h.l2.Lookup(l2Line) }

// Stats returns the ground-truth counters accumulated so far.
func (h *Hierarchy) Stats() Stats { return h.stats }

// ResidentL2 returns the number of lines in L2.
func (h *Hierarchy) ResidentL2() int { return h.l2.Resident() }

// EverCached returns how many distinct L2 lines this processor has ever
// cached (the per-processor footprint, used by the ssusage analogue).
func (h *Hierarchy) EverCached() int { return len(h.everCached) }
