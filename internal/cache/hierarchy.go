package cache

import (
	"fmt"

	"scaltool/internal/assert"
	"scaltool/internal/machine"
)

// Level says where in the hierarchy an access was satisfied.
type Level uint8

// Access service levels.
const (
	HitL1 Level = iota
	HitL2
	MissAll // missed both levels; memory/directory involved
)

func (l Level) String() string {
	switch l {
	case HitL1:
		return "L1"
	case HitL2:
		return "L2"
	case MissAll:
		return "mem"
	}
	return fmt.Sprintf("Level(%d)", uint8(l))
}

// Outcome reports everything the simulator needs to cost one access.
type Outcome struct {
	Level  Level
	L2Line uint64   // line number at L2 granularity
	Kind   MissKind // valid only when Level == MissAll

	// StoreToShared is set when a store found the line in state Shared.
	// This mirrors the R10000 event the paper uses to derive ntsync
	// ("a hardware event counter that is incremented when the processor
	// stores on a location that it already has in state shared", §2.4.2).
	StoreToShared bool

	// UpgradeFromShared is set when the store required an ownership
	// upgrade (S→M), which the simulator must charge as a directory
	// transaction and record in its write set.
	UpgradeFromShared bool

	// WritebackL2 is set when the access displaced a Modified L2 line.
	WritebackL2 bool
}

// FillFunc resolves an L2 miss: the simulator consults the directory
// snapshot and returns the state the line is granted in (Exclusive or Shared
// for reads, Modified for writes).
type FillFunc func(l2Line uint64, write bool) State

// Stats aggregates ground-truth counts maintained by the hierarchy itself.
type Stats struct {
	Accesses    uint64
	L1Misses    uint64 // accesses that missed L1 (regardless of L2 outcome)
	L2Misses    uint64
	Compulsory  uint64
	Coherence   uint64
	Conflict    uint64
	Writebacks  uint64
	StoreShared uint64
}

// Hierarchy is one processor's private L1+L2 pair with inclusion
// maintenance, ground-truth miss classification and the store-to-shared
// event counter source.
//
// The per-line history the classifier needs (ever cached? invalidated by a
// remote write?) lives in one open-addressed flag table instead of two Go
// maps, and a one-entry MRU memo short-circuits the dominant access pattern
// of array codes — consecutive accesses to the same L1 line — without
// touching either cache's LRU machinery (the line is already at MRU, and a
// repeat read or an M-state repeat write changes no state anywhere).
type Hierarchy struct {
	l1, l2   *Cache
	l1Shift  uint
	l2Shift  uint
	subLines uint64 // L1 lines per L2 line

	history lineFlags // per-L2-line everCached/invalidated flags

	// MRU memo: the L1 line of the previous access and its post-access
	// state. Valid only while no other cache operation has intervened;
	// every remote operation and L2 eviction clears it.
	memoLine  uint64
	memoState State
	memoOK    bool

	// L2 memo: the most recently touched-or-inserted L2 line and its state.
	// While valid, that line is provably at MRU in its set (nothing else has
	// reordered L2 since), so a repeat L2 access can skip the probe: Touch
	// would find it at the front and move nothing. Cleared by remote
	// operations and evictions; updated by state upgrades.
	memoL2Line  uint64
	memoL2State State
	memoL2OK    bool

	stats Stats
}

// NewHierarchy builds the private hierarchy for one processor.
func NewHierarchy(cfg machine.Config) *Hierarchy {
	err := cfg.Validate()
	assert.True(err == nil, "cache: invalid machine config: %v", err)
	return &Hierarchy{
		l1:       New(cfg.L1, cfg.PageBytes),
		l2:       New(cfg.L2, cfg.PageBytes),
		l1Shift:  lineShift(cfg.L1.LineBytes),
		l2Shift:  lineShift(cfg.L2.LineBytes),
		subLines: uint64(cfg.L2.LineBytes / cfg.L1.LineBytes),
		history:  newLineFlags(),
	}
}

// L2LineOf maps a byte address to its L2 line number.
func (h *Hierarchy) L2LineOf(addr uint64) uint64 { return addr >> h.l2Shift }

// Access runs one load (write=false) or store (write=true) through the
// hierarchy. fill is invoked exactly when the access misses in L2.
func (h *Hierarchy) Access(addr uint64, write bool, fill FillFunc) Outcome {
	h.stats.Accesses++
	l1Line := addr >> h.l1Shift
	l2Line := addr >> h.l2Shift

	// Fast path: repeat access to the previous L1 line. The line is at MRU
	// in both levels, a read changes no state, and a store to a Modified
	// line is silent — byte-identical to the full walk below.
	if h.memoOK && l1Line == h.memoLine && (!write || h.memoState == Modified) {
		return Outcome{Level: HitL1, L2Line: l2Line}
	}
	out := Outcome{L2Line: l2Line}
	l1b := h.l1.base(l1Line)

	st, ok, l1free := h.l1.probeAt(l1b, l1Line)
	if ok {
		out.Level = HitL1
		if write {
			h.storeTo(st, l1Line, l2Line, &out)
			st = Modified
		}
		h.setMemo(l1Line, st)
		return out
	}
	h.stats.L1Misses++
	// From here on l1Line is known non-resident and l1free is its set's first
	// free slot. storeTo's L1 half is then a no-op probe, and the L1 install
	// can reuse l1free — valid on the two L2-hit paths below, where nothing
	// mutates L1 in between, but NOT on the full-miss path, where evictL2 may
	// invalidate sub-lines out of this very set.

	// L2 memo fast path: a repeat access to the most recently used L2 line
	// skips the probe — the line is at MRU, so Touch would be a no-op reorder
	// returning the memoized state.
	if h.memoL2OK && l2Line == h.memoL2Line {
		st = h.memoL2State
		out.Level = HitL2
		if write {
			h.storeTo(st, l1Line, l2Line, &out)
			st = Modified // storeTo upgraded the resident L2 line
		}
		h.l1.installAt(l1b, l1free, l1Line, st)
		h.setMemo(l1Line, st)
		return out
	}

	l2b := h.l2.base(l2Line)
	if st, ok := h.l2.touchAt(l2b, l2Line); ok {
		out.Level = HitL2
		if write {
			h.storeTo(st, l1Line, l2Line, &out)
			st = Modified // storeTo upgraded the resident L2 line
		}
		h.setMemoL2(l2Line, st)
		h.l1.installAt(l1b, l1free, l1Line, st)
		h.setMemo(l1Line, st)
		return out
	}

	// Full miss: classify against this processor's history.
	h.stats.L2Misses++
	out.Level = MissAll
	switch flags := h.history.missClassify(l2Line); {
	case flags&flagEverCached == 0:
		out.Kind = MissCompulsory
		h.stats.Compulsory++
	case flags&flagInvalidated != 0:
		out.Kind = MissCoherence
		h.stats.Coherence++
	default:
		out.Kind = MissConflict
		h.stats.Conflict++
	}

	st = fill(l2Line, write)
	if write && st != Modified {
		assert.Failf("cache: fill granted a write in non-Modified state %s", st)
	}
	if st == Invalid {
		assert.Failf("cache: fill granted Invalid state")
	}
	if ev, ok := h.l2.insertAt(l2b, l2Line, st); ok {
		h.evictL2(ev, &out)
	}
	h.setMemoL2(l2Line, st)
	h.l1.insertAt(l1b, l1Line, st)
	h.setMemo(l1Line, st)
	return out
}

// MemoHit is the memo fast path of Access, split out small enough to inline
// into the simulator's per-access loop: if addr repeats the previous access's
// L1 line (and a store finds it Modified, so the store is silent), the access
// is a pure L1 hit that changes no cache state. On a hit the access counter
// is charged and the caller may skip Access entirely; on false the caller
// must run the full Access, which re-checks the memo harmlessly.
func (h *Hierarchy) MemoHit(addr uint64, write bool) bool {
	if h.memoOK && addr>>h.l1Shift == h.memoLine && (!write || h.memoState == Modified) {
		h.stats.Accesses++
		return true
	}
	return false
}

// AddAccesses counts k accesses that the simulator satisfied from the memo
// without calling MemoHit per access (its same-line batching): one counter
// add instead of k. The hierarchy state is untouched, exactly as k MemoHit
// calls would leave it.
func (h *Hierarchy) AddAccesses(k uint64) { h.stats.Accesses += k }

// L1Shift returns log2(L1 line bytes) — the simulator's batching needs the
// L1 line geometry to prove a run of accesses stays on the memo line.
func (h *Hierarchy) L1Shift() uint { return h.l1Shift }

// setMemo records the line and post-access state of the access that just
// completed.
func (h *Hierarchy) setMemo(l1Line uint64, st State) {
	h.memoLine = l1Line
	h.memoState = st
	h.memoOK = true
}

// storeTo handles the state transition of a store that hit (at either
// level), updating both cache levels to keep their states coherent.
func (h *Hierarchy) storeTo(st State, l1Line, l2Line uint64, out *Outcome) {
	switch st {
	case Shared:
		out.StoreToShared = true
		out.UpgradeFromShared = true
		h.stats.StoreShared++
	case Exclusive:
		// Silent E→M.
	case Modified:
		// Already Modified at the hit level — and by inclusion maintenance
		// the L2 copy of an M-state L1 line is itself M (every path that
		// makes an L1 line Modified made the L2 line Modified too), so the
		// state writes below would be no-ops. Skip both probes.
		return
	case Invalid:
		assert.Failf("cache: store hit reported on Invalid line")
	}
	if h.l2.setStateIfResident(l2Line, Modified) && h.memoL2OK && h.memoL2Line == l2Line {
		h.memoL2State = Modified
	}
	h.l1.setStateIfResident(l1Line, Modified)
}

// setMemoL2 records the L2 line that was just touched or inserted (now at
// MRU) and its post-access state.
func (h *Hierarchy) setMemoL2(l2Line uint64, st State) {
	h.memoL2Line = l2Line
	h.memoL2State = st
	h.memoL2OK = true
}

// fillL1 installs the accessed L1 sub-line; L1 evictions are silent (the L2
// retains the data; dirty L1 lines write back into L2, which is already
// tracked as Modified).
func (h *Hierarchy) fillL1(l1Line uint64, st State, out *Outcome) {
	h.l1.Insert(l1Line, st)
	_ = out
}

// evictL2 handles inclusion and writeback accounting for a displaced L2
// line.
func (h *Hierarchy) evictL2(ev Eviction, out *Outcome) {
	if ev.State == Modified {
		h.stats.Writebacks++
		if out != nil {
			out.WritebackL2 = true
		}
	}
	base := ev.Line * h.subLines
	for i := uint64(0); i < h.subLines; i++ {
		h.l1.Invalidate(base + i)
	}
	// The victim's sub-lines may include the memo line, and the set was
	// reordered; both memos are stale (the miss path re-establishes the L2
	// memo for the newly inserted line).
	h.memoOK = false
	h.memoL2OK = false
}

// InvalidateRemote applies a directory invalidation (a remote processor
// wrote the line). It reports whether the line was resident in L2, in which
// case the next miss on it is a coherence miss. The caller counts
// invalidation traffic.
func (h *Hierarchy) InvalidateRemote(l2Line uint64) bool {
	_, ok := h.l2.Invalidate(l2Line)
	if ok {
		h.history.or(l2Line, flagInvalidated)
	}
	base := l2Line * h.subLines
	for i := uint64(0); i < h.subLines; i++ {
		h.l1.Invalidate(base + i)
	}
	h.memoOK = false
	h.memoL2OK = false
	return ok
}

// DowngradeRemote applies a directory downgrade (a remote processor read a
// line this processor holds in M or E). Returns the prior L2 state.
func (h *Hierarchy) DowngradeRemote(l2Line uint64) (State, bool) {
	prev, ok := h.l2.Downgrade(l2Line)
	if !ok {
		return Invalid, false
	}
	base := l2Line * h.subLines
	for i := uint64(0); i < h.subLines; i++ {
		if _, resident := h.l1.Lookup(base + i); resident {
			h.l1.Downgrade(base + i)
		}
	}
	h.memoOK = false
	h.memoL2OK = false
	return prev, ok
}

// HasLine reports whether the L2 currently holds the line, and its state.
func (h *Hierarchy) HasLine(l2Line uint64) (State, bool) { return h.l2.Lookup(l2Line) }

// Stats returns the ground-truth counters accumulated so far.
func (h *Hierarchy) Stats() Stats { return h.stats }

// ResidentL2 returns the number of lines in L2.
func (h *Hierarchy) ResidentL2() int { return h.l2.Resident() }

// EverCached returns how many distinct L2 lines this processor has ever
// cached (the per-processor footprint, used by the ssusage analogue).
func (h *Hierarchy) EverCached() int { return h.history.count() }

// Reset returns the hierarchy to its just-built state — empty caches, empty
// history, zero counters — reusing every backing array. The pooled run
// arena calls this between runs; the byte-identity gate holds it to being
// indistinguishable from NewHierarchy.
func (h *Hierarchy) Reset() {
	h.l1.Reset()
	h.l2.Reset()
	h.history.reset()
	h.memoOK = false
	h.memoL2OK = false
	h.stats = Stats{}
}
