package cache

// lineFlags is an open-addressed hash table from L2 line number to a small
// flag byte. It replaces the Hierarchy's former everCached/invalidated
// map[uint64]struct{} pair with a single flat probe on the miss-
// classification path: one table, one lookup, zero steady-state allocation
// once grown, and a Reset that recycles the backing arrays for the pooled
// run arena.
//
// Lines are only ever added (flagEverCached never clears), so the table
// needs no tombstones: a slot is occupied iff its flag byte is non-zero.
// Linear probing with a power-of-two capacity and the same splitmix64
// finalizer the cache uses for physical-index emulation keeps probe chains
// short at the 7/8 load bound.
type lineFlags struct {
	keys []uint64
	vals []uint8
	mask uint64
	n    int // occupied slots
}

// Flag bits. flagEverCached marks lines this processor has ever held;
// flagInvalidated marks lines removed by a remote write's invalidation while
// resident (cleared again when the resulting coherence miss is consumed).
const (
	flagEverCached  uint8 = 1 << 0
	flagInvalidated uint8 = 1 << 1
)

const lineFlagsMinCap = 1024

func newLineFlags() lineFlags {
	return lineFlags{
		keys: make([]uint64, lineFlagsMinCap),
		vals: make([]uint8, lineFlagsMinCap),
		mask: lineFlagsMinCap - 1,
	}
}

// slot returns the index of line's slot, or of the empty slot where it
// would be inserted.
func (f *lineFlags) slot(line uint64) uint64 {
	i := mix64(line) & f.mask
	for f.vals[i] != 0 && f.keys[i] != line {
		i = (i + 1) & f.mask
	}
	return i
}

// get returns the flag byte of line (0 if never seen).
func (f *lineFlags) get(line uint64) uint8 { return f.vals[f.slot(line)] }

// or sets the given flag bits on line, inserting it if new.
func (f *lineFlags) or(line uint64, bits uint8) {
	i := f.slot(line)
	if f.vals[i] == 0 {
		if f.n+1 >= len(f.keys)-len(f.keys)/8 {
			f.grow()
			i = f.slot(line)
		}
		f.keys[i] = line
		f.n++
	}
	f.vals[i] |= bits
}

// missClassify returns line's flags as they stood before this miss and
// leaves the slot holding exactly flagEverCached — the state every miss
// classification used to reach via a get plus an or plus (for coherence
// misses) a clearBits, but in one probe instead of two or three. The probe
// is a dependent random-index load, so on large footprints each call is a
// real cache miss; this is the L2-miss path's single hottest table.
func (f *lineFlags) missClassify(line uint64) uint8 {
	i := f.slot(line)
	prev := f.vals[i]
	if prev == 0 {
		if f.n+1 >= len(f.keys)-len(f.keys)/8 {
			f.grow()
			i = f.slot(line)
		}
		f.keys[i] = line
		f.n++
	}
	f.vals[i] = flagEverCached
	return prev
}

// count returns the number of tracked lines.
func (f *lineFlags) count() int { return f.n }

// reset empties the table, keeping capacity.
func (f *lineFlags) reset() {
	clear(f.vals)
	f.n = 0
}

func (f *lineFlags) grow() {
	oldKeys, oldVals := f.keys, f.vals
	cap2 := len(oldKeys) * 2
	f.keys = make([]uint64, cap2)
	f.vals = make([]uint8, cap2)
	f.mask = uint64(cap2 - 1)
	for i, v := range oldVals {
		if v == 0 {
			continue
		}
		k := oldKeys[i]
		j := mix64(k) & f.mask
		for f.vals[j] != 0 {
			j = (j + 1) & f.mask
		}
		f.keys[j] = k
		f.vals[j] = v
	}
}
