package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"scaltool/internal/machine"
)

// testConfig returns a machine with a 256 B / 16 B-line / 2-way L1 and a
// 1 KiB / 16 B-line / 2-way L2 (so L1 and L2 lines coincide), which keeps
// the arithmetic in tests easy.
func testConfig() machine.Config { return machine.TinyTest() }

// grantRead is a FillFunc granting Exclusive to reads and Modified to writes
// (the no-other-sharer directory answer).
func grantRead(_ uint64, write bool) State {
	if write {
		return Modified
	}
	return Exclusive
}

// grantShared grants Shared to reads (some other processor also caches it).
func grantShared(_ uint64, write bool) State {
	if write {
		return Modified
	}
	return Shared
}

func TestFirstAccessIsCompulsoryMiss(t *testing.T) {
	h := NewHierarchy(testConfig())
	out := h.Access(0x100, false, grantRead)
	if out.Level != MissAll || out.Kind != MissCompulsory {
		t.Fatalf("first access = %+v, want compulsory full miss", out)
	}
	if s := h.Stats(); s.Compulsory != 1 || s.L2Misses != 1 || s.L1Misses != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestRepeatAccessHitsL1(t *testing.T) {
	h := NewHierarchy(testConfig())
	h.Access(0x100, false, grantRead)
	out := h.Access(0x100, false, nil) // nil fill: must not be called
	if out.Level != HitL1 {
		t.Fatalf("repeat access level = %v, want L1", out.Level)
	}
	if out.StoreToShared {
		t.Fatal("read flagged StoreToShared")
	}
}

func TestSameLineDifferentWordHitsL1(t *testing.T) {
	h := NewHierarchy(testConfig())
	h.Access(0x100, false, grantRead)
	out := h.Access(0x104, false, nil) // same 16-byte line
	if out.Level != HitL1 {
		t.Fatalf("same-line access = %v, want L1 hit", out.Level)
	}
}

func TestL1EvictionFallsToL2(t *testing.T) {
	cfg := testConfig() // L1: 16 lines (8 sets... actually 256/16=16 lines, 8 sets × 2)
	h := NewHierarchy(cfg)
	l1Lines := cfg.L1.Lines()
	// Touch enough distinct lines to overflow L1 but stay inside L2.
	n := l1Lines * 2
	if n > cfg.L2.Lines() {
		t.Fatalf("test geometry broken: %d > L2 %d", n, cfg.L2.Lines())
	}
	for i := 0; i < n; i++ {
		h.Access(uint64(i*cfg.L1.LineBytes), false, grantRead)
	}
	// Re-walk: everything is still in L2, so no new L2 misses.
	pre := h.Stats().L2Misses
	hitsL2 := 0
	for i := 0; i < n; i++ {
		out := h.Access(uint64(i*cfg.L1.LineBytes), false, grantRead)
		if out.Level == MissAll {
			t.Fatalf("line %d missed L2 on re-walk", i)
		}
		if out.Level == HitL2 {
			hitsL2++
		}
	}
	if h.Stats().L2Misses != pre {
		t.Fatal("re-walk caused L2 misses")
	}
	if hitsL2 == 0 {
		t.Fatal("re-walk never hit L2; L1 eviction not happening?")
	}
}

func TestConflictMissAfterCapacityEviction(t *testing.T) {
	cfg := testConfig()
	h := NewHierarchy(cfg)
	l2Lines := cfg.L2.Lines()
	// Stream through 2× the L2 capacity, then return to line 0: it was
	// evicted, seen before, never invalidated → conflict miss.
	for i := 0; i < 2*l2Lines; i++ {
		h.Access(uint64(i*cfg.L2.LineBytes), false, grantRead)
	}
	out := h.Access(0, false, grantRead)
	if out.Level != MissAll || out.Kind != MissConflict {
		t.Fatalf("return access = %+v, want conflict miss", out)
	}
}

func TestCoherenceMissAfterRemoteInvalidation(t *testing.T) {
	h := NewHierarchy(testConfig())
	h.Access(0x200, false, grantRead)
	line := h.L2LineOf(0x200)
	if !h.InvalidateRemote(line) {
		t.Fatal("InvalidateRemote did not find resident line")
	}
	out := h.Access(0x200, false, grantShared)
	if out.Level != MissAll || out.Kind != MissCoherence {
		t.Fatalf("post-invalidation access = %+v, want coherence miss", out)
	}
	// The classification mark must be consumed: evict it naturally next and
	// the following miss is conflict, not coherence.
	if s := h.Stats(); s.Coherence != 1 {
		t.Fatalf("coherence count = %d, want 1", s.Coherence)
	}
}

func TestInvalidateRemoteAbsentLine(t *testing.T) {
	h := NewHierarchy(testConfig())
	if h.InvalidateRemote(123) {
		t.Fatal("invalidation of absent line reported residency")
	}
	// Absent-line invalidation must NOT poison classification: a later
	// first access is compulsory.
	out := h.Access(123*uint64(testConfig().L2.LineBytes), false, grantRead)
	if out.Kind != MissCompulsory {
		t.Fatalf("kind = %v, want compulsory", out.Kind)
	}
}

func TestStoreToSharedEvent(t *testing.T) {
	h := NewHierarchy(testConfig())
	// Read the line granted Shared, then store to it: the store must raise
	// StoreToShared + UpgradeFromShared, and leave the line Modified.
	h.Access(0x300, false, grantShared)
	out := h.Access(0x300, true, nil)
	if out.Level != HitL1 || !out.StoreToShared || !out.UpgradeFromShared {
		t.Fatalf("store outcome = %+v", out)
	}
	if st, ok := h.HasLine(h.L2LineOf(0x300)); !ok || st != Modified {
		t.Fatalf("L2 state = %v,%v; want M", st, ok)
	}
	if s := h.Stats(); s.StoreShared != 1 {
		t.Fatalf("StoreShared = %d, want 1", s.StoreShared)
	}
	// A second store is a silent M hit.
	out = h.Access(0x300, true, nil)
	if out.StoreToShared {
		t.Fatal("second store flagged StoreToShared again")
	}
}

func TestStoreToExclusiveSilentUpgrade(t *testing.T) {
	h := NewHierarchy(testConfig())
	h.Access(0x400, false, grantRead) // Exclusive
	out := h.Access(0x400, true, nil)
	if out.StoreToShared || out.UpgradeFromShared {
		t.Fatalf("E→M upgrade flagged as shared store: %+v", out)
	}
	if st, _ := h.HasLine(h.L2LineOf(0x400)); st != Modified {
		t.Fatalf("state = %v, want M", st)
	}
}

func TestWriteMissGrantsModified(t *testing.T) {
	h := NewHierarchy(testConfig())
	out := h.Access(0x500, true, grantRead)
	if out.Level != MissAll {
		t.Fatalf("level = %v", out.Level)
	}
	if st, _ := h.HasLine(h.L2LineOf(0x500)); st != Modified {
		t.Fatalf("state = %v, want M", st)
	}
}

func TestFillGrantValidation(t *testing.T) {
	h := NewHierarchy(testConfig())
	for _, bad := range []State{Invalid, Shared} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("write fill granting %v: want panic", bad)
				}
			}()
			h2 := NewHierarchy(testConfig())
			h2.Access(0, true, func(_ uint64, _ bool) State { return bad })
		}()
	}
	_ = h
}

func TestWritebackOnDirtyEviction(t *testing.T) {
	cfg := testConfig()
	h := NewHierarchy(cfg)
	// Dirty twice the L2 capacity in distinct lines: capacity evictions of
	// Modified lines must be counted as writebacks.
	for i := 0; i < 2*cfg.L2.Lines(); i++ {
		h.Access(uint64(i*cfg.L2.LineBytes), true, grantRead)
	}
	if s := h.Stats(); s.Writebacks == 0 {
		t.Fatal("no writeback counted after dirty eviction")
	}
}

func TestInclusionL2EvictionClearsL1(t *testing.T) {
	cfg := testConfig()
	h := NewHierarchy(cfg)
	// Stream 2× the L2 capacity, then check: any line absent from L2 must
	// also miss in L1 (inclusion) — a stale L1 copy would serve it.
	total := 2 * cfg.L2.Lines()
	for i := 0; i < total; i++ {
		h.Access(uint64(i*cfg.L2.LineBytes), false, grantRead)
	}
	checked := false
	for i := 0; i < total && !checked; i++ {
		addr := uint64(i * cfg.L2.LineBytes)
		if _, inL2 := h.HasLine(h.L2LineOf(addr)); !inL2 {
			out := h.Access(addr, false, grantRead)
			if out.Level != MissAll {
				t.Fatalf("evicted L2 line %#x still serviced at %v (inclusion broken)", addr, out.Level)
			}
			checked = true
		}
	}
	if !checked {
		t.Fatal("no line was evicted despite 2x overflow")
	}
}

func TestDowngradeRemote(t *testing.T) {
	h := NewHierarchy(testConfig())
	h.Access(0x600, true, grantRead) // Modified
	prev, ok := h.DowngradeRemote(h.L2LineOf(0x600))
	if !ok || prev != Modified {
		t.Fatalf("DowngradeRemote = %v,%v", prev, ok)
	}
	// Now a store must raise StoreToShared (line is S).
	out := h.Access(0x600, true, nil)
	if !out.StoreToShared {
		t.Fatalf("store after downgrade: %+v, want StoreToShared", out)
	}
	if _, ok := h.DowngradeRemote(9999); ok {
		t.Fatal("downgrade of absent line reported ok")
	}
}

func TestEverCachedFootprint(t *testing.T) {
	cfg := testConfig()
	h := NewHierarchy(cfg)
	for i := 0; i < 10; i++ {
		h.Access(uint64(i*cfg.L2.LineBytes), false, grantRead)
	}
	// Revisits don't grow the footprint.
	h.Access(0, false, grantRead)
	if got := h.EverCached(); got != 10 {
		t.Fatalf("EverCached = %d, want 10", got)
	}
}

// Property: stats are internally consistent under random access streams —
// L2Misses = Compulsory + Coherence + Conflict, L1Misses ≥ L2Misses,
// Accesses ≥ L1Misses, and resident L2 lines never exceed capacity.
func TestHierarchyStatsConsistencyProperty(t *testing.T) {
	cfg := testConfig()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := NewHierarchy(cfg)
		maxLine := uint64(4 * cfg.L2.Lines())
		for i := 0; i < 2000; i++ {
			addr := (uint64(rng.Intn(int(maxLine)))) * uint64(cfg.L1.LineBytes)
			write := rng.Intn(3) == 0
			h.Access(addr, write, grantShared)
			if rng.Intn(50) == 0 {
				h.InvalidateRemote(h.L2LineOf(addr))
			}
			if rng.Intn(50) == 0 {
				h.DowngradeRemote(uint64(rng.Intn(int(maxLine / 4))))
			}
		}
		s := h.Stats()
		if s.L2Misses != s.Compulsory+s.Coherence+s.Conflict {
			return false
		}
		if s.L1Misses < s.L2Misses || s.Accesses < s.L1Misses {
			return false
		}
		return h.ResidentL2() <= cfg.L2.Lines()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
