package memdsm

import (
	"testing"
	"testing/quick"
)

func TestAddressSpaceAllocPageAligned(t *testing.T) {
	as, err := NewAddressSpace(1024)
	if err != nil {
		t.Fatal(err)
	}
	a := as.MustAlloc("a", 100)
	b := as.MustAlloc("b", 3000)
	c := as.MustAlloc("c", 1024)
	if a.Base != 0 || b.Base != 1024 || c.Base != 1024+3*1024 {
		t.Fatalf("bases = %d,%d,%d", a.Base, b.Base, c.Base)
	}
	if as.Bytes() != 5*1024 {
		t.Fatalf("Bytes = %d, want 5120", as.Bytes())
	}
	if got := len(as.Regions()); got != 3 {
		t.Fatalf("Regions = %d, want 3", got)
	}
}

func TestAddressSpaceErrors(t *testing.T) {
	if _, err := NewAddressSpace(0); err == nil {
		t.Error("page 0 accepted")
	}
	if _, err := NewAddressSpace(1000); err == nil {
		t.Error("non-power-of-two page accepted")
	}
	as, _ := NewAddressSpace(64)
	if _, err := as.Alloc("z", 0); err == nil {
		t.Error("zero-size alloc accepted")
	}
}

func TestRegionAddrBounds(t *testing.T) {
	as, _ := NewAddressSpace(64)
	r := as.MustAlloc("r", 128)
	if r.Addr(0) != r.Base || r.Addr(127) != r.Base+127 {
		t.Fatal("Addr math wrong")
	}
	if r.End() != r.Base+128 {
		t.Fatal("End wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-bounds Addr should panic")
		}
	}()
	r.Addr(128)
}

func TestFirstTouchPlacement(t *testing.T) {
	m, err := NewMemory(64, 4, FirstTouch)
	if err != nil {
		t.Fatal(err)
	}
	if h := m.HomeOf(0, 2); h != 2 {
		t.Fatalf("first touch home = %d, want 2", h)
	}
	// Second toucher does not move the page.
	if h := m.HomeOf(32, 3); h != 2 {
		t.Fatalf("page moved on second touch: %d", h)
	}
	if h := m.HomeOf(64, 3); h != 3 {
		t.Fatalf("new page home = %d, want 3", h)
	}
	if m.TouchedPages() != 2 {
		t.Fatalf("TouchedPages = %d, want 2", m.TouchedPages())
	}
}

func TestRoundRobinPlacement(t *testing.T) {
	m, _ := NewMemory(64, 3, RoundRobin)
	for page := 0; page < 9; page++ {
		addr := uint64(page * 64)
		if h := m.HomeOf(addr, 0); h != page%3 {
			t.Fatalf("page %d home = %d, want %d", page, h, page%3)
		}
	}
}

func TestAllOnZeroPlacement(t *testing.T) {
	m, _ := NewMemory(64, 8, AllOnZero)
	for page := 0; page < 5; page++ {
		if h := m.HomeOf(uint64(page*64), 7); h != 0 {
			t.Fatalf("page %d home = %d, want 0", page, h)
		}
	}
}

func TestHomeWithoutAssign(t *testing.T) {
	m, _ := NewMemory(64, 2, FirstTouch)
	if h := m.Home(0); h != -1 {
		t.Fatalf("untouched Home = %d, want -1", h)
	}
	m.HomeOf(0, 1)
	if h := m.Home(0); h != 1 {
		t.Fatalf("Home = %d, want 1", h)
	}
	if h := m.Home(1 << 30); h != -1 {
		t.Fatalf("far-away Home = %d, want -1", h)
	}
}

func TestNewMemoryValidation(t *testing.T) {
	if _, err := NewMemory(63, 2, FirstTouch); err == nil {
		t.Error("bad page size accepted")
	}
	if _, err := NewMemory(64, 0, FirstTouch); err == nil {
		t.Error("zero procs accepted")
	}
}

func TestHomeOfBadToucherPanics(t *testing.T) {
	m, _ := NewMemory(64, 2, FirstTouch)
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	m.HomeOf(0, 2)
}

func TestPlacementString(t *testing.T) {
	if FirstTouch.String() != "first-touch" || RoundRobin.String() != "round-robin" || AllOnZero.String() != "all-on-zero" {
		t.Fatal("Placement strings wrong")
	}
}

// Property: page homes are sticky (first assignment wins) and always within
// [0, procs).
func TestHomeStickinessProperty(t *testing.T) {
	f := func(addrs []uint32, touchers []uint8) bool {
		m, _ := NewMemory(256, 8, FirstTouch)
		first := map[uint64]int{}
		for i, a := range addrs {
			if i >= len(touchers) {
				break
			}
			toucher := int(touchers[i]) % 8
			addr := uint64(a) % (1 << 20) // bound the page table size
			h := m.HomeOf(addr, toucher)
			if h < 0 || h >= 8 {
				return false
			}
			page := m.PageOf(addr)
			if prev, ok := first[page]; ok {
				if h != prev {
					return false
				}
			} else {
				first[page] = h
			}
		}
		return m.TouchedPages() == len(first)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
