// Package memdsm models the distributed main memory of the DSM machine: a
// flat simulated address space carved into pages, where each page has a
// *home node* chosen by a placement policy. The Origin 2000 default the
// paper uses is first-touch: a page's home is the node of the first
// processor that references it. The directory for a line lives at the line's
// home, so page placement determines how far an L2 miss must travel — the
// physical origin of the model's tm(n).
package memdsm

import (
	"errors"
	"fmt"
	"math/bits"

	"scaltool/internal/assert"
)

// Placement selects the page-placement policy.
type Placement uint8

// Placement policies.
const (
	// FirstTouch homes a page at the first processor that references it
	// (the SGI MP-library default the paper's applications run under).
	FirstTouch Placement = iota
	// RoundRobin stripes pages across processors — a common alternative
	// policy, exposed for what-if studies of placement sensitivity.
	RoundRobin
	// AllOnZero homes every page at processor 0, modeling a centralized
	// memory (the worst case for tm(n) scaling).
	AllOnZero
)

func (p Placement) String() string {
	switch p {
	case FirstTouch:
		return "first-touch"
	case RoundRobin:
		return "round-robin"
	case AllOnZero:
		return "all-on-zero"
	}
	return fmt.Sprintf("Placement(%d)", uint8(p))
}

// Region is an allocated span of the simulated address space.
type Region struct {
	Name string
	Base uint64
	Size uint64
}

// End returns one past the last byte.
func (r Region) End() uint64 { return r.Base + r.Size }

// Addr returns the byte address at offset off, panicking on overflow —
// application generators index arrays with it, so out-of-bounds math is a
// bug in the app, not a runtime condition.
func (r Region) Addr(off uint64) uint64 {
	if off >= r.Size {
		assert.Failf("memdsm: offset %d out of region %q (size %d)", off, r.Name, r.Size)
	}
	return r.Base + off
}

// AddressSpace hands out non-overlapping page-aligned regions of the
// simulated memory. Each simulated run builds its own space.
type AddressSpace struct {
	pageBytes uint64
	next      uint64
	regions   []Region
}

// NewAddressSpace creates an allocator whose regions are aligned to
// pageBytes (a power of two).
func NewAddressSpace(pageBytes int) (*AddressSpace, error) {
	if pageBytes <= 0 || pageBytes&(pageBytes-1) != 0 {
		return nil, fmt.Errorf("memdsm: page size %d not a positive power of two", pageBytes)
	}
	return &AddressSpace{pageBytes: uint64(pageBytes)}, nil
}

// Alloc reserves size bytes under the given name. Regions are page-aligned
// and padded to whole pages so distinct arrays never share a page (and hence
// never share an L2 line — the paper's applications are array codes where
// inter-array false sharing is negligible).
func (a *AddressSpace) Alloc(name string, size uint64) (Region, error) {
	if size == 0 {
		return Region{}, errors.New("memdsm: zero-size allocation")
	}
	r := Region{Name: name, Base: a.next, Size: size}
	pages := (size + a.pageBytes - 1) / a.pageBytes
	a.next += pages * a.pageBytes
	a.regions = append(a.regions, r)
	return r, nil
}

// MustAlloc is Alloc for application setup code, where a failure is a
// programming error.
func (a *AddressSpace) MustAlloc(name string, size uint64) Region {
	r, err := a.Alloc(name, size)
	if err != nil {
		panic(err)
	}
	return r
}

// Bytes returns the total reserved bytes (page-padded).
func (a *AddressSpace) Bytes() uint64 { return a.next }

// Regions returns the allocations made so far, in allocation order.
func (a *AddressSpace) Regions() []Region {
	out := make([]Region, len(a.regions))
	copy(out, a.regions)
	return out
}

// Memory tracks page homes for one run.
type Memory struct {
	pageShift uint
	policy    Placement
	procs     int
	homes     []int16 // page → home processor; -1 = untouched
	touched   int
}

// NewMemory creates the page-home table for a run with the given processor
// count and policy.
func NewMemory(pageBytes, procs int, policy Placement) (*Memory, error) {
	if pageBytes <= 0 || pageBytes&(pageBytes-1) != 0 {
		return nil, fmt.Errorf("memdsm: page size %d not a positive power of two", pageBytes)
	}
	if procs <= 0 || procs > 1<<15 {
		return nil, fmt.Errorf("memdsm: bad processor count %d", procs)
	}
	return &Memory{
		pageShift: uint(bits.TrailingZeros(uint(pageBytes))),
		policy:    policy,
		procs:     procs,
	}, nil
}

// PageOf maps an address to its page index.
func (m *Memory) PageOf(addr uint64) uint64 { return addr >> m.pageShift }

// HomeOf returns the home processor of the page containing addr, assigning
// it per the placement policy on first touch. toucher is the referencing
// processor (used by FirstTouch).
func (m *Memory) HomeOf(addr uint64, toucher int) int {
	if toucher < 0 || toucher >= m.procs {
		assert.Failf("memdsm: toucher %d out of range [0,%d)", toucher, m.procs)
	}
	page := m.PageOf(addr)
	for uint64(len(m.homes)) <= page {
		m.homes = append(m.homes, -1)
	}
	if h := m.homes[page]; h >= 0 {
		return int(h)
	}
	var home int
	switch m.policy {
	case FirstTouch:
		home = toucher
	case RoundRobin:
		home = int(page % uint64(m.procs))
	case AllOnZero:
		home = 0
	default:
		assert.Unreachable("memdsm: unknown placement policy")
	}
	m.homes[page] = int16(home)
	m.touched++
	return home
}

// Home returns the page home without assigning (-1 if untouched).
func (m *Memory) Home(addr uint64) int {
	page := m.PageOf(addr)
	if page >= uint64(len(m.homes)) {
		return -1
	}
	return int(m.homes[page])
}

// TouchedPages returns the number of pages with assigned homes — the
// quantity the ssusage analogue reports as the application's resident size.
func (m *Memory) TouchedPages() int { return m.touched }

// Reset empties the page-home table for a new run with the given processor
// count and policy, reusing the backing array (page size is fixed at
// construction). The pooled run arena calls this between runs.
func (m *Memory) Reset(procs int, policy Placement) error {
	if procs <= 0 || procs > 1<<15 {
		return fmt.Errorf("memdsm: bad processor count %d", procs)
	}
	m.homes = m.homes[:0]
	m.touched = 0
	m.procs = procs
	m.policy = policy
	return nil
}

// PageBytes returns the page size.
func (m *Memory) PageBytes() int { return 1 << m.pageShift }
