package memdsm

import "scaltool/internal/assert"

// TLB models one processor's translation lookaside buffer: fully
// associative over page numbers with LRU replacement (the R10000's 64-entry
// TLB, software-reloaded — the reload cost is the machine's TLBMiss
// latency). Scal-Tool's model deliberately neglects TLB misses, exactly as
// the paper does; simulating them makes that neglect a measured
// approximation instead of an omission (perfex does report TLB misses,
// §5: "perfex outputs the number of data and instruction misses in the
// caches and the number of TLB misses").
//
// LRU is kept with per-slot timestamps instead of a move-to-front list:
// a hit stores one stamp (no memmove of the whole slot array), the common
// repeat-same-page case short-circuits through a one-slot memo, and only
// the rare miss pays an O(entries) scan for the minimum stamp. Stamps are
// strictly increasing, so the victim is exactly the least recently used
// page — byte-identical behavior to the list implementation it replaces.
type TLB struct {
	entries int
	pages   []uint64 // slot → page, slots [0,used)
	stamps  []uint64 // slot → last-access clock tick
	used    int
	clock   uint64
	last    int // slot of the previous hit, -1 initially (repeat-page memo)
	misses  uint64
}

// NewTLB creates a TLB with the given entry count (0 disables: every access
// hits).
func NewTLB(entries int) *TLB {
	assert.True(entries >= 0, "memdsm: negative TLB entries %d", entries)
	return &TLB{
		entries: entries,
		pages:   make([]uint64, entries),
		stamps:  make([]uint64, entries),
		last:    -1,
	}
}

// HitLast is Access's repeat-page memo split out small enough to inline
// into the simulator's per-access loop: if page matches the previous hit's
// slot it performs exactly the clock and stamp updates Access would and
// reports the hit, saving the call. On false the caller must run the full
// Access, which re-checks the memo harmlessly (a disabled TLB reports false
// here and hits in Access).
func (t *TLB) HitLast(page uint64) bool {
	if t.entries != 0 && t.last >= 0 && t.pages[t.last] == page {
		t.clock++
		t.stamps[t.last] = t.clock
		return true
	}
	return false
}

// Access looks up a page, updating LRU order; it returns true on a hit.
// A disabled TLB (0 entries) always hits.
func (t *TLB) Access(page uint64) bool {
	if t.entries == 0 {
		return true
	}
	t.clock++
	if t.last >= 0 && t.pages[t.last] == page {
		t.stamps[t.last] = t.clock
		return true
	}
	for i := 0; i < t.used; i++ {
		if t.pages[i] == page {
			t.stamps[i] = t.clock
			t.last = i
			return true
		}
	}
	t.misses++
	slot := t.used
	if t.used < t.entries {
		t.used++
	} else {
		// Evict the least recently used page (unique minimum stamp).
		slot = 0
		for i := 1; i < t.used; i++ {
			if t.stamps[i] < t.stamps[slot] {
				slot = i
			}
		}
	}
	t.pages[slot] = page
	t.stamps[slot] = t.clock
	t.last = slot
	return false
}

// Tick records a guaranteed repeat-page hit: the caller has proven (e.g. via
// the cache hierarchy's same-line memo) that this access touches the same
// page as the previous one, whose slot t.last still points at. It performs
// exactly the clock and stamp updates Access's memo path would — inlineable,
// so the simulator's fast path pays no call.
func (t *TLB) Tick() {
	if t.entries == 0 {
		return
	}
	t.clock++
	t.stamps[t.last] = t.clock
}

// TickN is k consecutive Ticks in one call: the intermediate stamps would
// all be overwritten by the last one (t.last cannot change between Ticks),
// so only the final clock value needs storing. Byte-identical to calling
// Tick k times.
func (t *TLB) TickN(k uint64) {
	if t.entries == 0 || k == 0 {
		return
	}
	t.clock += k
	t.stamps[t.last] = t.clock
}

// Misses returns the cumulative miss count.
func (t *TLB) Misses() uint64 { return t.misses }

// Resident returns the number of cached translations.
func (t *TLB) Resident() int { return t.used }

// Reset empties the TLB and zeroes its miss counter, reusing the slot
// arrays — the pooled run arena's path back to a fresh TLB.
func (t *TLB) Reset() {
	t.used = 0
	t.clock = 0
	t.last = -1
	t.misses = 0
}
