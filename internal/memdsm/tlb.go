package memdsm

import "scaltool/internal/assert"

// TLB models one processor's translation lookaside buffer: fully
// associative over page numbers with LRU replacement (the R10000's 64-entry
// TLB, software-reloaded — the reload cost is the machine's TLBMiss
// latency). Scal-Tool's model deliberately neglects TLB misses, exactly as
// the paper does; simulating them makes that neglect a measured
// approximation instead of an omission (perfex does report TLB misses,
// §5: "perfex outputs the number of data and instruction misses in the
// caches and the number of TLB misses").
type TLB struct {
	entries int
	slots   []uint64 // MRU first
	misses  uint64
}

// NewTLB creates a TLB with the given entry count (0 disables: every access
// hits).
func NewTLB(entries int) *TLB {
	assert.True(entries >= 0, "memdsm: negative TLB entries %d", entries)
	return &TLB{entries: entries}
}

// Access looks up a page, updating LRU order; it returns true on a hit.
// A disabled TLB (0 entries) always hits.
func (t *TLB) Access(page uint64) bool {
	if t.entries == 0 {
		return true
	}
	for i, p := range t.slots {
		if p == page {
			copy(t.slots[1:i+1], t.slots[:i])
			t.slots[0] = page
			return true
		}
	}
	t.misses++
	if len(t.slots) < t.entries {
		t.slots = append(t.slots, 0)
	}
	copy(t.slots[1:], t.slots[:len(t.slots)-1])
	t.slots[0] = page
	return false
}

// Misses returns the cumulative miss count.
func (t *TLB) Misses() uint64 { return t.misses }

// Resident returns the number of cached translations.
func (t *TLB) Resident() int { return len(t.slots) }
