package memdsm

import (
	"testing"
	"testing/quick"
)

func TestTLBBasics(t *testing.T) {
	tlb := NewTLB(2)
	if tlb.Access(1) {
		t.Fatal("cold TLB hit")
	}
	if !tlb.Access(1) {
		t.Fatal("warm miss")
	}
	tlb.Access(2)
	tlb.Access(3) // evicts LRU = 1
	if tlb.Access(1) {
		t.Fatal("evicted page hit")
	}
	if tlb.Misses() != 4 {
		t.Fatalf("misses = %d, want 4", tlb.Misses())
	}
	if tlb.Resident() != 2 {
		t.Fatalf("resident = %d", tlb.Resident())
	}
}

func TestTLBLRUOrder(t *testing.T) {
	tlb := NewTLB(2)
	tlb.Access(1)
	tlb.Access(2)
	tlb.Access(1) // 2 becomes LRU
	tlb.Access(3) // evicts 2
	if !tlb.Access(1) {
		t.Fatal("MRU page evicted")
	}
	if tlb.Access(2) {
		t.Fatal("LRU page survived")
	}
}

func TestTLBDisabled(t *testing.T) {
	tlb := NewTLB(0)
	for p := uint64(0); p < 100; p++ {
		if !tlb.Access(p) {
			t.Fatal("disabled TLB missed")
		}
	}
	if tlb.Misses() != 0 {
		t.Fatal("disabled TLB counted misses")
	}
}

func TestTLBNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	NewTLB(-1)
}

// Property: residency never exceeds capacity, and a working set within
// capacity never misses after the first touch.
func TestTLBProperties(t *testing.T) {
	f := func(pages []uint8, entries8 uint8) bool {
		entries := int(entries8%16) + 1
		tlb := NewTLB(entries)
		for _, p := range pages {
			tlb.Access(uint64(p))
			if tlb.Resident() > entries {
				return false
			}
		}
		// A set that fits: misses only on first touches.
		tlb2 := NewTLB(8)
		miss := 0
		for round := 0; round < 3; round++ {
			for p := uint64(0); p < 8; p++ {
				if !tlb2.Access(p) {
					miss++
				}
			}
		}
		return miss == 8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
