package campaign

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"scaltool/internal/counters"
	"scaltool/internal/health"
	"scaltool/internal/model"
	"scaltool/internal/obs"
)

// This file closes the loop on Table 1's "files" column: each run's counter
// report is one JSON file, a whole campaign is a directory of 2n−1 of them
// (plus the shared kernel files), and the model can be fitted straight from
// such a directory — the workflow a real Scal-Tool user would have, where
// measurement and analysis happen on different days or machines.

// fileName builds the canonical report file name for a run (its RunID, at
// the achieved data-set size, plus the JSON suffix).
func fileName(kind string, procs int, size uint64) string {
	return RunID(kind, procs, size) + ".json"
}

// SaveReports writes every counter report of the campaign into dir (created
// if needed). It returns the number of files written.
func (r *Result) SaveReports(dir string) (int, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return 0, err
	}
	n := 0
	write := func(kind string, rep *counters.RunReport) error {
		path := filepath.Join(dir, fileName(kind, rep.Procs, rep.DataBytes))
		f, err := os.Create(path)
		if err != nil {
			return fmt.Errorf("campaign: saving report for %s: %w", rep.Ident(), err)
		}
		if err := rep.WriteJSON(f); err != nil {
			_ = f.Close()
			return fmt.Errorf("campaign: writing %s: %w", path, err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("campaign: writing %s: %w", path, err)
		}
		n++
		return nil
	}
	for _, res := range r.BaseRuns {
		if err := write("base", &res.Report); err != nil {
			return n, err
		}
	}
	base1 := r.BaseRuns[1]
	for _, res := range r.UniRuns {
		if res == base1 {
			continue // already saved as the 1-processor base run
		}
		if err := write("uni", &res.Report); err != nil {
			return n, err
		}
	}
	for _, res := range r.SyncKernels {
		if err := write("ksync", &res.Report); err != nil {
			return n, err
		}
	}
	if r.SpinKernel != nil {
		if err := write("kspin", &r.SpinKernel.Report); err != nil {
			return n, err
		}
	}
	return n, nil
}

// LoadInputs reads a directory of counter-report files written by
// SaveReports and assembles the model's inputs. Nothing but the files is
// needed — the simulator, the application, and the plan are not consulted.
func LoadInputs(dir string) (model.Inputs, error) {
	var in model.Inputs
	in.SyncKernel = map[int]model.Measurement{}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return in, err
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".json") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names) // deterministic assembly
	var spin *counters.RunReport
	for _, name := range names {
		f, err := os.Open(filepath.Join(dir, name))
		if err != nil {
			return in, err
		}
		rep, err := counters.ReadJSON(f)
		f.Close()
		if err != nil {
			return in, fmt.Errorf("campaign: %s: %w", name, err)
		}
		m := model.FromReport(rep)
		switch {
		case strings.HasPrefix(name, "base_"):
			in.Base = append(in.Base, m)
			if rep.Procs == 1 {
				in.Uniproc = append(in.Uniproc, m)
			}
		case strings.HasPrefix(name, "uni_"):
			in.Uniproc = append(in.Uniproc, m)
		case strings.HasPrefix(name, "ksync_"):
			in.SyncKernel[rep.Procs] = m
		case strings.HasPrefix(name, "kspin_"):
			spin = rep
		default:
			return in, fmt.Errorf("campaign: unrecognized report file %q", name)
		}
	}
	if spin == nil {
		return in, fmt.Errorf("campaign: %s has no spin-kernel report", dir)
	}
	cpiImb, err := model.SpinnerCPI(spin)
	if err != nil {
		return in, fmt.Errorf("campaign: spin kernel %s: %w", spin.Ident(), err)
	}
	in.SpinCPI = cpiImb
	return in, nil
}

// FitDir loads a report directory and fits the model.
func FitDir(dir string, opts model.Options) (*model.Model, error) {
	in, err := LoadInputs(dir)
	if err != nil {
		return nil, err
	}
	return model.Fit(in, opts)
}

// LoadInputsTolerant reads a report directory like LoadInputs, but survives
// damaged inputs: a file that cannot be read or parsed, an unrecognized file
// name, and a report that fails health sanitization are each quarantined
// into the returned health report instead of aborting the load, and every
// repair the sanitizer makes is recorded there. The error is non-nil only
// when what remains cannot possibly fit (no usable spin-kernel report) — it
// then wraps model.ErrInsufficientInputs.
func LoadInputsTolerant(dir string) (model.Inputs, *health.Report, error) {
	return LoadInputsTolerantContext(context.Background(), dir)
}

// LoadInputsTolerantContext is LoadInputsTolerant under a context: an
// observer there gets a "campaign.load" span and a log line per quarantined
// file, plus the per-severity findings counter.
func LoadInputsTolerantContext(ctx context.Context, dir string) (model.Inputs, *health.Report, error) {
	ctx, span := obs.StartSpan(ctx, "campaign.load", obs.A("dir", dir))
	defer span.End()
	var in model.Inputs
	in.SyncKernel = map[int]model.Measurement{}
	hr := health.NewReport()
	entries, err := os.ReadDir(dir)
	if err != nil {
		return in, hr, err
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".json") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names) // deterministic assembly
	quarantine := func(id, detail string) {
		f := health.Finding{Run: id, Check: "file", Severity: health.Quarantine, Detail: detail}
		hr.Add(f)
		hr.AddQuarantine(id)
		logFindings(ctx, []health.Finding{f})
	}
	var spin *counters.RunReport
	for _, name := range names {
		id := strings.TrimSuffix(name, ".json")
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			quarantine(id, err.Error())
			continue
		}
		rep, err := counters.ReadJSON(bytes.NewReader(data))
		if err != nil {
			quarantine(id, fmt.Sprintf("unreadable report: %v", err))
			continue
		}
		clean, findings := health.Sanitize(id, rep, 0)
		hr.Add(findings...)
		logFindings(obs.WithLogger(ctx, obs.Log(ctx).With("run", id)), findings)
		if health.ShouldQuarantine(findings) {
			hr.AddQuarantine(id)
			continue
		}
		m := model.FromReport(clean)
		switch {
		case strings.HasPrefix(name, "base_"):
			in.Base = append(in.Base, m)
			if clean.Procs == 1 {
				in.Uniproc = append(in.Uniproc, m)
			}
		case strings.HasPrefix(name, "uni_"):
			in.Uniproc = append(in.Uniproc, m)
		case strings.HasPrefix(name, "ksync_"):
			in.SyncKernel[clean.Procs] = m
		case strings.HasPrefix(name, "kspin_"):
			spin = clean
		default:
			quarantine(id, "unrecognized report file name")
		}
	}
	hr.Finalize()
	in.DroppedRuns = hr.DroppedRuns()
	if spin == nil {
		return in, hr, fmt.Errorf("campaign: %s has no usable spin-kernel report: %w", dir, model.ErrInsufficientInputs)
	}
	cpiImb, err := model.SpinnerCPI(spin)
	if err != nil {
		return in, hr, fmt.Errorf("campaign: spin kernel %s: %w", spin.Ident(), err)
	}
	in.SpinCPI = cpiImb
	return in, hr, nil
}

// FitDirTolerant loads a report directory tolerantly and fits the model on
// whatever survived, returning the health report alongside. The model's
// Degradation record carries the quarantined run identities.
func FitDirTolerant(dir string, opts model.Options) (*model.Model, *health.Report, error) {
	return FitDirTolerantContext(context.Background(), dir, opts)
}

// FitDirTolerantContext is FitDirTolerant under a context, threading the
// observer through both the tolerant load and the fit.
func FitDirTolerantContext(ctx context.Context, dir string, opts model.Options) (*model.Model, *health.Report, error) {
	in, hr, err := LoadInputsTolerantContext(ctx, dir)
	if err != nil {
		return nil, hr, err
	}
	m, err := model.FitContext(ctx, in, opts)
	return m, hr, err
}
