package campaign

import (
	"os"
	"path/filepath"
	"testing"

	"scaltool/internal/apps"
	"scaltool/internal/model"
)

func TestSaveLoadFitRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign")
	}
	c := cfg()
	app, _ := apps.ByName("swim")
	plan, err := NewPlan(app, c, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	rn := &Runner{Cfg: c}
	res, err := rn.Run(app, plan)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	nFiles, err := res.SaveReports(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Table 1's file count: base runs + fractional uniproc runs (the s0
	// uniproc run is shared), plus the kernel files.
	appFiles := len(res.BaseRuns) + len(res.UniRuns) - 1
	kernelFiles := len(res.SyncKernels) + 1
	if nFiles != appFiles+kernelFiles {
		t.Fatalf("files = %d, want %d app + %d kernel", nFiles, appFiles, kernelFiles)
	}
	entries, err := os.ReadDir(dir)
	if err != nil || len(entries) != nFiles {
		t.Fatalf("dir has %d entries (%v), want %d", len(entries), err, nFiles)
	}

	// Fit the model from the files alone and compare to the in-memory fit.
	opts := model.DefaultOptions(c.L2.SizeBytes)
	fromFiles, err := FitDir(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	inMem, err := res.Fit(opts)
	if err != nil {
		t.Fatal(err)
	}
	if fromFiles.CPI0 != inMem.CPI0 || fromFiles.Tm1 != inMem.Tm1 || fromFiles.T2 != inMem.T2 {
		t.Fatalf("file fit differs: cpi0 %g vs %g, tm %g vs %g",
			fromFiles.CPI0, inMem.CPI0, fromFiles.Tm1, inMem.Tm1)
	}
	bf, bm := fromFiles.Breakdown(), inMem.Breakdown()
	for i := range bf {
		if bf[i] != bm[i] {
			t.Fatalf("breakdown point %d differs: %+v vs %+v", i, bf[i], bm[i])
		}
	}
}

func TestLoadInputsErrors(t *testing.T) {
	if _, err := LoadInputs("/nonexistent-dir"); err == nil {
		t.Error("missing dir accepted")
	}
	dir := t.TempDir()
	if _, err := LoadInputs(dir); err == nil {
		t.Error("empty dir accepted (no spin kernel)")
	}
	// Unrecognized file name.
	if err := os.WriteFile(filepath.Join(dir, "bogus_p01_s1.json"), []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadInputs(dir); err == nil {
		t.Error("bogus report accepted")
	}
}
