package campaign

import (
	"errors"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"scaltool/internal/apps"
	"scaltool/internal/counters"
	"scaltool/internal/model"
)

func TestSaveLoadFitRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign")
	}
	c := cfg()
	app, _ := apps.ByName("swim")
	plan, err := NewPlan(app, c, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	rn := &Runner{Cfg: c}
	res, err := rn.Run(app, plan)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	nFiles, err := res.SaveReports(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Table 1's file count: base runs + fractional uniproc runs (the s0
	// uniproc run is shared), plus the kernel files.
	appFiles := len(res.BaseRuns) + len(res.UniRuns) - 1
	kernelFiles := len(res.SyncKernels) + 1
	if nFiles != appFiles+kernelFiles {
		t.Fatalf("files = %d, want %d app + %d kernel", nFiles, appFiles, kernelFiles)
	}
	entries, err := os.ReadDir(dir)
	if err != nil || len(entries) != nFiles {
		t.Fatalf("dir has %d entries (%v), want %d", len(entries), err, nFiles)
	}

	// Fit the model from the files alone and compare to the in-memory fit.
	opts := model.DefaultOptions(c.L2.SizeBytes)
	fromFiles, err := FitDir(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	inMem, err := res.Fit(opts)
	if err != nil {
		t.Fatal(err)
	}
	if fromFiles.CPI0 != inMem.CPI0 || fromFiles.Tm1 != inMem.Tm1 || fromFiles.T2 != inMem.T2 {
		t.Fatalf("file fit differs: cpi0 %g vs %g, tm %g vs %g",
			fromFiles.CPI0, inMem.CPI0, fromFiles.Tm1, inMem.Tm1)
	}
	bf, bm := fromFiles.Breakdown(), inMem.Breakdown()
	for i := range bf {
		if bf[i] != bm[i] {
			t.Fatalf("breakdown point %d differs: %+v vs %+v", i, bf[i], bm[i])
		}
	}
}

func TestLoadInputsErrors(t *testing.T) {
	if _, err := LoadInputs("/nonexistent-dir"); err == nil {
		t.Error("missing dir accepted")
	}
	dir := t.TempDir()
	if _, err := LoadInputs(dir); err == nil {
		t.Error("empty dir accepted (no spin kernel)")
	}
	// Unrecognized file name.
	if err := os.WriteFile(filepath.Join(dir, "bogus_p01_s1.json"), []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadInputs(dir); err == nil {
		t.Error("bogus report accepted")
	}
}

func TestLoadInputsTolerant(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign")
	}
	c := cfg()
	app, _ := apps.ByName("swim")
	plan, err := NewPlan(app, c, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	rn := &Runner{Cfg: c}
	res, err := rn.Run(app, plan)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if _, err := res.SaveReports(dir); err != nil {
		t.Fatal(err)
	}

	// Damage the directory the way a flaky measurement farm would: truncate
	// one uniprocessor report mid-write, skew another within the repair
	// band, and drop in a file nothing recognizes.
	base1 := res.BaseRuns[1]
	var uniSizes []uint64
	for s, r := range res.UniRuns {
		if r != base1 {
			uniSizes = append(uniSizes, s)
		}
	}
	sort.Slice(uniSizes, func(i, j int) bool { return uniSizes[i] < uniSizes[j] })
	if len(uniSizes) < 3 {
		t.Fatalf("campaign produced only %d distinct uni files", len(uniSizes))
	}
	truncName := fileName("uni", 1, uniSizes[0])
	data, err := os.ReadFile(filepath.Join(dir, truncName))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, truncName), data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	skewName := fileName("uni", 1, uniSizes[1])
	skewRep := res.UniRuns[uniSizes[1]].Report
	skewRep.PerProc = append([]counters.Set(nil), skewRep.PerProc...)
	ops := skewRep.PerProc[0].MemOps()
	skewRep.PerProc[0][counters.L1DMisses] = ops + ops/30
	f, err := os.Create(filepath.Join(dir, skewName))
	if err != nil {
		t.Fatal(err)
	}
	if err := skewRep.WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := os.WriteFile(filepath.Join(dir, "junk_p01_s1.json"), []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}

	// The strict loader must refuse the damaged directory...
	if _, err := LoadInputs(dir); err == nil {
		t.Error("strict loader accepted a damaged directory")
	}
	// ...while the tolerant loader quarantines, repairs, and carries on.
	in, hr, err := LoadInputsTolerant(dir)
	if err != nil {
		t.Fatalf("tolerant load: %v", err)
	}
	truncID := strings.TrimSuffix(truncName, ".json")
	wantQuarantined := map[string]bool{truncID: true, "junk_p01_s1": true}
	if len(hr.Quarantined) != len(wantQuarantined) {
		t.Fatalf("quarantined %v, want %v", hr.Quarantined, wantQuarantined)
	}
	for _, id := range hr.Quarantined {
		if !wantQuarantined[id] {
			t.Errorf("unexpected quarantine %q", id)
		}
	}
	_, repairs, _ := hr.Counts()
	if repairs != 1 {
		t.Errorf("repairs = %d, want 1 (the skewed L2 counter)", repairs)
	}
	if got, want := in.DroppedRuns, hr.DroppedRuns(); len(got) != len(want) {
		t.Errorf("DroppedRuns %v not propagated (%v)", got, want)
	}

	m, hr2, err := FitDirTolerant(dir, model.DefaultOptions(c.L2.SizeBytes))
	if err != nil {
		t.Fatalf("tolerant fit: %v", err)
	}
	if hr2.Clean() {
		t.Error("health report clean despite quarantines")
	}
	if !m.Degradation.Degraded || len(m.Degradation.DroppedRuns) != 2 {
		t.Errorf("degradation = %+v, want 2 dropped runs", m.Degradation)
	}

	// An empty directory is an insufficiency, stated as one.
	_, _, err = LoadInputsTolerant(t.TempDir())
	if !errors.Is(err, model.ErrInsufficientInputs) {
		t.Errorf("empty dir error %v does not wrap ErrInsufficientInputs", err)
	}
}

// TestTolerantLoadDegenerateDirs drives the tolerant loaders into their two
// degenerate corners — an empty directory, and a directory where every file
// is quarantined — and requires a usable (non-nil, finalized) health report
// and an ErrInsufficientInputs refusal in both, never a nil-map panic.
func TestTolerantLoadDegenerateDirs(t *testing.T) {
	opts := model.DefaultOptions(cfg().L2.SizeBytes)

	// Empty directory: nothing to load is an insufficiency, not a crash.
	empty := t.TempDir()
	in, hr, err := LoadInputsTolerant(empty)
	if !errors.Is(err, model.ErrInsufficientInputs) {
		t.Fatalf("empty dir error %v does not wrap ErrInsufficientInputs", err)
	}
	if hr == nil {
		t.Fatal("empty dir returned a nil health report")
	}
	if info, repairs, quarantines := hr.Counts(); info+repairs+quarantines != 0 {
		t.Fatalf("empty dir produced findings: %s", hr.Summary())
	}
	if in.SyncKernel == nil {
		t.Fatal("empty dir left Inputs.SyncKernel nil")
	}
	in.SyncKernel[1] = model.Measurement{} // must not panic
	m, hr, err := FitDirTolerant(empty, opts)
	if !errors.Is(err, model.ErrInsufficientInputs) || m != nil {
		t.Fatalf("tolerant fit of empty dir: m=%v err=%v", m, err)
	}
	if hr == nil || hr.Summary() == "" {
		t.Fatalf("tolerant fit of empty dir returned an unusable health report: %v", hr)
	}

	// Every file quarantined: the report must name each casualty and the
	// load must still end in a stated insufficiency.
	rotten := t.TempDir()
	casualties := []string{"uni_p01_s64", "kspin_p01_s0"}
	for _, id := range casualties {
		if err := os.WriteFile(filepath.Join(rotten, id+".json"), []byte("not json"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	in, hr, err = LoadInputsTolerant(rotten)
	if !errors.Is(err, model.ErrInsufficientInputs) {
		t.Fatalf("all-quarantined dir error %v does not wrap ErrInsufficientInputs", err)
	}
	if len(hr.Quarantined) != len(casualties) {
		t.Fatalf("quarantined %v, want %v", hr.Quarantined, casualties)
	}
	dropped := map[string]bool{}
	for _, id := range in.DroppedRuns {
		dropped[id] = true
	}
	for _, id := range casualties {
		if !dropped[id] {
			t.Fatalf("DroppedRuns %v is missing quarantined file %s", in.DroppedRuns, id)
		}
	}
	m, hr, err = FitDirTolerant(rotten, opts)
	if !errors.Is(err, model.ErrInsufficientInputs) || m != nil {
		t.Fatalf("tolerant fit of all-quarantined dir: m=%v err=%v", m, err)
	}
	if _, _, quarantines := hr.Counts(); quarantines != len(casualties) {
		t.Fatalf("health report lost the quarantines: %s", hr.Summary())
	}
}
