package campaign

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"scaltool/internal/obs"
)

// This file is the worker supervisor: per-worker heartbeats, a watchdog
// that cancels and restarts workers that miss their deadline, and a bounded
// restart budget after which the run is quarantined through internal/health.
//
// The per-attempt deadline (Runner.RunTimeout) bounds how long one attempt
// may take; the heartbeat deadline (Runner.HeartbeatTimeout) bounds how
// long a worker may go without making *progress*. A simulator stuck in a
// livelock inside one region blows the heartbeat long before any generous
// whole-run deadline, and the watchdog restarts just that worker instead of
// waiting out — or killing — the campaign.
//
// State machine of one supervised worker (DESIGN §10):
//
//	      arm                    beat            disarm
//	idle ────▶ running ──(progress)──▶ running ────▶ idle
//	              │ heartbeat missed
//	              ▼
//	          kicked ──(restarts ≤ MaxWorkerRestarts)──▶ re-armed (retry loop)
//	              │ restarts exceeded
//	              ▼
//	          poisoned ──▶ run quarantined in the health report
type supervisor struct {
	timeout     time.Duration
	maxRestarts int
	mt          *obs.Metrics

	mu      sync.Mutex
	workers map[string]*worker

	stop chan struct{}
	done chan struct{}
}

// worker is the supervisor's view of one run's goroutine.
type worker struct {
	id   string
	sup  *supervisor
	beat atomic.Int64 // unix nanos of the last heartbeat

	mu       sync.Mutex
	cancel   context.CancelFunc // cancels the current attempt; nil when idle
	kicked   bool               // watchdog canceled the current attempt
	poisoned bool               // restart budget exhausted
	restarts int
}

// newSupervisor builds a supervisor with the given heartbeat deadline and
// restart budget. Returns nil when the deadline is unset (watchdog off).
func newSupervisor(timeout time.Duration, maxRestarts int, mt *obs.Metrics) *supervisor {
	if timeout <= 0 {
		return nil
	}
	return &supervisor{
		timeout:     timeout,
		maxRestarts: maxRestarts,
		mt:          mt,
		workers:     map[string]*worker{},
		stop:        make(chan struct{}),
		done:        make(chan struct{}),
	}
}

// start launches the watchdog. ctx cancellation stops it, as does stopWait.
// Safe on nil.
func (s *supervisor) start(ctx context.Context) {
	if s == nil {
		return
	}
	go s.watch(ctx)
}

// stopWait shuts the watchdog down and waits for it to exit. Safe on nil.
func (s *supervisor) stopWait() {
	if s == nil {
		return
	}
	close(s.stop)
	<-s.done
}

// watch is the watchdog loop: every quarter deadline it scans the armed
// workers and kicks (or poisons) any whose last heartbeat is stale.
func (s *supervisor) watch(ctx context.Context) {
	defer close(s.done)
	tick := s.timeout / 4
	if tick < time.Millisecond {
		tick = time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-ctx.Done():
			return
		case <-t.C:
			s.scan(ctx)
		}
	}
}

// scan kicks every armed worker whose heartbeat is older than the deadline.
func (s *supervisor) scan(ctx context.Context) {
	now := time.Now().UnixNano()
	s.mu.Lock()
	stale := make([]*worker, 0, 1)
	for _, w := range s.workers {
		if now-w.beat.Load() > int64(s.timeout) {
			stale = append(stale, w)
		}
	}
	s.mu.Unlock()
	for _, w := range stale {
		w.kick(ctx, s.maxRestarts)
	}
}

// register adds (or re-fetches) the worker for a run. Safe on nil, which
// returns a nil worker (all of whose methods are no-ops).
func (s *supervisor) register(id string) *worker {
	if s == nil {
		return nil
	}
	w := &worker{id: id, sup: s}
	w.beat.Store(time.Now().UnixNano())
	s.mu.Lock()
	s.workers[id] = w
	s.mu.Unlock()
	if g := s.mt.Gauge("scaltool_supervisor_workers_active", "campaign workers currently supervised"); g != nil {
		s.mu.Lock()
		g.Set(float64(len(s.workers)))
		s.mu.Unlock()
	}
	return w
}

// release removes a finished worker. Safe on nil.
func (s *supervisor) release(id string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	delete(s.workers, id)
	n := len(s.workers)
	s.mu.Unlock()
	s.mt.Gauge("scaltool_supervisor_workers_active", "campaign workers currently supervised").Set(float64(n))
}

// kick handles one missed heartbeat: cancel the worker's current attempt
// and either grant a restart or poison the run.
func (w *worker) kick(ctx context.Context, maxRestarts int) {
	w.mu.Lock()
	cancel := w.cancel
	if cancel == nil { // attempt already finished; nothing to reap
		w.mu.Unlock()
		return
	}
	w.cancel = nil
	if w.restarts >= maxRestarts {
		w.poisoned = true
	} else {
		w.restarts++
		w.kicked = true
	}
	restarts, poisoned := w.restarts, w.poisoned
	w.mu.Unlock()

	if mt := w.sup.mt; mt != nil {
		if poisoned {
			mt.Counter("scaltool_supervisor_quarantines_total", "runs quarantined after exhausting watchdog restarts").Inc()
		} else {
			mt.Counter("scaltool_supervisor_restarts_total", "workers restarted after a missed heartbeat").Inc()
		}
	}
	obs.Log(ctx).Warn("watchdog: heartbeat missed", "run", w.id,
		"restarts", restarts, "max_restarts", maxRestarts, "poisoned", poisoned)
	cancel()
}

// heartbeat records progress. The simulator calls it at region boundaries
// (sim.WithHeartbeat); the run loop calls it at attempt boundaries. Safe on
// nil.
func (w *worker) heartbeat() {
	if w == nil {
		return
	}
	w.beat.Store(time.Now().UnixNano())
	w.sup.mt.Counter("scaltool_supervisor_heartbeats_total", "worker progress heartbeats observed").Inc()
}

// arm installs the cancel func of a new attempt and resets the kicked flag.
// Safe on nil.
func (w *worker) arm(cancel context.CancelFunc) {
	if w == nil {
		return
	}
	w.heartbeat()
	w.mu.Lock()
	w.cancel = cancel
	w.kicked = false
	w.mu.Unlock()
}

// disarm detaches the watchdog from a finished attempt and reports whether
// the watchdog fired on it (kicked) and whether the restart budget is
// exhausted (poisoned). Safe on nil.
func (w *worker) disarm() (kicked, poisoned bool) {
	if w == nil {
		return false, false
	}
	w.heartbeat()
	w.mu.Lock()
	defer w.mu.Unlock()
	w.cancel = nil
	return w.kicked, w.poisoned
}

// restartCount returns how many times the watchdog restarted this worker.
// Safe on nil.
func (w *worker) restartCount() int {
	if w == nil {
		return 0
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.restarts
}
