package campaign

import (
	"errors"
	"fmt"
	"sort"

	"scaltool/internal/sim"
)

// ErrNoAttribution reports a base run that carries no simulator ground
// truth. A run replayed from the journal holds counters only, so a resumed
// campaign cannot feed diagnosis without re-running its base runs.
var ErrNoAttribution = errors.New("campaign: base run carries no region attribution")

// AttributionRun is one base run's contribution to the cross-processor
// diagnosis family (internal/diagnose): the run's identity — its RunID,
// which is also its timeline lane label "sim <id>" — plus wall cycles and
// the per-region ground-truth attribution aggregated by region name.
type AttributionRun struct {
	ID         string
	Procs      int
	WallCycles float64

	// Regions is the run's attribution merged by region name in
	// first-appearance order, per-processor split included
	// (sim.Result.AggregateRegions).
	Regions []sim.RegionAttribution
}

// AttributionFamily collects the diagnosis overlay family from a finished
// campaign: one AttributionRun per base-run processor count, ascending.
// All base runs share the plan's s0 data-set size, so the family isolates
// the processor count as the only variable — exactly the axis the
// scaling-loss backtracking differentiates along.
func (r *Result) AttributionFamily() ([]AttributionRun, error) {
	procs := make([]int, 0, len(r.BaseRuns))
	for n := range r.BaseRuns {
		procs = append(procs, n)
	}
	sort.Ints(procs)
	out := make([]AttributionRun, 0, len(procs))
	for _, n := range procs {
		res := r.BaseRuns[n]
		id := RunID("base", n, r.Plan.S0)
		if res == nil || len(res.Ground.Regions) == 0 {
			return nil, fmt.Errorf("%w: %s (resumed from journal?)", ErrNoAttribution, id)
		}
		out = append(out, AttributionRun{
			ID:         id,
			Procs:      n,
			WallCycles: res.WallCycles,
			Regions:    res.AggregateRegions(),
		})
	}
	return out, nil
}
