package campaign

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"scaltool/internal/apps"
	"scaltool/internal/faultinject"
	"scaltool/internal/model"
	"scaltool/internal/obs"
)

// These are the kill-resume chaos drills of the durability issue: a campaign
// killed at EVERY journal operation — a clean crash before an append, a torn
// write halfway through one, a failed fsync — must resume to a byte-identical
// model breakdown, without re-executing the runs the journal already holds.
// The sweep discovers the campaign's total append count by itself: it keeps
// moving the crash point until a campaign completes without crashing.

// resumeOpts exercises the journal hard: snapshots every 3 terminal events
// and 2 KiB segments force compaction and rotation mid-campaign.
func resumeOpts(dir string) DurableOptions {
	return DurableOptions{Dir: dir, SnapshotEvery: 3, SegmentBytes: 2048}
}

// resumePlan is the sweep's campaign: small enough that a full crash-point
// sweep stays fast, big enough to have critical runs, kernels, and skips.
func resumePlan(t *testing.T) (apps.App, Plan) {
	t.Helper()
	app, err := apps.ByName("swim")
	if err != nil {
		t.Fatal(err)
	}
	plan, err := NewPlan(app, cfg(), 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	return app, plan
}

// resumeRunner builds the sweep's runner: seeded counter noise everywhere so
// replayed reports must carry the exact perturbed bytes, plus one journal
// fault at the sweep's current point.
func resumeRunner(spec faultinject.Spec) *Runner {
	return &Runner{Cfg: cfg(), Inject: faultinject.New(spec), MaxRetries: 2}
}

func baseResumeSpec() faultinject.Spec {
	return faultinject.Spec{Seed: 42, Noise: 0.02}
}

func fitBreakdown(t *testing.T, res *Result) []model.BreakdownPoint {
	t.Helper()
	m, err := res.Fit(model.DefaultOptions(cfg().L2.SizeBytes))
	if err != nil {
		t.Fatalf("fit: %v", err)
	}
	return m.Breakdown()
}

// referenceBreakdown runs the uninterrupted durable campaign once and also
// cross-checks that journaling changed nothing versus plain Execute.
func referenceBreakdown(t *testing.T, app apps.App, plan Plan) []model.BreakdownPoint {
	t.Helper()
	rn := resumeRunner(baseResumeSpec())
	res, err := rn.ExecuteDurable(context.Background(), app, plan, resumeOpts(t.TempDir()))
	if err != nil {
		t.Fatalf("uninterrupted durable campaign: %v", err)
	}
	defer res.CloseJournal()
	ref := fitBreakdown(t, res)

	plain, err := resumeRunner(baseResumeSpec()).Execute(context.Background(), app, plan)
	if err != nil {
		t.Fatalf("plain campaign: %v", err)
	}
	if !reflect.DeepEqual(ref, fitBreakdown(t, plain)) {
		t.Fatal("durable campaign's breakdown differs from plain Execute's")
	}
	return ref
}

// sweepResume kills a campaign at journal operation n = 1, 2, 3, … with the
// given fault kind, resumes each corpse, and requires the resumed breakdown
// to equal the uninterrupted one exactly. The sweep ends at the first n the
// campaign outruns.
func sweepResume(t *testing.T, kind faultinject.Kind) {
	if testing.Short() {
		t.Skip("a campaign per journal operation")
	}
	app, plan := resumePlan(t)
	ref := referenceBreakdown(t, app, plan)

	crashed := 0
	for n := uint64(1); ; n++ {
		if n > 500 {
			t.Fatalf("crash sweep did not terminate after %d points", n-1)
		}
		spec := baseResumeSpec()
		switch kind {
		case faultinject.KindCrash:
			spec.CrashAppend = n
		case faultinject.KindTorn:
			spec.TornAppend = n
		case faultinject.KindFsync:
			spec.FsyncFail = n
		default:
			t.Fatalf("unknown sweep kind %q", kind)
		}
		dir := t.TempDir()
		res, err := resumeRunner(spec).ExecuteDurable(context.Background(), app, plan, resumeOpts(dir))
		if err == nil {
			// The fault point lies beyond the campaign's total journal
			// operations: the sweep covered every one of them.
			got := fitBreakdown(t, res)
			res.CloseJournal()
			if !reflect.DeepEqual(ref, got) {
				t.Fatalf("crash point %d: campaign that outran the fault differs from reference", n)
			}
			if crashed == 0 {
				t.Fatal("sweep never injected a fault; campaign journals nothing?")
			}
			t.Logf("swept %d %s points", crashed, kind)
			return
		}
		if !strings.Contains(err.Error(), "injected") {
			t.Fatalf("%s point %d: campaign died of the wrong cause: %v", kind, n, err)
		}
		crashed++

		// Count what the journal durably holds, so the resume can be checked
		// against it: completed runs must be replayed, never re-executed.
		// This first open is also the one that recovers the torn tail, so it
		// shares the metrics registry the assertions below read.
		mt := obs.NewMetrics()
		ctx := obs.NewContext(context.Background(), &obs.Observer{Metrics: mt})
		clean := resumeRunner(baseResumeSpec())
		pre, err := clean.openDurable(ctx, resumeOpts(dir))
		if err != nil {
			t.Fatalf("%s point %d: reopening crashed journal: %v", kind, n, err)
		}
		completed := len(pre.terminal)
		hadStart := pre.start != nil
		if err := pre.close(); err != nil {
			t.Fatalf("%s point %d: closing inspection handle: %v", kind, n, err)
		}

		var resumed *Result
		if hadStart {
			resumed, err = clean.Resume(ctx, resumeOpts(dir))
		} else {
			// The crash hit the very first append: the journal never learned
			// what campaign it holds, and Resume must say so rather than
			// guess. The operator's recovery is a fresh durable start, which
			// the (empty) journal directory accepts.
			if _, rerr := clean.Resume(ctx, resumeOpts(dir)); rerr == nil ||
				!strings.Contains(rerr.Error(), "nothing to resume") {
				t.Fatalf("%s point %d: resume of start-less journal: %v", kind, n, rerr)
			}
			resumed, err = clean.ExecuteDurable(ctx, app, plan, resumeOpts(dir))
		}
		if err != nil {
			t.Fatalf("%s point %d: resume: %v", kind, n, err)
		}
		if resumed.Resumed != completed {
			t.Fatalf("%s point %d: resumed %d runs, journal held %d terminal events",
				kind, n, resumed.Resumed, completed)
		}
		if completed > 0 {
			if v := mt.Counter("scaltool_journal_replayed_runs_total", "").Value(); v != uint64(completed) {
				t.Fatalf("%s point %d: replayed-runs metric %d, want %d", kind, n, v, completed)
			}
		}
		got := fitBreakdown(t, resumed)
		if err := resumed.CloseJournal(); err != nil {
			t.Fatalf("%s point %d: closing resumed journal: %v", kind, n, err)
		}
		if !reflect.DeepEqual(ref, got) {
			t.Fatalf("%s point %d: resumed breakdown differs from the uninterrupted campaign's\nref: %+v\ngot: %+v",
				kind, n, ref, got)
		}
		if kind == faultinject.KindTorn {
			if v := mt.Counter("scaltool_journal_torn_tail_truncations_total", "").Value(); v == 0 {
				t.Fatalf("torn point %d: resume truncated no torn tail", n)
			}
		}
	}
}

// TestChaosCrashResumeInvariant kills the campaign cleanly before every
// journal append in turn and requires byte-identical resume.
func TestChaosCrashResumeInvariant(t *testing.T) { sweepResume(t, faultinject.KindCrash) }

// TestChaosTornWriteResumeInvariant tears every journal append in turn —
// half the record's frame reaches the file — and requires the journal to
// truncate the torn tail and resume byte-identically.
func TestChaosTornWriteResumeInvariant(t *testing.T) { sweepResume(t, faultinject.KindTorn) }

// TestChaosFsyncFailResumeInvariant fails every journal fsync in turn. The
// record may or may not be durable — both are legal crash states — and
// either way the resume must reproduce the reference breakdown.
func TestChaosFsyncFailResumeInvariant(t *testing.T) { sweepResume(t, faultinject.KindFsync) }

// TestChaosResumeAfterCancel interrupts a campaign with context
// cancellation — the graceful-shutdown path — and checks the canceled
// in-flight runs were NOT journaled as permanent failures: the resume
// re-runs them and still reproduces the reference breakdown.
func TestChaosResumeAfterCancel(t *testing.T) {
	if testing.Short() {
		t.Skip("two campaigns")
	}
	app, plan := resumePlan(t)
	ref := referenceBreakdown(t, app, plan)

	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // canceled before dispatch: every run is either unstarted or reaped
	rn := resumeRunner(baseResumeSpec())
	rn.Workers = 2
	if _, err := rn.ExecuteDurable(ctx, app, plan, resumeOpts(dir)); err == nil {
		t.Fatal("canceled campaign reported success")
	}

	resumed, err := resumeRunner(baseResumeSpec()).Resume(context.Background(), resumeOpts(dir))
	if err != nil {
		t.Fatalf("resume after cancel: %v", err)
	}
	if len(resumed.Health.Failed) != 0 {
		t.Fatalf("cancellation leaked permanent failures into the journal: %+v", resumed.Health.Failed)
	}
	got := fitBreakdown(t, resumed)
	if err := resumed.CloseJournal(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ref, got) {
		t.Fatal("resume after cancellation differs from the uninterrupted campaign")
	}
}
