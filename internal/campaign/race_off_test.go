//go:build !race

package campaign

// raceEnabled reports whether this test binary was built with the race
// detector, whose ~20x simulation slowdown stretches every wall-clock
// margin in the watchdog tests.
const raceEnabled = false
