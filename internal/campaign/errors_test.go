package campaign

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"scaltool/internal/apps"
	"scaltool/internal/faultinject"
	"scaltool/internal/model"
)

// These are the error round-trip drills: an insufficient-input fit refusal
// produced by the campaign's retry/quarantine path must keep satisfying
// errors.Is(err, model.ErrInsufficientInputs) AND surrender its typed
// Degradation record to errors.As, no matter how many fmt.Errorf("%w")
// layers the CLI or file loaders stack on top. Wrapping must never silently
// break the contract.

// TestInsufficientInputsRoundTrip runs a campaign whose every sync-kernel
// run is poisoned into quarantine (and one base run fails transiently, so
// the retry path is exercised too). The campaign completes — sync kernels
// are not critical — but the fit must refuse, and the refusal must carry
// exactly the quarantined run identities.
func TestInsufficientInputsRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a campaign")
	}
	app, err := apps.ByName("swim")
	if err != nil {
		t.Fatal(err)
	}
	plan, err := NewPlan(app, cfg(), 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	poisoned := make([]string, 0, len(plan.ProcCounts))
	for _, p := range plan.ProcCounts {
		poisoned = append(poisoned, RunID("ksync", p, 0))
	}
	flaky := RunID("base", plan.ProcCounts[len(plan.ProcCounts)-1], plan.S0)
	rn := &Runner{
		Cfg:        cfg(),
		Inject:     faultinject.New(faultinject.Spec{Seed: 11, PoisonRuns: poisoned, FailRuns: []string{flaky}}),
		MaxRetries: 2,
	}
	res, err := rn.Execute(context.Background(), app, plan)
	if err != nil {
		t.Fatalf("campaign with quarantined sync kernels must still complete: %v", err)
	}
	retried := false
	for _, r := range res.Health.Retries {
		if r.Run == flaky {
			retried = true
		}
	}
	if !retried {
		t.Fatalf("no retry recorded for %s; the round trip must cross the retry path", flaky)
	}

	_, err = res.Fit(model.DefaultOptions(cfg().L2.SizeBytes))
	if err == nil {
		t.Fatal("fit succeeded without any sync-kernel run")
	}
	assertInsufficientRoundTrip(t, err, poisoned)

	// Stack two more wrapping layers — the shapes cmd/scaltool and the file
	// loaders add — and require the same answers through the longer chain.
	wrapped := fmt.Errorf("scaltool: fit failed: %w", fmt.Errorf("campaign %s: %w", app.Name(), err))
	assertInsufficientRoundTrip(t, wrapped, poisoned)
}

// assertInsufficientRoundTrip requires err to satisfy the sentinel via
// errors.Is and yield the typed record via errors.As, with the dropped-run
// list naming every quarantined run.
func assertInsufficientRoundTrip(t *testing.T, err error, dropped []string) {
	t.Helper()
	if !errors.Is(err, model.ErrInsufficientInputs) {
		t.Fatalf("error %v does not wrap model.ErrInsufficientInputs", err)
	}
	var ie *model.InsufficientInputsError
	if !errors.As(err, &ie) {
		t.Fatalf("error %v does not carry a *model.InsufficientInputsError", err)
	}
	if !ie.Degradation.Degraded {
		t.Fatalf("typed refusal lost its degradation record: %+v", ie.Degradation)
	}
	have := make(map[string]bool, len(ie.Degradation.DroppedRuns))
	for _, r := range ie.Degradation.DroppedRuns {
		have[r] = true
	}
	for _, want := range dropped {
		if !have[want] {
			t.Fatalf("dropped-run record %v is missing quarantined run %s", ie.Degradation.DroppedRuns, want)
		}
	}
	if ie.Reason == "" || !strings.Contains(ie.Error(), ie.Reason) {
		t.Fatalf("typed refusal's message %q does not carry its reason %q", ie.Error(), ie.Reason)
	}
}

// TestInsufficientInputsTypedFromModel pins the typed error at its source:
// a direct model fit on an empty input set must already produce the typed
// record, not just the sentinel — so the campaign layer has something to
// propagate in the first place.
func TestInsufficientInputsTypedFromModel(t *testing.T) {
	in := model.Inputs{DroppedRuns: []string{"uni_p01_s64", "base_p02_s128"}}
	_, err := model.Fit(in, model.DefaultOptions(1<<20))
	if err == nil {
		t.Fatal("fit of empty inputs succeeded")
	}
	var ie *model.InsufficientInputsError
	if !errors.As(err, &ie) {
		t.Fatalf("model fit refusal %v is untyped", err)
	}
	if len(ie.Degradation.DroppedRuns) != 2 {
		t.Fatalf("typed refusal dropped the DroppedRuns record: %+v", ie.Degradation)
	}
	if !errors.Is(ie, model.ErrInsufficientInputs) {
		t.Fatal("typed refusal does not unwrap to the sentinel")
	}
}
