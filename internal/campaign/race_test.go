package campaign

// Race-exercising tests for the Runner's worker pool. Run with -race: the
// record closure's mutex must cover every result-map write, and the worker
// count must not change what a campaign produces.

import (
	"reflect"
	"testing"

	"scaltool/internal/apps"
)

func runCampaign(t *testing.T, workers int) *Result {
	t.Helper()
	app, err := apps.ByName("hydro2d")
	if err != nil {
		t.Fatal(err)
	}
	plan, err := NewPlan(app, cfg(), 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	rn := &Runner{Cfg: cfg(), Workers: workers}
	res, err := rn.Run(app, plan)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestRunWorkerPoolRace drives the pool with more workers than jobs so
// every job runs concurrently; the race detector checks the record path.
func TestRunWorkerPoolRace(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign run is slow")
	}
	runCampaign(t, 32)
}

// TestRunDeterministicAcrossWorkerCounts compares a serial campaign
// against a maximally concurrent one, key by key.
func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign run is slow")
	}
	serial := runCampaign(t, 1)
	parallel := runCampaign(t, 16)

	if len(serial.BaseRuns) != len(parallel.BaseRuns) {
		t.Fatalf("BaseRuns: %d vs %d entries", len(serial.BaseRuns), len(parallel.BaseRuns))
	}
	for n, want := range serial.BaseRuns {
		got := parallel.BaseRuns[n]
		if got == nil || !reflect.DeepEqual(got.Report, want.Report) {
			t.Errorf("BaseRuns[%d] differs between worker counts", n)
		}
	}
	for size, want := range serial.UniRuns {
		got := parallel.UniRuns[size]
		if got == nil || !reflect.DeepEqual(got.Report, want.Report) {
			t.Errorf("UniRuns[%d] differs between worker counts", size)
		}
	}
	for n, want := range serial.SyncKernels {
		got := parallel.SyncKernels[n]
		if got == nil || !reflect.DeepEqual(got.Report, want.Report) {
			t.Errorf("SyncKernels[%d] differs between worker counts", n)
		}
	}
}
