package campaign

import (
	"context"
	"errors"
	"math"
	"reflect"
	"runtime"
	"strings"
	"testing"
	"time"

	"scaltool/internal/apps"
	"scaltool/internal/faultinject"
	"scaltool/internal/health"
	"scaltool/internal/model"
)

// chaosTolerance bounds how far each breakdown component of a faulted
// campaign may drift from the clean campaign's, as a fraction of the clean
// Base at that processor count. 2% multiplexing noise scaled by the
// two-counter sampling share (×√3 for 8 events) perturbs the miss counters
// by ~3.5%, and the quarantined uniprocessor point forces one coherence
// interpolation, so the bound is deliberately looser than the noise floor.
const chaosTolerance = 0.10

// TestChaosRoundTrip is the end-to-end fault drill of the robustness issue:
// a campaign under seeded injection — counter noise everywhere, one
// transient run failure, one poisoned (quarantined) run, one repairable
// skew — must complete via retries and degraded fitting, report every
// repair/retry/quarantine in the health report, and produce a breakdown
// within chaosTolerance of the clean campaign's.
func TestChaosRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("three campaigns")
	}
	c := cfg()
	app, _ := apps.ByName("hydro2d")
	plan, err := NewPlan(app, c, 8, 0)
	if err != nil {
		t.Fatal(err)
	}

	clean, err := (&Runner{Cfg: c}).Run(app, plan)
	if err != nil {
		t.Fatal(err)
	}
	cleanModel, err := clean.Fit(model.DefaultOptions(c.L2.SizeBytes))
	if err != nil {
		t.Fatal(err)
	}

	failID := RunID("base", 4, plan.S0)
	poisonID := RunID("uni", 1, plan.UniSizes[1])
	skewID := RunID("base", 2, plan.S0)
	spec := faultinject.Spec{
		Seed:       42,
		Noise:      0.02,
		FailRuns:   []string{failID},
		PoisonRuns: []string{poisonID},
		SkewRuns:   []string{skewID},
	}
	faulted := func(workers int) (*Result, *model.Model) {
		rn := &Runner{
			Cfg: c, Workers: workers,
			MaxRetries: 2, RetryBase: time.Millisecond,
			Inject: faultinject.New(spec),
		}
		res, err := rn.Run(app, plan)
		if err != nil {
			t.Fatalf("faulted campaign (workers=%d) did not survive: %v", workers, err)
		}
		m, err := res.Fit(model.DefaultOptions(c.L2.SizeBytes))
		if err != nil {
			t.Fatalf("faulted fit (workers=%d): %v", workers, err)
		}
		return res, m
	}
	res, m := faulted(1)

	// The health report enumerates what happened, by run identity.
	hr := res.Health
	gotRetry := false
	for _, re := range hr.Retries {
		if re.Run == failID {
			gotRetry = true
		}
	}
	if !gotRetry {
		t.Errorf("no retry recorded for %s (retries: %v)", failID, hr.Retries)
	}
	if got := hr.Quarantined; len(got) != 1 || got[0] != poisonID {
		t.Errorf("quarantined %v, want [%s]", got, poisonID)
	}
	gotRepair := false
	for _, f := range hr.Findings {
		if f.Run == skewID && f.Severity == health.Repair {
			gotRepair = true
		}
	}
	if !gotRepair {
		t.Errorf("no repair recorded for the skewed run %s", skewID)
	}
	if len(hr.Failed) != 0 {
		t.Errorf("unexpected permanent failures: %v", hr.Failed)
	}
	if hr.Clean() {
		t.Error("health report claims a clean campaign")
	}

	// The fit knows it ran degraded and which run it lost.
	d := m.Degradation
	if !d.Degraded {
		t.Error("faulted fit not marked degraded")
	}
	if len(d.DroppedRuns) != 1 || d.DroppedRuns[0] != poisonID {
		t.Errorf("Degradation.DroppedRuns = %v, want [%s]", d.DroppedRuns, poisonID)
	}

	// Every breakdown component stays within tolerance of the clean run.
	cb, fb := cleanModel.Breakdown(), m.Breakdown()
	if len(cb) != len(fb) {
		t.Fatalf("breakdown lengths differ: %d vs %d", len(cb), len(fb))
	}
	for i := range cb {
		comp := func(name string, cv, fv float64) {
			if diff := math.Abs(fv-cv) / cb[i].Base; diff > chaosTolerance {
				t.Errorf("n=%d %s: clean %.4g vs faulted %.4g (%.1f%% of base)",
					cb[i].Procs, name, cv, fv, 100*diff)
			}
		}
		comp("Base", cb[i].Base, fb[i].Base)
		comp("L2Lim", cb[i].L2Lim(), fb[i].L2Lim())
		comp("Sync", cb[i].Sync, fb[i].Sync)
		comp("Imb", cb[i].Imb, fb[i].Imb)
	}

	// Same seed, different worker count: identical faults, identical health
	// trace, identical breakdown — chaos is reproducible.
	res2, m2 := faulted(4)
	hr2 := res2.Health
	if !reflect.DeepEqual(hr.Findings, hr2.Findings) {
		t.Errorf("findings differ across worker counts:\n%v\nvs\n%v", hr.Findings, hr2.Findings)
	}
	if !reflect.DeepEqual(hr.Retries, hr2.Retries) {
		t.Errorf("retry traces differ across worker counts:\n%v\nvs\n%v", hr.Retries, hr2.Retries)
	}
	if !reflect.DeepEqual(hr.Quarantined, hr2.Quarantined) {
		t.Errorf("quarantine lists differ: %v vs %v", hr.Quarantined, hr2.Quarantined)
	}
	if !reflect.DeepEqual(m.Breakdown(), m2.Breakdown()) {
		t.Error("breakdowns differ across worker counts under identical faults")
	}
}

// TestChaosCriticalRunKillsCampaign checks that a run the model cannot fit
// without — here the uniprocessor base run — failing past its retry budget
// cancels the campaign promptly instead of producing a silently unusable
// result.
func TestChaosCriticalRunKillsCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign")
	}
	c := cfg()
	app, _ := apps.ByName("swim")
	plan, err := NewPlan(app, c, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	critical := RunID("base", 1, plan.S0)
	rn := &Runner{
		Cfg: c,
		// Transient=1 with MaxFailures above the retry budget: the critical
		// run can never succeed.
		Inject:     faultinject.New(faultinject.Spec{Seed: 7, Transient: 1, MaxFailures: 10}),
		MaxRetries: 1,
	}
	_, err = rn.Run(app, plan)
	if err == nil {
		t.Fatal("campaign succeeded with an unrunnable critical run")
	}
	if !errors.Is(err, faultinject.ErrTransient) {
		t.Errorf("error %v does not wrap the transient fault", err)
	}
	if !strings.Contains(err.Error(), critical) && !strings.Contains(err.Error(), "kspin") {
		t.Errorf("error %q names neither the critical base run nor the spin kernel", err)
	}
}

// TestChaosCancellation cancels the campaign context mid-flight and checks
// Execute returns promptly with a canceled error and leaks no workers.
func TestChaosCancellation(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign")
	}
	c := cfg()
	app, _ := apps.ByName("hydro2d")
	plan, err := NewPlan(app, c, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	rn := &Runner{Cfg: c, Workers: 4}
	start := time.Now()
	_, err = rn.Execute(ctx, app, plan)
	elapsed := time.Since(start)
	if err == nil {
		// The campaign may legitimately win the race on a fast machine.
		t.Skip("campaign finished before the cancel")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not wrap context.Canceled", err)
	}
	if elapsed > 5*time.Second {
		t.Errorf("cancellation took %v", elapsed)
	}
	// Workers must drain: poll briefly for the goroutine count to settle.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines leaked: %d before, %d after cancel", before, runtime.NumGoroutine())
}

// TestChaosHungRunReapedByDeadline stalls one estimation-kernel run; the
// per-attempt deadline must reap it, record a retry, and let the second
// attempt succeed.
func TestChaosHungRunReapedByDeadline(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign")
	}
	c := cfg()
	app, _ := apps.ByName("swim")
	plan, err := NewPlan(app, c, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	stalled := RunID("ksync", 2, 0)
	rn := &Runner{
		Cfg:        c,
		Inject:     faultinject.New(faultinject.Spec{Seed: 9, StallRuns: []string{stalled}}),
		MaxRetries: 1,
		RunTimeout: 2 * time.Second,
	}
	res, err := rn.Run(app, plan)
	if err != nil {
		t.Fatalf("campaign did not survive the hung run: %v", err)
	}
	gotRetry := false
	for _, re := range res.Health.Retries {
		if re.Run == stalled && strings.Contains(re.Reason, "deadline") {
			gotRetry = true
		}
	}
	if !gotRetry {
		t.Errorf("no deadline retry recorded for %s: %v", stalled, res.Health.Retries)
	}
	if res.SyncKernels[2] == nil {
		t.Error("stalled kernel never recovered")
	}
}
