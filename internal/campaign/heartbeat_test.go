package campaign

import (
	"context"
	"testing"
	"time"

	"scaltool/internal/faultinject"
	"scaltool/internal/machine"
	"scaltool/internal/obs"
	"scaltool/internal/sim"
)

// Regression test for heartbeat starvation (the watchdog killing *healthy*
// workers): the simulator used to beat only at barrier-region boundaries, so
// an application whose whole access stream is one giant region sent no
// heartbeat for the region's entire wall time, and an armed watchdog kicked
// and restarted a worker that was making steady progress — forever, since
// every attempt replays the same region. Lanes now beat inside regions at a
// bounded simulated-access interval, so this campaign must complete with
// zero watchdog restarts.

// oneRegionApp builds programs whose entire sweep is a single barrier
// region, whatever size the plan asks for.
type oneRegionApp struct{}

func (oneRegionApp) Name() string          { return "oneregion" }
func (oneRegionApp) Description() string   { return "single-region sweep (heartbeat regression)" }
func (oneRegionApp) ParallelModel() string { return "PCF" }
func (oneRegionApp) DefaultBytes(cfg machine.Config) uint64 {
	return 8 * uint64(cfg.L2.SizeBytes)
}

func (oneRegionApp) Build(cfg machine.Config, procs int, dataBytes uint64) (*sim.Program, error) {
	p, err := sim.NewProgram("oneregion", procs, dataBytes, cfg.PageBytes)
	if err != nil {
		return nil, err
	}
	arr := p.MustAlloc("a", dataBytes)
	per := dataBytes / uint64(procs)
	reg := p.AddRegion("everything")
	for pr := 0; pr < procs; pr++ {
		reg.Proc(pr).Seq(arr.Base+uint64(pr)*per, per/8, 8, false, 1)
	}
	return p, nil
}

func TestWatchdogDoesNotStarveOnOneGiantRegion(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a campaign")
	}
	app := oneRegionApp{}
	// s0 = 64 MB: the base runs' single region simulates ~8M accesses —
	// wall time far past the heartbeat deadline below, so a boundary-only
	// heartbeat would guarantee watchdog kicks on every attempt.
	plan, err := NewPlan(app, cfg(), 4, 64<<20)
	if err != nil {
		t.Fatal(err)
	}
	// Lanes beat every 2^16 simulated accesses — a few ms of wall time, so
	// 100 ms of silence really means a wedged worker. The race detector
	// slows simulation ~20x (and timeshares the lanes harder), so its
	// deadline gets the same multiplier; a boundary-only heartbeat would
	// still starve it many times over, the regression this test pins.
	deadline := 100 * time.Millisecond
	if raceEnabled {
		deadline = 2 * time.Second
	}
	rn := supervisorRunner(faultinject.Spec{}, deadline, 2)

	mt := obs.NewMetrics()
	ctx := obs.NewContext(context.Background(), &obs.Observer{Metrics: mt})
	res, err := rn.Execute(ctx, app, plan)
	if err != nil {
		t.Fatalf("healthy single-region campaign failed under the watchdog: %v", err)
	}
	for _, r := range res.Health.Retries {
		t.Errorf("watchdog retried healthy run %s: %s", r.Run, r.Reason)
	}
	if v := mt.Counter("scaltool_supervisor_restarts_total", "").Value(); v != 0 {
		t.Fatalf("watchdog restarted %d healthy workers (heartbeat starvation)", int(v))
	}
	if v := mt.Counter("scaltool_supervisor_quarantines_total", "").Value(); v != 0 {
		t.Fatalf("%d healthy runs quarantined", int(v))
	}
	if v := mt.Counter("scaltool_supervisor_heartbeats_total", "").Value(); v < 20 {
		t.Fatalf("only %d heartbeats over a multi-million-access campaign; "+
			"in-region beats are not reaching the supervisor", int(v))
	}
}
