package campaign

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"scaltool/internal/apps"
	"scaltool/internal/counters"
	"scaltool/internal/faultinject"
	"scaltool/internal/health"
	"scaltool/internal/journal"
	"scaltool/internal/model"
	"scaltool/internal/obs"
	"scaltool/internal/sim"
)

// This file is the crash-safety layer: ExecuteDurable writes every campaign
// decision through a write-ahead journal (internal/journal) before applying
// it, and Resume replays that journal so a campaign killed at any point —
// including mid-record — picks up where it left off. The invariant (enforced
// by the chaos tests) is that crash + resume produces a byte-identical model
// breakdown to an uninterrupted campaign.
//
// WAL discipline: a run's terminal event (done/skip/quarantine/fail) is
// appended to the journal BEFORE the run is recorded in the Result. If the
// append fails the run is not recorded and the campaign aborts; on resume
// the run simply executes again, and because every campaign decision is a
// pure function of (spec, run identity, attempt), re-execution reproduces
// the identical report. Retry events are journaled for the health report;
// attempt events are journaled for forensics and dropped at compaction.
// In-flight runs (attempt events but no terminal event) re-enter the retry
// loop from attempt zero on resume, regenerating their retry trace instead
// of replaying a partial one.

// Event types, in the order a run can emit them.
const (
	evStart      = "start"      // campaign identity: app, machine, plan, fault spec
	evAttempt    = "attempt"    // one try of one run began
	evRetry      = "retry"      // an attempt failed retryably; the run backs off
	evDone       = "done"       // run accepted; Report is the sanitized counter report
	evSkip       = "skip"       // uniprocessor size below the app's grid
	evQuarantine = "quarantine" // report failed sanitization (or watchdog poisoned the run)
	evFail       = "fail"       // run dropped after a permanent failure
	evFit        = "fit"        // model fitted from this campaign's measurements
)

// event is one journal record. One struct covers every type; unused fields
// stay at their zero value and are elided from the JSON.
type event struct {
	Type string `json:"type"`

	// evStart.
	App     string `json:"app,omitempty"`
	Machine string `json:"machine,omitempty"`
	Plan    *Plan  `json:"plan,omitempty"`
	Spec    string `json:"spec,omitempty"`

	// Per-run events.
	Run       string              `json:"run,omitempty"`
	Kind      string              `json:"kind,omitempty"`
	Procs     int                 `json:"procs,omitempty"`
	Size      uint64              `json:"size,omitempty"`
	Attempt   int                 `json:"attempt,omitempty"`
	BackoffNS int64               `json:"backoff_ns,omitempty"`
	Reason    string              `json:"reason,omitempty"`
	Report    *counters.RunReport `json:"report,omitempty"`
	Findings  []health.Finding    `json:"findings,omitempty"`

	// evFit.
	Fit *fitSummary `json:"fit,omitempty"`
}

// fitSummary records the headline estimates of a completed fit, so a journal
// is a self-contained record of what the campaign concluded.
type fitSummary struct {
	CPI0     float64 `json:"cpi0"`
	T2       float64 `json:"t2"`
	Tm1      float64 `json:"tm1"`
	CpiImb   float64 `json:"cpi_imb"`
	Points   int     `json:"points"`
	Degraded bool    `json:"degraded"`
}

// DurableOptions configures ExecuteDurable and Resume.
type DurableOptions struct {
	// Dir is the journal directory. Required.
	Dir string
	// SnapshotEvery compacts the journal into a snapshot after this many
	// terminal run events (default 8; < 0 disables snapshots).
	SnapshotEvery int
	// SegmentBytes caps one journal segment (0 = the journal's default).
	SegmentBytes int64
	// Sync selects the journal's fsync policy (default journal.SyncAlways).
	Sync journal.SyncPolicy
}

func (o DurableOptions) snapshotEvery() int {
	if o.SnapshotEvery < 0 {
		return 0
	}
	if o.SnapshotEvery == 0 {
		return 8
	}
	return o.SnapshotEvery
}

// durable is the campaign's journal handle plus the compacted event state a
// snapshot serializes.
type durable struct {
	j    *journal.Journal
	opts DurableOptions

	mu        sync.Mutex
	start     *event
	terminal  map[string]event   // run identity → its terminal event
	retries   map[string][]event // run identity → journaled retry events
	fit       *event
	sinceSnap int
	closed    bool
}

// journalHook maps the injector's journal-fault decisions onto journal.Hook
// errors: a crash point fails the append outright, a torn point makes the
// journal write half the frame first, an fsync point fails the sync.
func (rn *Runner) journalHook() journal.Hook {
	in := rn.Inject
	if in == nil || !in.Spec().JournalTargets() {
		return nil
	}
	return func(op journal.Op, n uint64) error {
		switch op {
		case journal.OpAppend:
			switch in.JournalAppend(n) {
			case faultinject.JournalCrash:
				return fmt.Errorf("campaign: injected crash before journal append %d", n)
			case faultinject.JournalTorn:
				return fmt.Errorf("campaign: injected crash during journal append %d: %w", n, journal.ErrTornWrite)
			}
		case journal.OpSync:
			if in.JournalSync(n) == faultinject.JournalSyncFail {
				return fmt.Errorf("campaign: injected fsync failure at journal sync %d", n)
			}
		}
		return nil
	}
}

// openDurable opens (or creates) the journal and rebuilds the compacted
// event state from the snapshot plus the record tail.
func (rn *Runner) openDurable(ctx context.Context, opts DurableOptions) (*durable, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("campaign: durable execution needs a journal directory")
	}
	j, open, err := journal.Open(opts.Dir, journal.Options{
		SegmentBytes: opts.SegmentBytes,
		Sync:         opts.Sync,
		Hook:         rn.journalHook(),
	})
	if err != nil {
		return nil, fmt.Errorf("campaign: opening journal: %w", err)
	}
	d := &durable{j: j, opts: opts, terminal: map[string]event{}, retries: map[string][]event{}}
	apply := func(ev event) {
		switch ev.Type {
		case evStart:
			e := ev
			d.start = &e
		case evRetry:
			d.retries[ev.Run] = append(d.retries[ev.Run], ev)
		case evDone, evSkip, evQuarantine, evFail:
			d.terminal[ev.Run] = ev
		case evFit:
			e := ev
			d.fit = &e
		}
	}
	if len(open.Snapshot) > 0 {
		var evs []event
		if err := json.Unmarshal(open.Snapshot, &evs); err != nil {
			closeQuietJournal(j)
			return nil, fmt.Errorf("campaign: journal snapshot at seq %d is not an event list: %w", open.SnapshotSeq, err)
		}
		for _, ev := range evs {
			apply(ev)
		}
	}
	for _, rec := range open.Tail {
		var ev event
		if err := json.Unmarshal(rec.Data, &ev); err != nil {
			closeQuietJournal(j)
			return nil, fmt.Errorf("campaign: journal record %d is not an event: %w", rec.Seq, err)
		}
		apply(ev)
	}
	if mt := obs.Meter(ctx); mt != nil && open.TornBytes > 0 {
		mt.Counter("scaltool_journal_torn_tail_truncations_total",
			"torn journal tails truncated during recovery").Inc()
	}
	if open.TornBytes > 0 {
		obs.Log(ctx).Warn("journal: torn tail truncated on open", "dir", opts.Dir, "bytes", open.TornBytes)
	}
	return d, nil
}

func closeQuietJournal(j *journal.Journal) { _ = j.Close() }

// record appends one event to the journal. Any failure (an injected crash
// point or a real I/O error) leaves the event unapplied; the caller must
// abort the campaign so resume re-derives the state.
func (d *durable) record(ctx context.Context, ev event) error {
	data, err := json.Marshal(ev)
	if err != nil {
		return fmt.Errorf("campaign: encoding %s event: %w", ev.Type, err)
	}
	if _, err := d.j.Append(data); err != nil {
		return fmt.Errorf("campaign: journaling %s event: %w", ev.Type, err)
	}
	if mt := obs.Meter(ctx); mt != nil {
		mt.Counter("scaltool_journal_appends_total", "journal records appended").Inc()
		mt.Counter("scaltool_journal_bytes_total", "journal bytes appended, framed").Add(uint64(journal.AppendedBytes(data)))
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	switch ev.Type {
	case evStart:
		e := ev
		d.start = &e
	case evRetry:
		d.retries[ev.Run] = append(d.retries[ev.Run], ev)
	case evFit:
		e := ev
		d.fit = &e
	case evDone, evSkip, evQuarantine, evFail:
		d.terminal[ev.Run] = ev
		d.sinceSnap++
		if every := d.opts.snapshotEvery(); every > 0 && d.sinceSnap >= every {
			d.sinceSnap = 0
			blob, err := json.Marshal(d.compactLocked())
			if err == nil {
				err = d.j.Snapshot(blob)
			}
			if err != nil {
				// A failed snapshot loses nothing: the full record tail is
				// still in the segments. Log and carry on.
				obs.Log(ctx).Warn("journal: snapshot failed; continuing on the record tail", "err", err)
			} else if mt := obs.Meter(ctx); mt != nil {
				mt.Counter("scaltool_journal_snapshots_total", "journal snapshots published").Inc()
			}
		}
	}
	return nil
}

// compactLocked builds the snapshot state: the start event, then each
// terminal run's retry trace and terminal event (in run-identity order so
// snapshots are deterministic), then the fit if one was recorded. Attempt
// events and the retries of in-flight runs are dropped — resume regenerates
// them by re-running those runs.
func (d *durable) compactLocked() []event {
	n := 2 + len(d.terminal) // start + fit + one terminal event per run
	for _, r := range d.retries {
		n += len(r)
	}
	out := make([]event, 0, n)
	if d.start != nil {
		out = append(out, *d.start)
	}
	ids := make([]string, 0, len(d.terminal))
	for id := range d.terminal {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		out = append(out, d.retries[id]...)
		out = append(out, d.terminal[id])
	}
	if d.fit != nil {
		out = append(out, *d.fit)
	}
	return out
}

// close flushes and closes the journal. Idempotent.
func (d *durable) close() error {
	if d == nil {
		return nil
	}
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil
	}
	d.closed = true
	d.mu.Unlock()
	return d.j.Close()
}

// ExecuteDurable is Execute with a write-ahead journal under opts.Dir: the
// campaign start, every attempt, retry, and terminal run outcome is
// journaled before it takes effect, with periodic compact snapshots. A
// campaign killed at any point — even mid-append — is resumable with Resume,
// to a byte-identical model breakdown. The directory must be empty or hold
// only journal bookkeeping from a previous Open; resuming an interrupted
// campaign through ExecuteDurable is refused, so a stale -journal-dir cannot
// be silently overwritten.
//
// On success the journal is left open so Result.RecordFit can append the fit
// event; call Result.CloseJournal when done. On error the journal is closed.
func (rn *Runner) ExecuteDurable(ctx context.Context, app apps.App, plan Plan, opts DurableOptions) (*Result, error) {
	d, err := rn.openDurable(ctx, opts)
	if err != nil {
		return nil, err
	}
	if d.start != nil {
		_ = d.close()
		return nil, fmt.Errorf("campaign: journal %s already holds campaign %q; use Resume (or a fresh directory)", opts.Dir, d.start.App)
	}
	var spec string
	if rn.Inject != nil {
		spec = rn.Inject.Spec().String()
	}
	if err := d.record(ctx, event{Type: evStart, App: plan.App, Machine: rn.Cfg.Name, Plan: &plan, Spec: spec}); err != nil {
		_ = d.close()
		return nil, err
	}
	return rn.execute(ctx, app, plan, d)
}

// Resume replays the journal under opts.Dir and continues the interrupted
// campaign: runs with a journaled terminal event are restored without
// re-execution (Result.Resumed counts them), in-flight runs re-enter the
// retry loop from their first attempt, and everything not yet started runs
// normally. The runner's machine must match the journaled campaign's, and a
// fault spec that targets an already-completed run is refused — the fault
// could no longer fire, which would silently weaken a chaos experiment.
func (rn *Runner) Resume(ctx context.Context, opts DurableOptions) (*Result, error) {
	d, err := rn.openDurable(ctx, opts)
	if err != nil {
		return nil, err
	}
	if d.start == nil {
		_ = d.close()
		return nil, fmt.Errorf("campaign: journal %s records no campaign start; nothing to resume", opts.Dir)
	}
	st := *d.start
	if st.Plan == nil {
		_ = d.close()
		return nil, fmt.Errorf("campaign: journal %s start event carries no plan", opts.Dir)
	}
	app, err := apps.ByName(st.App)
	if err != nil {
		_ = d.close()
		return nil, fmt.Errorf("campaign: resuming journal %s: %w", opts.Dir, err)
	}
	if st.Machine != "" && st.Machine != rn.Cfg.Name {
		_ = d.close()
		return nil, fmt.Errorf("campaign: journal %s was recorded on machine %q, runner is configured for %q",
			opts.Dir, st.Machine, rn.Cfg.Name)
	}
	if rn.Inject != nil {
		for _, id := range rn.Inject.Spec().TargetedRuns() {
			if ev, ok := d.terminal[id]; ok {
				_ = d.close()
				return nil, fmt.Errorf("campaign: fault-spec targets run %s, but the journal already records it as %s; the fault can never fire", id, ev.Type)
			}
		}
	}
	return rn.execute(ctx, app, *st.Plan, d)
}

// replay restores one journaled terminal event into the Result, mirroring
// exactly what accept/fail/skip did in the interrupted campaign. Returns an
// error only when the replayed outcome was campaign-killing (a critical run
// quarantined or failed), which aborts the resume the same way the original
// campaign aborted.
func (ex *executor) replay(ctx context.Context, j job, ev event, retries []event) error {
	for _, r := range retries {
		ex.res.Health.AddRetry(r.Run, r.Attempt, time.Duration(r.BackoffNS), errors.New(r.Reason))
	}
	switch ev.Type {
	case evDone:
		if ev.Report == nil {
			return fmt.Errorf("campaign: journal done event for %s carries no report", j.id)
		}
		ex.res.Health.Add(ev.Findings...)
		out := &sim.Result{
			MachineName: ex.rn.Cfg.Name,
			Procs:       ev.Report.Procs,
			DataBytes:   ev.Report.DataBytes,
			WallCycles:  counters.ToFloat(ev.Report.WallCycles),
			Report:      *ev.Report,
		}
		ex.record(j, out)
	case evSkip:
		ex.mu.Lock()
		ex.res.Skipped = append(ex.res.Skipped, j.size)
		ex.mu.Unlock()
	case evQuarantine:
		ex.res.Health.Add(ev.Findings...)
		ex.res.Health.AddQuarantine(j.id)
		if criticalJob(j) {
			return fmt.Errorf("campaign: critical run %s quarantined (replayed); the model cannot fit without it", j.id)
		}
	case evFail:
		ex.res.Health.AddFailure(j.id, errors.New(ev.Reason))
		if criticalJob(j) {
			return fmt.Errorf("campaign: critical run %s failed permanently (replayed): %s", j.id, ev.Reason)
		}
	default:
		return fmt.Errorf("campaign: journal records unknown terminal event %q for %s", ev.Type, j.id)
	}
	obs.Log(ctx).Debug("run replayed from journal", "run", j.id, "outcome", ev.Type)
	return nil
}

// RecordFit appends the fit's headline estimates to the campaign journal, so
// the journal is a complete record: plan, every run outcome, and the model
// the campaign concluded with. No-op (and nil error) on a non-durable
// Result or a closed journal.
func (r *Result) RecordFit(ctx context.Context, m *model.Model) error {
	if r.dur == nil || m == nil {
		return nil
	}
	r.dur.mu.Lock()
	closed := r.dur.closed
	r.dur.mu.Unlock()
	if closed {
		return nil
	}
	return r.dur.record(ctx, event{Type: evFit, Fit: &fitSummary{
		CPI0:     m.CPI0,
		T2:       m.T2,
		Tm1:      m.Tm1,
		CpiImb:   m.CpiImb,
		Points:   len(m.Points),
		Degraded: m.Degradation.Degraded,
	}})
}

// CloseJournal flushes and closes the campaign journal. Safe to call on a
// non-durable Result and safe to call twice.
func (r *Result) CloseJournal() error {
	if r == nil || r.dur == nil {
		return nil
	}
	return r.dur.close()
}
