package campaign

import (
	"context"
	"reflect"
	"testing"

	"scaltool/internal/apps"
	"scaltool/internal/model"
	"scaltool/internal/obs"
	"scaltool/internal/runcache"
)

// TestExecuteWithRunCache is the campaign-level cache integration test: a
// second Execute of the same plan through a shared runcache must run zero
// simulations (scaltool_sim_runs_total stays put) and fit to the exact model
// of the uncached campaign.
func TestExecuteWithRunCache(t *testing.T) {
	c := cfg()
	app, err := apps.ByName("swim")
	if err != nil {
		t.Fatal(err)
	}
	plan, err := NewPlan(app, c, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	o := &obs.Observer{Metrics: obs.NewMetrics()}
	ctx := obs.NewContext(context.Background(), o)
	simRuns := func() uint64 {
		return o.Metrics.Counter("scaltool_sim_runs_total", "simulated runs completed").Value()
	}

	rn := &Runner{Cfg: c, Cache: runcache.New(runcache.Options{})}
	res1, err := rn.Execute(ctx, app, plan)
	if err != nil {
		t.Fatal(err)
	}
	first := simRuns()
	if first == 0 {
		t.Fatal("first campaign simulated nothing")
	}

	res2, err := rn.Execute(ctx, app, plan)
	if err != nil {
		t.Fatal(err)
	}
	if got := simRuns(); got != first {
		t.Fatalf("cached campaign simulated %d new runs, want 0", got-first)
	}

	opts := model.DefaultOptions(c.L2.SizeBytes)
	m1, err := res1.Fit(opts)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := res2.Fit(opts)
	if err != nil {
		t.Fatal(err)
	}
	if m1.CPI0 != m2.CPI0 || m1.T2 != m2.T2 || m1.Tm1 != m2.Tm1 || m1.Compulsory != m2.Compulsory {
		t.Fatalf("cached fit differs: cpi0 %v vs %v, t2 %v vs %v", m1.CPI0, m2.CPI0, m1.T2, m2.T2)
	}
	if !reflect.DeepEqual(m1.Breakdown(), m2.Breakdown()) {
		t.Fatal("cached campaign's breakdown differs from the uncached one")
	}
	if !reflect.DeepEqual(m1.Speedups(), m2.Speedups()) {
		t.Fatal("cached campaign's speedup curve differs from the uncached one")
	}
}

// TestExecuteCacheSharedAcrossRunners checks the cache is keyed by content,
// not by campaign: a different Runner re-running the same plan reuses the
// first Runner's entries.
func TestExecuteCacheSharedAcrossRunners(t *testing.T) {
	c := cfg()
	app, err := apps.ByName("swim")
	if err != nil {
		t.Fatal(err)
	}
	plan, err := NewPlan(app, c, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	o := &obs.Observer{Metrics: obs.NewMetrics()}
	ctx := obs.NewContext(context.Background(), o)
	shared := runcache.New(runcache.Options{})

	if _, err := (&Runner{Cfg: c, Cache: shared}).Execute(ctx, app, plan); err != nil {
		t.Fatal(err)
	}
	before := o.Metrics.Counter("scaltool_sim_runs_total", "simulated runs completed").Value()
	if _, err := (&Runner{Cfg: c, Cache: shared, Workers: 2}).Execute(ctx, app, plan); err != nil {
		t.Fatal(err)
	}
	if got := o.Metrics.Counter("scaltool_sim_runs_total", "simulated runs completed").Value(); got != before {
		t.Fatalf("second runner simulated %d runs through a warm shared cache", got-before)
	}
}
