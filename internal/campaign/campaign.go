// Package campaign plans and executes Scal-Tool's measurement runs.
//
// The plan is Table 3 of the paper: run the application at the base
// data-set size s0 once for each processor count 1, 2, 4, …, 2^(n−1), and
// on a uniprocessor once at each fractional size s0/2, s0/4, …, s0/2^(n−1).
// Every run reads the hardware event counters and produces a single output
// file — 2n−1 runs, 2^n+n−2 processors, 2n−1 files in total (Table 1's
// Scal-Tool row). The uniprocessor runs double as the Figure 3a hit-rate
// scan and (those that overflow the L2) as the t2/tm estimation points.
//
// The §2.4.2 estimation kernels (barrier loop, idle spin) are run once per
// machine/processor-count and are shared by every application's analysis;
// the paper's resource accounting does not charge them to the application.
package campaign

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"scaltool/internal/apps"
	"scaltool/internal/machine"
	"scaltool/internal/model"
	"scaltool/internal/perftools"
	"scaltool/internal/sim"
)

// Plan is the run matrix of Table 3.
type Plan struct {
	App        string
	S0         uint64   // base data-set size
	ProcCounts []int    // 1, 2, 4, …, 2^(n−1)
	UniSizes   []uint64 // descending fractional sizes s0/2 … s0/2^(n−1) (s0 itself is the ProcCounts[0] run)
}

// NewPlan builds the Table 3 plan for an application. maxProcs must be a
// power of two ≥ 1; s0 == 0 selects the application's default size.
func NewPlan(app apps.App, cfg machine.Config, maxProcs int, s0 uint64) (Plan, error) {
	if maxProcs < 1 || maxProcs&(maxProcs-1) != 0 {
		return Plan{}, fmt.Errorf("campaign: maxProcs must be a power of two ≥ 1, got %d", maxProcs)
	}
	if s0 == 0 {
		s0 = app.DefaultBytes(cfg)
	}
	p := Plan{App: app.Name(), S0: s0}
	for n := 1; n <= maxProcs; n *= 2 {
		p.ProcCounts = append(p.ProcCounts, n)
	}
	for s := s0 / 2; len(p.UniSizes) < len(p.ProcCounts)-1; s /= 2 {
		p.UniSizes = append(p.UniSizes, s)
	}
	// The t2/tm least squares needs several sizes that overflow the L2
	// ("we use only data set sizes that overflow the L2 cache", §2.3).
	// When s0 is close to the L2 capacity the Table 3 fractions don't
	// provide them, so the plan adds a few sizes above s0 — the paper's
	// "about 3-4 data set sizes" for the t2/tm triplets.
	overflow := 0
	threshold := uint64(1.5 * float64(cfg.L2.SizeBytes))
	for _, s := range append([]uint64{s0}, p.UniSizes...) {
		if s >= threshold {
			overflow++
		}
	}
	for f := 1.5; overflow < 2 && f <= 16; f *= 1.5 {
		s := uint64(f * float64(s0))
		if s <= s0 {
			continue
		}
		p.UniSizes = append(p.UniSizes, s)
		if s >= threshold {
			overflow++
		}
	}
	return p, nil
}

// N returns the number of processor-count points (the paper's n).
func (p Plan) N() int { return len(p.ProcCounts) }

// Cost returns the Table 1 Scal-Tool row: 2n−1 runs, 2^n+n−2 processors,
// 2n−1 files.
func (p Plan) Cost() perftools.ResourceCost {
	n := p.N()
	c := perftools.ResourceCost{}
	for _, procs := range p.ProcCounts {
		c.Runs++
		c.Processors += procs
		c.Files++
	}
	for range p.UniSizes {
		c.Runs++
		c.Processors++
		c.Files++
	}
	_ = n
	return c
}

// Result bundles everything one campaign produced.
type Result struct {
	Plan    Plan
	Machine machine.Config

	// BaseRuns maps processor count → the s0 run.
	BaseRuns map[int]*sim.Result
	// UniRuns maps achieved data-set size → the uniprocessor run
	// (includes the s0 uniprocessor run).
	UniRuns map[uint64]*sim.Result
	// SyncKernels maps processor count → the barrier-loop kernel run.
	SyncKernels map[int]*sim.Result
	// SpinKernel is the idle-spin kernel run (at the largest count).
	SpinKernel *sim.Result

	// Skipped lists uniprocessor sizes the application could not be built
	// at (too small for its grid); the model interpolates across them.
	Skipped []uint64
}

// Inputs assembles the model's input set from the campaign measurements.
func (r *Result) Inputs() (model.Inputs, error) {
	in := model.Inputs{SyncKernel: map[int]model.Measurement{}}
	for _, res := range r.BaseRuns {
		in.Base = append(in.Base, model.FromReport(&res.Report))
	}
	for _, res := range r.UniRuns {
		in.Uniproc = append(in.Uniproc, model.FromReport(&res.Report))
	}
	for n, res := range r.SyncKernels {
		in.SyncKernel[n] = model.FromReport(&res.Report)
	}
	if r.SpinKernel == nil {
		return in, fmt.Errorf("campaign: missing spin kernel run")
	}
	spin, err := model.SpinnerCPI(&r.SpinKernel.Report)
	if err != nil {
		return in, err
	}
	in.SpinCPI = spin
	return in, nil
}

// Fit runs the model on the campaign's measurements.
func (r *Result) Fit(opts model.Options) (*model.Model, error) {
	in, err := r.Inputs()
	if err != nil {
		return nil, err
	}
	return model.Fit(in, opts)
}

// MeasuredMP returns the speedshop-measured MP cycles per processor count —
// the validation series of Figures 7/10/13. (On real hardware this costs
// the extra speedshop runs of Table 1; the simulator gives it away, which
// is exactly why the validation is possible here.)
func (r *Result) MeasuredMP() map[int]float64 {
	out := make(map[int]float64, len(r.BaseRuns))
	for n, res := range r.BaseRuns {
		prof := perftools.Speedshop(res)
		out[n] = prof.MPCycles()
	}
	return out
}

// Runner executes campaigns.
type Runner struct {
	Cfg machine.Config
	// Workers bounds concurrent simulated runs (0 = GOMAXPROCS).
	Workers int
	// SpinKernelProcs selects the spin-kernel processor count (0 = the
	// plan's largest).
	SpinKernelProcs int
}

type job struct {
	procs int
	size  uint64
	kind  int // 0 base, 1 uni, 2 syncKernel
}

// Run executes the plan for an application. Independent runs execute
// concurrently on a worker pool; results are deterministic regardless of
// worker count.
func (rn *Runner) Run(app apps.App, plan Plan) (*Result, error) {
	if err := rn.Cfg.Validate(); err != nil {
		return nil, err
	}
	res := &Result{
		Plan:        plan,
		Machine:     rn.Cfg,
		BaseRuns:    map[int]*sim.Result{},
		UniRuns:     map[uint64]*sim.Result{},
		SyncKernels: map[int]*sim.Result{},
	}

	var jobs []job
	for _, n := range plan.ProcCounts {
		jobs = append(jobs, job{procs: n, size: plan.S0, kind: 0})
		jobs = append(jobs, job{procs: n, kind: 2})
	}
	for _, s := range plan.UniSizes {
		jobs = append(jobs, job{procs: 1, size: s, kind: 1})
	}

	workers := rn.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	var (
		mu       sync.Mutex
		firstErr error
		wg       sync.WaitGroup
	)
	sem := make(chan struct{}, workers)
	record := func(j job, out *sim.Result, err error) {
		mu.Lock()
		defer mu.Unlock()
		if err != nil {
			// A size too small for the app's grid is an expected skip for
			// uniprocessor fractions; anything else is fatal.
			if j.kind == 1 {
				res.Skipped = append(res.Skipped, j.size)
				return
			}
			if firstErr == nil {
				firstErr = err
			}
			return
		}
		switch j.kind {
		case 0:
			res.BaseRuns[j.procs] = out
			if j.procs == 1 {
				res.UniRuns[out.DataBytes] = out // the s0 uniproc run doubles as a curve point
			}
		case 1:
			res.UniRuns[out.DataBytes] = out
		case 2:
			res.SyncKernels[j.procs] = out
		}
	}
	for _, j := range jobs {
		wg.Add(1)
		sem <- struct{}{}
		go func(j job) {
			defer wg.Done()
			defer func() { <-sem }()
			var prog *sim.Program
			var err error
			switch j.kind {
			case 0, 1:
				prog, err = app.Build(rn.Cfg, j.procs, j.size)
			case 2:
				prog, err = apps.BuildSyncKernel(rn.Cfg, j.procs, apps.SyncKernelBarriers)
			}
			if err != nil {
				record(j, nil, err)
				return
			}
			out, err := sim.Run(rn.Cfg, prog)
			record(j, out, err)
		}(j)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	sort.Slice(res.Skipped, func(i, k int) bool { return res.Skipped[i] < res.Skipped[k] })

	// The idle-spin kernel (cpi_imb).
	spinProcs := rn.SpinKernelProcs
	if spinProcs == 0 {
		spinProcs = plan.ProcCounts[len(plan.ProcCounts)-1]
	}
	if spinProcs < 2 {
		spinProcs = 2
	}
	prog, err := apps.BuildSpinKernel(rn.Cfg, spinProcs, 20, 50_000)
	if err != nil {
		return nil, err
	}
	if res.SpinKernel, err = sim.Run(rn.Cfg, prog); err != nil {
		return nil, err
	}
	if len(res.UniRuns) < 3 {
		return nil, fmt.Errorf("campaign: only %d usable uniprocessor runs (app grid too coarse for the plan)", len(res.UniRuns))
	}
	return res, nil
}

// SegmentInputs assembles the model's inputs restricted to the regions
// whose names contain substr — per-segment analysis, the paper's "plots can
// be obtained for the overall application or for a segment of the
// application that is considered particularly important" (§2.1). The
// estimation kernels are shared with the whole-application analysis.
func (r *Result) SegmentInputs(substr string) (model.Inputs, error) {
	in := model.Inputs{SyncKernel: map[int]model.Measurement{}}
	for _, res := range r.BaseRuns {
		rep, err := res.SegmentReport(substr)
		if err != nil {
			return in, err
		}
		in.Base = append(in.Base, model.FromReport(rep))
	}
	for _, res := range r.UniRuns {
		rep, err := res.SegmentReport(substr)
		if err != nil {
			return in, err
		}
		in.Uniproc = append(in.Uniproc, model.FromReport(rep))
	}
	for n, res := range r.SyncKernels {
		in.SyncKernel[n] = model.FromReport(&res.Report)
	}
	if r.SpinKernel == nil {
		return in, fmt.Errorf("campaign: missing spin kernel run")
	}
	spin, err := model.SpinnerCPI(&r.SpinKernel.Report)
	if err != nil {
		return in, err
	}
	in.SpinCPI = spin
	return in, nil
}

// FitSegment fits the scalability model for one application segment.
func (r *Result) FitSegment(substr string, opts model.Options) (*model.Model, error) {
	in, err := r.SegmentInputs(substr)
	if err != nil {
		return nil, err
	}
	return model.Fit(in, opts)
}
