// Package campaign plans and executes Scal-Tool's measurement runs.
//
// The plan is Table 3 of the paper: run the application at the base
// data-set size s0 once for each processor count 1, 2, 4, …, 2^(n−1), and
// on a uniprocessor once at each fractional size s0/2, s0/4, …, s0/2^(n−1).
// Every run reads the hardware event counters and produces a single output
// file — 2n−1 runs, 2^n+n−2 processors, 2n−1 files in total (Table 1's
// Scal-Tool row). The uniprocessor runs double as the Figure 3a hit-rate
// scan and (those that overflow the L2) as the t2/tm estimation points.
//
// The §2.4.2 estimation kernels (barrier loop, idle spin) are run once per
// machine/processor-count and are shared by every application's analysis;
// the paper's resource accounting does not charge them to the application.
package campaign

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
	"strconv"
	"sync"
	"time"

	"scaltool/internal/apps"
	"scaltool/internal/faultinject"
	"scaltool/internal/health"
	"scaltool/internal/machine"
	"scaltool/internal/model"
	"scaltool/internal/obs"
	"scaltool/internal/perftools"
	"scaltool/internal/runcache"
	"scaltool/internal/sim"
)

// Plan is the run matrix of Table 3.
type Plan struct {
	App        string
	S0         uint64   // base data-set size
	ProcCounts []int    // 1, 2, 4, …, 2^(n−1)
	UniSizes   []uint64 // descending fractional sizes s0/2 … s0/2^(n−1) (s0 itself is the ProcCounts[0] run)
}

// NewPlan builds the Table 3 plan for an application. maxProcs must be a
// power of two ≥ 1; s0 == 0 selects the application's default size.
func NewPlan(app apps.App, cfg machine.Config, maxProcs int, s0 uint64) (Plan, error) {
	if maxProcs < 1 || maxProcs&(maxProcs-1) != 0 {
		return Plan{}, fmt.Errorf("campaign: maxProcs must be a power of two ≥ 1, got %d", maxProcs)
	}
	if s0 == 0 {
		s0 = app.DefaultBytes(cfg)
	}
	p := Plan{App: app.Name(), S0: s0}
	for n := 1; n <= maxProcs; n *= 2 {
		p.ProcCounts = append(p.ProcCounts, n)
	}
	for s := s0 / 2; len(p.UniSizes) < len(p.ProcCounts)-1; s /= 2 {
		p.UniSizes = append(p.UniSizes, s)
	}
	// The t2/tm least squares needs several sizes that overflow the L2
	// ("we use only data set sizes that overflow the L2 cache", §2.3).
	// When s0 is close to the L2 capacity the Table 3 fractions don't
	// provide them, so the plan adds a few sizes above s0 — the paper's
	// "about 3-4 data set sizes" for the t2/tm triplets.
	overflow := 0
	threshold := uint64(1.5 * float64(cfg.L2.SizeBytes))
	for _, s := range append([]uint64{s0}, p.UniSizes...) {
		if s >= threshold {
			overflow++
		}
	}
	for f := 1.5; overflow < 2 && f <= 16; f *= 1.5 {
		s := uint64(f * float64(s0))
		if s <= s0 {
			continue
		}
		p.UniSizes = append(p.UniSizes, s)
		if s >= threshold {
			overflow++
		}
	}
	return p, nil
}

// N returns the number of processor-count points (the paper's n).
func (p Plan) N() int { return len(p.ProcCounts) }

// Cost returns the Table 1 Scal-Tool row: 2n−1 runs, 2^n+n−2 processors,
// 2n−1 files.
func (p Plan) Cost() perftools.ResourceCost {
	n := p.N()
	c := perftools.ResourceCost{}
	for _, procs := range p.ProcCounts {
		c.Runs++
		c.Processors += procs
		c.Files++
	}
	for range p.UniSizes {
		c.Runs++
		c.Processors++
		c.Files++
	}
	_ = n
	return c
}

// Result bundles everything one campaign produced.
type Result struct {
	Plan    Plan
	Machine machine.Config

	// BaseRuns maps processor count → the s0 run.
	BaseRuns map[int]*sim.Result
	// UniRuns maps achieved data-set size → the uniprocessor run
	// (includes the s0 uniprocessor run).
	UniRuns map[uint64]*sim.Result
	// SyncKernels maps processor count → the barrier-loop kernel run.
	SyncKernels map[int]*sim.Result
	// SpinKernel is the idle-spin kernel run (at the largest count).
	SpinKernel *sim.Result

	// Skipped lists uniprocessor sizes the application could not be built
	// at (too small for its grid); the model interpolates across them.
	Skipped []uint64

	// Health records everything the fault-tolerance layer did — repairs,
	// retries, quarantines, permanent failures. Never nil on a Result
	// returned by Execute/Run.
	Health *health.Report

	// Resumed counts the runs Resume restored from the journal instead of
	// re-executing. Zero on a fresh campaign. Replayed runs carry their full
	// counter report but no simulator ground truth, so MeasuredMP (a
	// validation series, not a model input) is meaningless for them.
	Resumed int

	// dur is the open campaign journal on a durable Result (RecordFit,
	// CloseJournal); nil on a plain Execute/Run result.
	dur *durable
}

// Inputs assembles the model's input set from the campaign measurements.
func (r *Result) Inputs() (model.Inputs, error) {
	in := model.Inputs{SyncKernel: map[int]model.Measurement{}}
	for _, res := range r.BaseRuns {
		in.Base = append(in.Base, model.FromReport(&res.Report))
	}
	for _, res := range r.UniRuns {
		in.Uniproc = append(in.Uniproc, model.FromReport(&res.Report))
	}
	for n, res := range r.SyncKernels {
		in.SyncKernel[n] = model.FromReport(&res.Report)
	}
	if r.SpinKernel == nil {
		return in, fmt.Errorf("campaign: missing spin kernel run")
	}
	spin, err := model.SpinnerCPI(&r.SpinKernel.Report)
	if err != nil {
		return in, err
	}
	in.SpinCPI = spin
	r.addExpectations(&in)
	return in, nil
}

// addExpectations tells the model what the plan intended to measure, so the
// fit can report how degraded the achieved input set is. Sizes the
// application's grid could not realize (Skipped) are not expectations.
func (r *Result) addExpectations(in *model.Inputs) {
	in.ExpectedProcs = append([]int(nil), r.Plan.ProcCounts...)
	skipped := make(map[uint64]bool, len(r.Skipped))
	for _, s := range r.Skipped {
		skipped[s] = true
	}
	for _, s := range append([]uint64{r.Plan.S0}, r.Plan.UniSizes...) {
		if !skipped[s] {
			in.ExpectedUniSizes = append(in.ExpectedUniSizes, s)
		}
	}
	if r.Health != nil {
		in.DroppedRuns = r.Health.DroppedRuns()
	}
}

// Fit runs the model on the campaign's measurements.
func (r *Result) Fit(opts model.Options) (*model.Model, error) {
	return r.FitContext(context.Background(), opts)
}

// FitContext is Fit under a context, so an observer installed there
// (internal/obs) sees the fit's span, metrics, and degradation log lines.
func (r *Result) FitContext(ctx context.Context, opts model.Options) (*model.Model, error) {
	in, err := r.Inputs()
	if err != nil {
		return nil, err
	}
	return model.FitContext(ctx, in, opts)
}

// MeasuredMP returns the speedshop-measured MP cycles per processor count —
// the validation series of Figures 7/10/13. (On real hardware this costs
// the extra speedshop runs of Table 1; the simulator gives it away, which
// is exactly why the validation is possible here.)
func (r *Result) MeasuredMP() map[int]float64 {
	out := make(map[int]float64, len(r.BaseRuns))
	for n, res := range r.BaseRuns {
		prof := perftools.Speedshop(res)
		out[n] = prof.MPCycles()
	}
	return out
}

// Runner executes campaigns.
type Runner struct {
	Cfg machine.Config
	// Workers bounds concurrent simulated runs (0 = GOMAXPROCS).
	Workers int
	// SpinKernelProcs selects the spin-kernel processor count (0 = the
	// plan's largest).
	SpinKernelProcs int

	// MaxRetries bounds how many times one run is re-attempted after a
	// retryable failure (a transient fault or a blown per-attempt
	// deadline). 0 means a run gets exactly one attempt.
	MaxRetries int
	// RetryBase is the first retry's backoff; the wait doubles per attempt
	// and carries a deterministic ±25% per-run jitter so simultaneous
	// retries de-synchronize while a rerun reproduces the same trace.
	// 0 retries immediately.
	RetryBase time.Duration
	// RunTimeout is the per-attempt deadline (0 = none). A hung run is
	// reaped when the deadline expires and the attempt counts as retryable.
	RunTimeout time.Duration
	// HeartbeatTimeout arms the worker supervisor (0 = off): a worker whose
	// run makes no progress for this long — no simulator region boundary
	// crossed — has its attempt canceled and restarted. Unlike RunTimeout it
	// bounds progress, not total duration, so it catches a wedged run long
	// before a generous whole-run deadline would.
	HeartbeatTimeout time.Duration
	// MaxWorkerRestarts bounds how many watchdog restarts one run gets
	// before it is quarantined (0 = quarantine on the first missed
	// heartbeat). Watchdog restarts do not consume MaxRetries.
	MaxWorkerRestarts int
	// Inject, when non-nil, perturbs the campaign with deterministic
	// faults — the chaos-test hook. Production campaigns leave it nil.
	Inject *faultinject.Injector
	// Cache, when non-nil, serves repeated runs from the content-addressed
	// run cache (internal/runcache) instead of re-simulating: the simulator
	// is deterministic, so a (machine, program) pair seen before — by this
	// campaign, an earlier campaign, or a concurrent one sharing the cache —
	// skips straight to its recorded Result. Injection outcomes (transient
	// faults, hangs) still fire per attempt; only the simulation itself is
	// elided.
	Cache *runcache.Cache
}

// Job kinds, in plan order.
const (
	jobBase = iota // application at s0, one run per processor count
	jobUni         // uniprocessor application at a fractional size
	jobSync        // barrier-loop estimation kernel
	jobSpin        // idle-spin estimation kernel
)

var kindNames = [...]string{jobBase: "base", jobUni: "uni", jobSync: "ksync", jobSpin: "kspin"}

type job struct {
	kind  int
	procs int
	size  uint64 // requested data-set size (0 for the kernels)
	id    string
}

// RunID is the campaign-wide identity of one run, e.g. "base_p04_s1048576":
// kind ("base", "uni", "ksync", "kspin"), processor count, and requested
// data-set size (0 for the estimation kernels). Fault specs, the health
// report, and the report file names (with a ".json" suffix, using the
// achieved size) all refer to runs this way.
func RunID(kind string, procs int, size uint64) string {
	return fmt.Sprintf("%s_p%02d_s%d", kind, procs, size)
}

// Run executes the plan with no cancellation: Execute under a background
// context. Retry, deadline, and injection policy still apply if set.
func (rn *Runner) Run(app apps.App, plan Plan) (*Result, error) {
	return rn.Execute(context.Background(), app, plan)
}

// Execute runs the plan for an application on a worker pool. Results are
// deterministic regardless of worker count, including under fault injection.
//
// An observer carried in ctx (internal/obs) sees the campaign: a "campaign"
// span with one detached "run" lane per job and an "attempt" span per try,
// counters for runs started/retried/failed/quarantined plus per-severity
// health findings, an attempt-latency histogram, and structured log lines
// for every health finding, retry decision, and permanent failure.
//
// Execute is the fault-tolerant path: failed attempts are retried with
// exponential backoff (MaxRetries, RetryBase), each attempt runs under
// RunTimeout, and every accepted report passes health.Sanitize. A run that
// stays broken is dropped and recorded in Result.Health rather than killing
// the campaign — unless the model cannot fit without it (the uniprocessor
// base run, the spin kernel), in which case the remaining workers are
// canceled promptly and Execute returns the critical failure. Canceling ctx
// stops the campaign the same way.
func (rn *Runner) Execute(ctx context.Context, app apps.App, plan Plan) (*Result, error) {
	return rn.execute(ctx, app, plan, nil)
}

// execute is the shared body of Execute, ExecuteDurable, and Resume. With a
// non-nil durable it journals every campaign decision before applying it and
// replays the journal's terminal events instead of re-executing those runs.
// On error the journal is closed; on success it is handed to the Result.
func (rn *Runner) execute(ctx context.Context, app apps.App, plan Plan, d *durable) (*Result, error) {
	if err := rn.Cfg.Validate(); err != nil {
		_ = d.close()
		return nil, err
	}
	if len(plan.ProcCounts) == 0 {
		_ = d.close()
		return nil, fmt.Errorf("campaign: plan has no processor counts")
	}
	res := &Result{
		Plan:        plan,
		Machine:     rn.Cfg,
		BaseRuns:    map[int]*sim.Result{},
		UniRuns:     map[uint64]*sim.Result{},
		SyncKernels: map[int]*sim.Result{},
		Health:      health.NewReport(),
	}
	structural := health.CheckStructure(plan.ProcCounts, append([]uint64{plan.S0}, plan.UniSizes...))
	res.Health.Add(structural...)

	spinProcs := rn.SpinKernelProcs
	if spinProcs == 0 {
		spinProcs = plan.ProcCounts[len(plan.ProcCounts)-1]
	}
	if spinProcs < 2 {
		spinProcs = 2
	}
	var jobs []job
	addJob := func(kind, procs int, size uint64) {
		jobs = append(jobs, job{kind: kind, procs: procs, size: size, id: RunID(kindNames[kind], procs, size)})
	}
	for _, n := range plan.ProcCounts {
		addJob(jobBase, n, plan.S0)
		addJob(jobSync, n, 0)
	}
	for _, s := range plan.UniSizes {
		addJob(jobUni, 1, s)
	}
	addJob(jobSpin, spinProcs, 0)

	ctx, span := obs.StartSpan(ctx, "campaign",
		obs.A("app", plan.App), obs.A("s0", plan.S0),
		obs.A("max_procs", plan.ProcCounts[len(plan.ProcCounts)-1]),
		obs.A("jobs", len(jobs)))
	defer span.End()
	obs.Log(ctx).Info("campaign starting", "app", plan.App, "s0", plan.S0, "jobs", len(jobs))
	logFindings(ctx, structural)

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	sup := newSupervisor(rn.HeartbeatTimeout, rn.MaxWorkerRestarts, obs.Meter(ctx))
	sup.start(ctx)
	defer sup.stopWait()
	ex := &executor{rn: rn, app: app, res: res, cancel: cancel, d: d, sup: sup}

	// Resume path: restore journaled terminal outcomes without re-executing
	// their runs. A replayed campaign-killing outcome aborts here, exactly as
	// the original campaign aborted.
	pending := jobs
	if d != nil && len(d.terminal) > 0 {
		pending = pending[:0]
		for _, j := range jobs {
			ev, ok := d.terminal[j.id]
			if !ok {
				pending = append(pending, j)
				continue
			}
			if err := ex.replay(ctx, j, ev, d.retries[j.id]); err != nil {
				obs.Log(ctx).Error("campaign aborted during journal replay", "app", plan.App, "err", err) //scalvet:ignore abort path, runs at most once per campaign
				_ = d.close()
				return nil, err
			}
			res.Resumed++
		}
		span.SetAttr("resumed", res.Resumed)
		if mt := obs.Meter(ctx); mt != nil {
			mt.Counter("scaltool_journal_replayed_runs_total", "campaign runs restored from the journal on resume").Add(uint64(res.Resumed))
		}
		obs.Log(ctx).Info("campaign resumed from journal", "app", plan.App,
			"replayed", res.Resumed, "remaining", len(pending))
	}

	workers := rn.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
dispatch:
	for _, j := range pending {
		select {
		case <-ctx.Done():
			break dispatch
		case sem <- struct{}{}:
		}
		wg.Add(1)
		go func(j job) {
			defer wg.Done()
			defer func() { <-sem }()
			// Panic isolation: a panicking simulation (a hostile program shape
			// hitting an internal assertion) must not kill the process — the
			// serving daemon shares it with every other request. The panic
			// becomes a typed critical error; the campaign aborts cleanly and
			// the serving layer converts it to a 500 plus a quarantine entry.
			defer func() {
				if r := recover(); r != nil {
					ex.critical(&PanicError{Run: j.id, Value: r, Stack: debug.Stack()})
				}
			}()
			ex.run(ctx, j)
		}(j)
	}
	wg.Wait()
	res.Health.Finalize()

	ex.mu.Lock()
	criticalErr := ex.criticalErr
	ex.mu.Unlock()
	if criticalErr != nil {
		obs.Log(ctx).Error("campaign aborted", "app", plan.App, "err", criticalErr)
		_ = d.close()
		return nil, criticalErr
	}
	if err := ctx.Err(); err != nil {
		_ = d.close()
		return nil, fmt.Errorf("campaign: canceled: %w", err)
	}
	sort.Slice(res.Skipped, func(i, k int) bool { return res.Skipped[i] < res.Skipped[k] })
	if len(res.UniRuns) < 3 {
		_ = d.close()
		return nil, fmt.Errorf("campaign: only %d usable uniprocessor runs (app grid too coarse for the plan)", len(res.UniRuns))
	}
	_, repairs, quarantines := res.Health.Counts()
	span.SetAttr("repairs", repairs)
	span.SetAttr("quarantines", quarantines)
	obs.Log(ctx).Info("campaign finished", "app", plan.App, "health", res.Health.Summary())
	res.dur = d
	return res, nil
}

// executor carries the shared state of one Execute call.
type executor struct {
	rn  *Runner
	app apps.App
	res *Result
	d   *durable    // campaign journal; nil on a non-durable Execute
	sup *supervisor // worker watchdog; nil when HeartbeatTimeout is unset

	mu          sync.Mutex
	criticalErr error
	cancel      context.CancelFunc
}

// journal appends a campaign event to the WAL. On failure — an injected
// crash point or a real I/O error — it aborts the campaign (the event was
// not applied; resume re-derives it) and reports false so the caller stops.
// Trivially true on a non-durable campaign.
func (ex *executor) journal(ctx context.Context, ev event) bool {
	if ex.d == nil {
		return true
	}
	if err := ex.d.record(ctx, ev); err != nil {
		ex.critical(err)
		return false
	}
	return true
}

// runEvent pre-fills a run-scoped journal event.
func runEvent(typ string, j job) event {
	return event{Type: typ, Run: j.id, Kind: kindNames[j.kind], Procs: j.procs, Size: j.size}
}

// criticalJob reports whether losing a run makes the campaign unfittable:
// the uniprocessor base run anchors CPI0 and the spin kernel anchors
// cpi_imb; every other run's loss only degrades the fit.
func criticalJob(j job) bool {
	return (j.kind == jobBase && j.procs == 1) || j.kind == jobSpin
}

// run executes one job: build, attempt (with retries), sanitize, record.
// Each job runs on its own detached trace lane (workers interleave) with the
// run identity threaded into the context's logger.
func (ex *executor) run(ctx context.Context, j job) {
	ctx, span := obs.StartSpan(obs.Detach(ctx), "run",
		obs.A("id", j.id), obs.A("kind", kindNames[j.kind]),
		obs.A("procs", j.procs), obs.A("size", j.size))
	defer span.End()
	ctx = obs.WithLogger(ctx, obs.Log(ctx).With("run", j.id))
	if mt := obs.Meter(ctx); mt != nil {
		mt.Counter("scaltool_campaign_runs_started_total", "campaign runs dispatched").Inc()
	}
	rn := ex.rn
	var prog *sim.Program
	var err error
	switch j.kind {
	case jobBase, jobUni:
		prog, err = ex.app.Build(rn.Cfg, j.procs, j.size)
	case jobSync:
		prog, err = apps.BuildSyncKernel(rn.Cfg, j.procs, apps.SyncKernelBarriers)
	case jobSpin:
		prog, err = apps.BuildSpinKernel(rn.Cfg, j.procs, 20, 50_000)
	}
	if err != nil {
		// A size too small for the app's grid is an expected skip for
		// uniprocessor fractions; the model interpolates across it.
		if j.kind == jobUni {
			span.SetAttr("skipped", true)
			obs.Log(ctx).Debug("size below the app's grid; skipped", "size", j.size)
			ev := runEvent(evSkip, j)
			ev.Reason = err.Error()
			if !ex.journal(ctx, ev) {
				return
			}
			ex.mu.Lock()
			ex.res.Skipped = append(ex.res.Skipped, j.size)
			ex.mu.Unlock()
			return
		}
		ex.fail(ctx, j, fmt.Errorf("campaign: building %s: %w", j.id, err))
		return
	}
	w := ex.sup.register(j.id)
	defer ex.sup.release(j.id)
	for attempt := 0; ; attempt++ {
		ev := runEvent(evAttempt, j)
		ev.Attempt = attempt
		if !ex.journal(ctx, ev) {
			return
		}
		actx := ctx
		if w != nil {
			// The supervisor watches this attempt: sim's region boundaries
			// feed the heartbeat, and the watchdog cancels actx if they stop.
			var acancel context.CancelFunc
			actx, acancel = context.WithCancel(ctx)
			w.arm(acancel)
			actx = sim.WithHeartbeat(actx, w.heartbeat)
			defer acancel() //scalvet:ignore ctx-cancel released by disarm/kick each iteration; defer is the leak backstop
		}
		out, err := ex.attempt(actx, j, prog, attempt)
		kicked, poisoned := w.disarm()
		if poisoned {
			ex.quarantineHung(ctx, j, w)
			return
		}
		if kicked && ctx.Err() == nil {
			// The watchdog canceled a stalled attempt but the run still has
			// restart budget. Re-attempt immediately; watchdog restarts do
			// not consume MaxRetries (the run never got to fail on its own).
			reason := fmt.Errorf("campaign: %s attempt %d made no progress for %s; watchdog restarted it", j.id, attempt, rn.HeartbeatTimeout) //scalvet:ignore a watchdog restart is exceptional, and the error text is the record
			ex.res.Health.AddRetry(j.id, attempt, 0, reason)
			rev := runEvent(evRetry, j)
			rev.Attempt = attempt
			rev.Reason = reason.Error()
			if !ex.journal(ctx, rev) {
				return
			}
			if mt := obs.Meter(ctx); mt != nil {
				mt.Counter("scaltool_campaign_runs_retried_total", "campaign attempts retried after a retryable failure").Inc()
			}
			obs.Log(ctx).Warn("retrying run after watchdog restart", "attempt", attempt) //scalvet:ignore retry path: entered only after a stalled attempt
			continue
		}
		if err == nil {
			span.SetAttr("attempts", attempt+1) //scalvet:ignore terminal path: runs once per job, then returns
			ex.accept(ctx, j, out)
			return
		}
		if ctx.Err() != nil || !retryable(err) || attempt >= rn.MaxRetries {
			span.SetAttr("attempts", attempt+1) //scalvet:ignore terminal path: runs once per job, then returns
			ex.fail(ctx, j, err)
			return
		}
		backoff := rn.backoffFor(j.id, attempt)
		ex.res.Health.AddRetry(j.id, attempt, backoff, err)
		rev := runEvent(evRetry, j)
		rev.Attempt = attempt
		rev.BackoffNS = int64(backoff)
		rev.Reason = err.Error()
		if !ex.journal(ctx, rev) {
			return
		}
		if mt := obs.Meter(ctx); mt != nil {
			mt.Counter("scaltool_campaign_runs_retried_total", "campaign attempts retried after a retryable failure").Inc()
		}
		obs.Log(ctx).Warn("retrying run", "attempt", attempt, "backoff", backoff, "err", err) //scalvet:ignore retry path: entered only after a retryable failure
		sleepCtx(ctx, backoff)
	}
}

// quarantineHung drops a run whose worker exhausted its watchdog restart
// budget: the run is quarantined in the health report (critical runs abort
// the campaign) rather than letting a wedged simulation stall the pool.
func (ex *executor) quarantineHung(ctx context.Context, j job, w *worker) {
	f := health.Finding{
		Run:      j.id,
		Check:    "watchdog",
		Severity: health.Quarantine,
		Detail: "no progress within " + ex.rn.HeartbeatTimeout.String() +
			" across " + strconv.Itoa(w.restartCount()) + " watchdog restart(s); restart budget exhausted",
	}
	ex.res.Health.Add(f)
	logFindings(ctx, []health.Finding{f})
	ev := runEvent(evQuarantine, j)
	ev.Findings = []health.Finding{f}
	ev.Reason = f.Detail
	if !ex.journal(ctx, ev) {
		return
	}
	ex.res.Health.AddQuarantine(j.id)
	if mt := obs.Meter(ctx); mt != nil {
		mt.Counter("scaltool_campaign_runs_quarantined_total", "campaign runs whose reports failed sanitization").Inc()
	}
	if criticalJob(j) {
		ex.critical(fmt.Errorf("campaign: critical run %s quarantined by the watchdog; the model cannot fit without it", j.id))
	}
}

// attempt executes one try of one run under the per-attempt deadline,
// consulting the injector for transient failures and hangs.
func (ex *executor) attempt(ctx context.Context, j job, prog *sim.Program, attempt int) (_ *sim.Result, err error) {
	rn := ex.rn
	start := time.Now()
	ctx, span := obs.StartSpan(ctx, "attempt", obs.A("n", attempt))
	defer span.End()
	defer func() { // runs before span.End (LIFO), so the span sees the error
		if err != nil {
			span.SetAttr("error", err.Error())
		}
		if mt := obs.Meter(ctx); mt != nil {
			mt.Histogram("scaltool_campaign_attempt_seconds", "wall-clock latency of one run attempt",
				obs.LatencyBuckets).Observe(time.Since(start).Seconds())
		}
	}()
	actx := ctx
	if rn.RunTimeout > 0 {
		var cancel context.CancelFunc
		actx, cancel = context.WithTimeout(ctx, rn.RunTimeout)
		defer cancel()
	}
	switch rn.Inject.Outcome(j.id, attempt) {
	case faultinject.Transient:
		return nil, fmt.Errorf("campaign: %s attempt %d: %w", j.id, attempt, faultinject.ErrTransient)
	case faultinject.Hang:
		if rn.RunTimeout <= 0 {
			// With no deadline a hang would block the campaign forever;
			// degrade it to a transient failure so retry still converges.
			return nil, fmt.Errorf("campaign: %s attempt %d hung with no deadline: %w", j.id, attempt, faultinject.ErrTransient)
		}
		<-actx.Done()
		return nil, fmt.Errorf("campaign: %s attempt %d hung until its deadline: %w", j.id, attempt, actx.Err())
	}
	out, hit, err := rn.Cache.GetOrRun(actx, rn.Cfg, prog, func(rctx context.Context) (*sim.Result, error) {
		return sim.RunContext(rctx, rn.Cfg, prog)
	})
	if err != nil {
		return nil, fmt.Errorf("campaign: %s attempt %d: %w", j.id, attempt, err)
	}
	if hit {
		span.SetAttr("cache_hit", true)
	}
	return out, nil
}

// accept perturbs (under injection), sanitizes, and records a successful
// run. A report that fails sanitization is quarantined, not recorded.
func (ex *executor) accept(ctx context.Context, j job, out *sim.Result) {
	rep := &out.Report
	if ex.rn.Inject != nil {
		rep, _ = ex.rn.Inject.PerturbReport(j.id, rep)
	}
	clean, findings := health.Sanitize(j.id, rep, ex.rn.minCPI())
	ex.res.Health.Add(findings...)
	logFindings(ctx, findings)
	if health.ShouldQuarantine(findings) {
		ev := runEvent(evQuarantine, j)
		ev.Findings = findings
		if !ex.journal(ctx, ev) {
			return
		}
		ex.res.Health.AddQuarantine(j.id)
		if mt := obs.Meter(ctx); mt != nil {
			mt.Counter("scaltool_campaign_runs_quarantined_total", "campaign runs whose reports failed sanitization").Inc()
		}
		if criticalJob(j) {
			ex.critical(fmt.Errorf("campaign: critical run %s quarantined; the model cannot fit without it", j.id))
		}
		return
	}
	out.Report = *clean
	// WAL discipline: the sanitized report reaches the journal before the
	// Result. The journaled report is byte-complete — replaying it on resume
	// reproduces the exact model inputs this run contributed.
	ev := runEvent(evDone, j)
	ev.Report = clean
	ev.Findings = findings
	if !ex.journal(ctx, ev) {
		return
	}
	if o := obs.FromContext(ctx); o != nil && o.Trace != nil && j.kind == jobBase {
		// Export the run's simulated-time per-processor timeline alongside
		// the wall-clock spans (base runs only: they are the Figure 6/9/12
		// points an operator debugs with).
		sim.AppendTimeline(o.Trace, out, j.id)
	}
	ex.record(j, out)
}

// record stores an accepted (or replayed) run in the Result's maps.
func (ex *executor) record(j job, out *sim.Result) {
	ex.mu.Lock()
	defer ex.mu.Unlock()
	switch j.kind {
	case jobBase:
		ex.res.BaseRuns[j.procs] = out
		if j.procs == 1 {
			ex.res.UniRuns[out.DataBytes] = out // the s0 uniproc run doubles as a curve point
		}
	case jobUni:
		ex.res.UniRuns[out.DataBytes] = out
	case jobSync:
		ex.res.SyncKernels[j.procs] = out
	case jobSpin:
		ex.res.SpinKernel = out
	}
}

// fail records a permanent failure and escalates if the run was critical.
func (ex *executor) fail(ctx context.Context, j job, err error) {
	// A run killed by campaign cancellation (graceful shutdown, or another
	// worker's critical failure) is not permanently failed — it never got to
	// finish. No terminal event is journaled, so Resume re-runs it instead of
	// replaying a spurious failure.
	if !errors.Is(err, context.Canceled) {
		ev := runEvent(evFail, j)
		ev.Reason = err.Error()
		if !ex.journal(ctx, ev) {
			return
		}
	}
	ex.res.Health.AddFailure(j.id, err)
	if mt := obs.Meter(ctx); mt != nil {
		mt.Counter("scaltool_campaign_runs_failed_total", "campaign runs dropped after a permanent failure").Inc()
	}
	obs.Log(ctx).Error("run failed permanently", "critical", criticalJob(j), "err", err)
	if criticalJob(j) {
		ex.critical(fmt.Errorf("campaign: critical run %s failed permanently: %w", j.id, err))
	}
}

// logFindings routes the sanitizer's verdicts to the structured log and the
// per-severity findings counter: repairs are warnings, quarantines errors,
// and structural notes debug chatter.
func logFindings(ctx context.Context, findings []health.Finding) {
	if len(findings) == 0 {
		return
	}
	mt := obs.Meter(ctx)
	for _, f := range findings {
		if mt != nil {
			mt.Counter("scaltool_campaign_findings_total", "health findings by severity",
				"severity", string(f.Severity)).Inc()
		}
		switch f.Severity {
		case health.Quarantine:
			obs.Log(ctx).Error("health finding", "check", f.Check, "detail", f.Detail) //scalvet:ignore health findings are rare, and logging them is the point
		case health.Repair:
			obs.Log(ctx).Warn("health finding", "check", f.Check, "detail", f.Detail) //scalvet:ignore health findings are rare, and logging them is the point
		default:
			obs.Log(ctx).Debug("health finding", "check", f.Check, "detail", f.Detail) //scalvet:ignore health findings are rare, and logging them is the point
		}
	}
}

// critical records the first campaign-killing error and cancels the pool so
// in-flight workers stop promptly.
func (ex *executor) critical(err error) {
	ex.mu.Lock()
	if ex.criticalErr == nil {
		ex.criticalErr = err
	}
	ex.mu.Unlock()
	ex.cancel()
}

// minCPI is the quarantine floor for health.Sanitize: half the cheapest
// per-instruction cost the machine can sustain.
func (rn *Runner) minCPI() float64 {
	m := rn.Cfg.Cost.ComputeCPI
	if c := rn.Cfg.Cost.L1HitCPI; c > 0 && c < m {
		m = c
	}
	return m / 2
}

// PanicError is a panic recovered from a campaign worker, converted to an
// error so one hostile or buggy run aborts its campaign instead of the
// process. The serving layer matches it with errors.As to map the failure to
// a 500 and quarantine the request shape that triggered it.
type PanicError struct {
	Run   string // run identity of the panicking job
	Value any    // the recovered panic value
	Stack []byte // stack at recovery, for the log
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("campaign: run %s panicked: %v", e.Run, e.Value)
}

// PanicValue exposes the recovered value and stack without importing this
// package's type — callers (the serving layer's panic isolation) match on
// the method set.
func (e *PanicError) PanicValue() (any, []byte) { return e.Value, e.Stack }

// retryable reports whether an attempt's failure is worth retrying:
// injected transient faults and blown per-attempt deadlines are;
// cancellation and genuine simulator errors are not.
func retryable(err error) bool {
	return errors.Is(err, faultinject.ErrTransient) || errors.Is(err, context.DeadlineExceeded)
}

// backoffFor computes attempt k's wait: RetryBase·2^k, jittered ±25%
// deterministically from the run identity so a rerun reproduces the trace.
func (rn *Runner) backoffFor(id string, attempt int) time.Duration {
	if rn.RetryBase <= 0 {
		return 0
	}
	if attempt > 20 {
		attempt = 20
	}
	d := float64(rn.RetryBase << uint(attempt))
	h := uint64(14695981039346656037)
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= 1099511628211
	}
	h ^= uint64(attempt) * 0x9e3779b97f4a7c15
	frac := 0.75 + 0.5*float64(h%1024)/1024
	if b := time.Duration(d * frac); b < time.Minute {
		return b
	}
	return time.Minute
}

// sleepCtx waits d or until ctx is canceled, whichever comes first.
func sleepCtx(ctx context.Context, d time.Duration) {
	if d <= 0 {
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}

// SegmentInputs assembles the model's inputs restricted to the regions
// whose names contain substr — per-segment analysis, the paper's "plots can
// be obtained for the overall application or for a segment of the
// application that is considered particularly important" (§2.1). The
// estimation kernels are shared with the whole-application analysis.
func (r *Result) SegmentInputs(substr string) (model.Inputs, error) {
	in := model.Inputs{SyncKernel: map[int]model.Measurement{}}
	for _, res := range r.BaseRuns {
		rep, err := res.SegmentReport(substr)
		if err != nil {
			return in, err
		}
		in.Base = append(in.Base, model.FromReport(rep))
	}
	for _, res := range r.UniRuns {
		rep, err := res.SegmentReport(substr)
		if err != nil {
			return in, err
		}
		in.Uniproc = append(in.Uniproc, model.FromReport(rep))
	}
	for n, res := range r.SyncKernels {
		in.SyncKernel[n] = model.FromReport(&res.Report)
	}
	if r.SpinKernel == nil {
		return in, fmt.Errorf("campaign: missing spin kernel run")
	}
	spin, err := model.SpinnerCPI(&r.SpinKernel.Report)
	if err != nil {
		return in, err
	}
	in.SpinCPI = spin
	r.addExpectations(&in)
	return in, nil
}

// FitSegment fits the scalability model for one application segment.
func (r *Result) FitSegment(substr string, opts model.Options) (*model.Model, error) {
	in, err := r.SegmentInputs(substr)
	if err != nil {
		return nil, err
	}
	return model.Fit(in, opts)
}
