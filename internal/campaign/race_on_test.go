//go:build race

package campaign

const raceEnabled = true
