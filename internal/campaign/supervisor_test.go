package campaign

import (
	"context"
	"strings"
	"testing"
	"time"

	"scaltool/internal/apps"
	"scaltool/internal/faultinject"
	"scaltool/internal/obs"
)

// supervisorRunner builds a runner with the watchdog armed: a generous
// per-attempt deadline (so only the heartbeat can reap a hang) and a short
// heartbeat so the tests stay fast.
func supervisorRunner(spec faultinject.Spec, heartbeat time.Duration, maxRestarts int) *Runner {
	return &Runner{
		Cfg:               cfg(),
		Inject:            faultinject.New(spec),
		RunTimeout:        time.Minute,
		HeartbeatTimeout:  heartbeat,
		MaxWorkerRestarts: maxRestarts,
	}
}

// TestSupervisorRestartsStalledWorker hangs one non-critical run's first
// attempt. The watchdog must cancel the stalled attempt and restart it —
// without consuming the retry budget (MaxRetries is 0 here) — and the
// campaign must complete with the restart visible in the health report and
// the supervisor metrics.
func TestSupervisorRestartsStalledWorker(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a campaign")
	}
	app, err := apps.ByName("swim")
	if err != nil {
		t.Fatal(err)
	}
	plan, err := NewPlan(app, cfg(), 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	stalled := RunID("ksync", 2, 0)
	rn := supervisorRunner(faultinject.Spec{Seed: 7, StallRuns: []string{stalled}}, 150*time.Millisecond, 2)

	mt := obs.NewMetrics()
	ctx := obs.NewContext(context.Background(), &obs.Observer{Metrics: mt})
	res, err := rn.Execute(ctx, app, plan)
	if err != nil {
		t.Fatalf("campaign with one stalled worker: %v", err)
	}
	if _, ok := res.SyncKernels[2]; !ok {
		t.Fatalf("stalled run %s never completed after its watchdog restart", stalled)
	}
	found := false
	for _, r := range res.Health.Retries {
		if r.Run == stalled && strings.Contains(r.Reason, "watchdog") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no watchdog retry recorded for %s; retries: %+v", stalled, res.Health.Retries)
	}
	if v := mt.Counter("scaltool_supervisor_restarts_total", "").Value(); v == 0 {
		t.Fatal("watchdog restarted a worker but the restart counter is zero")
	}
	if v := mt.Counter("scaltool_supervisor_heartbeats_total", "").Value(); v == 0 {
		t.Fatal("no heartbeats observed during a supervised campaign")
	}
	if v := mt.Counter("scaltool_supervisor_quarantines_total", "").Value(); v != 0 {
		t.Fatalf("run recovered on restart but %d quarantines were recorded", v)
	}
}

// TestSupervisorQuarantinesHungWorker makes every attempt hang. Each worker
// must be restarted at most MaxWorkerRestarts times and then have its run
// quarantined; quarantining a critical run aborts the campaign with a
// watchdog error.
func TestSupervisorQuarantinesHungWorker(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a campaign")
	}
	app, err := apps.ByName("swim")
	if err != nil {
		t.Fatal(err)
	}
	plan, err := NewPlan(app, cfg(), 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Hang probability 1 with a deep MaxFailures budget: the run can never
	// make progress, so only the watchdog's restart bound ends it.
	rn := supervisorRunner(faultinject.Spec{Seed: 7, Hang: 1, MaxFailures: 1000}, 100*time.Millisecond, 1)
	rn.Workers = 2

	mt := obs.NewMetrics()
	ctx := obs.NewContext(context.Background(), &obs.Observer{Metrics: mt})
	_, err = rn.Execute(ctx, app, plan)
	if err == nil {
		t.Fatal("campaign of permanently hung runs reported success")
	}
	if !strings.Contains(err.Error(), "watchdog") {
		t.Fatalf("campaign died of the wrong cause: %v", err)
	}
	if v := mt.Counter("scaltool_supervisor_quarantines_total", "").Value(); v == 0 {
		t.Fatal("hung workers exhausted their restarts but no quarantine was counted")
	}
}

// TestSupervisorOffByDefault checks a zero HeartbeatTimeout leaves the
// watchdog out of the loop entirely (nil supervisor, nil workers).
func TestSupervisorOffByDefault(t *testing.T) {
	if built := newSupervisor(0, 3, nil); built != nil {
		t.Fatal("zero heartbeat timeout built a supervisor")
	}
	var s *supervisor
	s.start(context.Background())
	s.stopWait()
	w := s.register("x")
	if w != nil {
		t.Fatal("nil supervisor registered a worker")
	}
	w.heartbeat()
	w.arm(nil)
	if k, p := w.disarm(); k || p {
		t.Fatal("nil worker reports watchdog activity")
	}
	s.release("x")
}
