package campaign

import (
	"math"
	"testing"

	"scaltool/internal/apps"
	"scaltool/internal/machine"
	"scaltool/internal/model"
	"scaltool/internal/perftools"
)

func cfg() machine.Config { return machine.ScaledOrigin() }

func TestNewPlanTable3Structure(t *testing.T) {
	app, _ := apps.ByName("t3dheat")
	plan, err := NewPlan(app, cfg(), 32, 0)
	if err != nil {
		t.Fatal(err)
	}
	if plan.N() != 6 {
		t.Fatalf("N = %d, want 6", plan.N())
	}
	wantProcs := []int{1, 2, 4, 8, 16, 32}
	for i, n := range wantProcs {
		if plan.ProcCounts[i] != n {
			t.Fatalf("ProcCounts = %v", plan.ProcCounts)
		}
	}
	// Fractional sizes s0/2 … s0/32.
	if len(plan.UniSizes) < 5 {
		t.Fatalf("UniSizes = %v", plan.UniSizes)
	}
	for i := 0; i < 5; i++ {
		want := plan.S0 >> uint(i+1)
		if plan.UniSizes[i] != want {
			t.Fatalf("UniSizes[%d] = %d, want %d", i, plan.UniSizes[i], want)
		}
	}
}

func TestPlanCostMatchesTable1(t *testing.T) {
	// T3dheat's s0 = 10× L2, so the Table 3 fractions already provide ≥ 3
	// overflowing sizes and the plan is exactly the paper's: 2n−1 runs,
	// 2^n+n−2 processors, 2n−1 files.
	app, _ := apps.ByName("t3dheat")
	for _, n := range []int{2, 4, 6} {
		maxProcs := 1 << uint(n-1)
		plan, err := NewPlan(app, cfg(), maxProcs, 0)
		if err != nil {
			t.Fatal(err)
		}
		c := plan.Cost()
		if c.Runs != 2*n-1 {
			t.Errorf("n=%d: runs = %d, want %d", n, c.Runs, 2*n-1)
		}
		if want := 1<<uint(n) + n - 2; c.Processors != want {
			t.Errorf("n=%d: processors = %d, want %d", n, c.Processors, want)
		}
		if c.Files != 2*n-1 {
			t.Errorf("n=%d: files = %d, want %d", n, c.Files, 2*n-1)
		}
		// The paper's headline: about half the processors of time+speedshop.
		existing := perftools.ExistingToolsCost(n)
		if 2*c.Processors > existing.Processors+2*n {
			t.Errorf("n=%d: Scal-Tool processors %d not ≈ half of %d", n, c.Processors, existing.Processors)
		}
	}
}

func TestPlanAddsOverflowSizesWhenNeeded(t *testing.T) {
	// Hydro2d's s0 ≈ 2.6× L2: its fractions don't overflow, so the plan
	// must extend above s0 (the paper's "3-4 data set sizes" for t2/tm).
	app, _ := apps.ByName("hydro2d")
	plan, err := NewPlan(app, cfg(), 32, 0)
	if err != nil {
		t.Fatal(err)
	}
	threshold := uint64(1.5 * float64(cfg().L2.SizeBytes))
	overflow := 0
	for _, s := range append([]uint64{plan.S0}, plan.UniSizes...) {
		if s >= threshold {
			overflow++
		}
	}
	if overflow < 2 {
		t.Fatalf("plan has %d overflowing sizes, want ≥ 2 (%v)", overflow, plan.UniSizes)
	}
}

func TestNewPlanValidation(t *testing.T) {
	app, _ := apps.ByName("swim")
	if _, err := NewPlan(app, cfg(), 3, 0); err == nil {
		t.Error("non-power-of-two maxProcs accepted")
	}
	if _, err := NewPlan(app, cfg(), 0, 0); err == nil {
		t.Error("maxProcs=0 accepted")
	}
	plan, err := NewPlan(app, cfg(), 4, 123456)
	if err != nil || plan.S0 != 123456 {
		t.Fatalf("explicit s0 not honoured: %v %v", plan, err)
	}
}

func TestCampaignEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign")
	}
	c := cfg()
	app, _ := apps.ByName("swim")
	plan, err := NewPlan(app, c, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	rn := &Runner{Cfg: c}
	res, err := rn.Run(app, plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.BaseRuns) != 4 {
		t.Fatalf("base runs = %d, want 4", len(res.BaseRuns))
	}
	for _, n := range plan.ProcCounts {
		if res.BaseRuns[n] == nil {
			t.Fatalf("missing base run at %d", n)
		}
		if res.SyncKernels[n] == nil {
			t.Fatalf("missing sync kernel at %d", n)
		}
	}
	if res.SpinKernel == nil {
		t.Fatal("missing spin kernel")
	}
	if len(res.UniRuns) < 3 {
		t.Fatalf("uniproc runs = %d", len(res.UniRuns))
	}

	m, err := res.Fit(model.DefaultOptions(c.L2.SizeBytes))
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	// The model's MP estimate must track the speedshop ground truth. This
	// small (8-processor) campaign has a coarse uniprocessor curve, so the
	// band is ±20% of accumulated cycles; the full 32-processor campaigns
	// behind EXPERIMENTS.md hold ±10% (the paper reports 9–14%).
	measured := res.MeasuredMP()
	for _, bp := range m.Breakdown() {
		diff := math.Abs(bp.MP()-measured[bp.Procs]) / bp.Base
		if diff > 0.20 {
			t.Errorf("n=%d: model MP %.3g vs measured %.3g (%.0f%% of base)",
				bp.Procs, bp.MP(), measured[bp.Procs], 100*diff)
		}
	}
	// L2Lim must shrink as processors are added (Swim: vanishes quickly).
	bps := m.Breakdown()
	first, last := bps[0], bps[len(bps)-1]
	if first.L2Lim() <= 0 {
		t.Error("no caching-space effect at n=1 for an L2-overflowing data set")
	}
	if last.L2Lim() > 0.25*first.L2Lim() {
		t.Errorf("L2Lim did not shrink: %g → %g", first.L2Lim(), last.L2Lim())
	}
}

func TestCampaignDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("two campaigns")
	}
	c := cfg()
	app, _ := apps.ByName("hydro2d")
	plan, err := NewPlan(app, c, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	run := func(workers int) map[int]uint64 {
		rn := &Runner{Cfg: c, Workers: workers}
		res, err := rn.Run(app, plan)
		if err != nil {
			t.Fatal(err)
		}
		out := map[int]uint64{}
		for n, r := range res.BaseRuns {
			out[n] = r.Report.TotalCycles()
		}
		return out
	}
	a, b := run(1), run(8)
	for n := range a {
		if a[n] != b[n] {
			t.Fatalf("n=%d: cycles differ across worker counts: %d vs %d", n, a[n], b[n])
		}
	}
}

func TestRunnerRejectsBadConfig(t *testing.T) {
	app, _ := apps.ByName("swim")
	plan, _ := NewPlan(app, cfg(), 2, 0)
	rn := &Runner{Cfg: machine.Config{}}
	if _, err := rn.Run(app, plan); err == nil {
		t.Fatal("invalid machine accepted")
	}
}

func TestCampaignSkipsUnbuildableSizes(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign")
	}
	c := cfg()
	app, _ := apps.ByName("spmv") // refuses tiny sizes
	plan, err := NewPlan(app, c, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Force an unbuildable fractional size into the plan.
	plan.UniSizes = append(plan.UniSizes, 256)
	rn := &Runner{Cfg: c}
	res, err := rn.Run(app, plan)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, s := range res.Skipped {
		if s == 256 {
			found = true
		}
	}
	if !found {
		t.Fatalf("skip list %v missing the unbuildable size", res.Skipped)
	}
	// The model still fits from the surviving runs.
	if _, err := res.Fit(model.DefaultOptions(c.L2.SizeBytes)); err != nil {
		t.Fatalf("fit after skips: %v", err)
	}
}

func TestFitSegmentSeparatesBottlenecks(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign")
	}
	c := cfg()
	app, _ := apps.ByName("t3dheat")
	plan, err := NewPlan(app, c, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	rn := &Runner{Cfg: c}
	res, err := rn.Run(app, plan)
	if err != nil {
		t.Fatal(err)
	}
	opts := model.DefaultOptions(c.L2.SizeBytes)

	mv, err := res.FitSegment("matvec", opts)
	if err != nil {
		t.Fatalf("matvec segment: %v", err)
	}
	pcf, err := res.FitSegment("pcf_barrier", opts)
	if err != nil {
		t.Fatalf("pcf segment: %v", err)
	}
	// The matvec segment is memory-bound: substantial L2Lim at n=1.
	mvb := mv.Breakdown()
	if mvb[0].L2Lim() < 0.2*mvb[0].Base {
		t.Errorf("matvec L2Lim at n=1 = %.0f%% of base, want memory-bound",
			100*mvb[0].L2Lim()/mvb[0].Base)
	}
	// The pure-barrier segment has essentially no caching-space effect and
	// a far larger MP share than matvec at the top count.
	pb := pcf.Breakdown()
	last := len(pb) - 1
	if pb[last].MP()/pb[last].Base < 2*mvb[last].MP()/mvb[last].Base {
		t.Errorf("barrier segment MP share %.0f%% not dominating matvec's %.0f%%",
			100*pb[last].MP()/pb[last].Base, 100*mvb[last].MP()/mvb[last].Base)
	}

	if _, err := res.FitSegment("no-such-region", opts); err == nil {
		t.Error("unknown segment accepted")
	}
}
