package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

func TestLeastSquaresExactTwoCoeff(t *testing.T) {
	// y = 3*x1 + 7*x2 exactly; two samples suffice.
	rows := [][]float64{{1, 0}, {0, 1}}
	y := []float64{3, 7}
	beta, err := LeastSquares(rows, y)
	if err != nil {
		t.Fatalf("LeastSquares: %v", err)
	}
	if !almostEq(beta[0], 3, 1e-12) || !almostEq(beta[1], 7, 1e-12) {
		t.Fatalf("beta = %v, want [3 7]", beta)
	}
}

func TestLeastSquaresOverdetermined(t *testing.T) {
	// The paper's Eq. 3 use case: cpi - cpi0 = h2*t2 + hm*tm with 4 data-set
	// sizes. Recover t2=8, tm=120 from noise-free triplets.
	t2, tm := 8.0, 120.0
	h2 := []float64{0.01, 0.02, 0.015, 0.03}
	hm := []float64{0.004, 0.006, 0.002, 0.008}
	rows := make([][]float64, len(h2))
	y := make([]float64, len(h2))
	for i := range h2 {
		rows[i] = []float64{h2[i], hm[i]}
		y[i] = h2[i]*t2 + hm[i]*tm
	}
	beta, err := LeastSquares(rows, y)
	if err != nil {
		t.Fatalf("LeastSquares: %v", err)
	}
	if !almostEq(beta[0], t2, 1e-9) || !almostEq(beta[1], tm, 1e-9) {
		t.Fatalf("beta = %v, want [%g %g]", beta, t2, tm)
	}
}

func TestLeastSquaresNoisyRecovery(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	t2, tm := 10.0, 200.0
	var rows [][]float64
	var y []float64
	for i := 0; i < 200; i++ {
		h2 := 0.005 + 0.03*rng.Float64()
		hm := 0.001 + 0.01*rng.Float64()
		noise := 0.001 * rng.NormFloat64()
		rows = append(rows, []float64{h2, hm})
		y = append(y, h2*t2+hm*tm+noise)
	}
	beta, err := LeastSquares(rows, y)
	if err != nil {
		t.Fatalf("LeastSquares: %v", err)
	}
	if math.Abs(beta[0]-t2) > 0.5 || math.Abs(beta[1]-tm) > 2 {
		t.Fatalf("noisy recovery beta = %v, want ~[%g %g]", beta, t2, tm)
	}
	if rmse := RMSE(rows, y, beta); rmse > 0.01 {
		t.Fatalf("RMSE = %g, want small", rmse)
	}
}

func TestLeastSquaresSingular(t *testing.T) {
	// All rows identical: no unique solution.
	rows := [][]float64{{1, 2}, {1, 2}, {1, 2}}
	y := []float64{1, 1, 1}
	if _, err := LeastSquares(rows, y); err == nil {
		t.Fatal("want error for singular system, got nil")
	}
}

func TestLeastSquaresInputValidation(t *testing.T) {
	cases := []struct {
		name string
		rows [][]float64
		y    []float64
	}{
		{"empty", nil, nil},
		{"mismatched y", [][]float64{{1}}, []float64{1, 2}},
		{"ragged rows", [][]float64{{1, 2}, {3}}, []float64{1, 2}},
		{"zero-width", [][]float64{{}}, []float64{1}},
		{"underdetermined", [][]float64{{1, 2}}, []float64{3}},
	}
	for _, c := range cases {
		if _, err := LeastSquares(c.rows, c.y); err == nil {
			t.Errorf("%s: want error, got nil", c.name)
		}
	}
}

func TestLeastSquaresIntercept(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{5, 7, 9, 11} // y = 3 + 2x
	a, b, err := LeastSquaresIntercept(x, y)
	if err != nil {
		t.Fatalf("LeastSquaresIntercept: %v", err)
	}
	if !almostEq(a, 3, 1e-9) || !almostEq(b, 2, 1e-9) {
		t.Fatalf("got (%g, %g), want (3, 2)", a, b)
	}
}

// Property: for any full-rank 2-coefficient linear system generated from
// random coefficients, LeastSquares recovers the coefficients on noise-free
// data.
func TestLeastSquaresRecoveryProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b0 := rng.Float64()*100 - 50
		b1 := rng.Float64()*100 - 50
		rows := make([][]float64, 6)
		y := make([]float64, 6)
		for i := range rows {
			x0 := rng.Float64()*10 + 0.1
			x1 := rng.Float64()*10 + 0.1
			rows[i] = []float64{x0, x1}
			y[i] = b0*x0 + b1*x1
		}
		beta, err := LeastSquares(rows, y)
		if err != nil {
			// Random rows are full rank with probability 1; treat a singular
			// draw as a pass rather than flake.
			return true
		}
		return almostEq(beta[0], b0, 1e-6) && almostEq(beta[1], b1, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: residuals of the fitted solution are orthogonal to each
// regressor column (the defining normal-equation property).
func TestLeastSquaresResidualOrthogonality(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 8
		rows := make([][]float64, n)
		y := make([]float64, n)
		for i := range rows {
			rows[i] = []float64{rng.Float64() + 0.1, rng.Float64() + 0.1}
			y[i] = rng.Float64() * 10
		}
		beta, err := LeastSquares(rows, y)
		if err != nil {
			return true
		}
		res := Residuals(rows, y, beta)
		for j := 0; j < 2; j++ {
			dot := 0.0
			for i := range rows {
				dot += rows[i][j] * res[i]
			}
			if math.Abs(dot) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSolveLinearPivoting(t *testing.T) {
	// Leading zero forces a pivot swap.
	a := [][]float64{{0, 1}, {1, 0}}
	b := []float64{2, 3}
	x, err := solveLinear(a, b)
	if err != nil {
		t.Fatalf("solveLinear: %v", err)
	}
	if !almostEq(x[0], 3, 1e-12) || !almostEq(x[1], 2, 1e-12) {
		t.Fatalf("x = %v, want [3 2]", x)
	}
}
