package stats

import (
	"errors"
	"sort"

	"scaltool/internal/assert"
)

// ErrEmpty is returned by interpolation over an empty sample set.
var ErrEmpty = errors.New("stats: empty sample set")

// Point is one (x, y) sample of a sampled function, e.g. the uniprocessor L2
// hit rate as a function of data-set size.
type Point struct {
	X, Y float64
}

// Interpolator evaluates a piecewise-linear function through a set of
// sample points. The paper needs this when the application cannot be run at
// exactly the s0/n fractional data-set size: "we interpolate between the
// results of two acceptable data set sizes" (§2.4.1).
type Interpolator struct {
	pts []Point // sorted by X ascending, unique X
}

// NewInterpolator builds an interpolator from samples. Samples are copied,
// sorted by X, and duplicate X values are averaged. At least one sample is
// required.
func NewInterpolator(samples []Point) (*Interpolator, error) {
	if len(samples) == 0 {
		return nil, ErrEmpty
	}
	pts := make([]Point, len(samples))
	copy(pts, samples)
	sort.Slice(pts, func(i, j int) bool { return pts[i].X < pts[j].X })
	// Merge duplicate X by averaging Y.
	out := pts[:1]
	count := 1.0
	for _, p := range pts[1:] {
		last := &out[len(out)-1]
		if p.X == last.X { //scalvet:ignore deliberate exact-duplicate merge; near-equal X values must stay distinct samples
			count++
			last.Y += (p.Y - last.Y) / count
			continue
		}
		count = 1
		out = append(out, p)
	}
	return &Interpolator{pts: out}, nil
}

// At evaluates the function at x. Outside the sampled range the nearest
// endpoint value is returned (clamped, not extrapolated): hit rates and CPIs
// are physical quantities where linear extrapolation can escape valid
// bounds.
func (in *Interpolator) At(x float64) float64 {
	pts := in.pts
	if x <= pts[0].X {
		return pts[0].Y
	}
	if x >= pts[len(pts)-1].X {
		return pts[len(pts)-1].Y
	}
	// Find the first point with X >= x.
	i := sort.Search(len(pts), func(i int) bool { return pts[i].X >= x })
	lo, hi := pts[i-1], pts[i]
	t := (x - lo.X) / (hi.X - lo.X)
	return lo.Y + t*(hi.Y-lo.Y)
}

// Min returns the sample with the smallest X.
func (in *Interpolator) Min() Point { return in.pts[0] }

// Max returns the sample with the largest X.
func (in *Interpolator) Max() Point { return in.pts[len(in.pts)-1] }

// Points returns a copy of the (sorted, deduplicated) sample points.
func (in *Interpolator) Points() []Point {
	out := make([]Point, len(in.pts))
	copy(out, in.pts)
	return out
}

// ArgMaxY returns the sample point with the largest Y value. Ties are
// resolved toward the smallest X. The paper uses this to locate s_max, the
// data-set size at which only the compulsory miss rate remains (Fig. 3a).
func (in *Interpolator) ArgMaxY() Point {
	best := in.pts[0]
	for _, p := range in.pts[1:] {
		if p.Y > best.Y {
			best = p
		}
	}
	return best
}

// Mean returns the arithmetic mean of xs.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	sum := 0.0
	for _, v := range xs {
		sum += v
	}
	return sum / float64(len(xs)), nil
}

// Clamp restricts v to [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if lo > hi {
		// Clamp sits on model hot loops; Failf keeps the variadic
		// allocation off the success path.
		assert.Failf("stats: Clamp bounds inverted: lo=%g hi=%g", lo, hi)
	}
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
