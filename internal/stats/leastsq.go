// Package stats provides the small numerical kernels Scal-Tool's empirical
// model needs: linear least squares (for estimating the per-miss penalties
// t2 and tm from measured CPI triplets, paper Eq. 3), piecewise-linear
// interpolation (for the s0/n data-set slicing rule, paper §2.4.1), and a
// handful of summary helpers.
//
// Everything is implemented from scratch on float64 slices; no external
// dependencies. Matrices are tiny (the model never fits more than three
// coefficients), so numerically simple normal equations with partial
// pivoting are sufficient and deterministic.
package stats

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a least-squares system has no unique
// solution, e.g. when all sample points are identical or there are fewer
// independent samples than coefficients.
var ErrSingular = errors.New("stats: singular system (insufficient independent samples)")

// LeastSquares solves min ||X*beta - y||^2 for beta.
//
// X is given row-major: rows[i] holds the regressor values for sample i.
// Every row must have the same length p (the number of coefficients), and
// there must be at least p samples. The paper's use is Eq. 3: each data-set
// size s_i contributes one row [h2_i, hm_i] with y_i = cpi_i - cpi0, and the
// solution is [t2, tm].
func LeastSquares(rows [][]float64, y []float64) ([]float64, error) {
	n := len(rows)
	if n == 0 {
		return nil, fmt.Errorf("stats: no samples: %w", ErrSingular)
	}
	if len(y) != n {
		return nil, fmt.Errorf("stats: %d rows but %d responses", n, len(y))
	}
	p := len(rows[0])
	if p == 0 {
		return nil, errors.New("stats: zero-width rows")
	}
	for i, r := range rows {
		if len(r) != p {
			return nil, fmt.Errorf("stats: row %d has %d values, want %d", i, len(r), p)
		}
	}
	if n < p {
		return nil, fmt.Errorf("stats: %d samples for %d coefficients: %w", n, p, ErrSingular)
	}

	// Normal equations: (X^T X) beta = X^T y.
	xtx := make([][]float64, p)
	for i := range xtx {
		xtx[i] = make([]float64, p)
	}
	xty := make([]float64, p)
	for k := 0; k < n; k++ {
		r := rows[k]
		for i := 0; i < p; i++ {
			xty[i] += r[i] * y[k]
			for j := i; j < p; j++ {
				xtx[i][j] += r[i] * r[j]
			}
		}
	}
	for i := 1; i < p; i++ {
		for j := 0; j < i; j++ {
			xtx[i][j] = xtx[j][i]
		}
	}
	beta, err := solveLinear(xtx, xty)
	if err != nil {
		return nil, err
	}
	return beta, nil
}

// LeastSquaresIntercept fits y = a + b*x and returns (a, b).
func LeastSquaresIntercept(x, y []float64) (a, b float64, err error) {
	rows := make([][]float64, len(x))
	for i, v := range x {
		rows[i] = []float64{1, v}
	}
	beta, err := LeastSquares(rows, y)
	if err != nil {
		return 0, 0, err
	}
	return beta[0], beta[1], nil
}

// Residuals returns y - X*beta, useful for reporting fit quality.
func Residuals(rows [][]float64, y, beta []float64) []float64 {
	res := make([]float64, len(rows))
	for i, r := range rows {
		pred := 0.0
		for j, v := range r {
			pred += v * beta[j]
		}
		res[i] = y[i] - pred
	}
	return res
}

// RMSE returns the root-mean-square of the residuals of the fit.
func RMSE(rows [][]float64, y, beta []float64) float64 {
	res := Residuals(rows, y, beta)
	sum := 0.0
	for _, r := range res {
		sum += r * r
	}
	return math.Sqrt(sum / float64(len(res)))
}

// solveLinear solves the square system A*x = b by Gaussian elimination with
// partial pivoting. A and b are modified in place.
func solveLinear(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	for col := 0; col < n; col++ {
		// Pivot: largest |a[row][col]| among remaining rows.
		pivot := col
		best := math.Abs(a[col][col])
		for r := col + 1; r < n; r++ {
			if v := math.Abs(a[r][col]); v > best {
				best, pivot = v, r
			}
		}
		if !(best > 0) { // catches 0 and NaN without an exact == test
			return nil, ErrSingular
		}
		a[col], a[pivot] = a[pivot], a[col]
		b[col], b[pivot] = b[pivot], b[col]
		inv := 1 / a[col][col]
		for r := col + 1; r < n; r++ {
			f := a[r][col] * inv
			if f == 0 { //scalvet:ignore skipping an exactly-zero multiplier is a pure optimization; any nonzero f must eliminate
				continue
			}
			for c := col; c < n; c++ {
				a[r][c] -= f * a[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	x := make([]float64, n)
	for row := n - 1; row >= 0; row-- {
		sum := b[row]
		for c := row + 1; c < n; c++ {
			sum -= a[row][c] * x[c]
		}
		x[row] = sum / a[row][row]
	}
	return x, nil
}
