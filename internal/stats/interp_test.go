package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestInterpolatorBasics(t *testing.T) {
	in, err := NewInterpolator([]Point{{X: 0, Y: 0}, {X: 10, Y: 100}})
	if err != nil {
		t.Fatalf("NewInterpolator: %v", err)
	}
	if got := in.At(5); got != 50 {
		t.Fatalf("At(5) = %g, want 50", got)
	}
	if got := in.At(0); got != 0 {
		t.Fatalf("At(0) = %g, want 0", got)
	}
	if got := in.At(10); got != 100 {
		t.Fatalf("At(10) = %g, want 100", got)
	}
}

func TestInterpolatorClampsOutsideRange(t *testing.T) {
	in, _ := NewInterpolator([]Point{{X: 1, Y: 10}, {X: 2, Y: 20}})
	if got := in.At(0); got != 10 {
		t.Fatalf("At(0) = %g, want clamp to 10", got)
	}
	if got := in.At(3); got != 20 {
		t.Fatalf("At(3) = %g, want clamp to 20", got)
	}
}

func TestInterpolatorSinglePoint(t *testing.T) {
	in, _ := NewInterpolator([]Point{{X: 4, Y: 7}})
	for _, x := range []float64{-1, 4, 100} {
		if got := in.At(x); got != 7 {
			t.Fatalf("At(%g) = %g, want 7", x, got)
		}
	}
}

func TestInterpolatorUnsortedAndDuplicates(t *testing.T) {
	in, err := NewInterpolator([]Point{{X: 2, Y: 20}, {X: 1, Y: 8}, {X: 1, Y: 12}})
	if err != nil {
		t.Fatalf("NewInterpolator: %v", err)
	}
	// Duplicate X=1 averaged to Y=10.
	if got := in.At(1); got != 10 {
		t.Fatalf("At(1) = %g, want average 10", got)
	}
	if got := in.At(1.5); got != 15 {
		t.Fatalf("At(1.5) = %g, want 15", got)
	}
	if pts := in.Points(); len(pts) != 2 {
		t.Fatalf("Points() = %v, want 2 deduplicated points", pts)
	}
}

func TestInterpolatorEmpty(t *testing.T) {
	if _, err := NewInterpolator(nil); err == nil {
		t.Fatal("want error for empty sample set")
	}
}

func TestArgMaxY(t *testing.T) {
	in, _ := NewInterpolator([]Point{{X: 1, Y: 0.8}, {X: 2, Y: 0.95}, {X: 3, Y: 0.9}})
	if got := in.ArgMaxY(); got.X != 2 || got.Y != 0.95 {
		t.Fatalf("ArgMaxY = %+v, want {2 0.95}", got)
	}
}

func TestArgMaxYTieBreaksTowardSmallX(t *testing.T) {
	in, _ := NewInterpolator([]Point{{X: 1, Y: 0.9}, {X: 2, Y: 0.9}})
	if got := in.ArgMaxY(); got.X != 1 {
		t.Fatalf("ArgMaxY tie = %+v, want X=1", got)
	}
}

// Property: interpolated values never escape [minY, maxY] of the samples.
func TestInterpolatorBoundedProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		pts := make([]Point, n)
		minY, maxY := math.Inf(1), math.Inf(-1)
		for i := range pts {
			pts[i] = Point{X: rng.Float64() * 100, Y: rng.Float64()}
			minY = math.Min(minY, pts[i].Y)
			maxY = math.Max(maxY, pts[i].Y)
		}
		in, err := NewInterpolator(pts)
		if err != nil {
			return false
		}
		for i := 0; i < 50; i++ {
			x := rng.Float64()*140 - 20
			y := in.At(x)
			if y < minY-1e-12 || y > maxY+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: At reproduces every sample point exactly (after dedup-averaging,
// when all X are distinct).
func TestInterpolatorPassesThroughSamples(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(10)
		xs := rng.Perm(1000)[:n] // distinct integers → distinct X
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Point{X: float64(xs[i]), Y: rng.Float64() * 10}
		}
		in, err := NewInterpolator(pts)
		if err != nil {
			return false
		}
		sort.Slice(pts, func(i, j int) bool { return pts[i].X < pts[j].X })
		for _, p := range pts {
			if math.Abs(in.At(p.X)-p.Y) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMean(t *testing.T) {
	if _, err := Mean(nil); err == nil {
		t.Fatal("Mean(nil) should error")
	}
	m, err := Mean([]float64{1, 2, 3, 4})
	if err != nil || m != 2.5 {
		t.Fatalf("Mean = %g, %v; want 2.5", m, err)
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 3) != 3 || Clamp(-1, 0, 3) != 0 || Clamp(2, 0, 3) != 2 {
		t.Fatal("Clamp misbehaves")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Clamp with inverted bounds should panic")
		}
	}()
	Clamp(0, 3, 1)
}
