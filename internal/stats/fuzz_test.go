package stats

import (
	"math"
	"testing"
)

// FuzzInterpolator checks the interpolator never panics, never returns NaN
// for finite inputs, and stays within the sampled Y range.
func FuzzInterpolator(f *testing.F) {
	f.Add(1.0, 2.0, 3.0, 4.0, 2.5)
	f.Add(0.0, 0.0, 0.0, 0.0, 0.0)
	f.Add(-5.0, 10.0, 5.0, -10.0, 100.0)
	f.Fuzz(func(t *testing.T, x1, y1, x2, y2, q float64) {
		for _, v := range []float64{x1, y1, x2, y2, q} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return
			}
		}
		in, err := NewInterpolator([]Point{{X: x1, Y: y1}, {X: x2, Y: y2}})
		if err != nil {
			t.Fatalf("two points rejected: %v", err)
		}
		got := in.At(q)
		if math.IsNaN(got) {
			t.Fatalf("NaN for finite inputs: At(%g) with (%g,%g),(%g,%g)", q, x1, y1, x2, y2)
		}
		lo, hi := math.Min(y1, y2), math.Max(y1, y2)
		if got < lo-1e-9*(1+math.Abs(lo)) || got > hi+1e-9*(1+math.Abs(hi)) {
			t.Fatalf("At(%g) = %g escapes [%g, %g]", q, got, lo, hi)
		}
	})
}

// FuzzLeastSquares2 checks the 2-coefficient solver never panics and that
// any solution it returns has residuals orthogonal to the regressors.
func FuzzLeastSquares2(f *testing.F) {
	f.Add(1.0, 0.0, 3.0, 0.0, 1.0, 7.0, 0.5, 0.5, 5.0)
	f.Fuzz(func(t *testing.T, a1, b1, y1, a2, b2, y2, a3, b3, y3 float64) {
		for _, v := range []float64{a1, b1, y1, a2, b2, y2, a3, b3, y3} {
			if math.IsNaN(v) || math.Abs(v) > 1e12 {
				return
			}
		}
		rows := [][]float64{{a1, b1}, {a2, b2}, {a3, b3}}
		y := []float64{y1, y2, y3}
		beta, err := LeastSquares(rows, y)
		if err != nil {
			return
		}
		for _, b := range beta {
			if math.IsNaN(b) {
				t.Fatal("NaN coefficient accepted")
			}
		}
	})
}
