package sim

// The stepping core: one lane simulates one processor's stream for one
// region. Lanes are the unit the bounded worker pool schedules; each lane
// only reads the immutable region inputs (directory snapshot, page homes,
// topology) and mutates its own processor's hierarchy, TLB and scratch, so
// any lane-to-worker assignment produces identical bytes.
//
// The lane also threads the run's heartbeat through the per-access loop at
// a bounded simulated-access interval, so a single enormous region can no
// longer starve the campaign supervisor's watchdog into killing a healthy
// worker (the beat used to fire only at region boundaries).

import (
	"slices"

	"scaltool/internal/assert"
	"scaltool/internal/cache"
	"scaltool/internal/directory"
	"scaltool/internal/machine"
	"scaltool/internal/memdsm"
	"scaltool/internal/network"
)

// heartbeatAccessInterval is how many simulated accesses a lane executes
// between heartbeats. At the simulator's per-access cost (tens of
// nanoseconds) this beats every few milliseconds of wall time inside even a
// single unbounded region — far inside any sane watchdog deadline, far too
// seldom to measure.
const heartbeatAccessInterval = 1 << 16

// procOut is the result of simulating one processor's stream for a region.
type procOut struct {
	work float64 // busy cycles (compute + memory stalls + own critical sections + upgrade transactions)
	cs   float64 // cycles spent inside critical sections (subset of work, used for serialization)

	instr, loads, stores        uint64
	l1miss, l2miss, storeShared uint64
	tlbMiss                     uint64
	locks                       uint64
	readFills, writes           []uint64 // sorted distinct L2 lines (aliases the lane's buffers)
}

// lane is the per-processor stepping state, reused region after region and
// (through the run arena) run after run.
type lane struct {
	e *engine
	p int

	// Hot state, flattened off the engine in bind: the per-access loop runs
	// hundreds of millions of times per campaign, so it must not re-chase
	// e.st.tlbs[l.p]-style pointer chains or re-load config fields on every
	// access.
	hier *cache.Hierarchy
	tlb  *memdsm.TLB
	mem  *memdsm.Memory
	net  *network.Topology
	dir  *directory.Directory

	pageShift uint
	l1Shift   uint
	l2Shift   uint

	costCompute float64 // ComputeCPI
	costL1      float64 // L1HitCPI
	costL2      float64 // L1HitCPI + L2Hit (one add, precomputed — float addition is deterministic, so the sum is bit-identical to computing it per access)
	costTLBMiss float64 // TLBMiss
	latDir      int     // Lat.Directory
	latDirtyFwd int     // Lat.DirtyFwd
	latMemLocal int     // Lat.MemLocal
	msi         bool    // Protocol == machine.MSI
	coh         bool    // Procs > 1: coherence is possible, track read/write sets

	out procOut

	// Line-set buffers: every candidate line is appended, then the region's
	// distinct sorted set is produced by one sort+compact. Capacity persists
	// across regions and runs.
	readBuf, writeBuf []uint64

	fill    cache.FillFunc // bound to (*lane).fillMiss once, in bind
	missLat float64        // set by fillMiss for the in-flight miss

	sinceBeat int // accesses since the last heartbeat
}

// bind prepares the lane for a run of engine e as processor p.
func (l *lane) bind(e *engine, p int) {
	l.e = e
	l.p = p
	l.hier = e.st.hiers[p]
	l.tlb = e.st.tlbs[p]
	l.mem = e.st.mem
	l.net = e.st.net
	l.dir = e.st.dir
	l.pageShift = e.pageShift
	l.l1Shift = l.hier.L1Shift()
	l.l2Shift = e.l2Shift
	cfg := &e.cfg
	l.costCompute = cfg.Cost.ComputeCPI
	l.costL1 = cfg.Cost.L1HitCPI
	l.costL2 = cfg.Cost.L1HitCPI + float64(cfg.Lat.L2Hit)
	l.costTLBMiss = float64(cfg.Lat.TLBMiss)
	l.latDir = cfg.Lat.Directory
	l.latDirtyFwd = cfg.Lat.DirtyFwd
	l.latMemLocal = cfg.Lat.MemLocal
	l.msi = cfg.Protocol == machine.MSI
	l.coh = e.prog.Procs > 1
	if l.fill == nil {
		l.fill = l.fillMiss
	}
	l.sinceBeat = 0
}

// beginRegion clears the per-region outputs, keeping buffer capacity.
func (l *lane) beginRegion() {
	l.readBuf = l.readBuf[:0]
	l.writeBuf = l.writeBuf[:0]
	l.out = procOut{}
}

// fillMiss resolves an L2 miss against the immutable directory snapshot:
// it computes the miss latency (2-hop home service or 3-hop dirty forward)
// and returns the state the line is granted in.
func (l *lane) fillMiss(line uint64, write bool) cache.State {
	addr := line << l.l2Shift
	home := l.mem.Home(addr)
	if home < 0 {
		assert.Failf("sim: unhomed page for line %#x (pre-pass bug)", line)
	}
	if !l.coh {
		// Uniprocessor: no remote copy can exist, so the probe's answer is
		// known — uncached or self-owned, never a dirty remote — and the
		// directory (which a uniprocessor run leaves empty) is skipped.
		l.missLat = float64(l.net.RoundTripCycles(l.p, home) + l.latDir + l.latMemLocal)
		if write {
			return cache.Modified
		}
		if l.msi {
			return cache.Shared
		}
		return cache.Exclusive
	}
	info := l.dir.Probe(line)
	if info.Cached && info.Dirty && info.Owner != l.p {
		// 3-hop: requester→home, directory, home→owner forward,
		// owner's cache intervention, owner→requester data.
		l.missLat = float64(l.net.OneWayCycles(l.p, home) + l.latDir +
			l.net.OneWayCycles(home, info.Owner) + l.latDirtyFwd +
			l.net.OneWayCycles(info.Owner, l.p))
	} else {
		l.missLat = float64(l.net.RoundTripCycles(l.p, home) + l.latDir + l.latMemLocal)
	}
	if write {
		return cache.Modified
	}
	if l.msi {
		return cache.Shared // no Exclusive state: every read fill is S
	}
	if !info.Cached || info.Sharers == 0 || (info.Owner == l.p && info.Sharers <= 1) {
		return cache.Exclusive
	}
	return cache.Shared
}

// access runs one load or store through the lane's TLB and hierarchy,
// charging its cycles and recording coherence-buffer candidates.
func (l *lane) access(addr uint64, write bool, lastWriteLine *uint64) {
	o := &l.out
	// Memo fast path: a repeat access to the previous L1 line is a pure L1
	// hit (and, being the same line, provably the same page — the TLB's
	// last-slot memo is guaranteed to match, so the TLB lookup collapses to
	// its clock/stamp side effects). Both calls inline; the whole path is a
	// handful of compares and adds, no cache or TLB machinery.
	if l.hier.MemoHit(addr, write) {
		l.tlb.Tick()
		o.instr++
		o.work += l.costL1
		if write {
			o.stores++
			if l.coh {
				if l2 := addr >> l.l2Shift; l2 != *lastWriteLine {
					l.writeBuf = append(l.writeBuf, l2)
					*lastWriteLine = l2
				}
			}
		} else {
			o.loads++
		}
		l.beatTick()
		return
	}
	if page := addr >> l.pageShift; !l.tlb.HitLast(page) && !l.tlb.Access(page) {
		o.work += l.costTLBMiss
		o.tlbMiss++
	}
	out := l.hier.Access(addr, write, l.fill)
	o.instr++
	if write {
		o.stores++
	} else {
		o.loads++
	}
	switch out.Level {
	case cache.HitL1:
		o.work += l.costL1
	case cache.HitL2:
		o.work += l.costL2
		o.l1miss++
	case cache.MissAll:
		o.work += l.costL2 + l.missLat
		o.l1miss++
		o.l2miss++
		if !write && l.coh {
			l.readBuf = append(l.readBuf, out.L2Line)
		}
	}
	if out.StoreToShared {
		o.storeShared++
	}
	if out.UpgradeFromShared {
		// Ownership upgrade: round trip to the directory at the home.
		home := l.mem.Home(addr)
		o.work += float64(l.net.RoundTripCycles(l.p, home) + l.latDir)
	}
	if write && l.coh && out.L2Line != *lastWriteLine {
		l.writeBuf = append(l.writeBuf, out.L2Line)
		*lastWriteLine = out.L2Line
	}
	l.beatTick()
}

// beatTick advances the lane's heartbeat counter, firing the run's heartbeat
// every heartbeatAccessInterval simulated accesses.
func (l *lane) beatTick() {
	if l.sinceBeat++; l.sinceBeat >= heartbeatAccessInterval {
		l.sinceBeat = 0
		if l.e.beat != nil {
			l.e.beat()
		}
	}
}

// beatAdd advances the heartbeat counter by k accesses at once, firing once
// per heartbeatAccessInterval crossed — the same fire count and residual
// counter that k beatTick calls would produce.
func (l *lane) beatAdd(k uint64) {
	l.sinceBeat += int(k)
	for l.sinceBeat >= heartbeatAccessInterval {
		l.sinceBeat -= heartbeatAccessInterval
		if l.e.beat != nil {
			l.e.beat()
		}
	}
}

// run simulates the lane's stream for the current region. Safe to run
// concurrently across lanes: it only reads the directory snapshot, page
// homes and topology, and mutates the lane's own processor state.
func (l *lane) run(s *Stream) {
	l.beginRegion()
	if s.Empty() {
		return
	}
	e := l.e
	cfg := &e.cfg
	o := &l.out
	lastWriteLine := uint64(1<<64 - 1)

	for _, op := range s.Ops {
		switch op.Kind {
		case OpCompute:
			o.instr += op.Instr
			o.work += float64(op.Instr) * l.costCompute
		case OpSeq:
			// Strided runs are batched at L1-line granularity: the first
			// access of each line runs the full access path (establishing the
			// hierarchy's memo on that line — for a write, in state Modified),
			// after which every further access of the op that provably lands
			// on the same line is a guaranteed memo hit: same page (TLB memo
			// holds), no state change, no coherence-buffer entry (the L2 line
			// is already the last one written). Those follow-ups collapse to
			// the exact per-access float adds — order preserved, so the work
			// total is bit-identical — plus one batched update of each
			// integer counter.
			addr := int64(op.Base)
			lineMask := int64(1)<<l.l1Shift - 1
			for i := uint64(0); i < op.Count; {
				run := uint64(1)
				switch {
				case op.Stride > 0:
					run += uint64((lineMask - addr&lineMask) / op.Stride)
				case op.Stride < 0:
					run += uint64((addr & lineMask) / -op.Stride)
				default:
					run = op.Count - i
				}
				if rem := op.Count - i; run > rem {
					run = rem
				}
				if op.InstrPer > 0 {
					o.instr += op.InstrPer
					o.work += float64(op.InstrPer) * l.costCompute
				}
				l.access(uint64(addr), op.Write, &lastWriteLine)
				if k := run - 1; k > 0 {
					if op.InstrPer > 0 {
						c := float64(op.InstrPer) * l.costCompute
						for j := uint64(0); j < k; j++ {
							o.work += c
							o.work += l.costL1
						}
						o.instr += k * op.InstrPer
					} else {
						for j := uint64(0); j < k; j++ {
							o.work += l.costL1
						}
					}
					o.instr += k
					if op.Write {
						o.stores += k
					} else {
						o.loads += k
					}
					l.hier.AddAccesses(k)
					l.tlb.TickN(k)
					l.beatAdd(k)
				}
				addr += op.Stride * int64(run)
				i += run
			}
		case OpGather:
			for _, a := range op.Addrs {
				if op.InstrPer > 0 {
					o.instr += op.InstrPer
					o.work += float64(op.InstrPer) * l.costCompute
				}
				l.access(a, op.Write, &lastWriteLine)
			}
		case OpCritical:
			lockHome := l.mem.Home(e.prog.LockAddr())
			cs := float64(cfg.Sync.LockInstr)*l.costCompute +
				float64(op.Instr)*l.costCompute +
				float64(l.net.RoundTripCycles(l.p, lockHome)+cfg.Lat.SyncAcquire)
			o.instr += uint64(cfg.Sync.LockInstr) + op.Instr
			o.stores++ // the lock fetchop
			if e.prog.Procs > 1 {
				o.storeShared++
			}
			o.work += cs
			o.cs += cs
			o.locks++
		}
	}

	if l.coh {
		o.readFills = sortedDistinct(l.readBuf)
		o.writes = sortedDistinct(l.writeBuf)
	}
}

// sortedDistinct sorts buf in place and compacts duplicates, returning the
// distinct prefix (nil when empty). The result aliases buf and is valid
// until the next beginRegion.
func sortedDistinct(buf []uint64) []uint64 {
	if len(buf) == 0 {
		return nil
	}
	slices.Sort(buf)
	return slices.Compact(buf)
}
