package sim

// Race-exercising tests for the engine's per-region goroutine fan-out
// (runRegion phase 1). Run with -race: concurrent engines must not share
// state, and the fan-out inside one engine must stay deterministic.

import (
	"reflect"
	"sync"
	"testing"
)

// TestConcurrentRunsIndependent runs many simulations at once; the race
// detector flags any state accidentally shared between engines, and every
// run of the same program must agree bit-for-bit.
func TestConcurrentRunsIndependent(t *testing.T) {
	p := buildSweep(t, 4, 1<<16, 3, true)
	want := run(t, p)

	const concurrent = 8
	results := make([]*Result, concurrent)
	var wg sync.WaitGroup
	for i := 0; i < concurrent; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := Run(cfg(), p)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = res
		}(i)
	}
	wg.Wait()
	for i, res := range results {
		if res == nil {
			continue // Run error already reported
		}
		if !reflect.DeepEqual(res.Report, want.Report) {
			t.Errorf("concurrent run %d: report differs from sequential run", i)
		}
		if !reflect.DeepEqual(res.Ground, want.Ground) {
			t.Errorf("concurrent run %d: ground truth differs from sequential run", i)
		}
	}
}

// TestFanOutDeterministic repeats one multi-processor, multi-region run;
// the per-processor goroutines must produce identical attribution no
// matter how the scheduler interleaves them.
func TestFanOutDeterministic(t *testing.T) {
	p := buildSweep(t, 8, 1<<17, 4, true)
	want := run(t, p)
	for i := 0; i < 5; i++ {
		got := run(t, p)
		if !reflect.DeepEqual(got.Report, want.Report) {
			t.Fatalf("iteration %d: counter report differs", i)
		}
		if !reflect.DeepEqual(got.Ground, want.Ground) {
			t.Fatalf("iteration %d: ground truth differs", i)
		}
	}
}
