package sim

import (
	"fmt"

	"scaltool/internal/obs"
)

// AppendTimeline exports the run's per-processor region attribution as a
// simulated-time trace_event timeline on its own trace process: one thread
// per processor, one slice per (region, phase). Timestamps are simulated
// cycles rendered as microseconds (1 cycle = 1 µs), so the cycle axis never
// mixes with the tracer's wall-clock span axis (which lives on TracePID).
//
// Within a region each processor's lane shows busy, then imbalance (spinning
// for the last arriver), then synchronization (barrier drain, plus any lock
// waits folded into the sync total). Because Busy+Sync+Imb spans the
// region's elapsed cycles exactly for every processor, the slices tile the
// timeline with no gaps. Label names the process ("sim <label>") so several
// runs can share one trace file.
func AppendTimeline(tr *obs.Tracer, res *Result, label string) {
	if tr == nil || res == nil {
		return
	}
	pid := tr.NewProcess("sim " + label)
	for p := 0; p < res.Procs; p++ {
		tr.NameThread(pid, int64(p), fmt.Sprintf("cpu %d", p))
	}
	var cum float64 // region start, in cycles from the run's start
	for _, reg := range res.Ground.Regions {
		if len(reg.PerProc) == 0 {
			continue // aggregated attribution carries no per-proc split
		}
		args := map[string]any{"region": reg.Name}
		var elapsed float64
		for p, ph := range reg.PerProc {
			tid := int64(p)
			ts := cum
			emit := func(name string, dur float64) {
				if dur > 0 {
					tr.Emit(pid, tid, "sim", name, ts, dur, args)
				}
				ts += dur
			}
			emit("busy", ph.Busy)
			emit("imb", ph.Imb)
			emit("sync", ph.Sync)
			if total := ph.Busy + ph.Sync + ph.Imb; total > elapsed {
				elapsed = total
			}
		}
		cum += elapsed
	}
}
