package sim

import (
	"strconv"

	"scaltool/internal/obs"
)

// AppendTimeline exports the run's per-processor region attribution as a
// simulated-time trace_event timeline on its own trace process: one thread
// per processor, one slice per (region, phase). Timestamps are simulated
// cycles rendered as microseconds (1 cycle = 1 µs), so the cycle axis never
// mixes with the tracer's wall-clock span axis (which lives on TracePID).
//
// Within a region each processor's lane shows busy, then imbalance (spinning
// for the last arriver), then synchronization (barrier drain, plus any lock
// waits folded into the sync total). Because Busy+Sync+Imb spans the
// region's elapsed cycles exactly for every processor, the slices tile the
// timeline with no gaps. Label names the process ("sim <label>") so several
// runs can share one trace file.
func AppendTimeline(tr *obs.Tracer, res *Result, label string) {
	if tr == nil || res == nil {
		return
	}
	pid := tr.NewProcess("sim " + label)
	for p := 0; p < res.Procs; p++ {
		tr.NameThread(pid, int64(p), "cpu "+strconv.Itoa(p))
	}
	var cum float64 // region start, in cycles from the run's start
	for _, reg := range res.Ground.Regions {
		if len(reg.PerProc) == 0 {
			continue // aggregated attribution carries no per-proc split
		}
		args := map[string]any{"region": reg.Name} //scalvet:ignore the tracer retains args per event; one map per region, shared by every lane, is the amortized shape

		// The engine guarantees Busy+Sync+Imb == the region's elapsed cycles
		// for every processor, but attribution that traveled through files,
		// perturbation, or repair may not honor that. Enforce the tiling
		// invariant here instead of assuming it: a lane's emitted length is
		// the sum of its non-negative phases (a negative phase is dropped,
		// never allowed to rewind the lane and overlap an earlier slice),
		// the region's elapsed is the longest lane, and every shorter lane
		// is padded with an explicit "untracked" slice. No lane can then
		// spill into — or start inside — the next region's time range.
		laneLen := func(ph ProcPhases) float64 {
			var l float64
			for _, d := range [...]float64{ph.Busy, ph.Imb, ph.Sync} {
				if d > 0 {
					l += d
				}
			}
			return l
		}
		var elapsed float64
		for _, ph := range reg.PerProc {
			if l := laneLen(ph); l > elapsed {
				elapsed = l
			}
		}
		for p, ph := range reg.PerProc {
			tid := int64(p)
			ts := cum
			emit := func(name string, dur float64) {
				if dur <= 0 {
					return
				}
				tr.Emit(pid, tid, "sim", name, ts, dur, args)
				ts += dur
			}
			emit("busy", ph.Busy)
			emit("imb", ph.Imb)
			emit("sync", ph.Sync)
			// Pad the short lane up to the region boundary (tolerating
			// float accumulation fuzz) so the slices tile exactly.
			if pad := cum + elapsed - ts; pad > tileEps*elapsed {
				tr.Emit(pid, tid, "sim", "untracked", ts, pad, args)
			}
		}
		cum += elapsed
	}
}

// tileEps is the relative slack below which a lane's shortfall against the
// region's elapsed cycles is treated as floating-point fuzz, not a gap worth
// an "untracked" pad slice.
const tileEps = 1e-9
