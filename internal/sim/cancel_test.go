package sim

import (
	"context"
	"errors"
	"testing"

	"scaltool/internal/machine"
)

// cancelProg builds a small multi-region program whose every region does
// real work on every processor, so a bailed stream is visible in the
// counters.
func cancelProg(t *testing.T, cfg machine.Config, procs, regions int) *Program {
	t.Helper()
	prog, err := NewProgram("cancel", procs, 1<<14, cfg.PageBytes)
	if err != nil {
		t.Fatal(err)
	}
	arr := prog.MustAlloc("a", 1<<14)
	for r := 0; r < regions; r++ {
		reg := prog.AddRegion("work")
		for p := 0; p < procs; p++ {
			st := reg.Proc(p)
			st.Compute(500)
			st.Read(arr.Base+uint64(p)*2048, 64, 32, 1)
		}
	}
	return prog
}

// TestRunContextCancelInsideFinalRegion is the regression test for the
// cancellation-corruption bug: a context canceled after the last
// region-boundary check — i.e. inside the final region's parallel phase —
// used to let the worker goroutines bail with zero-value procOuts while
// RunContext still assembled and returned a normal-looking Result from the
// incomplete streams. It must return (nil, ctx.Err()-wrapping error).
func TestRunContextCancelInsideFinalRegion(t *testing.T) {
	cfg := machine.TinyTest()
	const regions = 3
	prog := cancelProg(t, cfg, 4, regions)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// The heartbeat fires at the top of every region, before its streams
	// run and after RunContext's boundary ctx.Err() check — so canceling on
	// the final beat lands the cancellation inside the final region.
	beats := 0
	ctx = WithHeartbeat(ctx, func() {
		beats++
		if beats == regions {
			cancel()
		}
	})
	res, err := RunContext(ctx, cfg, prog)
	if err == nil {
		t.Fatalf("canceled run returned a Result (wall=%v) instead of an error", res.WallCycles)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled in the chain", err)
	}
	if res != nil {
		t.Fatalf("canceled run returned non-nil *Result alongside the error")
	}
}

// TestRunContextCancelChaos cancels a run at every region boundary in turn
// — and, via the heartbeat, inside every region — and asserts the contract:
// either the run completes with a Result identical to the uncanceled run,
// or it returns (nil, error wrapping context.Canceled). Nothing in between.
func TestRunContextCancelChaos(t *testing.T) {
	cfg := machine.TinyTest()
	const regions = 5
	build := func() *Program { return cancelProg(t, cfg, 4, regions) }

	want, err := Run(cfg, build())
	if err != nil {
		t.Fatal(err)
	}

	for at := 1; at <= regions; at++ {
		ctx, cancel := context.WithCancel(context.Background())
		beats := 0
		hctx := WithHeartbeat(ctx, func() {
			beats++
			if beats == at {
				cancel()
			}
		})
		res, err := RunContext(hctx, cfg, build())
		cancel()
		switch {
		case err != nil:
			if !errors.Is(err, context.Canceled) {
				t.Errorf("cancel at region %d: err = %v, want context.Canceled", at, err)
			}
			if res != nil {
				t.Errorf("cancel at region %d: non-nil Result alongside error", at)
			}
		default:
			// The run won the race: its Result must be the full, correct one.
			if res.WallCycles != want.WallCycles {
				t.Errorf("cancel at region %d: completed run wall=%v, want %v (partial result leaked)",
					at, res.WallCycles, want.WallCycles)
			}
			if got, exp := res.Report.Total(), want.Report.Total(); got != exp {
				t.Errorf("cancel at region %d: completed run counters differ from uncanceled run", at)
			}
		}
	}
}

// TestRunContextPreCanceled checks the boundary path still rejects runs
// whose context is dead before the first region.
func TestRunContextPreCanceled(t *testing.T) {
	cfg := machine.TinyTest()
	prog := cancelProg(t, cfg, 2, 2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if res, err := RunContext(ctx, cfg, prog); err == nil || res != nil {
		t.Fatalf("pre-canceled run: res=%v err=%v, want nil+error", res, err)
	}
}
