package sim

import (
	"bytes"
	"context"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"math"
	"testing"

	"scaltool/internal/obs"
)

// TestRegionTraceQuoting is the regression test for the CSV-injection bug:
// region names are user input, and a name with a comma used to split its row
// into extra columns (and a quote broke quoting entirely).
func TestRegionTraceQuoting(t *testing.T) {
	c := cfg()
	p, err := NewProgram("hostile", 1, 1024, c.PageBytes)
	if err != nil {
		t.Fatal(err)
	}
	names := []string{
		`solve,phase="1"`,
		"multi\nline",
		"plain",
	}
	for _, name := range names {
		p.AddRegion(name).Proc(0).Compute(100)
	}
	res := run(t, p)

	var buf bytes.Buffer
	if err := res.WriteRegionTrace(&buf); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatalf("trace does not parse as CSV: %v", err)
	}
	if len(rows) != 1+len(names) {
		t.Fatalf("rows = %d, want %d", len(rows), 1+len(names))
	}
	for i, row := range rows {
		if len(row) != 7 {
			t.Fatalf("row %d has %d fields (injection?): %q", i, len(row), row)
		}
	}
	for i, name := range names {
		if got := rows[i+1][1]; got != name {
			t.Errorf("region %d round-tripped as %q, want %q", i, got, name)
		}
	}
}

// TestAppendTimeline checks the simulated-time trace export: per-processor
// threads, gap-free phase slices, and totals that match the ground truth.
func TestAppendTimeline(t *testing.T) {
	const n = 4
	p := buildSweep(t, n, 16<<10, 3, false)
	res := run(t, p)

	tr := obs.NewTracer()
	AppendTimeline(tr, res, "sweep_p04")
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var got struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			TS   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			PID  int64          `json:"pid"`
			TID  int64          `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("timeline is not valid trace_event JSON: %v", err)
	}

	// The sim timeline must live on its own process, not the span pid.
	simPID := int64(-1)
	threads := map[int64]bool{}
	perProc := make([]struct{ busy, sync, imb, end float64 }, n)
	for _, e := range got.TraceEvents {
		if e.Ph == "M" && e.Name == "process_name" && e.Args["name"] == "sim sweep_p04" {
			simPID = e.PID
		}
	}
	if simPID < 0 {
		t.Fatal("no 'sim sweep_p04' process in trace")
	}
	if simPID == obs.TracePID {
		t.Fatal("sim timeline emitted on the span pid")
	}
	for _, e := range got.TraceEvents {
		if e.PID != simPID {
			continue
		}
		switch e.Ph {
		case "M":
			if e.Name == "thread_name" {
				threads[e.TID] = true
			}
		case "X":
			pr := int(e.TID)
			if pr < 0 || pr >= n {
				t.Fatalf("slice on unexpected thread %d", e.TID)
			}
			acc := &perProc[pr]
			switch e.Name {
			case "busy":
				acc.busy += e.Dur
			case "sync":
				acc.sync += e.Dur
			case "imb":
				acc.imb += e.Dur
			default:
				t.Fatalf("unexpected slice name %q", e.Name)
			}
			if e.Dur <= 0 {
				t.Fatalf("non-positive slice duration %g", e.Dur)
			}
			if e.TS+e.Dur > res.WallCycles*(1+1e-9) {
				t.Fatalf("slice [%g,%g] exceeds wall %g", e.TS, e.TS+e.Dur, res.WallCycles)
			}
			if end := e.TS + e.Dur; end > acc.end {
				acc.end = end
			}
			if e.Args["region"] == "" {
				t.Fatal("slice missing region arg")
			}
		}
	}
	for pr := 0; pr < n; pr++ {
		if !threads[int64(pr)] {
			t.Errorf("processor %d has no thread_name record", pr)
		}
		acc := perProc[pr]
		approx := func(got, want float64, what string) {
			if math.Abs(got-want) > 1e-6*(want+1) {
				t.Errorf("proc %d %s = %g, want %g", pr, what, got, want)
			}
		}
		approx(acc.busy, res.Ground.PerProcBusy[pr], "busy")
		approx(acc.sync, res.Ground.PerProcSync[pr], "sync")
		approx(acc.imb, res.Ground.PerProcImb[pr], "imb")
		// Gap-free: every lane's slices tile exactly up to the wall.
		approx(acc.end, res.WallCycles, "timeline end")
	}
}

// TestAppendTimelineNilSafe checks the exporter is inert without a tracer.
func TestAppendTimelineNilSafe(t *testing.T) {
	AppendTimeline(nil, nil, "x")
	res := run(t, buildSweep(t, 2, 4<<10, 1, false))
	AppendTimeline(nil, res, "x")
}

// TestRunMetricsAndSpan checks RunContext feeds the observer: a sim.run
// span plus run/region/cycle counters, and no instrumentation overhead in
// the default (no-observer) path.
func TestRunMetricsAndSpan(t *testing.T) {
	o := &obs.Observer{Trace: obs.NewTracer(), Metrics: obs.NewMetrics()}
	ctx := obs.NewContext(context.Background(), o)
	p := buildSweep(t, 2, 4<<10, 3, false)
	res, err := RunContext(ctx, cfg(), p)
	if err != nil {
		t.Fatal(err)
	}
	if got := o.Metrics.Counter("scaltool_sim_runs_total", "simulated runs completed").Value(); got != 1 {
		t.Errorf("runs counter = %d", got)
	}
	if got := o.Metrics.Counter("scaltool_sim_regions_total", "barrier regions simulated").Value(); got != 3 {
		t.Errorf("regions counter = %d", got)
	}
	cyc := o.Metrics.Counter("scaltool_sim_cycles_total", "simulated wall cycles, summed over runs").Value()
	if math.Abs(float64(cyc)-res.WallCycles) > 1 {
		t.Errorf("cycles counter = %d, wall = %g", cyc, res.WallCycles)
	}
	var buf bytes.Buffer
	if err := o.Trace.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	want := fmt.Sprintf(`"name":%q`, "sim.run")
	if !bytes.Contains(buf.Bytes(), []byte(want)) {
		t.Fatalf("no sim.run span in trace:\n%s", buf.String())
	}
}
