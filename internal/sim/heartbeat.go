package sim

import "context"

// heartbeatKey carries the progress callback installed by WithHeartbeat.
type heartbeatKey struct{}

// WithHeartbeat returns a context whose simulated runs invoke fn at every
// barrier-region boundary — the engine's quiescent points, the same places
// cancellation is checked. The campaign's worker supervisor installs its
// per-worker heartbeat here so a run that is still making progress is
// distinguishable from one that is wedged, without instrumenting the
// per-access hot loop. fn must be cheap and safe to call from the run's
// goroutine; a nil fn returns ctx unchanged.
func WithHeartbeat(ctx context.Context, fn func()) context.Context {
	if fn == nil {
		return ctx
	}
	return context.WithValue(ctx, heartbeatKey{}, fn)
}

// heartbeatFrom extracts the WithHeartbeat callback, or nil.
func heartbeatFrom(ctx context.Context) func() {
	fn, _ := ctx.Value(heartbeatKey{}).(func())
	return fn
}
