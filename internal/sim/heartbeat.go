package sim

import "context"

// heartbeatKey carries the progress callback installed by WithHeartbeat.
type heartbeatKey struct{}

// WithHeartbeat returns a context whose simulated runs invoke fn at a
// bounded work interval: at every barrier-region boundary, every
// heartbeatAccessInterval simulated accesses inside each lane, and every
// mergeBeatInterval line records through the closing coherence merge. The
// campaign's worker supervisor installs its per-worker heartbeat here so a
// run that is still making progress is distinguishable from one that is
// wedged — even when the program is one enormous region.
//
// fn must be cheap and safe for concurrent use: inside a region the
// per-processor lanes run on a worker pool and each invokes fn from its own
// goroutine. A nil fn returns ctx unchanged.
func WithHeartbeat(ctx context.Context, fn func()) context.Context {
	if fn == nil {
		return ctx
	}
	return context.WithValue(ctx, heartbeatKey{}, fn)
}

// heartbeatFrom extracts the WithHeartbeat callback, or nil.
func heartbeatFrom(ctx context.Context) func() {
	fn, _ := ctx.Value(heartbeatKey{}).(func())
	return fn
}
