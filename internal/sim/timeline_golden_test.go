package sim

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"scaltool/internal/obs"
)

// goldenResult is a small hand-built attribution whose timeline export is
// pinned byte-for-byte. It exercises the interesting encoder paths: a
// multi-region multi-processor run, a short lane (untracked pad), a negative
// phase (dropped), and a per-proc-free aggregated region (skipped).
func goldenResult() *Result {
	return &Result{
		Procs:      2,
		WallCycles: 195,
		Ground: GroundTruth{
			Regions: []RegionAttribution{
				{
					Name: "init",
					PerProc: []ProcPhases{
						{Busy: 70, Imb: 10, Sync: 20},
						{Busy: 50, Imb: 0, Sync: 10}, // short lane → untracked pad
					},
				},
				{
					Name: "solve",
					PerProc: []ProcPhases{
						{Busy: 60, Imb: 20, Sync: -15}, // negative phase → dropped
						{Busy: 40, Imb: 30, Sync: 25},
					},
				},
				{Name: "aggregated"}, // no per-proc split → no slices
			},
		},
	}
}

// TestAppendTimelineGolden locks the trace_event JSON AppendTimeline emits.
// Downstream consumers — chrome://tracing, Perfetto, and scripts parsing
// -trace-out files — depend on these exact field names, process/thread
// layout, and the 1-cycle-=-1-µs convention; any change here is a format
// break and must be deliberate. Regenerate with:
//
//	UPDATE_GOLDEN=1 go test ./internal/sim/ -run TestAppendTimelineGolden
func TestAppendTimelineGolden(t *testing.T) {
	tr := obs.NewTracer()
	AppendTimeline(tr, goldenResult(), "golden_p02")
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.Bytes()

	golden := filepath.Join("testdata", "timeline_golden.json")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("updated %s (%d bytes)", golden, len(got))
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with UPDATE_GOLDEN=1): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("timeline JSON drifted from golden (UPDATE_GOLDEN=1 to accept):\ngot:  %s\nwant: %s", got, want)
	}
}
