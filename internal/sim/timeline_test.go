package sim

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"

	"scaltool/internal/obs"
)

// decodeSlices returns the X-phase slices of the timeline's sim process,
// keyed by lane (thread id), in emission order.
func decodeSlices(t *testing.T, tr *obs.Tracer, proc string) map[int64][]struct {
	Name    string
	TS, Dur float64
} {
	t.Helper()
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var got struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			TS   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			PID  int64          `json:"pid"`
			TID  int64          `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	simPID := int64(-1)
	for _, e := range got.TraceEvents {
		if e.Ph == "M" && e.Name == "process_name" && e.Args["name"] == proc {
			simPID = e.PID
		}
	}
	if simPID < 0 {
		t.Fatalf("no %q process in trace", proc)
	}
	out := map[int64][]struct {
		Name    string
		TS, Dur float64
	}{}
	for _, e := range got.TraceEvents {
		if e.PID == simPID && e.Ph == "X" {
			out[e.TID] = append(out[e.TID], struct {
				Name    string
				TS, Dur float64
			}{e.Name, e.TS, e.Dur})
		}
	}
	return out
}

// TestAppendTimelineSkewedLanes is the regression test for the lane-tiling
// bug: AppendTimeline used to assume every lane's Busy+Sync+Imb spans the
// region's elapsed cycles exactly. Attribution that doesn't honor that — a
// short lane, or a negative phase that rewound the lane cursor — let slices
// of one region silently overlap its neighbors. The exporter must instead
// drop negative phases, pad short lanes with an explicit "untracked" slice,
// and keep every region's slices inside its own time range.
func TestAppendTimelineSkewedLanes(t *testing.T) {
	res := &Result{
		Procs: 2,
		Ground: GroundTruth{
			Regions: []RegionAttribution{
				{
					// Region 1, elapsed 100: lane 0 full, lane 1 short by 40.
					Name: "skewA",
					PerProc: []ProcPhases{
						{Busy: 70, Imb: 10, Sync: 20},
						{Busy: 50, Imb: 0, Sync: 10},
					},
				},
				{
					// Region 2, elapsed 95 (lane 1): lane 0 carries a corrupt
					// negative sync phase — it must be dropped (not rewind the
					// cursor), leaving lane 0's positive slices 15 cycles short
					// of the region boundary, made up with an untracked pad.
					Name: "skewB",
					PerProc: []ProcPhases{
						{Busy: 60, Imb: 20, Sync: -15},
						{Busy: 40, Imb: 30, Sync: 25},
					},
				},
			},
		},
	}
	tr := obs.NewTracer()
	AppendTimeline(tr, res, "skew")
	lanes := decodeSlices(t, tr, "sim skew")
	if len(lanes) != 2 {
		t.Fatalf("got %d lanes, want 2", len(lanes))
	}

	const r1End, r2End = 100.0, 195.0
	approx := func(a, b float64) bool { return math.Abs(a-b) < 1e-9*(math.Abs(b)+1) }
	for tid, slices := range lanes {
		cursor := 0.0
		for i, s := range slices {
			if s.Dur <= 0 {
				t.Errorf("lane %d slice %d (%s): non-positive dur %g", tid, i, s.Name, s.Dur)
			}
			if !approx(s.TS, cursor) {
				t.Errorf("lane %d slice %d (%s): starts at %g, cursor %g (gap or overlap)",
					tid, i, s.Name, s.TS, cursor)
			}
			cursor = s.TS + s.Dur
			// No slice may straddle a region boundary.
			if s.TS < r1End && s.TS+s.Dur > r1End+1e-9 {
				t.Errorf("lane %d slice %d (%s) [%g,%g] straddles the region boundary at %g",
					tid, i, s.Name, s.TS, s.TS+s.Dur, r1End)
			}
		}
		// Every lane tiles exactly to the end of the last region.
		if !approx(cursor, r2End) {
			t.Errorf("lane %d ends at %g, want %g", tid, cursor, r2End)
		}
	}

	// Lane 1 was short in region 1 by 40 cycles: the pad slice must carry
	// the explicit "untracked" name, not masquerade as attribution.
	var pad float64
	for _, s := range lanes[1] {
		if s.Name == "untracked" && s.TS < r1End {
			pad += s.Dur
		}
	}
	if !approx(pad, 40) {
		t.Errorf("lane 1 region 1 untracked pad = %g, want 40", pad)
	}

	// Lane 0's negative sync phase in region 2 is dropped, and its lane is
	// padded back to the region boundary — 15 cycles of untracked time.
	var negPad float64
	for _, s := range lanes[0] {
		if s.Name == "untracked" && s.TS >= r1End {
			negPad += s.Dur
		}
	}
	if !approx(negPad, 15) {
		t.Errorf("lane 0 region 2 untracked pad = %g, want 15", negPad)
	}
}

// TestAppendTimelineEngineResultHasNoPads checks that an engine-produced
// Result — whose attribution honors the tiling invariant by construction —
// never needs an untracked pad slice.
func TestAppendTimelineEngineResultHasNoPads(t *testing.T) {
	p := buildSweep(t, 4, 16<<10, 3, false)
	res := run(t, p)
	tr := obs.NewTracer()
	AppendTimeline(tr, res, "clean")
	for tid, slices := range decodeSlices(t, tr, "sim clean") {
		for _, s := range slices {
			if s.Name == "untracked" {
				t.Errorf("lane %d: engine result produced untracked pad [%g,%g]", tid, s.TS, s.Dur)
			}
		}
	}
}
