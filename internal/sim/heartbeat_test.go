package sim

import (
	"context"
	"sync/atomic"
	"testing"
)

// Regression test for heartbeat starvation: the heartbeat used to fire only
// at region boundaries, so one enormous region starved the campaign
// supervisor's watchdog into killing a healthy worker. Now every lane also
// beats every heartbeatAccessInterval simulated accesses *inside* a region.

// buildOneRegionSweep makes a program whose entire access stream is a single
// barrier region: the worst case for a boundary-only heartbeat.
func buildOneRegionSweep(t *testing.T, procs int, accessesPerProc uint64) *Program {
	t.Helper()
	c := cfg()
	dataBytes := accessesPerProc * 8 * uint64(procs)
	p, err := NewProgram("oneregion", procs, dataBytes, c.PageBytes)
	if err != nil {
		t.Fatal(err)
	}
	arr := p.MustAlloc("a", dataBytes)
	reg := p.AddRegion("everything")
	for pr := 0; pr < procs; pr++ {
		base := arr.Base + uint64(pr)*accessesPerProc*8
		reg.Proc(pr).Seq(base, accessesPerProc, 8, false, 1)
	}
	return p
}

// TestHeartbeatFiresInsideRegion proves beats arrive at a bounded
// simulated-access interval even when the program is one giant region. A
// boundary-only heartbeat would fire O(regions) ≈ 2 times here; the
// in-region beat must fire ≈ totalAccesses/heartbeatAccessInterval times.
func TestHeartbeatFiresInsideRegion(t *testing.T) {
	const procs = 2
	const perProc = 6 * heartbeatAccessInterval // 6 intervals per lane
	p := buildOneRegionSweep(t, procs, perProc)

	var beats atomic.Int64
	ctx := WithHeartbeat(context.Background(), func() { beats.Add(1) })
	if _, err := RunContext(ctx, cfg(), p); err != nil {
		t.Fatal(err)
	}

	// Each lane crosses the interval 6 times; plus the boundary beats. Allow
	// generous slack below the exact count — the property under test is only
	// "many beats inside one region", i.e. the watchdog sees progress.
	min := int64(procs * 4)
	if got := beats.Load(); got < min {
		t.Fatalf("heartbeat fired %d times during a single-region run of %d accesses; "+
			"want ≥ %d (boundary-only heartbeats starve the watchdog)",
			got, procs*perProc, min)
	}
}

// TestHeartbeatCountDeterministic pins the beat schedule itself: the number
// of beats is a pure function of the program (accesses per lane and region
// count), independent of run-to-run scheduling of the worker pool.
func TestHeartbeatCountDeterministic(t *testing.T) {
	p := buildOneRegionSweep(t, 4, 3*heartbeatAccessInterval+17)
	count := func() int64 {
		var beats atomic.Int64
		ctx := WithHeartbeat(context.Background(), func() { beats.Add(1) })
		if _, err := RunContext(ctx, cfg(), p); err != nil {
			t.Fatal(err)
		}
		return beats.Load()
	}
	a, b := count(), count()
	if a != b {
		t.Fatalf("beat count not deterministic: %d then %d", a, b)
	}
	if a == 0 {
		t.Fatal("no beats at all")
	}
}
