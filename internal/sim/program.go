// Package sim is the execution-driven simulator of the DSM multiprocessor.
//
// A simulated application is a Program: an ordered list of barrier-delimited
// parallel Regions, matching the structure of the paper's applications (MP
// DOACROSS loops end in implicit barriers; PCF codes use explicit barriers
// and serial sections). Within a region every processor executes its own
// Stream of batched operations — compute bursts, sequential/strided array
// sweeps, gathers, and critical sections.
//
// The engine (engine.go) runs each region's streams through per-processor
// cache hierarchies against an immutable coherence snapshot, merges
// coherence state at the closing barrier, and charges a detailed barrier
// cost model (fetchop round trip, serialization at the barrier variable's
// home, release invalidation, spin-wait). Every cycle is attributed to one
// of three ground-truth buckets — busy, synchronization, load imbalance —
// which the perftools package exposes as the speedshop analogue used to
// validate Scal-Tool.
package sim

import (
	"fmt"

	"scaltool/internal/memdsm"
)

// OpKind discriminates stream operations.
type OpKind uint8

// Stream operation kinds.
const (
	// OpCompute executes Instr non-memory instructions.
	OpCompute OpKind = iota
	// OpSeq performs Count memory accesses starting at Base, advancing
	// Stride bytes per access, with InstrPer extra compute instructions
	// interleaved before each access (the loop body).
	OpSeq
	// OpGather performs one access per element of Addrs, with InstrPer
	// compute instructions before each (indirect/irregular access).
	OpGather
	// OpCritical executes a lock-protected critical section of Instr
	// compute instructions. Critical sections of different processors in
	// the same region serialize.
	OpCritical
)

// Op is one batched stream operation. Exactly the fields relevant to Kind
// are used.
type Op struct {
	Kind     OpKind
	Instr    uint64   // OpCompute, OpCritical: compute instructions; OpSeq/OpGather: unused
	Base     uint64   // OpSeq: first byte address
	Count    uint64   // OpSeq: number of accesses
	Stride   int64    // OpSeq: bytes between accesses (may be negative)
	Write    bool     // OpSeq/OpGather: store vs load
	InstrPer uint64   // OpSeq/OpGather: compute instructions per access
	Addrs    []uint64 // OpGather: explicit addresses
}

// Stream is one processor's work in one region.
type Stream struct {
	Ops []Op
}

// Compute appends a compute burst.
func (s *Stream) Compute(instr uint64) {
	if instr == 0 {
		return
	}
	s.Ops = append(s.Ops, Op{Kind: OpCompute, Instr: instr})
}

// Seq appends a strided sweep of count accesses.
func (s *Stream) Seq(base uint64, count uint64, stride int64, write bool, instrPer uint64) {
	if count == 0 {
		return
	}
	s.Ops = append(s.Ops, Op{Kind: OpSeq, Base: base, Count: count, Stride: stride, Write: write, InstrPer: instrPer})
}

// Read is Seq with write=false.
func (s *Stream) Read(base, count uint64, stride int64, instrPer uint64) {
	s.Seq(base, count, stride, false, instrPer)
}

// Write is Seq with write=true.
func (s *Stream) Write(base, count uint64, stride int64, instrPer uint64) {
	s.Seq(base, count, stride, true, instrPer)
}

// Gather appends an irregular access list. The slice is retained; callers
// must not mutate it afterwards.
func (s *Stream) Gather(addrs []uint64, write bool, instrPer uint64) {
	if len(addrs) == 0 {
		return
	}
	s.Ops = append(s.Ops, Op{Kind: OpGather, Addrs: addrs, Write: write, InstrPer: instrPer})
}

// Critical appends a lock-protected critical section of instr compute
// instructions.
func (s *Stream) Critical(instr uint64) {
	s.Ops = append(s.Ops, Op{Kind: OpCritical, Instr: instr})
}

// Empty reports whether the stream has no work (an idle processor this
// region — e.g. a serial section on another processor).
func (s *Stream) Empty() bool { return len(s.Ops) == 0 }

// Region is one barrier-delimited parallel phase.
type Region struct {
	Name    string
	Streams []Stream // one per processor
}

// Proc returns the stream of processor p for in-place construction.
func (r *Region) Proc(p int) *Stream { return &r.Streams[p] }

// Program is a complete simulated application run: the processor count and
// data-set size it was built for, its address space, and its regions.
type Program struct {
	Name      string
	Procs     int
	DataBytes uint64 // nominal data-set size s (the model's independent variable)
	Placement memdsm.Placement

	space   *memdsm.AddressSpace
	regions []Region

	// syncVar is the page holding the barrier and lock variables, homed by
	// first touch like everything else (processor 0 initializes it).
	syncVar memdsm.Region
}

// NewProgram starts a program for the given processor count. pageBytes must
// match the machine configuration the program will run on (the builder
// needs it to lay out the address space).
func NewProgram(name string, procs int, dataBytes uint64, pageBytes int) (*Program, error) {
	if procs <= 0 {
		return nil, fmt.Errorf("sim: processor count %d", procs)
	}
	if dataBytes == 0 {
		return nil, fmt.Errorf("sim: zero data size")
	}
	space, err := memdsm.NewAddressSpace(pageBytes)
	if err != nil {
		return nil, err
	}
	p := &Program{
		Name:      name,
		Procs:     procs,
		DataBytes: dataBytes,
		Placement: memdsm.FirstTouch,
		space:     space,
	}
	// The sync region holds the barrier variable at offset 0 and the lock
	// variable at offset 64; on machines with tiny pages it must still
	// cover both (Alloc pads to whole pages).
	syncBytes := uint64(pageBytes)
	if syncBytes < 128 {
		syncBytes = 128
	}
	p.syncVar = space.MustAlloc("__sync", syncBytes)
	return p, nil
}

// Alloc reserves a named array in the program's address space.
func (p *Program) Alloc(name string, size uint64) (memdsm.Region, error) {
	return p.space.Alloc(name, size)
}

// MustAlloc is Alloc that panics on error, for builder code.
func (p *Program) MustAlloc(name string, size uint64) memdsm.Region {
	return p.space.MustAlloc(name, size)
}

// AddRegion appends a region and returns it for stream construction.
func (p *Program) AddRegion(name string) *Region {
	p.regions = append(p.regions, Region{Name: name, Streams: make([]Stream, p.Procs)})
	return &p.regions[len(p.regions)-1]
}

// Regions returns the program's regions (shared slice; engine reads only).
func (p *Program) Regions() []Region { return p.regions }

// SpaceBytes returns the total allocated address-space bytes.
func (p *Program) SpaceBytes() uint64 { return p.space.Bytes() }

// BarrierAddr returns the simulated address of the barrier variable.
func (p *Program) BarrierAddr() uint64 { return p.syncVar.Base }

// LockAddr returns the simulated address of the (single, global) lock
// variable.
func (p *Program) LockAddr() uint64 { return p.syncVar.Base + 64 }

// Validate checks the program is runnable.
func (p *Program) Validate() error {
	if len(p.regions) == 0 {
		return fmt.Errorf("sim: program %q has no regions", p.Name)
	}
	for i := range p.regions {
		r := &p.regions[i]
		if len(r.Streams) != p.Procs {
			return fmt.Errorf("sim: region %d (%s) has %d streams for %d processors", i, r.Name, len(r.Streams), p.Procs)
		}
		for pr := range r.Streams {
			for oi, op := range r.Streams[pr].Ops {
				if op.Kind == OpSeq && op.Count == 0 {
					return fmt.Errorf("sim: region %d proc %d op %d: zero-count Seq", i, pr, oi)
				}
			}
		}
	}
	return nil
}
