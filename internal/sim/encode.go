package sim

import (
	"encoding/json"
	"fmt"
	"io"

	"scaltool/internal/counters"
)

// Clone returns a copy of the Result that is safe to hand to a caller that
// mutates the counter Report (the campaign's sanitize/perturb pipeline
// replaces it wholesale and may rewrite per-processor sets). The Report and
// its PerProc sets are deep-copied; the ground truth and segment counters —
// read-only once a run completes — are shared with the receiver.
func (r *Result) Clone() *Result {
	if r == nil {
		return nil
	}
	out := *r
	out.Report.PerProc = append([]counters.Set(nil), r.Report.PerProc...)
	return &out
}

// resultDTO is the serialized form of a Result, including the unexported
// per-region segment counters, so a decoded Result supports SegmentReport
// exactly like the original.
type resultDTO struct {
	Version     int                `json:"version"`
	MachineName string             `json:"machine_name"`
	Procs       int                `json:"procs"`
	DataBytes   uint64             `json:"data_bytes"`
	WallCycles  float64            `json:"wall_cycles"`
	Report      counters.RunReport `json:"report"`
	Ground      GroundTruth        `json:"ground"`
	Segments    []segRegionDTO     `json:"segments,omitempty"`
}

type segRegionDTO struct {
	Name    string         `json:"name"`
	PerProc []counters.Set `json:"per_proc"`
}

// encodeVersion guards the spill format: a decoder refuses frames written by
// an incompatible future encoder instead of misreading them.
const encodeVersion = 1

// EncodeResult serializes a Result — counter report, ground truth, and the
// per-region segment counters — as one JSON document. The encoding is
// deterministic for a given Result, which the content-addressed run cache
// relies on when spilling entries to disk.
func EncodeResult(w io.Writer, r *Result) error {
	if r == nil {
		return fmt.Errorf("sim: encode nil Result")
	}
	dto := resultDTO{
		Version:     encodeVersion,
		MachineName: r.MachineName,
		Procs:       r.Procs,
		DataBytes:   r.DataBytes,
		WallCycles:  r.WallCycles,
		Report:      r.Report,
		Ground:      r.Ground,
	}
	dto.Report.PerProc = append([]counters.Set(nil), r.Report.PerProc...)
	for _, seg := range r.segments {
		dto.Segments = append(dto.Segments, segRegionDTO{Name: seg.name, PerProc: seg.perProc})
	}
	return json.NewEncoder(w).Encode(dto)
}

// DecodeResult reads a Result written by EncodeResult.
func DecodeResult(rd io.Reader) (*Result, error) {
	var dto resultDTO
	if err := json.NewDecoder(rd).Decode(&dto); err != nil {
		return nil, fmt.Errorf("sim: decoding Result: %w", err)
	}
	if dto.Version != encodeVersion {
		return nil, fmt.Errorf("sim: Result encoding version %d (want %d)", dto.Version, encodeVersion)
	}
	out := &Result{
		MachineName: dto.MachineName,
		Procs:       dto.Procs,
		DataBytes:   dto.DataBytes,
		WallCycles:  dto.WallCycles,
		Report:      dto.Report,
		Ground:      dto.Ground,
	}
	for _, seg := range dto.Segments {
		out.segments = append(out.segments, segRegion{name: seg.Name, perProc: seg.PerProc})
	}
	return out, nil
}

// SizeEstimate returns an approximate in-memory footprint of the Result in
// bytes — the run cache's unit of accounting for its byte budget. It counts
// the dominant slices (per-processor counter sets, region attribution,
// segment counters, ground-truth lanes) plus a fixed struct overhead; it is
// deliberately cheap and slightly conservative rather than exact.
func (r *Result) SizeEstimate() int64 {
	if r == nil {
		return 0
	}
	const setBytes = int64(len(counters.Set{})) * 8
	sz := int64(512) // struct headers, strings, map slots
	sz += int64(len(r.Report.PerProc)) * setBytes
	sz += int64(len(r.Ground.PerProcBusy)+len(r.Ground.PerProcSync)+len(r.Ground.PerProcImb)) * 8
	for _, reg := range r.Ground.Regions {
		sz += int64(len(reg.Name)) + 64 + int64(len(reg.PerProc))*24
	}
	for _, seg := range r.segments {
		sz += int64(len(seg.name)) + 32 + int64(len(seg.perProc))*setBytes
	}
	return sz
}
