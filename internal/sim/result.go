package sim

import (
	"fmt"
	"strings"

	"scaltool/internal/counters"
)

// RegionAttribution is the ground-truth cycle breakdown of one region,
// summed over processors.
type RegionAttribution struct {
	Name string
	Busy float64 // compute + memory-stall cycles
	Sync float64 // barrier entry/exit, fetchop, lock transactions and lock-contention waits
	Imb  float64 // spin-waiting for stragglers at barriers

	// PerProc is the per-processor split of the same attribution (index =
	// processor). For every processor Busy+Sync+Imb spans the region's
	// elapsed cycles exactly, so the slices concatenate into a gap-free
	// per-processor timeline (AppendTimeline exports it as trace_event).
	// Aggregated views (RegionSummary) leave it empty.
	PerProc []ProcPhases
}

// ProcPhases is one processor's cycle attribution within one region.
type ProcPhases struct {
	Busy float64
	Sync float64
	Imb  float64
}

// GroundTruth is everything the simulator knows that real hardware counters
// would not reveal. Scal-Tool never reads it; the validation experiments
// (the paper's Figures 7, 10, 13) compare the model's estimates against it.
type GroundTruth struct {
	BusyCycles float64 // totals over all processors
	SyncCycles float64
	ImbCycles  float64

	PerProcBusy []float64
	PerProcSync []float64
	PerProcImb  []float64

	// L2 miss classes, aggregated over processors. Includes the barrier
	// release-flag misses (classified coherence).
	Compulsory uint64
	Coherence  uint64
	Conflict   uint64

	SharingLines  uint64 // intra-region true/false-sharing line events
	Invalidations uint64 // directory invalidation messages

	Regions []RegionAttribution
}

// MPCycles returns the total multiprocessor overhead (the paper's
// MP = Sync + Imb), in cycles accumulated over all processors.
func (g *GroundTruth) MPCycles() float64 { return g.SyncCycles + g.ImbCycles }

// Result is the outcome of one simulated run.
type Result struct {
	MachineName string
	Procs       int
	DataBytes   uint64

	// WallCycles is the elapsed execution time in cycles.
	WallCycles float64

	// Report is what the hardware would let you measure: event counters per
	// processor plus run-time instrumentation counts. This is Scal-Tool's
	// entire view of the run.
	Report counters.RunReport

	// Ground is the simulator's ground truth, for validation only.
	Ground GroundTruth

	segments []segRegion
}

// SegmentReport builds a counter report restricted to the regions whose
// names contain substr — the paper's "segment of the application that is
// considered particularly important" (§2.1). The report carries the
// segment's barrier count (one per matching region) so the model's
// instrumented methods work on it; cycles are the segment's own elapsed
// cycles (every processor participates in every region).
func (r *Result) SegmentReport(substr string) (*counters.RunReport, error) {
	out := counters.RunReport{
		Machine:      r.Report.Machine,
		App:          r.Report.App + "#" + substr,
		Procs:        r.Procs,
		DataBytes:    r.DataBytes,
		PerProc:      make([]counters.Set, r.Procs),
		Locks:        0,
		TouchedPages: r.Report.TouchedPages,
		PageBytes:    r.Report.PageBytes,
	}
	matched := 0
	for _, seg := range r.segments {
		if !strings.Contains(seg.name, substr) {
			continue
		}
		matched++
		for p := range seg.perProc {
			out.PerProc[p].Merge(seg.perProc[p])
		}
	}
	if matched == 0 {
		return nil, fmt.Errorf("sim: no region matches segment %q", substr)
	}
	out.Barriers = uint64(matched)
	out.WallCycles = out.PerProc[0][counters.Cycles]
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("sim: segment %q: %w", substr, err)
	}
	return &out, nil
}

// AggregateRegions merges the run's region attribution by name, in
// first-appearance order, keeping the per-processor split (summed
// element-wise across a name's instances). This is the attribution export
// internal/diagnose overlays across a campaign's processor sweep: unlike
// RegionSummary it preserves PerProc, so a straggler processor stays
// identifiable after aggregation. For every name the merged Busy+Sync+Imb
// still tiles the sum of its instances' elapsed cycles.
func (r *Result) AggregateRegions() []RegionAttribution {
	idx := make(map[string]int, len(r.Ground.Regions))
	out := make([]RegionAttribution, 0, len(r.Ground.Regions))
	for _, reg := range r.Ground.Regions {
		i, ok := idx[reg.Name]
		if !ok {
			i = len(out)
			idx[reg.Name] = i
			out = append(out, RegionAttribution{Name: reg.Name, PerProc: make([]ProcPhases, r.Procs)}) //scalvet:ignore retained result: one per distinct region name, returned to the caller
		}
		out[i].Busy += reg.Busy
		out[i].Sync += reg.Sync
		out[i].Imb += reg.Imb
		for p, ph := range reg.PerProc {
			if p >= len(out[i].PerProc) {
				break
			}
			out[i].PerProc[p].Busy += ph.Busy
			out[i].PerProc[p].Sync += ph.Sync
			out[i].PerProc[p].Imb += ph.Imb
		}
	}
	return out
}

// Segments lists the distinct region names of the run, in first-appearance
// order.
func (r *Result) Segments() []string {
	seen := map[string]bool{}
	var out []string
	for _, seg := range r.segments {
		if !seen[seg.name] {
			seen[seg.name] = true
			out = append(out, seg.name)
		}
	}
	return out
}
