package sim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"scaltool/internal/counters"
	"scaltool/internal/machine"
)

// randomProgram builds an arbitrary but valid program from a seed: random
// region count, random mixes of compute/sweeps/gathers/criticals, random
// idle processors (imbalance), random inter-processor sharing.
func randomProgram(t testing.TB, seed int64) *Program {
	rng := rand.New(rand.NewSource(seed))
	cfg := machine.TinyTest()
	procs := 1 + rng.Intn(8)
	dataBytes := uint64(1024 * (1 + rng.Intn(16)))
	p, err := NewProgram("random", procs, dataBytes, cfg.PageBytes)
	if err != nil {
		t.Fatal(err)
	}
	arr := p.MustAlloc("a", dataBytes)
	regions := 1 + rng.Intn(6)
	for r := 0; r < regions; r++ {
		reg := p.AddRegion("r")
		for pr := 0; pr < procs; pr++ {
			if rng.Intn(4) == 0 {
				continue // idle this region
			}
			st := reg.Proc(pr)
			for ops := rng.Intn(3) + 1; ops > 0; ops-- {
				switch rng.Intn(4) {
				case 0:
					st.Compute(uint64(rng.Intn(5000) + 1))
				case 1:
					start := uint64(rng.Intn(int(dataBytes / 2)))
					count := uint64(rng.Intn(200) + 1)
					stride := int64(8)
					if start+count*8 > dataBytes {
						count = (dataBytes - start) / 8
					}
					if count == 0 {
						continue
					}
					st.Seq(arr.Base+start, count, stride, rng.Intn(2) == 0, uint64(rng.Intn(4)))
				case 2:
					addrs := make([]uint64, rng.Intn(20)+1)
					for i := range addrs {
						addrs[i] = arr.Addr(uint64(rng.Intn(int(dataBytes))))
					}
					st.Gather(addrs, rng.Intn(2) == 0, 1)
				case 3:
					st.Critical(uint64(rng.Intn(500) + 1))
				}
			}
		}
	}
	return p
}

// TestRandomProgramInvariants checks, over arbitrary programs, the
// accounting identities every run must satisfy.
func TestRandomProgramInvariants(t *testing.T) {
	cfg := machine.TinyTest()
	f := func(seed int64) bool {
		p := randomProgram(t, seed)
		res, err := Run(cfg, p)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		g := res.Ground
		// 1. Per-processor: busy + sync + imb == wall.
		for pr := 0; pr < res.Procs; pr++ {
			sum := g.PerProcBusy[pr] + g.PerProcSync[pr] + g.PerProcImb[pr]
			if math.Abs(sum-res.WallCycles) > 1e-6*(res.WallCycles+1) {
				t.Logf("seed %d: proc %d attribution %g != wall %g", seed, pr, sum, res.WallCycles)
				return false
			}
		}
		// 2. Counter sanity.
		if err := res.Report.Validate(); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		tot := res.Report.Total()
		if tot[counters.L1DMisses] < tot[counters.L2Misses] {
			return false
		}
		// 3. Miss classes sum to total L2 misses.
		if g.Compulsory+g.Coherence+g.Conflict != tot[counters.L2Misses] {
			t.Logf("seed %d: class sum mismatch", seed)
			return false
		}
		// 4. Uniprocessor runs never report store-to-shared or imbalance.
		if res.Procs == 1 && (tot[counters.StoreShared] != 0 || g.ImbCycles != 0) {
			return false
		}
		// 5. Determinism: a second run is bit-identical.
		res2, err := Run(cfg, randomProgram(t, seed))
		if err != nil {
			return false
		}
		if res2.WallCycles != res.WallCycles || res2.Report.Total() != tot {
			t.Logf("seed %d: nondeterministic", seed)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestFullSizeOriginSmoke runs one small program on the full-size Origin
// 2000 configuration — the 4 MB L2 machine is usable, just slow for full
// campaigns.
func TestFullSizeOriginSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size machine")
	}
	cfg := machine.Origin2000()
	p, err := NewProgram("smoke", 4, 1<<20, cfg.PageBytes)
	if err != nil {
		t.Fatal(err)
	}
	arr := p.MustAlloc("a", 1<<20)
	for r := 0; r < 2; r++ {
		reg := p.AddRegion("sweep")
		for pr := 0; pr < 4; pr++ {
			reg.Proc(pr).Read(arr.Base+uint64(pr)*(1<<18), 1<<15, 8, 4)
		}
	}
	res, err := Run(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.WallCycles <= 0 {
		t.Fatal("no cycles")
	}
	// First sweep misses (compulsory), second hits the 4 MB L2 entirely.
	if res.Ground.Conflict != 0 {
		t.Errorf("conflict misses on an L2-fitting set: %d", res.Ground.Conflict)
	}
}
