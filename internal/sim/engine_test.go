package sim

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"scaltool/internal/counters"
	"scaltool/internal/machine"
)

func cfg() machine.Config { return machine.TinyTest() }

// buildSweep makes a program of `regions` regions in which each of n
// processors sweeps its own slice of an array of dataBytes.
func buildSweep(t *testing.T, n int, dataBytes uint64, regions int, write bool) *Program {
	t.Helper()
	c := cfg()
	p, err := NewProgram("sweep", n, dataBytes, c.PageBytes)
	if err != nil {
		t.Fatal(err)
	}
	arr := p.MustAlloc("a", dataBytes)
	per := dataBytes / uint64(n)
	for r := 0; r < regions; r++ {
		reg := p.AddRegion("sweep")
		for pr := 0; pr < n; pr++ {
			base := arr.Base + uint64(pr)*per
			reg.Proc(pr).Seq(base, per/8, 8, write, 2)
		}
	}
	return p
}

func run(t *testing.T, p *Program) *Result {
	t.Helper()
	res, err := Run(cfg(), p)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestUniprocessorComputeOnly(t *testing.T) {
	c := cfg()
	p, err := NewProgram("compute", 1, 1024, c.PageBytes)
	if err != nil {
		t.Fatal(err)
	}
	p.AddRegion("calc").Proc(0).Compute(1000)
	res := run(t, p)

	// Wall = compute + barrier entry + fetchop (no spin, no release miss).
	wantBusy := 1000 * c.Cost.ComputeCPI
	wantSync := float64(c.Sync.BarrierInstr)*c.Cost.ComputeCPI + float64(c.Lat.SyncAcquire)
	if math.Abs(res.Ground.BusyCycles-wantBusy) > 1e-9 {
		t.Errorf("busy = %g, want %g", res.Ground.BusyCycles, wantBusy)
	}
	if math.Abs(res.Ground.SyncCycles-wantSync) > 1e-9 {
		t.Errorf("sync = %g, want %g", res.Ground.SyncCycles, wantSync)
	}
	if res.Ground.ImbCycles != 0 {
		t.Errorf("imb = %g, want 0", res.Ground.ImbCycles)
	}
	if math.Abs(res.WallCycles-(wantBusy+wantSync)) > 1e-9 {
		t.Errorf("wall = %g, want %g", res.WallCycles, wantBusy+wantSync)
	}
	tot := res.Report.Total()
	if got := tot[counters.GradInstr]; got != 1000+uint64(c.Sync.BarrierInstr) {
		t.Errorf("instr = %d", got)
	}
	if tot[counters.StoreShared] != 0 {
		t.Error("uniprocessor run recorded store-shared events")
	}
	if res.Report.Barriers != 1 {
		t.Errorf("barriers = %d, want 1", res.Report.Barriers)
	}
	if err := res.Report.Validate(); err != nil {
		t.Errorf("report invalid: %v", err)
	}
}

func TestAttributionSumsToWall(t *testing.T) {
	// Invariant: per processor, busy+sync+imb == wall.
	for _, n := range []int{1, 2, 4, 8} {
		p := buildSweep(t, n, 16<<10, 3, false)
		res := run(t, p)
		for pr := 0; pr < n; pr++ {
			sum := res.Ground.PerProcBusy[pr] + res.Ground.PerProcSync[pr] + res.Ground.PerProcImb[pr]
			if math.Abs(sum-res.WallCycles) > 1e-6*res.WallCycles {
				t.Errorf("n=%d proc %d: busy+sync+imb = %g, wall = %g", n, pr, sum, res.WallCycles)
			}
		}
	}
}

func TestDeterminism(t *testing.T) {
	a := run(t, buildSweep(t, 4, 8<<10, 4, true))
	b := run(t, buildSweep(t, 4, 8<<10, 4, true))
	if !reflect.DeepEqual(a.Report, b.Report) {
		t.Fatal("reports differ between identical runs")
	}
	if a.WallCycles != b.WallCycles || !reflect.DeepEqual(a.Ground, b.Ground) {
		t.Fatal("ground truth differs between identical runs")
	}
}

func TestSecondSweepHitsCache(t *testing.T) {
	c := cfg()
	// Data fits in L2 (1 KiB L2, use 512 B): second region re-reads and
	// must not miss L2.
	p, _ := NewProgram("fit", 1, 512, c.PageBytes)
	arr := p.MustAlloc("a", 512)
	for r := 0; r < 2; r++ {
		p.AddRegion("sweep").Proc(0).Read(arr.Base, 512/8, 8, 1)
	}
	res := run(t, p)
	tot := res.Report.Total()
	wantMisses := uint64(512 / c.L2.LineBytes) // compulsory only
	if got := tot[counters.L2Misses]; got != wantMisses {
		t.Errorf("L2 misses = %d, want %d (compulsory only)", got, wantMisses)
	}
	if res.Ground.Conflict != 0 || res.Ground.Coherence != 0 {
		t.Errorf("unexpected conflict/coherence misses: %+v", res.Ground)
	}
}

func TestOverflowCausesConflictMisses(t *testing.T) {
	c := cfg()
	// 4 KiB data through a 1 KiB L2, swept twice: second sweep conflicts.
	size := uint64(4 * c.L2.SizeBytes)
	p, _ := NewProgram("overflow", 1, size, c.PageBytes)
	arr := p.MustAlloc("a", size)
	for r := 0; r < 2; r++ {
		p.AddRegion("sweep").Proc(0).Read(arr.Base, size/8, 8, 1)
	}
	res := run(t, p)
	if res.Ground.Conflict == 0 {
		t.Fatal("no conflict misses despite 4x L2 overflow")
	}
	lines := size / uint64(c.L2.LineBytes)
	if res.Ground.Compulsory != uint64(lines) {
		t.Errorf("compulsory = %d, want %d", res.Ground.Compulsory, lines)
	}
}

func TestCrossRegionCoherenceMisses(t *testing.T) {
	c := cfg()
	// Proc 0 writes a block in region 1; proc 1 reads it in region 2 and
	// proc 0 rewrites it in region 3 after proc 1's read made it Shared.
	p, _ := NewProgram("share", 2, 1024, c.PageBytes)
	arr := p.MustAlloc("a", 256)
	count := uint64(256 / 8)
	p.AddRegion("w0").Proc(0).Write(arr.Base, count, 8, 1)
	p.AddRegion("r1").Proc(1).Read(arr.Base, count, 8, 1)
	p.AddRegion("w0b").Proc(0).Write(arr.Base, count, 8, 1)
	p.AddRegion("r1b").Proc(1).Read(arr.Base, count, 8, 1)
	res := run(t, p)

	// Proc 1's second read must be coherence misses (its copy was
	// invalidated by proc 0's rewrite). Count: lines in the block.
	lines := uint64(256 / c.L2.LineBytes)
	// Barrier release misses also count as coherence (4 barriers × 2 procs
	// where n>1 → 8). Data coherence misses are separate.
	dataCoh := res.Ground.Coherence - 8
	if dataCoh != lines {
		t.Errorf("data coherence misses = %d, want %d", dataCoh, lines)
	}
	if res.Ground.Invalidations == 0 {
		t.Error("no invalidations sent")
	}
	// Proc 0's rewrite of the Shared lines must raise store-to-shared
	// events beyond the barrier ones (4 barriers/proc = 8 total).
	tot := res.Report.Total()
	if got := tot[counters.StoreShared]; got <= 8 {
		t.Errorf("store-shared = %d, want > 8 (upgrades)", got)
	}
}

func TestSerialSectionCausesImbalance(t *testing.T) {
	c := cfg()
	p, _ := NewProgram("serial", 4, 1024, c.PageBytes)
	p.AddRegion("serial").Proc(0).Compute(100_000)
	res := run(t, p)
	if res.Ground.ImbCycles < 3*0.9*100_000*c.Cost.ComputeCPI {
		t.Errorf("imbalance = %g, want ≈ 3 × serial work", res.Ground.ImbCycles)
	}
	// Spinners execute instructions.
	spinInstr := res.Report.PerProc[1][counters.GradInstr]
	if spinInstr <= uint64(c.Sync.BarrierInstr) {
		t.Errorf("idle proc executed %d instructions, want spin work", spinInstr)
	}
}

func TestBarrierCostGrowsWithProcs(t *testing.T) {
	// A sync kernel: empty regions. Per-barrier wall cost must grow with n
	// (fetchop serialization at the barrier home).
	per := func(n int) float64 {
		c := cfg()
		p, _ := NewProgram("synck", n, 1024, c.PageBytes)
		for r := 0; r < 10; r++ {
			reg := p.AddRegion("barrier")
			for pr := 0; pr < n; pr++ {
				reg.Proc(pr).Compute(10)
			}
		}
		res := run(t, p)
		return res.WallCycles / 10
	}
	c2, c8, c32 := per(2), per(8), per(32)
	if !(c2 < c8 && c8 < c32) {
		t.Fatalf("barrier cost not increasing: %g, %g, %g", c2, c8, c32)
	}
}

func TestLockSerialization(t *testing.T) {
	c := cfg()
	n := 4
	p, _ := NewProgram("locks", n, 1024, c.PageBytes)
	reg := p.AddRegion("cs")
	for pr := 0; pr < n; pr++ {
		reg.Proc(pr).Critical(1000)
	}
	res := run(t, p)
	if res.Report.Locks != uint64(n) {
		t.Errorf("locks = %d, want %d", res.Report.Locks, n)
	}
	// All critical sections serialize: wall ≥ n × one CS duration.
	oneCS := float64(c.Sync.LockInstr+1000) * c.Cost.ComputeCPI
	if res.WallCycles < float64(n)*oneCS {
		t.Errorf("wall = %g, want ≥ %g (serialized)", res.WallCycles, float64(n)*oneCS)
	}
	// Lock waiting is attributed to sync, and the last processor waits the
	// most.
	if res.Ground.PerProcSync[n-1] <= res.Ground.PerProcSync[0] {
		t.Error("lock wait not increasing with processor ID (FIFO model)")
	}
}

func TestFirstTouchDistributesHomes(t *testing.T) {
	p := buildSweep(t, 4, 16<<10, 1, false)
	res := run(t, p)
	// With block-distributed first touch, remote misses are rare in the
	// first sweep — every processor's pages are local. Verify via wall
	// time: compare with AllOnZero placement, which must be slower.
	p2 := buildSweep(t, 4, 16<<10, 1, false)
	p2.Placement = 2 // memdsm.AllOnZero
	res2 := run(t, p2)
	if res2.WallCycles <= res.WallCycles {
		t.Errorf("centralized placement (%g) not slower than first-touch (%g)", res2.WallCycles, res.WallCycles)
	}
}

func TestReportConsistency(t *testing.T) {
	res := run(t, buildSweep(t, 8, 32<<10, 3, true))
	if err := res.Report.Validate(); err != nil {
		t.Fatalf("report: %v", err)
	}
	tot := res.Report.Total()
	if tot[counters.L1DMisses] < tot[counters.L2Misses] {
		t.Error("more L2 than L1 misses")
	}
	// Cycles counter per proc equals wall (every processor runs the whole
	// time), up to per-region rounding.
	for pr, s := range res.Report.PerProc {
		if math.Abs(float64(s[counters.Cycles])-res.WallCycles) > 4 {
			t.Errorf("proc %d cycles = %d, wall = %g", pr, s[counters.Cycles], res.WallCycles)
		}
	}
	if res.Report.TouchedPages == 0 {
		t.Error("no pages touched")
	}
	// Ground-truth miss classes must sum to the measured L2 misses.
	g := res.Ground
	if g.Compulsory+g.Coherence+g.Conflict != tot[counters.L2Misses] {
		t.Errorf("miss classes %d+%d+%d != total %d", g.Compulsory, g.Coherence, g.Conflict, tot[counters.L2Misses])
	}
}

func TestRegionAttributionRecorded(t *testing.T) {
	res := run(t, buildSweep(t, 2, 4<<10, 5, false))
	if len(res.Ground.Regions) != 5 {
		t.Fatalf("regions = %d, want 5", len(res.Ground.Regions))
	}
	var sum float64
	for _, r := range res.Ground.Regions {
		if r.Name != "sweep" {
			t.Errorf("region name %q", r.Name)
		}
		sum += r.Busy + r.Sync + r.Imb
	}
	want := res.Ground.BusyCycles + res.Ground.SyncCycles + res.Ground.ImbCycles
	if math.Abs(sum-want) > 1e-6*want {
		t.Errorf("region attributions sum %g != totals %g", sum, want)
	}
}

func TestProgramValidation(t *testing.T) {
	c := cfg()
	if _, err := NewProgram("x", 0, 1, c.PageBytes); err == nil {
		t.Error("procs=0 accepted")
	}
	if _, err := NewProgram("x", 1, 0, c.PageBytes); err == nil {
		t.Error("size=0 accepted")
	}
	p, _ := NewProgram("x", 1, 1024, c.PageBytes)
	if _, err := Run(cfg(), p); err == nil {
		t.Error("empty program accepted")
	}
	bad := machine.Config{}
	p.AddRegion("r")
	if _, err := Run(bad, p); err == nil {
		t.Error("invalid machine accepted")
	}
}

func TestNegativeStrideSweep(t *testing.T) {
	c := cfg()
	p, _ := NewProgram("rev", 1, 1024, c.PageBytes)
	arr := p.MustAlloc("a", 1024)
	p.AddRegion("rev").Proc(0).Seq(arr.Base+1016, 128, -8, false, 1)
	res := run(t, p)
	lines := uint64(1024 / c.L2.LineBytes)
	if res.Ground.Compulsory != lines {
		t.Errorf("compulsory = %d, want %d", res.Ground.Compulsory, lines)
	}
}

func TestGatherAccesses(t *testing.T) {
	c := cfg()
	p, _ := NewProgram("gather", 1, 1024, c.PageBytes)
	arr := p.MustAlloc("a", 1024)
	addrs := []uint64{arr.Addr(0), arr.Addr(512), arr.Addr(16), arr.Addr(900)}
	p.AddRegion("g").Proc(0).Gather(addrs, false, 3)
	res := run(t, p)
	tot := res.Report.Total()
	wantLoads := uint64(len(addrs))
	if got := tot[counters.GradLoads]; got != wantLoads {
		t.Errorf("loads = %d, want %d", got, wantLoads)
	}
}

func TestStreamBuilderNoOps(t *testing.T) {
	var s Stream
	s.Compute(0)
	s.Seq(0, 0, 8, false, 1)
	s.Gather(nil, false, 1)
	if !s.Empty() {
		t.Fatal("zero-size ops were appended")
	}
}

func TestWallCyclesPositiveAndScales(t *testing.T) {
	// More data → more cycles, single proc.
	small := run(t, buildSweep(t, 1, 4<<10, 2, false))
	large := run(t, buildSweep(t, 1, 16<<10, 2, false))
	if large.WallCycles <= small.WallCycles {
		t.Error("larger dataset not slower")
	}
}

func TestTLBMissesCountedAndCharged(t *testing.T) {
	c := cfg()
	c.TLBEntries = 2
	c.Lat.TLBMiss = 50
	// Stream across many pages: every page transition misses the tiny TLB.
	size := uint64(16 * c.PageBytes)
	p, _ := NewProgram("tlb", 1, size, c.PageBytes)
	arr := p.MustAlloc("a", size)
	p.AddRegion("sweep").Proc(0).Read(arr.Base, size/8, 8, 1)
	res := run2(t, c, p)
	tot := res.Report.Total()
	if got := tot[counters.TLBMisses]; got != 16 {
		t.Fatalf("TLB misses = %d, want 16 (one per page)", got)
	}

	// Disabled TLB: zero misses, and the run is cheaper by misses × penalty.
	c2 := cfg()
	c2.TLBEntries = 0
	c2.Lat.TLBMiss = 50
	p2, _ := NewProgram("tlb", 1, size, c2.PageBytes)
	arr2 := p2.MustAlloc("a", size)
	p2.AddRegion("sweep").Proc(0).Read(arr2.Base, size/8, 8, 1)
	res2 := run2(t, c2, p2)
	if res2.Report.Total()[counters.TLBMisses] != 0 {
		t.Fatal("disabled TLB counted misses")
	}
	if diff := res.WallCycles - res2.WallCycles; math.Abs(diff-16*50) > 1e-6 {
		t.Fatalf("TLB cost = %g cycles, want %d", diff, 16*50)
	}
}

// run2 is run with an explicit machine configuration.
func run2(t *testing.T, c machine.Config, p *Program) *Result {
	t.Helper()
	res, err := Run(c, p)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestCoherenceInvariantAfterMerges checks the cross-cache invariant the
// directory must maintain: after every region, a line written by one
// processor is cached by no other processor.
func TestCoherenceInvariantAfterMerges(t *testing.T) {
	c := cfg()
	n := 4
	p, _ := NewProgram("coh", n, 4096, c.PageBytes)
	arr := p.MustAlloc("a", 1024)
	// Everyone reads everything; then each processor in turn rewrites the
	// whole block; interleave reads to create stale copies.
	all := p.AddRegion("read_all")
	for pr := 0; pr < n; pr++ {
		all.Proc(pr).Read(arr.Base, 128, 8, 1)
	}
	for w := 0; w < n; w++ {
		reg := p.AddRegion("rewrite")
		reg.Proc(w).Write(arr.Base, 128, 8, 1)
		reg.Proc((w+1)%n).Read(arr.Base+512, 64, 8, 1)
	}
	res := run(t, p)
	// The last writer is processor n-1 for the first 512 bytes; all other
	// caches must have been invalidated at the merges. We can't reach the
	// hierarchies from here, but the counters prove it: every reader after
	// a rewrite must re-miss, so coherence misses are substantial.
	if res.Ground.Coherence < 8 {
		t.Fatalf("coherence misses = %d; invalidations not flowing", res.Ground.Coherence)
	}
	if res.Ground.Invalidations < 8 {
		t.Fatalf("invalidations = %d", res.Ground.Invalidations)
	}
}

func TestRegionTraceAndSummary(t *testing.T) {
	res := run(t, buildSweep(t, 2, 4<<10, 3, false))
	var sb strings.Builder
	if err := res.WriteRegionTrace(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 1+3 { // header + 3 regions
		t.Fatalf("trace lines = %d:\n%s", len(lines), sb.String())
	}
	if !strings.HasPrefix(lines[0], "index,region,busy_cycles") {
		t.Fatalf("header = %q", lines[0])
	}
	sum := res.RegionSummary()
	if len(sum) != 1 || sum[0].Name != "sweep" {
		t.Fatalf("summary = %+v", sum)
	}
	wantBusy := res.Ground.BusyCycles
	if math.Abs(sum[0].Busy-wantBusy) > 1e-6*wantBusy {
		t.Fatalf("summary busy %g != total %g", sum[0].Busy, wantBusy)
	}
}

func TestMSIProtocolFiresStoreSharedOnPrivateData(t *testing.T) {
	c := cfg()
	c.Protocol = machine.MSI
	p, _ := NewProgram("msi", 1, 512, c.PageBytes)
	arr := p.MustAlloc("a", 512)
	reg := p.AddRegion("rw")
	reg.Proc(0).Read(arr.Base, 64, 8, 1)
	reg.Proc(0).Write(arr.Base, 64, 8, 1) // write-after-read on private data
	res := run2(t, c, p)
	tot := res.Report.Total()
	// Under MSI every first write to a read line upgrades: one event per
	// line. Under Illinois (the default) the same program fires none.
	wantLines := uint64(512 / c.L2.LineBytes)
	if got := tot[counters.StoreShared]; got != wantLines {
		t.Fatalf("MSI store-shared = %d, want %d", got, wantLines)
	}

	c2 := cfg()
	p2, _ := NewProgram("mesi", 1, 512, c2.PageBytes)
	arr2 := p2.MustAlloc("a", 512)
	reg2 := p2.AddRegion("rw")
	reg2.Proc(0).Read(arr2.Base, 64, 8, 1)
	reg2.Proc(0).Write(arr2.Base, 64, 8, 1)
	res2 := run2(t, c2, p2)
	if got := res2.Report.Total()[counters.StoreShared]; got != 0 {
		t.Fatalf("Illinois store-shared = %d, want 0 (silent E->M)", got)
	}
}

func TestSyncAddressesDistinct(t *testing.T) {
	c := cfg()
	p, _ := NewProgram("addr", 2, 1024, c.PageBytes)
	if p.BarrierAddr() == p.LockAddr() {
		t.Fatal("barrier and lock variables share an address")
	}
	// Both live in the reserved sync page, before any app allocation.
	arr := p.MustAlloc("a", 128)
	if arr.Base <= p.LockAddr() {
		t.Fatal("app allocation overlaps the sync page")
	}
}

func TestUniprocessorLockNoContention(t *testing.T) {
	c := cfg()
	p, _ := NewProgram("lock1", 1, 1024, c.PageBytes)
	p.AddRegion("cs").Proc(0).Critical(100)
	res := run(t, p)
	// One processor: lock cost but no queueing wait beyond it.
	wantCS := float64(c.Sync.LockInstr+100)*c.Cost.ComputeCPI + float64(c.Lat.SyncAcquire)
	if math.Abs(res.Ground.BusyCycles-wantCS) > 1e-9 {
		t.Fatalf("busy = %g, want %g", res.Ground.BusyCycles, wantCS)
	}
	if res.Report.Locks != 1 {
		t.Fatalf("locks = %d", res.Report.Locks)
	}
}

func TestSegmentReportUnknownAndKnown(t *testing.T) {
	res := run(t, buildSweep(t, 2, 4<<10, 3, false))
	if _, err := res.SegmentReport("nothing"); err == nil {
		t.Fatal("unknown segment accepted")
	}
	rep, err := res.SegmentReport("sweep")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Barriers != 3 {
		t.Fatalf("segment barriers = %d, want 3", rep.Barriers)
	}
	// The sweep segment is the whole program here: totals match.
	if rep.Total() != res.Report.Total() {
		t.Fatal("whole-program segment differs from the report")
	}
	if got := res.Segments(); len(got) != 1 || got[0] != "sweep" {
		t.Fatalf("Segments = %v", got)
	}
}
