package sim

import (
	"encoding/csv"
	"fmt"
	"io"
)

// WriteRegionTrace emits the run's region-by-region ground-truth timing as
// CSV: one row per barrier-delimited region with its cycle attribution
// (busy, synchronization, imbalance) summed over processors, plus running
// totals. This is the debugging view a programmer uses to find *which*
// phase of the application carries a bottleneck once the whole-run
// breakdown has named it.
//
// Region names come straight from user programs, so they are written through
// encoding/csv — a name containing commas, quotes, or newlines is quoted
// rather than splitting the row.
func (r *Result) WriteRegionTrace(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"index", "region", "busy_cycles", "sync_cycles", "imb_cycles", "region_total", "cumulative_total"}); err != nil {
		return err
	}
	var cum float64
	for i, reg := range r.Ground.Regions {
		total := reg.Busy + reg.Sync + reg.Imb
		cum += total
		row := []string{
			fmt.Sprint(i),
			reg.Name,
			fmt.Sprintf("%.0f", reg.Busy),
			fmt.Sprintf("%.0f", reg.Sync),
			fmt.Sprintf("%.0f", reg.Imb),
			fmt.Sprintf("%.0f", total),
			fmt.Sprintf("%.0f", cum),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// RegionSummary aggregates the trace by region name — the per-routine view
// speedshop gives, with the sync/imbalance attribution the paper's tools
// cannot separate.
func (r *Result) RegionSummary() []RegionAttribution {
	idx := map[string]int{}
	var out []RegionAttribution
	for _, reg := range r.Ground.Regions {
		i, ok := idx[reg.Name]
		if !ok {
			i = len(out)
			idx[reg.Name] = i
			out = append(out, RegionAttribution{Name: reg.Name})
		}
		out[i].Busy += reg.Busy
		out[i].Sync += reg.Sync
		out[i].Imb += reg.Imb
	}
	return out
}
