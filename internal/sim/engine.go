package sim

import (
	"context"
	"fmt"
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"

	"scaltool/internal/assert"
	"scaltool/internal/counters"
	"scaltool/internal/directory"
	"scaltool/internal/machine"
	"scaltool/internal/obs"
)

// engine holds the per-run bookkeeping of one simulation: the immutable
// inputs (cfg, prog), the pooled machine state (st), and the accumulators
// that escape into the Result. The machine state lives in runState so it can
// be recycled across runs; the accumulators are freshly allocated because
// the Result aliases them.
type engine struct {
	cfg  machine.Config
	prog *Program
	st   *runState
	beat func() // heartbeat from the context; nil when absent

	l2Shift   uint // log2(L2 line bytes) for addr→line
	pageShift uint // log2(page bytes) for addr→page

	perProc []counters.Set
	busy    []float64
	syncT   []float64
	imb     []float64

	wall         float64
	barrierCount uint64
	lockCount    uint64
	barrierCoh   uint64 // release-flag coherence misses injected at barriers
	regions      []RegionAttribution
	segCounters  []segRegion // per-region per-processor counter deltas (segment analysis)
}

// segRegion captures one region's counter deltas for segment-level reports.
type segRegion struct {
	name    string
	perProc []counters.Set
}

// Run executes a program on a machine and returns the counter report plus
// ground truth. The simulation is deterministic: the same (cfg, prog) pair
// always produces an identical Result, regardless of GOMAXPROCS.
func Run(cfg machine.Config, prog *Program) (*Result, error) {
	return RunContext(context.Background(), cfg, prog)
}

// RunContext is Run with cooperative cancellation. The engine checks the
// context at every barrier region boundary — the natural quiescent points —
// and additionally as each processor's stream starts inside a region. It
// returns the context's error, without a result, once it is canceled or its
// deadline passes; a canceled run NEVER returns a Result assembled from
// incompletely simulated streams, no matter where — including inside the
// final region — the cancellation lands. A run whose every stream completed
// wins the race and returns normally.
//
// An observer in ctx (internal/obs) gets a "sim.run" span plus the run's
// simulated-cycle and region counters; the per-access hot loop is never
// instrumented. A heartbeat in ctx (WithHeartbeat) fires at region
// boundaries and, inside a region, every heartbeatAccessInterval simulated
// accesses per lane — so even a program that is one enormous region keeps
// its supervisor's watchdog fed.
func RunContext(ctx context.Context, cfg machine.Config, prog *Program) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	ctx, span := obs.StartSpan(ctx, "sim.run",
		obs.A("prog", prog.Name), obs.A("procs", prog.Procs), obs.A("bytes", prog.DataBytes))
	defer span.End()
	// Acquire the pooled machine state first: it validates the page size
	// (returning an error for a bad PageBytes before log2 can assert on it).
	st, err := acquireRunState(&cfg, prog)
	if err != nil {
		return nil, err
	}
	defer releaseRunState(st)
	e := &engine{
		cfg:         cfg,
		prog:        prog,
		st:          st,
		beat:        heartbeatFrom(ctx),
		l2Shift:     log2(cfg.L2.LineBytes),
		pageShift:   log2(cfg.PageBytes),
		perProc:     make([]counters.Set, prog.Procs),
		busy:        make([]float64, prog.Procs),
		syncT:       make([]float64, prog.Procs),
		imb:         make([]float64, prog.Procs),
		regions:     make([]RegionAttribution, 0, len(prog.Regions())),
		segCounters: make([]segRegion, 0, len(prog.Regions())),
	}
	for p := 0; p < prog.Procs; p++ {
		st.lanes[p].bind(e, p)
	}
	// The coherence merge also feeds the heartbeat: a giant region's merge
	// walks hundreds of thousands of lines, and a watchdog must see progress
	// through it, not just through the lanes. releaseRunState clears the hook.
	st.dir.Progress = e.beat

	// The synchronization page is initialized by processor 0 before the
	// first parallel region (its barrier/lock variables are homed there).
	e.st.mem.HomeOf(prog.BarrierAddr(), 0)
	e.st.mem.HomeOf(prog.LockAddr(), 0)

	for i := range prog.Regions() {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("sim: run of %s stopped after %d of %d regions: %w",
				prog.Name, i, len(prog.Regions()), err)
		}
		if e.beat != nil {
			e.beat()
		}
		if err := e.runRegion(ctx, &prog.Regions()[i]); err != nil {
			// The region's parallel phase was cut short: some processor
			// streams never ran, so the engine's counters are incomplete.
			// Returning a Result built from them would silently under-count
			// every downstream estimate — return the cancellation instead.
			return nil, fmt.Errorf("sim: run of %s canceled inside region %d of %d (%s): %w",
				prog.Name, i+1, len(prog.Regions()), prog.Regions()[i].Name, err)
		}
	}
	res := e.result()
	if mt := obs.Meter(ctx); mt != nil {
		mt.Counter("scaltool_sim_runs_total", "simulated runs completed").Inc()
		mt.Counter("scaltool_sim_regions_total", "barrier regions simulated").Add(e.barrierCount)
		mt.Counter("scaltool_sim_cycles_total", "simulated wall cycles, summed over runs").Add(round(e.wall))
		mt.Histogram("scaltool_sim_run_cycles", "simulated wall cycles per run", obs.CycleBuckets).Observe(e.wall)
	}
	span.SetAttr("wall_cycles", res.WallCycles)
	span.SetAttr("regions", len(res.Ground.Regions))
	return res, nil
}

// log2 returns log2(v) for a positive power of two, asserting the
// precondition instead of silently flooring it: a flooring log2 fed a
// non-power-of-two line or page size would misalign every address→line
// mapping in the run and quietly corrupt the results. Callers validate
// sizes (machine.Validate, memdsm.NewMemory) before this can fire.
func log2(v int) uint {
	assert.True(v > 0 && v&(v-1) == 0, "sim: log2 of %d, which is not a positive power of two", v)
	return uint(bits.TrailingZeros(uint(v)))
}

// runRegion executes one barrier-delimited region. It returns the context's
// error when cancellation cut the region's parallel phase short — in that
// case some streams never ran and the engine's state must not be turned into
// a Result.
func (e *engine) runRegion(ctx context.Context, r *Region) error {
	// Phase 0 — page-home assignment, sequentially in processor order so
	// first-touch placement is deterministic (ties between processors that
	// both first-touch a page in this region go to the lower processor ID).
	for p := range r.Streams {
		e.assignHomes(p, &r.Streams[p])
	}

	// Phase 1 — per-processor lane simulation against the immutable
	// directory snapshot, on a bounded worker pool: min(procs, GOMAXPROCS)
	// workers pull lane indices from an atomic counter, so a 64-processor
	// region on a 4-core host runs 4 goroutines, not 64. Lanes only mutate
	// their own processor's state, so any lane-to-worker assignment gives
	// identical bytes. A worker that observes cancellation bails and flags
	// the region incomplete; the flag — not a later ctx.Err() check, which
	// a cancel-after-completion would trip spuriously — decides whether the
	// region's outputs are trustworthy.
	n := e.prog.Procs
	var incomplete atomic.Bool
	workers := n
	if mp := runtime.GOMAXPROCS(0); workers > mp {
		workers = mp
	}
	if workers <= 1 {
		for p := 0; p < n; p++ {
			if ctx.Err() != nil {
				incomplete.Store(true)
				break
			}
			e.st.lanes[p].run(&r.Streams[p])
		}
	} else {
		var next atomic.Int32
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					p := int(next.Add(1)) - 1
					if p >= n {
						return
					}
					if ctx.Err() != nil {
						incomplete.Store(true) // canceled mid-region: lane p never ran
						return
					}
					e.st.lanes[p].run(&r.Streams[p])
				}
			}()
		}
		wg.Wait()
	}
	if incomplete.Load() {
		err := ctx.Err()
		if err == nil {
			// Unreachable in practice (a worker only sets the flag after
			// seeing a non-nil ctx.Err()), but never report a corrupt region
			// as a clean cancellation.
			err = context.Canceled
		}
		return err
	}

	// Phase 2 — lock serialization: critical sections execute one at a
	// time; processor p waits out the critical sections of lower-numbered
	// processors (deterministic FIFO by processor ID). The wait is spin
	// time attributed to synchronization, matching speedshop's placement of
	// mp_lock_try() among the barrier-related routines.
	var csPrefix float64
	lockWait := e.st.lockWait
	for p := 0; p < n; p++ {
		lockWait[p] = 0
		if cs := e.st.lanes[p].out.cs; cs > 0 {
			lockWait[p] = csPrefix
			csPrefix += cs
		}
	}

	// Phase 3 — barrier. Every processor arrives, performs the barrier
	// entry work and the fetchop access to the barrier variable's home
	// (arrivals pipeline at the home: typically spread in time), then
	// spins until the last arrival. The release is the hot spot: every
	// waiter re-reads the released flag at its home, and those reads are
	// serviced serially — the term that makes barrier cost grow with the
	// processor count, independent of how skewed the arrivals were.
	bhome := e.st.mem.Home(e.prog.BarrierAddr())
	entryCycles := float64(e.cfg.Sync.BarrierInstr) * e.cfg.Cost.ComputeCPI

	arrival := e.st.arrival
	for p := 0; p < n; p++ {
		arrival[p] = e.st.lanes[p].out.work + lockWait[p]
	}
	fetchDone := e.st.fetchDone
	lastDone := 0.0
	for p := 0; p < n; p++ {
		fetchDone[p] = arrival[p] + entryCycles +
			float64(e.st.net.RoundTripCycles(p, bhome)+e.cfg.Lat.SyncAcquire)
		if fetchDone[p] > lastDone {
			lastDone = fetchDone[p]
		}
	}

	releaseLat := func(p int) float64 {
		if n == 1 {
			return 0 // the sole arriver releases itself; no flag miss
		}
		// Serialized flag service in processor order, plus the waiter's
		// own directory/network path.
		return float64((p+1)*e.cfg.Lat.SyncService + e.cfg.Lat.Directory + e.st.net.RoundTripCycles(p, bhome))
	}
	regionEnd := 0.0
	for p := 0; p < n; p++ {
		if end := lastDone + releaseLat(p); end > regionEnd {
			regionEnd = end
		}
	}

	segSets := make([]counters.Set, n)

	// Phase 4 — attribution and counters. Attribution follows speedshop
	// semantics: time waiting for the last arriver is load imbalance
	// (mp_slave_wait_for_work); everything from the last arrival to the
	// region end — entry work, fetchop serialization, release — is
	// synchronization (mp_barrier), as is lock waiting (mp_lock_try).
	maxArrival := arrival[0]
	for _, a := range arrival[1:n] {
		if a > maxArrival {
			maxArrival = a
		}
	}
	barrierDrain := regionEnd - maxArrival
	att := RegionAttribution{Name: r.Name, PerProc: make([]ProcPhases, n)}
	for p := 0; p < n; p++ {
		o := &e.st.lanes[p].out
		syncCycles := lockWait[p] + barrierDrain
		imbCycles := maxArrival - arrival[p]

		e.busy[p] += o.work
		e.syncT[p] += syncCycles
		e.imb[p] += imbCycles
		att.Busy += o.work
		att.Sync += syncCycles
		att.Imb += imbCycles
		att.PerProc[p] = ProcPhases{Busy: o.work, Sync: syncCycles, Imb: imbCycles}

		c := &segSets[p]
		c.Add(counters.Cycles, round(regionEnd))
		c.Add(counters.GradInstr, o.instr+uint64(e.cfg.Sync.BarrierInstr))
		c.Add(counters.GradLoads, o.loads)
		c.Add(counters.GradStores, o.stores+1) // the fetchop store
		c.Add(counters.L1DMisses, o.l1miss)
		c.Add(counters.L2Misses, o.l2miss)
		c.Add(counters.StoreShared, o.storeShared)
		c.Add(counters.TLBMisses, o.tlbMiss)
		if n > 1 {
			// The ntsync event: storing to the barrier line every other
			// processor also holds (§2.4.2), plus the release-flag reread,
			// which is a genuine coherence miss.
			c.Add(counters.StoreShared, 1)
			c.Add(counters.L1DMisses, 1)
			c.Add(counters.L2Misses, 1)
			c.Add(counters.GradLoads, 1)
			e.barrierCoh++
		}
		// Spin instructions: lock waits (sync bucket) and barrier waits
		// (imbalance bucket) both execute the spin loop.
		si, sl := e.spinOps(lockWait[p] + imbCycles)
		c.Add(counters.GradInstr, si)
		c.Add(counters.GradLoads, sl)
		e.perProc[p].Merge(*c)
		if o.storeShared > 0 && n == 1 && e.cfg.Protocol == machine.Illinois {
			// Under Illinois a sole processor always holds its data E/M;
			// a uniprocessor store-to-shared event is a simulator bug.
			assert.Failf("sim: store-to-shared event on a uniprocessor run")
		}
		e.lockCount += o.locks
	}
	e.barrierCount++
	e.wall += regionEnd
	e.regions = append(e.regions, att)
	e.segCounters = append(e.segCounters, segRegion{name: r.Name, perProc: segSets})

	// Phase 5 — coherence merge in processor order, then apply the
	// resulting invalidations and downgrades to the caches. A uniprocessor
	// run skips the phase outright: its lone lane records no read/write sets
	// (nothing to invalidate, nowhere), the merge could only produce empty
	// lists and zero counters, and the directory stays empty.
	if n > 1 {
		accesses := e.st.accesses[:0]
		for p := 0; p < n; p++ {
			o := &e.st.lanes[p].out
			if len(o.readFills) == 0 && len(o.writes) == 0 {
				continue
			}
			accesses = append(accesses, directory.RegionAccess{
				Proc:      p,
				ReadFills: o.readFills,
				Writes:    o.writes,
			})
		}
		e.st.accesses = accesses
		res := e.st.dir.Merge(accesses)
		// Applying the merge's invalidations and downgrades can itself be a
		// long silent walk; keep the watchdog fed here too.
		applied := 0
		for _, inv := range res.Invalidations {
			e.st.hiers[inv.Proc].InvalidateRemote(inv.Line)
			if applied++; applied >= heartbeatAccessInterval {
				applied = 0
				if e.beat != nil {
					e.beat()
				}
			}
		}
		for _, dg := range res.Downgrades {
			e.st.hiers[dg.Proc].DowngradeRemote(dg.Line)
			if applied++; applied >= heartbeatAccessInterval {
				applied = 0
				if e.beat != nil {
					e.beat()
				}
			}
		}
	}
	return nil
}

// spinOps converts a spin-wait duration into executed instructions/loads.
func (e *engine) spinOps(cycles float64) (instr, loads uint64) {
	if cycles <= 0 {
		return 0, 0
	}
	iterCost := float64(e.cfg.Sync.SpinLoopInstr) * e.cfg.Sync.SpinLoopCPI
	iters := uint64(cycles / iterCost)
	return iters * uint64(e.cfg.Sync.SpinLoopInstr), iters
}

func round(v float64) uint64 {
	if v <= 0 {
		return 0
	}
	return uint64(v + 0.5)
}

// assignHomes walks a stream's address footprint and assigns first-touch
// page homes, cheaply (page-granular, skipping already-assigned pages).
func (e *engine) assignHomes(p int, s *Stream) {
	page := uint64(e.cfg.PageBytes)
	lastPage := uint64(1<<64 - 1)
	touch := func(addr uint64) {
		pg := addr / page
		if pg == lastPage {
			return
		}
		lastPage = pg
		e.st.mem.HomeOf(addr, p)
	}
	for _, op := range s.Ops {
		switch op.Kind {
		case OpSeq:
			if abs := op.Stride; abs >= 0 && uint64(abs) <= page {
				// Dense or near-dense: touch the covered range page by page.
				end := op.Base + uint64(op.Count-1)*uint64(op.Stride)
				for a := op.Base &^ (page - 1); a <= end; a += page {
					touch(a)
				}
				touch(end)
			} else {
				a := int64(op.Base)
				for i := uint64(0); i < op.Count; i++ {
					touch(uint64(a))
					a += op.Stride
				}
			}
		case OpGather:
			for _, a := range op.Addrs {
				touch(a)
			}
		}
	}
}

// result assembles the final Result.
func (e *engine) result() *Result {
	n := e.prog.Procs
	res := &Result{
		MachineName: e.cfg.Name,
		Procs:       n,
		DataBytes:   e.prog.DataBytes,
		WallCycles:  e.wall,
	}
	res.Report = counters.RunReport{
		Machine:      e.cfg.Name,
		App:          e.prog.Name,
		Procs:        n,
		DataBytes:    e.prog.DataBytes,
		PerProc:      e.perProc,
		WallCycles:   round(e.wall),
		Barriers:     e.barrierCount,
		Locks:        e.lockCount,
		TouchedPages: e.st.mem.TouchedPages(),
		PageBytes:    e.cfg.PageBytes,
	}
	g := &res.Ground
	g.PerProcBusy = e.busy
	g.PerProcSync = e.syncT
	g.PerProcImb = e.imb
	for p := 0; p < n; p++ {
		g.BusyCycles += e.busy[p]
		g.SyncCycles += e.syncT[p]
		g.ImbCycles += e.imb[p]
		st := e.st.hiers[p].Stats()
		g.Compulsory += st.Compulsory
		g.Coherence += st.Coherence
		g.Conflict += st.Conflict
	}
	g.Coherence += e.barrierCoh
	g.SharingLines = e.st.dir.SharingLineEvents()
	g.Invalidations = e.st.dir.InvalidationsSent()
	g.Regions = e.regions
	res.segments = e.segCounters
	return res
}
