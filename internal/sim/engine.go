package sim

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"scaltool/internal/assert"
	"scaltool/internal/cache"
	"scaltool/internal/counters"
	"scaltool/internal/directory"
	"scaltool/internal/machine"
	"scaltool/internal/memdsm"
	"scaltool/internal/network"
	"scaltool/internal/obs"
)

// engine holds the machine state of one run.
type engine struct {
	cfg   machine.Config
	prog  *Program
	net   *network.Topology
	mem   *memdsm.Memory
	dir   *directory.Directory
	hiers []*cache.Hierarchy
	tlbs  []*memdsm.TLB

	l2Shift uint // log2(L2 line bytes) for addr→line

	perProc []counters.Set
	busy    []float64
	syncT   []float64
	imb     []float64

	wall         float64
	barrierCount uint64
	lockCount    uint64
	barrierCoh   uint64 // release-flag coherence misses injected at barriers
	regions      []RegionAttribution
	segCounters  []segRegion // per-region per-processor counter deltas (segment analysis)
}

// segRegion captures one region's counter deltas for segment-level reports.
type segRegion struct {
	name    string
	perProc []counters.Set
}

// Run executes a program on a machine and returns the counter report plus
// ground truth. The simulation is deterministic: the same (cfg, prog) pair
// always produces an identical Result, regardless of GOMAXPROCS.
func Run(cfg machine.Config, prog *Program) (*Result, error) {
	return RunContext(context.Background(), cfg, prog)
}

// RunContext is Run with cooperative cancellation. The engine checks the
// context at every barrier region boundary — the natural quiescent points —
// and additionally as each processor's stream starts inside a region. It
// returns the context's error, without a result, once it is canceled or its
// deadline passes; a canceled run NEVER returns a Result assembled from
// incompletely simulated streams, no matter where — including inside the
// final region — the cancellation lands. A run whose every stream completed
// wins the race and returns normally.
//
// An observer in ctx (internal/obs) gets a "sim.run" span plus the run's
// simulated-cycle and region counters; the per-access hot loop is never
// instrumented.
func RunContext(ctx context.Context, cfg machine.Config, prog *Program) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	ctx, span := obs.StartSpan(ctx, "sim.run",
		obs.A("prog", prog.Name), obs.A("procs", prog.Procs), obs.A("bytes", prog.DataBytes))
	defer span.End()
	net, err := network.New(prog.Procs, cfg.ProcsPerRouter, cfg.Lat.RouterHop)
	if err != nil {
		return nil, err
	}
	mem, err := memdsm.NewMemory(cfg.PageBytes, prog.Procs, prog.Placement)
	if err != nil {
		return nil, err
	}
	e := &engine{
		cfg:     cfg,
		prog:    prog,
		net:     net,
		mem:     mem,
		dir:     directory.New(prog.Procs),
		hiers:   make([]*cache.Hierarchy, prog.Procs),
		l2Shift: log2(cfg.L2.LineBytes),
		perProc: make([]counters.Set, prog.Procs),
		busy:    make([]float64, prog.Procs),
		syncT:   make([]float64, prog.Procs),
		imb:     make([]float64, prog.Procs),
	}
	e.tlbs = make([]*memdsm.TLB, prog.Procs)
	for p := range e.hiers {
		e.hiers[p] = cache.NewHierarchy(cfg)
		e.tlbs[p] = memdsm.NewTLB(cfg.TLBEntries)
	}

	// The synchronization page is initialized by processor 0 before the
	// first parallel region (its barrier/lock variables are homed there).
	e.mem.HomeOf(prog.BarrierAddr(), 0)
	e.mem.HomeOf(prog.LockAddr(), 0)

	beat := heartbeatFrom(ctx)
	for i := range prog.Regions() {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("sim: run of %s stopped after %d of %d regions: %w",
				prog.Name, i, len(prog.Regions()), err)
		}
		if beat != nil {
			beat()
		}
		if err := e.runRegion(ctx, &prog.Regions()[i]); err != nil {
			// The region's parallel phase was cut short: some processor
			// streams never ran, so the engine's counters are incomplete.
			// Returning a Result built from them would silently under-count
			// every downstream estimate — return the cancellation instead.
			return nil, fmt.Errorf("sim: run of %s canceled inside region %d of %d (%s): %w",
				prog.Name, i+1, len(prog.Regions()), prog.Regions()[i].Name, err)
		}
	}
	res := e.result()
	if mt := obs.Meter(ctx); mt != nil {
		mt.Counter("scaltool_sim_runs_total", "simulated runs completed").Inc()
		mt.Counter("scaltool_sim_regions_total", "barrier regions simulated").Add(e.barrierCount)
		mt.Counter("scaltool_sim_cycles_total", "simulated wall cycles, summed over runs").Add(round(e.wall))
		mt.Histogram("scaltool_sim_run_cycles", "simulated wall cycles per run", obs.CycleBuckets).Observe(e.wall)
	}
	span.SetAttr("wall_cycles", res.WallCycles)
	span.SetAttr("regions", len(res.Ground.Regions))
	return res, nil
}

func log2(v int) uint {
	s := uint(0)
	for 1<<(s+1) <= v {
		s++
	}
	return s
}

// runRegion executes one barrier-delimited region. It returns the context's
// error when cancellation cut the region's parallel phase short — in that
// case some streams never ran and the engine's state must not be turned into
// a Result.
func (e *engine) runRegion(ctx context.Context, r *Region) error {
	// Phase 0 — page-home assignment, sequentially in processor order so
	// first-touch placement is deterministic (ties between processors that
	// both first-touch a page in this region go to the lower processor ID).
	for p := range r.Streams {
		e.assignHomes(p, &r.Streams[p])
	}

	// Phase 1 — per-processor stream simulation against the immutable
	// directory snapshot, in parallel. A worker that observes cancellation
	// bails with a zero-value procOut and flags the region incomplete; the
	// flag — not a later ctx.Err() check, which a cancel-after-completion
	// would trip spuriously — decides whether the region's outputs are
	// trustworthy.
	outs := make([]procOut, e.prog.Procs)
	var incomplete atomic.Bool
	var wg sync.WaitGroup
	for p := 0; p < e.prog.Procs; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			if ctx.Err() != nil {
				incomplete.Store(true) // canceled mid-region: outs[p] stays zero
				return
			}
			outs[p] = e.simulateStream(p, &r.Streams[p])
		}(p)
	}
	wg.Wait()
	if incomplete.Load() {
		err := ctx.Err()
		if err == nil {
			// Unreachable in practice (a worker only sets the flag after
			// seeing a non-nil ctx.Err()), but never report a corrupt region
			// as a clean cancellation.
			err = context.Canceled
		}
		return err
	}

	// Phase 2 — lock serialization: critical sections execute one at a
	// time; processor p waits out the critical sections of lower-numbered
	// processors (deterministic FIFO by processor ID). The wait is spin
	// time attributed to synchronization, matching speedshop's placement of
	// mp_lock_try() among the barrier-related routines.
	var csPrefix float64
	lockWait := make([]float64, e.prog.Procs)
	for p := 0; p < e.prog.Procs; p++ {
		if outs[p].cs > 0 {
			lockWait[p] = csPrefix
			csPrefix += outs[p].cs
		}
	}

	// Phase 3 — barrier. Every processor arrives, performs the barrier
	// entry work and the fetchop access to the barrier variable's home
	// (arrivals pipeline at the home: typically spread in time), then
	// spins until the last arrival. The release is the hot spot: every
	// waiter re-reads the released flag at its home, and those reads are
	// serviced serially — the term that makes barrier cost grow with the
	// processor count, independent of how skewed the arrivals were.
	n := e.prog.Procs
	bhome := e.mem.Home(e.prog.BarrierAddr())
	entryCycles := float64(e.cfg.Sync.BarrierInstr) * e.cfg.Cost.ComputeCPI

	arrival := make([]float64, n)
	for p := range arrival {
		arrival[p] = outs[p].work + lockWait[p]
	}
	fetchDone := make([]float64, n)
	lastDone := 0.0
	for p := 0; p < n; p++ {
		fetchDone[p] = arrival[p] + entryCycles +
			float64(e.net.RoundTripCycles(p, bhome)+e.cfg.Lat.SyncAcquire)
		if fetchDone[p] > lastDone {
			lastDone = fetchDone[p]
		}
	}

	releaseLat := func(p int) float64 {
		if n == 1 {
			return 0 // the sole arriver releases itself; no flag miss
		}
		// Serialized flag service in processor order, plus the waiter's
		// own directory/network path.
		return float64((p+1)*e.cfg.Lat.SyncService + e.cfg.Lat.Directory + e.net.RoundTripCycles(p, bhome))
	}
	regionEnd := 0.0
	for p := 0; p < n; p++ {
		if end := lastDone + releaseLat(p); end > regionEnd {
			regionEnd = end
		}
	}

	segSets := make([]counters.Set, n)

	// Phase 4 — attribution and counters. Attribution follows speedshop
	// semantics: time waiting for the last arriver is load imbalance
	// (mp_slave_wait_for_work); everything from the last arrival to the
	// region end — entry work, fetchop serialization, release — is
	// synchronization (mp_barrier), as is lock waiting (mp_lock_try).
	maxArrival := arrival[0]
	for _, a := range arrival[1:] {
		if a > maxArrival {
			maxArrival = a
		}
	}
	barrierDrain := regionEnd - maxArrival
	att := RegionAttribution{Name: r.Name, PerProc: make([]ProcPhases, n)}
	for p := 0; p < n; p++ {
		o := &outs[p]
		syncCycles := lockWait[p] + barrierDrain
		imbCycles := maxArrival - arrival[p]

		e.busy[p] += o.work
		e.syncT[p] += syncCycles
		e.imb[p] += imbCycles
		att.Busy += o.work
		att.Sync += syncCycles
		att.Imb += imbCycles
		att.PerProc[p] = ProcPhases{Busy: o.work, Sync: syncCycles, Imb: imbCycles}

		c := &segSets[p]
		c.Add(counters.Cycles, round(regionEnd))
		c.Add(counters.GradInstr, o.instr+uint64(e.cfg.Sync.BarrierInstr))
		c.Add(counters.GradLoads, o.loads)
		c.Add(counters.GradStores, o.stores+1) // the fetchop store
		c.Add(counters.L1DMisses, o.l1miss)
		c.Add(counters.L2Misses, o.l2miss)
		c.Add(counters.StoreShared, o.storeShared)
		c.Add(counters.TLBMisses, o.tlbMiss)
		if n > 1 {
			// The ntsync event: storing to the barrier line every other
			// processor also holds (§2.4.2), plus the release-flag reread,
			// which is a genuine coherence miss.
			c.Add(counters.StoreShared, 1)
			c.Add(counters.L1DMisses, 1)
			c.Add(counters.L2Misses, 1)
			c.Add(counters.GradLoads, 1)
			e.barrierCoh++
		}
		// Spin instructions: lock waits (sync bucket) and barrier waits
		// (imbalance bucket) both execute the spin loop.
		si, sl := e.spinOps(lockWait[p] + imbCycles)
		c.Add(counters.GradInstr, si)
		c.Add(counters.GradLoads, sl)
		e.perProc[p].Merge(*c)
		if o.storeShared > 0 && n == 1 && e.cfg.Protocol == machine.Illinois {
			// Under Illinois a sole processor always holds its data E/M;
			// a uniprocessor store-to-shared event is a simulator bug.
			assert.Failf("sim: store-to-shared event on a uniprocessor run")
		}
		e.lockCount += o.locks
	}
	e.barrierCount++
	e.wall += regionEnd
	e.regions = append(e.regions, att)
	e.segCounters = append(e.segCounters, segRegion{name: r.Name, perProc: segSets})

	// Phase 5 — coherence merge in processor order, then apply the
	// resulting invalidations and downgrades to the caches.
	accesses := make([]directory.RegionAccess, 0, n)
	for p := 0; p < n; p++ {
		if len(outs[p].readFills) == 0 && len(outs[p].writes) == 0 {
			continue
		}
		accesses = append(accesses, directory.RegionAccess{
			Proc:      p,
			ReadFills: outs[p].readFills,
			Writes:    outs[p].writes,
		})
	}
	res := e.dir.Merge(accesses)
	for _, inv := range res.Invalidations {
		e.hiers[inv.Proc].InvalidateRemote(inv.Line)
	}
	for _, dg := range res.Downgrades {
		e.hiers[dg.Proc].DowngradeRemote(dg.Line)
	}
	return nil
}

// spinOps converts a spin-wait duration into executed instructions/loads.
func (e *engine) spinOps(cycles float64) (instr, loads uint64) {
	if cycles <= 0 {
		return 0, 0
	}
	iterCost := float64(e.cfg.Sync.SpinLoopInstr) * e.cfg.Sync.SpinLoopCPI
	iters := uint64(cycles / iterCost)
	return iters * uint64(e.cfg.Sync.SpinLoopInstr), iters
}

func round(v float64) uint64 {
	if v <= 0 {
		return 0
	}
	return uint64(v + 0.5)
}

// assignHomes walks a stream's address footprint and assigns first-touch
// page homes, cheaply (page-granular, skipping already-assigned pages).
func (e *engine) assignHomes(p int, s *Stream) {
	page := uint64(e.cfg.PageBytes)
	lastPage := uint64(1<<64 - 1)
	touch := func(addr uint64) {
		pg := addr / page
		if pg == lastPage {
			return
		}
		lastPage = pg
		e.mem.HomeOf(addr, p)
	}
	for _, op := range s.Ops {
		switch op.Kind {
		case OpSeq:
			if abs := op.Stride; abs >= 0 && uint64(abs) <= page {
				// Dense or near-dense: touch the covered range page by page.
				end := op.Base + uint64(op.Count-1)*uint64(op.Stride)
				for a := op.Base &^ (page - 1); a <= end; a += page {
					touch(a)
				}
				touch(end)
			} else {
				a := int64(op.Base)
				for i := uint64(0); i < op.Count; i++ {
					touch(uint64(a))
					a += op.Stride
				}
			}
		case OpGather:
			for _, a := range op.Addrs {
				touch(a)
			}
		}
	}
}

// procOut is the result of simulating one processor's stream for a region.
type procOut struct {
	work float64 // busy cycles (compute + memory stalls + own critical sections + upgrade transactions)
	cs   float64 // cycles spent inside critical sections (subset of work, used for serialization)

	instr, loads, stores        uint64
	l1miss, l2miss, storeShared uint64
	tlbMiss                     uint64
	locks                       uint64
	readFills, writes           []uint64 // sorted distinct L2 lines
}

// simulateStream runs one processor's ops through its cache hierarchy
// against the immutable directory snapshot. Safe to run concurrently across
// processors: it only reads e.dir/e.mem/e.net and mutates the processor's
// own hierarchy.
func (e *engine) simulateStream(p int, s *Stream) procOut {
	var o procOut
	if s.Empty() {
		return o
	}
	h := e.hiers[p]
	cfg := &e.cfg
	readFills := make(map[uint64]struct{})
	writes := make(map[uint64]struct{})

	var missLat float64 // set by fill for the in-flight miss
	fill := func(line uint64, write bool) cache.State {
		addr := line << e.l2Shift
		home := e.mem.Home(addr)
		if home < 0 {
			assert.Failf("sim: unhomed page for line %#x (pre-pass bug)", line)
		}
		info := e.dir.Probe(line)
		if info.Cached && info.Dirty && info.Owner != p {
			// 3-hop: requester→home, directory, home→owner forward,
			// owner's cache intervention, owner→requester data.
			missLat = float64(e.net.OneWayCycles(p, home) + cfg.Lat.Directory +
				e.net.OneWayCycles(home, info.Owner) + cfg.Lat.DirtyFwd +
				e.net.OneWayCycles(info.Owner, p))
		} else {
			missLat = float64(e.net.RoundTripCycles(p, home) + cfg.Lat.Directory + cfg.Lat.MemLocal)
		}
		if write {
			return cache.Modified
		}
		if e.cfg.Protocol == machine.MSI {
			return cache.Shared // no Exclusive state: every read fill is S
		}
		if !info.Cached || info.Sharers == 0 || (info.Owner == p && info.Sharers <= 1) {
			return cache.Exclusive
		}
		return cache.Shared
	}

	tlb := e.tlbs[p]
	pageShift := log2(cfg.PageBytes)
	var lastWriteLine = uint64(1<<64 - 1)
	access := func(addr uint64, write bool) {
		if !tlb.Access(addr >> pageShift) {
			o.work += float64(cfg.Lat.TLBMiss)
			o.tlbMiss++
		}
		out := h.Access(addr, write, fill)
		o.instr++
		if write {
			o.stores++
		} else {
			o.loads++
		}
		switch out.Level {
		case cache.HitL1:
			o.work += cfg.Cost.L1HitCPI
		case cache.HitL2:
			o.work += cfg.Cost.L1HitCPI + float64(cfg.Lat.L2Hit)
			o.l1miss++
		case cache.MissAll:
			o.work += cfg.Cost.L1HitCPI + float64(cfg.Lat.L2Hit) + missLat
			o.l1miss++
			o.l2miss++
			if !write {
				readFills[out.L2Line] = struct{}{}
			}
		}
		if out.StoreToShared {
			o.storeShared++
		}
		if out.UpgradeFromShared {
			// Ownership upgrade: round trip to the directory at the home.
			home := e.mem.Home(addr)
			o.work += float64(e.net.RoundTripCycles(p, home) + cfg.Lat.Directory)
		}
		if write && out.L2Line != lastWriteLine {
			writes[out.L2Line] = struct{}{}
			lastWriteLine = out.L2Line
		}
	}

	for _, op := range s.Ops {
		switch op.Kind {
		case OpCompute:
			o.instr += op.Instr
			o.work += float64(op.Instr) * cfg.Cost.ComputeCPI
		case OpSeq:
			addr := int64(op.Base)
			for i := uint64(0); i < op.Count; i++ {
				if op.InstrPer > 0 {
					o.instr += op.InstrPer
					o.work += float64(op.InstrPer) * cfg.Cost.ComputeCPI
				}
				access(uint64(addr), op.Write)
				addr += op.Stride
			}
		case OpGather:
			for _, a := range op.Addrs {
				if op.InstrPer > 0 {
					o.instr += op.InstrPer
					o.work += float64(op.InstrPer) * cfg.Cost.ComputeCPI
				}
				access(a, op.Write)
			}
		case OpCritical:
			lockHome := e.mem.Home(e.prog.LockAddr())
			cs := float64(cfg.Sync.LockInstr)*cfg.Cost.ComputeCPI +
				float64(op.Instr)*cfg.Cost.ComputeCPI +
				float64(e.net.RoundTripCycles(p, lockHome)+cfg.Lat.SyncAcquire)
			o.instr += uint64(cfg.Sync.LockInstr) + op.Instr
			o.stores++ // the lock fetchop
			if e.prog.Procs > 1 {
				o.storeShared++
			}
			o.work += cs
			o.cs += cs
			o.locks++
		}
	}

	o.readFills = sortedLines(readFills)
	o.writes = sortedLines(writes)
	return o
}

func sortedLines(m map[uint64]struct{}) []uint64 {
	if len(m) == 0 {
		return nil
	}
	out := make([]uint64, 0, len(m))
	for l := range m {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// result assembles the final Result.
func (e *engine) result() *Result {
	n := e.prog.Procs
	res := &Result{
		MachineName: e.cfg.Name,
		Procs:       n,
		DataBytes:   e.prog.DataBytes,
		WallCycles:  e.wall,
	}
	res.Report = counters.RunReport{
		Machine:      e.cfg.Name,
		App:          e.prog.Name,
		Procs:        n,
		DataBytes:    e.prog.DataBytes,
		PerProc:      e.perProc,
		WallCycles:   round(e.wall),
		Barriers:     e.barrierCount,
		Locks:        e.lockCount,
		TouchedPages: e.mem.TouchedPages(),
		PageBytes:    e.cfg.PageBytes,
	}
	g := &res.Ground
	g.PerProcBusy = e.busy
	g.PerProcSync = e.syncT
	g.PerProcImb = e.imb
	for p := 0; p < n; p++ {
		g.BusyCycles += e.busy[p]
		g.SyncCycles += e.syncT[p]
		g.ImbCycles += e.imb[p]
		st := e.hiers[p].Stats()
		g.Compulsory += st.Compulsory
		g.Coherence += st.Coherence
		g.Conflict += st.Conflict
	}
	g.Coherence += e.barrierCoh
	g.SharingLines = e.dir.SharingLineEvents()
	g.Invalidations = e.dir.InvalidationsSent()
	g.Regions = e.regions
	res.segments = e.segCounters
	return res
}
