package sim

// The pooled run arena. An uncached /v1/analyze request used to pay for a
// fresh directory, per-processor cache hierarchies, TLBs, page-home table
// and all the per-region scratch on every simulated run — roughly a million
// short-lived objects per request. runState gathers all of that mutable
// machine state behind one sync.Pool so a steady stream of runs reaches a
// zero-steady-state-allocation hot path: Get, Reset (cheap memclears over
// retained flat arrays), simulate, Put.
//
// Safety: the byte-identity gate (TestSimByteIdentity and the repeat-
// determinism test) holds a pooled, reused state to producing bit-identical
// Results to a freshly built one; every component exposes an explicit Reset
// that the tests exercise through this path.

import (
	"sync"

	"scaltool/internal/cache"
	"scaltool/internal/directory"
	"scaltool/internal/machine"
	"scaltool/internal/memdsm"
	"scaltool/internal/network"
)

// stateGeom is the part of a machine configuration that shapes the arena's
// structures. Two runs with the same stateGeom can share a pooled runState
// (after Reset) even if their latency/cost parameters or processor counts
// differ; a mismatch makes acquire build fresh structures instead.
type stateGeom struct {
	l1, l2     machine.CacheConfig
	pageBytes  int
	tlbEntries int
}

func geomOf(cfg *machine.Config) stateGeom {
	return stateGeom{l1: cfg.L1, l2: cfg.L2, pageBytes: cfg.PageBytes, tlbEntries: cfg.TLBEntries}
}

// runState is the reusable mutable machine state of one simulated run.
type runState struct {
	geom  stateGeom
	procs int // processors currently prepared (hiers/tlbs/lanes [0,procs) are reset)

	net   *network.Topology
	mem   *memdsm.Memory
	dir   *directory.Directory
	hiers []*cache.Hierarchy
	tlbs  []*memdsm.TLB
	// lanes are held by pointer: each lane's fill callback is a method
	// value bound to the lane's address, so lane structs must not move
	// when the slice grows.
	lanes []*lane

	// netKey caches the parameters the topology was built for.
	netProcs, netPPR, netHop int

	// Per-region scratch, sized to procs.
	lockWait, arrival, fetchDone []float64
	accesses                     []directory.RegionAccess
}

var runPool sync.Pool

// acquireRunState returns a runState prepared for (cfg, prog): structures
// matching the machine geometry, reset for prog.Procs processors, with the
// page-home table empty. The caller must releaseRunState it when the run
// finishes (on every path — a canceled run's state is fully cleared by the
// next acquire's Reset).
func acquireRunState(cfg *machine.Config, prog *Program) (*runState, error) {
	geom := geomOf(cfg)
	st, _ := runPool.Get().(*runState)
	if st == nil || st.geom != geom {
		st = &runState{geom: geom}
	}
	procs := prog.Procs

	if st.net == nil || st.netProcs != procs || st.netPPR != cfg.ProcsPerRouter || st.netHop != cfg.Lat.RouterHop {
		net, err := network.New(procs, cfg.ProcsPerRouter, cfg.Lat.RouterHop)
		if err != nil {
			return nil, err
		}
		st.net = net
		st.netProcs, st.netPPR, st.netHop = procs, cfg.ProcsPerRouter, cfg.Lat.RouterHop
	}

	if st.mem == nil {
		mem, err := memdsm.NewMemory(cfg.PageBytes, procs, prog.Placement)
		if err != nil {
			return nil, err
		}
		st.mem = mem
	} else if err := st.mem.Reset(procs, prog.Placement); err != nil {
		return nil, err
	}

	if st.dir == nil {
		st.dir = directory.New(procs)
	} else {
		st.dir.Reset(procs)
	}

	for len(st.hiers) < procs {
		st.hiers = append(st.hiers, cache.NewHierarchy(*cfg))
		st.tlbs = append(st.tlbs, memdsm.NewTLB(cfg.TLBEntries))
		st.lanes = append(st.lanes, &lane{})
	}
	for p := 0; p < procs; p++ {
		st.hiers[p].Reset()
		st.tlbs[p].Reset()
	}

	st.lockWait = growFloats(st.lockWait, procs)
	st.arrival = growFloats(st.arrival, procs)
	st.fetchDone = growFloats(st.fetchDone, procs)
	if cap(st.accesses) < procs {
		st.accesses = make([]directory.RegionAccess, 0, procs)
	}
	st.procs = procs
	return st, nil
}

// releaseRunState returns the state to the pool for the next run.
func releaseRunState(st *runState) {
	if st == nil {
		return
	}
	// Drop references into the finished run's directory buffers so pooled
	// memory does not pin lane line sets across runs, and unhook the run's
	// heartbeat so the pool does not keep a finished supervisor alive.
	st.accesses = st.accesses[:0]
	st.dir.Progress = nil
	runPool.Put(st)
}

func growFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}
