// Package faultinject deterministically injects realistic measurement
// faults into Scal-Tool's pipeline. Real hardware event counters are noisy
// (multiplexed sampling extrapolates), saturating (32-bit counters wrap),
// and occasionally absent (a counter slot never scheduled); real measurement
// runs fail transiently (node crash, scheduler kill) or hang; real report
// files arrive truncated or corrupt. A production campaign has to survive
// all of that, and a reproducible chaos test has to inject it on demand.
//
// Every decision the injector makes is a pure function of (Spec.Seed, run
// identity, attempt, processor, event): the same seed and spec produce
// byte-identical perturbed reports and identical retry traces regardless of
// worker count or scheduling.
package faultinject

import (
	"fmt"
	"math"

	"scaltool/internal/counters"
)

// Kind names one fault class.
type Kind string

// The fault kinds the injector can produce.
const (
	KindNoise     Kind = "noise"     // multiplexing estimation noise on a counter
	KindDrop      Kind = "drop"      // counter never scheduled: reads zero
	KindWrap      Kind = "wrap"      // 32-bit counter wraparound
	KindTransient Kind = "transient" // run attempt fails transiently
	KindHang      Kind = "hang"      // run attempt hangs past its deadline
	KindTruncate  Kind = "truncate"  // report file truncated mid-write
	KindCorrupt   Kind = "corrupt"   // report file byte-corrupted
	KindPoison    Kind = "poison"    // report made internally inconsistent (quarantine bait)
	KindSkew      Kind = "skew"      // mildly inconsistent counters (repairable)
	KindCrash     Kind = "crash"     // process dies before a journal append
	KindTorn      Kind = "torn"      // process dies mid-append (torn record)
	KindFsync     Kind = "fsync"     // journal fsync reports failure
)

// Fault records one injected fault, for tests that cross-check the health
// report against what was actually injected.
type Fault struct {
	Kind   Kind
	Run    string
	Detail string
}

// ErrTransient marks an injected failure the campaign may retry. Errors
// wrapping it satisfy errors.Is(err, ErrTransient).
var ErrTransient = fmt.Errorf("faultinject: transient run failure")

// Decision is the injector's verdict for one run attempt.
type Decision int

// Attempt outcomes.
const (
	OK        Decision = iota // attempt proceeds normally
	Transient                 // attempt fails with a retryable error
	Hang                      // attempt hangs until its deadline reaps it
)

// Injector applies a Spec deterministically.
type Injector struct {
	spec   Spec
	fail   map[string]bool
	stall  map[string]bool
	poison map[string]bool
	skew   map[string]bool
}

// New builds an injector for a spec. A nil *Injector is valid and injects
// nothing.
func New(spec Spec) *Injector {
	if spec.MaxFailures <= 0 {
		spec.MaxFailures = 1
	}
	return &Injector{
		spec:   spec,
		fail:   toSet(spec.FailRuns),
		stall:  toSet(spec.StallRuns),
		poison: toSet(spec.PoisonRuns),
		skew:   toSet(spec.SkewRuns),
	}
}

// Spec returns the injector's spec.
func (in *Injector) Spec() Spec { return in.spec }

func toSet(ids []string) map[string]bool {
	m := make(map[string]bool, len(ids))
	for _, id := range ids {
		m[id] = true
	}
	return m
}

// Outcome decides what happens to one attempt of one run. Targeted runs
// (FailRuns/StallRuns) fail on their first attempt only; probabilistic
// failures stop after MaxFailures attempts so bounded retry converges.
func (in *Injector) Outcome(run string, attempt int) Decision {
	if in == nil {
		return OK
	}
	if attempt == 0 {
		if in.fail[run] {
			return Transient
		}
		if in.stall[run] {
			return Hang
		}
	}
	if attempt < in.spec.MaxFailures {
		if in.prob(in.spec.Transient, hashString(run), uint64(attempt), 0x7a) {
			return Transient
		}
		if in.prob(in.spec.Hang, hashString(run), uint64(attempt), 0x7b) {
			return Hang
		}
	}
	return OK
}

// JournalDecision is the injector's verdict for one journal operation.
type JournalDecision int

// Journal operation outcomes. The journal layer (via the campaign's hook)
// maps them onto journal.Hook errors.
const (
	JournalOK       JournalDecision = iota // operation proceeds normally
	JournalCrash                           // process dies before the write
	JournalTorn                            // process dies mid-write: torn record
	JournalSyncFail                        // fsync reports failure (record not durable)
)

// JournalAppend decides the fate of the Nth journal append (1-based,
// campaign-wide). Crash points are exact counts, not probabilities, so a
// test can sweep every append of a campaign deterministically.
func (in *Injector) JournalAppend(n uint64) JournalDecision {
	if in == nil {
		return JournalOK
	}
	if in.spec.CrashAppend != 0 && n == in.spec.CrashAppend {
		return JournalCrash
	}
	if in.spec.TornAppend != 0 && n == in.spec.TornAppend {
		return JournalTorn
	}
	return JournalOK
}

// JournalSync decides the fate of the Nth journal fsync (1-based).
func (in *Injector) JournalSync(n uint64) JournalDecision {
	if in == nil || in.spec.FsyncFail == 0 || n != in.spec.FsyncFail {
		return JournalOK
	}
	return JournalSyncFail
}

// JournalTargets reports whether the spec injects any journal-level fault.
func (s Spec) JournalTargets() bool {
	return s.CrashAppend > 0 || s.TornAppend > 0 || s.FsyncFail > 0
}

// TargetedRuns returns every run identity the spec names, deduplicated —
// the set a resume validator checks against already-completed runs.
func (s Spec) TargetedRuns() []string {
	seen := map[string]bool{}
	var out []string
	for _, list := range [][]string{s.FailRuns, s.StallRuns, s.PoisonRuns, s.SkewRuns} {
		for _, id := range list {
			if !seen[id] {
				seen[id] = true
				out = append(out, id)
			}
		}
	}
	return out
}

// muxShareScale is the noise amplification of two-counter multiplexing: the
// R10000 exposes two physical counters, so each of the muxed events (all but
// cycles and graduated instructions, which perfex pins) is live for a 2/muxed
// share of the run and its extrapolation noise grows like sqrt(muxed/2).
func muxShareScale() float64 {
	muxed := float64(counters.NumEvents - 2)
	return math.Sqrt(muxed / 2)
}

// PerturbReport returns a perturbed copy of a run's counter report, plus
// the list of faults injected. The input report is never modified.
func (in *Injector) PerturbReport(run string, rep *counters.RunReport) (*counters.RunReport, []Fault) {
	out := *rep
	out.PerProc = append([]counters.Set(nil), rep.PerProc...)
	if in == nil {
		return &out, nil
	}
	var faults []Fault
	add := func(kind Kind, detail string) {
		faults = append(faults, Fault{Kind: kind, Run: run, Detail: detail})
	}

	relErr := in.spec.Noise * muxShareScale()
	for p := range out.PerProc {
		s := &out.PerProc[p]
		for e := 0; e < counters.NumEvents; e++ {
			ev := counters.Event(e)
			exact := ev == counters.Cycles || ev == counters.GradInstr
			v := s.Get(ev)
			// Multiplexing noise: muxed events only, scaled by sampling
			// share; pinned events are exact, as perfex reports them.
			if !exact && v != 0 && relErr > 0 {
				frac := in.signedFrac(hashString(run), uint64(p), uint64(e), 0x11) // [-1, 1]
				scaled := float64(v) * (1 + frac*relErr)
				if scaled < 0 {
					scaled = 0
				}
				nv := uint64(scaled + 0.5)
				if nv != v {
					s[ev] = nv
					add(KindNoise, fmt.Sprintf("proc %d %s: %d → %d", p, ev, v, nv))
					v = nv
				}
			}
			// 32-bit wraparound: only values that actually exceed the
			// counter width can wrap.
			if v >= 1<<32 && in.prob(in.spec.Wrap, hashString(run), uint64(p), uint64(e), 0x22) {
				s[ev] = v & (1<<32 - 1)
				add(KindWrap, fmt.Sprintf("proc %d %s: %d wrapped to %d", p, ev, v, s[ev]))
				v = s[ev]
			}
			// Dropped counter: the event's slot never got scheduled.
			if v != 0 && in.prob(in.spec.Drop, hashString(run), uint64(p), uint64(e), 0x33) {
				s[ev] = 0
				add(KindDrop, fmt.Sprintf("proc %d %s: dropped (was %d)", p, ev, v))
			}
		}
	}
	if in.skew[run] && len(out.PerProc) > 0 {
		s := &out.PerProc[0]
		l1 := s.Get(counters.L1DMisses)
		skewed := l1 + l1/20 + 1 // ~5% over the L1 misses: repairable
		s[counters.L2Misses] = skewed
		add(KindSkew, fmt.Sprintf("proc 0 l2_misses skewed above l1d_misses (%d > %d)", skewed, l1))
	}
	if in.poison[run] && len(out.PerProc) > 0 {
		out.PerProc[0][counters.GradInstr] = 0
		add(KindPoison, "proc 0 grad_instr zeroed: report made implausible")
	}
	return &out, faults
}

// MangleFile applies file-level faults (truncation, byte corruption) to a
// serialized report, keyed by the file name. The returned slice is a copy
// when a fault fires, the original otherwise.
func (in *Injector) MangleFile(name string, data []byte) ([]byte, []Fault) {
	if in == nil || len(data) < 2 {
		return data, nil
	}
	var faults []Fault
	if in.prob(in.spec.Truncate, hashString(name), 0x44) {
		full := len(data)
		cut := 1 + int(mix(in.spec.Seed, hashString(name), 0x45)%uint64(full-1))
		data = append([]byte(nil), data[:cut]...)
		faults = append(faults, Fault{Kind: KindTruncate, Run: name,
			Detail: fmt.Sprintf("truncated to %d of %d bytes", cut, full)}) //scalvet:ignore fires only with fault injection active, never in production
		return data, faults
	}
	if in.prob(in.spec.Corrupt, hashString(name), 0x46) {
		out := append([]byte(nil), data...)
		pos := int(mix(in.spec.Seed, hashString(name), 0x47) % uint64(len(out)))
		out[pos] = 0xFF // never valid in a JSON document
		faults = append(faults, Fault{Kind: KindCorrupt, Run: name,
			Detail: fmt.Sprintf("byte %d overwritten", pos)}) //scalvet:ignore fires only with fault injection active, never in production
		return out, faults
	}
	return data, nil
}

// prob draws a deterministic Bernoulli sample for a decision site.
func (in *Injector) prob(p float64, parts ...uint64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	h := mix(append([]uint64{in.spec.Seed}, parts...)...)
	return float64(h%1_000_000_007)/1_000_000_007 < p
}

// signedFrac draws a deterministic value in [-1, 1].
func (in *Injector) signedFrac(parts ...uint64) float64 {
	h := mix(append([]uint64{in.spec.Seed}, parts...)...)
	return float64(h%2_000_001)/1_000_000 - 1
}

// mix chains splitmix64 over the parts — the same construction the counters
// package uses for multiplexing jitter.
func mix(parts ...uint64) uint64 {
	x := uint64(0x9e3779b97f4a7c15)
	for _, p := range parts {
		x ^= p + 0x9e3779b97f4a7c15 + (x << 6) + (x >> 2)
		x = splitmix64(x)
	}
	return x
}

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// hashString is FNV-1a, fixing the run-identity hash independent of Go's
// randomized map hashing.
func hashString(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
