package faultinject

import (
	"bytes"
	"reflect"
	"sort"
	"testing"

	"scaltool/internal/counters"
)

// sampleReport builds a plausible multi-processor report with counters big
// enough for every fault kind (including 32-bit wraps) to have purchase.
func sampleReport() *counters.RunReport {
	r := &counters.RunReport{
		Machine: "scaled", App: "swim", Procs: 4, DataBytes: 1 << 20,
		PerProc: make([]counters.Set, 4), WallCycles: 6 << 32,
		Barriers: 40, Locks: 3, TouchedPages: 100, PageBytes: 4096,
	}
	for p := range r.PerProc {
		s := &r.PerProc[p]
		s.Add(counters.Cycles, 6<<32)
		s.Add(counters.GradInstr, 5<<32)
		s.Add(counters.GradLoads, 1<<32)
		s.Add(counters.GradStores, 1<<30)
		s.Add(counters.L1DMisses, 90_000_000)
		s.Add(counters.L2Misses, 10_000_000)
		s.Add(counters.StoreShared, 1_000_000+uint64(p))
	}
	return r
}

func reportBytes(t *testing.T, r *counters.RunReport) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestPerturbDeterministic is the robustness contract: same seed + spec ⇒
// byte-identical perturbed reports, independent of injector instance.
func TestPerturbDeterministic(t *testing.T) {
	spec := Spec{Seed: 99, Noise: 0.05, Drop: 0.1, Wrap: 0.3}
	a, _ := New(spec).PerturbReport("base_p04_s1048576", sampleReport())
	b, _ := New(spec).PerturbReport("base_p04_s1048576", sampleReport())
	if !bytes.Equal(reportBytes(t, a), reportBytes(t, b)) {
		t.Fatal("same seed+spec produced different perturbed reports")
	}
	c, _ := New(Spec{Seed: 100, Noise: 0.05, Drop: 0.1, Wrap: 0.3}).PerturbReport("base_p04_s1048576", sampleReport())
	if bytes.Equal(reportBytes(t, a), reportBytes(t, c)) {
		t.Fatal("different seeds produced identical perturbations (degenerate hashing)")
	}
}

func TestPerturbDoesNotMutateInput(t *testing.T) {
	orig := sampleReport()
	want := reportBytes(t, orig)
	New(Spec{Seed: 1, Noise: 0.5, Drop: 0.5, Wrap: 0.5, PoisonRuns: []string{"x"}, SkewRuns: []string{"x"}}).
		PerturbReport("x", orig)
	if !bytes.Equal(want, reportBytes(t, orig)) {
		t.Fatal("PerturbReport mutated its input report")
	}
}

func TestNilInjectorIsInert(t *testing.T) {
	var in *Injector
	if d := in.Outcome("r", 0); d != OK {
		t.Fatalf("nil injector Outcome = %v", d)
	}
	out, faults := in.PerturbReport("r", sampleReport())
	if len(faults) != 0 || !bytes.Equal(reportBytes(t, out), reportBytes(t, sampleReport())) {
		t.Fatal("nil injector perturbed a report")
	}
}

func TestOutcomeTargetedAndBounded(t *testing.T) {
	in := New(Spec{Seed: 5, FailRuns: []string{"a"}, StallRuns: []string{"b"}})
	if in.Outcome("a", 0) != Transient || in.Outcome("a", 1) != OK {
		t.Error("FailRuns must fail exactly the first attempt")
	}
	if in.Outcome("b", 0) != Hang || in.Outcome("b", 1) != OK {
		t.Error("StallRuns must hang exactly the first attempt")
	}
	if in.Outcome("c", 0) != OK {
		t.Error("untargeted run failed with no probabilistic faults")
	}
	// With transient=1 every attempt under MaxFailures fails, and the one
	// after is clean — bounded retry always converges.
	in = New(Spec{Seed: 5, Transient: 1, MaxFailures: 2})
	if in.Outcome("c", 0) != Transient || in.Outcome("c", 1) != Transient {
		t.Error("probabilistic transient did not fire below MaxFailures")
	}
	if in.Outcome("c", 2) != OK {
		t.Error("probabilistic transient fired at MaxFailures; retry cannot converge")
	}
	// The whole decision trace is deterministic.
	trace := func() []Decision {
		i := New(Spec{Seed: 7, Transient: 0.5, Hang: 0.3, MaxFailures: 3})
		var ds []Decision
		for _, run := range []string{"r1", "r2", "r3", "r4"} {
			for attempt := 0; attempt < 4; attempt++ {
				ds = append(ds, i.Outcome(run, attempt))
			}
		}
		return ds
	}
	if !reflect.DeepEqual(trace(), trace()) {
		t.Error("Outcome trace not deterministic for a fixed seed")
	}
}

func TestPerturbPoisonAndSkew(t *testing.T) {
	in := New(Spec{Seed: 3, PoisonRuns: []string{"p"}, SkewRuns: []string{"s"}})
	poisoned, faults := in.PerturbReport("p", sampleReport())
	if poisoned.PerProc[0][counters.GradInstr] != 0 {
		t.Error("poison did not zero proc 0 grad_instr")
	}
	if len(faults) != 1 || faults[0].Kind != KindPoison {
		t.Errorf("poison faults = %v", faults)
	}
	if err := poisoned.Validate(); err == nil {
		t.Error("poisoned report still validates; quarantine bait is broken")
	}
	skewed, faults := in.PerturbReport("s", sampleReport())
	s := skewed.PerProc[0]
	if s[counters.L2Misses] <= s[counters.L1DMisses] {
		t.Error("skew did not push L2 misses above L1 misses")
	}
	if float64(s[counters.L2Misses]) > 1.1*float64(s[counters.L1DMisses]) {
		t.Error("skew overshot the repairable band")
	}
	if len(faults) != 1 || faults[0].Kind != KindSkew {
		t.Errorf("skew faults = %v", faults)
	}
}

func TestWrapOnlyAffectsWideCounters(t *testing.T) {
	rep := sampleReport()
	for p := range rep.PerProc {
		rep.PerProc[p][counters.Cycles] = 1000 // below 2^32: cannot wrap
	}
	rep.WallCycles = 1000
	out, faults := New(Spec{Seed: 1, Wrap: 1}).PerturbReport("w", rep)
	for _, f := range faults {
		if f.Kind == KindWrap && out.PerProc[0][counters.Cycles] != 1000 {
			t.Fatalf("narrow counter wrapped: %v", f)
		}
	}
	for p := range out.PerProc {
		if got := out.PerProc[p][counters.GradInstr]; got != (5<<32)&(1<<32-1) {
			t.Fatalf("proc %d grad_instr = %d, want wrapped value", p, got)
		}
	}
}

func TestMangleFileDeterministic(t *testing.T) {
	data := bytes.Repeat([]byte(`{"k":"v"}`), 100)
	in := New(Spec{Seed: 11, Truncate: 1})
	a, fa := in.MangleFile("base_p01_s64.json", data)
	b, fb := in.MangleFile("base_p01_s64.json", data)
	if !bytes.Equal(a, b) || !reflect.DeepEqual(fa, fb) {
		t.Fatal("MangleFile not deterministic")
	}
	if len(a) >= len(data) || len(fa) != 1 || fa[0].Kind != KindTruncate {
		t.Fatalf("truncation did not fire: %d bytes, faults %v", len(a), fa)
	}
	c, fc := New(Spec{Seed: 11, Corrupt: 1}).MangleFile("x.json", data)
	if len(c) != len(data) || bytes.Equal(c, data) || len(fc) != 1 || fc[0].Kind != KindCorrupt {
		t.Fatalf("corruption did not fire: faults %v", fc)
	}
	if !bytes.Equal(data, bytes.Repeat([]byte(`{"k":"v"}`), 100)) {
		t.Fatal("MangleFile mutated its input")
	}
}

func TestSpecParseRoundTrip(t *testing.T) {
	text := "seed=42,noise=0.02,transient=0.1,maxfail=2,failrun=base_p04_s1048576,poisonrun=uni_p01_s512"
	spec, err := ParseSpec(text)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Seed != 42 || spec.Noise != 0.02 || spec.Transient != 0.1 || spec.MaxFailures != 2 {
		t.Fatalf("parsed spec %+v", spec)
	}
	if !reflect.DeepEqual(spec.FailRuns, []string{"base_p04_s1048576"}) ||
		!reflect.DeepEqual(spec.PoisonRuns, []string{"uni_p01_s512"}) {
		t.Fatalf("targeted runs %+v", spec)
	}
	again, err := ParseSpec(spec.String())
	if err != nil {
		t.Fatalf("re-parsing %q: %v", spec.String(), err)
	}
	if !reflect.DeepEqual(spec, again) {
		t.Fatalf("round trip changed the spec:\n  %+v\n  %+v", spec, again)
	}
	if !spec.Active() {
		t.Error("non-empty spec reported inactive")
	}
	var zero Spec
	if zero.Active() {
		t.Error("zero spec reported active")
	}
}

func TestSpecParseErrors(t *testing.T) {
	for _, bad := range []string{
		"nonsense",
		"noise=2",
		"noise=-0.1",
		"seed=abc",
		"maxfail=-1",
		"unknown=1",
		"failrun=",
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted", bad)
		}
	}
	if s, err := ParseSpec("  "); err != nil || s.Active() {
		t.Errorf("blank spec: %+v, %v", s, err)
	}
}

// TestSpecParseJournalKeys covers the durability fault keys: parse, render,
// round-trip, and the Active/JournalTargets/TargetedRuns views the journal
// hook and the resume pre-flight rely on.
func TestSpecParseJournalKeys(t *testing.T) {
	spec, err := ParseSpec("seed=9,crashappend=3,tornappend=7,fsyncfail=11,failrun=a,stallrun=b")
	if err != nil {
		t.Fatal(err)
	}
	if spec.CrashAppend != 3 || spec.TornAppend != 7 || spec.FsyncFail != 11 {
		t.Fatalf("parsed journal counts %+v", spec)
	}
	if !spec.Active() || !spec.JournalTargets() {
		t.Fatalf("journal-fault spec reported inactive: %+v", spec)
	}
	targets := spec.TargetedRuns()
	sort.Strings(targets)
	if !reflect.DeepEqual(targets, []string{"a", "b"}) {
		t.Fatalf("TargetedRuns = %v", targets)
	}
	again, err := ParseSpec(spec.String())
	if err != nil {
		t.Fatalf("re-parsing %q: %v", spec.String(), err)
	}
	if !reflect.DeepEqual(spec, again) {
		t.Fatalf("journal keys round trip changed the spec:\n  %+v\n  %+v", spec, again)
	}
	for _, one := range []Spec{{CrashAppend: 1}, {TornAppend: 1}, {FsyncFail: 1}} {
		if !one.Active() || !one.JournalTargets() {
			t.Errorf("spec %+v must be active and journal-targeting", one)
		}
	}
	if (Spec{Seed: 1}).JournalTargets() {
		t.Error("seed-only spec claims journal targets")
	}
	for _, bad := range []string{"crashappend=-1", "tornappend=x", "fsyncfail=1.5"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted", bad)
		}
	}
}
