package faultinject

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Spec declares which faults to inject and at what rates. The zero Spec
// injects nothing. Probabilistic fields are per-decision-site probabilities
// in [0, 1]; targeted fields name exact run identities (campaign.RunID
// strings) and fire deterministically on the run's first attempt.
type Spec struct {
	// Seed drives every random decision; same seed + spec → identical
	// faults, byte for byte.
	Seed uint64

	// Noise is the relative multiplexing-estimation error applied to each
	// muxed counter (everything but cycles and graduated instructions),
	// before scaling by the two-counter sampling share.
	Noise float64
	// Drop is the per-counter probability that an event's slot was never
	// scheduled and the counter reads zero.
	Drop float64
	// Wrap is the per-counter probability that a value ≥ 2^32 is reported
	// modulo 2^32 (a saturated 32-bit hardware counter).
	Wrap float64
	// Transient is the per-attempt probability a run fails retryably.
	Transient float64
	// Hang is the per-attempt probability a run hangs until its deadline.
	Hang float64
	// Truncate and Corrupt are per-file probabilities for report files.
	Truncate float64
	Corrupt  float64

	// MaxFailures caps how many consecutive attempts of one run the
	// probabilistic Transient/Hang faults may kill, so a bounded retry
	// policy always converges (default 1).
	MaxFailures int

	// Durability faults, for the write-ahead journal (internal/journal).
	// Append and sync counts are 1-based and campaign-wide, so a sweep over
	// CrashAppend = 1..N kills the campaign at every journal write — the
	// crash-recovery invariant test. 0 disables each.

	// CrashAppend kills the process model cleanly before the Nth journal
	// append: the record never reaches the file.
	CrashAppend uint64
	// TornAppend kills it midway through the Nth append: half the record's
	// frame lands on disk (a torn write the journal must truncate on open).
	TornAppend uint64
	// FsyncFail makes the Nth journal fsync report failure: the record is
	// in the page cache but has no durability guarantee.
	FsyncFail uint64

	// Targeted faults, by run identity.
	FailRuns   []string // fail transiently on the first attempt
	StallRuns  []string // hang on the first attempt
	PoisonRuns []string // report made implausible (forces quarantine)
	SkewRuns   []string // counters mildly inconsistent (repairable)
}

// specFloatKeys maps spec-string keys to Spec float fields.
func (s *Spec) floatFields() map[string]*float64 {
	return map[string]*float64{
		"noise": &s.Noise, "drop": &s.Drop, "wrap": &s.Wrap,
		"transient": &s.Transient, "hang": &s.Hang,
		"truncate": &s.Truncate, "corrupt": &s.Corrupt,
	}
}

func (s *Spec) listFields() map[string]*[]string {
	return map[string]*[]string{
		"failrun": &s.FailRuns, "stallrun": &s.StallRuns,
		"poisonrun": &s.PoisonRuns, "skewrun": &s.SkewRuns,
	}
}

// ParseSpec parses the -fault-spec flag syntax: comma-separated key=value
// pairs, e.g.
//
//	seed=42,noise=0.02,transient=0.1,maxfail=2,failrun=base_p04_s1048576
//
// Keys: seed, maxfail (integers); noise, drop, wrap, transient, hang,
// truncate, corrupt (probabilities in [0,1]); crashappend, tornappend,
// fsyncfail (1-based journal operation counts); failrun, stallrun,
// poisonrun, skewrun (run identities, repeatable).
func ParseSpec(text string) (Spec, error) {
	var s Spec
	text = strings.TrimSpace(text)
	if text == "" {
		return s, nil
	}
	for _, part := range strings.Split(text, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		k, v, ok := strings.Cut(part, "=")
		if !ok {
			return s, fmt.Errorf("faultinject: spec entry %q is not key=value", part)
		}
		k, v = strings.TrimSpace(k), strings.TrimSpace(v)
		switch k {
		case "seed":
			n, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				return s, fmt.Errorf("faultinject: seed %q: %w", v, err)
			}
			s.Seed = n
		case "maxfail":
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				return s, fmt.Errorf("faultinject: maxfail %q must be a non-negative integer", v)
			}
			s.MaxFailures = n
		case "crashappend", "tornappend", "fsyncfail":
			n, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				return s, fmt.Errorf("faultinject: %s %q must be a non-negative integer", k, v)
			}
			switch k {
			case "crashappend":
				s.CrashAppend = n
			case "tornappend":
				s.TornAppend = n
			case "fsyncfail":
				s.FsyncFail = n
			}
		default:
			if fp, ok := s.floatFields()[k]; ok {
				f, err := strconv.ParseFloat(v, 64)
				if err != nil || f < 0 || f > 1 {
					return s, fmt.Errorf("faultinject: %s %q must be a probability in [0,1]", k, v)
				}
				*fp = f
				continue
			}
			if lp, ok := s.listFields()[k]; ok {
				if v == "" {
					return s, fmt.Errorf("faultinject: %s needs a run identity", k)
				}
				*lp = append(*lp, v)
				continue
			}
			return s, fmt.Errorf("faultinject: unknown spec key %q", k)
		}
	}
	return s, nil
}

// String renders the spec back into ParseSpec syntax (canonical order, so
// two equal specs print identically).
func (s Spec) String() string {
	var parts []string
	if s.Seed != 0 {
		parts = append(parts, fmt.Sprintf("seed=%d", s.Seed))
	}
	floats := s.floatFields()
	keys := make([]string, 0, len(floats))
	for k := range floats {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if v := *floats[k]; v > 0 {
			parts = append(parts, fmt.Sprintf("%s=%g", k, v))
		}
	}
	if s.MaxFailures > 0 {
		parts = append(parts, fmt.Sprintf("maxfail=%d", s.MaxFailures))
	}
	for _, c := range []struct {
		key string
		n   uint64
	}{{"crashappend", s.CrashAppend}, {"tornappend", s.TornAppend}, {"fsyncfail", s.FsyncFail}} {
		if c.n > 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", c.key, c.n))
		}
	}
	lists := s.listFields()
	lkeys := make([]string, 0, len(lists))
	for k := range lists {
		lkeys = append(lkeys, k)
	}
	sort.Strings(lkeys)
	for _, k := range lkeys {
		for _, id := range *lists[k] {
			parts = append(parts, fmt.Sprintf("%s=%s", k, id))
		}
	}
	return strings.Join(parts, ",")
}

// Active reports whether the spec injects anything at all.
func (s Spec) Active() bool {
	for _, f := range []float64{s.Noise, s.Drop, s.Wrap, s.Transient, s.Hang, s.Truncate, s.Corrupt} {
		if f > 0 {
			return true
		}
	}
	if s.CrashAppend > 0 || s.TornAppend > 0 || s.FsyncFail > 0 {
		return true
	}
	return len(s.FailRuns)+len(s.StallRuns)+len(s.PoisonRuns)+len(s.SkewRuns) > 0
}
