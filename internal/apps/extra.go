package apps

import (
	"fmt"

	"scaltool/internal/machine"
	"scaltool/internal/sim"
)

// The extra demo applications used by the examples — not part of the
// paper's evaluation, but registered so the tool and the custom-app example
// have realistic material beyond the three paper workloads.

// Matmul is a blocked dense matrix multiply C = A·B with rows of C block-
// distributed: every processor reads all of B (read-shared), its rows of A,
// and writes its rows of C.
type Matmul struct {
	// Block is the tile edge in elements.
	Block uint64
}

// NewMatmul returns the app with a 16-element tile.
func NewMatmul() *Matmul { return &Matmul{Block: 16} }

// Name implements App.
func (a *Matmul) Name() string { return "matmul" }

// Description implements App.
func (a *Matmul) Description() string { return "blocked dense matrix multiply (demo app)" }

// ParallelModel implements App.
func (a *Matmul) ParallelModel() string { return "MP" }

// DefaultBytes implements App.
func (a *Matmul) DefaultBytes(cfg machine.Config) uint64 {
	return 3 * uint64(cfg.L2.SizeBytes)
}

// Build implements App.
func (a *Matmul) Build(cfg machine.Config, procs int, dataBytes uint64) (*sim.Program, error) {
	n := isqrt(dataBytes / (3 * ElemBytes))
	if n < a.Block {
		return nil, fmt.Errorf("matmul: size %d too small for %d-wide tiles", dataBytes, a.Block)
	}
	n -= n % a.Block
	elems := n * n
	prog, err := sim.NewProgram("matmul", procs, 3*elems*ElemBytes, cfg.PageBytes)
	if err != nil {
		return nil, err
	}
	am := prog.MustAlloc("A", elems*ElemBytes).Base
	bm := prog.MustAlloc("B", elems*ElemBytes).Base
	cm := prog.MustAlloc("C", elems*ElemBytes).Base

	rows := BlockPartition(n, procs)
	init := prog.AddRegion("init")
	for pr := 0; pr < procs; pr++ {
		st := init.Proc(pr)
		rowRange := Range{Start: rows[pr].Start * n, Count: rows[pr].Count * n}
		sweep(st, am, rowRange, true, 1)
		sweep(st, bm, rowRange, true, 1)
		sweep(st, cm, rowRange, true, 1)
	}

	// One region per block-column pass: each processor multiplies its row
	// band of A by a tile column of B into C — B tiles are read-shared.
	for jb := uint64(0); jb < n; jb += a.Block {
		reg := prog.AddRegion("gemm_pass")
		for pr := 0; pr < procs; pr++ {
			st := reg.Proc(pr)
			band := Range{Start: rows[pr].Start * n, Count: rows[pr].Count * n}
			sweep(st, am, band, false, 2)
			sweep(st, bm, Range{Start: jb * n, Count: a.Block * n}, false, 2)
			sweep(st, cm, Range{Start: rows[pr].Start*n + jb, Count: rows[pr].Count * a.Block}, true, 2)
		}
	}
	return prog, nil
}

// Spmv is a sparse matrix-vector product with an irregular column pattern —
// gather-dominated, cache-unfriendly, included to exercise OpGather.
type Spmv struct {
	// NnzPerRow is the average nonzeros per row.
	NnzPerRow uint64
	// Iters is the number of y = A·x products.
	Iters int
}

// NewSpmv returns the app with 8 nonzeros/row and 4 iterations.
func NewSpmv() *Spmv { return &Spmv{NnzPerRow: 8, Iters: 4} }

// Name implements App.
func (a *Spmv) Name() string { return "spmv" }

// Description implements App.
func (a *Spmv) Description() string {
	return "sparse matrix-vector product, irregular gathers (demo app)"
}

// ParallelModel implements App.
func (a *Spmv) ParallelModel() string { return "MP" }

// DefaultBytes implements App.
func (a *Spmv) DefaultBytes(cfg machine.Config) uint64 {
	return 4 * uint64(cfg.L2.SizeBytes)
}

// Build implements App.
func (a *Spmv) Build(cfg machine.Config, procs int, dataBytes uint64) (*sim.Program, error) {
	// Layout: values (nnz), x (rows), y (rows); nnz = NnzPerRow × rows.
	perRow := a.NnzPerRow
	rowsTotal := dataBytes / (ElemBytes * (perRow + 2))
	if rowsTotal < uint64(procs) || rowsTotal < 16 {
		return nil, fmt.Errorf("spmv: size %d too small", dataBytes)
	}
	nnz := rowsTotal * perRow
	prog, err := sim.NewProgram("spmv", procs, (nnz+2*rowsTotal)*ElemBytes, cfg.PageBytes)
	if err != nil {
		return nil, err
	}
	vals := prog.MustAlloc("vals", nnz*ElemBytes).Base
	x := prog.MustAlloc("x", rowsTotal*ElemBytes).Base
	y := prog.MustAlloc("y", rowsTotal*ElemBytes).Base

	parts := BlockPartitionAligned(rowsTotal, procs, uint64(cfg.L2.LineBytes)/ElemBytes)
	init := prog.AddRegion("init")
	for pr := 0; pr < procs; pr++ {
		st := init.Proc(pr)
		sweep(st, vals, Range{Start: parts[pr].Start * perRow, Count: parts[pr].Count * perRow}, true, 1)
		sweep(st, x, parts[pr], true, 1)
		sweep(st, y, parts[pr], true, 1)
	}

	for it := 0; it < a.Iters; it++ {
		reg := prog.AddRegion("spmv_pass")
		for pr := 0; pr < procs; pr++ {
			st := reg.Proc(pr)
			own := parts[pr]
			sweep(st, vals, Range{Start: own.Start * perRow, Count: own.Count * perRow}, false, 2)
			// Gather x at a deterministic pseudo-random column per nonzero.
			gathers := make([]uint64, 0, own.Count*perRow)
			h := own.Start*2654435761 + uint64(it)*40503
			for i := uint64(0); i < own.Count*perRow; i++ {
				h = h*6364136223846793005 + 1442695040888963407
				col := (h >> 33) % rowsTotal
				gathers = append(gathers, x+col*ElemBytes)
			}
			st.Gather(gathers, false, 2)
			sweep(st, y, own, true, 2)
		}
	}
	return prog, nil
}

func init() {
	register(NewMatmul())
	register(NewSpmv())
}
