package apps

import (
	"strings"
	"testing"

	"scaltool/internal/sim"
)

// Structural tests: the region composition of each paper app must match its
// documented design (these catch silent generator regressions that the
// behavioural tests might absorb into "shape drift").

func regionNames(p *sim.Program) map[string]int {
	out := map[string]int{}
	for _, r := range p.Regions() {
		out[r.Name]++
	}
	return out
}

func TestT3dheatRegionStructure(t *testing.T) {
	c := cfg()
	app := NewT3dheat()
	procs := 8
	prog, err := app.Build(c, procs, app.DefaultBytes(c))
	if err != nil {
		t.Fatal(err)
	}
	names := regionNames(prog)
	it := app.Params.Iters
	if names["init"] != 1 {
		t.Errorf("init regions = %d", names["init"])
	}
	for _, r := range []string{"matvec", "dot_pq", "axpy_x", "axpy_r", "dot_rr", "update_p"} {
		if names[r] != it {
			t.Errorf("%s regions = %d, want %d (one per iteration)", r, names[r], it)
		}
	}
	// Tree reductions: log2(procs) steps per dot product per iteration.
	logP := 0
	for 1<<uint(logP+1) <= procs {
		logP++
	}
	if names["reduce_pq"] != it*logP || names["reduce_rr"] != it*logP {
		t.Errorf("reduce regions = %d/%d, want %d each", names["reduce_pq"], names["reduce_rr"], it*logP)
	}
	if names["pcf_barrier"] != it*app.Params.ExtraBarriers {
		t.Errorf("pcf_barrier regions = %d, want %d", names["pcf_barrier"], it*app.Params.ExtraBarriers)
	}
	// Five arrays plus partials and the sync page.
	if got := prog.SpaceBytes(); got < 5*prog.DataBytes/t3dArrays {
		t.Errorf("address space %d too small for 5 arrays", got)
	}
}

func TestHydro2dRegionStructure(t *testing.T) {
	c := cfg()
	app := NewHydro2d()
	prog, err := app.Build(c, 4, app.DefaultBytes(c))
	if err != nil {
		t.Fatal(err)
	}
	names := regionNames(prog)
	pm := app.Params
	if names["serial_filter"] != pm.Steps {
		t.Errorf("serial_filter regions = %d, want %d", names["serial_filter"], pm.Steps)
	}
	if names["doacross_sweep"] != pm.Steps*pm.Sweeps {
		t.Errorf("doacross regions = %d, want %d", names["doacross_sweep"], pm.Steps*pm.Sweeps)
	}
	// The serial sections run on processor 0 only.
	for _, r := range prog.Regions() {
		if r.Name != "serial_filter" {
			continue
		}
		if r.Streams[0].Empty() {
			t.Error("serial section empty on processor 0")
		}
		for pr := 1; pr < 4; pr++ {
			if !r.Streams[pr].Empty() {
				t.Errorf("serial section has work on processor %d", pr)
			}
		}
	}
}

func TestHydro2dSerialFracZero(t *testing.T) {
	c := cfg()
	app := NewHydro2d()
	app.Params.SerialFrac = 0
	prog, err := app.Build(c, 4, app.DefaultBytes(c))
	if err != nil {
		t.Fatal(err)
	}
	if n := regionNames(prog)["serial_filter"]; n != 0 {
		t.Fatalf("serial regions = %d with SerialFrac=0", n)
	}
	if _, err := sim.Run(c, prog); err != nil {
		t.Fatal(err)
	}
}

func TestSwimRegionStructure(t *testing.T) {
	c := cfg()
	app := NewSwim()
	prog, err := app.Build(c, 4, app.DefaultBytes(c))
	if err != nil {
		t.Fatal(err)
	}
	names := regionNames(prog)
	for _, r := range []string{"calc1", "calc2", "calc3"} {
		if names[r] != app.Params.Steps {
			t.Errorf("%s regions = %d, want %d", r, names[r], app.Params.Steps)
		}
	}
	// Boundary work goes to the first and last processors only.
	for _, r := range prog.Regions() {
		if !strings.HasPrefix(r.Name, "calc") {
			continue
		}
		// Every processor works in every calc.
		for pr := 0; pr < 4; pr++ {
			if r.Streams[pr].Empty() {
				t.Errorf("%s: processor %d idle", r.Name, pr)
			}
		}
		// Edge processors carry extra ops (the periodic boundary).
		if len(r.Streams[0].Ops) <= len(r.Streams[1].Ops) {
			t.Errorf("%s: edge processor not doing boundary work (%d vs %d ops)",
				r.Name, len(r.Streams[0].Ops), len(r.Streams[1].Ops))
		}
		break
	}
}

func TestAppsQuantizeMonotonically(t *testing.T) {
	// Requesting a strictly larger size never yields a smaller program.
	c := cfg()
	for _, name := range PaperAppNames() {
		app, _ := ByName(name)
		prev := uint64(0)
		for _, f := range []float64{0.5, 1, 2, 4} {
			req := uint64(f * float64(app.DefaultBytes(c)))
			prog, err := app.Build(c, 1, req)
			if err != nil {
				t.Fatalf("%s at %d: %v", name, req, err)
			}
			if prog.DataBytes < prev {
				t.Errorf("%s: achieved size fell from %d to %d", name, prev, prog.DataBytes)
			}
			prev = prog.DataBytes
		}
	}
}

// PaperAppNames mirrors experiments.PaperApps without the import cycle.
func PaperAppNames() []string { return []string{"t3dheat", "hydro2d", "swim"} }
