// Package apps provides simulated analogues of the applications the paper
// evaluates (Table 4):
//
//   - T3dheat — a PDE solver using conjugate gradient (Los Alamos), PCF
//     directives with explicit barriers. Excellent scalability up to 16
//     processors, poor beyond; good load balance; data set ≈ 10× the L2.
//   - Hydro2d — shallow-water simulation (SPECFP95), MP DOACROSS. Modest
//     scalability (~9 at 32) due to large serial sections.
//   - Swim — Navier-Stokes/shallow-water (SPECFP95), MP DOACROSS. Good
//     scalability (~24 at 32), good static balance, mild boundary sharing.
//
// plus the synthetic estimation kernels of §2.4.2 (barrier, spin, lock) and
// two extra demo applications (blocked matmul, SpMV) used by the examples.
//
// Applications are *generators*: Build produces a sim.Program — the exact
// region/stream structure for a given processor count and data-set size.
// Builders quantize the requested size to their grid geometry; the program's
// DataBytes records the achieved size, and the model interpolates between
// achievable sizes exactly as the paper does when "an application does not
// allow the slicing of the data set to the right size" (§2.4.1).
package apps

import (
	"fmt"
	"sort"

	"scaltool/internal/machine"
	"scaltool/internal/sim"
)

// ElemBytes is the size of one array element (double precision).
const ElemBytes = 8

// App builds simulated programs for one application.
type App interface {
	// Name is the registry key ("t3dheat", "hydro2d", "swim", ...).
	Name() string
	// Description is a one-line summary (Table 4's "What It Does").
	Description() string
	// ParallelModel names the paper's model of parallelism ("PCF" or "MP").
	ParallelModel() string
	// DefaultBytes is the base data-set size s0 for a machine — the
	// app's paper dataset scaled to the machine's L2 (T3dheat 10×,
	// Hydro2d ≈2.6×, Swim ≈4× the per-processor L2).
	DefaultBytes(cfg machine.Config) uint64
	// Build generates the program for a processor count and a requested
	// data-set size. The returned program's DataBytes is the achieved
	// (quantized) size.
	Build(cfg machine.Config, procs int, dataBytes uint64) (*sim.Program, error)
}

// registry of built-in applications.
var registry = map[string]App{}

func register(a App) {
	if _, dup := registry[a.Name()]; dup {
		panic("apps: duplicate registration of " + a.Name())
	}
	registry[a.Name()] = a
}

// ByName looks up a registered application.
func ByName(name string) (App, error) {
	a, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("apps: unknown application %q (have %v)", name, Names())
	}
	return a, nil
}

// Names lists the registered applications, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Range is a contiguous element range [Start, Start+Count).
type Range struct {
	Start, Count uint64
}

// End returns one past the last element.
func (r Range) End() uint64 { return r.Start + r.Count }

// BlockPartition splits total elements into procs near-equal contiguous
// blocks (the SGI MP library's default block scheduling). The first
// total%procs blocks get one extra element.
func BlockPartition(total uint64, procs int) []Range {
	out := make([]Range, procs)
	q := total / uint64(procs)
	r := total % uint64(procs)
	var start uint64
	for p := 0; p < procs; p++ {
		c := q
		if uint64(p) < r {
			c++
		}
		out[p] = Range{Start: start, Count: c}
		start += c
	}
	return out
}

// BlockPartitionAligned is BlockPartition with every block boundary rounded
// to a multiple of alignElems (one cache line of elements). Unaligned
// boundaries put two processors' data in one line — false sharing that the
// paper's array codes avoid by construction (their distributed dimensions
// are whole rows/planes, which are line multiples).
func BlockPartitionAligned(total uint64, procs int, alignElems uint64) []Range {
	if alignElems <= 1 {
		return BlockPartition(total, procs)
	}
	out := make([]Range, procs)
	var start uint64
	for p := 0; p < procs; p++ {
		end := total * uint64(p+1) / uint64(procs)
		end = (end + alignElems/2) / alignElems * alignElems
		if end > total || p == procs-1 {
			end = total
		}
		if end < start {
			end = start
		}
		out[p] = Range{Start: start, Count: end - start}
		start = end
	}
	return out
}

// sweep emits a read or write pass over an element range of an array.
func sweep(s *sim.Stream, arrBase uint64, rg Range, write bool, instrPer uint64) {
	if rg.Count == 0 {
		return
	}
	s.Seq(arrBase+rg.Start*ElemBytes, rg.Count, ElemBytes, write, instrPer)
}

// clampRange intersects [start, start+count) with [0, total).
func clampRange(start int64, count uint64, total uint64) Range {
	if start < 0 {
		if uint64(-start) >= count {
			return Range{}
		}
		count -= uint64(-start)
		start = 0
	}
	if uint64(start) >= total {
		return Range{}
	}
	if uint64(start)+count > total {
		count = total - uint64(start)
	}
	return Range{Start: uint64(start), Count: count}
}

// treeReduce appends the log2(procs) barrier-separated combining steps of a
// reduction over a partials array (one cache-line-padded slot per
// processor). Each step, active processors read their partner's slot and
// update their own — the paper's explicit-barrier PCF reduction pattern.
func treeReduce(prog *sim.Program, name string, partials uint64, slotStride uint64, procs int, flops uint64) {
	for k := 1; k < procs; k *= 2 {
		reg := prog.AddRegion(name)
		for p := 0; p+k < procs; p += 2 * k {
			st := reg.Proc(p)
			st.Gather([]uint64{partials + uint64(p+k)*slotStride}, false, flops)
			st.Gather([]uint64{partials + uint64(p)*slotStride}, true, flops)
		}
	}
}

// icbrt returns the largest integer n with n³ ≤ v.
func icbrt(v uint64) uint64 {
	n := uint64(1)
	for (n+1)*(n+1)*(n+1) <= v {
		n++
	}
	return n
}

// isqrt returns the largest integer n with n² ≤ v.
func isqrt(v uint64) uint64 {
	n := uint64(1)
	for (n+1)*(n+1) <= v {
		n++
	}
	return n
}
