package apps

import (
	"fmt"

	"scaltool/internal/machine"
	"scaltool/internal/sim"
)

// The estimation kernels of §2.4.2. They are not registered applications;
// the model runs them directly to estimate cpi_sync(n), cpi_imb and tsync.

// SyncKernelBarriers is the default barrier count for the sync kernel.
const SyncKernelBarriers = 200

// BuildSyncKernel returns the paper's synchronization kernel: "simply a
// loop where processors come in and out of barriers" with no spinning
// beyond the barrier mechanism itself (all processors arrive together).
func BuildSyncKernel(cfg machine.Config, procs, barriers int) (*sim.Program, error) {
	if barriers <= 0 {
		return nil, fmt.Errorf("apps: sync kernel needs barriers > 0, got %d", barriers)
	}
	prog, err := sim.NewProgram("kernel_sync", procs, uint64(cfg.PageBytes), cfg.PageBytes)
	if err != nil {
		return nil, err
	}
	for b := 0; b < barriers; b++ {
		reg := prog.AddRegion("barrier_loop")
		for p := 0; p < procs; p++ {
			reg.Proc(p).Compute(4) // the loop increment/test between barriers
		}
	}
	return prog, nil
}

// BuildSpinKernel returns the paper's idle-spin kernel: one processor works
// while the others spin, so the spinners' counters reveal cpi_imb. workInstr
// is the busy processor's work per phase.
func BuildSpinKernel(cfg machine.Config, procs int, phases int, workInstr uint64) (*sim.Program, error) {
	if procs < 2 {
		return nil, fmt.Errorf("apps: spin kernel needs ≥ 2 processors, got %d", procs)
	}
	if phases <= 0 || workInstr == 0 {
		return nil, fmt.Errorf("apps: spin kernel needs positive phases/work")
	}
	prog, err := sim.NewProgram("kernel_spin", procs, uint64(cfg.PageBytes), cfg.PageBytes)
	if err != nil {
		return nil, err
	}
	for ph := 0; ph < phases; ph++ {
		reg := prog.AddRegion("spin_phase")
		reg.Proc(0).Compute(workInstr)
	}
	return prog, nil
}

// BuildLockKernel returns the lock kernel of the paper's footnote: every
// processor repeatedly enters a critical section ("If the application has
// locks, we need to separately compute the cpi_sync of a kernel of locks").
func BuildLockKernel(cfg machine.Config, procs, rounds int, csInstr uint64) (*sim.Program, error) {
	if rounds <= 0 {
		return nil, fmt.Errorf("apps: lock kernel needs rounds > 0, got %d", rounds)
	}
	prog, err := sim.NewProgram("kernel_lock", procs, uint64(cfg.PageBytes), cfg.PageBytes)
	if err != nil {
		return nil, err
	}
	for rd := 0; rd < rounds; rd++ {
		reg := prog.AddRegion("lock_loop")
		for p := 0; p < procs; p++ {
			st := reg.Proc(p)
			st.Compute(8)
			st.Critical(csInstr)
		}
	}
	return prog, nil
}
