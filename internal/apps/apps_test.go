package apps

import (
	"testing"
	"testing/quick"

	"scaltool/internal/machine"
	"scaltool/internal/sim"
)

func cfg() machine.Config { return machine.ScaledOrigin() }

func TestRegistry(t *testing.T) {
	names := Names()
	want := []string{"hydro2d", "matmul", "spmv", "swim", "t3dheat"}
	if len(names) != len(want) {
		t.Fatalf("Names = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("Names = %v, want %v", names, want)
		}
	}
	for _, n := range want {
		a, err := ByName(n)
		if err != nil || a.Name() != n {
			t.Fatalf("ByName(%q) = %v, %v", n, a, err)
		}
		if a.Description() == "" || a.ParallelModel() == "" {
			t.Errorf("%s: empty metadata", n)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown app accepted")
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	register(NewSwim())
}

func TestBlockPartitionCoversExactly(t *testing.T) {
	f := func(total uint32, procs8 uint8) bool {
		procs := int(procs8%32) + 1
		tot := uint64(total % 100000)
		parts := BlockPartition(tot, procs)
		if len(parts) != procs {
			return false
		}
		var sum, next uint64
		for _, r := range parts {
			if r.Start != next {
				return false
			}
			next = r.End()
			sum += r.Count
		}
		// Near-equal: max-min ≤ 1.
		minC, maxC := parts[0].Count, parts[0].Count
		for _, r := range parts {
			if r.Count < minC {
				minC = r.Count
			}
			if r.Count > maxC {
				maxC = r.Count
			}
		}
		return sum == tot && maxC-minC <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBlockPartitionAlignedProperties(t *testing.T) {
	f := func(total uint32, procs8, align8 uint8) bool {
		procs := int(procs8%32) + 1
		align := uint64(1) << (align8 % 5) // 1..16
		tot := uint64(total%100000) + uint64(procs)*align
		parts := BlockPartitionAligned(tot, procs, align)
		var next uint64
		for i, r := range parts {
			if r.Start != next {
				return false
			}
			// All boundaries except the final end are aligned.
			if i < len(parts)-1 && r.End()%align != 0 {
				return false
			}
			next = r.End()
		}
		return next == tot
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestClampRange(t *testing.T) {
	cases := []struct {
		start int64
		count uint64
		total uint64
		want  Range
	}{
		{-5, 3, 100, Range{}},
		{-2, 5, 100, Range{Start: 0, Count: 3}},
		{98, 5, 100, Range{Start: 98, Count: 2}},
		{100, 5, 100, Range{}},
		{10, 5, 100, Range{Start: 10, Count: 5}},
	}
	for _, c := range cases {
		if got := clampRange(c.start, c.count, c.total); got != c.want {
			t.Errorf("clampRange(%d,%d,%d) = %+v, want %+v", c.start, c.count, c.total, got, c.want)
		}
	}
}

func TestRoots(t *testing.T) {
	for _, c := range []struct{ v, want uint64 }{{1, 1}, {7, 1}, {8, 2}, {26, 2}, {27, 3}, {1000, 10}} {
		if got := icbrt(c.v); got != c.want {
			t.Errorf("icbrt(%d) = %d, want %d", c.v, got, c.want)
		}
	}
	for _, c := range []struct{ v, want uint64 }{{1, 1}, {3, 1}, {4, 2}, {80, 8}, {81, 9}} {
		if got := isqrt(c.v); got != c.want {
			t.Errorf("isqrt(%d) = %d, want %d", c.v, got, c.want)
		}
	}
}

// Every registered app must build valid, runnable programs across processor
// counts, quantize sizes sensibly, and run deterministically.
func TestAppsBuildAndRun(t *testing.T) {
	c := cfg()
	for _, name := range Names() {
		app, _ := ByName(name)
		s0 := app.DefaultBytes(c)
		if s0 == 0 {
			t.Fatalf("%s: zero default size", name)
		}
		for _, procs := range []int{1, 4} {
			prog, err := app.Build(c, procs, s0)
			if err != nil {
				t.Fatalf("%s Build(%d): %v", name, procs, err)
			}
			if err := prog.Validate(); err != nil {
				t.Fatalf("%s: invalid program: %v", name, err)
			}
			if prog.Procs != procs {
				t.Fatalf("%s: procs = %d", name, prog.Procs)
			}
			// Quantized size within 25% of the request.
			ratio := float64(prog.DataBytes) / float64(s0)
			if ratio < 0.75 || ratio > 1.25 {
				t.Errorf("%s: achieved size %d far from request %d", name, prog.DataBytes, s0)
			}
			res, err := sim.Run(c, prog)
			if err != nil {
				t.Fatalf("%s run: %v", name, err)
			}
			if err := res.Report.Validate(); err != nil {
				t.Fatalf("%s report: %v", name, err)
			}
			if res.Report.Barriers == 0 {
				t.Errorf("%s: no barriers recorded", name)
			}
		}
	}
}

func TestAppsRejectTinySizes(t *testing.T) {
	c := cfg()
	for _, name := range Names() {
		app, _ := ByName(name)
		if _, err := app.Build(c, 1, 64); err == nil {
			t.Errorf("%s accepted a 64-byte data set", name)
		}
	}
}

func TestT3dheatScalesSuperlinearlyThenSaturates(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign-scale simulation")
	}
	c := cfg()
	app := NewT3dheat()
	s0 := app.DefaultBytes(c)
	wall := map[int]float64{}
	for _, n := range []int{1, 2, 8, 16, 32} {
		prog, err := app.Build(c, n, s0)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run(c, prog)
		if err != nil {
			t.Fatal(err)
		}
		wall[n] = res.WallCycles
	}
	// Superlinear at 2 and 8 (insufficient caching space at low counts).
	if sp := wall[1] / wall[2]; sp < 2.0 {
		t.Errorf("speedup(2) = %.2f, want ≥ 2 (superlinear)", sp)
	}
	if sp := wall[1] / wall[8]; sp < 8.5 {
		t.Errorf("speedup(8) = %.2f, want clearly superlinear", sp)
	}
	// Saturation past 16: the 32-processor run gains little or loses.
	sp16, sp32 := wall[1]/wall[16], wall[1]/wall[32]
	if sp32 > 1.25*sp16 {
		t.Errorf("speedup does not saturate: sp16=%.1f sp32=%.1f", sp16, sp32)
	}
}

func TestHydro2dSerialSectionLimitsSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign-scale simulation")
	}
	c := cfg()
	app := NewHydro2d()
	s0 := app.DefaultBytes(c)
	run := func(n int) *sim.Result {
		prog, err := app.Build(c, n, s0)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run(c, prog)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	r1, r32 := run(1), run(32)
	sp := r1.WallCycles / r32.WallCycles
	if sp < 6 || sp > 16 {
		t.Errorf("speedup(32) = %.1f, want modest (paper: ~9)", sp)
	}
	// Imbalance must dominate the multiprocessor cost (Figure 9).
	if r32.Ground.ImbCycles < 2*r32.Ground.SyncCycles {
		t.Errorf("imb = %.3g, sync = %.3g: imbalance should dominate", r32.Ground.ImbCycles, r32.Ground.SyncCycles)
	}
}

func TestSwimNearLinearImbalanceDominated(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign-scale simulation")
	}
	c := cfg()
	app := NewSwim()
	s0 := app.DefaultBytes(c)
	run := func(n int) *sim.Result {
		prog, err := app.Build(c, n, s0)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run(c, prog)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	r1, r32 := run(1), run(32)
	sp := r1.WallCycles / r32.WallCycles
	if sp < 18 {
		t.Errorf("speedup(32) = %.1f, want near-linear (paper: ~24)", sp)
	}
	if r32.Ground.ImbCycles <= r32.Ground.SyncCycles {
		t.Errorf("imb = %.3g ≤ sync = %.3g: imbalance should dominate (Figure 12)", r32.Ground.ImbCycles, r32.Ground.SyncCycles)
	}
	// The genuine data sharing behind the paper's §4.3 divergence.
	if r32.Ground.SharingLines == 0 {
		t.Error("no sharing events; Swim needs boundary sharing")
	}
}

func TestKernels(t *testing.T) {
	c := cfg()
	syncK, err := BuildSyncKernel(c, 4, 50)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(c, syncK)
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.Barriers != 50 {
		t.Fatalf("sync kernel barriers = %d", res.Report.Barriers)
	}
	// The kernel is spin-free by design: imbalance ≈ 0 (all arrivals equal).
	if res.Ground.ImbCycles > 0.05*res.Ground.SyncCycles {
		t.Errorf("sync kernel has imbalance %.3g vs sync %.3g", res.Ground.ImbCycles, res.Ground.SyncCycles)
	}

	spinK, err := BuildSpinKernel(c, 4, 5, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	res, err = sim.Run(c, spinK)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ground.ImbCycles == 0 {
		t.Error("spin kernel produced no imbalance")
	}

	lockK, err := BuildLockKernel(c, 4, 10, 500)
	if err != nil {
		t.Fatal(err)
	}
	res, err = sim.Run(c, lockK)
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.Locks != 40 {
		t.Fatalf("lock kernel locks = %d, want 40", res.Report.Locks)
	}
}

func TestKernelValidation(t *testing.T) {
	c := cfg()
	if _, err := BuildSyncKernel(c, 2, 0); err == nil {
		t.Error("sync kernel with 0 barriers accepted")
	}
	if _, err := BuildSpinKernel(c, 1, 5, 10); err == nil {
		t.Error("spin kernel with 1 proc accepted")
	}
	if _, err := BuildSpinKernel(c, 2, 0, 10); err == nil {
		t.Error("spin kernel with 0 phases accepted")
	}
	if _, err := BuildLockKernel(c, 2, 0, 10); err == nil {
		t.Error("lock kernel with 0 rounds accepted")
	}
}

func TestSyncKernelBarrierCostGrowsWithN(t *testing.T) {
	c := cfg()
	per := func(n int) float64 {
		k, err := BuildSyncKernel(c, n, 40)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run(c, k)
		if err != nil {
			t.Fatal(err)
		}
		return res.WallCycles / 40
	}
	if !(per(2) < per(8) && per(8) < per(32)) {
		t.Fatalf("per-barrier cost not increasing: %g %g %g", per(2), per(8), per(32))
	}
}
