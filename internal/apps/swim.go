package apps

import (
	"fmt"

	"scaltool/internal/machine"
	"scaltool/internal/sim"
)

// SwimParams tunes the Swim analogue.
type SwimParams struct {
	Steps      int    // time steps
	FlopsSweep uint64 // compute instructions per point per sweep (shallow water is flop-heavy)
	// BoundaryRows is the number of periodic-boundary rows the edge
	// processors copy each step — both a (mild) load imbalance and the
	// non-synchronization data sharing that makes the paper's Swim
	// validation diverge at 32 processors (§4.3).
	BoundaryRows uint64
}

// DefaultSwimParams mirrors the paper's 512×512, 100-iteration run at the
// simulated scale.
func DefaultSwimParams() SwimParams {
	return SwimParams{Steps: 8, FlopsSweep: 26, BoundaryRows: 4}
}

// Swim is the SPECFP95 shallow-water-equations analogue: finite-difference
// sweeps (CALC1/CALC2/CALC3) over N² velocity/pressure fields, MP DOACROSS,
// coarse-grained and flop-rich — hence its near-linear speedup. Its MP cost
// is mostly mild load imbalance (periodic-boundary work on the edge
// processors and memory-latency skew), with genuine producer/consumer row
// sharing between neighbours.
type Swim struct {
	Params SwimParams
}

// NewSwim returns the app with default parameters.
func NewSwim() *Swim { return &Swim{Params: DefaultSwimParams()} }

// Name implements App.
func (a *Swim) Name() string { return "swim" }

// Description implements App.
func (a *Swim) Description() string {
	return "shallow-water equations finite-difference kernel (SPECFP95 Swim analogue)"
}

// ParallelModel implements App.
func (a *Swim) ParallelModel() string { return "MP" }

// DefaultBytes implements App: ≈4× the L2, the paper's 16.2 MB / 4 MB ratio.
func (a *Swim) DefaultBytes(cfg machine.Config) uint64 {
	return uint64(4.05 * float64(cfg.L2.SizeBytes))
}

const swimArrays = 4 // u, v, p, z (stream/vorticity working set)

// Build implements App.
func (a *Swim) Build(cfg machine.Config, procs int, dataBytes uint64) (*sim.Program, error) {
	n := isqrt(dataBytes / (swimArrays * ElemBytes))
	if n < 4 {
		return nil, fmt.Errorf("swim: data size %d too small (grid %d²)", dataBytes, n)
	}
	elems := n * n
	actual := swimArrays * elems * ElemBytes
	prog, err := sim.NewProgram("swim", procs, actual, cfg.PageBytes)
	if err != nil {
		return nil, err
	}
	u := prog.MustAlloc("u", elems*ElemBytes).Base
	v := prog.MustAlloc("v", elems*ElemBytes).Base
	p := prog.MustAlloc("p", elems*ElemBytes).Base
	z := prog.MustAlloc("z", elems*ElemBytes).Base
	parts := BlockPartitionAligned(elems, procs, uint64(cfg.L2.LineBytes)/ElemBytes)

	init := prog.AddRegion("init")
	for pr := 0; pr < procs; pr++ {
		st := init.Proc(pr)
		for _, arr := range []uint64{u, v, p, z} {
			sweep(st, arr, parts[pr], true, 1)
		}
	}

	pm := a.Params
	bRows := pm.BoundaryRows * n // elements in the periodic-boundary strip
	calc := func(name string, src1, src2, dst uint64) {
		reg := prog.AddRegion(name)
		for pr := 0; pr < procs; pr++ {
			st := reg.Proc(pr)
			own := parts[pr]
			sweep(st, src1, own, false, pm.FlopsSweep)
			sweep(st, src2, own, false, 2)
			// 5-point stencil halo from the neighbour blocks (one cache
			// line each side — the tuned exchange width).
			ghost := uint64(cfg.L2.LineBytes) / ElemBytes
			if procs > 1 && pr > 0 {
				sweep(st, src1, clampRange(int64(own.Start)-int64(ghost), ghost, elems), false, 1)
			}
			if procs > 1 && pr < procs-1 {
				sweep(st, src1, clampRange(int64(own.End()), ghost, elems), false, 1)
			}
			sweep(st, dst, own, true, 2)
			// Periodic boundary: the first and last processors copy the
			// opposite edge's rows — extra work for them (imbalance) and
			// remote-written data (sharing).
			if procs > 1 && bRows > 0 {
				if pr == 0 {
					sweep(st, src1, clampRange(int64(elems-bRows), bRows, elems), false, 2)
					sweep(st, dst, Range{Start: 0, Count: min(bRows, own.Count)}, true, 2)
				}
				if pr == procs-1 {
					sweep(st, src1, Range{Start: 0, Count: bRows}, false, 2)
					sweep(st, dst, clampRange(int64(elems-bRows), bRows, elems), true, 2)
				}
			}
		}
	}

	for step := 0; step < pm.Steps; step++ {
		calc("calc1", p, u, z) // CALC1: pressure/velocity → intermediate
		calc("calc2", z, v, u) // CALC2: new velocities
		calc("calc3", u, p, v) // CALC3/time smoothing
	}
	return prog, nil
}

func init() { register(NewSwim()) }
