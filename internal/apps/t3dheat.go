package apps

import (
	"fmt"

	"scaltool/internal/machine"
	"scaltool/internal/sim"
)

// T3dheatParams tunes the T3dheat analogue.
type T3dheatParams struct {
	Iters        int    // conjugate-gradient iterations (paper: 5)
	FlopsStencil uint64 // compute instructions per point in the matvec
	FlopsAxpy    uint64 // per point in vector updates
	FlopsDot     uint64 // per point in dot products
	// ExtraBarriers is the number of additional explicit PCF barrier
	// directives executed per iteration (T3dheat is written in PCF "with
	// explicit barriers", Table 4 — such codes synchronize around every
	// small phase, which is precisely what makes synchronization its
	// dominant multiprocessor cost in Figure 6).
	ExtraBarriers int
}

// DefaultT3dheatParams mirrors the paper's run (imax=jmax=kmax=50, 5 iters)
// with a 7-point-stencil instruction mix.
func DefaultT3dheatParams() T3dheatParams {
	return T3dheatParams{Iters: 5, FlopsStencil: 14, FlopsAxpy: 4, FlopsDot: 4, ExtraBarriers: 90}
}

// T3dheat is the PDE conjugate-gradient solver analogue: five N³ arrays
// (b, x, r, p, q), barrier-heavy PCF parallelism with explicit tree
// reductions, excellent static load balance. Its data set defaults to 10×
// the L2 capacity (the paper's 40 MB against a 4 MB L2), which is what makes
// its low-processor-count behaviour conflict-miss dominated.
type T3dheat struct {
	Params T3dheatParams
}

// NewT3dheat returns the app with default parameters.
func NewT3dheat() *T3dheat { return &T3dheat{Params: DefaultT3dheatParams()} }

// Name implements App.
func (a *T3dheat) Name() string { return "t3dheat" }

// Description implements App.
func (a *T3dheat) Description() string {
	return "PDE solver using conjugate gradient (Los Alamos T3dheat analogue)"
}

// ParallelModel implements App.
func (a *T3dheat) ParallelModel() string { return "PCF" }

// DefaultBytes implements App: 10× the L2, the paper's 40 MB / 4 MB ratio.
func (a *T3dheat) DefaultBytes(cfg machine.Config) uint64 {
	return 10 * uint64(cfg.L2.SizeBytes)
}

const t3dArrays = 5 // b, x, r, p, q

// Build implements App.
func (a *T3dheat) Build(cfg machine.Config, procs int, dataBytes uint64) (*sim.Program, error) {
	n := icbrt(dataBytes / (t3dArrays * ElemBytes))
	if n < 4 {
		return nil, fmt.Errorf("t3dheat: data size %d too small (grid %d³)", dataBytes, n)
	}
	elems := n * n * n
	actual := t3dArrays * elems * ElemBytes
	prog, err := sim.NewProgram("t3dheat", procs, actual, cfg.PageBytes)
	if err != nil {
		return nil, err
	}
	b := prog.MustAlloc("b", elems*ElemBytes)
	x := prog.MustAlloc("x", elems*ElemBytes)
	r := prog.MustAlloc("r", elems*ElemBytes)
	p := prog.MustAlloc("p", elems*ElemBytes)
	q := prog.MustAlloc("q", elems*ElemBytes)
	partials := prog.MustAlloc("partials", uint64(procs*cfg.L2.LineBytes))
	slot := uint64(cfg.L2.LineBytes)

	parts := BlockPartitionAligned(elems, procs, uint64(cfg.L2.LineBytes)/ElemBytes)
	// Ghost exchange width: one cache line of halo elements. The
	// production code exchanges only a tuned halo, keeping inter-processor
	// sharing negligible — the property the paper relies on for T3dheat
	// (§2.4: "the effects of true and false sharing are largely
	// negligible").
	ghost := uint64(cfg.L2.LineBytes) / ElemBytes

	// Initialization: every processor first-touches its block of every
	// array (the MP-library block distribution the paper's default policy
	// produces).
	init := prog.AddRegion("init")
	for pr := 0; pr < procs; pr++ {
		st := init.Proc(pr)
		for _, arr := range []uint64{b.Base, x.Base, r.Base, p.Base, q.Base} {
			sweep(st, arr, parts[pr], true, 1)
		}
		st.Gather([]uint64{partials.Base + uint64(pr)*slot}, true, 1)
	}

	pm := a.Params
	for it := 0; it < pm.Iters; it++ {
		// q = A·p — 7-point stencil matvec; reads own block of p plus one
		// ghost plane from each neighbour block, writes own block of q.
		mv := prog.AddRegion("matvec")
		for pr := 0; pr < procs; pr++ {
			st := mv.Proc(pr)
			own := parts[pr]
			sweep(st, p.Base, own, false, pm.FlopsStencil)
			if lo := clampRange(int64(own.Start)-int64(ghost), ghost, elems); procs > 1 && pr > 0 {
				sweep(st, p.Base, lo, false, 1)
			}
			if hi := clampRange(int64(own.End()), ghost, elems); procs > 1 && pr < procs-1 {
				sweep(st, p.Base, hi, false, 1)
			}
			sweep(st, q.Base, own, true, 2)
		}

		// α = (r·r)/(p·q): two dot products, each a local pass plus a
		// log₂(procs) barrier tree.
		dot1 := prog.AddRegion("dot_pq")
		for pr := 0; pr < procs; pr++ {
			st := dot1.Proc(pr)
			sweep(st, p.Base, parts[pr], false, pm.FlopsDot)
			sweep(st, q.Base, parts[pr], false, 1)
			st.Gather([]uint64{partials.Base + uint64(pr)*slot}, true, 2)
		}
		treeReduce(prog, "reduce_pq", partials.Base, slot, procs, 2)

		// x += α·p and r −= α·q.
		ax := prog.AddRegion("axpy_x")
		for pr := 0; pr < procs; pr++ {
			st := ax.Proc(pr)
			sweep(st, p.Base, parts[pr], false, pm.FlopsAxpy)
			sweep(st, x.Base, parts[pr], true, 1)
		}
		ar := prog.AddRegion("axpy_r")
		for pr := 0; pr < procs; pr++ {
			st := ar.Proc(pr)
			sweep(st, q.Base, parts[pr], false, pm.FlopsAxpy)
			sweep(st, r.Base, parts[pr], true, 1)
		}

		// ρ = r·r and its reduction.
		dot2 := prog.AddRegion("dot_rr")
		for pr := 0; pr < procs; pr++ {
			st := dot2.Proc(pr)
			sweep(st, r.Base, parts[pr], false, pm.FlopsDot)
			st.Gather([]uint64{partials.Base + uint64(pr)*slot}, true, 2)
		}
		treeReduce(prog, "reduce_rr", partials.Base, slot, procs, 2)

		// p = r + β·p.
		up := prog.AddRegion("update_p")
		for pr := 0; pr < procs; pr++ {
			st := up.Proc(pr)
			sweep(st, r.Base, parts[pr], false, pm.FlopsAxpy)
			sweep(st, p.Base, parts[pr], true, 1)
		}

		// Explicit PCF barrier directives around the small bookkeeping
		// phases (convergence test, scalar broadcasts, ...).
		for eb := 0; eb < pm.ExtraBarriers; eb++ {
			reg := prog.AddRegion("pcf_barrier")
			for pr := 0; pr < procs; pr++ {
				reg.Proc(pr).Compute(8)
			}
		}
		_ = b // b participates only in the initial residual; init touched it
	}
	return prog, nil
}

func init() { register(NewT3dheat()) }
