package apps

import (
	"fmt"

	"scaltool/internal/machine"
	"scaltool/internal/sim"
)

// Hydro2dParams tunes the Hydro2d analogue.
type Hydro2dParams struct {
	Steps      int     // hydrodynamic time steps
	FlopsSweep uint64  // compute instructions per point per sweep
	Sweeps     int     // parallel sweeps per step
	SerialFrac float64 // serial-section work per step, as a fraction of one grid sweep
}

// DefaultHydro2dParams targets the paper's observed behaviour: large serial
// sections capping the speedup near 9–10 at 32 processors.
func DefaultHydro2dParams() Hydro2dParams {
	return Hydro2dParams{Steps: 6, FlopsSweep: 10, Sweeps: 6, SerialFrac: 0.80}
}

// Hydro2d is the SPECFP95 shallow-water analogue: six N² field arrays swept
// by MP DOACROSS loops, with a serial section each step (the galactic-jet
// code's boundary and filtering work that SGI's compiler leaves
// unparallelized). The serial sections are what the paper's Figure 9
// identifies: imbalance dominates, speedup is modest.
type Hydro2d struct {
	Params Hydro2dParams
}

// NewHydro2d returns the app with default parameters.
func NewHydro2d() *Hydro2d { return &Hydro2d{Params: DefaultHydro2dParams()} }

// Name implements App.
func (a *Hydro2d) Name() string { return "hydro2d" }

// Description implements App.
func (a *Hydro2d) Description() string {
	return "shallow-water / hydrodynamical jet simulation (SPECFP95 Hydro2d analogue)"
}

// ParallelModel implements App.
func (a *Hydro2d) ParallelModel() string { return "MP" }

// DefaultBytes implements App: ≈2.6× the L2, the paper's 10.3 MB / 4 MB
// ratio (its L2Lim effect vanishes at 2–3 processors).
func (a *Hydro2d) DefaultBytes(cfg machine.Config) uint64 {
	return uint64(2.575 * float64(cfg.L2.SizeBytes))
}

const hydroArrays = 6

// Build implements App.
func (a *Hydro2d) Build(cfg machine.Config, procs int, dataBytes uint64) (*sim.Program, error) {
	n := isqrt(dataBytes / (hydroArrays * ElemBytes))
	if n < 4 {
		return nil, fmt.Errorf("hydro2d: data size %d too small (grid %d²)", dataBytes, n)
	}
	elems := n * n
	actual := hydroArrays * elems * ElemBytes
	prog, err := sim.NewProgram("hydro2d", procs, actual, cfg.PageBytes)
	if err != nil {
		return nil, err
	}
	arrs := make([]uint64, hydroArrays)
	for i := range arrs {
		arrs[i] = prog.MustAlloc(fmt.Sprintf("f%d", i), elems*ElemBytes).Base
	}
	// The serial sections work on processor 0's private boundary state —
	// they serialize the machine (imbalance) without writing the
	// block-distributed fields (which would add sharing the paper's
	// Hydro2d does not exhibit).
	serialElems := uint64(a.Params.SerialFrac * float64(elems))
	var bnd uint64
	if serialElems > 0 {
		bnd = prog.MustAlloc("bnd", serialElems*ElemBytes).Base
	}
	parts := BlockPartitionAligned(elems, procs, uint64(cfg.L2.LineBytes)/ElemBytes)

	// First-touch initialization, block-distributed.
	init := prog.AddRegion("init")
	for pr := 0; pr < procs; pr++ {
		st := init.Proc(pr)
		for _, arr := range arrs {
			sweep(st, arr, parts[pr], true, 1)
		}
	}
	if serialElems > 0 {
		init.Proc(0).Write(bnd, serialElems, ElemBytes, 1)
	}

	pm := a.Params
	for step := 0; step < pm.Steps; step++ {
		// The serial section: processor 0 alone filters/advances the
		// boundary state while every other processor spins (MP slaves in
		// mp_slave_wait_for_work).
		if serialElems > 0 {
			ser := prog.AddRegion("serial_filter")
			st := ser.Proc(0)
			sweep(st, bnd, Range{Start: 0, Count: serialElems}, false, pm.FlopsSweep)
			sweep(st, bnd, Range{Start: 0, Count: serialElems}, true, 2)
		}

		// The DOACROSS sweeps: read one field (own block plus one ghost
		// row each side), write the next field.
		for sw := 0; sw < pm.Sweeps; sw++ {
			src := arrs[sw%hydroArrays]
			dst := arrs[(sw+1)%hydroArrays]
			reg := prog.AddRegion("doacross_sweep")
			// Block-interior sweeps only: the inter-block boundary work is
			// what the serial filter section performs, so the DOACROSS
			// bodies share essentially no data (the paper's Hydro2d has
			// negligible true/false sharing).
			for pr := 0; pr < procs; pr++ {
				st := reg.Proc(pr)
				own := parts[pr]
				sweep(st, src, own, false, pm.FlopsSweep)
				sweep(st, dst, own, true, 2)
			}
		}
	}
	return prog, nil
}

func init() { register(NewHydro2d()) }
