package analysis

import (
	"go/ast"
	"go/types"
)

// CtxGo flags goroutine launches in the campaign and sim worker pools that
// no context.Context reaches. The fault-tolerance layer relies on a
// canceled context stopping every in-flight worker promptly (a critical-run
// failure cancels the pool; a hung run is reaped by its per-attempt
// deadline); a goroutine spawned without a context is invisible to that
// machinery and outlives the campaign it belongs to.
var CtxGo = &Analyzer{
	Name:         "ctxgo",
	Doc:          "flags campaign/sim goroutines no context reaches",
	PathSuffixes: []string{"internal/campaign", "internal/sim"},
	Run:          runCtxGo,
}

func runCtxGo(pass *Pass) {
	pass.Inspect(func(n ast.Node) bool {
		gs, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		// The goroutine is cancellation-aware if any expression anywhere in
		// the go statement — a call argument, an identifier used inside a
		// function literal's body, a ctx-typed field selection — has type
		// context.Context.
		found := false
		ast.Inspect(gs, func(m ast.Node) bool {
			e, ok := m.(ast.Expr)
			if ok && isContextType(pass.TypeOf(e)) {
				found = true
			}
			return !found
		})
		if !found {
			pass.Reportf(gs.Pos(), "goroutine launched without a context; pass a context.Context so cancellation reaches it")
		}
		return true
	})
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}
