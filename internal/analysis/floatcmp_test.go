package analysis

import "testing"

func TestFloatCmpFixture(t *testing.T) {
	// Unrestricted instance: fixtures live outside the default package
	// filter.
	testFixture(t, NewFloatCmp(), "floatcmp")
}

func TestFloatCmpPathFilter(t *testing.T) {
	if !FloatCmp.appliesTo("scaltool/internal/model") {
		t.Error("floatcmp should apply to internal/model")
	}
	if !FloatCmp.appliesTo("scaltool/internal/stats") {
		t.Error("floatcmp should apply to internal/stats")
	}
	if FloatCmp.appliesTo("scaltool/internal/sim") {
		t.Error("floatcmp should not apply to internal/sim")
	}
	if FloatCmp.appliesTo("scaltool/internal/modelx") {
		t.Error("suffix match must respect path boundaries")
	}
}

func TestIgnoreDirectives(t *testing.T) {
	// The ignored fixture pairs floatcmp findings with //scalvet:ignore
	// directives: valid ones suppress, a bare one is itself reported.
	testFixture(t, NewFloatCmp(), "ignored")
}
