package analysis

import "testing"

func TestCloseCheck(t *testing.T) { testFixture(t, CloseCheck, "closecheck") }
