package analysis

import (
	"go/ast"
	"go/types"
)

// SharedMut flags goroutine literals that write variables shared with the
// spawning function without a guarding lock — the exact shape of the
// sim/campaign worker pools, where one unguarded accumulator write
// corrupts a whole campaign's counters.
//
// Two guarded shapes are accepted:
//
//   - distinct-slot writes, outs[p] = ... where every identifier in the
//     index is local to the goroutine (each worker owns its slot, with a
//     WaitGroup sequencing the reads);
//   - literals that take a sync.Mutex/RWMutex lock anywhere in their body
//     (granularity is per-literal, a deliberate simplification).
//
// Writes routed through helper functions called from the goroutine are
// not tracked (the analyzer is intraprocedural).
var SharedMut = &Analyzer{
	Name: "sharedmut",
	Doc:  "flags goroutine literals writing shared state without a lock",
	Run:  runSharedMut,
}

func runSharedMut(pass *Pass) {
	pass.Inspect(func(n ast.Node) bool {
		gs, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		if lit, ok := gs.Call.Fun.(*ast.FuncLit); ok {
			checkGoroutineWrites(pass, lit)
		}
		return true
	})
}

func checkGoroutineWrites(pass *Pass, lit *ast.FuncLit) {
	if holdsLock(pass, lit) {
		return
	}
	// Everything declared inside the literal (params included) is local.
	local := map[types.Object]bool{}
	ast.Inspect(lit, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := pass.Pkg.Info.Defs[id]; obj != nil {
				local[obj] = true
			}
		}
		return true
	})
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range st.Lhs {
				checkWrite(pass, lhs, local)
			}
		case *ast.IncDecStmt:
			checkWrite(pass, st.X, local)
		}
		return true
	})
}

func checkWrite(pass *Pass, lhs ast.Expr, local map[types.Object]bool) {
	root, slotted := writeRoot(pass, lhs, local)
	if root == nil {
		return
	}
	obj := pass.Pkg.Info.Uses[root]
	if obj == nil || local[obj] {
		return
	}
	if _, ok := obj.(*types.Var); !ok {
		return
	}
	if slotted {
		return
	}
	pass.Reportf(lhs.Pos(), "goroutine writes %s, which is shared with the spawning function, without a guarding sync.Mutex", types.ExprString(lhs))
}

// writeRoot unwraps an lvalue to its base identifier. slotted reports that
// the path crossed an index whose identifiers are all goroutine-local
// (the distinct-slot worker pattern).
func writeRoot(pass *Pass, e ast.Expr, local map[types.Object]bool) (root *ast.Ident, slotted bool) {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x, slotted
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			if indexIsLocal(pass, x.Index, local) {
				slotted = true
			}
			e = x.X
		default:
			return nil, false
		}
	}
}

// indexIsLocal reports whether every identifier in an index expression is
// local to the goroutine literal.
func indexIsLocal(pass *Pass, idx ast.Expr, local map[types.Object]bool) bool {
	ok := true
	ast.Inspect(idx, func(n ast.Node) bool {
		id, isIdent := n.(*ast.Ident)
		if !isIdent {
			return true
		}
		if obj := pass.Pkg.Info.Uses[id]; obj != nil {
			if _, isVar := obj.(*types.Var); isVar && !local[obj] {
				ok = false
			}
		}
		return true
	})
	return ok
}

// holdsLock reports whether the literal body takes a sync.Mutex or
// sync.RWMutex lock.
func holdsLock(pass *Pass, lit *ast.FuncLit) bool {
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := pass.Pkg.Info.Uses[sel.Sel].(*types.Func)
		if !ok {
			return true
		}
		switch fn.FullName() {
		case "(*sync.Mutex).Lock", "(*sync.RWMutex).Lock", "(*sync.RWMutex).RLock":
			found = true
		}
		return !found
	})
	return found
}
