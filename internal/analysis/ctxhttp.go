package analysis

import (
	"go/ast"
	"go/types"
)

// CtxHTTP checks that the serving path honors its request context end to
// end. A handler that spawns work under context.Background()/TODO() — or in
// a bare goroutine — has detached that work from the request: the client
// disconnects, the per-request deadline fires, the server drains for
// SIGTERM, and the orphaned work keeps burning a worker slot. The analyzer
// uses the call graph to follow handlers transitively: every function in
// this package reachable from an HTTP-handler-shaped function is part of
// the serving path and held to the same rule.
var CtxHTTP = &Analyzer{
	Name:         "ctxhttp",
	Doc:          "flags serve handlers spawning work without r.Context()",
	PathSuffixes: []string{"internal/serve"},
	Run:          runCtxHTTP,
}

func runCtxHTTP(pass *Pass) {
	reach := handlerReachable(pass)
	for _, file := range pass.Pkg.Files {
		for _, d := range file.Decls {
			decl, ok := d.(*ast.FuncDecl)
			if !ok || decl.Body == nil {
				continue
			}
			fn, ok := pass.Pkg.Info.Defs[decl.Name].(*types.Func)
			if !ok || !reach[fn] {
				continue
			}
			checkCtxBody(pass, decl)
		}
	}
}

// handlerReachable walks the call graph from this package's handler-shaped
// functions; only same-package functions are returned (each package's pass
// reports its own findings).
func handlerReachable(pass *Pass) map[*types.Func]bool {
	reach := map[*types.Func]bool{}
	var queue []*types.Func
	for fn, di := range pass.Facts.decls {
		if di.pkg == pass.Pkg && isHandlerShaped(fn) {
			reach[fn] = true
			queue = append(queue, fn)
		}
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		for callee := range pass.Facts.calls[fn] {
			if reach[callee] {
				continue
			}
			if _, ok := pass.Facts.decls[callee]; !ok {
				continue
			}
			// Follow through other packages too — a serve helper may route
			// through shared code back into serve; reports stay local.
			reach[callee] = true
			queue = append(queue, callee)
		}
	}
	// Restrict reporting to this package's declarations.
	local := map[*types.Func]bool{}
	for fn := range reach {
		if di, ok := pass.Facts.decls[fn]; ok && di.pkg == pass.Pkg {
			local[fn] = true
		}
	}
	return local
}

func checkCtxBody(pass *Pass, decl *ast.FuncDecl) {
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			fn := calleeFunc(pass.Pkg.Info, x)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
				return true
			}
			if fn.Name() == "Background" || fn.Name() == "TODO" {
				pass.Reportf(x.Pos(), "handler-reachable %s creates context.%s, detaching work from the request; propagate r.Context() instead",
					funcDeclSymbol(decl), fn.Name())
			}
		case *ast.GoStmt:
			found := false
			ast.Inspect(x, func(m ast.Node) bool {
				if e, ok := m.(ast.Expr); ok && isContextType(pass.TypeOf(e)) {
					found = true
				}
				return !found
			})
			if !found {
				pass.Reportf(x.Pos(), "handler-reachable %s launches a goroutine no context reaches; pass the request context so cancellation and drain stop it",
					funcDeclSymbol(decl))
			}
		}
		return true
	})
}
