package analysis

import (
	"go/ast"
	"go/token"
)

// AtomicMix flags mixed atomic/plain access to the same memory: a struct
// field or package variable whose address is passed to sync/atomic anywhere
// in the program, but which is also read or written plainly. The plain
// access is the bug — on the hardware the DSM simulator models (and on the
// hardware Go runs on) it races with the atomic side, and the race detector
// only catches it when a test happens to interleave both. The census is
// whole-program (facts.go), so an atomic access in one package convicts a
// plain access in another.
//
// Typed atomics (atomic.Uint64 and friends) are immune by construction:
// their value is unexported, so every access goes through methods.
var AtomicMix = &Analyzer{
	Name: "atomicmix",
	Doc:  "flags fields accessed both via sync/atomic and plainly",
	Run:  runAtomicMix,
}

func runAtomicMix(pass *Pass) {
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		// Idents that are themselves part of an atomic call's &operand.
		atomicOperand := map[*ast.Ident]bool{}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			fn := calleeFunc(info, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
				return true
			}
			addr, ok := call.Args[0].(*ast.UnaryExpr)
			if !ok || addr.Op != token.AND {
				return true
			}
			ast.Inspect(addr.X, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok {
					atomicOperand[id] = true
				}
				return true
			})
			return true
		})
		ast.Inspect(file, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok || atomicOperand[id] {
				return true
			}
			obj := info.Uses[id]
			if obj == nil {
				return true
			}
			uses := pass.Facts.AtomicUses(obj)
			if len(uses) == 0 {
				return true
			}
			pass.Reportf(id.Pos(), "%s is accessed via sync/atomic (e.g. %s:%d) but plainly here; use sync/atomic for every access, or a typed atomic",
				id.Name, shortPath(uses[0].Filename), uses[0].Line)
			return true
		})
	}
}

// shortPath trims a position filename to its last two path elements.
func shortPath(p string) string {
	slashes := 0
	for i := len(p) - 1; i >= 0; i-- {
		if p[i] == '/' || p[i] == '\\' {
			slashes++
			if slashes == 2 {
				return p[i+1:]
			}
		}
	}
	return p
}
