package analysis

import (
	"os/exec"
	"strings"
	"testing"
)

// TestVetGateFires proves the `go vet` half of the CI gate works: the
// deliberately broken fixture in testdata/vetbad must make vet exit
// non-zero with a printf diagnostic. The main tree stays vet-clean, so
// without this fixture a silently broken vet invocation would look
// identical to a passing one.
func TestVetGateFires(t *testing.T) {
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go binary not in PATH")
	}
	cmd := exec.Command(goBin, "vet", "./testdata/vetbad")
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet passed on the broken fixture; gate is not detecting anything\n%s", out)
	}
	if !strings.Contains(string(out), "%d") || !strings.Contains(string(out), "vetbad.go") {
		t.Errorf("vet failed but without the expected printf diagnostic:\n%s", out)
	}
}
