package analysis

import "testing"

func TestCtxHTTP(t *testing.T) { testFixture(t, CtxHTTP, "ctxhttp") }

func TestCtxHTTPAppliesOnlyToServe(t *testing.T) {
	if !CtxHTTP.appliesTo("scaltool/internal/serve") {
		t.Error("ctxhttp must cover the serving path")
	}
	if CtxHTTP.appliesTo("scaltool/internal/sim") || CtxHTTP.appliesTo("scaltool/internal/model") {
		t.Error("ctxhttp must not apply outside internal/serve")
	}
}
